package grp

// The benchmark harness: one testing.B benchmark per experiment of the
// evaluation (DESIGN.md §4). Each benchmark regenerates its table end to
// end — workload generation, protocol execution, predicate checking — so
// `go test -bench=.` both re-derives every reported number and measures
// the cost of producing it. A reduced seed count keeps individual
// iterations in the hundreds of milliseconds; cmd/grpexp runs the same
// code with the full seed count.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/space"
)

const benchSeeds = 2

func BenchmarkE1Stabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E1Stabilization(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE2Agreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E2Agreement(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE4Maximality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E4MergeGadgets(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE5Compatible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E5Compatibility(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE6Continuity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E6Continuity(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, c := experiments.E7Scaling(1)
		if len(a.Rows) == 0 || len(c.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE8Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E8Lifetime(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE9Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E9Loss(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE10Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E10Ablation(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE11Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E11Overhead(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE12Quarantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E12Quarantine(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE13Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E13Density(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Micro-benchmarks of the protocol itself: the per-node cost of one
// compute and one broadcast at steady state, which bounds what a real
// deployment spends per Tc/Ts period.

func benchSteadySim(b *testing.B, g *graph.G, dmax int) *sim.Sim {
	b.Helper()
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: dmax}, Seed: 1}, g)
	s.RunUntilConverged(400, 3)
	return s
}

func BenchmarkNodeCompute(b *testing.B) {
	s := benchSteadySim(b, graph.Line(10), 4)
	n := s.Nodes[5]
	msgs := []core.Message{
		s.Nodes[NodeID(4)].BuildMessage(),
		s.Nodes[NodeID(6)].BuildMessage(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			n.Receive(m)
		}
		n.Compute()
	}
}

func BenchmarkNodeBuildMessage(b *testing.B) {
	s := benchSteadySim(b, graph.Line(10), 4)
	n := s.Nodes[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := n.BuildMessage()
		if m.From != 5 {
			b.Fatal("bad message")
		}
	}
}

func BenchmarkSimRound100Nodes(b *testing.B) {
	s := benchSteadySim(b, graph.Line(100), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepRound()
	}
}

// legacySim replicates the seed engine's strictly sequential Step() for
// the perf trajectory: the full node set is re-sorted twice per tick and
// every node is scanned with the modulo timer test — the exact hot path
// the phase-parallel engine replaced.
type legacySim struct {
	cfg     core.Config
	ts, tc  int
	g       *graph.G
	nodes   map[ident.NodeID]*core.Node
	rng     *rand.Rand
	tick    int
	channel radio.Channel
}

func newLegacySim(g *graph.G, dmax int, seed int64) *legacySim {
	s := &legacySim{
		cfg: core.Config{Dmax: dmax}, ts: 1, tc: 2, g: g,
		nodes:   make(map[ident.NodeID]*core.Node),
		rng:     rand.New(rand.NewSource(seed)),
		channel: radio.Perfect{},
	}
	for _, v := range g.Nodes() {
		s.nodes[v] = core.NewNode(v, s.cfg)
	}
	return s
}

func (s *legacySim) sortedNodes() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(s.nodes))
	for v := range s.nodes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *legacySim) step() {
	var txs []radio.Tx
	for _, v := range s.sortedNodes() {
		if s.tick%s.ts == 0 {
			rcv := s.g.Neighbors(v)
			live := rcv[:0:0]
			for _, u := range rcv {
				if _, ok := s.nodes[u]; ok {
					live = append(live, u)
				}
			}
			txs = append(txs, radio.Tx{Sender: v, Receivers: live})
		}
	}
	if len(txs) > 0 {
		built := make(map[ident.NodeID]core.Message, len(txs))
		for _, tx := range txs {
			built[tx.Sender] = s.nodes[tx.Sender].BuildMessage()
		}
		for _, d := range s.channel.DeliverSlot(txs, s.rng) {
			if n, ok := s.nodes[d.To]; ok {
				n.Receive(built[d.From])
			}
		}
	}
	for _, v := range s.sortedNodes() {
		if s.tick%s.tc == 0 {
			s.nodes[v].Compute()
		}
	}
	s.tick++
}

// BenchmarkSimStep is the engine micro-benchmark at N=1000 nodes: one
// tick of the hot path, on the seed's sequential loop (replicated above),
// on the new engine's sequential path, and on the engine at 4 workers.
// The engine numbers are what every scaling experiment (E7, E13, soak)
// pays per tick.
func BenchmarkSimStep(b *testing.B) {
	const n = 1000
	b.Run("seed-path", func(b *testing.B) {
		s := newLegacySim(graph.Line(n), 4, 1)
		for i := 0; i < 100; i++ {
			s.step() // settle into steady state
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.step()
		}
	})
	for _, workers := range []int{1, 4} {
		name := "engine-seq"
		if workers > 1 {
			name = "engine-4workers"
		}
		b.Run(name, func(b *testing.B) {
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: 1, Workers: workers}, graph.Line(n))
			s.StepTicks(100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkSimSnapshot measures the incremental snapshot construction on
// a static topology (the per-round cost RunUntilConverged pays on top of
// stepping).
func BenchmarkSimSnapshot(b *testing.B) {
	s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: 1}, graph.Line(1000))
	s.StepTicks(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := s.Snapshot(); snap.G.NumNodes() != 1000 {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkE8bHeadLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E8bHeadLoss(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE14Stabilizers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E14Stabilizers(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE15Collision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E15Collision(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- spatial index benchmarks (PR 2 trajectory: BENCH_spatial.json) ---

// rwpWorld builds a mobile random-waypoint world at constant density
// (mean symmetric degree ≈ 2.7 at range 2.5, matching E7c). The model is
// not yet initialized; callers init it or hand it to NewSpatialTopology.
func rwpWorld(n int) (*space.World, *mobility.Waypoint, []ident.NodeID) {
	w := space.NewWorld(2.5)
	ids := make([]ident.NodeID, n)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Waypoint{Side: 2.7 * math.Sqrt(float64(n)), SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
	return w, m, ids
}

// bruteSymGraph is the seed's all-pairs O(n²) SymmetricGraph — the
// baseline the ≥10× acceptance criterion is measured against.
func bruteSymGraph(w *space.World, ids []ident.NodeID) *graph.G {
	g := graph.New()
	for _, v := range ids {
		g.AddNode(v)
	}
	for i, u := range ids {
		for _, v := range ids[i+1:] {
			if w.CanReach(u, v) && w.CanReach(v, u) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BenchmarkSymmetricGraph measures one full topology rebuild of a sparse
// mobile world at N=5000: the grid-served build (sequential and at 4
// workers) against the all-pairs baseline. A node is moved before every
// grid iteration so the generation cache cannot serve a stale graph —
// each iteration pays the real rebuild.
func BenchmarkSymmetricGraph(b *testing.B) {
	const n = 5000
	run := func(b *testing.B, workers int) {
		w, m, ids := rwpWorld(n)
		m.Init(w, ids, rand.New(rand.NewSource(1)))
		w.Workers = workers
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step(w, 0.2, rng) // realistic per-tick motion busts the cache
			if g := w.SymmetricGraph(); g.NumNodes() != n {
				b.Fatal("bad graph")
			}
		}
	}
	b.Run("grid-seq", func(b *testing.B) { run(b, 1) })
	b.Run("grid-4workers", func(b *testing.B) { run(b, 4) })
	b.Run("brute-force", func(b *testing.B) {
		w, m, ids := rwpWorld(n)
		m.Init(w, ids, rand.New(rand.NewSource(1)))
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step(w, 0.2, rng)
			if g := bruteSymGraph(w, ids); g.NumNodes() != n {
				b.Fatal("bad graph")
			}
		}
	})
}

// BenchmarkSpatialStep is the mobile-scenario engine benchmark at N=5000
// (RWP, constant density): one full tick — mobility, incremental grid
// maintenance, sharded graph rebuild, and the protocol phases — the cost
// every large mobile sweep (E7c) pays per tick.
func BenchmarkSpatialStep(b *testing.B) {
	const n = 5000
	for _, workers := range []int{1, 4} {
		name := "engine-seq"
		if workers > 1 {
			name = "engine-4workers"
		}
		b.Run(name, func(b *testing.B) {
			w, m, ids := rwpWorld(n)
			topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(1)))
			s := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 1, Workers: workers}, topo)
			s.StepTicks(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// --- compute-phase + CSR benchmarks (PR 4 trajectory: BENCH_compute.json) ---

// BenchmarkCompute measures the protocol computation itself at steady
// state on a grid interior node (4 neighbors, Dmax 3): one Receive per
// neighbor plus one Compute — the unit the compute phase pays per node
// per Tc. This is the path the allocation-light rewrite (flat-record
// messages, slice-backed caches) targets.
func BenchmarkCompute(b *testing.B) {
	s := benchSteadySim(b, graph.Grid(5, 5), 3)
	center := NodeID(13) // interior node of the 5×5 grid
	n := s.Nodes[center]
	var msgs []core.Message
	for _, u := range graph.Grid(5, 5).Neighbors(center) {
		msgs = append(msgs, s.Nodes[u].BuildMessage())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			n.Receive(m)
		}
		n.Compute()
	}
}

// BenchmarkCSRBuild measures one bulk CSR construction at n=20000 (the
// mobile-sweep scale where the old map-of-maps assembly was a visible
// per-tick cost), with the edge list pre-extracted so only the build is
// timed, against the retained map-of-maps reference built edge by edge.
func BenchmarkCSRBuild(b *testing.B) {
	const n = 20000
	rng := rand.New(rand.NewSource(3))
	src := graph.RandomGeometric(n, 2.7*math.Sqrt(n), 2.5, rng)
	nodes := src.Nodes()
	var edges []graph.Edge
	for _, u := range nodes {
		for _, v := range src.NeighborsView(u) {
			if u < v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	b.Run("csr-arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g := graph.FromEdges(nodes, edges); g.NumNodes() != n {
				b.Fatal("bad graph")
			}
		}
	})
	b.Run("csr-shared-index", func(b *testing.B) {
		b.ReportAllocs()
		prev := graph.FromEdges(nodes, edges)
		for i := 0; i < b.N; i++ {
			g := graph.FromEdgesShared(prev, nodes, edges)
			if g.NumNodes() != n {
				b.Fatal("bad graph")
			}
			prev = g
		}
	})
	b.Run("map-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ref := graph.NewRef()
			for _, v := range nodes {
				ref.AddNode(v)
			}
			for _, e := range edges {
				ref.AddEdge(e.U, e.V)
			}
			if ref.NumNodes() != n {
				b.Fatal("bad graph")
			}
		}
	})
}

// --- observability benchmarks (PR 3 trajectory: BENCH_obs.json) ---

// obsBenchEngine builds the settled N=5000 mobile RWP scenario the
// observability benchmarks share (100 warm-up ticks: groups have formed,
// mobility keeps churning the topology — the steady state a soak run
// spends its life in).
func obsBenchEngine(workers int) *engine.Engine {
	w, m, ids := rwpWorld(5000)
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(1)))
	s := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 1, Workers: workers}, topo)
	s.StepTicks(100)
	return s
}

// bruteRecord derives one full per-round stat record — everything
// obs.RoundStats carries: ΠA, per-group ΠS rate, ΠM, nee, and the
// transition predicates ΠT/ΠC against the previous round — through the
// brute-force snapshot path. This is what a PR 2-era soak loop had to
// pay per observed round.
func bruteRecord(s *engine.Engine, mt *metrics.Tracker) {
	snap := s.Snapshot()
	snap.Agreement()
	snap.SafetyRate(3)
	snap.Maximality(3)
	snap.ExternalEdges()
	mt.Observe(snap, 3) // ΠT, ΠC, membership churn (clones the config)
}

// BenchmarkGroupTracker is the soak-loop unit: one full round (Tc ticks)
// plus one observation, on the incremental tracker and on the
// brute-force snapshot path producing the same record.
func BenchmarkGroupTracker(b *testing.B) {
	b.Run("tracker-4workers", func(b *testing.B) {
		s := obsBenchEngine(4)
		tr := obs.NewGroupTracker(s)
		tr.Observe()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepRound()
			if st := tr.Observe(); st.Nodes != 5000 {
				b.Fatal("bad stats")
			}
		}
	})
	b.Run("snapshot-4workers", func(b *testing.B) {
		s := obsBenchEngine(4)
		mt := metrics.NewTracker()
		mt.Observe(s.Snapshot(), 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepRound()
			bruteRecord(s, mt)
		}
	})
}

// BenchmarkSpatialStepStats is the acceptance benchmark: the N=5000
// mobile tick *with per-round statistics enabled*, observing every tick
// — on the PR 2 path (full snapshot re-derivation) and on the
// incremental tracker. Compare with the stats-free BenchmarkSpatialStep
// to isolate the observability overhead; the acceptance ratio is
// (snapshot-stats − step) / (tracker-stats − step).
func BenchmarkSpatialStepStats(b *testing.B) {
	b.Run("nostats-4workers", func(b *testing.B) { // control: the bare settled tick
		s := obsBenchEngine(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("snapshot-4workers", func(b *testing.B) {
		s := obsBenchEngine(4)
		mt := metrics.NewTracker()
		mt.Observe(s.Snapshot(), 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
			bruteRecord(s, mt)
		}
	})
	b.Run("tracker-4workers", func(b *testing.B) {
		s := obsBenchEngine(4)
		tr := obs.NewGroupTracker(s)
		tr.Observe()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
			if st := tr.Observe(); st.Nodes != 5000 {
				b.Fatal("bad stats")
			}
		}
	})
}

// --- antlist arena + delta-graph benchmarks (PR 5 trajectory: BENCH_antlist.json) ---

// foldLists builds the message lists a settled grid-interior node folds
// every compute: four neighbors, each advertising a 4-position list over
// the same group (the BenchmarkCompute scenario at the antlist level).
func foldLists() (owner ident.Entry, lists []antlist.List) {
	mkSet := func(ids ...uint32) antlist.Set {
		s := antlist.Set{}
		for _, id := range ids {
			s = s.Add(ident.Plain(ident.NodeID(id)))
		}
		return s
	}
	owner = ident.Plain(13)
	for _, nb := range []uint32{8, 12, 14, 18} {
		lists = append(lists, antlist.FromSets(
			mkSet(nb), mkSet(7, 13, 17), mkSet(2, 6, 12, 22), mkSet(1, 3, 11, 21),
		))
	}
	return owner, lists
}

// BenchmarkFold measures the per-compute ⊕ fold — the antlist machinery
// the arena rewrite targets — on the recycled Builder (steady state: the
// commit returns the previous allocation untouched) and on the retained
// nested copy-on-write reference the pre-arena code ran. The allocs/op
// column is the acceptance axis: the arena fold must allocate ≥5× less.
func BenchmarkFold(b *testing.B) {
	owner, lists := foldLists()
	b.Run("arena-builder", func(b *testing.B) {
		var bld antlist.Builder
		var prev antlist.List
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld.BeginRound(owner)
			for _, l := range lists {
				bld.Ant(l)
			}
			prev = bld.View().Publish(prev)
		}
		if prev.NodeCount() == 0 {
			b.Fatal("empty fold")
		}
	})
	b.Run("nested-reference", func(b *testing.B) {
		var refs []antlist.RefList
		for _, l := range lists {
			refs = append(refs, l.Ref())
		}
		var out antlist.RefList
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = antlist.RefList{antlist.Set{owner}}
			for _, r := range refs {
				out = out.Ant(r)
			}
		}
		if out.NodeCount() == 0 {
			b.Fatal("empty fold")
		}
	})
}

// BenchmarkIncrementalGraph measures mobile graph maintenance at n=20000
// in the mostly-parked regime (2% of nodes move per rebuild): the
// delta-incremental path (vicinity re-scan of the movers + ApplyDelta
// CSR patch) against the full FromEdgesShared rebuild of the same world.
// The acceptance criterion is delta < full at this scale.
func BenchmarkIncrementalGraph(b *testing.B) {
	const n = 20000
	const movers = n / 50
	run := func(b *testing.B, disable bool) {
		w, m, ids := rwpWorld(n)
		m.Init(w, ids, rand.New(rand.NewSource(1)))
		w.Workers = 4
		w.DisableDelta = disable
		side := 2.7 * math.Sqrt(float64(n))
		rng := rand.New(rand.NewSource(2))
		if g := w.SymmetricGraph(); g.NumNodes() != n {
			b.Fatal("bad graph")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < movers; j++ {
				v := ids[rng.Intn(n)]
				w.Place(v, space.Point{X: rng.Float64() * side, Y: rng.Float64() * side})
			}
			if g := w.SymmetricGraph(); g.NumNodes() != n {
				b.Fatal("bad graph")
			}
		}
	}
	b.Run("delta-patch", func(b *testing.B) { run(b, false) })
	b.Run("full-rebuild", func(b *testing.B) { run(b, true) })
}

// --- slot-indexed engine + activity-skip benchmarks (PR 6 trajectory: BENCH_engine.json) ---

// parkedEngine builds the n=50000 mostly-parked commuter world (2% of the
// nodes drive random-waypoint journeys, the rest stay parked, constant
// density) and settles it for 100 ticks so the parked clusters have
// converged — the regime where tick cost must track the active set, not
// the roster.
func parkedEngine(workers int, eager, noMemo bool) *engine.Engine {
	return parkedEngineAt(workers, eager, noMemo, 0.02)
}

// parkedEngineAt is parkedEngine with the commuter active fraction as a
// parameter, for the parked→mobile sweep.
func parkedEngineAt(workers int, eager, noMemo bool, active float64) *engine.Engine {
	const n = 50000
	w := space.NewWorld(2.5)
	ids := make([]ident.NodeID, n)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Commuter{Side: 2.7 * math.Sqrt(float64(n)), SpeedMin: 0.5, SpeedMax: 2,
		Pause: 1, ActiveFraction: active}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(1)))
	s := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 1, Workers: workers,
		EagerCompute: eager, DisableMemo: noMemo}, topo)
	s.StepTicks(100)
	return s
}

// BenchmarkParkedTick is the PR 6/9 acceptance benchmark: the settled
// parked-world tick at n=50000 with the full skip stack on (the default:
// signature skip + fixpoint memo), with the memo disabled (the PR 6-era
// version-grained skip alone), and with everything off (EagerCompute —
// every parked node re-derives its no-op round, the pre-skip cost model
// on the slot-indexed engine). The PR 5 baseline for the same world is
// this benchmark run on the PR 5 tree; all are recorded in
// BENCH_engine.json. skipfrac reports the fraction of compute boundaries
// the measured ticks satisfied without executing; memofrac is the share
// satisfied by memoized fixpoint replays specifically (the ISSUE 9
// layer; bench-trend gates both). The wake* metrics decompose the
// *executed* computes by the flight recorder's attributed cause
// (self-activity vs inbox traffic vs boundary-memory hold expiry vs
// memo misses), the profile ROADMAP item 1 optimizes against. The
// attribution must account for every executed compute, and the measured
// ticks must be allocation-free — both asserted here.
func BenchmarkParkedTick(b *testing.B) {
	modes := []struct {
		name          string
		eager, noMemo bool
	}{
		{"skip-4workers", false, false},
		{"nomemo-4workers", false, true},
		{"eager-4workers", true, false},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			s := parkedEngine(4, mode.eager, mode.noMemo)
			s.ComputesRun, s.ComputesSkipped = 0, 0
			before := s.Introspect().Snapshot().Counters
			phaseBefore := s.Introspect().Snapshot().PhaseNs
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.StopTimer()
			after := s.Introspect().Snapshot().Counters
			// Flight-recorder per-phase wall clock, per tick: benchtrend
			// promotes each ph_<name>_ns column to its own trend line, so a
			// phase regressing inside a flat total still trips the gate.
			for name, ns := range s.Introspect().Snapshot().PhaseNs {
				b.ReportMetric(float64(ns-phaseBefore[name])/float64(b.N), "ph_"+name+"_ns")
			}
			if total := s.ComputesRun + s.ComputesSkipped; total > 0 {
				b.ReportMetric(float64(s.ComputesSkipped)/float64(total), "skipfrac")
				if !mode.eager && !mode.noMemo {
					memo := after["skips_memo"] - before["skips_memo"]
					b.ReportMetric(float64(memo)/float64(total), "memofrac")
				}
			}
			run := after["computes_run"] - before["computes_run"]
			if run > 0 {
				var sum uint64
				for c := introspect.WakeCause(0); c < introspect.NumWakeCauses; c++ {
					sum += after[c.Counter().String()] - before[c.Counter().String()]
				}
				if sum != run {
					b.Errorf("wake causes sum to %d over %d executed computes", sum, run)
				}
				frac := func(names ...string) float64 {
					var n uint64
					for _, name := range names {
						n += after[name] - before[name]
					}
					return float64(n) / float64(run)
				}
				b.ReportMetric(frac("wakes_self_active"), "wakeself")
				b.ReportMetric(frac("wakes_inbox_new", "wakes_inbox_lost"), "wakeinbox")
				b.ReportMetric(frac("wakes_hold_expiry"), "wakehold")
				b.ReportMetric(frac("wakes_memo_miss"), "wakememo")
			}
		})
	}
}

// BenchmarkParkedSweep charts the activity-driven scheduler across the
// parked→mobile spectrum: the same n=50000 commuter world with a rising
// fraction of nodes on the move. Tick cost should track the active set —
// near-flat replay cost at the parked end, converging to the eager cost
// as everything moves (EXPERIMENTS.md, parked-world sweep).
func BenchmarkParkedSweep(b *testing.B) {
	for _, active := range []float64{0, 0.02, 0.10, 0.50} {
		b.Run(fmt.Sprintf("active=%g", active), func(b *testing.B) {
			s := parkedEngineAt(4, false, false, active)
			s.ComputesRun, s.ComputesSkipped = 0, 0
			before := s.Introspect().Snapshot().Counters["skips_memo"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.StopTimer()
			if total := s.ComputesRun + s.ComputesSkipped; total > 0 {
				b.ReportMetric(float64(s.ComputesSkipped)/float64(total), "skipfrac")
				memo := s.Introspect().Snapshot().Counters["skips_memo"] - before
				b.ReportMetric(float64(memo)/float64(total), "memofrac")
			}
		})
	}
}

// shardedCounters sums a boundary counter across both shard registries.
func shardedCounters(shards []*dist.Shard, name string) uint64 {
	var n uint64
	for _, sh := range shards {
		n += sh.E.Introspect().Snapshot().Counters[name]
	}
	return n
}

// BenchmarkShardedTick is the PR 10 acceptance benchmark: the n=50000
// commuter-world tick single-process versus split over two shard owners
// on the loopback transport. The sharded variant reports the boundary
// traffic per tick (bytes, frames, elided frames, external deliveries)
// from the new flight-recorder counters — with delta encoding the bytes
// must be sublinear in n (the slab boundary is one-dimensional), which
// BENCH_dist.json records against the single-process wall clock.
func BenchmarkShardedTick(b *testing.B) {
	soak := obs.SoakConfig{N: 50000, ActiveFraction: 0.05, Seed: 1, Dmax: 3, Workers: 4}
	const warm = 100

	b.Run("1proc-4workers", func(b *testing.B) {
		cfg := soak
		w, mob, ids := obs.BuildSoakWorld(&cfg)
		topo := engine.NewSpatialTopology(w, mob, cfg.DT, ids, rand.New(rand.NewSource(cfg.Seed)))
		e := engine.New(engine.Params{Cfg: core.Config{Dmax: cfg.Dmax}, Seed: cfg.Seed, Workers: cfg.Workers}, topo)
		e.StepTicks(warm)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})

	b.Run("2shards-loopback-4workers", func(b *testing.B) {
		trs := dist.NewLoopback(2)
		cfg := dist.Config{Soak: soak, Shards: 2}
		shards := make([]*dist.Shard, 2)
		for i := range shards {
			var err error
			if shards[i], err = dist.NewShard(cfg, i, trs[i]); err != nil {
				b.Fatal(err)
			}
		}
		// The peer runs the identical tick count in lockstep; the barrier
		// makes the measured loop the wall clock of the whole 2-shard
		// system, which is the number that compares against 1proc.
		done := make(chan error, 1)
		go func() {
			for i := 0; i < warm+b.N; i++ {
				if err := shards[1].Tick(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		for i := 0; i < warm; i++ {
			if err := shards[0].Tick(); err != nil {
				b.Fatal(err)
			}
		}
		bytesBefore := shardedCounters(shards, "boundary_bytes_sent")
		framesBefore := shardedCounters(shards, "boundary_frames")
		elidedBefore := shardedCounters(shards, "boundary_frames_elided")
		extBefore := shardedCounters(shards, "ext_deliveries")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := shards[0].Tick(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		n := float64(b.N)
		b.ReportMetric(float64(shardedCounters(shards, "boundary_bytes_sent")-bytesBefore)/n, "boundbytes/tick")
		b.ReportMetric(float64(shardedCounters(shards, "boundary_frames")-framesBefore)/n, "boundframes/tick")
		b.ReportMetric(float64(shardedCounters(shards, "boundary_frames_elided")-elidedBefore)/n, "boundelided/tick")
		b.ReportMetric(float64(shardedCounters(shards, "ext_deliveries")-extBefore)/n, "extdeliv/tick")
	})
}
