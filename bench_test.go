package grp

// The benchmark harness: one testing.B benchmark per experiment of the
// evaluation (DESIGN.md §4). Each benchmark regenerates its table end to
// end — workload generation, protocol execution, predicate checking — so
// `go test -bench=.` both re-derives every reported number and measures
// the cost of producing it. A reduced seed count keeps individual
// iterations in the hundreds of milliseconds; cmd/grpexp runs the same
// code with the full seed count.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/sim"
)

const benchSeeds = 2

func BenchmarkE1Stabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E1Stabilization(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE2Agreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E2Agreement(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE4Maximality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E4MergeGadgets(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE5Compatible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E5Compatibility(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE6Continuity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E6Continuity(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, c := experiments.E7Scaling(1)
		if len(a.Rows) == 0 || len(c.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE8Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E8Lifetime(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE9Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E9Loss(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE10Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E10Ablation(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE11Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E11Overhead(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE12Quarantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E12Quarantine(benchSeeds); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE13Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E13Density(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Micro-benchmarks of the protocol itself: the per-node cost of one
// compute and one broadcast at steady state, which bounds what a real
// deployment spends per Tc/Ts period.

func benchSteadySim(b *testing.B, g *graph.G, dmax int) *sim.Sim {
	b.Helper()
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: dmax}, Seed: 1}, g)
	s.RunUntilConverged(400, 3)
	return s
}

func BenchmarkNodeCompute(b *testing.B) {
	s := benchSteadySim(b, graph.Line(10), 4)
	n := s.Nodes[5]
	msgs := []core.Message{
		s.Nodes[NodeID(4)].BuildMessage(),
		s.Nodes[NodeID(6)].BuildMessage(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			n.Receive(m)
		}
		n.Compute()
	}
}

func BenchmarkNodeBuildMessage(b *testing.B) {
	s := benchSteadySim(b, graph.Line(10), 4)
	n := s.Nodes[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := n.BuildMessage()
		if m.From != 5 {
			b.Fatal("bad message")
		}
	}
}

func BenchmarkSimRound100Nodes(b *testing.B) {
	s := benchSteadySim(b, graph.Line(100), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepRound()
	}
}

func BenchmarkE8bHeadLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E8bHeadLoss(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE14Stabilizers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E14Stabilizers(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE15Collision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E15Collision(1); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}
