// Command grpsim runs one GRP scenario and prints the evolution of the
// groups round by round — the quickest way to watch the protocol converge,
// split and merge.
//
// Usage:
//
//	grpsim -topo line -n 8 -dmax 3 -rounds 60 [-seed 1] [-loss 0.1] [-watch] [-workers 4]
//	grpsim -topo highway -n 12 -dmax 4 -rounds 120
//	grpsim -topo waypoint -n 200 -rounds 300 -stats run.jsonl
//
// Topologies: line, ring, grid (rows x cols ≈ n), star, clique, clusters,
// rgg, highway (mobile), waypoint (mobile), convoy (mobile), urban
// (mobile, obstacle walls). The mobile worlds scale their area with n
// (constant density), so -n 20000 is a realistic spatial-index workload.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/space"
)

func main() {
	topo := flag.String("topo", "line", "topology: line ring grid star clique clusters rgg highway waypoint convoy urban")
	n := flag.Int("n", 8, "number of nodes")
	dmax := flag.Int("dmax", 3, "group diameter bound Dmax")
	rounds := flag.Int("rounds", 60, "rounds to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	loss := flag.Float64("loss", 0, "i.i.d. message loss probability")
	watch := flag.Bool("watch", false, "print groups every round (default: only on change)")
	workers := flag.Int("workers", 1, "engine worker fan-out (same trace at any width)")
	stats := flag.String("stats", "", "stream per-round stat records to this file (.csv: CSV, else JSONL)")
	introspectAddr := flag.String("introspect", "", "serve net/http/pprof and the flight-recorder registry JSON on this address while the run lasts")
	flag.Parse()

	p := engine.Params{Cfg: core.Config{Dmax: *dmax}, Seed: *seed, Workers: *workers}
	if *loss > 0 {
		p.Channel = radio.Lossy{P: *loss}
	}

	s, err := build(p, *topo, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grpsim:", err)
		os.Exit(2)
	}
	if *introspectAddr != "" {
		srv, err := introspect.Serve(*introspectAddr, s.Introspect())
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsim:", err)
			os.Exit(2)
		}
		defer srv.Close()
	}

	// The round loop reads everything — the partition, the predicates and
	// the optional stat stream — from the incremental tracker; the
	// brute-force snapshot path stays available as the test oracle but is
	// no longer paid per round here.
	tr := obs.NewGroupTracker(s)
	var sink obs.Sink
	if *stats != "" {
		var err error
		sink, err = obs.OpenSink(*stats, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsim:", err)
			os.Exit(2)
		}
	}

	last := ""
	var st obs.RoundStats
	for r := 1; r <= *rounds; r++ {
		s.StepRound()
		st = tr.Observe()
		if sink != nil {
			if err := sink.Write(st); err != nil {
				fmt.Fprintln(os.Stderr, "grpsim:", err)
				os.Exit(1)
			}
		}
		cur := fmt.Sprintf("%v", tr.Groups())
		if *watch || cur != last {
			conv := ""
			if st.Converged {
				conv = "  [ΠA∧ΠS∧ΠM]"
			}
			fmt.Printf("round %3d: %s%s\n", r, cur, conv)
			last = cur
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "grpsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nfinal: groups=%d singletons=%d mean_size=%.2f converged=%v\n",
		st.Groups, st.Singletons, st.MeanSize, st.Converged)
	fmt.Printf("traffic: %d msgs, %d bytes, %d deliveries\n", s.MessagesSent, s.BytesSent, s.Deliveries)
}

func build(p engine.Params, topo string, n int, seed int64) (*engine.Engine, error) {
	switch topo {
	case "line":
		return engine.NewStatic(p, graph.Line(n)), nil
	case "ring":
		return engine.NewStatic(p, graph.Ring(n)), nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 1 {
			side = 1
		}
		return engine.NewStatic(p, graph.Grid(side, (n+side-1)/side)), nil
	case "star":
		return engine.NewStatic(p, graph.Star(n)), nil
	case "clique":
		return engine.NewStatic(p, graph.Complete(n)), nil
	case "clusters":
		k := n / 4
		if k < 2 {
			k = 2
		}
		return engine.NewStatic(p, graph.Clusters(k, 4, 0, false)), nil
	case "rgg":
		g := graph.ConnectedRandomGeometric(n, 12, 3, rand.New(rand.NewSource(seed)), 300)
		if g == nil {
			return nil, fmt.Errorf("no connected rgg instance for n=%d seed=%d", n, seed)
		}
		return engine.NewStatic(p, g), nil
	case "highway":
		w := space.NewWorld(8)
		m := &mobility.Highway{Length: 80, Lanes: 2, LaneGap: 2, SpeedMin: 10, SpeedMax: 14}
		return engine.New(p, engine.NewSpatialTopology(w, m, 0.05, ids(n), rand.New(rand.NewSource(seed)))), nil
	case "waypoint":
		w := space.NewWorld(6)
		// Constant density: the square grows with n, preserving the
		// sparse regime of the old fixed side=25 world at its default
		// n=8 (mean symmetric degree ≈ 1.5).
		side := math.Max(25, 8.8*math.Sqrt(float64(n)))
		m := &mobility.Waypoint{Side: side, SpeedMin: 0.5, SpeedMax: 1.5, Pause: 2}
		return engine.New(p, engine.NewSpatialTopology(w, m, 0.2, ids(n), rand.New(rand.NewSource(seed)))), nil
	case "urban":
		// A Manhattan-style block grid: north-south and east-west walls
		// with street gaps, over random-waypoint traffic — the workload
		// that exercises the wall-to-cell index.
		w := space.NewWorld(6)
		side := math.Max(30, 8.8*math.Sqrt(float64(n)))
		const block = 12.0
		for x := block; x < side; x += block {
			for y := 0.0; y < side; y += block {
				w.Walls = append(w.Walls,
					space.Segment{A: space.Point{X: x, Y: y + 2}, B: space.Point{X: x, Y: y + block - 2}},
					space.Segment{A: space.Point{X: y + 2, Y: x}, B: space.Point{X: y + block - 2, Y: x}})
			}
		}
		m := &mobility.Waypoint{Side: side, SpeedMin: 0.5, SpeedMax: 1.5, Pause: 1}
		return engine.New(p, engine.NewSpatialTopology(w, m, 0.2, ids(n), rand.New(rand.NewSource(seed)))), nil
	case "convoy":
		w := space.NewWorld(4)
		m := &mobility.Convoy{Spacing: 3, Speed: 8}
		return engine.New(p, engine.NewSpatialTopology(w, m, 0.1, ids(n), rand.New(rand.NewSource(seed)))), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func ids(n int) []ident.NodeID {
	out := make([]ident.NodeID, n)
	for i := range out {
		out[i] = ident.NodeID(i + 1)
	}
	return out
}
