// Command benchtrend maintains the repository's benchmark trend history:
// it parses `go test -bench` output, appends one machine-readable record
// per benchmark to a JSONL history file, and fails when a benchmark
// regressed more than a threshold against the rolling median of its own
// recent history. The scheduled bench-trend workflow runs it on the bench
// smoke suite and commits the updated history back, so the trend file is
// an append-only, reviewable perf trajectory of the repository.
//
// Usage:
//
//	go test -run XXX -bench ... -benchtime 3x . | benchtrend -history bench/history.jsonl
//	go test -run XXX -bench ... -count 3 . | benchtrend -median -history bench/history.jsonl
//
// With -median, repeated result lines for the same benchmark (go test
// -count N) are collapsed to their median ns/op before judging, so one
// noisy run cannot trip the gate.
//
// Benchmarks that report flight-recorder per-phase timings as
// `ph_<name>_ns` metric columns get one derived record per phase,
// `<bench>/phase:<name>`, judged and recorded first-class (see
// promotePhases; -phases=false disables). The per-phase gates catch a
// regression that hides inside a flat total — one phase slowing while
// another speeds up.
//
// Each benchmark is judged against a per-benchmark gate of
// max(-max-regress, 2× its noise floor), where the floor is the relative
// median absolute deviation of its recent history — a benchmark whose
// history routinely jitters ±8% is not paged for a +11% run, while a
// quiet benchmark keeps the tight fixed threshold. The verdict line
// prints both the floor and the effective gate.
//
// Exit status: 0 when no benchmark regressed (or history is still too
// short to judge), 1 on regression, 2 on usage/IO errors. Records are
// appended before the verdict, so a regressed run is still visible in
// the history it was judged against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// record is one benchmark observation, one JSON object per history line.
type record struct {
	TS      string             `json:"ts"`     // RFC3339 UTC
	Commit  string             `json:"commit"` // full or short hash, best effort
	Bench   string             `json:"bench"`  // benchmark name with sub-bench path, GOMAXPROCS suffix stripped
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int                `json:"iters"`
	Metrics map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric columns (skipfrac, memofrac, …)
}

// benchLine matches `go test -bench` result rows:
//
//	BenchmarkName/sub-4    	     10	  12345678 ns/op	  0.97 skipfrac
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.e+]+) ns/op`)

// metricPair matches the `<value> <unit>` columns after ns/op. The
// allocation columns go test itself appends are skipped below; what
// remains are the benchmark's own b.ReportMetric columns.
var metricPair = regexp.MustCompile(`([0-9.e+-]+) ([A-Za-z][A-Za-z0-9_/%-]*)`)

func main() {
	in := flag.String("in", "-", "bench output to parse ('-' = stdin)")
	historyPath := flag.String("history", "bench/history.jsonl", "JSONL history file (appended)")
	maxRegress := flag.Float64("max-regress", 0.10, "fail when ns/op exceeds the rolling median by more than this fraction")
	window := flag.Int("window", 10, "history entries per benchmark the rolling median is taken over")
	minHistory := flag.Int("min-history", 3, "minimum prior entries before a benchmark is judged")
	commit := flag.String("commit", "", "commit hash to record (default: $GITHUB_SHA, then git rev-parse)")
	noAppend := flag.Bool("check-only", false, "judge against history without appending")
	useMedian := flag.Bool("median", false, "collapse repeated lines per benchmark (go test -count N) to their median ns/op before judging")
	minMetric := flag.String("min-metric", "", "comma list of benchprefix:metric:floor — fail when a matching benchmark's reported metric is below floor or missing")
	promote := flag.Bool("phases", true, "promote ph_<name>_ns metrics (flight-recorder per-phase nanoseconds) to derived <bench>/phase:<name> records, judged and recorded like benchmarks of their own")
	flag.Parse()

	floors, err := parseMetricFloors(*minMetric)
	if err != nil {
		fatal("bad -min-metric: %v", err)
	}

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("open input: %v", err)
		}
		defer f.Close()
		src = f
	}
	fresh, err := parseBench(src)
	if err != nil {
		fatal("parse bench output: %v", err)
	}
	if len(fresh) == 0 {
		fatal("no benchmark result lines found")
	}
	if *promote {
		fresh = promotePhases(fresh)
	}
	if *useMedian {
		fresh = collapseMedian(fresh)
	}

	history, err := loadHistory(*historyPath)
	if err != nil {
		fatal("load history: %v", err)
	}

	now := time.Now().UTC().Format(time.RFC3339)
	hash := resolveCommit(*commit)
	for i := range fresh {
		fresh[i].TS = now
		fresh[i].Commit = hash
	}

	regressed, degenerate := 0, 0
	for _, r := range fresh {
		prior := tail(history[r.Bench], *window)
		v := judge(r, prior, *maxRegress, *minHistory)
		switch v.kind {
		case verdictSeed:
			fmt.Printf("seed  %-60s %12.0f ns/op  (%d prior entries, not judged)\n",
				r.Bench, r.NsPerOp, len(prior))
		case verdictDegenerate:
			degenerate++
			fmt.Printf("DEGEN %-60s %12.0f ns/op  median %12.0f  (non-positive sample or median, refusing to judge)\n",
				r.Bench, r.NsPerOp, v.med)
		default:
			if v.kind == verdictRegression {
				regressed++
			}
			fmt.Printf("%s %-60s %12.0f ns/op  median %12.0f  %+6.1f%%  floor %4.1f%% gate %4.1f%%\n",
				v.kind, r.Bench, r.NsPerOp, v.med, 100*v.delta, 100*v.floor, 100*v.gate)
		}
	}

	violations := checkMetricFloors(fresh, floors)
	for _, v := range violations {
		fmt.Println("FLOOR", v)
	}

	if !*noAppend {
		if err := appendHistory(*historyPath, fresh); err != nil {
			fatal("append history: %v", err)
		}
	}
	if regressed > 0 || degenerate > 0 || len(violations) > 0 {
		if regressed > 0 {
			fmt.Fprintf(os.Stderr, "benchtrend: %d benchmark(s) regressed beyond max(%.0f%%, 2x noise floor)\n",
				regressed, 100**maxRegress)
		}
		if degenerate > 0 {
			fmt.Fprintf(os.Stderr, "benchtrend: %d benchmark(s) had a degenerate sample or history and could not be judged\n",
				degenerate)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "benchtrend: %d metric floor violation(s)\n", len(violations))
		}
		os.Exit(1)
	}
}

// promotePhases lifts flight-recorder per-phase timings out of the metric
// columns into derived records. A benchmark that reports `ph_<name>_ns`
// (per-op nanoseconds spent in engine phase <name>, from the registry's
// PhaseNs section) yields one extra record per phase named
// `<bench>/phase:<name>`, which then flows through median collapsing,
// history, and the regression gate exactly like a benchmark of its own —
// so a deliver-phase regression hidden inside a flat total still pages.
// The promoted metrics are removed from the parent record: the phase
// history lives on the derived lines, not duplicated in both.
func promotePhases(recs []record) []record {
	out := recs[:len(recs):len(recs)]
	for i := range recs {
		r := &recs[i]
		var names []string
		for unit := range r.Metrics {
			if strings.HasPrefix(unit, "ph_") && strings.HasSuffix(unit, "_ns") && len(unit) > len("ph_")+len("_ns") {
				names = append(names, unit)
			}
		}
		sort.Strings(names) // map order is random; history order should not be
		for _, unit := range names {
			phase := unit[len("ph_") : len(unit)-len("_ns")]
			out = append(out, record{
				Bench:   r.Bench + "/phase:" + phase,
				NsPerOp: r.Metrics[unit],
				Iters:   r.Iters,
			})
			delete(r.Metrics, unit)
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
	}
	return out
}

// metricFloor is one -min-metric clause: every fresh benchmark whose name
// starts with prefix must report metric at or above floor.
type metricFloor struct {
	prefix, metric string
	floor          float64
}

func parseMetricFloors(spec string) ([]metricFloor, error) {
	if spec == "" {
		return nil, nil
	}
	var out []metricFloor
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("%q is not benchprefix:metric:floor", clause)
		}
		floor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || math.IsNaN(floor) {
			return nil, fmt.Errorf("%q: bad floor %q", clause, parts[2])
		}
		out = append(out, metricFloor{prefix: parts[0], metric: parts[1], floor: floor})
	}
	return out, nil
}

// checkMetricFloors enforces the -min-metric clauses against the fresh
// records. A clause that matches no benchmark, a matching benchmark that
// stopped reporting the metric, and a NaN value all violate: a floor
// that silently stops measuring is indistinguishable from a pass.
func checkMetricFloors(fresh []record, floors []metricFloor) []string {
	var out []string
	for _, fl := range floors {
		matched := false
		for _, r := range fresh {
			if !strings.HasPrefix(r.Bench, fl.prefix) {
				continue
			}
			matched = true
			v, ok := r.Metrics[fl.metric]
			if !ok {
				out = append(out, fmt.Sprintf("%s: metric %q not reported (floor %g)", r.Bench, fl.metric, fl.floor))
				continue
			}
			if !(v >= fl.floor) { // NaN fails too
				out = append(out, fmt.Sprintf("%s: %s = %g below floor %g", r.Bench, fl.metric, v, fl.floor))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("no benchmark matches prefix %q (floor %s:%g)", fl.prefix, fl.metric, fl.floor))
		}
	}
	return out
}

// Verdict kinds. The degenerate kind exists so a zero or non-finite
// median (corrupt history, a bogus 0 ns/op sample) fails the run loudly
// instead of turning the delta into NaN — which compares false against
// any gate and used to print as "ok".
const (
	verdictSeed       = "seed "
	verdictOK         = "ok   "
	verdictRegression = "REGRESSION"
	verdictDegenerate = "DEGEN"
)

// verdict is one benchmark's judgement against its prior window.
type verdict struct {
	kind                    string
	med, delta, floor, gate float64
}

// judge compares a fresh observation against its history window. A
// minHistory below 1 is treated as 1: judging against an empty window
// has no median to compare to (and used to panic inside median).
func judge(r record, prior []record, maxRegress float64, minHistory int) verdict {
	if minHistory < 1 {
		minHistory = 1
	}
	if len(prior) < minHistory {
		return verdict{kind: verdictSeed}
	}
	med := median(prior)
	// !(x > 0) also catches NaN; Inf survives the comparison, so test it
	// explicitly. Either way the ratio below would be meaningless.
	if !(med > 0) || math.IsInf(med, 0) || !(r.NsPerOp > 0) || math.IsInf(r.NsPerOp, 0) {
		return verdict{kind: verdictDegenerate, med: med}
	}
	floor := noiseFloor(prior, med)
	gate := maxRegress
	if g := 2 * floor; g > gate {
		gate = g
	}
	delta := r.NsPerOp/med - 1
	kind := verdictOK
	if delta > gate {
		kind = verdictRegression
	}
	return verdict{kind: kind, med: med, delta: delta, floor: floor, gate: gate}
}

func parseBench(r io.Reader) ([]record, error) {
	var out []record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		loc := benchLine.FindStringSubmatchIndex(line)
		if loc == nil {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rec := record{Bench: stripProcs(m[1]), NsPerOp: ns, Iters: iters}
		rec.Metrics = parseMetrics(line[loc[1]:])
		out = append(out, rec)
	}
	return out, sc.Err()
}

// parseMetrics extracts the custom b.ReportMetric columns from the tail
// of a result row (everything after "ns/op"), dropping the allocation
// and throughput columns go test appends on its own.
func parseMetrics(tail string) map[string]float64 {
	var out map[string]float64
	for _, p := range metricPair.FindAllStringSubmatch(tail, -1) {
		unit := p[2]
		switch unit {
		case "B/op", "allocs/op", "MB/s":
			continue
		}
		v, err := strconv.ParseFloat(p[1], 64)
		if err != nil {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[unit] = v
	}
	return out
}

// stripProcs drops the trailing -<GOMAXPROCS> suffix go test appends, so
// histories stay comparable across runner core counts. (The numbers are
// only judged against the same history file, which a given runner owns.)
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// collapseMedian reduces `go test -count N` repetitions to one record per
// benchmark carrying the median ns/op (and that run's iteration count),
// preserving first-appearance order. One noisy run out of N then cannot
// trip the regression gate, while a real slowdown moves every run and the
// median with it.
func collapseMedian(recs []record) []record {
	order := make([]string, 0, len(recs))
	groups := make(map[string][]record, len(recs))
	for _, r := range recs {
		if _, ok := groups[r.Bench]; !ok {
			order = append(order, r.Bench)
		}
		groups[r.Bench] = append(groups[r.Bench], r)
	}
	out := make([]record, 0, len(order))
	for _, name := range order {
		g := groups[name]
		med := median(g)
		// Report the run closest to the median so iters stays a real
		// observation (the even-count midpoint is synthetic).
		best := g[0]
		for _, r := range g[1:] {
			if abs(r.NsPerOp-med) < abs(best.NsPerOp-med) {
				best = r
			}
		}
		best.NsPerOp = med
		out = append(out, best)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func loadHistory(path string) (map[string][]record, error) {
	out := make(map[string][]record)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("bad history line %q: %v", line, err)
		}
		out[r.Bench] = append(out[r.Bench], r)
	}
	return out, sc.Err()
}

func appendHistory(path string, recs []record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		b, merr := json.Marshal(r)
		if merr != nil {
			f.Close()
			return merr
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	// The close error matters as much as the flush: a full disk can eat
	// the appended records at either step, and a silently truncated
	// history would judge every future run against a corrupt window.
	err = w.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func resolveCommit(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func tail(rs []record, k int) []record {
	if len(rs) > k {
		return rs[len(rs)-k:]
	}
	return rs
}

// noiseFloor estimates a benchmark's run-to-run noise as the relative
// median absolute deviation of its recent history: MAD(prior) / median.
// The MAD resists the same single-outlier runs the median does, so a
// history with one wild entry still yields a tight floor, while a
// benchmark that genuinely jitters ±8% per run gets a proportionally
// wide one. The regression gate is max(-max-regress, 2×floor): on quiet
// benchmarks the fixed threshold governs, on noisy ones the gate widens
// so routine jitter cannot page anyone, at the cost of only catching
// regressions that clear twice the observed noise.
func noiseFloor(prior []record, med float64) float64 {
	if med <= 0 {
		return 0
	}
	devs := make([]record, len(prior))
	for i, r := range prior {
		devs[i] = record{NsPerOp: abs(r.NsPerOp - med)}
	}
	f := median(devs) / med
	// A non-finite floor would widen the gate to infinity and wave every
	// regression through; fall back to the fixed threshold instead.
	if !(f >= 0) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

func median(rs []record) float64 {
	if len(rs) == 0 {
		return 0
	}
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = r.NsPerOp
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(2)
}
