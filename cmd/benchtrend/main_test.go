package main

import (
	"strings"
	"testing"
)

func TestCollapseMedian(t *testing.T) {
	out, err := parseBench(strings.NewReader(`
goos: linux
BenchmarkA-8    	     100	  1000 ns/op
BenchmarkB-8    	      50	  7000 ns/op
BenchmarkA-8    	     120	  5000 ns/op
BenchmarkA-8    	     110	  1200 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	got := collapseMedian(out)
	if len(got) != 2 {
		t.Fatalf("collapsed to %d records, want 2: %+v", len(got), got)
	}
	// First-appearance order preserved; A's median of {1000, 5000, 1200}
	// is 1200, carried by the run that produced it.
	if got[0].Bench != "BenchmarkA" || got[0].NsPerOp != 1200 || got[0].Iters != 110 {
		t.Errorf("A = %+v, want median 1200 ns/op from the 110-iter run", got[0])
	}
	if got[1].Bench != "BenchmarkB" || got[1].NsPerOp != 7000 {
		t.Errorf("B = %+v, want the single run unchanged", got[1])
	}
}

func TestCollapseMedianEvenCount(t *testing.T) {
	got := collapseMedian([]record{
		{Bench: "BenchmarkA", NsPerOp: 1000, Iters: 9},
		{Bench: "BenchmarkA", NsPerOp: 2000, Iters: 7},
	})
	if len(got) != 1 || got[0].NsPerOp != 1500 {
		t.Fatalf("even-count median = %+v, want one record at 1500 ns/op", got)
	}
}

func recs(ns ...float64) []record {
	out := make([]record, len(ns))
	for i, v := range ns {
		out[i] = record{NsPerOp: v}
	}
	return out
}

func TestNoiseFloor(t *testing.T) {
	// Dead-steady history: zero floor, the fixed threshold governs.
	if f := noiseFloor(recs(1000, 1000, 1000, 1000), 1000); f != 0 {
		t.Errorf("steady history floor = %v, want 0", f)
	}
	// Symmetric ±10% jitter around 1000: MAD = 100, floor = 10%.
	if f := noiseFloor(recs(900, 1100, 900, 1100, 1000), 1000); f != 0.1 {
		t.Errorf("jittery history floor = %v, want 0.1", f)
	}
	// One wild outlier in an otherwise steady history must not inflate
	// the floor — the MAD discards it like the median does.
	if f := noiseFloor(recs(1000, 1000, 1000, 1000, 5000), 1000); f != 0 {
		t.Errorf("outlier history floor = %v, want 0", f)
	}
	if f := noiseFloor(recs(1000), 0); f != 0 {
		t.Errorf("degenerate median floor = %v, want 0", f)
	}
}
