package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseBenchMetrics(t *testing.T) {
	out, err := parseBench(strings.NewReader(
		"BenchmarkParkedTick/skip-4workers-8 \t3\t144100000 ns/op\t0.0721 memofrac\t0.766 skipfrac\t0 B/op\t0 allocs/op\n" +
			"BenchmarkPlain-8 \t100\t1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d records, want 2", len(out))
	}
	m := out[0].Metrics
	if m["skipfrac"] != 0.766 || m["memofrac"] != 0.0721 {
		t.Errorf("metrics = %v, want skipfrac 0.766 and memofrac 0.0721", m)
	}
	if _, ok := m["B/op"]; ok {
		t.Error("allocation columns must not be recorded as metrics")
	}
	if out[1].Metrics != nil {
		t.Errorf("metric-free row carries %v", out[1].Metrics)
	}
}

func TestPromotePhases(t *testing.T) {
	out, err := parseBench(strings.NewReader(
		"BenchmarkParkedTick/skip-4workers-8 \t3\t144100000 ns/op\t41200000 ph_deliver_ns\t9300000 ph_advance_ns\t0.766 skipfrac\n"))
	if err != nil {
		t.Fatal(err)
	}
	recs := promotePhases(out)
	if len(recs) != 3 {
		t.Fatalf("promoted to %d records, want parent + 2 phases: %+v", len(recs), recs)
	}
	parent := recs[0]
	if parent.Metrics["skipfrac"] != 0.766 {
		t.Errorf("parent lost its non-phase metrics: %v", parent.Metrics)
	}
	if _, ok := parent.Metrics["ph_deliver_ns"]; ok {
		t.Error("promoted phase metric still on the parent record")
	}
	// Derived records are appended in sorted phase order so the history
	// file is stable run to run.
	if recs[1].Bench != "BenchmarkParkedTick/skip-4workers/phase:advance" || recs[1].NsPerOp != 9300000 {
		t.Errorf("derived[0] = %+v", recs[1])
	}
	if recs[2].Bench != "BenchmarkParkedTick/skip-4workers/phase:deliver" || recs[2].NsPerOp != 41200000 {
		t.Errorf("derived[1] = %+v", recs[2])
	}
	if recs[1].Iters != 3 {
		t.Errorf("derived record dropped the parent's iteration count: %+v", recs[1])
	}
	// The derived lines are first-class: judge them like any benchmark.
	prior := []record{{NsPerOp: 9000000}, {NsPerOp: 9100000}, {NsPerOp: 9200000}}
	if v := judge(recs[1], prior, 0.10, 3); v.kind != verdictOK {
		t.Errorf("phase record not judged: %+v", v)
	}
}

func TestPromotePhasesNoPhases(t *testing.T) {
	in := []record{{Bench: "BenchmarkPlain", NsPerOp: 1000, Iters: 10}}
	out := promotePhases(in)
	if len(out) != 1 || out[0].Bench != "BenchmarkPlain" {
		t.Fatalf("phase-free input changed: %+v", out)
	}
}

func TestMetricFloors(t *testing.T) {
	floors, err := parseMetricFloors("BenchmarkParkedTick/skip:skipfrac:0.7,BenchmarkParkedTick/skip:memofrac:0.03")
	if err != nil {
		t.Fatal(err)
	}
	fresh := []record{
		{Bench: "BenchmarkParkedTick/skip-4workers", Metrics: map[string]float64{"skipfrac": 0.766, "memofrac": 0.072}},
		{Bench: "BenchmarkParkedTick/eager-4workers", Metrics: map[string]float64{"skipfrac": 0}},
	}
	if v := checkMetricFloors(fresh, floors); len(v) != 0 {
		t.Errorf("healthy run violated floors: %v", v)
	}

	// Below the floor, metric gone missing, and no benchmark matching the
	// prefix at all — each must violate, never silently pass.
	low := []record{{Bench: "BenchmarkParkedTick/skip-4workers", Metrics: map[string]float64{"skipfrac": 0.5, "memofrac": 0.072}}}
	if v := checkMetricFloors(low, floors); len(v) != 1 {
		t.Errorf("below-floor run: %d violations, want 1: %v", len(v), v)
	}
	gone := []record{{Bench: "BenchmarkParkedTick/skip-4workers", Metrics: map[string]float64{"skipfrac": 0.766}}}
	if v := checkMetricFloors(gone, floors); len(v) != 1 {
		t.Errorf("missing-metric run: %d violations, want 1: %v", len(v), v)
	}
	if v := checkMetricFloors([]record{{Bench: "BenchmarkOther"}}, floors); len(v) != 2 {
		t.Errorf("unmatched prefix: %d violations, want 2: %v", len(v), v)
	}
	nan := []record{{Bench: "BenchmarkParkedTick/skip-4workers", Metrics: map[string]float64{"skipfrac": math.NaN(), "memofrac": 0.072}}}
	if v := checkMetricFloors(nan, floors); len(v) != 1 {
		t.Errorf("NaN metric: %d violations, want 1: %v", len(v), v)
	}

	for _, bad := range []string{"nonsense", "a:b", "a:b:x", "::1", "a::1"} {
		if _, err := parseMetricFloors(bad); err == nil {
			t.Errorf("parseMetricFloors(%q) accepted a malformed clause", bad)
		}
	}
}

func TestCollapseMedian(t *testing.T) {
	out, err := parseBench(strings.NewReader(`
goos: linux
BenchmarkA-8    	     100	  1000 ns/op
BenchmarkB-8    	      50	  7000 ns/op
BenchmarkA-8    	     120	  5000 ns/op
BenchmarkA-8    	     110	  1200 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	got := collapseMedian(out)
	if len(got) != 2 {
		t.Fatalf("collapsed to %d records, want 2: %+v", len(got), got)
	}
	// First-appearance order preserved; A's median of {1000, 5000, 1200}
	// is 1200, carried by the run that produced it.
	if got[0].Bench != "BenchmarkA" || got[0].NsPerOp != 1200 || got[0].Iters != 110 {
		t.Errorf("A = %+v, want median 1200 ns/op from the 110-iter run", got[0])
	}
	if got[1].Bench != "BenchmarkB" || got[1].NsPerOp != 7000 {
		t.Errorf("B = %+v, want the single run unchanged", got[1])
	}
}

func TestCollapseMedianEvenCount(t *testing.T) {
	got := collapseMedian([]record{
		{Bench: "BenchmarkA", NsPerOp: 1000, Iters: 9},
		{Bench: "BenchmarkA", NsPerOp: 2000, Iters: 7},
	})
	if len(got) != 1 || got[0].NsPerOp != 1500 {
		t.Fatalf("even-count median = %+v, want one record at 1500 ns/op", got)
	}
}

func recs(ns ...float64) []record {
	out := make([]record, len(ns))
	for i, v := range ns {
		out[i] = record{NsPerOp: v}
	}
	return out
}

func TestNoiseFloor(t *testing.T) {
	// Dead-steady history: zero floor, the fixed threshold governs.
	if f := noiseFloor(recs(1000, 1000, 1000, 1000), 1000); f != 0 {
		t.Errorf("steady history floor = %v, want 0", f)
	}
	// Symmetric ±10% jitter around 1000: MAD = 100, floor = 10%.
	if f := noiseFloor(recs(900, 1100, 900, 1100, 1000), 1000); f != 0.1 {
		t.Errorf("jittery history floor = %v, want 0.1", f)
	}
	// One wild outlier in an otherwise steady history must not inflate
	// the floor — the MAD discards it like the median does.
	if f := noiseFloor(recs(1000, 1000, 1000, 1000, 5000), 1000); f != 0 {
		t.Errorf("outlier history floor = %v, want 0", f)
	}
	if f := noiseFloor(recs(1000), 0); f != 0 {
		t.Errorf("degenerate median floor = %v, want 0", f)
	}
	// Short histories still yield a finite, non-NaN floor: one entry has
	// zero deviation, two entries straddle their midpoint symmetrically.
	if f := noiseFloor(recs(1000), 1000); f != 0 {
		t.Errorf("single-entry floor = %v, want 0", f)
	}
	if f := noiseFloor(recs(900, 1100), 1000); f != 0.1 {
		t.Errorf("two-entry floor = %v, want 0.1", f)
	}
}

func TestMedianDegenerate(t *testing.T) {
	// An empty window must not panic (it used to index vals[-1]).
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %v, want 0", m)
	}
	if m := median(recs(42)); m != 42 {
		t.Errorf("single-sample median = %v, want 42", m)
	}
	if m := median(recs(30, 10)); m != 20 {
		t.Errorf("even-count median = %v, want 20", m)
	}
}

// TestJudgeDegenerateHistories pins the gate against the histories that
// used to produce NaN deltas or panics: every row must come back with an
// explicit verdict, never a silent "ok" born of a NaN comparison.
func TestJudgeDegenerateHistories(t *testing.T) {
	cases := []struct {
		name       string
		fresh      float64
		prior      []record
		minHistory int
		want       string
	}{
		// -min-history 0 against an empty window used to panic in median.
		{"empty history, min 0", 1000, nil, 0, verdictSeed},
		{"short history", 1000, recs(1000), 3, verdictSeed},
		// All-zero history: med == 0, delta would be +Inf (or NaN for a
		// zero sample) — both compared false against the gate and passed.
		{"zero history", 1000, recs(0, 0, 0), 3, verdictDegenerate},
		{"zero sample", 0, recs(1000, 1000, 1000), 3, verdictDegenerate},
		{"zero sample, zero history", 0, recs(0, 0, 0), 3, verdictDegenerate},
		{"negative history", 1000, recs(-1000, -1000, -1000), 3, verdictDegenerate},
		{"inf sample", math.Inf(1), recs(1000, 1000, 1000), 3, verdictDegenerate},
		{"nan sample", math.NaN(), recs(1000, 1000, 1000), 3, verdictDegenerate},
		// Healthy windows still judge, including the short ones -min-history
		// permits: a single- or two-entry window has floor 0 resp. finite,
		// so the fixed threshold governs and real regressions still trip.
		{"single-entry window regression", 2000, recs(1000), 1, verdictRegression},
		{"two-entry window ok", 1050, recs(990, 1010), 2, verdictOK},
		{"two-entry window regression", 1300, recs(990, 1010), 2, verdictRegression},
		{"steady history ok", 1050, recs(1000, 1000, 1000), 3, verdictOK},
		{"steady history regression", 1200, recs(1000, 1000, 1000), 3, verdictRegression},
	}
	for _, c := range cases {
		v := judge(record{NsPerOp: c.fresh}, c.prior, 0.10, c.minHistory)
		if v.kind != c.want {
			t.Errorf("%s: verdict %q, want %q (med %v delta %v gate %v)",
				c.name, v.kind, c.want, v.med, v.delta, v.gate)
		}
		if v.kind == verdictOK || v.kind == verdictRegression {
			if math.IsNaN(v.delta) || math.IsInf(v.delta, 0) || math.IsNaN(v.gate) || v.gate <= 0 {
				t.Errorf("%s: judged with a degenerate delta/gate: %+v", c.name, v)
			}
		}
	}
}
