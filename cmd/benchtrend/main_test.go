package main

import (
	"strings"
	"testing"
)

func TestCollapseMedian(t *testing.T) {
	out, err := parseBench(strings.NewReader(`
goos: linux
BenchmarkA-8    	     100	  1000 ns/op
BenchmarkB-8    	      50	  7000 ns/op
BenchmarkA-8    	     120	  5000 ns/op
BenchmarkA-8    	     110	  1200 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	got := collapseMedian(out)
	if len(got) != 2 {
		t.Fatalf("collapsed to %d records, want 2: %+v", len(got), got)
	}
	// First-appearance order preserved; A's median of {1000, 5000, 1200}
	// is 1200, carried by the run that produced it.
	if got[0].Bench != "BenchmarkA" || got[0].NsPerOp != 1200 || got[0].Iters != 110 {
		t.Errorf("A = %+v, want median 1200 ns/op from the 110-iter run", got[0])
	}
	if got[1].Bench != "BenchmarkB" || got[1].NsPerOp != 7000 {
		t.Errorf("B = %+v, want the single run unchanged", got[1])
	}
}

func TestCollapseMedianEvenCount(t *testing.T) {
	got := collapseMedian([]record{
		{Bench: "BenchmarkA", NsPerOp: 1000, Iters: 9},
		{Bench: "BenchmarkA", NsPerOp: 2000, Iters: 7},
	})
	if len(got) != 1 || got[0].NsPerOp != 1500 {
		t.Fatalf("even-count median = %+v, want one record at 1500 ns/op", got)
	}
}
