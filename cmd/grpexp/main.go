// Command grpexp regenerates the reproduction's experiment tables
// (EXPERIMENTS.md): every table and figure-equivalent of the evaluation,
// printed as aligned text (default), markdown or TSV.
//
// Usage:
//
//	grpexp [-format text|markdown|tsv] [-seeds N] [-only E6]
//	grpexp -only E7c -introspect localhost:6060   # live pprof while it runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/introspect"
	"repro/internal/trace"
)

func main() {
	format := flag.String("format", "text", "output format: text, markdown or tsv")
	seeds := flag.Int("seeds", experiments.Seeds, "seeds per configuration")
	only := flag.String("only", "", "run only the experiment whose id matches (e.g. E6)")
	introspectAddr := flag.String("introspect", "", "serve net/http/pprof on this address while the suite runs (experiments own their engines, so no registry is exposed)")
	flag.Parse()

	if *introspectAddr != "" {
		srv, err := introspect.Serve(*introspectAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpexp:", err)
			os.Exit(2)
		}
		defer srv.Close()
	}

	type exp struct {
		id  string
		run func() []*trace.Table
	}
	suite := []exp{
		{"E1", func() []*trace.Table { return []*trace.Table{experiments.E1Stabilization(*seeds)} }},
		{"E2", func() []*trace.Table { return []*trace.Table{experiments.E2Agreement(*seeds)} }},
		{"E4", func() []*trace.Table { return []*trace.Table{experiments.E4MergeGadgets(*seeds)} }},
		{"E5", func() []*trace.Table { return []*trace.Table{experiments.E5Compatibility()} }},
		{"E6", func() []*trace.Table { return []*trace.Table{experiments.E6Continuity(*seeds)} }},
		{"E7", func() []*trace.Table {
			a, b := experiments.E7Scaling(*seeds)
			return []*trace.Table{a, b}
		}},
		{"E7c", func() []*trace.Table {
			return []*trace.Table{experiments.E7cSpatialScale(*seeds), experiments.E7cDeltaScale(*seeds)}
		}},
		{"E8", func() []*trace.Table {
			return []*trace.Table{experiments.E8Lifetime(*seeds), experiments.E8bHeadLoss(*seeds)}
		}},
		{"E9", func() []*trace.Table { return []*trace.Table{experiments.E9Loss(*seeds)} }},
		{"E10", func() []*trace.Table { return []*trace.Table{experiments.E10Ablation(*seeds)} }},
		{"E11", func() []*trace.Table { return []*trace.Table{experiments.E11Overhead()} }},
		{"E12", func() []*trace.Table { return []*trace.Table{experiments.E12Quarantine(*seeds)} }},
		{"E13", func() []*trace.Table { return []*trace.Table{experiments.E13Density(*seeds)} }},
		{"E13b", func() []*trace.Table { return []*trace.Table{experiments.E13bDense(*seeds)} }},
		{"E14", func() []*trace.Table { return []*trace.Table{experiments.E14Stabilizers(*seeds)} }},
		{"E15", func() []*trace.Table { return []*trace.Table{experiments.E15Collision(*seeds)} }},
		{"E16", func() []*trace.Table { return []*trace.Table{experiments.E16Chaos(*seeds)} }},
	}

	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(e.id, *only) {
			continue
		}
		for _, tb := range e.run() {
			var err error
			switch *format {
			case "markdown":
				err = tb.WriteMarkdown(os.Stdout)
			case "tsv":
				err = tb.WriteTSV(os.Stdout)
			default:
				err = tb.WriteText(os.Stdout)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "grpexp:", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "grpexp: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}
