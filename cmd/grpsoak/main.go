// Command grpsoak is the long-haul soak harness: it runs hours of
// simulated mobile churn (random-waypoint motion, optional urban wall
// grid, nodes joining and leaving) on the parallel engine, observes every
// round through the incremental tracker (internal/obs), streams per-round
// stat records to a JSONL or CSV sink, and prints a final convergence /
// violation report.
//
// Usage:
//
//	grpsoak -n 500 -rounds 100000 -workers 4 -join 0.1 -leave 0.1 -stats soak.jsonl
//	grpsoak -n 2000 -duration 2h -urban -stats soak.csv -every 10
//	grpsoak -n 500 -rounds 20000 -static -chaos mixed -episodes episodes.jsonl
//
// The run is deterministic for a fixed -seed at any -workers width;
// -duration caps wall-clock time (use -rounds alone for bit-reproducible
// runs). The exit status is non-zero if the tracker's cumulative
// violation counters drift from the streamed records — the self-check
// behind the soak acceptance criterion.
//
// -chaos arms the deterministic fault injector (internal/fault) with a
// named profile (crash, byzantine, flap, burst, mixed); the convergence
// monitor then measures a stabilization episode per fault burst and
// -episodes streams the per-episode JSONL records. A chaos run exits
// non-zero when an episode is still open at the end — the world never
// re-stabilized from a fault, or from an aftershock (an unexcused ΠC
// break with no fault in flight, which opens an episode of its own).
// Use -chaos-until to stop injecting before the run ends, leaving the
// tail room to close the last episode.
//
// -shards N splits the run over N slab-owner processes (internal/dist):
// each shard replicates the world, runs the engine over its slab, and
// exchanges per-tick boundary deltas. -transport loopback runs every
// shard inside this process; -transport tcp runs one shard per OS
// process (-shard-index i -peers addr0,addr1,...), with shard 0 printing
// the merged report. The merged run is bit-identical to -shards 1 on
// the same scenario (requires -join 0 -leave 0, no -chaos, no
// -duration); -fingerprint prints the end-of-run state fold that CI
// compares across process counts.
//
// -introspect serves net/http/pprof and the engine's flight-recorder
// registry as JSON for the run's lifetime; -flight-every interleaves
// periodic flight-recorder snapshot records ("type":"flight") into the
// -stats JSONL stream; -trace-wakes streams one record per executed
// compute attributing the skip-check gate that woke the node. On a
// chaos run the registry's injection counters are cross-checked against
// the injector's own totals, and any drift exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/introspect"
	"repro/internal/obs"
)

func main() {
	n := flag.Int("n", 500, "initial population")
	dmax := flag.Int("dmax", 3, "group diameter bound Dmax")
	radius := flag.Float64("range", 2.5, "radio range")
	side := flag.Float64("side", 0, "world side (0: constant density from n)")
	urban := flag.Bool("urban", false, "add a Manhattan-style wall grid")
	dt := flag.Float64("dt", 0.2, "simulated seconds per tick")
	seed := flag.Int64("seed", 1, "random seed (engine, mobility and churn)")
	workers := flag.Int("workers", 4, "engine and tracker fan-out width")
	join := flag.Float64("join", 0.1, "per-round probability of one node joining")
	leave := flag.Float64("leave", 0.1, "per-round probability of one node leaving")
	active := flag.Float64("active", 1, "fraction of nodes that move (in (0,1): commuter regime, exercises the delta-incremental graph; 1: classic all-moving waypoint)")
	static := flag.Bool("static", false, "freeze mobility (chaos runs: isolate fault-driven disturbances)")
	rounds := flag.Int("rounds", 100000, "rounds to simulate")
	duration := flag.Duration("duration", 0, "wall-clock cap (0: none)")
	stats := flag.String("stats", "", "stream per-round records to this file (.csv: CSV, else JSONL)")
	every := flag.Int("every", 1, "record every k-th round only")
	flush := flag.Int("flush", 0, "sink flush period in records (0: default)")
	progress := flag.Int("progress", 2000, "print a progress line every k rounds (0: quiet)")
	chaos := flag.String("chaos", "", "arm the fault injector with this profile (crash, byzantine, flap, burst, mixed)")
	chaosIntensity := flag.Float64("chaos-intensity", 1, "scale the chaos profile's fault rates")
	chaosUntil := flag.Int("chaos-until", 0, "stand the fault schedule down after this round — no new faults, channel adversities off (0: whole run)")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-injector seed (0: derive from -seed)")
	episodes := flag.String("episodes", "", "stream stabilization-episode JSONL records to this file")
	window := flag.Int("window", 0, "monitor confirmation window in rounds (0: default)")
	introspectAddr := flag.String("introspect", "", "serve net/http/pprof and the flight-recorder registry JSON on this address for the run's lifetime (e.g. localhost:6060)")
	flightEvery := flag.Int("flight-every", 0, "stream a flight-recorder snapshot record into -stats every k rounds, plus one at run end (0: off; JSONL sinks only)")
	traceWakes := flag.String("trace-wakes", "", "stream per-node wake-attribution JSONL records to this file (which skip-check gate woke each computed node, and whose traffic)")
	shards := flag.Int("shards", 1, "split the run over this many shard owners (internal/dist); >1 requires -join 0 -leave 0 and no -chaos, and the merged run is bit-identical to -shards 1")
	transport := flag.String("transport", "loopback", "shard transport: loopback (all shards in this process) or tcp (one process per shard; see -peers)")
	shardIndex := flag.Int("shard-index", 0, "this process's shard under -transport tcp")
	peers := flag.String("peers", "", "comma-separated listen addresses of all shards, index-aligned, under -transport tcp (this process listens on its own entry)")
	fingerprint := flag.Bool("fingerprint", false, "print the end-of-run state fingerprint (fold of every node's state hash) — the cross-process bit-identity witness")
	flag.Parse()

	cfg := obs.SoakConfig{
		N:              *n,
		Dmax:           *dmax,
		Range:          *radius,
		Side:           *side,
		Urban:          *urban,
		DT:             *dt,
		Seed:           *seed,
		Workers:        *workers,
		JoinRate:       *join,
		LeaveRate:      *leave,
		ActiveFraction: *active,
		Static:         *static,
		MaxRounds:      *rounds,
		Duration:       *duration,
		ConfirmWindow:  *window,
		IntrospectAddr: *introspectAddr,
		FlightEvery:    *flightEvery,
	}
	if *chaos != "" {
		prof, err := fault.Preset(*chaos, *chaosIntensity)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsoak:", err)
			os.Exit(2)
		}
		prof.Seed = *chaosSeed
		if prof.Seed == 0 {
			prof.Seed = *seed ^ 0x6368616f73 // "chaos"
		}
		prof.Until = *chaosUntil
		cfg.Fault = prof
	}
	if *stats != "" {
		s, err := obs.OpenSink(*stats, *flush)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsoak:", err)
			os.Exit(2)
		}
		cfg.Sink = obs.Every(*every, s)
	}
	var epSink *obs.JSONLSink
	if *episodes != "" {
		if cfg.Fault == nil {
			fmt.Fprintln(os.Stderr, "grpsoak: -episodes requires -chaos")
			os.Exit(2)
		}
		s, err := obs.CreateJSONLSink(*episodes, *flush)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsoak:", err)
			os.Exit(2)
		}
		epSink = s
		cfg.Episodes = s.WriteEpisode
	}
	var wakeSink *obs.JSONLSink
	if *traceWakes != "" {
		s, err := obs.CreateJSONLSink(*traceWakes, *flush)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grpsoak:", err)
			os.Exit(2)
		}
		wakeSink = s
		cfg.WakeTrace = func(round int, w introspect.WakeRec) error {
			return s.WriteWake(obs.NewWakeRecord(round, w))
		}
	}
	if *progress > 0 {
		start := time.Now()
		cfg.ProgressEvery = *progress
		cfg.Progress = func(r int, st obs.RoundStats) {
			fmt.Printf("round %7d  t=%8s  n=%-6d groups=%-6d ΠA=%v ΠS_rate=%.3f nee=%d\n",
				r, time.Since(start).Round(time.Second), st.Nodes, st.Groups,
				st.Agreement, st.SafetyRate, st.ExternalEdges)
		}
	}

	cfg.Fingerprint = *fingerprint
	var res *obs.SoakResult
	var err error
	if *shards > 1 {
		// Distributed run: dist.Config.Validate rejects what the split
		// cannot carry (churn, chaos, wall-clock caps).
		dcfg := dist.Config{Soak: cfg, Shards: *shards}
		switch *transport {
		case "loopback":
			res, err = dist.RunLoopback(dcfg)
		case "tcp":
			if *peers == "" {
				fmt.Fprintln(os.Stderr, "grpsoak: -transport tcp requires -peers")
				os.Exit(2)
			}
			res, err = dist.RunTCP(dcfg, *shardIndex, strings.Split(*peers, ","))
		default:
			fmt.Fprintf(os.Stderr, "grpsoak: unknown -transport %q\n", *transport)
			os.Exit(2)
		}
	} else {
		res, err = obs.RunSoak(cfg)
	}
	// Close (and flush) the sinks before any exit: on a failed run the
	// streamed tail is exactly what the operator needs.
	if cfg.Sink != nil {
		if cerr := cfg.Sink.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "grpsoak: closing sink:", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	if epSink != nil {
		if cerr := epSink.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "grpsoak: closing episode sink:", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	if wakeSink != nil {
		if cerr := wakeSink.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "grpsoak: closing wake sink:", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "grpsoak:", err)
		os.Exit(1)
	}
	if res == nil {
		// Non-lead shard of a TCP mesh: the lead prints the merged report.
		return
	}
	fmt.Print(res.Report())
	if *fingerprint {
		fmt.Printf("fingerprint: %016x\n", res.Fingerprint)
	}

	// Chaos acceptance: every episode — directly injected or aftershock
	// (an unexcused break with no fault in flight opens one too) — must
	// have re-stabilized within the run. Leave a fault-free tail with
	// -chaos-until so the last episode has room to close.
	if cfg.Fault != nil && res.EpisodesOpen > 0 {
		fmt.Fprintf(os.Stderr, "grpsoak: %d stabilization episode(s) still open at run end\n", res.EpisodesOpen)
		os.Exit(1)
	}
}
