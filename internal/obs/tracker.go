// Package obs is the incremental observability subsystem: it maintains
// the Ω-partition of the Dynamic Group Service (the groups the metrics
// predicates are defined over) across rounds instead of re-deriving it
// from a full snapshot, and evaluates the specification predicates (ΠA,
// ΠS, ΠM and the transition predicates ΠT, ΠC) by re-examining only the
// nodes whose view or neighborhood actually changed.
//
// The brute-force path — engine.Snapshot plus the metrics predicates —
// survives unchanged as the test oracle: obs must produce identical
// results, and the property tests in this package enforce that on random
// churning worlds. What obs changes is the cost model: a round where k of
// n nodes changed view and j nodes changed neighborhood costs O(k+j)
// group work plus one O(n·k̄) neighborhood sweep (only when the topology
// moved), instead of the oracle's O(n·k̄²) full re-derivation with a map
// and a canonical string per node.
//
// Per-node bookkeeping is slot-indexed, mirroring the engine's roster
// slots (engine.Engine.SlotOf): the per-node cache, the affected-set
// epoch stamps and the shard worklists index flat arrays by slot, and the
// dirty report feeds slots straight through, so the steady-state round
// touches no per-node map at all. ID-keyed lookups survive only where an
// ID may legitimately not be a member: view contents (a view can retain a
// departed node) and the watcher/group indexes keyed by them.
//
// Parallel phases follow the engine's discipline (see parallel.go): work
// is sharded by NodeID into engine.NumShards fixed shards or into
// slot-indexed worklists, every parallel callback writes only shard- or
// slot-local state, and every merge happens in canonical order, so the
// observed statistics are bit-identical at any worker count.
//
// The tracker assumes every live protocol node is present in the
// engine's topology graph at observation time — apply membership churn
// (place/add, remove) between rounds, before the next Step, so a spatial
// topology has advanced its cached graph over the change. This is the
// natural soak-harness pattern; a node added after the last Step of a
// window would otherwise be live but absent from the snapshot graph, a
// configuration the brute-force oracle cannot express either.
package obs

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
)

// RoundStats is one observation: the partition statistics and predicate
// verdicts after the rounds stepped since the previous Observe call. The
// JSON field names are the sink record format documented in DESIGN.md.
type RoundStats struct {
	Round int `json:"round"` // Observe calls so far
	Tick  int `json:"tick"`  // engine tick at observation time

	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	Groups     int     `json:"groups"`
	Singletons int     `json:"singletons"`
	MeanSize   float64 `json:"mean_size"`

	Agreement  bool `json:"pi_a"`
	Safety     bool `json:"pi_s"`
	Maximality bool `json:"pi_m"`
	Converged  bool `json:"converged"` // ΠA ∧ ΠS ∧ ΠM

	SafeGroups int     `json:"safe_groups"`
	SafetyRate float64 `json:"safety_rate"`

	// Transition predicates against the previously observed
	// configuration (both true on the first observation).
	Topological          bool `json:"pi_t"`
	Continuity           bool `json:"pi_c"`
	ContinuityViolations int  `json:"pi_c_violations"` // nodes whose Ω lost a member
	MembershipChanges    int  `json:"membership_changes"`

	ExternalEdges int `json:"nee"`

	// Cumulative engine traffic counters.
	MessagesSent int `json:"msgs"`
	Deliveries   int `json:"delivs"`

	// RadioDrops is the channel's cumulative suppressed-delivery count,
	// when the engine's channel counts (radio.DropCounter) — 0 otherwise.
	// Surfacing it lets chaos runs correlate loss bursts with violations.
	RadioDrops int `json:"radio_drops"`
}

// nodeState is the tracker's per-node cache, held in a slot-indexed array
// mirroring the engine's roster slots. id identifies the occupant
// (ident.None marks a free slot — slots recycle under churn, so every
// slot-derived access validates against it).
type nodeState struct {
	id       ident.NodeID
	viewVer  uint64         // core.Node.ViewVersion at last extraction
	view     []ident.NodeID // the node's own view, ascending (replaced, never mutated)
	viewHash uint64         // commutative hash of view
	selfIn   bool           // v ∈ view_v
	nbrs     []ident.NodeID // neighborhood in the restricted graph, ascending
	nbrSlots []int32        // engine slot per nbrs entry (same index)
	grp      *group         // current Ω record
	good     bool           // local agreement check holds (Ω = view)
	born     int            // round the state was created (suppresses ΠC on arrival)
}

// memberRef pairs a live node's identity with its engine slot: the shape
// the shard worklists, watcher sets and the affected set carry, so
// downstream phases index the slot array directly while every
// canonical-order decision still compares IDs. A ref is valid while
// nodes[slot].id == id; holders that can outlive the referent (the
// affected set, across in-window churn) re-validate before use.
type memberRef struct {
	id   ident.NodeID
	slot int32
}

// group is one Ω record. Its membership is immutable: any partition
// change produces a new record, so records are shared by their members,
// compared by pointer, and the ΠM pair cache can key verdicts on record
// identity plus the members' neighborhood generation.
type group struct {
	rep     ident.NodeID   // minimum member — the unique representative
	members []ident.NodeID // ascending; len ≥ 1
	refs    int            // nodes currently assigned to this record

	stretched bool   // induced diameter > dmax in the last evaluated graph
	evalRound int    // round of that evaluation (dedup stamp)
	topoGen   uint64 // bumped when a member's neighborhood changes
}

type pairKey struct{ a, b ident.NodeID } // a < b, group representatives

type pairEntry struct {
	k      pairKey
	ga, gb *group // the records on each side of the boundary edge
}

type pairVerdict struct {
	ga, gb    *group // records the verdict was computed for
	ta, tb    uint64 // their topoGen at evaluation time
	mergeable bool
}

// GroupTracker incrementally observes one engine run (or, through a
// distributed Source, one logical run spread over several engines).
type GroupTracker struct {
	e       Source
	dmax    int
	workers int

	round  int
	synced bool

	nodes    []nodeState                   // engine slot → cache (id validates)
	affEpoch []int                         // engine slot → round last marked affected
	watchers map[ident.NodeID][]memberRef  // u → {w : u ∈ view_w}, ascending by watcher
	groups   map[ident.NodeID]*group       // representative → current record
	byShard  [engine.NumShards][]memberRef // live nodes, ascending per shard

	// Aggregates over the live partition, maintained on every record
	// create/destroy and verdict flip — never recomputed by scanning.
	badNodes     int // nodes failing the local agreement check (ΠA ⇔ 0)
	groupCount   int
	singletonCnt int
	memberSum    int // Σ|members| over records (= live node count at rest)
	stretchedCnt int // records with induced diameter > dmax (ΠS ⇔ 0)

	// Graph cache key and cached topology-derived stats.
	prevG   *graph.G
	prevGen uint64
	edges   int

	// ΠM / nee state: adjacent-group pairs and the verdict cache
	// (value maps: no allocation per refreshed verdict).
	pairCache map[pairKey]pairVerdict
	pairSpare map[pairKey]pairVerdict
	nee       int
	mergeCnt  int

	// Cumulative soak counters (transitions observed so far).
	Rounds           int
	ContinuityBreaks int // observations with ΠC false
	TopologyBreaks   int // observations with ΠT false
	UnexcusedBreaks  int // ΠC false while ΠT held (contract violations)
	ViolatingNodes   int // total nodes that lost a group member
	TotalMembership  int // total Ω changes across nodes

	// Scratch (coordinator-owned).
	shards   [engine.NumShards]trackerShard
	ws       []*workerScratch
	affected []memberRef
	added    []ident.NodeID
	removed  []engine.RemovedNode
	reborn   []rebornRec
	evalList []*group
	pending  []pairEntry
	pairList []pairKey
	boolRes  []bool
	regroup  []regroupRes
}

// trackerShard is one shard's parallel-phase output buffers.
type trackerShard struct {
	topoDirty []int32 // slots whose neighborhood changed
	changed   []changeRec
	degSum    int
	nee       int
	pairs     []pairEntry
	extract   []int32 // extraction-candidate slots (computed ∪ added)
	vbuf      []ident.NodeID
}

type changeRec struct {
	slot    int32
	v       ident.NodeID
	oldView []ident.NodeID
}

// rebornRec remembers the previous Ω of a node that was removed and
// re-added within one observation window: the bracketing-snapshot
// semantics of ΠC still compare its old group against its new one.
type rebornRec struct {
	v   ident.NodeID
	old []ident.NodeID
}

type regroupRes struct {
	good bool
	rep  ident.NodeID
}

// NewGroupTracker attaches a tracker to the engine. Dmax comes from the
// engine's protocol config, the worker width from its Params (a pure
// throughput knob — results are identical at any width). The first
// Observe performs a full synchronization, so a tracker may be attached
// to an engine that has already stepped.
func NewGroupTracker(e *engine.Engine) *GroupTracker {
	return NewGroupTrackerSource(engineSource{e: e})
}

// NewGroupTrackerSource attaches a tracker to any Source — the seam the
// distributed lead (internal/dist) observes its merged shard reports
// through. Semantics are identical to NewGroupTracker.
func NewGroupTrackerSource(src Source) *GroupTracker {
	w := src.Workers()
	if w > engine.NumShards {
		w = engine.NumShards
	}
	if w < 1 {
		w = 1
	}
	t := &GroupTracker{
		e:         src,
		dmax:      src.Dmax(),
		workers:   w,
		watchers:  make(map[ident.NodeID][]memberRef),
		groups:    make(map[ident.NodeID]*group),
		pairCache: make(map[pairKey]pairVerdict),
		pairSpare: make(map[pairKey]pairVerdict),
	}
	t.ws = make([]*workerScratch, w)
	for i := range t.ws {
		t.ws[i] = newWorkerScratch()
	}
	src.TrackDirty()
	return t
}

// state resolves a live node's cache by ID, or nil when v is not a
// member. Used only where the ID may legitimately be dead (view
// contents); slot-carrying paths index t.nodes directly.
func (t *GroupTracker) state(v ident.NodeID) *nodeState {
	s := t.e.SlotOf(v)
	if s < 0 {
		return nil
	}
	st := &t.nodes[s]
	if st.id != v {
		return nil
	}
	return st
}

// Observe processes everything that happened since the previous call
// (any number of engine ticks) and returns the statistics of the current
// configuration. The transition predicates (ΠT, ΠC) compare against the
// previously observed configuration, exactly like feeding the two
// bracketing engine.Snapshots to metrics.Topological/ContinuityViolations.
func (t *GroupTracker) Observe() RoundStats {
	t.round++
	first := !t.synced

	// Phase 0: size the slot-indexed arrays to the engine's slot table
	// and drain the dirty report. On the first observation the report is
	// discarded and every live node is treated as added.
	if c := t.e.SlotCap(); len(t.nodes) < c {
		t.nodes = append(t.nodes, make([]nodeState, c-len(t.nodes))...)
		t.affEpoch = append(t.affEpoch, make([]int, c-len(t.affEpoch))...)
	}
	t.added = t.added[:0]
	t.removed = t.removed[:0]
	for s := range t.shards {
		t.shards[s].extract = t.shards[s].extract[:0]
	}
	t.e.DrainDirty(func(computed [engine.NumShards][]int32, added []ident.NodeID, removed []engine.RemovedNode) {
		if first {
			return
		}
		for s := range computed {
			t.shards[s].extract = append(t.shards[s].extract, computed[s]...)
		}
		t.added = append(t.added, added...)
		t.removed = append(t.removed, removed...)
	})
	if first {
		t.added = append(t.added, t.e.Order()...)
		t.synced = true
	}
	memberChurn := len(t.added) > 0 || len(t.removed) > 0

	g := t.e.SnapshotGraph()
	topoChanged := first || g != t.prevG || g.Generation() != t.prevGen
	changedPartition := false
	piTBroken := false

	t.affected = t.affected[:0]

	// Phase 1 (sequential): membership. Removals first — a node that was
	// removed and re-added inside the window is a state reset (drop the
	// cache, let the addition path recreate it, possibly on a different
	// slot).
	t.reborn = t.reborn[:0]
	for _, r := range t.removed {
		if int(r.Slot) >= len(t.nodes) {
			continue
		}
		st := &t.nodes[r.Slot]
		if st.id != r.ID {
			continue // never tracked, or the slot was never synced
		}
		if t.e.SlotOf(r.ID) >= 0 {
			t.added = append(t.added, r.ID)
			t.reborn = append(t.reborn, rebornRec{v: r.ID, old: st.grp.members})
		} else if len(st.grp.members) > 1 {
			// A member departing from a non-singleton group breaks ΠT
			// outright: its distance to the others is infinite in the new
			// topology. (The record itself dissolves this round — every
			// surviving member re-groups away from it below.)
			piTBroken = true
			st.grp.topoGen++
		}
		// The watcher refs are valid here: a watcher removed earlier in
		// this loop already dropped itself from every set, and one not yet
		// processed still owns its cache slot. Stale refs marked now are
		// re-validated when the affected set is finalized.
		for _, w := range t.watchers[r.ID] {
			t.markAffected(w)
		}
		if !st.good {
			t.badNodes--
		}
		t.detach(st.grp)
		t.dropWatcher(st.view, r.ID)
		st.id = ident.None
		st.grp = nil
		st.view = nil
		t.shardRemove(r.ID)
		changedPartition = true
	}
	for _, a := range t.added {
		slot := t.e.SlotOf(a)
		if slot < 0 {
			continue // added and removed again within the window
		}
		st := &t.nodes[slot]
		if st.id == a {
			continue // duplicate report
		}
		// A fresh node starts as a good singleton (its initial view is
		// {a}); the extraction below confirms or corrects that. The slot
		// may be recycled within the window: reset the epoch stamp so an
		// earlier mark against the previous occupant cannot suppress this
		// node's regroup.
		st.id = a
		st.viewVer = 0
		st.view = nil
		st.viewHash = 0
		st.selfIn = false
		st.nbrs = st.nbrs[:0]
		st.nbrSlots = st.nbrSlots[:0]
		st.good = true
		st.born = t.round
		grp := t.newGroup(a, []ident.NodeID{a})
		grp.refs = 1
		st.grp = grp
		t.affEpoch[slot] = 0
		ref := memberRef{id: a, slot: slot}
		t.shardInsert(ref)
		t.shards[engine.ShardOf(a)].extract = append(t.shards[engine.ShardOf(a)].extract, slot)
		t.markAffected(ref)
		changedPartition = true
	}

	// Phase 2 (parallel): neighborhood sweep, only when the restricted
	// graph identity moved — detects exactly the nodes whose adjacency
	// changed, re-counts the edges and refreshes the cached neighbor
	// slots the boundary scan indexes by.
	if topoChanged {
		t.runShards(func(s, w int) {
			sh := &t.shards[s]
			sh.topoDirty = sh.topoDirty[:0]
			sh.degSum = 0
			for _, m := range t.byShard[s] {
				st := &t.nodes[m.slot]
				// The CSR graph serves the neighborhood as a sorted flat
				// view of its internal storage, so the change filter is a
				// plain slice compare against the (equally sorted) cache —
				// no hash, no per-node re-extraction.
				nb := g.NeighborsView(m.id)
				sh.degSum += len(nb)
				if !idsEqual(st.nbrs, nb) {
					st.nbrs = append(st.nbrs[:0], nb...)
					st.nbrSlots = st.nbrSlots[:0]
					for _, u := range nb {
						st.nbrSlots = append(st.nbrSlots, t.e.SlotOf(u))
					}
					sh.topoDirty = append(sh.topoDirty, m.slot)
				} else if memberChurn {
					// Identical ID-neighborhood, but an in-window
					// remove/re-add can have moved a neighbor to another
					// slot: refresh the slots whenever membership churned.
					st.nbrSlots = st.nbrSlots[:0]
					for _, u := range st.nbrs {
						st.nbrSlots = append(st.nbrSlots, t.e.SlotOf(u))
					}
				}
			}
		})
		t.edges = 0
		for s := range t.shards {
			t.edges += t.shards[s].degSum
		}
		t.edges /= 2
		t.prevG, t.prevGen = g, g.Generation()
	}

	// Phase 3: ΠT refresh — re-evaluate the *previous* partition's
	// topology-dirty groups against the new graph (a group whose members
	// kept their adjacency keeps its cached verdict: its induced subgraph
	// is unchanged). ΠT is sampled before the partition update, ΠS after
	// it; both read the same per-record stretched flag.
	if topoChanged {
		t.evalList = t.evalList[:0]
		for s := range t.shards {
			for _, slot := range t.shards[s].topoDirty {
				grp := t.nodes[slot].grp
				grp.topoGen++
				if grp.evalRound != t.round && len(grp.members) > 1 {
					grp.evalRound = t.round
					t.evalList = append(t.evalList, grp)
				}
			}
		}
		t.evalStretched(g, t.evalList)
	}
	piT := !piTBroken && t.stretchedCnt == 0

	// Phase 4 (parallel): view extraction for the computed/added slots.
	// At steady state a node whose view did not change costs one counter
	// comparison (core.Node.ViewVersion); content is re-extracted and
	// diffed only on an actual change. A slot freed (or recycled across
	// shards) after its node computed is skipped: the shard guard keeps
	// a recycled slot's extraction inside the new occupant's own shard,
	// so no slot is ever touched by two workers.
	t.runShards(func(s, w int) {
		sh := &t.shards[s]
		sh.changed = sh.changed[:0]
		for _, slot := range sh.extract {
			st := &t.nodes[slot]
			if st.id == ident.None || engine.ShardOf(st.id) != s {
				continue // removed after computing, or recycled cross-shard
			}
			n := t.e.ViewerAtSlot(slot)
			if n == nil {
				continue
			}
			ver := n.ViewVersion()
			if st.viewVer == ver {
				continue
			}
			st.viewVer = ver
			sh.vbuf = n.AppendView(sh.vbuf[:0])
			if idsEqual(st.view, sh.vbuf) {
				continue
			}
			nv := make([]ident.NodeID, len(sh.vbuf))
			copy(nv, sh.vbuf)
			sh.changed = append(sh.changed, changeRec{slot: slot, v: st.id, oldView: st.view})
			st.view = nv
			st.viewHash = hashIDs(nv)
			st.selfIn = containsID(nv, st.id)
		}
	})

	// Phase 5 (sequential): watcher index maintenance and the affected
	// set — a changed view affects the node itself and every node whose
	// view contains it.
	for s := range t.shards {
		for _, ch := range t.shards[s].changed {
			st := &t.nodes[ch.slot]
			me := memberRef{id: ch.v, slot: ch.slot}
			diffSorted(ch.oldView, st.view,
				func(gone ident.NodeID) { t.dropWatcherOne(gone, ch.v) },
				func(fresh ident.NodeID) { t.addWatcher(fresh, me) })
			t.markAffected(me)
			for _, w := range t.watchers[ch.v] {
				t.markAffected(w)
			}
		}
	}
	// Finalize the affected set: drop refs whose node is gone (or whose
	// slot was recycled — the new occupant marked itself on arrival) and
	// sort by ID to restore the canonical processing order; a reborn node
	// can be marked under both its old and its new slot, so equal IDs are
	// deduplicated too.
	aff := t.affected[:0]
	for _, ref := range t.affected {
		if t.nodes[ref.slot].id == ref.id {
			aff = append(aff, ref)
		}
	}
	t.affected = aff
	sort.Slice(t.affected, func(i, j int) bool { return t.affected[i].id < t.affected[j].id })
	aff = t.affected[:0]
	for i, ref := range t.affected {
		if i == 0 || ref.id != t.affected[i-1].id {
			aff = append(aff, ref)
		}
	}
	t.affected = aff

	// Phase 6 (parallel): regroup — the local agreement check for every
	// affected node, a pure read of the freshly extracted views. Hashes
	// reject mismatches cheaply; equal hashes are confirmed by an exact
	// slice comparison, so the verdict matches metrics.Snapshot.Omega
	// bit for bit.
	if cap(t.regroup) < len(t.affected) {
		t.regroup = make([]regroupRes, len(t.affected))
	}
	t.regroup = t.regroup[:len(t.affected)]
	t.runSlots(len(t.affected), func(i, w int) {
		ref := t.affected[i]
		st := &t.nodes[ref.slot]
		good := st.selfIn
		if good {
			for _, u := range st.view {
				su := t.state(u)
				if su == nil || su.viewHash != st.viewHash || !idsEqual(su.view, st.view) {
					good = false
					break
				}
			}
		}
		rep := ref.id
		if good {
			rep = st.view[0]
		}
		t.regroup[i] = regroupRes{good: good, rep: rep}
	})

	// Phase 7 (sequential, canonical order): partition update — detach
	// from stale records, attach to (or create) the new ones, account ΠC
	// and the membership churn.
	t.evalList = t.evalList[:0]
	piCViolations := 0
	membership := 0
	for i, ref := range t.affected {
		v := ref.id
		st := &t.nodes[ref.slot]
		res := t.regroup[i]
		old := st.grp
		same := false
		if res.good {
			same = idsEqual(old.members, st.view)
		} else {
			same = len(old.members) == 1 && old.members[0] == v
		}
		if st.good != res.good {
			if res.good {
				t.badNodes--
			} else {
				t.badNodes++
			}
			st.good = res.good
		}
		if same {
			continue // Ω unchanged (only the agreement accounting moved)
		}
		var target *group
		if res.good {
			target = t.groups[res.rep]
			if target == nil || !idsEqual(target.members, st.view) {
				target = t.newGroup(res.rep, st.view)
				if len(st.view) > 1 {
					t.evalList = append(t.evalList, target)
				}
			}
		} else {
			target = t.groups[v]
			if target == nil || len(target.members) != 1 || target.members[0] != v {
				target = t.newGroup(v, []ident.NodeID{v})
			}
		}
		target.refs++
		if !first && st.born != t.round {
			if !subsetSorted(old.members, target.members) {
				piCViolations++
			}
			membership++
		}
		t.detach(old)
		st.grp = target
		changedPartition = true
	}
	// Nodes removed and re-added within the window look new-born to the
	// partition update, but the bracketing-snapshot semantics still
	// compare their old Ω against the new one.
	if !first {
		for _, rb := range t.reborn {
			st := t.state(rb.v)
			if st == nil || idsEqual(rb.old, st.grp.members) {
				continue
			}
			if !subsetSorted(rb.old, st.grp.members) {
				piCViolations++
			}
			membership++
		}
	}

	// Phase 8 (parallel): ΠS for the records created this round. Records
	// that survived the partition update were either re-evaluated in
	// phase 3 (topology-dirty) or keep a valid cached verdict.
	fresh := t.evalList[:0]
	for _, grp := range t.evalList {
		if grp.refs > 0 && grp.evalRound != t.round {
			grp.evalRound = t.round
			fresh = append(fresh, grp)
		}
	}
	t.evalStretched(g, fresh)

	// Phase 9 (parallel): external edges and ΠM over adjacent group
	// pairs. Ω sets are disjoint, so two groups can merge only if an
	// edge joins them — the candidate pairs are exactly the
	// group-boundary edges, and the counts are reused verbatim when
	// neither the topology nor the partition moved.
	if topoChanged || changedPartition {
		t.scanPairs(g)
	}

	piC := piCViolations == 0
	if first {
		piT, piC = true, true
	} else {
		t.ViolatingNodes += piCViolations
		t.TotalMembership += membership
		if !piT {
			t.TopologyBreaks++
		}
		if !piC {
			t.ContinuityBreaks++
			if piT {
				t.UnexcusedBreaks++
			}
		}
	}
	t.Rounds++

	// Mirror the observation counters into the engine's flight recorder,
	// so a registry snapshot carries the full picture (traffic, computes,
	// wakes AND observed violations) in one deterministic block. The
	// tracker's own cumulative fields stay authoritative for the soak
	// drift self-check; the registry copy is the unified surface.
	reg := t.e.Introspect()
	reg.Inc(introspect.CtrObsRounds)
	if !first {
		if !piT {
			reg.Inc(introspect.CtrObsTopologyBreaks)
		}
		if !piC {
			reg.Inc(introspect.CtrObsContinuityBreaks)
			if piT {
				reg.Inc(introspect.CtrObsUnexcusedBreaks)
			}
		}
		reg.Add(introspect.CtrObsViolatingNodes, uint64(piCViolations))
	}

	msgs, delivs := t.e.TrafficTotals()
	stats := RoundStats{
		Round:                t.round,
		Tick:                 t.e.Tick(),
		Nodes:                t.memberSum,
		Edges:                t.edges,
		Groups:               t.groupCount,
		Singletons:           t.singletonCnt,
		Agreement:            t.badNodes == 0,
		Safety:               t.stretchedCnt == 0,
		Maximality:           t.mergeCnt == 0,
		SafeGroups:           t.groupCount - t.stretchedCnt,
		SafetyRate:           1,
		Topological:          piT,
		Continuity:           piC,
		ContinuityViolations: piCViolations,
		MembershipChanges:    membership,
		ExternalEdges:        t.nee,
		MessagesSent:         msgs,
		Deliveries:           delivs,
	}
	// Served from the registry (the engine samples radio.DropCounter
	// deltas each arbitrate phase), so the record and the flight snapshot
	// can never disagree on the drop count.
	stats.RadioDrops = int(reg.Get(introspect.CtrRadioDrops))
	if t.groupCount > 0 {
		stats.MeanSize = float64(t.memberSum) / float64(t.groupCount)
		stats.SafetyRate = float64(stats.SafeGroups) / float64(t.groupCount)
	}
	stats.Converged = stats.Agreement && stats.Safety && stats.Maximality
	return stats
}

// evalStretched evaluates the induced-diameter verdict for every group
// in list against g (slot-parallel, merged in list order).
func (t *GroupTracker) evalStretched(g *graph.G, list []*group) {
	if len(list) == 0 {
		return
	}
	if cap(t.boolRes) < len(list) {
		t.boolRes = make([]bool, len(list))
	}
	res := t.boolRes[:len(list)]
	t.runSlots(len(list), func(i, w int) {
		res[i] = t.ws[w].stretched(g, list[i].members, t.dmax)
	})
	for i, grp := range list {
		t.setStretched(grp, res[i])
	}
}

// scanPairs rebuilds the external-edge count and the adjacent-group pair
// list, then refreshes the ΠM verdict cache: a pair is re-evaluated only
// when one of its records was replaced or had a member's neighborhood
// change; everything else reuses the cached verdict. Pairs that are no
// longer adjacent are dropped from the cache (the maps are
// double-buffered, so the working set never grows past one round's
// boundary pairs).
//
// The boundary walk is map-free: each node's cached neighbor slots (kept
// current by the phase-2 sweep, which runs whenever membership or
// topology changed) index the slot array directly.
func (t *GroupTracker) scanPairs(g *graph.G) {
	t.runShards(func(s, w int) {
		sh := &t.shards[s]
		sh.nee = 0
		sh.pairs = sh.pairs[:0]
		for _, m := range t.byShard[s] {
			st := &t.nodes[m.slot]
			for i, u := range st.nbrs {
				if u <= m.id {
					continue
				}
				su := &t.nodes[st.nbrSlots[i]]
				if su.grp == st.grp {
					continue
				}
				sh.nee++
				e := pairEntry{k: pairKey{a: st.grp.rep, b: su.grp.rep}, ga: st.grp, gb: su.grp}
				if e.k.b < e.k.a {
					e.k.a, e.k.b = e.k.b, e.k.a
					e.ga, e.gb = e.gb, e.ga
				}
				sh.pairs = append(sh.pairs, e)
			}
		}
	})

	// Merge in shard-major order; the next-cache map doubles as the
	// cross-shard dedup (a pair's two sides resolve to the same records
	// regardless of which boundary edge reported it first).
	next := t.pairSpare // empty: cleared at the end of the last scan
	t.nee = 0
	t.pairList = t.pairList[:0]
	t.pending = t.pending[:0]
	for s := range t.shards {
		t.nee += t.shards[s].nee
		for _, e := range t.shards[s].pairs {
			if _, dup := next[e.k]; dup {
				continue
			}
			t.pairList = append(t.pairList, e.k)
			if v, ok := t.pairCache[e.k]; ok && v.ga == e.ga && v.gb == e.gb && v.ta == e.ga.topoGen && v.tb == e.gb.topoGen {
				next[e.k] = v
				continue
			}
			v := pairVerdict{ga: e.ga, gb: e.gb, ta: e.ga.topoGen, tb: e.gb.topoGen}
			if !e.ga.stretched && !e.gb.stretched &&
				len(e.ga.members)+len(e.gb.members) <= t.dmax+1 {
				// A connected graph on m ≤ Dmax+1 nodes has diameter at
				// most m−1 ≤ Dmax: both sides are connected (unstretched)
				// and the boundary edge joins them, so the union is
				// mergeable without a BFS. In a fragmented configuration
				// (many adjacent singletons) this resolves almost every
				// refreshed pair.
				v.mergeable = true
				next[e.k] = v
				continue
			}
			next[e.k] = v
			t.pending = append(t.pending, e)
		}
	}

	if cap(t.boolRes) < len(t.pending) {
		t.boolRes = make([]bool, len(t.pending))
	}
	res := t.boolRes[:len(t.pending)]
	t.runSlots(len(t.pending), func(i, w int) {
		p := t.pending[i]
		res[i] = t.ws[w].mergeable(g, p.ga.members, p.gb.members, t.dmax)
	})
	for i, p := range t.pending {
		v := next[p.k]
		v.mergeable = res[i]
		next[p.k] = v
	}

	t.mergeCnt = 0
	for _, k := range t.pairList {
		if next[k].mergeable {
			t.mergeCnt++
		}
	}
	t.pairCache, t.pairSpare = next, t.pairCache
	clear(t.pairSpare)
}

// newGroup creates a record, registers it as the representative's
// canonical record and accounts it.
func (t *GroupTracker) newGroup(rep ident.NodeID, members []ident.NodeID) *group {
	grp := &group{rep: rep, members: members}
	t.groups[rep] = grp
	t.groupCount++
	t.memberSum += len(members)
	if len(members) == 1 {
		t.singletonCnt++
	}
	return grp
}

// detach drops one reference and destroys the record when it was the
// last (the canonical map entry is removed only if it still points at
// this record — a replacement may already have taken the slot).
func (t *GroupTracker) detach(grp *group) {
	grp.refs--
	if grp.refs > 0 {
		return
	}
	t.groupCount--
	t.memberSum -= len(grp.members)
	if len(grp.members) == 1 {
		t.singletonCnt--
	}
	t.setStretched(grp, false)
	if t.groups[grp.rep] == grp {
		delete(t.groups, grp.rep)
	}
}

func (t *GroupTracker) setStretched(grp *group, v bool) {
	if grp.stretched == v {
		return
	}
	grp.stretched = v
	if v {
		t.stretchedCnt++
	} else {
		t.stretchedCnt--
	}
}

// markAffected stamps ref's slot for this round and queues it. Refs can
// go stale across in-window churn; the finalization step re-validates
// every queued ref against the slot's current occupant.
func (t *GroupTracker) markAffected(ref memberRef) {
	if t.affEpoch[ref.slot] == t.round {
		return
	}
	t.affEpoch[ref.slot] = t.round
	t.affected = append(t.affected, ref)
}

// addWatcher registers w as a watcher of u (w's view contains u), keeping
// the set ascending by watcher ID.
func (t *GroupTracker) addWatcher(u ident.NodeID, w memberRef) {
	ws := t.watchers[u]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].id >= w.id })
	if i < len(ws) && ws[i].id == w.id {
		ws[i] = w
		return
	}
	ws = append(ws, memberRef{})
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	t.watchers[u] = ws
}

// dropWatcherOne removes w from u's watcher set.
func (t *GroupTracker) dropWatcherOne(u, w ident.NodeID) {
	ws := t.watchers[u]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].id >= w })
	if i < len(ws) && ws[i].id == w {
		ws = append(ws[:i], ws[i+1:]...)
		if len(ws) == 0 {
			delete(t.watchers, u)
		} else {
			t.watchers[u] = ws
		}
	}
}

// dropWatcher removes w from the watcher sets of every member of view.
func (t *GroupTracker) dropWatcher(view []ident.NodeID, w ident.NodeID) {
	for _, u := range view {
		t.dropWatcherOne(u, w)
	}
}

func (t *GroupTracker) shardInsert(ref memberRef) {
	s := engine.ShardOf(ref.id)
	ids := t.byShard[s]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].id >= ref.id })
	ids = append(ids, memberRef{})
	copy(ids[i+1:], ids[i:])
	ids[i] = ref
	t.byShard[s] = ids
}

func (t *GroupTracker) shardRemove(v ident.NodeID) {
	s := engine.ShardOf(v)
	ids := t.byShard[s]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].id >= v })
	if i < len(ids) && ids[i].id == v {
		t.byShard[s] = append(ids[:i], ids[i+1:]...)
	}
}

// Groups materializes the current partition, each group ascending, the
// list sorted by representative — the same shape as
// metrics.Snapshot.Groups, for tests and debug output.
func (t *GroupTracker) Groups() [][]ident.NodeID {
	out := make([][]ident.NodeID, 0, t.groupCount)
	for _, grp := range t.groups {
		out = append(out, grp.members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// --- small sorted-slice helpers ---

func idsEqual(a, b []ident.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(sorted []ident.NodeID, v ident.NodeID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}

// subsetSorted reports a ⊆ b for ascending slices.
func subsetSorted(a, b []ident.NodeID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// diffSorted walks two ascending slices and reports members only in a
// (gone) and only in b (fresh).
func diffSorted(a, b []ident.NodeID, gone, fresh func(ident.NodeID)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			gone(a[i])
			i++
		default:
			fresh(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		gone(a[i])
	}
	for ; j < len(b); j++ {
		fresh(b[j])
	}
}
