package obs

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

// SoakConfig parameterizes a long mobile-churn run: a random-waypoint
// world at constant density (optionally with an urban wall grid), nodes
// joining and leaving, the tracker observing every round, records
// streaming to a sink. Everything is deterministic for a fixed seed and
// any worker count; only the wall-clock duration cap makes a run
// machine-dependent (use MaxRounds for reproducible runs).
type SoakConfig struct {
	N    int // initial population (default 500)
	Dmax int // group diameter bound (default 3)

	Range float64 // radio range (default 2.5)
	Side  float64 // world side; 0 derives constant density from N
	Urban bool    // add a Manhattan-style wall grid
	DT    float64 // simulated seconds per tick (default 0.2)

	Seed    int64
	Workers int

	// JoinRate and LeaveRate are per-round probabilities of one node
	// joining (at a uniform position) and one leaving (uniform choice).
	JoinRate  float64
	LeaveRate float64

	// ActiveFraction selects the mobility regime: 0 or ≥1 runs the
	// classic all-moving random waypoint; a value in (0,1) runs the
	// mostly-parked commuter model with that fraction of movers — the
	// regime where the spatial index patches the previous CSR through
	// graph.ApplyDelta every round instead of rebuilding, so long soaks
	// exercise the delta path under the race detector.
	ActiveFraction float64

	// Static freezes mobility (uniform initial scatter, no movement):
	// chaos runs use it to isolate fault-driven disturbances from
	// mobility-driven ones.
	Static bool

	// Channel overrides the engine's radio model (default Perfect). When
	// nil and a Fault profile schedules channel adversities, the profile's
	// stack is built automatically.
	Channel radio.Channel

	// Fault arms the deterministic fault injector with the given profile;
	// the convergence monitor then measures a stabilization episode per
	// fault burst (see Monitor).
	Fault *fault.Profile
	// ConfirmWindow is the monitor's confirmation window (0 selects
	// DefaultConfirmWindow).
	ConfirmWindow int
	// Episodes receives each closed episode record (optional — e.g.
	// JSONLSink.WriteEpisode). Errors abort the run like sink errors.
	Episodes func(Episode) error

	MaxRounds int           // stop after this many rounds (default 1000)
	Duration  time.Duration // optional wall-clock cap

	Sink          Sink                       // optional per-round record stream
	Progress      func(r int, st RoundStats) // optional progress callback
	ProgressEvery int                        // rounds between callbacks (default 500)

	// IntrospectAddr, when non-empty, serves the engine's flight recorder
	// live for the duration of the run: net/http/pprof plus the registry
	// snapshot as JSON (see introspect.Serve).
	IntrospectAddr string

	// FlightEvery streams a flight-recorder snapshot record into Sink
	// every k rounds (plus one final snapshot at run end), when the sink
	// can carry them (FlightWriter — JSONL, not CSV). 0 disables.
	FlightEvery int

	// WakeTrace receives every attributed wake (round, record) — e.g.
	// wrapping JSONLSink.WriteWake. Arming it enables the engine's wake
	// ring; errors abort the run like sink errors. The per-cause
	// histogram counters are always on regardless.
	WakeTrace func(round int, w introspect.WakeRec) error

	// Fingerprint computes the end-of-run state fingerprint (the fold of
	// every node's NodeStateHash) into SoakResult.Fingerprint — the
	// value a distributed run (internal/dist) must reproduce exactly.
	Fingerprint bool
}

func (c *SoakConfig) normalize() {
	if c.N <= 0 {
		c.N = 500
	}
	if c.Dmax <= 0 {
		c.Dmax = 3
	}
	if c.Range <= 0 {
		c.Range = 2.5
	}
	if c.Side <= 0 {
		// Constant density: mean symmetric degree ≈ 2.7 at range 2.5
		// (the E7c regime).
		c.Side = math.Max(10, 2.7*math.Sqrt(float64(c.N))*c.Range/2.5)
	}
	if c.DT <= 0 {
		c.DT = 0.2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1000
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 500
	}
}

// SoakResult is the final report of a soak run. The violation counters
// are cross-checked against an independent accumulation of the per-round
// records — any drift between the stream and the tracker's cumulative
// state fails the run.
type SoakResult struct {
	Rounds int
	Ticks  int

	Joined int
	Left   int

	ConvergedRounds  int     // rounds with ΠA ∧ ΠS ∧ ΠM
	AgreementRounds  int     // rounds with ΠA
	MeanSafetyRate   float64 // mean per-round ΠS group freshness
	MeanGroups       float64
	ContinuityBreaks int // rounds with ΠC false
	TopologyBreaks   int // rounds with ΠT false
	UnexcusedBreaks  int // ΠC false while ΠT held — contract violations
	ViolatingNodes   int // total nodes that lost a group member

	// Chaos aggregates (zero when no Fault profile was armed).
	FaultsInjected   int     // fault events the injector emitted
	NodesAffected    int     // nodes those events touched
	Episodes         int     // stabilization episodes closed
	EpisodesOpen     int     // episodes still open at run end (0 or 1)
	MeanStabRounds   float64 // mean stabilization time over closed episodes
	MaxStabRounds    int     // worst stabilization time
	EpisodeUnexcused int     // unexcused breaks inside episodes
	UnexcusedOutside int     // unexcused breaks with no episode open

	Final       RoundStats
	Elapsed     time.Duration
	TicksPerSec float64

	// Flight is the final flight-recorder snapshot: the run's complete
	// deterministic counter block (computes, skips by class, wake-cause
	// histogram, cache hits, drops, injections) plus the wall-clock phase
	// timings in their separate section.
	Flight introspect.Snapshot

	// Fingerprint is the end-of-run state fingerprint (0 unless
	// SoakConfig.Fingerprint was set).
	Fingerprint uint64
}

// Report renders the human-readable final report.
func (r *SoakResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: %d rounds (%d ticks) in %s, %.0f ticks/s\n",
		r.Rounds, r.Ticks, r.Elapsed.Round(time.Millisecond), r.TicksPerSec)
	fmt.Fprintf(&b, "  population: %d nodes (+%d joined, -%d left), %d groups, %d singletons, mean size %.2f\n",
		r.Final.Nodes, r.Joined, r.Left, r.Final.Groups, r.Final.Singletons, r.Final.MeanSize)
	fmt.Fprintf(&b, "  legitimacy: ΠA %d/%d rounds, ΠA∧ΠS∧ΠM %d/%d rounds, mean ΠS group freshness %.1f%%\n",
		r.AgreementRounds, r.Rounds, r.ConvergedRounds, r.Rounds, 100*r.MeanSafetyRate)
	fmt.Fprintf(&b, "  best effort: %d ΠC breaks over %d topology breaks, %d violating nodes, %d unexcused\n",
		r.ContinuityBreaks, r.TopologyBreaks, r.ViolatingNodes, r.UnexcusedBreaks)
	if r.FaultsInjected > 0 {
		fmt.Fprintf(&b, "  chaos: %d faults over %d nodes, %d episodes closed (%d open), stabilization mean %.1f / max %d rounds, unexcused %d in-episode + %d outside\n",
			r.FaultsInjected, r.NodesAffected, r.Episodes, r.EpisodesOpen,
			r.MeanStabRounds, r.MaxStabRounds, r.EpisodeUnexcused, r.UnexcusedOutside)
		if r.Final.RadioDrops > 0 {
			fmt.Fprintf(&b, "  radio: %d deliveries suppressed by the channel\n", r.Final.RadioDrops)
		}
	}
	if c := r.Flight.Counters; c != nil {
		run, skip := c["computes_run"], c["computes_skipped"]
		if total := run + skip; total > 0 {
			fmt.Fprintf(&b, "  compute: %d run / %d skipped (%.1f%% skip: fixpoint %d, lonely %d, held %d)\n",
				run, skip, 100*float64(skip)/float64(total),
				c["skips_fixpoint"], c["skips_lonely"], c["skips_held"])
		}
		if run > 0 {
			fmt.Fprintf(&b, "  wakes:")
			for cause := introspect.WakeCause(0); cause < introspect.NumWakeCauses; cause++ {
				if n := c[cause.Counter().String()]; n > 0 {
					fmt.Fprintf(&b, " %s %.1f%%", cause, 100*float64(n)/float64(run))
				}
			}
			fmt.Fprintf(&b, " (of %d computes)\n", run)
		}
	}
	return b.String()
}

// BuildSoakWorld constructs the soak scenario's world, mobility model
// and initial population — the exact construction RunSoak performs, as
// a shared seam: a distributed run (internal/dist) must replicate the
// identical world in every shard process from the same config, so the
// construction must live in exactly one place. It normalizes cfg in
// place (idempotent).
func BuildSoakWorld(cfg *SoakConfig) (*space.World, mobility.Model, []ident.NodeID) {
	cfg.normalize()
	w := space.NewWorld(cfg.Range)
	if cfg.Urban {
		block := math.Max(8, cfg.Side/6)
		for x := block; x < cfg.Side; x += block {
			for y := 0.0; y < cfg.Side; y += block {
				w.Walls = append(w.Walls,
					space.Segment{A: space.Point{X: x, Y: y + 1}, B: space.Point{X: x, Y: y + block - 1}},
					space.Segment{A: space.Point{X: y + 1, Y: x}, B: space.Point{X: y + block - 1, Y: x}})
			}
		}
	}
	ids := make([]ident.NodeID, cfg.N)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	var mob mobility.Model = &mobility.Waypoint{Side: cfg.Side, SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
	if cfg.ActiveFraction > 0 && cfg.ActiveFraction < 1 {
		mob = &mobility.Commuter{Side: cfg.Side, SpeedMin: 0.5, SpeedMax: 2, Pause: 1,
			ActiveFraction: cfg.ActiveFraction}
	}
	if cfg.Static {
		mob = &mobility.Static{Side: cfg.Side}
	}
	return w, mob, ids
}

// RunSoak executes one soak run. It returns an error only on sink
// failures or counter drift; protocol-level violations are reported, not
// fatal (the unexcused counter is the caller's assertion surface).
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg.normalize()

	w, mob, ids := BuildSoakWorld(&cfg)
	ch := cfg.Channel
	if ch == nil && cfg.Fault != nil {
		ch = cfg.Fault.NewChannel(nil)
	}
	topo := engine.NewSpatialTopology(w, mob, cfg.DT, ids, rand.New(rand.NewSource(cfg.Seed)))
	e := engine.New(engine.Params{
		Cfg:     core.Config{Dmax: cfg.Dmax},
		Channel: ch,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	}, topo)
	tr := NewGroupTracker(e)
	churn := rand.New(rand.NewSource(cfg.Seed ^ 0x50a4))
	nextID := ident.NodeID(cfg.N + 1)

	// Live introspection: pprof + the registry JSON for the run's
	// lifetime. The server reads the registry through atomics only, so it
	// never perturbs the deterministic trace.
	if cfg.IntrospectAddr != "" {
		srv, err := introspect.Serve(cfg.IntrospectAddr, e.Introspect())
		if err != nil {
			return nil, fmt.Errorf("soak: introspect: %w", err)
		}
		defer srv.Close()
	}
	if cfg.WakeTrace != nil {
		e.TraceWakes(true)
	}
	flightSink, _ := cfg.Sink.(FlightWriter)

	// Chaos: the injector applies the fault schedule at each round
	// boundary (phase-aligned, coordinator-side — see internal/fault);
	// the monitor folds the tracker's record stream into stabilization
	// episodes. The flap hooks remember a victim's position so its
	// correlated rejoin returns it to the same spot.
	var inj *fault.Injector
	var mon *Monitor
	if cfg.Fault != nil {
		positions := make(map[ident.NodeID]space.Point)
		inj = fault.NewInjector(cfg.Fault, e, fault.Hooks{
			Leave: func(v ident.NodeID) {
				if p, ok := w.Pos(v); ok {
					positions[v] = p
				}
				w.Remove(v)
			},
			Rejoin: func(v ident.NodeID) {
				w.Place(v, positions[v])
			},
		})
		mon = NewMonitor(cfg.ConfirmWindow)
		mon.Aftershocks = true
	}

	res := &SoakResult{}
	safetySum := 0.0
	groupSum := 0.0
	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var st RoundStats
	for r := 1; r <= cfg.MaxRounds; r++ {
		// Churn before the round: the topology advances over the change
		// before the next observation (the tracker's contract).
		if cfg.LeaveRate > 0 && churn.Float64() < cfg.LeaveRate {
			order := e.Order()
			if len(order) > 2 {
				v := order[churn.Intn(len(order))]
				e.RemoveNode(v)
				w.Remove(v)
				res.Left++
			}
		}
		if cfg.JoinRate > 0 && churn.Float64() < cfg.JoinRate {
			v := nextID
			nextID++
			w.Place(v, space.Point{X: churn.Float64() * cfg.Side, Y: churn.Float64() * cfg.Side})
			e.AddNode(v)
			res.Joined++
		}

		if inj != nil {
			for range inj.Apply(r) {
				mon.RecordFault(r)
			}
		}

		e.StepRound()
		st = tr.Observe()
		if cfg.WakeTrace != nil {
			var werr error
			e.DrainWakes(func(wakes []introspect.WakeRec) {
				for _, w := range wakes {
					if werr = cfg.WakeTrace(r, w); werr != nil {
						return
					}
				}
			})
			if werr != nil {
				return nil, fmt.Errorf("soak: wake trace: %w", werr)
			}
		}
		if cfg.Sink != nil {
			if err := cfg.Sink.Write(st); err != nil {
				return nil, fmt.Errorf("soak: sink: %w", err)
			}
		}
		if flightSink != nil && cfg.FlightEvery > 0 && r%cfg.FlightEvery == 0 {
			if err := flightSink.WriteFlight(NewFlightRecord(r, e)); err != nil {
				return nil, fmt.Errorf("soak: flight sink: %w", err)
			}
		}
		if mon != nil {
			if ep, closed := mon.ObserveRound(st, inj.Active()); closed && cfg.Episodes != nil {
				if err := cfg.Episodes(ep); err != nil {
					return nil, fmt.Errorf("soak: episode sink: %w", err)
				}
			}
		}

		res.Rounds++
		if st.Converged {
			res.ConvergedRounds++
		}
		if st.Agreement {
			res.AgreementRounds++
		}
		if !st.Continuity {
			res.ContinuityBreaks++
			if st.Topological {
				res.UnexcusedBreaks++
			}
		}
		if !st.Topological {
			res.TopologyBreaks++
		}
		res.ViolatingNodes += st.ContinuityViolations
		safetySum += st.SafetyRate
		groupSum += float64(st.Groups)

		if cfg.Progress != nil && r%cfg.ProgressEvery == 0 {
			cfg.Progress(r, st)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
	}

	res.Final = st
	res.Ticks = e.Tick()
	if cfg.Fingerprint {
		res.Fingerprint = EngineFingerprint(e)
	}
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.TicksPerSec = float64(res.Ticks) / s
	}
	if res.Rounds > 0 {
		res.MeanSafetyRate = safetySum / float64(res.Rounds)
		res.MeanGroups = groupSum / float64(res.Rounds)
	}
	if inj != nil {
		res.FaultsInjected = inj.FaultsInjected
		res.NodesAffected = inj.NodesAffected
		res.Episodes = mon.Episodes
		if mon.Open() != nil {
			res.EpisodesOpen = 1
		}
		res.MeanStabRounds = mon.MeanStabRounds()
		res.MaxStabRounds = mon.MaxStabRounds
		res.EpisodeUnexcused = mon.TotalUnexcused
		res.UnexcusedOutside = mon.UnexcusedOutside
	}
	if flightSink != nil && cfg.FlightEvery > 0 {
		if err := flightSink.WriteFlight(NewFlightRecord(res.Rounds, e)); err != nil {
			return nil, fmt.Errorf("soak: flight sink: %w", err)
		}
	}
	reg := e.Introspect()
	res.Flight = reg.Snapshot()

	// Chaos cross-check: the registry counts injections at the emission
	// site inside the injector; its totals must match the injector's own
	// plain-field accumulation exactly, or the flight recorder is lying
	// about the fault schedule (nightly chaos gates on this error).
	if inj != nil {
		if got, want := reg.Get(introspect.CtrFaultsInjected), uint64(inj.FaultsInjected); got != want {
			return res, fmt.Errorf("soak: flight-recorder drift: faults_injected %d vs injector %d", got, want)
		}
		if got, want := reg.Get(introspect.CtrFaultNodesAffected), uint64(inj.NodesAffected); got != want {
			return res, fmt.Errorf("soak: flight-recorder drift: fault_nodes_affected %d vs injector %d", got, want)
		}
	}

	// Drift check: the tracker's cumulative counters must equal the
	// independent accumulation over the streamed records. The first
	// observation is transition-free on both sides.
	if res.ContinuityBreaks != tr.ContinuityBreaks ||
		res.TopologyBreaks != tr.TopologyBreaks ||
		res.UnexcusedBreaks != tr.UnexcusedBreaks ||
		res.ViolatingNodes != tr.ViolatingNodes {
		return res, fmt.Errorf(
			"soak: violation-counter drift: stream (ΠC %d, ΠT %d, unexcused %d, nodes %d) vs tracker (ΠC %d, ΠT %d, unexcused %d, nodes %d)",
			res.ContinuityBreaks, res.TopologyBreaks, res.UnexcusedBreaks, res.ViolatingNodes,
			tr.ContinuityBreaks, tr.TopologyBreaks, tr.UnexcusedBreaks, tr.ViolatingNodes)
	}
	return res, nil
}
