package obs

import (
	"errors"
	"strings"
	"testing"
)

// Error-injecting writers for the sink Close/flush contract (ISSUE 9):
// a failed flush of the buffered tail — the records written since the
// last periodic flush, exactly what a full disk eats — must surface out
// of Close so the harnesses (grpsoak, grpsim) can exit non-zero instead
// of reporting a clean run over a truncated stats file.

var errDiskFull = errors.New("write: no space left on device")

// chokeWriter accepts writes until budget bytes have passed, then fails
// every write. When closeErr is set, Close fails too. It counts closes
// so the tests can assert a failed flush still releases the file handle.
type chokeWriter struct {
	budget   int
	closeErr error
	writes   int
	closed   int
}

func (w *chokeWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.budget < len(p) {
		return 0, errDiskFull
	}
	w.budget -= len(p)
	return len(p), nil
}

func (w *chokeWriter) Close() error {
	w.closed++
	return w.closeErr
}

func TestJSONLSinkCloseSurfacesFlushError(t *testing.T) {
	w := &chokeWriter{budget: 0}
	s := NewJSONLSink(w, 1000) // period above the record count: the tail rides the close flush
	for i := 0; i < 3; i++ {
		if err := s.Write(RoundStats{Round: i}); err != nil {
			t.Fatalf("buffered write %d errored early: %v", i, err)
		}
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close = %v, want the flush's disk-full error", err)
	}
	if w.closed != 1 {
		t.Fatalf("underlying writer closed %d times after the failed flush, want 1", w.closed)
	}
}

func TestJSONLSinkCloseSurfacesCloseError(t *testing.T) {
	closeErr := errors.New("close: I/O error")
	w := &chokeWriter{budget: 1 << 20, closeErr: closeErr}
	s := NewJSONLSink(w, 1000)
	if err := s.Write(RoundStats{Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, closeErr) {
		t.Fatalf("Close = %v, want the underlying close error", err)
	}
}

func TestJSONLSinkPeriodicFlushErrorIsSticky(t *testing.T) {
	w := &chokeWriter{budget: 0}
	s := NewJSONLSink(w, 1) // flush every record: the first Write hits the disk
	if err := s.Write(RoundStats{Round: 1}); !errors.Is(err, errDiskFull) {
		t.Fatalf("periodic-flush Write = %v, want disk-full", err)
	}
	// The error is sticky: both a later write and the final Close keep
	// reporting it, so a harness that only checks Close still fails.
	if err := s.Write(RoundStats{Round: 2}); !errors.Is(err, errDiskFull) {
		t.Fatalf("post-error Write = %v, want disk-full", err)
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close after failed periodic flush = %v, want disk-full", err)
	}
}

func TestCSVSinkCloseSurfacesFlushError(t *testing.T) {
	w := &chokeWriter{budget: 0}
	s, err := NewCSVSink(w, 1000) // header is buffered, so construction succeeds
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(RoundStats{Round: 1}); err != nil {
		t.Fatalf("buffered write errored early: %v", err)
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close = %v, want the flush's disk-full error", err)
	}
	if w.closed != 1 {
		t.Fatalf("underlying writer closed %d times after the failed flush, want 1", w.closed)
	}
}

func TestDecimatedSinkCloseSurfacesFlushError(t *testing.T) {
	w := &chokeWriter{budget: 0}
	s := Every(5, NewJSONLSink(w, 1000))
	for i := 0; i < 10; i++ {
		if err := s.Write(RoundStats{Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("decimated Close = %v, want the inner flush error", err)
	}
}

func TestMultiSinkCloseClosesAllAndReturnsFirstError(t *testing.T) {
	good := &chokeWriter{budget: 1 << 20}
	bad := &chokeWriter{budget: 0}
	late := &chokeWriter{budget: 1 << 20}
	m := MultiSink{NewJSONLSink(good, 1000), NewJSONLSink(bad, 1000), NewJSONLSink(late, 1000)}
	if err := m.Write(RoundStats{Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("MultiSink Close = %v, want the failing member's flush error", err)
	}
	for i, w := range []*chokeWriter{good, bad, late} {
		if w.closed != 1 {
			t.Errorf("member %d closed %d times — an early member error must not strand later members", i, w.closed)
		}
	}
}

func TestRunSoakSurfacesSinkError(t *testing.T) {
	// A sink that chokes mid-run must abort the soak with the sink error,
	// not let it keep simulating over a dead stream.
	w := &chokeWriter{budget: 256}
	_, err := RunSoak(SoakConfig{
		N: 20, Dmax: 3, Seed: 3, Workers: 1, MaxRounds: 50,
		Sink: NewJSONLSink(w, 1),
	})
	if err == nil || !strings.Contains(err.Error(), "sink") || !errors.Is(err, errDiskFull) {
		t.Fatalf("RunSoak = %v, want a wrapped sink disk-full error", err)
	}
}
