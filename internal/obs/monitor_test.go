package obs

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
)

// legit/broken build the synthetic observations the unit tests feed the
// monitor: legit is the quiescent fixpoint (no membership churn, every
// group fresh, ΠC held), broken is view churn with an unexcused ΠC
// violation (topology quiet, continuity lost).
func legitStats(round int) RoundStats {
	return RoundStats{Round: round, SafetyRate: 1, Topological: true, Continuity: true}
}

func brokenStats(round int) RoundStats {
	return RoundStats{Round: round, SafetyRate: 1, MembershipChanges: 3,
		Topological: true, Continuity: false}
}

// TestMonitorSyntheticEpisode hand-drives one episode with a known
// stabilization time: a fault lands at round 10, the world is broken for
// rounds 10–12, legitimate from 13 on, window 3 — so the streak runs
// 13, 14, 15, the episode closes at 15 with StabilizedRound 13 and a
// stabilization time of 3 rounds.
func TestMonitorSyntheticEpisode(t *testing.T) {
	m := NewMonitor(3)
	for r := 1; r <= 9; r++ {
		if _, closed := m.ObserveRound(legitStats(r), false); closed {
			t.Fatalf("round %d: episode closed before any fault", r)
		}
	}
	if m.Open() != nil {
		t.Fatal("episode open before any fault")
	}

	m.RecordFault(10)
	if ep := m.Open(); ep == nil || ep.OpenedRound != 10 {
		t.Fatalf("RecordFault did not open an episode at round 10: %+v", m.Open())
	}

	var got Episode
	var closed bool
	for r := 10; r <= 20; r++ {
		st := brokenStats(r)
		if r >= 13 {
			st = legitStats(r)
		}
		if got, closed = m.ObserveRound(st, false); closed {
			if r != 15 {
				t.Fatalf("episode closed at round %d, want 15", r)
			}
			break
		}
	}
	if !closed {
		t.Fatal("episode never closed")
	}
	want := Episode{
		ID: 1, OpenedRound: 10, LastFaultRound: 10, Faults: 1,
		StabilizedRound: 13, ConfirmedRound: 15, StabilizationRounds: 3,
		ViolationRounds: 3, Unexcused: 3,
	}
	if got != want {
		t.Fatalf("episode = %+v, want %+v", got, want)
	}
	if m.Open() != nil {
		t.Fatal("episode still open after closing")
	}
	if m.Episodes != 1 || m.TotalStabRounds != 3 || m.MaxStabRounds != 3 || m.TotalUnexcused != 3 {
		t.Fatalf("aggregates: %+v", m)
	}
	if m.MeanStabRounds() != 3 {
		t.Fatalf("MeanStabRounds = %v, want 3", m.MeanStabRounds())
	}
}

// TestMonitorActiveBlocksConfirmation pins the liar semantics: while the
// injector reports an adversity in flight, legitimate rounds do not
// start the confirmation streak, so a steady lie that keeps the world in
// a plausible configuration never counts as stabilized.
func TestMonitorActiveBlocksConfirmation(t *testing.T) {
	m := NewMonitor(2)
	m.RecordFault(1)
	for r := 1; r <= 10; r++ {
		if _, closed := m.ObserveRound(legitStats(r), true); closed {
			t.Fatalf("round %d: episode closed while injector active", r)
		}
	}
	// The adversity ends: the streak may start only now.
	if _, closed := m.ObserveRound(legitStats(11), false); closed {
		t.Fatal("episode closed before the window filled")
	}
	ep, closed := m.ObserveRound(legitStats(12), false)
	if !closed {
		t.Fatal("episode did not close once the injector went quiet")
	}
	if ep.StabilizedRound != 11 || ep.StabilizationRounds != 10 {
		t.Fatalf("episode = %+v, want stabilized at 11 (stab 10)", ep)
	}
}

// TestMonitorExcusedBreaks pins the ΠT exclusion: a ΠC break while ΠT is
// itself broken is the environment's fault — it counts as a violation
// round (not legitimate: Converged false) but not as unexcused, and an
// unexcused break with no episode open lands in UnexcusedOutside.
func TestMonitorExcusedBreaks(t *testing.T) {
	m := NewMonitor(2)
	m.RecordFault(1)
	// Excused break: topology moved, continuity lost, views still churning.
	m.ObserveRound(RoundStats{Round: 1, SafetyRate: 1, MembershipChanges: 2,
		Topological: false, Continuity: false}, false)
	if m.Open().ViolationRounds != 1 || m.Open().Unexcused != 0 {
		t.Fatalf("excused break miscounted: %+v", m.Open())
	}
	// A quiescent round with an excused ΠC break is legitimate.
	m.ObserveRound(RoundStats{Round: 2, SafetyRate: 1, Topological: false, Continuity: false}, false)
	m.ObserveRound(RoundStats{Round: 3, SafetyRate: 1, Topological: true, Continuity: true}, false)
	if m.Open() != nil {
		t.Fatal("legitimate streak with an excused break did not close the episode")
	}
	// Outside any episode, an unexcused break is still surfaced.
	m.ObserveRound(brokenStats(4), false)
	if m.UnexcusedOutside != 1 {
		t.Fatalf("UnexcusedOutside = %d, want 1", m.UnexcusedOutside)
	}
}

// TestMonitorRealEpisode runs the monitor against a real engine: a
// three-node line converges, the middle node is crashed to zeroed state,
// and the episode must close with a small, pinned stabilization time.
func TestMonitorRealEpisode(t *testing.T) {
	const dmax = 3
	e := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: 1}, graph.Line(3))
	tr := NewGroupTracker(e)
	m := NewMonitor(3)

	r := 0
	for ; r < 30; r++ {
		e.StepRound()
		st := tr.Observe()
		if _, closed := m.ObserveRound(st, false); closed {
			t.Fatal("episode closed before any fault")
		}
		if st.Converged {
			break
		}
	}

	rng := rand.New(rand.NewSource(1))
	if !fault.CrashNode(e, 2, rng, false) {
		t.Fatal("CrashNode refused the middle node")
	}
	crashRound := r + 1
	m.RecordFault(crashRound)

	var ep Episode
	closed := false
	for ; r < crashRound+60; r++ {
		e.StepRound()
		st := tr.Observe()
		if ep, closed = m.ObserveRound(st, false); closed {
			break
		}
	}
	if !closed {
		t.Fatal("three-node world never re-stabilized after the crash")
	}
	if ep.Faults != 1 || ep.LastFaultRound != crashRound {
		t.Fatalf("episode bookkeeping: %+v (crash at %d)", ep, crashRound)
	}
	// A zeroed middle node on a 3-line re-converges within a handful of
	// exchange/compute cycles; pin the bound so regressions in recovery
	// latency surface here.
	if ep.StabilizationRounds <= 0 || ep.StabilizationRounds > 12 {
		t.Fatalf("stabilization took %d rounds, want 1..12 (%+v)", ep.StabilizationRounds, ep)
	}
	if m.Open() != nil {
		t.Fatal("episode still open after close")
	}
}

// TestMonitorFaultFreeSoak is the property test: a fault-free world — a
// profile armed but with every rate zero — must report zero faults, zero
// episodes, and no open episode at the end of the run.
func TestMonitorFaultFreeSoak(t *testing.T) {
	res, err := RunSoak(SoakConfig{
		N: 60, Dmax: 3, Seed: 5, Workers: 2, MaxRounds: 250, Static: true,
		Fault: &fault.Profile{Name: "quiet"},
		Episodes: func(ep Episode) error {
			t.Fatalf("fault-free run emitted an episode: %+v", ep)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected != 0 || res.Episodes != 0 || res.EpisodesOpen != 0 {
		t.Fatalf("fault-free run reports chaos: %+v", res)
	}
	if res.EpisodeUnexcused != 0 {
		t.Fatalf("fault-free run reports in-episode unexcused breaks: %+v", res)
	}
}

// TestChaosSoakDeterministicAcrossWorkers pins the acceptance criterion
// end to end: with the injector armed (crash + byzantine + burst loss),
// the entire soak result and every emitted episode record are
// bit-identical at 1 and 4 workers.
func TestChaosSoakDeterministicAcrossWorkers(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 150
	}
	run := func(workers int) string {
		prof, err := fault.Preset("mixed", 1)
		if err != nil {
			t.Fatal(err)
		}
		prof.Seed = 23
		prof.Flap = fault.FlapConfig{Rate: 0.03, DownRounds: 8, MaxStorm: 4}
		var episodes []Episode
		res, err := RunSoak(SoakConfig{
			N: 80, Dmax: 3, Seed: 13, Workers: workers,
			MaxRounds: rounds, Static: true,
			Fault: prof,
			Episodes: func(ep Episode) error {
				episodes = append(episodes, ep)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultsInjected == 0 {
			t.Fatal("mixed profile injected nothing — the determinism check is vacuous")
		}
		rep := *res
		rep.Elapsed, rep.TicksPerSec = 0, 0
		rep.Flight.PhaseNs = nil // wall-clock phase timings differ too
		b, _ := json.Marshal(struct {
			Res SoakResult
			Eps []Episode
		}{rep, episodes})
		return string(b)
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("chaos soak diverges across workers:\n w1: %s\n w4: %s", a, b)
	}
}
