package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
)

// A Sink consumes the per-round stat records of a run. Implementations
// buffer internally and flush on a record period (so an interrupted soak
// run loses at most FlushEvery rounds) and on Close.
type Sink interface {
	Write(r RoundStats) error
	Close() error
}

// DefaultFlushEvery is the record period between forced flushes when the
// caller passes 0.
const DefaultFlushEvery = 64

// JSONLSink streams one JSON object per round, newline-delimited — the
// format the soak harness writes and EXPERIMENTS.md documents.
type JSONLSink struct {
	w     *bufio.Writer
	c     io.Closer
	enc   *json.Encoder
	every int
	n     int
}

// NewJSONLSink wraps w; flushEvery ≤ 0 selects DefaultFlushEvery. If w
// is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer, flushEvery int) *JSONLSink {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushEvery
	}
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw), every: flushEvery}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// CreateJSONLSink creates (truncates) path and streams records to it.
func CreateJSONLSink(path string, flushEvery int) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f, flushEvery), nil
}

// encode streams one record of any type through the shared encoder and
// advances the shared flush counter: every record kind (stats, episodes,
// flight snapshots, wakes) interleaves in write order in one stream.
func (s *JSONLSink) encode(v any) error {
	if err := s.enc.Encode(v); err != nil {
		return err
	}
	s.n++
	if s.n%s.every == 0 {
		return s.w.Flush()
	}
	return nil
}

// Write implements Sink.
func (s *JSONLSink) Write(r RoundStats) error { return s.encode(r) }

// WriteEpisode streams one convergence-monitor episode record through
// the same encoder (JSONL is schemaless; episode records carry their own
// field names — see Episode). It shares the flush period with Write.
func (s *JSONLSink) WriteEpisode(ep Episode) error { return s.encode(ep) }

// WriteFlight implements FlightWriter: one flight-recorder snapshot
// record, `"type":"flight"`, in the same stream.
func (s *JSONLSink) WriteFlight(fr FlightRecord) error { return s.encode(fr) }

// WriteWake streams one wake-attribution trace record, `"type":"wake"`.
func (s *JSONLSink) WriteWake(w WakeRecord) error { return s.encode(w) }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CSVSink streams the records as comma-separated values with a header
// row, for spreadsheet and plotting pipelines.
type CSVSink struct {
	w     *bufio.Writer
	c     io.Closer
	every int
	n     int
	row   []byte
}

var csvHeader = []string{
	"round", "tick", "nodes", "edges", "groups", "singletons", "mean_size",
	"pi_a", "pi_s", "pi_m", "converged", "safe_groups", "safety_rate",
	"pi_t", "pi_c", "pi_c_violations", "membership_changes", "nee",
	"msgs", "delivs", "radio_drops",
}

// NewCSVSink wraps w; flushEvery ≤ 0 selects DefaultFlushEvery. If w is
// also an io.Closer, Close closes it.
func NewCSVSink(w io.Writer, flushEvery int) (*CSVSink, error) {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushEvery
	}
	s := &CSVSink{w: bufio.NewWriter(w), every: flushEvery}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	for i, h := range csvHeader {
		if i > 0 {
			s.row = append(s.row, ',')
		}
		s.row = append(s.row, h...)
	}
	s.row = append(s.row, '\n')
	if _, err := s.w.Write(s.row); err != nil {
		return nil, err
	}
	return s, nil
}

// CreateCSVSink creates (truncates) path and streams records to it.
func CreateCSVSink(path string, flushEvery int) (*CSVSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s, err := NewCSVSink(f, flushEvery)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func b2s(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Write implements Sink.
func (s *CSVSink) Write(r RoundStats) error {
	row := s.row[:0]
	row = strconv.AppendInt(row, int64(r.Round), 10)
	for _, v := range []int{r.Tick, r.Nodes, r.Edges, r.Groups, r.Singletons} {
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(v), 10)
	}
	row = append(row, ',')
	row = strconv.AppendFloat(row, r.MeanSize, 'g', -1, 64)
	for _, v := range []bool{r.Agreement, r.Safety, r.Maximality, r.Converged} {
		row = append(row, ',')
		row = append(row, b2s(v)...)
	}
	row = append(row, ',')
	row = strconv.AppendInt(row, int64(r.SafeGroups), 10)
	row = append(row, ',')
	row = strconv.AppendFloat(row, r.SafetyRate, 'g', -1, 64)
	for _, v := range []bool{r.Topological, r.Continuity} {
		row = append(row, ',')
		row = append(row, b2s(v)...)
	}
	for _, v := range []int{r.ContinuityViolations, r.MembershipChanges, r.ExternalEdges, r.MessagesSent, r.Deliveries, r.RadioDrops} {
		row = append(row, ',')
		row = strconv.AppendInt(row, int64(v), 10)
	}
	row = append(row, '\n')
	s.row = row
	if _, err := s.w.Write(row); err != nil {
		return err
	}
	s.n++
	if s.n%s.every == 0 {
		return s.w.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiSink fans every record out to several sinks.
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(r RoundStats) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteFlight implements FlightWriter, forwarding to every member sink
// that can carry flight records (CSV sinks, whose schema is fixed, are
// silently passed over).
func (m MultiSink) WriteFlight(fr FlightRecord) error {
	for _, s := range m {
		if fw, ok := s.(FlightWriter); ok {
			if err := fw.WriteFlight(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Sink, closing every sink and returning the first
// error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenSink creates a sink for path, choosing the format by extension:
// ".csv" selects CSV, everything else JSONL.
func OpenSink(path string, flushEvery int) (Sink, error) {
	if strings.HasSuffix(path, ".csv") {
		return CreateCSVSink(path, flushEvery)
	}
	return CreateJSONLSink(path, flushEvery)
}

// Every wraps a sink so only one record in k is forwarded (record
// decimation for multi-hour soak runs); k ≤ 1 forwards everything.
func Every(k int, s Sink) Sink {
	if k <= 1 {
		return s
	}
	return &decimate{k: k, s: s}
}

type decimate struct {
	k, n int
	s    Sink
}

func (d *decimate) Write(r RoundStats) error {
	d.n++
	if (d.n-1)%d.k != 0 {
		return nil
	}
	return d.s.Write(r)
}

// WriteFlight forwards flight snapshots undecimated: they carry their own
// period (SoakConfig.FlightEvery), so thinning the stats stream must not
// also thin them. A wrapped sink that cannot carry flight records drops
// them silently.
func (d *decimate) WriteFlight(fr FlightRecord) error {
	if fw, ok := d.s.(FlightWriter); ok {
		return fw.WriteFlight(fr)
	}
	return nil
}

func (d *decimate) Close() error { return d.s.Close() }
