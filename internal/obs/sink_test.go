package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// recordType classifies one JSONL line: flight and wake records carry an
// explicit "type" discriminator; stats and episode records are identified
// by their field names (the documented stream contract).
func recordType(t *testing.T, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad JSONL line %q: %v", line, err)
	}
	if ty, ok := m["type"].(string); ok {
		return ty
	}
	if _, ok := m["episode"]; ok {
		return "episode"
	}
	if _, ok := m["round"]; ok {
		return "stats"
	}
	t.Fatalf("unclassifiable record %q", line)
	return ""
}

// TestJSONLSinkInterleavesRecordKinds streams stats, episodes, flight
// snapshots and wake traces through one JSONLSink and asserts the stream
// preserves write order across kinds, every record round-trips, and the
// close flush delivers a tail shorter than the flush period.
func TestJSONLSinkInterleavesRecordKinds(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, 64) // period far above the record count: everything rides the close flush

	want := []string{}
	write := func(kind string, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, kind)
	}
	for r := 1; r <= 5; r++ {
		write("stats", s.Write(RoundStats{Round: r, Tick: 2 * r}))
		if r == 2 {
			write("wake", s.WriteWake(WakeRecord{Type: "wake", Round: r, Node: 7, Cause: "inbox_new", Sender: 9}))
		}
		if r == 3 {
			write("episode", s.WriteEpisode(Episode{ID: 1, OpenedRound: r}))
		}
		if r%2 == 0 {
			write("flight", s.WriteFlight(FlightRecord{
				Type: "flight", Round: r,
				Counters: map[string]uint64{"ticks": uint64(2 * r)},
				PhaseNs:  map[string]int64{"compute": 1},
			}))
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("sink flushed %d bytes before the period or Close", buf.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("stream has %d records, wrote %d", len(lines), len(want))
	}
	for i, line := range lines {
		if got := recordType(t, line); got != want[i] {
			t.Errorf("record %d is %q, want %q (write order not preserved)", i, got, want[i])
		}
	}
}

// TestDecimateForwardsFlightsUndecimated pins the Every(k) wrapper's
// contract: the stats stream is thinned to one record in k, while flight
// snapshots — which carry their own period — pass through untouched and
// still interleave at their write positions.
func TestDecimateForwardsFlightsUndecimated(t *testing.T) {
	var buf bytes.Buffer
	inner := NewJSONLSink(&buf, 1)
	s := Every(4, inner)
	fw, ok := s.(FlightWriter)
	if !ok {
		t.Fatal("decimated JSONL sink lost the FlightWriter capability")
	}
	for r := 1; r <= 12; r++ {
		if err := s.Write(RoundStats{Round: r}); err != nil {
			t.Fatal(err)
		}
		if r%3 == 0 {
			if err := fw.WriteFlight(FlightRecord{Type: "flight", Round: r}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	stats, flights := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		switch recordType(t, sc.Text()) {
		case "stats":
			stats++
		case "flight":
			flights++
		}
	}
	if stats != 3 { // rounds 1, 5, 9
		t.Errorf("decimated stream carries %d stat records, want 3", stats)
	}
	if flights != 4 { // rounds 3, 6, 9, 12 — none dropped
		t.Errorf("decimated stream carries %d flight records, want all 4", flights)
	}
}

// TestSoakFlightStreamThroughDecimation runs a short soak with a
// decimated sink and FlightEvery armed, asserting the end-to-end stream:
// thinned stats, undecimated periodic flight snapshots plus the final
// one, and a final record whose counters match the run's result snapshot.
func TestSoakFlightStreamThroughDecimation(t *testing.T) {
	var buf bytes.Buffer
	sink := Every(5, NewJSONLSink(&buf, 1))
	res, err := RunSoak(SoakConfig{
		N: 60, Dmax: 3, Seed: 7, Workers: 2, MaxRounds: 40,
		JoinRate: 0.1, LeaveRate: 0.1,
		Sink: sink, FlightEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	stats := 0
	var flights []FlightRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		switch recordType(t, sc.Text()) {
		case "stats":
			stats++
		case "flight":
			var fr FlightRecord
			if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
				t.Fatal(err)
			}
			flights = append(flights, fr)
		}
	}
	if stats != 8 { // 40 rounds / 5
		t.Errorf("decimated stream carries %d stat records, want 8", stats)
	}
	if len(flights) != 5 { // rounds 10, 20, 30, 40 + final
		t.Fatalf("stream carries %d flight records, want 5", len(flights))
	}
	final := flights[len(flights)-1]
	if final.Round != res.Rounds {
		t.Errorf("final flight record at round %d, run ended at %d", final.Round, res.Rounds)
	}
	for name, v := range final.Counters {
		if res.Flight.Counters[name] != v {
			t.Errorf("final flight %s = %d, result snapshot = %d", name, v, res.Flight.Counters[name])
		}
	}
	if final.Counters["wakes_self_active"] == 0 {
		t.Error("flight snapshot has no self-active wakes over a churning run — counters not wired")
	}
}
