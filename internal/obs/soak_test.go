package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSinksRoundTrip pins the record formats: JSONL decodes back to the
// same struct, CSV has the documented header and one row per record, and
// the decimating wrapper keeps every k-th record.
func TestSinksRoundTrip(t *testing.T) {
	recs := []RoundStats{
		{Round: 1, Tick: 2, Nodes: 5, Edges: 4, Groups: 2, Singletons: 1,
			MeanSize: 2.5, Agreement: true, Safety: true, Maximality: false,
			SafeGroups: 2, SafetyRate: 1, Topological: true, Continuity: true,
			ExternalEdges: 1, MessagesSent: 10, Deliveries: 8},
		{Round: 2, Tick: 4, Nodes: 5, Edges: 3, Groups: 3, Singletons: 2,
			MeanSize: 5.0 / 3.0, Agreement: false, Safety: false,
			SafeGroups: 2, SafetyRate: 2.0 / 3.0, Topological: false,
			Continuity: false, ContinuityViolations: 2, MembershipChanges: 3,
			ExternalEdges: 2, MessagesSent: 20, Deliveries: 15},
	}

	var jbuf bytes.Buffer
	js := NewJSONLSink(&jbuf, 1)
	for _, r := range recs {
		if err := js.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jbuf)
	for i := 0; sc.Scan(); i++ {
		var got RoundStats
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("line %d: %+v != %+v", i, got, recs[i])
		}
	}

	var cbuf bytes.Buffer
	cs, err := NewCSVSink(&cbuf, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := cs.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), cbuf.String())
	}
	if !strings.HasPrefix(lines[0], "round,tick,nodes,edges,groups") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,4,5,3,3,2,") {
		t.Fatalf("csv row = %q", lines[2])
	}

	var dbuf bytes.Buffer
	ds := Every(3, NewJSONLSink(&dbuf, 1))
	for i := 0; i < 7; i++ {
		if err := ds.Write(RoundStats{Round: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(dbuf.String(), "\n"); n != 3 {
		t.Fatalf("decimated records = %d, want 3 (rounds 1, 4, 7)", n)
	}
}

// TestSoakSmoke is the CI soak: a churning mobile world on the parallel
// engine observed every round, streaming to a JSONL sink, with the
// violation-counter drift check of RunSoak armed. Runs ~2k rounds in a
// few seconds without -race; the CI job runs it with -race where it is
// the required ~30s churn soak.
func TestSoakSmoke(t *testing.T) {
	rounds := 2000
	if testing.Short() {
		rounds = 400
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, 256)
	res, err := RunSoak(SoakConfig{
		N:         120,
		Dmax:      3,
		Seed:      7,
		Workers:   4,
		JoinRate:  0.10,
		LeaveRate: 0.08,
		MaxRounds: rounds,
		Urban:     true,
		Sink:      sink,
	})
	if err != nil {
		t.Fatal(err) // includes the violation-counter drift check
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", res.Rounds, rounds)
	}
	if res.Final.Nodes <= 0 || res.Final.Groups <= 0 {
		t.Fatalf("degenerate final state: %+v", res.Final)
	}
	// The best-effort contract (Prop. 14, experiment E6) is asserted for
	// *formed* groups; a continuously churning population always has
	// groups mid-formation, where merge-overshoot repair can shrink a
	// view without a topology change (the E6 "bootstrap" column). Those
	// formation-phase breaks must stay rare — the bulk of the violations
	// must be excused by ΠT.
	if 20*res.UnexcusedBreaks > res.Rounds {
		t.Errorf("unexcused ΠC breaks in %d/%d rounds (>5%%)", res.UnexcusedBreaks, res.Rounds)
	}
	if n := strings.Count(buf.String(), "\n"); n != rounds {
		t.Fatalf("sink records = %d, want %d", n, rounds)
	}
	t.Logf("%s", res.Report())
}

// TestSoakDeterministicAcrossWorkers pins the whole harness — engine,
// churn, tracker — to identical reports at different worker widths.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		res, err := RunSoak(SoakConfig{
			N: 80, Dmax: 3, Seed: 11, Workers: workers,
			JoinRate: 0.15, LeaveRate: 0.12, MaxRounds: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := *res
		rep.Elapsed, rep.TicksPerSec = 0, 0 // wall-clock fields differ
		rep.Flight.PhaseNs = nil            // …as does the timing section
		b, _ := json.Marshal(rep)
		return string(b)
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("soak diverges across workers:\n w1: %s\n w4: %s", a, b)
	}
}

// TestSoakDurationCap sanity-checks the wall-clock cap path.
func TestSoakDurationCap(t *testing.T) {
	res, err := RunSoak(SoakConfig{
		N: 40, Dmax: 3, Seed: 1, MaxRounds: 1 << 30,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || res.Rounds == 1<<30 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}
