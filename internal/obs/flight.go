package obs

import (
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/introspect"
)

// FlightRecord is one flight-recorder snapshot in a JSONL record stream.
// Unlike RoundStats and Episode records (whose field names identify
// them), flight records carry an explicit "type":"flight" discriminator
// so consumers of a mixed stream can route on it. Counters is the
// deterministic section (bit-identical at any worker count for the same
// run); PhaseNs is the wall-clock section and is machine-dependent — the
// two must never be conflated, which is why the snapshot keeps them in
// separate objects.
type FlightRecord struct {
	Type     string            `json:"type"` // always "flight"
	Round    int               `json:"round"`
	Tick     int               `json:"tick"`
	Counters map[string]uint64 `json:"counters"`
	PhaseNs  map[string]int64  `json:"phase_ns"`
}

// NewFlightRecord snapshots an engine's flight recorder at round r.
func NewFlightRecord(r int, e *engine.Engine) FlightRecord {
	snap := e.Introspect().Snapshot()
	return FlightRecord{
		Type:     "flight",
		Round:    r,
		Tick:     e.Tick(),
		Counters: snap.Counters,
		PhaseNs:  snap.PhaseNs,
	}
}

// WakeRecord is one per-node wake-attribution trace record
// ("type":"wake"): a node that ran a full compute, the skip-check gate
// that woke it, and — for the inbox causes — the sender whose traffic or
// silence did it (omitted otherwise).
type WakeRecord struct {
	Type   string       `json:"type"` // always "wake"
	Round  int          `json:"round"`
	Node   ident.NodeID `json:"node"`
	Cause  string       `json:"cause"`
	Sender ident.NodeID `json:"sender,omitempty"`
}

// NewWakeRecord converts one engine wake into its JSONL trace record.
func NewWakeRecord(round int, w introspect.WakeRec) WakeRecord {
	return WakeRecord{
		Type:   "wake",
		Round:  round,
		Node:   w.Node,
		Cause:  w.Cause.String(),
		Sender: w.Sender,
	}
}

// FlightWriter is the optional sink capability for flight-recorder
// snapshot records. JSONLSink (and the Every/MultiSink wrappers)
// implement it; fixed-schema sinks (CSV) do not and are skipped.
type FlightWriter interface {
	WriteFlight(FlightRecord) error
}
