package obs

// The convergence monitor: the measurement half of the fault-injection
// subsystem (internal/fault). It timestamps injected faults and measures
// *stabilization time* — the number of rounds from the last fault until
// the legitimacy predicates hold and stay held for a confirmation
// window — turning the soak suite's "unexcused violations = 0" invariant
// into a recovery-latency distribution, the paper's headline
// self-stabilization property made measurable.
//
// Legitimacy, for episode purposes, is the operational fixpoint
//
//	quiescent (no Ω membership change)  ∧  fresh (ΠS rate = 1)  ∧  (ΠC ∨ ¬ΠT)
//
// — the partition stopped moving, every group satisfies the diameter
// bound, and there was no unexcused continuity break. Two strict global
// predicates are deliberately NOT required:
//
//   - Raw ΠT: an environment predicate (false whenever mobility or churn
//     moved the topology across the observation) — demanding it would
//     measure the mobility model, not the protocol. A ΠC break while ΠT
//     held is unexcused and keeps the episode open; a break under a
//     broken ΠT is the environment's fault and does not.
//   - Strict Converged (ΠA ∧ ΠS ∧ ΠM): ΠM is an any-two-groups global
//     conjunction and ΠA an all-nodes one; at realistic scale a single
//     stable cross-frontier disagreement holds them false forever even
//     in a fault-free static world (the tracker still reports them per
//     round — they gate nothing here). Quiescence + per-group freshness
//     is the fixpoint the protocol actually reaches and re-reaches after
//     a fault, which is what stabilization time must measure.

// Episode is one fault-to-stabilization recovery record, emitted as one
// JSONL object through JSONLSink.WriteEpisode.
type Episode struct {
	ID int `json:"episode"`

	OpenedRound    int `json:"opened_round"`     // round of the episode's first fault
	LastFaultRound int `json:"last_fault_round"` // round of its last fault
	Faults         int `json:"faults"`           // fault events attributed to it

	// StabilizedRound is the first round of the legitimacy streak that
	// confirmed; ConfirmedRound the round the confirmation window
	// completed (StabilizedRound + Window - 1).
	StabilizedRound int `json:"stabilized_round"`
	ConfirmedRound  int `json:"confirmed_round"`

	// StabilizationRounds = StabilizedRound - LastFaultRound: rounds from
	// the last disturbance to durable legitimacy. 0 means the world never
	// left the legitimate region (the fault was absorbed instantly).
	StabilizationRounds int `json:"stab_rounds"`

	// ViolationRounds counts non-legitimate rounds while the episode was
	// open; Unexcused the subset that were unexcused ΠC breaks (ΠC false
	// while ΠT held).
	ViolationRounds int `json:"violation_rounds"`
	Unexcused       int `json:"unexcused"`

	// Aftershock marks an episode opened by an unexcused break with no
	// injected fault in flight (see Monitor.Aftershocks): a delayed
	// consequence of an earlier fault — a deferred boundary-hold expiring
	// into a merge-overshoot repair — that must re-stabilize like any
	// directly injected one.
	Aftershock bool `json:"aftershock,omitempty"`
}

// DefaultConfirmWindow is the confirmation window when the caller passes
// 0: legitimacy must hold this many consecutive observations before an
// episode closes.
const DefaultConfirmWindow = 5

// Monitor measures stabilization episodes. Drive it in lockstep with the
// tracker: RecordFault for every injected fault before the round steps,
// then ObserveRound with the tracker's RoundStats after. All methods run
// on the coordinator; the monitor consumes only the deterministic record
// stream, so its episodes are bit-identical at any worker count.
type Monitor struct {
	// Window is the confirmation window (rounds of sustained legitimacy
	// required to close an episode).
	Window int

	// Aftershocks, when set, turns an unexcused break observed with no
	// episode open into a new (aftershock) episode instead of a
	// free-floating counter: on a churn-free chaos run nothing else can
	// cause one, so it is fault-attributable even when the causal chain —
	// a corrupted reload's time-bomb, a deferred merge repair — outlives
	// any fixed confirmation window. The break still counts in
	// UnexcusedOutside; the episode must then re-stabilize like any
	// other. RunSoak sets this whenever the injector is armed.
	Aftershocks bool

	open   *Episode
	streak int
	nextID int

	// Cumulative aggregates over closed episodes.
	Episodes           int
	TotalStabRounds    int
	MaxStabRounds      int
	TotalViolationRnds int
	TotalUnexcused     int
	UnexcusedOutside   int // unexcused ΠC breaks with no episode open
	FaultsRecorded     int
}

// NewMonitor returns a monitor with the given confirmation window (≤ 0
// selects DefaultConfirmWindow).
func NewMonitor(window int) *Monitor {
	if window <= 0 {
		window = DefaultConfirmWindow
	}
	return &Monitor{Window: window}
}

// Legitimate is the episode-closing predicate over one observation (see
// the package comment for why raw ΠT is excluded).
func Legitimate(st RoundStats) bool {
	return st.MembershipChanges == 0 && st.SafetyRate == 1 &&
		(st.Continuity || !st.Topological)
}

// RecordFault attributes one injected fault to the current episode,
// opening one if none is open. round is the round about to be stepped
// (the tracker will observe it as st.Round == round).
func (m *Monitor) RecordFault(round int) {
	m.FaultsRecorded++
	if m.open == nil {
		m.nextID++
		m.open = &Episode{ID: m.nextID, OpenedRound: round}
	}
	m.open.LastFaultRound = round
	m.open.Faults++
	m.streak = 0
}

// Open returns the currently open episode, or nil when the world is
// stabilized (a fault-free run always returns nil — the property test
// pins this).
func (m *Monitor) Open() *Episode { return m.open }

// ObserveRound feeds one tracker observation. active reports whether the
// injector still has an adversity in flight (a liar armed, a flapped
// neighborhood down): while true the confirmation streak cannot start,
// so a steady lie that holds the world in a plausible configuration
// never counts as stabilized. It returns the episode closed by this
// observation, if any.
func (m *Monitor) ObserveRound(st RoundStats, active bool) (Episode, bool) {
	legit := Legitimate(st)
	unexcused := !st.Continuity && st.Topological

	if m.open == nil {
		if unexcused {
			m.UnexcusedOutside++
			// Only after the first injected fault: the bootstrap phase of
			// a fresh world produces formation-time breaks (the soak
			// suite's documented "bootstrap" column) that are nobody's
			// aftershock.
			if m.Aftershocks && m.FaultsRecorded > 0 {
				m.nextID++
				m.open = &Episode{
					ID: m.nextID, OpenedRound: st.Round, LastFaultRound: st.Round,
					ViolationRounds: 1, Unexcused: 1, Aftershock: true,
				}
				m.streak = 0
			}
		}
		return Episode{}, false
	}

	if !legit {
		m.open.ViolationRounds++
		if unexcused {
			m.open.Unexcused++
		}
	}
	if !legit || active {
		m.streak = 0
		return Episode{}, false
	}
	m.streak++
	if m.streak < m.Window {
		return Episode{}, false
	}

	ep := *m.open
	ep.StabilizedRound = st.Round - m.Window + 1
	ep.ConfirmedRound = st.Round
	ep.StabilizationRounds = ep.StabilizedRound - ep.LastFaultRound
	if ep.StabilizationRounds < 0 {
		ep.StabilizationRounds = 0
	}
	m.open = nil
	m.streak = 0

	m.Episodes++
	m.TotalStabRounds += ep.StabilizationRounds
	if ep.StabilizationRounds > m.MaxStabRounds {
		m.MaxStabRounds = ep.StabilizationRounds
	}
	m.TotalViolationRnds += ep.ViolationRounds
	m.TotalUnexcused += ep.Unexcused
	return ep, true
}

// MeanStabRounds returns the mean stabilization time over closed
// episodes (0 when none closed).
func (m *Monitor) MeanStabRounds() float64 {
	if m.Episodes == 0 {
		return 0
	}
	return float64(m.TotalStabRounds) / float64(m.Episodes)
}
