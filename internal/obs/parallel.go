package obs

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
)

// The tracker mirrors the engine's deterministic fan-out discipline: node
// work is partitioned into the engine's fixed NumShards shards, every
// parallel phase writes only shard-local (or slot-local) state, and the
// coordinator merges results in shard-major canonical order. The observed
// statistics are therefore bit-identical at any worker count.

// runShards applies fn to every engine shard: inline when workers ≤ 1,
// else on a pool of workers goroutines with a static shard-to-worker
// assignment. fn(s, w) must only write state owned by shard s or by
// worker w.
func (t *GroupTracker) runShards(fn func(s, w int)) {
	w := t.workers
	if w <= 1 {
		for s := 0; s < engine.NumShards; s++ {
			fn(s, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			for s := i; s < engine.NumShards; s += w {
				fn(s, i)
			}
		}(i)
	}
	wg.Wait()
}

// runSlots is a deterministic parallel-for over n independent slots: fn
// must be a pure evaluation writing only results[i] and worker-w scratch,
// so the outcome is independent of which worker processes which slot.
func (t *GroupTracker) runSlots(n int, fn func(i, w int)) {
	w := t.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				fn(i, k)
			}
		}(k)
	}
	wg.Wait()
}

// workerScratch is one worker's reusable evaluation buffers: array-based
// BFS state for the small groups the Dmax bound produces, with a
// graph-indexed fallback for pathological sizes. The fallback arrays are
// indexed by the graph's dense node index (graph.G.IndexOf) and
// epoch-stamped, so reuse across evaluations costs two counter bumps
// instead of rebuilding (or clearing) per-evaluation maps.
type workerScratch struct {
	dist  []int          // distance per member index, -1 = unreached
	queue []int          // member-index frontier
	ubuf  []ident.NodeID // union-of-two-groups member buffer

	memberEpoch []uint32 // graph index → epoch last marked a member
	distEpoch   []uint32 // graph index → epoch last reached
	gdist       []int32  // graph index → BFS distance (valid under distEpoch)
	iq          []int32  // graph-index frontier
	mEpoch      uint32   // current membership epoch (one per evaluation)
	dEpoch      uint32   // current distance epoch (one per BFS source)
}

func newWorkerScratch() *workerScratch { return &workerScratch{} }

// smallGroup is the member count up to which the induced-diameter BFS
// runs on index arrays with linear membership scans — no map traffic.
// Groups are Dmax-bounded in practice, so the fallback is for corrupted
// or adversarial configurations only.
const smallGroup = 48

// stretched reports whether the subgraph of g induced by members has
// diameter > dmax (disconnection counts as infinite): the single quantity
// behind both ΠS (evaluated on the current partition and graph) and ΠT
// (evaluated on the previous partition against the new graph — a member
// that left g is unreachable and stretches the group). Singleton groups
// are never stretched.
func (w *workerScratch) stretched(g *graph.G, members []ident.NodeID, dmax int) bool {
	k := len(members)
	if k <= 1 {
		return false
	}
	if k > smallGroup {
		return w.stretchedLarge(g, members, dmax)
	}
	if cap(w.dist) < k {
		w.dist = make([]int, k)
	}
	dist := w.dist[:k]
	for src := 0; src < k; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		w.queue = append(w.queue[:0], src)
		reached := 1
		over := false
		for qi := 0; qi < len(w.queue); qi++ {
			i := w.queue[qi]
			dv := dist[i]
			g.ForEachNeighbor(members[i], func(u ident.NodeID) {
				// Linear membership scan: the slice is tiny.
				for j := 0; j < k; j++ {
					if members[j] == u {
						if dist[j] < 0 {
							if dv+1 > dmax {
								over = true
								return
							}
							dist[j] = dv + 1
							w.queue = append(w.queue, j)
							reached++
						}
						return
					}
				}
			})
			if over {
				return true
			}
		}
		if reached != k {
			return true // disconnected (or src left the graph)
		}
	}
	return false
}

// stretchedLarge is the fallback for oversized groups: BFS over the
// graph's dense node indices with epoch-stamped scratch arrays — no map
// beyond the one IndexOf probe per member and per visited edge.
func (w *workerScratch) stretchedLarge(g *graph.G, members []ident.NodeID, dmax int) bool {
	if n := g.NumNodes(); len(w.memberEpoch) < n {
		w.memberEpoch = make([]uint32, n)
		w.distEpoch = make([]uint32, n)
		w.gdist = make([]int32, n)
		w.mEpoch, w.dEpoch = 0, 0
	}
	w.mEpoch++
	if w.mEpoch == 0 { // wrapped: stale stamps could collide — reset
		clear(w.memberEpoch)
		w.mEpoch = 1
	}
	k := len(members)
	for _, v := range members {
		i := g.IndexOf(v)
		if i < 0 {
			// A member absent from the graph (it departed; ΠT evaluates
			// the previous partition against the new topology) is
			// unreachable from the others, so the group is stretched.
			return true
		}
		w.memberEpoch[i] = w.mEpoch
	}
	for _, src := range members {
		w.dEpoch++
		if w.dEpoch == 0 {
			clear(w.distEpoch)
			w.dEpoch = 1
		}
		si := g.IndexOf(src)
		w.distEpoch[si] = w.dEpoch
		w.gdist[si] = 0
		w.iq = append(w.iq[:0], si)
		reached := 1
		for qi := 0; qi < len(w.iq); qi++ {
			vi := w.iq[qi]
			dv := int(w.gdist[vi])
			for _, u := range g.NeighborsAt(vi) {
				ui := g.IndexOf(u)
				if w.memberEpoch[ui] != w.mEpoch || w.distEpoch[ui] == w.dEpoch {
					continue
				}
				if dv+1 > dmax {
					return true
				}
				w.distEpoch[ui] = w.dEpoch
				w.gdist[ui] = int32(dv + 1)
				w.iq = append(w.iq, ui)
				reached++
			}
		}
		if reached != k {
			return true
		}
	}
	return false
}

// mergeable reports whether the union of two disjoint groups induces a
// subgraph of diameter ≤ dmax — the pairwise test of ΠM, evaluated only
// for groups joined by at least one external edge (a union with no
// connecting edge is disconnected, hence never mergeable).
func (w *workerScratch) mergeable(g *graph.G, a, b []ident.NodeID, dmax int) bool {
	w.ubuf = w.ubuf[:0]
	w.ubuf = append(w.ubuf, a...)
	w.ubuf = append(w.ubuf, b...)
	return !w.stretched(g, w.ubuf, dmax)
}

// mix is the splitmix64 finalizer, the mixing step behind the tracker's
// commutative set hashes.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashIDs hashes an ID set commutatively (sum of mixed members), so the
// iteration order never matters. Callers compare lengths separately;
// equal hashes are always confirmed by an exact slice comparison before
// any decision, so a collision can cost a comparison, never correctness.
func hashIDs(ids []ident.NodeID) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range ids {
		h += mix(uint64(v) + 0x9e3779b97f4a7c15)
	}
	return h
}
