package obs

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
)

// The tracker mirrors the engine's deterministic fan-out discipline: node
// work is partitioned into the engine's fixed NumShards shards, every
// parallel phase writes only shard-local (or slot-local) state, and the
// coordinator merges results in shard-major canonical order. The observed
// statistics are therefore bit-identical at any worker count.

// runShards applies fn to every engine shard: inline when workers ≤ 1,
// else on a pool of workers goroutines with a static shard-to-worker
// assignment. fn(s, w) must only write state owned by shard s or by
// worker w.
func (t *GroupTracker) runShards(fn func(s, w int)) {
	w := t.workers
	if w <= 1 {
		for s := 0; s < engine.NumShards; s++ {
			fn(s, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			for s := i; s < engine.NumShards; s += w {
				fn(s, i)
			}
		}(i)
	}
	wg.Wait()
}

// runSlots is a deterministic parallel-for over n independent slots: fn
// must be a pure evaluation writing only results[i] and worker-w scratch,
// so the outcome is independent of which worker processes which slot.
func (t *GroupTracker) runSlots(n int, fn func(i, w int)) {
	w := t.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				fn(i, k)
			}
		}(k)
	}
	wg.Wait()
}

// workerScratch is one worker's reusable evaluation buffers: array-based
// BFS state for the small groups the Dmax bound produces, with a
// map-based fallback for pathological sizes.
type workerScratch struct {
	dist  []int          // distance per member index, -1 = unreached
	queue []int          // member-index frontier
	ubuf  []ident.NodeID // union-of-two-groups member buffer

	set   map[ident.NodeID]bool // fallback: membership of the evaluated group
	mdist map[ident.NodeID]int
	mq    []ident.NodeID
}

func newWorkerScratch() *workerScratch {
	return &workerScratch{
		set:   make(map[ident.NodeID]bool),
		mdist: make(map[ident.NodeID]int),
	}
}

// smallGroup is the member count up to which the induced-diameter BFS
// runs on index arrays with linear membership scans — no map traffic.
// Groups are Dmax-bounded in practice, so the fallback is for corrupted
// or adversarial configurations only.
const smallGroup = 48

// stretched reports whether the subgraph of g induced by members has
// diameter > dmax (disconnection counts as infinite): the single quantity
// behind both ΠS (evaluated on the current partition and graph) and ΠT
// (evaluated on the previous partition against the new graph — a member
// that left g is unreachable and stretches the group). Singleton groups
// are never stretched.
func (w *workerScratch) stretched(g *graph.G, members []ident.NodeID, dmax int) bool {
	k := len(members)
	if k <= 1 {
		return false
	}
	if k > smallGroup {
		return w.stretchedLarge(g, members, dmax)
	}
	if cap(w.dist) < k {
		w.dist = make([]int, k)
	}
	dist := w.dist[:k]
	for src := 0; src < k; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		w.queue = append(w.queue[:0], src)
		reached := 1
		over := false
		for qi := 0; qi < len(w.queue); qi++ {
			i := w.queue[qi]
			dv := dist[i]
			g.ForEachNeighbor(members[i], func(u ident.NodeID) {
				// Linear membership scan: the slice is tiny.
				for j := 0; j < k; j++ {
					if members[j] == u {
						if dist[j] < 0 {
							if dv+1 > dmax {
								over = true
								return
							}
							dist[j] = dv + 1
							w.queue = append(w.queue, j)
							reached++
						}
						return
					}
				}
			})
			if over {
				return true
			}
		}
		if reached != k {
			return true // disconnected (or src left the graph)
		}
	}
	return false
}

// stretchedLarge is the map-based fallback for oversized groups.
func (w *workerScratch) stretchedLarge(g *graph.G, members []ident.NodeID, dmax int) bool {
	clear(w.set)
	for _, v := range members {
		w.set[v] = true
	}
	for _, src := range members {
		clear(w.mdist)
		w.mq = append(w.mq[:0], src)
		w.mdist[src] = 0
		over := false
		for qi := 0; qi < len(w.mq); qi++ {
			v := w.mq[qi]
			dv := w.mdist[v]
			g.ForEachNeighbor(v, func(u ident.NodeID) {
				if !w.set[u] || over {
					return
				}
				if _, seen := w.mdist[u]; !seen {
					if dv+1 > dmax {
						over = true
						return
					}
					w.mdist[u] = dv + 1
					w.mq = append(w.mq, u)
				}
			})
			if over {
				return true
			}
		}
		if len(w.mdist) != len(members) {
			return true
		}
	}
	return false
}

// mergeable reports whether the union of two disjoint groups induces a
// subgraph of diameter ≤ dmax — the pairwise test of ΠM, evaluated only
// for groups joined by at least one external edge (a union with no
// connecting edge is disconnected, hence never mergeable).
func (w *workerScratch) mergeable(g *graph.G, a, b []ident.NodeID, dmax int) bool {
	w.ubuf = w.ubuf[:0]
	w.ubuf = append(w.ubuf, a...)
	w.ubuf = append(w.ubuf, b...)
	return !w.stretched(g, w.ubuf, dmax)
}

// mix is the splitmix64 finalizer, the mixing step behind the tracker's
// commutative set hashes.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashIDs hashes an ID set commutatively (sum of mixed members), so the
// iteration order never matters. Callers compare lengths separately;
// equal hashes are always confirmed by an exact slice comparison before
// any decision, so a collision can cost a comparison, never correctness.
func hashIDs(ids []ident.NodeID) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range ids {
		h += mix(uint64(v) + 0x9e3779b97f4a7c15)
	}
	return h
}
