package obs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

// checkAgainstOracle compares one tracker observation against the
// brute-force snapshot path on every statistic the tracker reports.
func checkAgainstOracle(t *testing.T, tag string, st RoundStats, tr *GroupTracker,
	prev, cur metrics.Snapshot, hasPrev bool, dmax int) {
	t.Helper()
	if got, want := fmt.Sprint(tr.Groups()), fmt.Sprint(cur.Groups()); got != want {
		t.Fatalf("%s: partition diverged:\n tracker: %s\n oracle:  %s", tag, got, want)
	}
	if st.Groups != cur.GroupCount() {
		t.Fatalf("%s: groups=%d want %d", tag, st.Groups, cur.GroupCount())
	}
	if st.Singletons != cur.SingletonCount() {
		t.Fatalf("%s: singletons=%d want %d", tag, st.Singletons, cur.SingletonCount())
	}
	if st.MeanSize != cur.MeanGroupSize() {
		t.Fatalf("%s: mean_size=%v want %v", tag, st.MeanSize, cur.MeanGroupSize())
	}
	if st.Nodes != cur.G.NumNodes() {
		t.Fatalf("%s: nodes=%d want %d", tag, st.Nodes, cur.G.NumNodes())
	}
	if st.Edges != cur.G.NumEdges() {
		t.Fatalf("%s: edges=%d want %d", tag, st.Edges, cur.G.NumEdges())
	}
	if st.Agreement != cur.Agreement() {
		t.Fatalf("%s: ΠA=%v want %v", tag, st.Agreement, cur.Agreement())
	}
	if st.Safety != cur.Safety(dmax) {
		t.Fatalf("%s: ΠS=%v want %v", tag, st.Safety, cur.Safety(dmax))
	}
	if st.SafetyRate != cur.SafetyRate(dmax) {
		t.Fatalf("%s: safety_rate=%v want %v", tag, st.SafetyRate, cur.SafetyRate(dmax))
	}
	if st.Maximality != cur.Maximality(dmax) {
		t.Fatalf("%s: ΠM=%v want %v", tag, st.Maximality, cur.Maximality(dmax))
	}
	if st.Converged != cur.Converged(dmax) {
		t.Fatalf("%s: converged=%v want %v", tag, st.Converged, cur.Converged(dmax))
	}
	if st.ExternalEdges != cur.ExternalEdges() {
		t.Fatalf("%s: nee=%d want %d", tag, st.ExternalEdges, cur.ExternalEdges())
	}
	if hasPrev {
		if want := metrics.Topological(prev, cur, dmax); st.Topological != want {
			t.Fatalf("%s: ΠT=%v want %v", tag, st.Topological, want)
		}
		viol := metrics.ContinuityViolations(prev, cur)
		if st.ContinuityViolations != len(viol) {
			t.Fatalf("%s: ΠC violations=%d want %d (%v)", tag, st.ContinuityViolations, len(viol), viol)
		}
		if st.Continuity != (len(viol) == 0) {
			t.Fatalf("%s: ΠC=%v want %v", tag, st.Continuity, len(viol) == 0)
		}
	}
}

// TestTrackerMatchesOracleStatic pins the tracker to the oracle on a
// static topology through convergence, including a mid-run link cut and
// a node removal (the restricted-graph and membership invalidations).
func TestTrackerMatchesOracleStatic(t *testing.T) {
	const dmax = 3
	g := graph.Line(14)
	e := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: 1}, g)
	tr := NewGroupTracker(e)

	var prev metrics.Snapshot
	hasPrev := false
	for r := 1; r <= 60; r++ {
		e.StepRound()
		switch r {
		case 25:
			g.RemoveEdge(7, 8) // partition the line
		case 40:
			e.RemoveNode(3) // leave without topology cleanup: 3 stays in g
			g.RemoveNode(3)
		}
		st := tr.Observe()
		cur := e.Snapshot()
		checkAgainstOracle(t, fmt.Sprintf("round %d", r), st, tr, prev, cur, hasPrev, dmax)
		prev, hasPrev = cur, true
	}
}

// TestTrackerMatchesOracleChurn is the property test of the issue: a
// mobile world with obstacle walls, lossy radio, jitter, and random
// join/leave churn — every round the tracker must agree with the
// brute-force snapshot oracle on the partition, every predicate and
// every counter. Walls plus waypoint motion exercise splits, merges and
// transient disagreement; churn exercises the membership paths
// (including a remove-and-readd inside one observation window).
func TestTrackerMatchesOracleChurn(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const dmax = 3
			w := space.NewWorld(5)
			w.Walls = []space.Segment{
				{A: space.Point{X: 12, Y: -2}, B: space.Point{X: 12, Y: 14}},
			}
			ids := make([]ident.NodeID, 24)
			for i := range ids {
				ids[i] = ident.NodeID(i + 1)
			}
			topo := engine.NewSpatialTopology(w,
				&mobility.Waypoint{Side: 24, SpeedMin: 0.5, SpeedMax: 2.5, Pause: 0.5},
				0.25, ids, rand.New(rand.NewSource(seed)))
			e := engine.New(engine.Params{
				Cfg:     core.Config{Dmax: dmax},
				Channel: radio.Lossy{P: 0.15},
				Jitter:  true,
				Seed:    seed,
				Workers: 2,
			}, topo)
			tr := NewGroupTracker(e)
			churn := rand.New(rand.NewSource(seed * 977))
			nextID := ident.NodeID(100)

			var prev metrics.Snapshot
			hasPrev := false
			for r := 1; r <= 70; r++ {
				// Churn is applied before the round, so the spatial
				// topology advances its graph over the change before the
				// next observation (the tracker's documented contract).
				order := e.Order()
				switch {
				case r%9 == 4 && len(order) > 8:
					v := order[churn.Intn(len(order))]
					e.RemoveNode(v)
					w.Remove(v)
				case r%9 == 7:
					v := nextID
					nextID++
					w.Place(v, space.Point{X: churn.Float64() * 24, Y: churn.Float64() * 24})
					e.AddNode(v)
				case r == 31 && len(order) > 4:
					// Remove and re-add the same node within one
					// observation window (the reborn path).
					v := order[churn.Intn(len(order))]
					p, _ := w.Pos(v)
					e.RemoveNode(v)
					w.Remove(v)
					w.Place(v, p.Add(1, 1))
					e.AddNode(v)
				}
				e.StepRound()
				st := tr.Observe()
				cur := e.Snapshot()
				checkAgainstOracle(t, fmt.Sprintf("seed %d round %d", seed, r), st, tr, prev, cur, hasPrev, dmax)
				prev, hasPrev = cur, true
			}
		})
	}
}

// obsFingerprint renders everything the acceptance criterion pins:
// partition, predicate bits, rates and counters.
func obsFingerprint(st RoundStats, tr *GroupTracker) string {
	return fmt.Sprintf("%v|g=%d s=%d m=%.17g|A=%v S=%v M=%v|sr=%.17g sg=%d|T=%v C=%v cv=%d mc=%d|nee=%d|n=%d e=%d",
		tr.Groups(), st.Groups, st.Singletons, st.MeanSize,
		st.Agreement, st.Safety, st.Maximality,
		st.SafetyRate, st.SafeGroups,
		st.Topological, st.Continuity, st.ContinuityViolations, st.MembershipChanges,
		st.ExternalEdges, st.Nodes, st.Edges)
}

// TestTrackerDeterministicAcrossWorkers pins the acceptance criterion:
// the tracker's full output is bit-identical at Workers=1 and Workers=4
// on a churning mobile scenario.
func TestTrackerDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []string {
		w := space.NewWorld(4)
		ids := make([]ident.NodeID, 40)
		for i := range ids {
			ids[i] = ident.NodeID(i + 1)
		}
		topo := engine.NewSpatialTopology(w,
			&mobility.Waypoint{Side: 18, SpeedMin: 0.5, SpeedMax: 2, Pause: 1},
			0.2, ids, rand.New(rand.NewSource(3)))
		e := engine.New(engine.Params{
			Cfg: core.Config{Dmax: 3}, Seed: 9, Workers: workers,
			Jitter: true, RandomizedSends: true, Ts: 2, Tc: 4,
		}, topo)
		tr := NewGroupTracker(e)
		var out []string
		for r := 1; r <= 40; r++ {
			switch r {
			case 12:
				e.RemoveNode(5)
				w.Remove(5)
			case 20:
				w.Place(77, space.Point{X: 9, Y: 9})
				e.AddNode(77)
			}
			e.StepRound()
			st := tr.Observe()
			out = append(out, obsFingerprint(st, tr))
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("workers=%d: round %d diverges:\n seq: %s\n par: %s", workers, r+1, want[r], got[r])
			}
		}
	}
}

// TestTrackerSparseObservation checks that Observe may be called every
// k-th round: the dirty sets accumulate and the transition predicates
// compare the bracketing configurations, exactly like feeding the two
// bracketing snapshots to the oracle.
func TestTrackerSparseObservation(t *testing.T) {
	const dmax = 3
	g := graph.Ring(12)
	e := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: 2}, g)
	tr := NewGroupTracker(e)

	var prev metrics.Snapshot
	hasPrev := false
	for o := 1; o <= 12; o++ {
		e.StepRound()
		e.StepRound()
		e.StepRound() // three rounds per observation
		if o == 6 {
			g.RemoveEdge(1, 2)
		}
		st := tr.Observe()
		cur := e.Snapshot()
		checkAgainstOracle(t, fmt.Sprintf("obs %d", o), st, tr, prev, cur, hasPrev, dmax)
		prev, hasPrev = cur, true
	}
}
