package obs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
)

// NodeStateHash digests one node's protocol-visible state: the same
// fields, in the same rendering, as the conformance suite's per-round
// state hash — list, view, priorities and self-quarantine. Equal hashes
// across two runs are the per-node witness of a bit-identical trace.
func NodeStateHash(v ident.NodeID, n *core.Node) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%v|%s|%s|%d\n",
		v, n.List(), n.View(), n.Priority(), n.GroupPriority(), n.QuarantineOf(v))
	return h.Sum64()
}

// NodeHashPair carries one node's state hash to the fingerprint fold.
type NodeHashPair struct {
	ID   ident.NodeID
	Hash uint64
}

// FoldFingerprint folds per-node hashes into one run fingerprint, in
// ascending ID order (pairs are sorted in place) — so the fold is
// independent of which process contributed which node, which is what
// lets a distributed run (internal/dist) assemble the identical
// fingerprint from per-shard fragments.
func FoldFingerprint(pairs []NodeHashPair) uint64 {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ID < pairs[j].ID })
	h := fnv.New64a()
	var b [12]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(b[:], uint32(p.ID))
		binary.LittleEndian.PutUint64(b[4:], p.Hash)
		h.Write(b[:])
	}
	return h.Sum64()
}

// AppendEngineHashes appends one pair per current member of e.
func AppendEngineHashes(dst []NodeHashPair, e *engine.Engine) []NodeHashPair {
	for _, v := range e.Order() {
		dst = append(dst, NodeHashPair{ID: v, Hash: NodeStateHash(v, e.Nodes[v])})
	}
	return dst
}

// EngineFingerprint is the whole-run fingerprint of a single engine.
func EngineFingerprint(e *engine.Engine) uint64 {
	return FoldFingerprint(AppendEngineHashes(nil, e))
}
