package obs

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
)

// Viewer is the per-node surface the tracker's extraction phase reads: a
// change counter to reject unchanged views cheaply, and the view content
// itself. *core.Node implements it; the distributed lead (internal/dist)
// serves mirrored views shipped from the owning shard instead.
type Viewer interface {
	// ViewVersion counts view-content changes (monotone; equal values
	// imply an identical view).
	ViewVersion() uint64
	// AppendView appends the view's members in ascending order.
	AppendView(dst []ident.NodeID) []ident.NodeID
}

// Source is the engine surface GroupTracker observes. The canonical
// implementation is the adapter over *engine.Engine (NewGroupTracker);
// internal/dist implements it on the lead shard by merging the per-shard
// engines' reports in fixed shard order, which is what keeps the
// tracker's record stream bit-identical between one process and many.
//
// The slot/shard contract mirrors the engine's: SlotOf assigns every
// member a stable dense slot below SlotCap, DrainDirty buckets computed
// slots by engine.ShardOf of the occupant, and Order lists members
// ascending. A Source must report every executed compute that can have
// changed a view — exactly the engine's dirty-report guarantee.
type Source interface {
	// Workers is the tracker's fan-out width (a pure throughput knob).
	Workers() int
	// Dmax is the protocol's group diameter bound.
	Dmax() int
	// TrackDirty enables dirty reporting; called once at attach time.
	TrackDirty()
	// SlotCap sizes slot-indexed observer arrays.
	SlotCap() int
	// Order lists the current members ascending (read-only view).
	Order() []ident.NodeID
	// SlotOf resolves a member's slot (< 0 when not a member).
	SlotOf(v ident.NodeID) int32
	// ViewerAtSlot serves the occupant's view surface (nil when free).
	ViewerAtSlot(s int32) Viewer
	// DrainDirty hands over and resets the accumulated dirty report.
	DrainDirty(fn func(computed [engine.NumShards][]int32, added []ident.NodeID, removed []engine.RemovedNode))
	// SnapshotGraph is the topology graph restricted to live members.
	SnapshotGraph() *graph.G
	// Tick is the engine tick at observation time.
	Tick() int
	// TrafficTotals returns the cumulative broadcast and reception
	// counts (globally, summed across shards in a distributed run).
	TrafficTotals() (msgs, delivs int)
	// Introspect is the flight recorder observation counters route into.
	Introspect() *introspect.Registry
}

// engineSource adapts *engine.Engine to Source.
type engineSource struct {
	e *engine.Engine
}

func (s engineSource) Workers() int                 { return s.e.P.Workers }
func (s engineSource) Dmax() int                    { return s.e.P.Cfg.Dmax }
func (s engineSource) TrackDirty()                  { s.e.TrackDirty() }
func (s engineSource) SlotCap() int                 { return s.e.SlotCap() }
func (s engineSource) Order() []ident.NodeID        { return s.e.Order() }
func (s engineSource) SlotOf(v ident.NodeID) int32  { return s.e.SlotOf(v) }
func (s engineSource) SnapshotGraph() *graph.G      { return s.e.SnapshotGraph() }
func (s engineSource) Tick() int                    { return s.e.Tick() }
func (s engineSource) TrafficTotals() (int, int)    { return s.e.MessagesSent, s.e.Deliveries }
func (s engineSource) Introspect() *introspect.Registry { return s.e.Introspect() }

func (s engineSource) ViewerAtSlot(slot int32) Viewer {
	// The nil *core.Node must become a nil interface, not a non-nil
	// interface wrapping nil.
	if n := s.e.NodeAtSlot(slot); n != nil {
		return n
	}
	return nil
}

func (s engineSource) DrainDirty(fn func([engine.NumShards][]int32, []ident.NodeID, []engine.RemovedNode)) {
	s.e.DrainDirty(fn)
}

// Compile-time check that core.Node satisfies the extraction surface.
var _ Viewer = (*core.Node)(nil)
