package fault

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

func TestPresetProfiles(t *testing.T) {
	for _, name := range []string{"crash", "byzantine", "flap", "burst", "mixed"} {
		p, err := Preset(name, 1)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("Preset(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := Preset("nope", 1); err == nil {
		t.Fatal("Preset(nope) did not error")
	}
	// Intensity scales rates but keeps probabilities clamped.
	p, _ := Preset("mixed", 100)
	if p.Byz.Rate > 0.95 || p.Chan.BurstPGoodBad > 0.95 {
		t.Fatalf("intensity 100 left unclamped probabilities: %+v", p)
	}
	if p.Crash.Rate <= 0.02 {
		t.Fatalf("intensity 100 did not scale crash rate: %v", p.Crash.Rate)
	}
}

// slotOf builds one three-sender slot over a line topology.
func testTxs() []radio.Tx {
	return []radio.Tx{
		{Sender: 1, Receivers: []ident.NodeID{2}},
		{Sender: 2, Receivers: []ident.NodeID{1, 3}},
		{Sender: 3, Receivers: []ident.NodeID{2}},
	}
}

func TestBurstLossChainAndCounter(t *testing.T) {
	// PGoodBad=1, PBadGood=0: the chain jumps to bad on the first slot and
	// stays there; LossBad=1 drops everything from then on.
	b := &BurstLoss{LossGood: 0, LossBad: 1, PGoodBad: 1, PBadGood: 0}
	rng := rand.New(rand.NewSource(1))
	for slot := 0; slot < 5; slot++ {
		if got := b.AppendDeliverSlot(testTxs(), rng, nil); len(got) != 0 {
			t.Fatalf("slot %d: bad-state burst channel delivered %d", slot, len(got))
		}
	}
	if !b.Bad() {
		t.Fatal("chain did not transition to bad")
	}
	if b.DroppedDeliveries() != 20 { // 4 deliveries × 5 slots
		t.Fatalf("DroppedDeliveries = %d, want 20", b.DroppedDeliveries())
	}
}

func TestAsymLossIsPerLinkStable(t *testing.T) {
	a := &AsymLoss{MaxP: 1, Seed: 42}
	p12, p21 := a.linkP(1, 2), a.linkP(2, 1)
	if p12 < 0 || p12 >= 1 || p21 < 0 || p21 >= 1 {
		t.Fatalf("link probabilities out of range: %v %v", p12, p21)
	}
	if p12 == p21 {
		t.Fatalf("directions hashed identically: %v", p12)
	}
	if a.linkP(1, 2) != p12 {
		t.Fatal("linkP not stable")
	}
}

func TestDupDuplicatesEveryFrame(t *testing.T) {
	d := &Dup{P: 1}
	rng := rand.New(rand.NewSource(1))
	got := d.AppendDeliverSlot(testTxs(), rng, nil)
	if len(got) != 8 {
		t.Fatalf("Dup{P:1} delivered %d, want 8 (4 originals + 4 duplicates)", len(got))
	}
	if d.Duplicated() != 4 {
		t.Fatalf("Duplicated = %d, want 4", d.Duplicated())
	}
	if d.DroppedDeliveries() != 0 {
		t.Fatalf("Dup reported drops: %d", d.DroppedDeliveries())
	}
}

func TestProfileChannelStack(t *testing.T) {
	p, _ := Preset("mixed", 1)
	ch := p.NewChannel(nil)
	if _, ok := ch.(radio.DropCounter); !ok {
		t.Fatal("mixed profile channel does not count drops")
	}
	if _, ok := ch.(radio.BufferedChannel); !ok {
		t.Fatal("mixed profile channel is not buffered")
	}
	// No channel adversity: inner comes back unchanged.
	plain := &Profile{Name: "none"}
	if got := plain.NewChannel(radio.Perfect{}); got != (radio.Perfect{}) {
		t.Fatalf("empty channel config wrapped the inner channel: %T", got)
	}
}

func TestForgeLiePassesGoodList(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	neighbors := []ident.NodeID{7, 9, 12}
	m := forgeLie(rng, 3, neighbors, []ident.NodeID{3, 7, 9, 12, 15}, 3)
	if m.From != 3 {
		t.Fatalf("forged From = %v", m.From)
	}
	if m.List.Len() < 2 {
		t.Fatalf("forged list too short: %v", m.List)
	}
	if e, ok := m.List.At(0).Get(3); !ok || e.Mark != ident.MarkPlain {
		t.Fatalf("layer 0 does not hold the plain liar: %v", m.List)
	}
	for _, u := range neighbors {
		if !m.List.At(1).Has(u) {
			t.Fatalf("layer 1 misses genuine neighbor %v (good-list test would fail): %v", u, m.List)
		}
	}
}

func TestCorruptStateLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	members := []ident.NodeID{1, 2, 3, 4, 5}
	for i := 0; i < 50; i++ {
		list, view, quar, self := corruptState(rng, 2, members, 3)
		if self.ID != 2 {
			t.Fatalf("self priority for wrong node: %v", self)
		}
		if !view[2] {
			t.Fatal("corrupted view dropped the node itself")
		}
		n := core.NewNode(2, core.Config{Dmax: 3})
		n.LoadState(list, view, quar, self) // must not panic
		n.Compute()                         // nor must computing from it
	}
}

// chaosWorld builds a spatial engine plus an armed injector with world
// hooks — the integration harness the determinism tests run twice.
type chaosWorld struct {
	e   *engine.Engine
	inj *Injector
}

func newChaosWorld(workers int) *chaosWorld {
	const n = 40
	w := space.NewWorld(3)
	ids := make([]ident.NodeID, n)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	topo := engine.NewSpatialTopology(w, &mobility.Static{Side: 12}, 0.2, ids,
		rand.New(rand.NewSource(99)))
	prof, err := Preset("mixed", 1)
	if err != nil {
		panic(err)
	}
	prof.Seed = 17
	prof.Flap = FlapConfig{Rate: 0.05, DownRounds: 6, MaxStorm: 4}
	e := engine.New(engine.Params{
		Cfg:     core.Config{Dmax: 3},
		Ts:      1,
		Tc:      2,
		Channel: prof.NewChannel(nil),
		Seed:    7,
		Workers: workers,
	}, topo)
	positions := map[ident.NodeID]space.Point{}
	inj := NewInjector(prof, e, Hooks{
		Leave: func(v ident.NodeID) {
			if p, ok := w.Pos(v); ok {
				positions[v] = p
			}
			w.Remove(v)
		},
		Rejoin: func(v ident.NodeID) {
			w.Place(v, positions[v])
		},
	})
	return &chaosWorld{e: e, inj: inj}
}

// trace runs the chaos world and fingerprints each round: fault events,
// engine counters, and every node's view.
func (cw *chaosWorld) trace(rounds int) []string {
	out := make([]string, 0, rounds)
	for r := 1; r <= rounds; r++ {
		evs := cw.inj.Apply(r)
		cw.e.StepRound()
		s := fmt.Sprintf("r%d evs%v msgs%d bytes%d deliv%d", r, evs,
			cw.e.MessagesSent, cw.e.BytesSent, cw.e.Deliveries)
		for _, v := range cw.e.Order() {
			s += fmt.Sprintf("|%d:%v", v, cw.e.Nodes[v].View())
		}
		out = append(out, s)
	}
	return out
}

func TestInjectorDeterministicAcrossWorkers(t *testing.T) {
	seq := newChaosWorld(1).trace(120)
	par := newChaosWorld(4).trace(120)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("chaos trace diverged at round %d:\nseq: %s\npar: %s", i+1, seq[i], par[i])
		}
	}
	// The run must actually have injected something, or the test is vacuous.
	w := newChaosWorld(1)
	w.trace(120)
	if w.inj.FaultsInjected == 0 {
		t.Fatal("mixed profile injected no faults in 120 rounds")
	}
}

func TestInjectorFlapRemovesAndRejoins(t *testing.T) {
	cw := newChaosWorld(1)
	// Force a storm immediately: rate 1 fires on the first Apply.
	cw.inj.p.Crash.Rate = 0
	cw.inj.p.Byz.Rate = 0
	cw.inj.p.Flap = FlapConfig{Rate: 1, DownRounds: 3, MaxStorm: 4}
	before := len(cw.e.Order())
	evs := cw.inj.Apply(1)
	if len(evs) != 1 || evs[0].Kind != KindFlap {
		t.Fatalf("expected one flap event, got %v", evs)
	}
	if got := len(cw.e.Order()); got != before-evs[0].N {
		t.Fatalf("population after storm = %d, want %d", got, before-evs[0].N)
	}
	if !cw.inj.Active() {
		t.Fatal("injector not active while a neighborhood is down")
	}
	cw.inj.p.Flap.Rate = 0
	cw.inj.Apply(2)
	cw.inj.Apply(3)
	evs = cw.inj.Apply(4) // rejoinAt = 1+3
	var rejoined bool
	for _, ev := range evs {
		if ev.Kind == KindRejoin {
			rejoined = true
		}
	}
	if !rejoined {
		t.Fatalf("no rejoin at round 4: %v", evs)
	}
	if got := len(cw.e.Order()); got != before {
		t.Fatalf("population after rejoin = %d, want %d", got, before)
	}
}

func TestByzantineLieReachesReceivers(t *testing.T) {
	cw := newChaosWorld(1)
	cw.inj.p.Crash.Rate = 0
	cw.inj.p.Flap.Rate = 0
	cw.inj.p.Chan = ChanConfig{}
	cw.inj.p.Byz = ByzConfig{Rate: 1, Liars: 1, LieRounds: 5}
	// Settle first so receivers are in a converged state the lie disturbs.
	for r := 1; r <= 30; r++ {
		cw.e.StepRound()
	}
	evs := cw.inj.Apply(31)
	if len(evs) != 1 || evs[0].Kind != KindByz {
		t.Fatalf("expected a byz start, got %v", evs)
	}
	liar := evs[0].Node
	if !cw.e.Lying(liar) {
		t.Fatal("engine does not report the liar as lying")
	}
	cw.inj.p.Byz.Rate = 0 // one episode only, or a new liar starts on expiry
	cw.e.StepRound()
	// After the episode the lie must clear.
	for r := 32; r <= 40; r++ {
		cw.inj.Apply(r)
		cw.e.StepRound()
	}
	if cw.e.Lying(liar) {
		t.Fatal("lie still armed after its episode ended")
	}
	if cw.inj.Active() {
		t.Fatal("injector still active after the lie ended")
	}
}

func TestCrashNodeTargeted(t *testing.T) {
	cw := newChaosWorld(1)
	for r := 1; r <= 20; r++ {
		cw.e.StepRound()
	}
	v := cw.e.Order()[0]
	rng := rand.New(rand.NewSource(3))
	if !CrashNode(cw.e, v, rng, false) {
		t.Fatal("CrashNode refused a live member")
	}
	if got := cw.e.Nodes[v].View(); len(got) != 1 || got[0] != v {
		t.Fatalf("zeroed crash left view %v", got)
	}
	if CrashNode(cw.e, ident.NodeID(9999), rng, true) {
		t.Fatal("CrashNode accepted a non-member")
	}
}
