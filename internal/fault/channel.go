// Channel adversities: stateful radio.Channel wrappers that model the
// messy loss regimes the paper's fair-channel hypothesis abstracts away —
// time-correlated burst loss, per-link asymmetric loss, and frame
// duplication — layered over any inner channel (radio.Collision included).
//
// Determinism: channel arbitration is phase 3 of the engine's Step and
// runs sequentially on the coordinator, on the single global RNG stream,
// over the slot's transmissions in canonical order (see radio.Lossy's
// determinism note). Every wrapper here draws a fixed, content-determined
// number of variates per slot — one Gilbert–Elliott transition draw plus
// one draw per inner delivery — so a seed reproduces the same loss
// pattern bit for bit at any worker count. The wrappers are pointer
// types, unlike the stateless radio values: the burst chain state and the
// drop counters live across slots.
package fault

import (
	"math/rand"

	"repro/internal/ident"
	"repro/internal/radio"
)

// innerDeliver appends the inner channel's deliveries (Perfect when nil)
// to buf and returns the extended slice.
func innerDeliver(inner radio.Channel, txs []radio.Tx, rng *rand.Rand, buf []radio.Delivery) []radio.Delivery {
	if inner == nil {
		inner = radio.Perfect{}
	}
	if bc, ok := inner.(radio.BufferedChannel); ok {
		return bc.AppendDeliverSlot(txs, rng, buf)
	}
	return append(buf, inner.DeliverSlot(txs, rng)...)
}

// innerDrops reads the inner channel's drop counter when it has one.
func innerDrops(inner radio.Channel) uint64 {
	if dc, ok := inner.(radio.DropCounter); ok {
		return dc.DroppedDeliveries()
	}
	return 0
}

// gated routes each slot through the adversity stack while the
// injector's round clock is within the profile's Until horizon, and
// through the clean inner channel afterwards — so Until bounds the
// *entire* fault schedule, ambient channel adversity included, and the
// quiet tail a driver leaves after it is genuinely quiet. The off path
// draws no adversity variates; that is deterministic too, because the
// gate flips on the coordinator's round counter, identically at any
// worker count.
type gated struct {
	adverse radio.BufferedChannel
	plain   radio.Channel // the original inner (Perfect when nil)
	until   *int          // &Profile.Until (0 = never stand down)
	clock   *int          // current round, advanced by Injector.Apply
}

func (g *gated) active() bool { return *g.until == 0 || *g.clock <= *g.until }

// DeliverSlot implements radio.Channel.
func (g *gated) DeliverSlot(txs []radio.Tx, rng *rand.Rand) []radio.Delivery {
	return g.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements radio.BufferedChannel.
func (g *gated) AppendDeliverSlot(txs []radio.Tx, rng *rand.Rand, buf []radio.Delivery) []radio.Delivery {
	if g.active() {
		return g.adverse.AppendDeliverSlot(txs, rng, buf)
	}
	return innerDeliver(g.plain, txs, rng, buf)
}

// DroppedDeliveries implements radio.DropCounter (the adversity stack's
// count includes any counting inner channel's).
func (g *gated) DroppedDeliveries() uint64 { return innerDrops(g.adverse) }

// BurstLoss is a two-state Gilbert–Elliott loss channel: a hidden
// good/bad state advances one Markov step per slot, and each delivery is
// dropped with the state's loss probability — loss arrives in bursts
// (interference, a passing truck) instead of radio.Lossy's memoryless
// coin flips.
type BurstLoss struct {
	LossGood, LossBad  float64 // per-delivery drop probability in each state
	PGoodBad, PBadGood float64 // per-slot state transition probabilities
	Inner              radio.Channel

	bad   bool
	drops uint64
}

// DeliverSlot implements radio.Channel.
func (b *BurstLoss) DeliverSlot(txs []radio.Tx, rng *rand.Rand) []radio.Delivery {
	return b.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements radio.BufferedChannel. One transition draw
// per slot, then one drop draw per inner delivery, in order.
func (b *BurstLoss) AppendDeliverSlot(txs []radio.Tx, rng *rand.Rand, buf []radio.Delivery) []radio.Delivery {
	x := rng.Float64()
	if b.bad {
		if x < b.PBadGood {
			b.bad = false
		}
	} else if x < b.PGoodBad {
		b.bad = true
	}
	p := b.LossGood
	if b.bad {
		p = b.LossBad
	}
	start := len(buf)
	buf = innerDeliver(b.Inner, txs, rng, buf)
	kept := buf[:start]
	for _, d := range buf[start:] {
		if rng.Float64() >= p {
			kept = append(kept, d)
		} else {
			b.drops++
		}
	}
	return kept
}

// Bad reports the current chain state (for tests).
func (b *BurstLoss) Bad() bool { return b.bad }

// DroppedDeliveries implements radio.DropCounter.
func (b *BurstLoss) DroppedDeliveries() uint64 { return b.drops + innerDrops(b.Inner) }

// AsymLoss drops each delivery with a per-link probability derived by
// hashing (Seed, from, to): every directed link gets its own fixed loss
// rate in [0, MaxP], so the u→v direction of a link can be far worse than
// v→u — the asymmetric-link regime where one side of a handshake keeps
// failing. It draws one variate per delivery regardless of the link, so
// the RNG stream stays aligned with the content-independent channels.
type AsymLoss struct {
	MaxP  float64
	Seed  uint64
	Inner radio.Channel

	drops uint64
}

// linkP returns the directed link's fixed loss probability.
func (a *AsymLoss) linkP(from, to ident.NodeID) float64 {
	h := uint64(14695981039346656037)
	for _, x := range [...]uint64{a.Seed, uint64(from), uint64(to)} {
		h = (h ^ x) * 1099511628211
	}
	// 53 random bits → uniform in [0,1).
	return a.MaxP * float64(h>>11) / (1 << 53)
}

// DeliverSlot implements radio.Channel.
func (a *AsymLoss) DeliverSlot(txs []radio.Tx, rng *rand.Rand) []radio.Delivery {
	return a.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements radio.BufferedChannel.
func (a *AsymLoss) AppendDeliverSlot(txs []radio.Tx, rng *rand.Rand, buf []radio.Delivery) []radio.Delivery {
	start := len(buf)
	buf = innerDeliver(a.Inner, txs, rng, buf)
	kept := buf[:start]
	for _, d := range buf[start:] {
		if rng.Float64() >= a.linkP(d.From, d.To) {
			kept = append(kept, d)
		} else {
			a.drops++
		}
	}
	return kept
}

// DroppedDeliveries implements radio.DropCounter.
func (a *AsymLoss) DroppedDeliveries() uint64 { return a.drops + innerDrops(a.Inner) }

// Dup duplicates each delivery with probability P — the frame-duplication
// adversity (a retransmitting MAC, a reflection). Duplicates are appended
// after the slot's genuine deliveries, so the receiver hears the frame
// twice within one slot; the protocol's one-message channel semantics
// (last message per sender wins) must absorb it.
type Dup struct {
	P     float64
	Inner radio.Channel

	dups uint64
}

// DeliverSlot implements radio.Channel.
func (d *Dup) DeliverSlot(txs []radio.Tx, rng *rand.Rand) []radio.Delivery {
	return d.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements radio.BufferedChannel.
func (d *Dup) AppendDeliverSlot(txs []radio.Tx, rng *rand.Rand, buf []radio.Delivery) []radio.Delivery {
	start := len(buf)
	buf = innerDeliver(d.Inner, txs, rng, buf)
	// Expand in place: collect the duplicated indices first so the draw
	// order is one variate per inner delivery, then splice.
	n := len(buf)
	for i := start; i < n; i++ {
		if rng.Float64() < d.P {
			d.dups++
			buf = append(buf, buf[i])
		}
	}
	return buf
}

// Duplicated returns the cumulative number of injected duplicates.
func (d *Dup) Duplicated() uint64 { return d.dups }

// DroppedDeliveries implements radio.DropCounter (Dup itself never
// drops; it forwards the inner channel's count).
func (d *Dup) DroppedDeliveries() uint64 { return innerDrops(d.Inner) }
