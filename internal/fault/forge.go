// State and message forging: the generators behind crash-recover
// corruption and Byzantine lies. Both are pure functions of an injector
// RNG plus the engine's current (deterministically ordered) membership,
// so a seed reproduces every forged state and frame bit for bit.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/priority"
	"repro/internal/wire"
)

// FabricatedBase is the low end of the fabricated-ID range Byzantine and
// corrupted antlists cite: far above any ID a driver hands out (soak
// joins count up from the initial population), so a phantom member can
// never collide with a node that later actually joins.
const FabricatedBase ident.NodeID = 1 << 30

// fabricate returns a phantom node ID.
func fabricate(rng *rand.Rand) ident.NodeID {
	return FabricatedBase + ident.NodeID(rng.Intn(1<<16))
}

// randomEntry draws a list entry: a real member or a phantom, mostly
// plain, occasionally mid-handshake (single/double marks — a crashed node
// may have died mid-rejection).
func randomEntry(rng *rand.Rand, members []ident.NodeID) ident.Entry {
	var id ident.NodeID
	if len(members) > 0 && rng.Float64() < 0.7 {
		id = members[rng.Intn(len(members))]
	} else {
		id = fabricate(rng)
	}
	switch rng.Intn(10) {
	case 0:
		return ident.Single(id)
	case 1:
		return ident.Double(id)
	default:
		return ident.Plain(id)
	}
}

// corruptState draws an adversarial protocol state for v — the paper's
// "arbitrary initial state" premise made concrete: a bogus antlist (up to
// Dmax+2 layers, so over-long lists exercise the trim), phantom view
// members, random quarantine counters, and a stale or futuristic self
// priority. The caller loads it with core.Node.LoadState.
func corruptState(rng *rand.Rand, v ident.NodeID, members []ident.NodeID, dmax int) (antlist.List, map[ident.NodeID]bool, map[ident.NodeID]int, priority.P) {
	depth := 1 + rng.Intn(dmax+2)
	sets := make([]antlist.Set, 0, depth)
	sets = append(sets, antlist.NewSet(ident.Plain(v)))
	for i := 1; i < depth; i++ {
		s := antlist.NewSet()
		for k := 1 + rng.Intn(3); k > 0; k-- {
			s = s.Add(randomEntry(rng, members))
		}
		sets = append(sets, s)
	}
	list := antlist.FromSets(sets...)

	view := map[ident.NodeID]bool{v: true}
	quar := map[ident.NodeID]int{}
	for _, id := range list.IDs() {
		if id == v {
			continue
		}
		if rng.Float64() < 0.5 {
			view[id] = true
		}
		if rng.Float64() < 0.5 {
			quar[id] = rng.Intn(dmax + 1)
		}
	}

	// A clock far in the past (0) claims seniority it never earned; one
	// far in the future starves the node in every contest. Both are states
	// a recovering node must converge out of.
	clock := uint64(0)
	if rng.Float64() < 0.5 {
		clock = uint64(rng.Int63n(1 << 40))
	}
	return list, view, quar, priority.P{Clock: clock, ID: v}
}

// forgeLie assembles a falsified broadcast for liar v: layer 0 is v
// itself and layer 1 is v's genuine current neighborhood — so the frame
// passes every receiver's good-list test and is indistinguishable from
// honest traffic at the wire level — while the deeper layers cite phantom
// ancestors, the per-node priorities are fabricated, the advertised group
// priority claims a near-zero clock (it wins almost every merge contest),
// and phantom members arrive with a zero quarantine so receivers admit
// them almost immediately.
//
// The lie is round-tripped through the wire codec before use: whatever
// the engine injects is, by construction, exactly what a real radio frame
// could have carried (the satellite fuzz target pins that hostile frames
// cannot produce anything the decoder wouldn't).
func forgeLie(rng *rand.Rand, v ident.NodeID, neighbors, members []ident.NodeID, dmax int) *core.Message {
	sets := make([]antlist.Set, 0, dmax+1)
	sets = append(sets, antlist.NewSet(ident.Plain(v)))
	l1 := antlist.NewSet()
	for _, u := range neighbors {
		l1 = l1.Add(ident.Plain(u))
	}
	if len(l1) == 0 {
		// An isolated liar has no receivers; keep the frame well-formed
		// anyway (no empty layers — they would void the whole list).
		l1 = l1.Add(ident.Plain(fabricate(rng)))
	}
	sets = append(sets, l1)
	extra := 0
	if dmax > 0 {
		extra = rng.Intn(dmax)
	}
	for i := 2; i < 2+extra; i++ {
		s := antlist.NewSet()
		for k := 1 + rng.Intn(2); k > 0; k-- {
			s = s.Add(randomEntry(rng, members))
		}
		sets = append(sets, s)
	}
	list := antlist.FromSets(sets...)

	prios := make(map[ident.NodeID]priority.P)
	gprios := make(map[ident.NodeID]priority.P)
	quars := make(map[ident.NodeID]int)
	for _, id := range list.IDs() {
		prios[id] = priority.P{Clock: uint64(rng.Int63n(1 << 20)), ID: id}
		gprios[id] = priority.P{Clock: uint64(rng.Intn(3)), ID: v}
		if id >= FabricatedBase {
			quars[id] = 0
		}
	}

	m := core.Message{
		From:      v,
		List:      list,
		Recs:      core.RecsFromMaps(list, prios, gprios, quars),
		GroupPrio: priority.P{Clock: uint64(rng.Intn(3)), ID: v},
	}
	frame := wire.Encode(m)
	decoded, err := wire.Decode(frame)
	if err != nil {
		panic(fmt.Sprintf("fault: forged lie failed its own wire round-trip: %v", err))
	}
	return &decoded
}
