// Package fault is the deterministic fault-injection subsystem: a
// seeded, round-scheduled injector that composes adversities against a
// running engine — crash-recover (a node's protocol state reset to
// zeroed or adversarially corrupted contents), Byzantine liars (nodes
// broadcasting well-formed wire frames with falsified antlists for K
// rounds), channel adversities (burst loss, per-link asymmetric loss,
// frame duplication — see channel.go), and flapping membership storms
// (correlated leave/rejoin of a spatial neighborhood). It exists to
// attack the paper's headline property: from an arbitrary state the
// protocol reconverges to a legitimate configuration within a bounded
// number of rounds, which obs.Monitor turns into measured
// stabilization-time distributions.
//
// Determinism: every fault decision draws from one of three private RNG
// streams derived from Profile.Seed (crash, Byzantine, flap — splitmix64
// separation, mirroring the engine's shard streams), victims are picked
// from the engine's canonical roster order, and all injection happens on
// the coordinator at round boundaries through Injector.Apply — never
// mid-phase. Nothing here depends on the engine's Workers setting, so a
// chaos run is bit-identical at any worker count; the conformance suite
// pins this with the injector armed.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/antlist"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/priority"
	"repro/internal/radio"
)

// Kind labels one injected fault event.
type Kind uint8

const (
	// KindCrash is a crash-recover: the victim's protocol state was reset
	// to zeroed or corrupted contents.
	KindCrash Kind = iota
	// KindByz marks a node starting to broadcast falsified frames.
	KindByz
	// KindByzStop marks a liar reverting to honest broadcasts — the last
	// disturbance of its lie episode.
	KindByzStop
	// KindFlap is a membership storm: a spatial neighborhood left.
	KindFlap
	// KindRejoin is the correlated return of a flapped neighborhood.
	KindRejoin
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindByz:
		return "byz"
	case KindByzStop:
		return "byz-stop"
	case KindFlap:
		return "flap"
	case KindRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one injected fault, as reported to the convergence monitor.
type Event struct {
	Round int
	Kind  Kind
	Node  ident.NodeID // the victim (the epicenter, for storms)
	N     int          // nodes affected (storm size; 1 otherwise)
}

// CrashConfig schedules crash-recover faults.
type CrashConfig struct {
	// Rate is the expected number of crashes per round.
	Rate float64
	// CorruptP is the probability a crash recovers into an adversarially
	// corrupted state instead of a zeroed (fresh-boot) one.
	CorruptP float64
	// PoisonP is the probability a corrupted recovery also poisons the
	// victim's boundary memory against genuine neighbors.
	PoisonP float64
}

// ByzConfig schedules Byzantine lie episodes.
type ByzConfig struct {
	// Rate is the per-round probability of a new liar starting, while
	// fewer than Liars are active.
	Rate float64
	// Liars caps the number of simultaneously active liars.
	Liars int
	// LieRounds is each episode's length in rounds.
	LieRounds int
}

// FlapConfig schedules membership storms.
type FlapConfig struct {
	// Rate is the per-round probability of a storm.
	Rate float64
	// DownRounds is how long a flapped neighborhood stays gone before its
	// correlated rejoin.
	DownRounds int
	// MaxStorm caps a storm's size (0 = 8): in a dense world an epicenter
	// plus full neighborhood would take out half the population.
	MaxStorm int
}

// ChanConfig describes the channel adversity stack (see channel.go).
// Zero-valued layers are omitted.
type ChanConfig struct {
	// LossP is memoryless per-delivery loss (radio.Lossy).
	LossP float64
	// Burst*: the Gilbert–Elliott chain (BurstLoss). Enabled when
	// BurstPGoodBad > 0.
	BurstLossGood, BurstLossBad  float64
	BurstPGoodBad, BurstPBadGood float64
	// AsymMaxP enables per-link asymmetric loss with rates in [0, AsymMaxP].
	AsymMaxP float64
	// DupP duplicates frames with this probability.
	DupP float64
}

// Profile is one complete fault schedule.
type Profile struct {
	// Name labels the profile in episode records and CLI output.
	Name string
	// Seed derives the injector's private RNG streams. Independent of the
	// engine seed so the same fault schedule can replay against different
	// worlds.
	Seed int64
	// Until is the last round at which *new* faults start (0 = no limit).
	// The channel adversity stack also stands down once the injector's
	// round clock passes Until, so the tail is genuinely fault-free;
	// already-running lie episodes finish and scheduled rejoins still
	// fire, so the quiet tail a driver leaves after Until must cover
	// LieRounds/DownRounds plus the confirmation window.
	Until int

	Crash CrashConfig
	Byz   ByzConfig
	Flap  FlapConfig
	Chan  ChanConfig

	// clock is the shared round counter behind the channel gate: created
	// by NewChannel, advanced by Injector.Apply. Without an injector it
	// stays 0 and the adversity stack never stands down.
	clock *int
}

// faultSeed derives sub-stream s from the profile seed (splitmix64, like
// the engine's shard streams).
func faultSeed(seed int64, s int) int64 {
	z := uint64(seed) ^ 0xdf900294d8f554a5 + 0x9e3779b97f4a7c15*uint64(s+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewChannel stacks the profile's channel adversities over inner (Perfect
// when nil) and returns the resulting channel, or inner unchanged when
// the profile schedules no channel adversity. The returned channel
// implements radio.DropCounter whenever any lossy layer is present. When
// the profile has an Until horizon the stack is wrapped in a round-clock
// gate: an Injector armed on the same profile advances the clock, and
// slots past Until bypass the adversities entirely (see gated).
func (p *Profile) NewChannel(inner radio.Channel) radio.Channel {
	ch := inner
	if p.Chan.LossP > 0 {
		ch = radio.Lossy{P: p.Chan.LossP, Inner: ch, Drops: new(uint64)}
	}
	if p.Chan.AsymMaxP > 0 {
		ch = &AsymLoss{MaxP: p.Chan.AsymMaxP, Seed: uint64(p.Seed), Inner: ch}
	}
	if p.Chan.BurstPGoodBad > 0 {
		ch = &BurstLoss{
			LossGood: p.Chan.BurstLossGood, LossBad: p.Chan.BurstLossBad,
			PGoodBad: p.Chan.BurstPGoodBad, PBadGood: p.Chan.BurstPBadGood,
			Inner: ch,
		}
	}
	if p.Chan.DupP > 0 {
		ch = &Dup{P: p.Chan.DupP, Inner: ch}
	}
	if ch == inner {
		return ch
	}
	if p.clock == nil {
		p.clock = new(int)
	}
	return &gated{adverse: ch.(radio.BufferedChannel), plain: inner, until: &p.Until, clock: p.clock}
}

// Preset returns a named profile with rates scaled by intensity (1 = the
// baseline; probabilities are clamped to 0.95). Names: "crash",
// "byzantine", "flap", "burst", "mixed" (crash + one Byzantine liar +
// burst loss — the acceptance chaos profile).
func Preset(name string, intensity float64) (*Profile, error) {
	if intensity <= 0 {
		intensity = 1
	}
	prob := func(p float64) float64 { return min(p*intensity, 0.95) }
	p := &Profile{Name: name}
	crash := func() { p.Crash = CrashConfig{Rate: 0.02 * intensity, CorruptP: 0.5, PoisonP: 0.5} }
	byz := func() { p.Byz = ByzConfig{Rate: prob(0.02), Liars: 1, LieRounds: 30} }
	flap := func() { p.Flap = FlapConfig{Rate: prob(0.005), DownRounds: 20} }
	burst := func() {
		p.Chan = ChanConfig{
			BurstLossGood: 0.01, BurstLossBad: prob(0.6),
			BurstPGoodBad: prob(0.05), BurstPBadGood: 0.25,
		}
	}
	switch name {
	case "crash":
		crash()
	case "byzantine":
		byz()
	case "flap":
		flap()
	case "burst":
		burst()
	case "mixed":
		crash()
		byz()
		burst()
	default:
		return nil, fmt.Errorf("fault: unknown profile %q (crash|byzantine|flap|burst|mixed)", name)
	}
	return p, nil
}

// Hooks are the topology-side callbacks a storm needs: the injector owns
// the engine membership calls, the driver owns its world (remember the
// position on Leave, re-place on Rejoin — engine.AddNode requires the
// node to already exist in the topology).
type Hooks struct {
	Leave  func(v ident.NodeID)
	Rejoin func(v ident.NodeID)
}

// flapGroup is one downed neighborhood awaiting its correlated rejoin.
type flapGroup struct {
	epicenter ident.NodeID
	victims   []ident.NodeID
	rejoinAt  int
}

// liar is one active Byzantine episode.
type liar struct {
	id    ident.NodeID
	until int // first round it broadcasts honestly again
}

// Injector schedules a Profile against an engine. All methods must be
// called on the coordinator between engine Steps (phase alignment — see
// the package comment); Apply once per round, before StepRound.
type Injector struct {
	p     *Profile
	e     *engine.Engine
	hooks Hooks

	crashRNG, byzRNG, flapRNG *rand.Rand

	liars  []liar      // ascending start order
	down   []flapGroup // FIFO by rejoin round
	events []Event     // scratch, reused across Apply calls

	// FaultsInjected counts events; NodesAffected sums their N.
	FaultsInjected int
	NodesAffected  int
}

// NewInjector arms profile p against e. Hook funcs may be nil when the
// profile schedules no flap storms.
func NewInjector(p *Profile, e *engine.Engine, hooks Hooks) *Injector {
	return &Injector{
		p:        p,
		e:        e,
		hooks:    hooks,
		crashRNG: rand.New(rand.NewSource(faultSeed(p.Seed, 0))),
		byzRNG:   rand.New(rand.NewSource(faultSeed(p.Seed, 1))),
		flapRNG:  rand.New(rand.NewSource(faultSeed(p.Seed, 2))),
	}
}

// Active reports whether any adversity is still in flight — a liar armed
// or a neighborhood down. The convergence monitor refuses to start its
// confirmation window while the injector is active: a steady lie can hold
// the world in a plausible-but-wrong configuration that must not count
// as stabilized.
func (in *Injector) Active() bool { return len(in.liars) > 0 || len(in.down) > 0 }

// countFromRate turns a per-round rate into a count: the integer part
// plus one more with the fractional probability.
func countFromRate(rng *rand.Rand, rate float64) int {
	k := int(rate)
	if rng.Float64() < rate-float64(k) {
		k++
	}
	return k
}

// pick draws a uniform victim from the engine's canonical order, or
// ident.None when the world is empty.
func pick(rng *rand.Rand, members []ident.NodeID) ident.NodeID {
	if len(members) == 0 {
		return ident.None
	}
	return members[rng.Intn(len(members))]
}

// Apply runs round r's schedule: due rejoins, lie expiries and
// refreshes, then — while r is within the profile's Until horizon — new
// crashes, lie starts and storms. It returns the round's fault events;
// the slice is reused by the next call.
func (in *Injector) Apply(r int) []Event {
	in.events = in.events[:0]
	if in.p.clock != nil {
		*in.p.clock = r
	}

	// 1. Correlated rejoins due this round.
	keptDown := in.down[:0]
	for _, g := range in.down {
		if g.rejoinAt > r {
			keptDown = append(keptDown, g)
			continue
		}
		for _, v := range g.victims {
			if in.hooks.Rejoin != nil {
				in.hooks.Rejoin(v)
			}
			in.e.AddNode(v)
		}
		in.emit(Event{Round: r, Kind: KindRejoin, Node: g.epicenter, N: len(g.victims)})
	}
	in.down = keptDown

	// 2. Lie expiries, then a fresh forgery for every surviving liar: a
	// static lie would be elided by receivers' inbox signatures after the
	// first delivery; a real adversary varies its story.
	keptLiars := in.liars[:0]
	for _, l := range in.liars {
		if in.e.SlotOf(l.id) < 0 {
			continue // flapped or churned away mid-lie
		}
		if l.until <= r {
			in.e.ClearLie(l.id)
			in.emit(Event{Round: r, Kind: KindByzStop, Node: l.id, N: 1})
			continue
		}
		in.setLie(l.id)
		keptLiars = append(keptLiars, l)
	}
	in.liars = keptLiars

	if in.p.Until > 0 && r > in.p.Until {
		return in.events
	}

	// 3. Crash-recover.
	for k := countFromRate(in.crashRNG, in.Crash().Rate); k > 0; k-- {
		in.crash(r)
	}

	// 4. New Byzantine episode.
	b := in.Byz()
	if b.Liars > 0 && b.LieRounds > 0 && len(in.liars) < b.Liars && in.byzRNG.Float64() < b.Rate {
		if v := pick(in.byzRNG, in.e.Order()); v != ident.None && !in.lying(v) {
			in.liars = append(in.liars, liar{id: v, until: r + b.LieRounds})
			in.setLie(v)
			in.emit(Event{Round: r, Kind: KindByz, Node: v, N: 1})
		}
	}

	// 5. Membership storm.
	f := in.Flap()
	if f.Rate > 0 && in.flapRNG.Float64() < f.Rate {
		in.storm(r)
	}

	return in.events
}

// Crash, Byz and Flap expose the armed profile's sections.
func (in *Injector) Crash() CrashConfig { return in.p.Crash }
func (in *Injector) Byz() ByzConfig     { return in.p.Byz }
func (in *Injector) Flap() FlapConfig   { return in.p.Flap }

func (in *Injector) emit(ev Event) {
	in.events = append(in.events, ev)
	in.FaultsInjected++
	in.NodesAffected += ev.N
	reg := in.e.Introspect()
	reg.Inc(introspect.CtrFaultsInjected)
	reg.Add(introspect.CtrFaultNodesAffected, uint64(ev.N))
}

func (in *Injector) lying(v ident.NodeID) bool {
	for _, l := range in.liars {
		if l.id == v {
			return true
		}
	}
	return false
}

// setLie forges and installs a fresh falsified broadcast for v.
func (in *Injector) setLie(v ident.NodeID) {
	g := in.e.Topo.Graph()
	m := forgeLie(in.byzRNG, v, g.NeighborsView(v), in.e.Order(), in.e.P.Cfg.Dmax)
	in.e.SetLie(v, m)
}

// crash resets one victim's protocol state: zeroed (a clean reboot) or
// adversarially corrupted, per CrashConfig.CorruptP.
func (in *Injector) crash(r int) {
	rng := in.crashRNG
	v := pick(rng, in.e.Order())
	if v == ident.None {
		return
	}
	n := in.e.Nodes[v]
	if rng.Float64() >= in.Crash().CorruptP {
		n.LoadState(antlist.Singleton(ident.Plain(v)), nil, nil, priority.New(v))
	} else {
		list, view, quar, self := corruptState(rng, v, in.e.Order(), in.e.P.Cfg.Dmax)
		n.LoadState(list, view, quar, self)
		if rng.Float64() < in.Crash().PoisonP {
			// Poison the boundary memory against genuine neighbors: the
			// recovered node auto-rejects real peers until the holds expire.
			nbrs := in.e.Topo.Graph().NeighborsView(v)
			for k := 1 + rng.Intn(2); k > 0 && len(nbrs) > 0; k-- {
				u := nbrs[rng.Intn(len(nbrs))]
				n.PoisonBoundary(u, uint64(1+rng.Intn(3*in.e.P.Cfg.Dmax+1)))
			}
		}
	}
	in.emit(Event{Round: r, Kind: KindCrash, Node: v, N: 1})
}

// storm removes an epicenter and (a capped slice of) its current
// neighborhood in one round and schedules their correlated rejoin.
func (in *Injector) storm(r int) {
	f := in.Flap()
	epi := pick(in.flapRNG, in.e.Order())
	if epi == ident.None {
		return
	}
	limit := f.MaxStorm
	if limit <= 0 {
		limit = 8
	}
	nbrs := in.e.Topo.Graph().NeighborsView(epi)
	victims := make([]ident.NodeID, 0, limit)
	victims = append(victims, epi)
	for _, u := range nbrs {
		if len(victims) >= limit {
			break
		}
		victims = append(victims, u)
	}
	for _, v := range victims {
		if in.hooks.Leave != nil {
			in.hooks.Leave(v)
		}
		in.e.RemoveNode(v)
	}
	down := f.DownRounds
	if down <= 0 {
		down = 10
	}
	in.down = append(in.down, flapGroup{epicenter: epi, victims: victims, rejoinAt: r + down})
	in.emit(Event{Round: r, Kind: KindFlap, Node: epi, N: len(victims)})
}

// CrashNode injects a single targeted crash-recover fault against v —
// the standalone entry point for tests and experiments that do not want
// a full scheduled profile. It reports whether v is a live member.
func CrashNode(e *engine.Engine, v ident.NodeID, rng *rand.Rand, corrupt bool) bool {
	n, ok := e.Nodes[v]
	if !ok {
		return false
	}
	if !corrupt {
		n.LoadState(antlist.Singleton(ident.Plain(v)), nil, nil, priority.New(v))
		return true
	}
	list, view, quar, self := corruptState(rng, v, e.Order(), e.P.Cfg.Dmax)
	n.LoadState(list, view, quar, self)
	return true
}
