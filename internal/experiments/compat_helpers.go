package experiments

import (
	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/priority"
)

func plain(id ident.NodeID) ident.Entry { return ident.Plain(id) }

func prio(id ident.NodeID) priority.P { return priority.New(id) }

// pathList builds the ancestor list of the head of a path group: owner at
// position 0, then one node per depth (IDs base+1, base+2, ...).
func pathList(owner ident.NodeID, depth int, base uint32) antlist.List {
	sets := []antlist.Set{antlist.NewSet(plain(owner))}
	for k := 1; k <= depth; k++ {
		sets = append(sets, antlist.NewSet(plain(ident.NodeID(base+uint32(k)))))
	}
	return antlist.FromSets(sets...)
}

// pathListAndView builds a path group's list plus the matching full view.
func pathListAndView(owner ident.NodeID, depth int, base uint32) (antlist.List, map[ident.NodeID]bool) {
	l := pathList(owner, depth, base)
	view := make(map[ident.NodeID]bool, depth+1)
	for _, u := range l.IDs() {
		view[u] = true
	}
	return l, view
}

// decideCompat evaluates the receiver's full admission decision for the
// sender's list: the compatibility test must accept the sender's whole
// foreign depth, and the subsequent fold must not trigger the too-far
// contest at the receiver itself (content at position Dmax+1 is contested
// and truncated, so it never joins the group even when the test, which
// only protects content *behind* the receiver, waves it through).
func decideCompat(n *core.Node, lu antlist.List) bool {
	q := 0
	for i := 0; i < lu.Len(); i++ {
		for _, e := range lu.At(i) {
			if !e.Mark.Marked() && e.ID != n.ID() && !n.InView(e.ID) {
				q = i
				break
			}
		}
	}
	qsafe, ok := n.Compatible(lu)
	return ok && qsafe >= q && 1+q <= n.Config().Dmax
}
