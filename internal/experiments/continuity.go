package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E5Compatibility regenerates the Prop. 13 table: the compatibility
// decision versus the ground-truth merged diameter on an exhaustive
// family of two-group gadgets. False accepts break safety and must be
// zero; false rejects measure the test's conservatism (they delay merges
// but never break a predicate).
func E5Compatibility() *trace.Table {
	tb := trace.NewTable("E5 — compatibleList vs ground truth (Prop. 13)",
		"Dmax", "cases", "exact", "false_accept", "false_reject")
	for _, dmax := range []int{2, 3, 4, 5} {
		cases, exact, fa, fr := 0, 0, 0, 0
		// Two path groups A (p+1 nodes ending at the border node v) and
		// B (q+1 nodes starting at the sender u), joined by edge (v,u),
		// plus optionally a shortcut edge from A's node at depth i to u.
		for p := 0; p <= dmax; p++ {
			for q := 0; q <= dmax; q++ {
				for i := 0; i <= p; i++ {
					g, vID, uID, decision := compatGadget(p, q, i, dmax)
					cases++
					merged := g.NodeSet()
					truth := g.InducedDiameter(merged) <= dmax
					switch {
					case decision == truth:
						exact++
					case decision && !truth:
						fa++
					default:
						fr++
					}
					_ = vID
					_ = uID
				}
			}
		}
		tb.AddRow(dmax, cases, exact, fa, fr)
	}
	return tb
}

// compatGadget builds the two-path gadget and evaluates the receiver's
// compatibility decision exactly as Compute would at first contact.
func compatGadget(p, q, i, dmax int) (*graph.G, ident.NodeID, ident.NodeID, bool) {
	g := graph.New()
	// A: nodes 1..p+1, where node 1 is the border v; node k+1 is at
	// depth k from v.
	v := ident.NodeID(1)
	g.AddNode(v)
	for k := 1; k <= p; k++ {
		g.AddEdge(ident.NodeID(k), ident.NodeID(k+1))
	}
	// B: nodes 101..101+q, node 101 is the sender u.
	u := ident.NodeID(101)
	g.AddNode(u)
	for l := 1; l <= q; l++ {
		g.AddEdge(ident.NodeID(100+l), ident.NodeID(101+l))
	}
	g.AddEdge(v, u)
	// Shortcut: u neighbors every node of A's depth-i layer (one node on
	// a path).
	if i > 0 {
		g.AddEdge(ident.NodeID(i+1), u)
	}
	// Build the receiver node's protocol state: list and view = A.
	node := core.NewNode(v, core.Config{Dmax: dmax})
	al, view := pathListAndView(v, p, 1)
	node.LoadState(al, view, nil, prio(v))
	// The sender's list: B as seen from u, with the receiver plain at
	// position 1 (handshake done) and the shortcut witness visible in
	// u's layer 1.
	uref := pathList(u, q, 101).Ref()
	l1 := uref.At(1)
	l1 = l1.Add(plain(v))
	if i > 0 {
		l1 = l1.Add(plain(ident.NodeID(i + 1)))
	}
	if len(uref) < 2 {
		uref = append(uref, l1)
	} else {
		uref[1] = l1
	}
	return g, v, u, decideCompat(node, uref.List())
}

// E6Continuity regenerates the Prop. 14 table: the best-effort contract
// ΠT ⇒ ΠC under controlled topology change, measured after group
// formation (the contract is about formed groups; membership churn during
// the formation negotiation itself is reported separately in the
// bootstrap column). The drift-then-cut and straggler scenarios break ΠT
// mid-run: every resulting violation must be excused.
func E6Continuity(seeds int) *trace.Table {
	tb := trace.NewTable("E6 — best effort ΠT ⇒ ΠC (Prop. 14)",
		"scenario", "bootstrap_viol", "ΠT_breaks", "ΠC_violations", "excused", "unexcused")
	const warmup = 40
	type scenario struct {
		name string
		run  func(seed int64) (*metrics.Tracker, *metrics.Tracker)
	}
	steady := func(s *engine.Engine, mutate func(int), rounds int) (*metrics.Tracker, *metrics.Tracker) {
		boot := observeRounds(s, nil, warmup, 4)
		tr := observeRounds(s, mutate, rounds, 4)
		return boot, tr
	}
	scenarios := []scenario{
		{"static-line", func(seed int64) (*metrics.Tracker, *metrics.Tracker) {
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: seed}, graph.Line(6))
			return steady(s, nil, 60)
		}},
		{"drift-then-cut", func(seed int64) (*metrics.Tracker, *metrics.Tracker) {
			d := &workload.GentleDrift{N: 6, Dmax: 4, PreserveRounds: 30}
			g := d.Graph()
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: seed}, g)
			return steady(s, func(round int) { d.Apply(g, round) }, 80)
		}},
		{"rigid-convoy", func(seed int64) (*metrics.Tracker, *metrics.Tracker) {
			w := space.NewWorld(4)
			topo := engine.NewSpatialTopology(w, &mobility.Convoy{Spacing: 3, Speed: 5}, 0.1, idRange(5), nil)
			s := engine.New(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: seed}, topo)
			return steady(s, nil, 60)
		}},
		{"straggler-convoy", func(seed int64) (*metrics.Tracker, *metrics.Tracker) {
			w := space.NewWorld(4)
			topo := engine.NewSpatialTopology(w, &mobility.Convoy{
				Spacing: 3, Speed: 5, StragglerEvery: 10, StragglerSlowdown: 2,
			}, 0.1, idRange(5), nil)
			s := engine.New(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: seed}, topo)
			return steady(s, nil, 80)
		}},
	}
	for _, sc := range scenarios {
		var bootViol, breaks, viol, excused, unexcused int
		for seed := int64(1); seed <= int64(seeds); seed++ {
			boot, tr := sc.run(seed)
			bootViol += boot.ContinuityViolations
			breaks += tr.TopologyBreaks
			viol += tr.ContinuityViolations
			excused += tr.ExcusedViolations
			unexcused += tr.UnexcusedViolations
		}
		tb.AddRow(sc.name, bootViol, breaks, viol, excused, unexcused)
	}
	return tb
}

// observeRounds steps the sim round by round, applying the optional
// topology mutation and feeding the tracker.
func observeRounds(s *engine.Engine, mutate func(round int), rounds, dmax int) *metrics.Tracker {
	tr := metrics.NewTracker()
	tr.Observe(s.Snapshot(), dmax)
	for r := 0; r < rounds; r++ {
		if mutate != nil {
			mutate(r)
		}
		s.StepRound()
		tr.Observe(s.Snapshot(), dmax)
	}
	return tr
}

// E9Loss regenerates the robustness table: raw and unexcused continuity
// violations and convergence under i.i.d. message loss, for two Tc/Ts
// ratios (the fair-channel margin).
func E9Loss(seeds int) *trace.Table {
	tb := trace.NewTable("E9 — message loss sensitivity (line n=8, Dmax=3)",
		"loss", "Tc/Ts", "converged", "ΠC_violations/run", "unexcused/run")
	for _, loss := range []float64{0, 0.1, 0.2, 0.4} {
		for _, ratio := range []int{2, 4} {
			conv := 0
			viol, unexc := 0, 0
			for seed := int64(1); seed <= int64(seeds); seed++ {
				s := engine.NewStatic(engine.Params{
					Cfg: core.Config{Dmax: 3}, Seed: seed,
					Ts: 1, Tc: ratio,
					Channel: radio.Lossy{P: loss},
				}, graph.Line(8))
				if _, ok := s.RunUntilConverged(400, 3); ok {
					conv++
				}
				tr := observeRounds(s, nil, 60, 3)
				viol += tr.ContinuityViolations
				unexc += tr.UnexcusedViolations
			}
			tb.AddRow(loss, ratio, fmt.Sprintf("%d/%d", conv, seeds),
				float64(viol)/float64(seeds), float64(unexc)/float64(seeds))
		}
	}
	return tb
}

func idRange(n int) []ident.NodeID {
	out := make([]ident.NodeID, n)
	for i := range out {
		out[i] = ident.NodeID(i + 1)
	}
	return out
}
