package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/trace"
)

// E14Stabilizers regenerates the stabilizer ablation (DESIGN.md §3, item
// 8): the reproduction adds boundary-hold memory and debounced cuts to
// the paper's mechanisms; this table shows convergence with each of them
// disabled, across the sparse regime.
func E14Stabilizers(seeds int) *trace.Table {
	tb := trace.NewTable("E14 — convergence stabilizer ablation (sparse regime)",
		"variant", "converged", "mean_rounds")
	variants := []struct {
		name string
		cfg  func(dmax int) core.Config
	}{
		{"full", func(d int) core.Config { return core.Config{Dmax: d} }},
		{"no-boundary-hold", func(d int) core.Config { return core.Config{Dmax: d, BoundaryHold: -1} }},
		{"no-debounce", func(d int) core.Config { return core.Config{Dmax: d, RejectDebounce: -1} }},
		{"neither", func(d int) core.Config {
			return core.Config{Dmax: d, BoundaryHold: -1, RejectDebounce: -1}
		}},
	}
	for _, v := range variants {
		conv, total, roundsSum := 0, 0, 0
		for _, tc := range sparseCases() {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				s := engine.NewStatic(engine.Params{Cfg: v.cfg(tc.dmax), Seed: seed}, tc.g())
				total++
				if r, ok := s.RunUntilConverged(800, 3); ok {
					conv++
					roundsSum += r
				}
			}
		}
		tb.AddRow(v.name, fmt.Sprintf("%d/%d", conv, total),
			float64(roundsSum)/float64(max(conv, 1)))
	}
	return tb
}

// E15Collision regenerates the interference study on the paper's
// 802.11-like channel (§2: a node receives nothing while it or a second
// in-range sender transmits). With synchronized send timers every
// broadcast collides and the protocol starves; CSMA-style randomized
// backoff (re-drawn per transmission) with a generous compute period
// restores the fair-channel hypothesis τ1/τ2.
func E15Collision(seeds int) *trace.Table {
	tb := trace.NewTable("E15 — collision channel vs timer dispersion (line n=6, Dmax=3)",
		"Ts", "Tc", "backoff", "converged", "mean_rounds")
	cases := []struct {
		ts, tc     int
		randomized bool
	}{
		{1, 2, false}, // all nodes send every tick: every slot collides
		{2, 8, true},  // randomized backoff in a 2-tick window
		{4, 16, true}, // 4-tick backoff window
		{8, 32, true}, // 8-tick window: mostly collision-free
	}
	for _, c := range cases {
		conv, roundsSum := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			s := engine.NewStatic(engine.Params{
				Cfg: core.Config{Dmax: 3}, Seed: seed,
				Ts: c.ts, Tc: c.tc, Jitter: true, RandomizedSends: c.randomized,
				Channel: radio.Collision{},
			}, graph.Line(6))
			if r, ok := s.RunUntilConverged(600, 3); ok {
				conv++
				roundsSum += r
			}
		}
		tb.AddRow(c.ts, c.tc, c.randomized, fmt.Sprintf("%d/%d", conv, seeds),
			float64(roundsSum)/float64(max(conv, 1)))
	}
	return tb
}
