package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// two seeds keep the unit tests quick; the benches and cmd/grpexp use
// the full Seeds count.
const testSeeds = 2

func TestE1StabilizationRecoversEverywhere(t *testing.T) {
	tb := E1Stabilization(testSeeds)
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] != "2/2" {
			t.Errorf("%s/%s did not recover on all seeds: %v", row[0], row[1], row)
		}
	}
}

func TestE2AgreementConvergesInSparseRegime(t *testing.T) {
	tb := E2Agreement(testSeeds)
	for _, row := range tb.Rows {
		if row[3] != "2/2" {
			t.Errorf("%s: converged %s", row[0], row[3])
		}
		if row[6] != "true" {
			t.Errorf("%s: safety violated", row[0])
		}
	}
}

func TestE4MergeGadgets(t *testing.T) {
	tb := E4MergeGadgets(testSeeds)
	for _, row := range tb.Rows {
		if row[1] != "2/2" {
			t.Errorf("%s: converged %s", row[0], row[1])
		}
	}
}

func TestE5NoFalseAccepts(t *testing.T) {
	tb := E5Compatibility()
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("Dmax=%s: %s false accepts (safety!)", row[0], row[3])
		}
		// The test is allowed to be conservative but must not be vacuous.
		exact, _ := strconv.Atoi(row[2])
		cases, _ := strconv.Atoi(row[1])
		if exact*2 < cases {
			t.Errorf("Dmax=%s: only %d/%d exact decisions", row[0], exact, cases)
		}
	}
}

func TestE6NoUnexcusedViolations(t *testing.T) {
	tb := E6Continuity(testSeeds)
	for _, row := range tb.Rows {
		if row[5] != "0" {
			t.Errorf("%s: %s unexcused continuity violations (Prop. 14!)", row[0], row[5])
		}
	}
	// The static scenario must have zero raw violations in steady state.
	if tb.Rows[0][3] != "0" {
		t.Errorf("static scenario had steady-state violations: %v", tb.Rows[0])
	}
	// The cut scenarios must actually exercise ΠT breaks.
	if tb.Rows[1][2] == "0" {
		t.Errorf("drift-then-cut never broke ΠT: %v", tb.Rows[1])
	}
}

func TestE9LosslessBaseline(t *testing.T) {
	tb := E9Loss(testSeeds)
	// The loss=0 rows must converge on all seeds with no unexcused churn.
	for _, row := range tb.Rows[:2] {
		if row[2] != "2/2" || row[4] != "0" {
			t.Errorf("lossless baseline wrong: %v", row)
		}
	}
}

func TestE8LifetimeShape(t *testing.T) {
	tb := E8Lifetime(1)
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The deployment trade-off must be visible: GRP keeps safety fresh on
	// a clear majority of rounds, while the epoch-based re-clusterer
	// (the deployable baseline) falls well below it.
	safety := map[string]float64{}
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[4], 64)
		safety[row[1]] += v
	}
	if safety["GRP"] <= safety["MaxMin-epoch10"] {
		t.Errorf("GRP safety freshness (%v) not better than epoch-based (%v)",
			safety["GRP"]/4, safety["MaxMin-epoch10"]/4)
	}
	if safety["GRP"]/4 < 70 {
		t.Errorf("GRP safety freshness too low: %v%%", safety["GRP"]/4)
	}
}

func TestE14FullStabilizersConvergeBest(t *testing.T) {
	tb := E14Stabilizers(testSeeds)
	if tb.Rows[0][0] != "full" {
		t.Fatalf("unexpected row order: %v", tb.Rows)
	}
	fullConv := tb.Rows[0][1]
	if fullConv != "12/12" {
		t.Errorf("full stabilizers must converge everywhere: %v", fullConv)
	}
}

func TestE15BackoffRestoresFairChannel(t *testing.T) {
	tb := E15Collision(testSeeds)
	if tb.Rows[0][3] != "0/2" {
		t.Errorf("synchronized sends on the collision channel must starve: %v", tb.Rows[0])
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[3] != "2/2" {
		t.Errorf("wide randomized backoff must converge: %v", last)
	}
}

func TestE8bBothAlgosMeasured(t *testing.T) {
	tb := E8bHeadLoss(1)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "6" {
			t.Errorf("%s: departures = %s, want 6", row[0], row[1])
		}
	}
}

func TestE11OverheadPositive(t *testing.T) {
	tb := E11Overhead()
	for _, row := range tb.Rows {
		bpm, _ := strconv.ParseFloat(row[5], 64)
		if bpm <= 16 {
			t.Errorf("%s: bytes/msg = %v implausibly small", row[0], bpm)
		}
	}
}

func TestE12QuarantineEnablesAgreement(t *testing.T) {
	tb := E12Quarantine(3)
	var on, off string
	var onUnexc string
	for _, row := range tb.Rows {
		if strings.HasSuffix(row[0], "-on") {
			on, onUnexc = row[1], row[3]
		} else {
			off = row[1]
		}
	}
	if on != "3/3" {
		t.Errorf("quarantine-on must converge on the double join: %v", on)
	}
	if onUnexc != "0" {
		t.Errorf("quarantine-on must have no unexcused violations: %v", onUnexc)
	}
	if off == "3/3" {
		t.Errorf("quarantine-off unexpectedly converged everywhere; ablation not discriminating")
	}
}

func TestE13DensityTrend(t *testing.T) {
	tb := E13Density(testSeeds)
	if len(tb.Rows) < 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("range %s: safety violated", row[0])
		}
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tables := All(1)
	if len(tables) != 19 {
		t.Fatalf("tables = %d, want 19", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("table %q is empty", tb.Title)
		}
	}
}

func TestE7cSpatialScaleShape(t *testing.T) {
	tb := E7cSpatialScale(1, 1000, 2000)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		safePct, _ := strconv.ParseFloat(row[4], 64)
		if safePct < 80 {
			t.Errorf("n=%s: only %v%% of groups ΠS-safe over the sampled tail", row[0], safePct)
		}
		deg, _ := strconv.ParseFloat(row[1], 64)
		if deg < 1 || deg > 8 {
			t.Errorf("n=%s: mean degree %v outside the constant-density band", row[0], deg)
		}
		grouped, _ := strconv.ParseFloat(row[3], 64)
		if grouped <= 5 {
			t.Errorf("n=%s: only %v%% of nodes grouped after the horizon", row[0], grouped)
		}
	}
}

func TestE13bDenseMetastabilityAtScale(t *testing.T) {
	tb := E13bDense(testSeeds)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("range %s: safety violated", row[0])
		}
	}
	// The sweep must actually reach the dense regime, and the E13
	// metastability trend must reproduce at 10× the population: denser
	// worlds fragment into more groups, never fewer nodes-per-group
	// violating safety.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	deg, _ := strconv.ParseFloat(last[1], 64)
	if deg < 15 {
		t.Errorf("densest sweep point only reaches mean degree %v", deg)
	}
	g0, _ := strconv.ParseFloat(first[4], 64)
	g1, _ := strconv.ParseFloat(last[4], 64)
	if g1 <= g0 {
		t.Errorf("fragmentation did not grow with density: %v → %v groups", g0, g1)
	}
}

func TestE7cDeltaScaleShape(t *testing.T) {
	tb := E7cDeltaScale(1, 2000)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	deg, _ := strconv.ParseFloat(row[1], 64)
	if deg < 1 || deg > 8 {
		t.Errorf("mean degree %v outside the constant-density band", deg)
	}
	tpsDelta, _ := strconv.ParseFloat(row[4], 64)
	tpsFull, _ := strconv.ParseFloat(row[5], 64)
	if tpsDelta <= 0 || tpsFull <= 0 {
		t.Fatalf("throughput columns missing: %v", row)
	}
}

func TestE16EveryEpisodeStabilizes(t *testing.T) {
	tb := E16Chaos(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every intensity must re-stabilize: the Until gate stands the
	// channel adversity down for the tail, so an open episode there is a
	// protocol failure, not a fair-channel violation.
	for _, row := range tb.Rows {
		if row[2] == "0" {
			t.Errorf("intensity %v injected faults but closed no episodes: %v", row[0], row)
		}
		if row[3] != "0" {
			t.Errorf("intensity %v left episodes open — the world never re-stabilized: %v", row[0], row)
		}
	}
}
