package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
)

// E16Chaos regenerates the fault-tolerance study the paper argues but
// never measures: self-stabilization as a recovery-latency distribution.
// A static world (mobility frozen, so every disturbance is
// fault-driven) runs under the mixed chaos profile — crash-recover with
// corrupted reloads, Byzantine liars, Gilbert–Elliott burst loss — at
// increasing intensity; the convergence monitor times each episode from
// its last fault to durable re-quiescence. Injection — channel
// adversity included — stands down at three-fifths of the run
// (Profile.Until) so the last episode has room to close under the fair
// channel the paper's claim assumes: a bounded max and zero open
// episodes at every intensity is the self-stabilization property, made
// quantitative.
func E16Chaos(seeds int) *trace.Table {
	tb := trace.NewTable("E16 — stabilization time vs fault intensity (mixed chaos, static n=150)",
		"intensity", "faults", "episodes", "open", "mean_stab", "max_stab", "p_unexcused")
	const rounds = 1500
	for _, intensity := range []float64{0.5, 1, 2, 4} {
		var faults, episodes, open, maxStab, stabSum, unex int
		for seed := int64(1); seed <= int64(seeds); seed++ {
			prof, err := fault.Preset("mixed", intensity)
			if err != nil {
				panic(err)
			}
			prof.Seed = seed * 7717
			prof.Until = rounds * 3 / 5
			res, err := obs.RunSoak(obs.SoakConfig{
				N: 150, Dmax: 3, Seed: seed, Workers: 4,
				Static: true, MaxRounds: rounds,
				Fault: prof, ConfirmWindow: 10,
			})
			if err != nil {
				panic(err)
			}
			faults += res.FaultsInjected
			episodes += res.Episodes
			open += res.EpisodesOpen
			stabSum += int(res.MeanStabRounds*float64(res.Episodes) + 0.5)
			if res.MaxStabRounds > maxStab {
				maxStab = res.MaxStabRounds
			}
			unex += res.EpisodeUnexcused + res.UnexcusedOutside
		}
		mean := 0.0
		if episodes > 0 {
			mean = float64(stabSum) / float64(episodes)
		}
		tb.AddRow(fmt.Sprintf("%.1f", intensity), faults, episodes, open,
			fmt.Sprintf("%.1f", mean), maxStab,
			fmt.Sprintf("%.4f", float64(unex)/float64(seeds*rounds)))
	}
	return tb
}
