// Package experiments implements the reproduction's experiment suite
// E1–E13 (see DESIGN.md §4): each function regenerates one table of
// EXPERIMENTS.md from scratch, deterministically from its seeds. The
// tables are shared by cmd/grpexp (console / markdown output) and by the
// benchmark harness in the repository root.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Seeds is the default number of seeds per configuration.
const Seeds = 5

// topoCase names a reusable topology configuration.
type topoCase struct {
	name string
	g    func() *graph.G
	dmax int
}

func sparseCases() []topoCase {
	return []topoCase{
		{"line-10", func() *graph.G { return graph.Line(10) }, 3},
		{"line-20", func() *graph.G { return graph.Line(20) }, 4},
		{"ring-12", func() *graph.G { return graph.Ring(12) }, 4},
		{"clusterring-3x3", func() *graph.G { return graph.Clusters(3, 3, 0, true) }, 2},
		{"star-8", func() *graph.G { return graph.Star(8) }, 2},
		{"clusters-3x4", func() *graph.G { return graph.Clusters(3, 4, 0, false) }, 2},
	}
}

// E1Stabilization regenerates the Prop. 1+2 table: from corrupted initial
// configurations, how many rounds until all garbage (ghost identities,
// oversized lists) is gone and the legitimacy predicate holds again.
func E1Stabilization(seeds int) *trace.Table {
	tb := trace.NewTable("E1 — self-stabilization from corrupted state (Props. 1, 2)",
		"corruption", "topology", "heal_rounds", "reconverge_rounds", "recovered")
	kinds := []struct {
		name string
		kind workload.CorruptionKind
	}{
		{"ghost-ids", workload.CorruptGhosts},
		{"oversized-lists", workload.CorruptOversized},
		{"bogus-views", workload.CorruptViews},
		{"wild-clocks", workload.CorruptPriorities},
	}
	topos := []topoCase{
		{"line-10", func() *graph.G { return graph.Line(10) }, 3},
		{"star-8", func() *graph.G { return graph.Star(8) }, 2},
	}
	for _, k := range kinds {
		for _, tc := range topos {
			healSum, convSum, rec := 0, 0, 0
			for seed := int64(1); seed <= int64(seeds); seed++ {
				s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: tc.dmax}, Seed: seed}, tc.g())
				s.RunUntilConverged(400, 3) // reach legitimacy first
				workload.Corrupt(s, k.kind, 0.5, rand.New(rand.NewSource(seed*97)))
				heal := 0
				for r := 1; r <= 200; r++ {
					s.StepRound()
					if !workload.HasGhosts(s) && workload.MaxListLen(s) <= tc.dmax+1 {
						heal = r
						break
					}
				}
				healSum += heal
				if rounds, ok := s.RunUntilConverged(400, 3); ok {
					convSum += heal + rounds
					rec++
				}
			}
			tb.AddRow(k.name, tc.name, float64(healSum)/float64(seeds),
				float64(convSum)/float64(max(rec, 1)), fmt.Sprintf("%d/%d", rec, seeds))
		}
	}
	return tb
}

// E2Agreement regenerates the Prop. 7/8/12 table: convergence to
// ΠA ∧ ΠS ∧ ΠM from clean boots across the sparse regime.
func E2Agreement(seeds int) *trace.Table {
	tb := trace.NewTable("E2/E3/E4 — convergence to ΠA∧ΠS∧ΠM (Props. 7, 8, 12)",
		"topology", "n", "Dmax", "converged", "mean_rounds", "groups", "ΠS_holds")
	for _, tc := range sparseCases() {
		conv, roundsSum, groups := 0, 0, 0
		safe := true
		var n int
		for seed := int64(1); seed <= int64(seeds); seed++ {
			g := tc.g()
			n = g.NumNodes()
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: tc.dmax}, Seed: seed, Jitter: seed%2 == 0}, g)
			r, ok := s.RunUntilConverged(800, 3)
			snap := s.Snapshot()
			if ok {
				conv++
				roundsSum += r
			}
			groups += snap.GroupCount()
			safe = safe && snap.Safety(tc.dmax)
		}
		tb.AddRow(tc.name, n, tc.dmax, fmt.Sprintf("%d/%d", conv, seeds),
			float64(roundsSum)/float64(max(conv, 1)), float64(groups)/float64(seeds), safe)
	}
	return tb
}

// E4MergeGadgets regenerates the merge-chain and merge-ring table (the
// "loop of groups willing to merge" case that group priorities resolve).
func E4MergeGadgets(seeds int) *trace.Table {
	tb := trace.NewTable("E4 — merge chains and rings (maximality, group priorities)",
		"gadget", "converged", "mean_rounds", "mean_groups")
	gadgets := []topoCase{
		{"chain-3x4", func() *graph.G { return workload.MergeChain(3, 4) }, 2},
		{"chain-4x3", func() *graph.G { return workload.MergeChain(4, 3) }, 2},
		{"ring-3x3", func() *graph.G { return workload.MergeRing(3, 3) }, 2},
		{"ring-4x3", func() *graph.G { return workload.MergeRing(4, 3) }, 2},
	}
	for _, tc := range gadgets {
		conv, roundsSum, groups := 0, 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: tc.dmax}, Seed: seed}, tc.g())
			r, ok := s.RunUntilConverged(800, 3)
			if ok {
				conv++
				roundsSum += r
			}
			groups += s.Snapshot().GroupCount()
		}
		tb.AddRow(tc.name, fmt.Sprintf("%d/%d", conv, seeds),
			float64(roundsSum)/float64(max(conv, 1)), float64(groups)/float64(seeds))
	}
	return tb
}

// E7Scaling regenerates the convergence-time scaling series: rounds to
// legitimacy versus network size on lines (diameter-dominated) and versus
// Dmax on a fixed line.
func E7Scaling(seeds int) (*trace.Table, *trace.Table) {
	bySize := trace.NewTable("E7a — convergence rounds vs network size (line, Dmax=4)",
		"n", "mean_rounds", "converged")
	for _, n := range []int{10, 20, 30, 40, 60} {
		conv, sum := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 4}, Seed: seed}, graph.Line(n))
			if r, ok := s.RunUntilConverged(1200, 3); ok {
				conv++
				sum += r
			}
		}
		bySize.AddRow(n, float64(sum)/float64(max(conv, 1)), fmt.Sprintf("%d/%d", conv, seeds))
	}
	byDmax := trace.NewTable("E7b — convergence rounds vs Dmax (line n=24)",
		"Dmax", "mean_rounds", "converged")
	for _, dmax := range []int{2, 3, 4, 6, 8} {
		conv, sum := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: seed}, graph.Line(24))
			if r, ok := s.RunUntilConverged(1200, 3); ok {
				conv++
				sum += r
			}
		}
		byDmax.AddRow(dmax, float64(sum)/float64(max(conv, 1)), fmt.Sprintf("%d/%d", conv, seeds))
	}
	return bySize, byDmax
}

// E11Overhead regenerates the control-overhead table: bytes and messages
// per node per round, versus group size and Dmax (message size grows with
// the list content, i.e. with the group the node ends up in).
func E11Overhead() *trace.Table {
	tb := trace.NewTable("E11 — control overhead at steady state",
		"topology", "n", "Dmax", "msgs/node/round", "bytes/node/round", "bytes/msg")
	cases := []topoCase{
		{"line-10", func() *graph.G { return graph.Line(10) }, 3},
		{"line-20", func() *graph.G { return graph.Line(20) }, 4},
		{"line-20-d8", func() *graph.G { return graph.Line(20) }, 8},
		{"grid-4x4", func() *graph.G { return graph.Grid(4, 4) }, 3},
		{"clusters-3x4", func() *graph.G { return graph.Clusters(3, 4, 0, false) }, 2},
	}
	for _, tc := range cases {
		g := tc.g()
		n := g.NumNodes()
		s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: tc.dmax}, Seed: 1}, g)
		s.RunUntilConverged(600, 3)
		// Measure a steady window.
		m0, b0, t0 := s.MessagesSent, s.BytesSent, s.Tick()
		const window = 50
		for i := 0; i < window; i++ {
			s.StepRound()
		}
		rounds := float64(s.Tick()-t0) / float64(s.P.Tc)
		msgs := float64(s.MessagesSent - m0)
		bytes := float64(s.BytesSent - b0)
		tb.AddRow(tc.name, n, tc.dmax,
			msgs/float64(n)/rounds, bytes/float64(n)/rounds, bytes/msgs)
	}
	return tb
}

// E13Density regenerates the convergence-vs-density series documenting
// the metastability finding: the fraction of runs reaching full
// legitimacy as the mean degree of a random geometric graph grows, with
// safety asserted throughout.
func E13Density(seeds int) *trace.Table {
	tb := trace.NewTable("E13 — convergence rate vs density (RGG n=20, Dmax=3)",
		"radio_range", "mean_degree", "converged", "ΠS_holds", "mean_groups")
	for _, r := range []float64{2.2, 2.8, 3.4, 4.0, 5.0} {
		conv, total, groups := 0, 0, 0
		degSum := 0.0
		safe := true
		for seed := int64(1); seed <= int64(seeds); seed++ {
			g := graph.ConnectedRandomGeometric(20, 10, r, rand.New(rand.NewSource(seed)), 300)
			if g == nil {
				continue
			}
			total++
			degSum += 2 * float64(g.NumEdges()) / float64(g.NumNodes())
			s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: seed}, g)
			if _, ok := s.RunUntilConverged(600, 3); ok {
				conv++
			}
			snap := s.Snapshot()
			groups += snap.GroupCount()
			safe = safe && snap.Safety(3)
		}
		if total == 0 {
			continue
		}
		tb.AddRow(r, degSum/float64(total), fmt.Sprintf("%d/%d", conv, total),
			safe, float64(groups)/float64(total))
	}
	return tb
}

// All regenerates every experiment table with the given seed count. E7c
// runs a reduced size series here (the full tens-of-thousands series is
// for cmd/grpexp and the benchmarks).
func All(seeds int) []*trace.Table {
	e7a, e7b := E7Scaling(seeds)
	return []*trace.Table{
		E1Stabilization(seeds),
		E2Agreement(seeds),
		E4MergeGadgets(seeds),
		E5Compatibility(),
		E6Continuity(seeds),
		e7a, e7b,
		E7cSpatialScale(seeds, 1000, 5000),
		E7cDeltaScale(seeds, 4000),
		E8Lifetime(seeds),
		E8bHeadLoss(seeds),
		E9Loss(seeds),
		E10Ablation(seeds),
		E11Overhead(),
		E12Quarantine(seeds),
		E13Density(seeds),
		E13bDense(seeds),
		E14Stabilizers(seeds),
		E15Collision(seeds),
	}
}
