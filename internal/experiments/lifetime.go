package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/space"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E8Lifetime regenerates the central motivation table: group stability
// under VANET mobility for GRP versus re-clustering baselines. Vehicles
// drive a wrap-around highway; GRP maintains its groups, while Max-Min
// d-clustering and the greedy partitioner recompute every epoch from
// scratch (the behavior of clusterhead algorithms under mobility). The
// paper's claim: GRP keeps memberships stable wherever the topology
// allows; recomputing partitioners reshuffle them.
func E8Lifetime(seeds int) *trace.Table {
	tb := trace.NewTable("E8 — group service under highway mobility (n=12, Dmax=4, opposing traffic)",
		"speed_spread", "algo", "mean_lifetime", "membership_changes", "ΠS_ok_pct")
	const (
		n     = 12
		dmax  = 4
		steps = 80
	)
	for _, spread := range []float64{0.0, 0.3, 0.8, 1.5} {
		type acc struct {
			life    float64
			changes int
			safeOK  int
			rounds  int
		}
		algos := []string{"GRP", "MaxMin-oracle", "MaxMin-epoch10", "Greedy-oracle"}
		sums := map[string]*acc{}
		for _, a := range algos {
			sums[a] = &acc{}
		}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			// One shared mobility trace per seed: replayed identically
			// for all algorithms.
			snaps := highwayTrace(n, spread, steps, seed)

			// GRP: the live protocol over the trace.
			grpTr := metrics.NewTracker()
			s := replayGRP(n, dmax, spread, steps, seed)
			for _, snap := range s {
				grpTr.Observe(snap, dmax)
				sums["GRP"].rounds++
				if snap.Safety(dmax) {
					sums["GRP"].safeOK++
				}
			}
			sums["GRP"].life += grpTr.MeanLifetime()
			sums["GRP"].changes += grpTr.MembershipChanges

			// Oracles recompute from the true global graph every round;
			// the epoch variant recomputes every 10 rounds and serves the
			// stale partition in between — what a deployed epoch-based
			// clusterer actually does.
			mmTr, meTr, grTr := metrics.NewTracker(), metrics.NewTracker(), metrics.NewTracker()
			var epochViews map[ident.NodeID]map[ident.NodeID]bool
			for i, g := range snaps {
				mm := metrics.Snapshot{G: g, Views: baseline.Views(baseline.MaxMin(g, dmax/2))}
				if i%10 == 0 || epochViews == nil {
					epochViews = pruneViews(baseline.Views(baseline.MaxMin(g, dmax/2)), g)
				} else {
					epochViews = pruneViews(epochViews, g)
				}
				me := metrics.Snapshot{G: g, Views: epochViews}
				gr := metrics.Snapshot{G: g, Views: baseline.GreedyPartition(g, dmax)}
				mmTr.Observe(mm, dmax)
				meTr.Observe(me, dmax)
				grTr.Observe(gr, dmax)
				for name, snap := range map[string]metrics.Snapshot{
					"MaxMin-oracle": mm, "MaxMin-epoch10": me, "Greedy-oracle": gr,
				} {
					sums[name].rounds++
					if snap.Safety(dmax) {
						sums[name].safeOK++
					}
				}
			}
			sums["MaxMin-oracle"].life += mmTr.MeanLifetime()
			sums["MaxMin-oracle"].changes += mmTr.MembershipChanges
			sums["MaxMin-epoch10"].life += meTr.MeanLifetime()
			sums["MaxMin-epoch10"].changes += meTr.MembershipChanges
			sums["Greedy-oracle"].life += grTr.MeanLifetime()
			sums["Greedy-oracle"].changes += grTr.MembershipChanges
		}
		for _, name := range algos {
			a := sums[name]
			tb.AddRow(spread, name, a.life/float64(seeds),
				a.changes/seeds, 100*float64(a.safeOK)/float64(max(a.rounds, 1)))
		}
	}
	return tb
}

// highwayModel builds the mobility model for a given speed spread: base
// speed 10, per-vehicle speeds in [10, 10+spread·10], on a ring road
// (continuous distances — a straight road with modular wrap would break
// links artificially at the wrap point and charge the churn to every
// algorithm).
func highwayModel(spread float64) *mobility.RingRoad {
	return &mobility.RingRoad{
		Length: 140, Lanes: 2, LaneGap: 2,
		SpeedMin: 10, SpeedMax: 10 + spread*10,
		Opposing: true,
	}
}

// highwayTrace produces the topology snapshot sequence of a highway run.
func highwayTrace(n int, spread float64, steps int, seed int64) []*graph.G {
	w := space.NewWorld(8)
	rng := rand.New(rand.NewSource(seed))
	m := highwayModel(spread)
	m.Init(w, idRange(n), rng)
	out := make([]*graph.G, 0, steps)
	for i := 0; i < steps; i++ {
		m.Step(w, 0.05, rng)
		out = append(out, w.SymmetricGraph())
	}
	return out
}

// replayGRP runs the protocol over the same mobility process and returns
// one snapshot per round.
func replayGRP(n, dmax int, spread float64, steps int, seed int64) []metrics.Snapshot {
	w := space.NewWorld(8)
	topo := engine.NewSpatialTopology(w, highwayModel(spread), 0.05/float64(2), idRange(n), rand.New(rand.NewSource(seed)))
	s := engine.New(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: seed}, topo)
	// Warm up so groups exist before measuring.
	for i := 0; i < 30; i++ {
		s.StepRound()
	}
	out := make([]metrics.Snapshot, 0, steps)
	for i := 0; i < steps; i++ {
		s.StepRound()
		out = append(out, s.Snapshot())
	}
	return out
}

// E10Ablation regenerates the compatibility-shortcut ablation: the full
// ∃i witness test versus the naive i=0 sum on shortcut-rich topologies
// (cliques and bridged clusters), measured by convergence and final
// partition coarseness.
func E10Ablation(seeds int) *trace.Table {
	tb := trace.NewTable("E10 — compatibility shortcut ablation",
		"topology", "variant", "converged", "mean_groups", "mean_group_size")
	cases := []topoCase{
		{"clique-6-d2", func() *graph.G { return graph.Complete(6) }, 2},
		{"clusters-3x4", func() *graph.G { return graph.Clusters(3, 4, 0, false) }, 2},
		{"grid-4x4", func() *graph.G { return graph.Grid(4, 4) }, 3},
	}
	for _, tc := range cases {
		for _, variant := range []struct {
			name string
			mode core.CompatMode
		}{{"full", core.CompatFull}, {"naive-sum", core.CompatNaiveSum}} {
			conv, groups := 0, 0
			size := 0.0
			for seed := int64(1); seed <= int64(seeds); seed++ {
				s := engine.NewStatic(engine.Params{
					Cfg:  core.Config{Dmax: tc.dmax, Compat: variant.mode},
					Seed: seed,
				}, tc.g())
				if _, ok := s.RunUntilConverged(600, 3); ok {
					conv++
				}
				snap := s.Snapshot()
				groups += snap.GroupCount()
				size += snap.MeanGroupSize()
			}
			tb.AddRow(tc.name, variant.name, ratio(conv, seeds),
				float64(groups)/float64(seeds), size/float64(seeds))
		}
	}
	return tb
}

// E12Quarantine regenerates the quarantine ablation on the double-join
// gadget: with the quarantine, concurrent admissions are resolved before
// views change (no unexcused continuity violations and clean
// reconvergence); without it, views flap.
func E12Quarantine(seeds int) *trace.Table {
	tb := trace.NewTable("E12 — quarantine ablation (double join, core n=4, Dmax=4)",
		"variant", "converged", "view_changes/run", "unexcused/run")
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"quarantine-on", false}, {"quarantine-off", true}} {
		conv := 0
		changes, unexc := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			g, _, _ := workload.DoubleJoin(4, 4)
			s := engine.NewStatic(engine.Params{
				Cfg:  core.Config{Dmax: 4, DisableQuarantine: variant.disable},
				Seed: seed,
			}, g)
			tr := observeRounds(s, nil, 80, 4)
			changes += tr.MembershipChanges
			unexc += tr.UnexcusedViolations
			if s.Snapshot().Converged(4) {
				conv++
			}
		}
		tb.AddRow(variant.name, ratio(conv, seeds),
			float64(changes)/float64(seeds), float64(unexc)/float64(seeds))
	}
	return tb
}

func ratio(a, b int) string { return fmt.Sprintf("%d/%d", a, b) }

// E8bHeadLoss regenerates the churn-on-departure comparison, the precise
// mechanism behind the paper's "maintain existing groups" claim: when a
// member — often the clusterhead of head-based schemes — leaves the
// network, GRP's continuity shrinks exactly the one affected group, while
// re-clustering algorithms recompute globally and reshuffle nodes across
// cluster boundaries. A line of n nodes loses a strategically chosen node
// (the current Max-Min clusterhead with the most members) every `period`
// rounds; a fresh node takes its place in the topology.
func E8bHeadLoss(seeds int) *trace.Table {
	tb := trace.NewTable("E8b — membership churn under clusterhead departure (line n=12, Dmax=2)",
		"algo", "departures", "membership_changes", "changes/departure")
	const (
		n      = 12
		dmax   = 2
		period = 15
		events = 6
	)
	type acc struct{ changes, departures int }
	sums := map[string]*acc{"GRP": {}, "MaxMin": {}}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		g := graph.Line(n)
		s := engine.NewStatic(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: seed}, g)
		s.RunUntilConverged(400, 3)

		grpTr := metrics.NewTracker()
		mmTr := metrics.NewTracker()
		grpTr.Observe(s.Snapshot(), dmax)
		mmTr.Observe(metrics.Snapshot{G: g.Clone(), Views: baseline.Views(baseline.MaxMin(g, dmax/2))}, dmax)

		next := ident.NodeID(n + 1)
		for e := 0; e < events; e++ {
			// Depart: the Max-Min head with the largest cluster (the
			// most disruptive loss for head-based schemes).
			head := biggestHead(g, dmax/2)
			nbrs := g.Neighbors(head)
			s.RemoveNode(head)
			g.RemoveNode(head)
			// A fresh vehicle takes the same road position.
			for _, u := range nbrs {
				g.AddEdge(next, u)
			}
			s.AddNode(next)
			next++
			for r := 0; r < period; r++ {
				s.StepRound()
				grpTr.Observe(s.Snapshot(), dmax)
				mmTr.Observe(metrics.Snapshot{G: g.Clone(), Views: baseline.Views(baseline.MaxMin(g, dmax/2))}, dmax)
			}
		}
		sums["GRP"].changes += grpTr.MembershipChanges
		sums["GRP"].departures += events
		sums["MaxMin"].changes += mmTr.MembershipChanges
		sums["MaxMin"].departures += events
	}
	for _, name := range []string{"GRP", "MaxMin"} {
		a := sums[name]
		tb.AddRow(name, a.departures, a.changes, float64(a.changes)/float64(max(a.departures, 1)))
	}
	return tb
}

// biggestHead returns the Max-Min clusterhead with the most members.
func biggestHead(g *graph.G, d int) ident.NodeID {
	clusters := baseline.Clusters(baseline.MaxMin(g, d))
	best, size := ident.NodeID(0), -1
	for h, members := range clusters {
		if len(members) > size || (len(members) == size && h < best) {
			best, size = h, len(members)
		}
	}
	return best
}

// pruneViews drops departed nodes from a stale view assignment so the
// snapshot stays well formed (an epoch-based clusterer at least notices
// its own members vanishing).
func pruneViews(views map[ident.NodeID]map[ident.NodeID]bool, g *graph.G) map[ident.NodeID]map[ident.NodeID]bool {
	out := make(map[ident.NodeID]map[ident.NodeID]bool, len(views))
	for v, vw := range views {
		if !g.HasNode(v) {
			continue
		}
		m := make(map[ident.NodeID]bool, len(vw))
		for u := range vw {
			if g.HasNode(u) {
				m[u] = true
			}
		}
		out[v] = m
	}
	return out
}
