package experiments

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/space"
	"repro/internal/trace"
)

// E7cSizes is the default size series of the spatial scale sweep — the
// ROADMAP's "E7 at tens of thousands of nodes", feasible only with the
// spatial-hash vicinity index (the all-pairs build at n=20000 would pay
// 2·10⁸ pair tests per tick). All() runs a reduced series to keep the
// test suite quick; cmd/grpexp runs the full one.
var E7cSizes = []int{2000, 5000, 10000, 20000}

// rwpSide returns the square side that keeps a random-waypoint world at
// constant density (mean symmetric degree ≈ 2.7 at range 2.5) as n grows.
func rwpSide(n int) float64 { return 2.7 * math.Sqrt(float64(n)) }

// E7cSpatialScale regenerates the large-scale mobile sweep: a random
// waypoint world at constant density, stepped for a fixed horizon, with
// the group structure and safety measured at the end. The protocol
// columns are deterministic per seed; ticks/s is the measured engine
// throughput (mobility + sharded graph build + protocol) on the host and
// is reported for the perf trajectory, not for reproducibility.
func E7cSpatialScale(seeds int, sizes ...int) *trace.Table {
	if len(sizes) == 0 {
		sizes = E7cSizes
	}
	tb := trace.NewTable("E7c — spatial scale sweep (mobile RWP, range 2.5, Dmax=3, 12 rounds)",
		"n", "mean_degree", "groups", "grouped_pct", "ΠS_group_pct", "ticks/s")
	const (
		rounds     = 12
		safeWindow = 4 // rounds of the tail over which ΠS freshness is sampled
	)
	for _, n := range sizes {
		degSum, groupSum, groupedSum, ticksPerSec := 0.0, 0.0, 0.0, 0.0
		safeRateSum, safeRounds := 0.0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			w := space.NewWorld(2.5)
			m := &mobility.Waypoint{Side: rwpSide(n), SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
			topo := engine.NewSpatialTopology(w, m, 0.2, idRange(n), rand.New(rand.NewSource(seed)))
			s := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: seed, Workers: 4}, topo)
			tr := obs.NewGroupTracker(s)
			t0 := time.Now()
			for r := 0; r < rounds-safeWindow; r++ {
				s.StepRound()
			}
			// ΠS is evaluated against the instantaneous topology, so
			// mobility breaks it transiently somewhere in the population
			// on nearly every round at this scale; report the per-group
			// freshness rate sampled over the tail. The incremental
			// tracker (internal/obs) replaces the per-round snapshot
			// re-derivation the seed paid here.
			var st obs.RoundStats
			for r := 0; r < safeWindow; r++ {
				s.StepRound()
				safeRounds++
				st = tr.Observe()
				safeRateSum += st.SafetyRate
			}
			ticksPerSec += float64(s.Tick()) / time.Since(t0).Seconds()
			degSum += 2 * float64(st.Edges) / float64(n)
			groupSum += float64(st.Groups)
			groupedSum += 100 * float64(n-st.Singletons) / float64(n)
		}
		f := float64(seeds)
		tb.AddRow(n, degSum/f, groupSum/f, groupedSum/f,
			100*safeRateSum/float64(max(safeRounds, 1)), ticksPerSec/f)
	}
	return tb
}

// E13bDense regenerates the dense-regime sweep the grid makes
// affordable: a static spatial RGG at n=200 whose radio range sweeps the
// mean degree from the sparse regime (~3) into the dense one (~20). It
// scales E13's metastability finding to 10× the population: as density
// grows the configuration fragments toward singletons (mean_groups →
// n) and full legitimacy stays out of reach within the horizon, while
// safety holds throughout. E13 stops at n=20 because its oracle
// topology generator is all-pairs; here the engine derives the topology
// through the spatial index, and the stationary world keeps the graph —
// and the engine's receiver cache — frozen after the first tick.
func E13bDense(seeds int) *trace.Table {
	tb := trace.NewTable("E13b — dense-regime metastability at scale (spatial RGG n=200, Dmax=3)",
		"radio_range", "mean_degree", "converged", "ΠS_holds", "mean_groups")
	const (
		n    = 200
		side = 40.0
		dmax = 3
	)
	for _, r := range []float64{3.0, 4.0, 5.0, 6.5, 8.0} {
		conv, groups := 0, 0
		degSum := 0.0
		safe := true
		for seed := int64(1); seed <= int64(seeds); seed++ {
			w := space.NewWorld(r)
			topo := engine.NewSpatialTopology(w, &mobility.Static{Side: side}, 0.1,
				idRange(n), rand.New(rand.NewSource(seed)))
			s := engine.New(engine.Params{Cfg: core.Config{Dmax: dmax}, Seed: seed}, topo)
			// The convergence loop runs on the incremental tracker: one
			// Observe per round replaces the full snapshot re-derivation
			// RunUntilConverged paid (same predicate, same streak rule).
			tr := obs.NewGroupTracker(s)
			var st obs.RoundStats
			streak := 0
			for round := 1; round <= 300; round++ {
				s.StepRound()
				st = tr.Observe()
				if st.Converged {
					streak++
					if streak >= 3 {
						conv++
						break
					}
				} else {
					streak = 0
				}
			}
			degSum += 2 * float64(st.Edges) / float64(n)
			groups += st.Groups
			safe = safe && st.Safety
		}
		tb.AddRow(r, degSum/float64(seeds), ratio(conv, seeds), safe,
			float64(groups)/float64(seeds))
	}
	return tb
}

// E7cDeltaSizes is the default size series of the delta-graph sweep; 50000
// is the scale ROADMAP flagged as needing incremental SymmetricGraph
// updates. All() runs a reduced series; cmd/grpexp runs this one.
var E7cDeltaSizes = []int{20000, 50000}

// E7cDeltaScale extends the spatial sweep into the mostly-parked commuter
// regime (5% of nodes drive random-waypoint journeys, the rest are
// parked), where the spatial index's delta-incremental rebuild applies:
// each tick re-scans only the movers' vicinities and patches the previous
// CSR via graph.ApplyDelta instead of re-deriving every adjacency. Each
// configuration is run twice from the same seed — delta enabled and
// forced full rebuild — and both throughputs are reported; the protocol
// columns come from the delta run (the graphs are identical, so the full
// run would produce the same trace). ticks/s is host throughput for the
// perf trajectory, not for reproducibility.
func E7cDeltaScale(seeds int, sizes ...int) *trace.Table {
	if len(sizes) == 0 {
		sizes = E7cDeltaSizes
	}
	tb := trace.NewTable("E7cΔ — delta-incremental graph sweep (commuter RWP, 5% active, range 2.5, Dmax=3, 10 rounds)",
		"n", "mean_degree", "groups", "grouped_pct", "ticks/s_delta", "ticks/s_full")
	const rounds = 10
	for _, n := range sizes {
		degSum, groupSum, groupedSum := 0.0, 0.0, 0.0
		tpsDelta, tpsFull := 0.0, 0.0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			run := func(disable bool) (obs.RoundStats, float64) {
				w := space.NewWorld(2.5)
				w.DisableDelta = disable
				m := &mobility.Commuter{Side: rwpSide(n), SpeedMin: 0.5, SpeedMax: 2,
					Pause: 1, ActiveFraction: 0.05}
				topo := engine.NewSpatialTopology(w, m, 0.2, idRange(n), rand.New(rand.NewSource(seed)))
				s := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: seed, Workers: 4}, topo)
				tr := obs.NewGroupTracker(s)
				var st obs.RoundStats
				t0 := time.Now()
				for r := 0; r < rounds; r++ {
					s.StepRound()
					st = tr.Observe()
				}
				return st, float64(s.Tick()) / time.Since(t0).Seconds()
			}
			st, tps := run(false)
			_, tpsF := run(true)
			tpsDelta += tps
			tpsFull += tpsF
			degSum += 2 * float64(st.Edges) / float64(n)
			groupSum += float64(st.Groups)
			groupedSum += 100 * float64(n-st.Singletons) / float64(n)
		}
		f := float64(seeds)
		tb.AddRow(n, degSum/f, groupSum/f, groupedSum/f, tpsDelta/f, tpsFull/f)
	}
	return tb
}
