package graph

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
)

// deltaWorld is a little harness: a symmetric edge-presence table over n
// nodes from which both the bulk-built graph and ApplyDelta updates are
// derived, so the patched result can always be checked against a
// from-scratch build.
type deltaWorld struct {
	n     int
	nodes []ident.NodeID
	edge  map[[2]ident.NodeID]bool
}

func newDeltaWorld(n int) *deltaWorld {
	w := &deltaWorld{n: n, edge: map[[2]ident.NodeID]bool{}}
	for i := 1; i <= n; i++ {
		w.nodes = append(w.nodes, ident.NodeID(i))
	}
	return w
}

func (w *deltaWorld) key(u, v ident.NodeID) [2]ident.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]ident.NodeID{u, v}
}

func (w *deltaWorld) set(u, v ident.NodeID, on bool) { w.edge[w.key(u, v)] = on }

func (w *deltaWorld) edges() []Edge {
	var out []Edge
	for k, on := range w.edge {
		if on {
			out = append(out, Edge{U: k[0], V: k[1]})
		}
	}
	return out
}

func (w *deltaWorld) build() *G { return FromEdges(w.nodes, w.edges()) }

// adjOf derives u's full ascending adjacency from the table.
func (w *deltaWorld) adjOf(u ident.NodeID) []ident.NodeID {
	var out []ident.NodeID
	for _, v := range w.nodes {
		if v != u && w.edge[w.key(u, v)] {
			out = append(out, v)
		}
	}
	return out
}

func (w *deltaWorld) updatesFor(dirty []ident.NodeID) []NodeAdj {
	out := make([]NodeAdj, 0, len(dirty))
	for _, u := range dirty {
		out = append(out, NodeAdj{Node: u, Adj: w.adjOf(u)})
	}
	return out
}

func TestApplyDeltaMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newDeltaWorld(30)
	for i := 0; i < 80; i++ {
		u := w.nodes[rng.Intn(w.n)]
		v := w.nodes[rng.Intn(w.n)]
		if u != v {
			w.set(u, v, true)
		}
	}
	prev := w.build()
	for round := 0; round < 60; round++ {
		// Flip a few pair states around a small dirty set.
		dirtySet := map[ident.NodeID]bool{}
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			dirtySet[w.nodes[rng.Intn(w.n)]] = true
		}
		for u := range dirtySet {
			for j := 0; j < 3; j++ {
				v := w.nodes[rng.Intn(w.n)]
				if v != u {
					w.set(u, v, rng.Intn(2) == 0)
				}
			}
		}
		var dirty []ident.NodeID
		for u := range dirtySet {
			dirty = append(dirty, u)
		}
		// The dirty set must cover every endpoint whose row changed: a
		// flipped pair (u,v) with v clean is mirrored by ApplyDelta, but
		// v's row derives from u's update, so only u needs to be dirty.
		got := ApplyDelta(prev, w.updatesFor(dirty))
		want := w.build()
		if !got.Equal(want) {
			t.Fatalf("round %d: patched %v vs scratch %v", round, got, want)
		}
		if got.NumEdges() != want.NumEdges() {
			t.Fatalf("round %d: edge count %d vs %d", round, got.NumEdges(), want.NumEdges())
		}
		for _, v := range w.nodes {
			a, b := got.NeighborsView(v), want.NeighborsView(v)
			if len(a) != len(b) {
				t.Fatalf("round %d: row %v: %v vs %v", round, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round %d: row %v: %v vs %v", round, v, a, b)
				}
			}
		}
		prev = got
	}
}

func TestApplyDeltaLeavesPrevIntact(t *testing.T) {
	w := newDeltaWorld(8)
	w.set(1, 2, true)
	w.set(2, 3, true)
	w.set(3, 4, true)
	prev := w.build()
	snapshot := prev.Clone()

	w.set(2, 3, false)
	w.set(2, 5, true)
	g := ApplyDelta(prev, w.updatesFor([]ident.NodeID{2}))
	if !prev.Equal(snapshot) {
		t.Fatal("ApplyDelta mutated prev")
	}
	if g.HasEdge(2, 3) || !g.HasEdge(2, 5) || !g.HasEdge(1, 2) {
		t.Fatalf("patched graph wrong: %v", g.NeighborsView(2))
	}

	// COW: mutating the patched graph must not leak into prev, and vice
	// versa — including rows the delta shared untouched.
	g.RemoveEdge(3, 4)
	g.AddEdge(6, 7)
	if !prev.Equal(snapshot) {
		t.Fatal("mutating the patched graph corrupted prev")
	}
	prev.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) != true {
		t.Fatal("mutating prev leaked into the patched graph")
	}
}

func TestApplyDeltaEmptyUpdates(t *testing.T) {
	w := newDeltaWorld(5)
	w.set(1, 2, true)
	prev := w.build()
	g := ApplyDelta(prev, nil)
	if !g.Equal(prev) {
		t.Fatal("empty delta changed the graph")
	}
	if g == prev {
		t.Fatal("empty delta must still return a fresh graph (generation contract)")
	}
}

func TestApplyDeltaPanicsOnViolations(t *testing.T) {
	w := newDeltaWorld(4)
	w.set(1, 2, true)
	prev := w.build()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("unknown node", func() {
		ApplyDelta(prev, []NodeAdj{{Node: 99}})
	})
	expectPanic("unknown neighbor", func() {
		ApplyDelta(prev, []NodeAdj{{Node: 1, Adj: []ident.NodeID{99}}})
	})
	expectPanic("self loop", func() {
		ApplyDelta(prev, []NodeAdj{{Node: 1, Adj: []ident.NodeID{1}}})
	})
	expectPanic("unsorted", func() {
		ApplyDelta(prev, []NodeAdj{{Node: 1, Adj: []ident.NodeID{3, 2}}})
	})
	expectPanic("duplicate update", func() {
		ApplyDelta(prev, []NodeAdj{{Node: 1}, {Node: 1}})
	})
}

// FuzzApplyDelta drives random base graphs and random consistent dirty-set
// updates and requires the patched CSR to equal a from-scratch FromEdges
// build of the mutated edge table — rows, edge counts, and the
// untouchability of prev included.
func FuzzApplyDelta(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3))
	f.Add(int64(42), uint8(20), uint8(1))
	f.Add(int64(-9), uint8(3), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, churn uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%24)
		w := newDeltaWorld(n)
		for i := 0; i < 3*n; i++ {
			u := w.nodes[rng.Intn(n)]
			v := w.nodes[rng.Intn(n)]
			if u != v {
				w.set(u, v, rng.Intn(3) > 0)
			}
		}
		prev := w.build()
		snapshot := prev.Clone()

		dirtySet := map[ident.NodeID]bool{}
		for i := 0; i <= int(churn%5); i++ {
			dirtySet[w.nodes[rng.Intn(n)]] = true
		}
		for u := range dirtySet {
			for j := 0; j < 1+rng.Intn(4); j++ {
				v := w.nodes[rng.Intn(n)]
				if v != u {
					w.set(u, v, rng.Intn(2) == 0)
				}
			}
		}
		var dirty []ident.NodeID
		for _, v := range w.nodes { // ascending, deterministic
			if dirtySet[v] {
				dirty = append(dirty, v)
			}
		}
		got := ApplyDelta(prev, w.updatesFor(dirty))
		want := w.build()
		if !got.Equal(want) {
			t.Fatalf("patched %v vs scratch %v (dirty %v)", got, want, dirty)
		}
		if !prev.Equal(snapshot) {
			t.Fatal("ApplyDelta mutated prev")
		}
		// Chained delta over the patched result must also hold up.
		if len(dirty) > 0 {
			u := dirty[0]
			for j := 0; j < 2; j++ {
				v := w.nodes[rng.Intn(n)]
				if v != u {
					w.set(u, v, rng.Intn(2) == 0)
				}
			}
			got2 := ApplyDelta(got, w.updatesFor(dirty[:1]))
			if want2 := w.build(); !got2.Equal(want2) {
				t.Fatalf("chained patch %v vs scratch %v", got2, want2)
			}
		}
	})
}
