package graph

import (
	"slices"
	"testing"

	"repro/internal/ident"
)

// Edge-case coverage for the CSR representation: empty graph, single
// node, self-loop rejection, unknown-node queries, and the generation
// bump semantics caches key on.

func TestEmptyGraphQueries(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph not empty: %s", g)
	}
	if got := g.Nodes(); len(got) != 0 {
		t.Fatalf("Nodes() = %v", got)
	}
	if !g.Connected() {
		t.Fatal("empty graph must count as connected")
	}
	if d := g.Diameter(); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
	if g.HasNode(1) || g.HasEdge(1, 2) || g.Degree(1) != 0 {
		t.Fatal("phantom content in empty graph")
	}
	if d := g.BFSFrom(1, nil); len(d) != 0 {
		t.Fatalf("BFS from absent node reached %v", d)
	}
	if !g.Equal(New()) {
		t.Fatal("two empty graphs must be equal")
	}
	if r := g.Restrict(func(ident.NodeID) bool { return true }); r.NumNodes() != 0 {
		t.Fatal("restricting empty graph grew it")
	}
}

func TestSingleNode(t *testing.T) {
	g := New()
	g.AddNode(7)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("single node graph: %s", g)
	}
	if !g.Connected() || g.Diameter() != 0 {
		t.Fatal("singleton must be connected with diameter 0")
	}
	if got := g.Neighbors(7); len(got) != 0 {
		t.Fatalf("singleton neighbors = %v", got)
	}
	if d := g.BFSFrom(7, nil); len(d) != 1 || d[7] != 0 {
		t.Fatalf("BFS from singleton = %v", d)
	}
	g.RemoveNode(7)
	if g.HasNode(7) || g.NumNodes() != 0 {
		t.Fatal("remove of last node failed")
	}
}

func TestSelfLoopRejectedEverywhere(t *testing.T) {
	g := New()
	gen := g.Generation()
	g.AddEdge(3, 3)
	if g.Generation() != gen {
		t.Fatal("ignored self-loop must not bump the generation")
	}
	if g.HasNode(3) || g.NumEdges() != 0 {
		t.Fatalf("self-loop created state: %s", g)
	}
	// Bulk construction drops self-loops too.
	fe := FromEdges([]ident.NodeID{1, 2}, []Edge{{U: 1, V: 1}, {U: 1, V: 2}, {U: 2, V: 2}})
	if fe.NumEdges() != 1 || fe.HasEdge(1, 1) || fe.HasEdge(2, 2) {
		t.Fatalf("FromEdges kept self-loops: %s", fe)
	}
}

func TestQueriesOnUnknownNode(t *testing.T) {
	g := Line(3)
	if got := g.AppendNeighbors(99, nil); len(got) != 0 {
		t.Fatalf("AppendNeighbors(unknown) = %v", got)
	}
	buf := []ident.NodeID{42}
	if got := g.AppendNeighbors(99, buf); !slices.Equal(got, buf) {
		t.Fatalf("AppendNeighbors(unknown, buf) = %v", got)
	}
	if got := g.NeighborsView(99); got != nil {
		t.Fatalf("NeighborsView(unknown) = %v", got)
	}
	calls := 0
	g.ForEachNeighbor(99, func(ident.NodeID) { calls++ })
	if calls != 0 {
		t.Fatal("ForEachNeighbor visited neighbors of an unknown node")
	}
	// Mutations on unknown nodes are no-ops (beyond the generation bump).
	g.RemoveNode(99)
	g.RemoveEdge(99, 1)
	g.RemoveEdge(1, 99)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("unknown-node mutation changed the graph: %s", g)
	}
}

// TestGenerationBumpSemantics pins the contract cache keys rely on:
// every mutating call moves the generation (even a no-op one — callers
// must be able to invalidate conservatively), read-only calls never do.
func TestGenerationBumpSemantics(t *testing.T) {
	g := New()
	last := g.Generation()
	step := func(name string, fn func()) {
		t.Helper()
		fn()
		if g.Generation() <= last {
			t.Fatalf("%s did not bump the generation", name)
		}
		last = g.Generation()
	}
	step("AddNode", func() { g.AddNode(1) })
	step("AddNode (existing)", func() { g.AddNode(1) })
	step("AddEdge", func() { g.AddEdge(1, 2) })
	step("AddEdge (duplicate)", func() { g.AddEdge(2, 1) })
	step("RemoveEdge", func() { g.RemoveEdge(1, 2) })
	step("RemoveEdge (absent)", func() { g.RemoveEdge(1, 2) })
	step("RemoveNode", func() { g.RemoveNode(2) })
	step("RemoveNode (absent)", func() { g.RemoveNode(2) })

	// Read-only calls leave it alone.
	g.AddEdge(1, 3)
	last = g.Generation()
	g.Nodes()
	g.Neighbors(1)
	g.NeighborsView(1)
	g.AppendNodes(nil)
	g.BFSFrom(1, nil)
	g.InducedDiameter(g.NodeSet())
	g.Connected()
	_ = g.Clone()
	_ = g.Restrict(func(ident.NodeID) bool { return true })
	if g.Generation() != last {
		t.Fatal("read-only call bumped the generation")
	}
}

// TestRemoveNodeRelabelsSlots exercises the swap-delete slot compaction:
// removing an interior node must leave every other adjacency intact.
func TestRemoveNodeRelabelsSlots(t *testing.T) {
	g := Complete(6)
	g.RemoveNode(3)
	if g.NumNodes() != 5 || g.NumEdges() != 10 {
		t.Fatalf("after removal: %s", g)
	}
	for _, v := range g.Nodes() {
		nb := g.Neighbors(v)
		if len(nb) != 4 || slices.Contains(nb, 3) {
			t.Fatalf("neighbors of %v after removal: %v", v, nb)
		}
		if !slices.IsSorted(nb) {
			t.Fatalf("neighbors of %v not ascending: %v", v, nb)
		}
	}
}

// TestFromEdgesArenaGrowth pins the arena-aliasing contract: growing an
// adjacency of a bulk-built graph via AddEdge must not clobber the next
// node's segment.
func TestFromEdgesArenaGrowth(t *testing.T) {
	g := FromEdges([]ident.NodeID{1, 2, 3, 4}, []Edge{{U: 1, V: 2}, {U: 3, V: 4}})
	g.AddEdge(1, 3) // grows node 1's and node 3's segments
	g.AddEdge(1, 4)
	want := map[ident.NodeID][]ident.NodeID{
		1: {2, 3, 4}, 2: {1}, 3: {1, 4}, 4: {1, 3},
	}
	for v, nb := range want {
		if got := g.Neighbors(v); !slices.Equal(got, nb) {
			t.Fatalf("neighbors of %v = %v, want %v", v, got, nb)
		}
	}
}
