package graph

import (
	"fmt"
	"slices"

	"repro/internal/ident"
)

// NodeAdj is one node's full replacement adjacency for ApplyDelta: the
// complete, strictly ascending neighbor set the node has after a change.
type NodeAdj struct {
	Node ident.NodeID
	Adj  []ident.NodeID
}

// ApplyDelta builds the graph that differs from prev only at the given
// nodes: each updates entry replaces that node's whole adjacency, and the
// mirror halves of every gained or lost edge are patched into the affected
// neighbors. This is the incremental sibling of FromEdgesShared for the
// mobile-world rebuild where only a fraction of nodes moved: instead of
// re-deriving every adjacency, only the movers' rows (supplied by the
// caller's vicinity re-scan) and the rows they touch are rewritten; all
// other rows — the overwhelming majority — are shared with prev.
//
// Preconditions (the spatial index guarantees them; violations panic):
// every updates Node exists in prev and appears at most once, and every
// Adj is strictly ascending, self-free, and names only nodes of prev.
// The node set is unchanged by construction — membership churn must go
// through a full rebuild.
//
// Sharing semantics: the result shares prev's roster (as FromEdgesShared
// does) and every unpatched adjacency slice. Both graphs are marked
// copy-on-write: the first in-place mutation of either (AddEdge,
// RemoveEdge, RemoveNode) privatizes its adjacency storage first, so the
// sharing is invisible to callers — reads stay zero-copy (NeighborsView
// over a patched CSR is exactly as valid as over a bulk-built one), and
// the generation contract is preserved because ApplyDelta returns a fresh
// graph (new pointer, generation zero) rather than mutating prev.
func ApplyDelta(prev *G, updates []NodeAdj) *G {
	// The updated-node set, ascending, for the mirror-patch membership
	// tests (an edge between two updated nodes is fully described by their
	// own rows and must not be double-patched or double-counted).
	upd := make([]ident.NodeID, len(updates))
	for i, u := range updates {
		upd[i] = u.Node
	}
	slices.Sort(upd)
	for i := 1; i < len(upd); i++ {
		if upd[i] == upd[i-1] {
			panic(fmt.Sprintf("graph: ApplyDelta: duplicate update for %v", upd[i]))
		}
	}
	isUpd := func(v ident.NodeID) bool {
		_, ok := slices.BinarySearch(upd, v)
		return ok
	}

	g := &G{
		idx:   prev.idx,
		nodes: prev.nodes,
		adj:   make([][]ident.NodeID, len(prev.adj)),
		edges: prev.edges,
	}
	prev.sharedIdx = true
	g.sharedIdx = true
	copy(g.adj, prev.adj)
	// Adjacency storage is shared slice-by-slice from here on; flag both
	// sides so any later in-place mutation privatizes first.
	g.cowAdj, prev.cowAdj = true, true
	if prev.sortedOK {
		// The ascending roster is identical (same node set); share it too.
		// unshareIdx detaches it before any membership mutation.
		g.sorted, g.sortedOK = prev.sorted, true
	}

	// One arena holds every updated row (the patched mirror rows are
	// allocated per row below — there are few of them and their sizes are
	// only known after the diff).
	total := 0
	for i := range updates {
		total += len(updates[i].Adj)
	}
	arena := make([]ident.NodeID, 0, total)

	type patch struct {
		slot int32
		nb   ident.NodeID
		add  bool
	}
	var patches []patch

	for i := range updates {
		u := updates[i].Node
		na := updates[i].Adj
		iu, ok := prev.idx[u]
		if !ok {
			panic(fmt.Sprintf("graph: ApplyDelta: unknown node %v", u))
		}
		for k := range na {
			if na[k] == u {
				panic(fmt.Sprintf("graph: ApplyDelta: self-loop on %v", u))
			}
			if k > 0 && na[k-1] >= na[k] {
				panic(fmt.Sprintf("graph: ApplyDelta: adjacency of %v not strictly ascending", u))
			}
			if _, ok := prev.idx[na[k]]; !ok {
				panic(fmt.Sprintf("graph: ApplyDelta: adjacency of %v names unknown node %v", u, na[k]))
			}
		}
		// Diff the old and new rows; mirror the changes into rows that are
		// not themselves updated.
		old := prev.adj[iu]
		oi, ni := 0, 0
		for oi < len(old) || ni < len(na) {
			switch {
			case ni >= len(na) || (oi < len(old) && old[oi] < na[ni]):
				v := old[oi]
				oi++
				if !isUpd(v) {
					patches = append(patches, patch{slot: prev.idx[v], nb: u, add: false})
					g.edges--
				} else if u < v {
					g.edges--
				}
			case oi >= len(old) || na[ni] < old[oi]:
				v := na[ni]
				ni++
				if !isUpd(v) {
					patches = append(patches, patch{slot: prev.idx[v], nb: u, add: true})
					g.edges++
				} else if u < v {
					g.edges++
				}
			default:
				oi, ni = oi+1, ni+1
			}
		}
		start := len(arena)
		arena = append(arena, na...)
		g.adj[iu] = arena[start:len(arena):len(arena)]
	}

	// Apply the mirror patches, one fresh row per touched neighbor. Each
	// (slot, nb) pair occurs at most once (updates are unique), so the
	// grouped merge below is a plain sorted-walk.
	slices.SortFunc(patches, func(a, b patch) int {
		switch {
		case a.slot != b.slot:
			return int(a.slot - b.slot)
		case a.nb < b.nb:
			return -1
		case a.nb > b.nb:
			return 1
		default:
			return 0
		}
	})
	for lo := 0; lo < len(patches); {
		hi := lo
		for hi < len(patches) && patches[hi].slot == patches[lo].slot {
			hi++
		}
		slot := patches[lo].slot
		old := prev.adj[slot]
		row := make([]ident.NodeID, 0, len(old)+hi-lo)
		pi := lo
		for oi := 0; oi < len(old) || pi < hi; {
			switch {
			case pi >= hi || (oi < len(old) && old[oi] < patches[pi].nb):
				row = append(row, old[oi])
				oi++
			case oi >= len(old) || patches[pi].nb < old[oi]:
				if !patches[pi].add {
					panic(fmt.Sprintf("graph: ApplyDelta: removing absent edge %v-%v",
						prev.nodes[slot], patches[pi].nb))
				}
				row = append(row, patches[pi].nb)
				pi++
			default: // same ID: a removal drops it, an addition is a dup
				if patches[pi].add {
					panic(fmt.Sprintf("graph: ApplyDelta: adding present edge %v-%v",
						prev.nodes[slot], patches[pi].nb))
				}
				oi++
				pi++
			}
		}
		g.adj[slot] = row
		lo = hi
	}
	return g
}

// unshareAdj privatizes the adjacency storage of a graph built by
// ApplyDelta (or one whose storage ApplyDelta borrowed) before the first
// in-place mutation: every row is copied into one fresh arena, with caps
// pinned so later growth reallocates privately.
func (g *G) unshareAdj() {
	if !g.cowAdj {
		return
	}
	total := 0
	for _, s := range g.adj {
		total += len(s)
	}
	arena := make([]ident.NodeID, 0, total)
	for i, s := range g.adj {
		start := len(arena)
		arena = append(arena, s...)
		g.adj[i] = arena[start:len(arena):len(arena)]
	}
	g.cowAdj = false
}
