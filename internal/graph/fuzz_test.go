package graph

import (
	"slices"
	"testing"

	"repro/internal/ident"
)

// FuzzCSROps replays an arbitrary mutation/query sequence decoded from
// the fuzz input against both the CSR graph and the retained map-of-maps
// reference, asserting every observable agrees after every operation.
// Each input byte pair is one op: the low bits of the first byte select
// the operation, the second byte (mod 16) the operand node(s) — a small
// ID space keeps collisions (re-adds, double-removes, duplicate edges)
// frequent.
func FuzzCSROps(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x02, 0x23, 0x02, 0x31, 0x03, 0x23})
	f.Add([]byte{0x02, 0x12, 0x02, 0x13, 0x02, 0x14, 0x01, 0x01, 0x02, 0x12})
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 0x01, 0x01, 0x03, 0x11, 0x02, 0x11})
	f.Add([]byte{0x02, 0xab, 0x02, 0xba, 0x02, 0xcd, 0x01, 0x0b, 0x02, 0xdc})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := New()
		ref := NewRef()
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 5
			a := ident.NodeID(data[i+1]>>4) + 1
			b := ident.NodeID(data[i+1]&0xf) + 1
			switch op {
			case 0:
				g.AddNode(a)
				ref.AddNode(a)
			case 1:
				g.RemoveNode(a)
				ref.RemoveNode(a)
			case 2:
				g.AddEdge(a, b)
				ref.AddEdge(a, b)
			case 3:
				g.RemoveEdge(a, b)
				ref.RemoveEdge(a, b)
			case 4:
				// Restrict to even IDs and compare against the reference
				// restricted the slow way.
				keep := func(v ident.NodeID) bool { return v%2 == 0 }
				r := g.Restrict(keep)
				for _, v := range ref.Nodes() {
					if !keep(v) {
						if r.HasNode(v) {
							t.Fatalf("restrict kept %v", v)
						}
						continue
					}
					var want []ident.NodeID
					for _, u := range ref.Neighbors(v) {
						if keep(u) {
							want = append(want, u)
						}
					}
					if !slices.Equal(want, r.Neighbors(v)) {
						t.Fatalf("restrict neighbors of %v: %v vs %v", v, r.Neighbors(v), want)
					}
				}
			}
			checkSame(t, g, ref)
		}
	})
}

// FuzzCSRFromEdges decodes an arbitrary edge list (self-loops and
// duplicates included) from the fuzz input, bulk-builds the CSR graph,
// and asserts it matches the reference built edge by edge — construction
// and neighbor iteration both.
func FuzzCSRFromEdges(f *testing.F) {
	f.Add([]byte{0x12, 0x23, 0x31, 0x11, 0x23, 0x23})
	f.Add([]byte{0xab, 0xbc, 0xcd, 0xde, 0xea})
	f.Add([]byte{0x11, 0x22, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		var nodes []ident.NodeID
		var edges []Edge
		ref := NewRef()
		for i, x := range data {
			u := ident.NodeID(x>>4) + 1
			v := ident.NodeID(x&0xf) + 1
			if i%3 == 0 {
				nodes = append(nodes, u)
				ref.AddNode(u)
			}
			edges = append(edges, Edge{U: u, V: v})
			ref.AddEdge(u, v)
		}
		g := FromEdges(nodes, edges)
		checkSame(t, g, ref)
		// The shared-index rebuild path must agree too.
		roster := g.Nodes()
		g2 := FromEdgesShared(g, append([]ident.NodeID(nil), g.nodes...), edges)
		checkSame(t, g2, ref)
		if !slices.Equal(roster, g2.Nodes()) {
			t.Fatal("shared-index rebuild changed the roster")
		}
		// Mutating the shared-roster graph must not corrupt the original.
		before := g.NumNodes()
		g2.AddNode(200)
		g2.RemoveNode(1)
		if g.NumNodes() != before || g.HasNode(200) {
			t.Fatal("mutation leaked across the shared roster")
		}
		checkSame(t, g, ref)
	})
}

// checkSame asserts every observable of the CSR graph matches the
// reference: roster, edge count, per-node neighbor slices (content and
// ascending order), HasEdge, degrees, BFS distances and connectivity.
func checkSame(t *testing.T, g *G, ref *Ref) {
	t.Helper()
	if !ref.SameAs(g) {
		t.Fatalf("graphs diverged: %s vs ref n=%d m=%d", g, ref.NumNodes(), ref.NumEdges())
	}
	nodes := ref.Nodes()
	if !slices.Equal(nodes, g.Nodes()) {
		t.Fatalf("rosters diverged: %v vs %v", g.Nodes(), nodes)
	}
	var buf []ident.NodeID
	for _, v := range nodes {
		want := ref.Neighbors(v)
		if !slices.Equal(want, g.Neighbors(v)) {
			t.Fatalf("neighbors of %v: %v vs %v", v, g.Neighbors(v), want)
		}
		if !slices.Equal(want, g.NeighborsView(v)) {
			t.Fatalf("neighbor view of %v diverged", v)
		}
		buf = g.AppendNeighbors(v, buf[:0])
		if !slices.Equal(want, buf) {
			t.Fatalf("append-neighbors of %v diverged", v)
		}
		if g.Degree(v) != len(want) {
			t.Fatalf("degree of %v: %d vs %d", v, g.Degree(v), len(want))
		}
		for _, u := range want {
			if !g.HasEdge(v, u) || !g.HasEdge(u, v) {
				t.Fatalf("edge (%v,%v) missing", v, u)
			}
		}
	}
	if len(nodes) > 0 {
		src := nodes[0]
		want := ref.BFSFrom(src, nil)
		got := g.BFSFrom(src, nil)
		if len(want) != len(got) {
			t.Fatalf("BFS reach from %v: %d vs %d", src, len(got), len(want))
		}
		for v, d := range want {
			if got[v] != d {
				t.Fatalf("BFS dist %v→%v: %d vs %d", src, v, got[v], d)
			}
		}
	}
}
