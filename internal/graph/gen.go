package graph

import (
	"math"
	"math/rand"

	"repro/internal/ident"
)

// ids returns NodeIDs 1..n. Node IDs start at 1 because ident.None is 0.
func ids(n int) []ident.NodeID {
	out := make([]ident.NodeID, n)
	for i := range out {
		out[i] = ident.NodeID(i + 1)
	}
	return out
}

// Line returns the path graph 1-2-...-n.
func Line(n int) *G {
	g := New()
	v := ids(n)
	for _, x := range v {
		g.AddNode(x)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(v[i], v[i+1])
	}
	return g
}

// Ring returns the cycle graph on n nodes.
func Ring(n int) *G {
	g := Line(n)
	if n > 2 {
		g.AddEdge(ident.NodeID(1), ident.NodeID(n))
	}
	return g
}

// Grid returns the rows×cols king-free (4-neighbor) grid.
func Grid(rows, cols int) *G {
	g := New()
	at := func(r, c int) ident.NodeID { return ident.NodeID(r*cols + c + 1) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(at(r, c))
			if r > 0 {
				g.AddEdge(at(r, c), at(r-1, c))
			}
			if c > 0 {
				g.AddEdge(at(r, c), at(r, c-1))
			}
		}
	}
	return g
}

// Star returns the star with center 1 and n-1 leaves.
func Star(n int) *G {
	g := New()
	v := ids(n)
	for _, x := range v {
		g.AddNode(x)
	}
	for i := 1; i < n; i++ {
		g.AddEdge(v[0], v[i])
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *G {
	g := New()
	v := ids(n)
	for i := range v {
		g.AddNode(v[i])
		for j := 0; j < i; j++ {
			g.AddEdge(v[i], v[j])
		}
	}
	return g
}

// RandomGeometric places n nodes uniformly in the side×side square and
// connects pairs within range r. Deterministic for a given rng state.
func RandomGeometric(n int, side, r float64, rng *rand.Rand) *G {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64() * side, rng.Float64() * side}
	}
	g := New()
	v := ids(n)
	for i := range v {
		g.AddNode(v[i])
		for j := 0; j < i; j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			if math.Hypot(dx, dy) <= r {
				g.AddEdge(v[i], v[j])
			}
		}
	}
	return g
}

// ConnectedRandomGeometric retries RandomGeometric until connected (or
// maxTries), then returns it. Returns nil if no connected instance was
// found; callers treat that as a skip.
func ConnectedRandomGeometric(n int, side, r float64, rng *rand.Rand, maxTries int) *G {
	for t := 0; t < maxTries; t++ {
		g := RandomGeometric(n, side, r, rng)
		if g.Connected() {
			return g
		}
	}
	return nil
}

// Clusters returns k cliques of size sz, chained by single bridge edges:
// clique_i's last node connects to clique_{i+1}'s first node via a path of
// bridgeLen extra relay nodes (bridgeLen = 0 means a direct edge). If ring
// is true the last clique also connects back to the first — the paper's
// "loop of groups willing to merge" gadget.
func Clusters(k, sz, bridgeLen int, ring bool) *G {
	g := New()
	next := ident.NodeID(1)
	alloc := func() ident.NodeID { v := next; next++; g.AddNode(v); return v }
	firsts := make([]ident.NodeID, k)
	lasts := make([]ident.NodeID, k)
	for c := 0; c < k; c++ {
		members := make([]ident.NodeID, sz)
		for i := range members {
			members[i] = alloc()
			for j := 0; j < i; j++ {
				g.AddEdge(members[i], members[j])
			}
		}
		firsts[c], lasts[c] = members[0], members[sz-1]
	}
	bridge := func(a, b ident.NodeID) {
		prev := a
		for i := 0; i < bridgeLen; i++ {
			relay := alloc()
			g.AddEdge(prev, relay)
			prev = relay
		}
		g.AddEdge(prev, b)
	}
	for c := 0; c+1 < k; c++ {
		bridge(lasts[c], firsts[c+1])
	}
	if ring && k > 2 {
		bridge(lasts[k-1], firsts[0])
	}
	return g
}
