package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func set(idsIn ...uint32) map[ident.NodeID]bool {
	out := make(map[ident.NodeID]bool, len(idsIn))
	for _, v := range idsIn {
		out[ident.NodeID(v)] = true
	}
	return out
}

func TestAddRemoveEdgeNode(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge must be undirected")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("edge not removed")
	}
	g.RemoveNode(2)
	if g.HasNode(2) || g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Fatal("node removal incomplete")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 1)
	if g.NumEdges() != 0 {
		t.Fatal("self loop should be ignored")
	}
}

func TestLineDistances(t *testing.T) {
	g := Line(5)
	if d := g.Dist(1, 5); d != 4 {
		t.Fatalf("Dist(1,5) = %d", d)
	}
	if d := g.Dist(2, 2); d != 0 {
		t.Fatalf("Dist(2,2) = %d", d)
	}
	g.RemoveEdge(3, 4)
	if d := g.Dist(1, 5); d != Infinity {
		t.Fatalf("Dist across cut = %d", d)
	}
}

func TestDistWithinRestrictsRelays(t *testing.T) {
	// 1-2-3 and 1-4-3: excluding 2 forces the longer... here same length;
	// excluding both 2 and 4 disconnects.
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	g.AddEdge(4, 3)
	if d := g.DistWithin(1, 3, set(1, 2, 3)); d != 2 {
		t.Fatalf("DistWithin = %d", d)
	}
	if d := g.DistWithin(1, 3, set(1, 3)); d != Infinity {
		t.Fatalf("DistWithin no relay = %d", d)
	}
}

func TestInducedDiameterAndConnectivity(t *testing.T) {
	g := Line(6)
	if d := g.InducedDiameter(g.NodeSet()); d != 5 {
		t.Fatalf("diameter = %d", d)
	}
	if d := g.InducedDiameter(set(1, 2, 3)); d != 2 {
		t.Fatalf("induced diameter = %d", d)
	}
	if d := g.InducedDiameter(set(1, 3)); d != Infinity {
		t.Fatal("disconnected induced subgraph must be Infinity")
	}
	if d := g.InducedDiameter(set(4)); d != 0 {
		t.Fatalf("singleton diameter = %d", d)
	}
	if d := g.InducedDiameter(nil); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
	if !g.InducedConnected(set(2, 3, 4)) || g.InducedConnected(set(1, 6)) {
		t.Fatal("InducedConnected wrong")
	}
}

func TestGenerators(t *testing.T) {
	if g := Ring(6); g.NumEdges() != 6 || g.Diameter() != 3 {
		t.Fatalf("ring: %v diam=%d", g, g.Diameter())
	}
	if g := Grid(3, 4); g.NumNodes() != 12 || g.Diameter() != 5 {
		t.Fatalf("grid: %v diam=%d", g, g.Diameter())
	}
	if g := Star(5); g.Diameter() != 2 || g.Degree(1) != 4 {
		t.Fatalf("star wrong")
	}
	if g := Complete(5); g.NumEdges() != 10 || g.Diameter() != 1 {
		t.Fatalf("complete wrong")
	}
	if g := Line(1); !g.Connected() || g.Diameter() != 0 {
		t.Fatalf("singleton line wrong")
	}
}

func TestClustersGadget(t *testing.T) {
	// 3 cliques of 3, direct bridges, chained: connected, and the cliques
	// are diameter-1 blobs.
	g := Clusters(3, 3, 0, false)
	if !g.Connected() {
		t.Fatal("chain of clusters must be connected")
	}
	if g.NumNodes() != 9 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if d := g.InducedDiameter(set(1, 2, 3)); d != 1 {
		t.Fatalf("clique diameter = %d", d)
	}
	// Ring variant adds the closing bridge.
	gr := Clusters(3, 3, 0, true)
	if gr.NumEdges() != g.NumEdges()+1 {
		t.Fatal("ring must add exactly one bridge edge")
	}
	// Bridged variant inserts relay nodes.
	gb := Clusters(2, 2, 2, false)
	if gb.NumNodes() != 6 { // 2*2 + 2 relays
		t.Fatalf("bridged n = %d", gb.NumNodes())
	}
	if d := gb.Dist(2, 3); d != 3 {
		t.Fatalf("bridge length wrong: %d", d)
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a := RandomGeometric(30, 10, 3, rand.New(rand.NewSource(7)))
	b := RandomGeometric(30, 10, 3, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Fatal("same seed must give same graph")
	}
	c := RandomGeometric(30, 10, 3, rand.New(rand.NewSource(8)))
	if a.Equal(c) {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

func TestConnectedRandomGeometric(t *testing.T) {
	g := ConnectedRandomGeometric(25, 10, 5, rand.New(rand.NewSource(1)), 50)
	if g == nil || !g.Connected() {
		t.Fatal("should find a connected instance with generous range")
	}
	if g2 := ConnectedRandomGeometric(30, 1000, 0.1, rand.New(rand.NewSource(1)), 3); g2 != nil {
		t.Fatal("hopeless parameters should return nil")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := Grid(3, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone must equal original")
	}
	c.RemoveEdge(1, 2)
	if g.Equal(c) || !g.HasEdge(1, 2) {
		t.Fatal("clone must be independent")
	}
}

func TestQuickBFSTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(15, 10, 4, rng)
		nodes := g.Nodes()
		for a := 0; a < 5; a++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			w := nodes[rng.Intn(len(nodes))]
			duv, dvw, duw := g.Dist(u, v), g.Dist(v, w), g.Dist(u, w)
			if duv == Infinity || dvw == Infinity {
				continue
			}
			if duw > duv+dvw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInducedDiameterMonotone(t *testing.T) {
	// Removing nodes from the allowed set can only increase (or keep)
	// pairwise restricted distances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(12, 10, 5, rng)
		all := g.NodeSet()
		sub := make(map[ident.NodeID]bool)
		for v := range all {
			if rng.Intn(3) > 0 {
				sub[v] = true
			}
		}
		for u := range sub {
			for v := range sub {
				if g.DistWithin(u, v, sub) < g.DistWithin(u, v, all) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomGeometric(20, 10, 4, rng)
	buf := make([]ident.NodeID, 0, 8)
	buf = append(buf, 999) // pre-existing content must survive
	got := g.AppendNodes(buf)
	if got[0] != 999 {
		t.Fatal("AppendNodes clobbered the caller's prefix")
	}
	want := g.Nodes()
	if len(got)-1 != len(want) {
		t.Fatalf("AppendNodes len = %d, want %d", len(got)-1, len(want))
	}
	for i, v := range want {
		if got[i+1] != v {
			t.Fatalf("AppendNodes[%d] = %v, want %v", i, got[i+1], v)
		}
	}
	for _, v := range want {
		nb := g.AppendNeighbors(v, got[:0])
		wantNb := g.Neighbors(v)
		if len(nb) != len(wantNb) {
			t.Fatalf("AppendNeighbors(%v) len = %d, want %d", v, len(nb), len(wantNb))
		}
		for i := range nb {
			if nb[i] != wantNb[i] {
				t.Fatalf("AppendNeighbors(%v) = %v, want %v", v, nb, wantNb)
			}
		}
	}
	if nb := g.AppendNeighbors(12345, nil); len(nb) != 0 {
		t.Fatalf("AppendNeighbors of absent node = %v", nb)
	}
}
