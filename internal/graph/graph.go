// Package graph provides the static-graph substrate: adjacency storage,
// BFS distances, induced-subgraph diameters and connectivity — everything
// the Dynamic Group Service specification (ΠA, ΠS, ΠM, ΠT) is defined
// against — plus generators for the topologies used by the experiments.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/ident"
)

// Infinity is the distance reported between unreachable node pairs
// (d(u,v) = +∞ in the paper).
const Infinity = int(^uint(0) >> 1)

// G is an undirected graph over NodeIDs. The zero value is an empty graph.
// Directed (asymmetric) links are modeled at the radio layer; the
// specification predicates all use the symmetric graph.
type G struct {
	adj map[ident.NodeID]map[ident.NodeID]bool
	gen uint64
}

// New returns an empty graph.
func New() *G {
	return &G{adj: make(map[ident.NodeID]map[ident.NodeID]bool)}
}

// Clone returns a deep copy of the graph.
func (g *G) Clone() *G {
	out := New()
	for v, nb := range g.adj {
		m := make(map[ident.NodeID]bool, len(nb))
		for u := range nb {
			m[u] = true
		}
		out.adj[v] = m
	}
	return out
}

// Generation returns a counter that increases on every mutation of the
// graph. Consumers that cache derived structures (e.g. the snapshot
// builder) key their caches on (pointer, generation) to detect in-place
// mutations such as the experiments' link cuts.
func (g *G) Generation() uint64 { return g.gen }

// AddNode ensures v exists (possibly isolated).
func (g *G) AddNode(v ident.NodeID) {
	g.gen++
	if g.adj[v] == nil {
		g.adj[v] = make(map[ident.NodeID]bool)
	}
}

// RemoveNode deletes v and all its incident edges.
func (g *G) RemoveNode(v ident.NodeID) {
	g.gen++
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	delete(g.adj, v)
}

// AddEdge inserts the undirected edge (u,v), creating the nodes if needed.
// Self-loops are ignored.
func (g *G) AddEdge(u, v ident.NodeID) {
	if u == v {
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *G) RemoveEdge(u, v ident.NodeID) {
	g.gen++
	if g.adj[u] != nil {
		delete(g.adj[u], v)
	}
	if g.adj[v] != nil {
		delete(g.adj[v], u)
	}
}

// HasNode reports whether v is in the graph.
func (g *G) HasNode(v ident.NodeID) bool { _, ok := g.adj[v]; return ok }

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *G) HasEdge(u, v ident.NodeID) bool { return g.adj[u][v] }

// Nodes returns all nodes in ascending order.
func (g *G) Nodes() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendNodes appends all nodes in ascending order to buf and returns the
// extended slice — the allocation-free variant of Nodes for callers that
// iterate every round and can recycle a buffer (obs, metrics).
func (g *G) AppendNodes(buf []ident.NodeID) []ident.NodeID {
	start := len(buf)
	for v := range g.adj {
		buf = append(buf, v)
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}

// NumNodes returns the node count.
func (g *G) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *G) NumEdges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// Neighbors returns v's neighbors in ascending order.
func (g *G) Neighbors(v ident.NodeID) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendNeighbors appends v's neighbors in ascending order to buf and
// returns the extended slice — the allocation-free variant of Neighbors
// for per-round hot paths.
func (g *G) AppendNeighbors(v ident.NodeID, buf []ident.NodeID) []ident.NodeID {
	start := len(buf)
	for u := range g.adj[v] {
		buf = append(buf, u)
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}

// ForEachNeighbor calls fn for every neighbor of v, in unspecified
// order — the zero-allocation iteration for order-insensitive hot paths
// (BFS frontiers, commutative set hashes). AppendNeighbors is the
// ordered variant.
func (g *G) ForEachNeighbor(v ident.NodeID, fn func(u ident.NodeID)) {
	for u := range g.adj[v] {
		fn(u)
	}
}

// Degree returns the number of neighbors of v.
func (g *G) Degree(v ident.NodeID) int { return len(g.adj[v]) }

// BFSFrom returns the distance from src to every reachable node, optionally
// restricted to the induced subgraph on `within` (nil means the whole
// graph). This realizes the paper's d_X(u,v) notion.
func (g *G) BFSFrom(src ident.NodeID, within map[ident.NodeID]bool) map[ident.NodeID]int {
	dist := make(map[ident.NodeID]int)
	if !g.HasNode(src) || (within != nil && !within[src]) {
		return dist
	}
	dist[src] = 0
	queue := []ident.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if within != nil && !within[u] {
				continue
			}
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Dist returns d(u,v) in the whole graph, or Infinity if unreachable.
func (g *G) Dist(u, v ident.NodeID) int {
	d := g.BFSFrom(u, nil)
	if dv, ok := d[v]; ok {
		return dv
	}
	return Infinity
}

// DistWithin returns d_X(u,v): the distance using only nodes of X as
// relays (u and v must be in X), or Infinity.
func (g *G) DistWithin(u, v ident.NodeID, x map[ident.NodeID]bool) int {
	d := g.BFSFrom(u, x)
	if dv, ok := d[v]; ok {
		return dv
	}
	return Infinity
}

// InducedDiameter returns the diameter of the subgraph induced by X
// (Infinity if the induced subgraph is disconnected; 0 for singletons or
// the empty set).
func (g *G) InducedDiameter(x map[ident.NodeID]bool) int {
	diam := 0
	for v := range x {
		d := g.BFSFrom(v, x)
		if len(d) != len(x) {
			return Infinity
		}
		for _, dv := range d {
			if dv > diam {
				diam = dv
			}
		}
	}
	return diam
}

// InducedConnected reports whether the subgraph induced by X is connected
// (true for the empty set and singletons).
func (g *G) InducedConnected(x map[ident.NodeID]bool) bool {
	for v := range x {
		return len(g.BFSFrom(v, x)) == len(x)
	}
	return true
}

// Connected reports whether the whole graph is connected.
func (g *G) Connected() bool {
	nodes := g.Nodes()
	if len(nodes) <= 1 {
		return true
	}
	return len(g.BFSFrom(nodes[0], nil)) == len(nodes)
}

// Diameter returns the diameter of the whole graph (Infinity when
// disconnected).
func (g *G) Diameter() int {
	set := make(map[ident.NodeID]bool, len(g.adj))
	for v := range g.adj {
		set[v] = true
	}
	return g.InducedDiameter(set)
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *G) Equal(o *G) bool {
	if len(g.adj) != len(o.adj) {
		return false
	}
	for v, nb := range g.adj {
		onb, ok := o.adj[v]
		if !ok || len(nb) != len(onb) {
			return false
		}
		for u := range nb {
			if !onb[u] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description.
func (g *G) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}

// Restrict returns the subgraph induced by the nodes keep accepts, as a
// deep copy in one pass (cheaper than Clone followed by RemoveNode per
// excluded node, which re-walks every excluded node's adjacency).
func (g *G) Restrict(keep func(ident.NodeID) bool) *G {
	out := New()
	for v, nb := range g.adj {
		if !keep(v) {
			continue
		}
		m := make(map[ident.NodeID]bool, len(nb))
		for u := range nb {
			if keep(u) {
				m[u] = true
			}
		}
		out.adj[v] = m
	}
	return out
}

// NodeSet returns the nodes of g as a set, the shape the induced-subgraph
// helpers take.
func (g *G) NodeSet() map[ident.NodeID]bool {
	out := make(map[ident.NodeID]bool, len(g.adj))
	for v := range g.adj {
		out[v] = true
	}
	return out
}
