// Package graph provides the static-graph substrate: adjacency storage,
// BFS distances, induced-subgraph diameters and connectivity — everything
// the Dynamic Group Service specification (ΠA, ΠS, ΠM, ΠT) is defined
// against — plus generators for the topologies used by the experiments.
//
// Storage is CSR-style: a node-index map plus per-node sorted flat
// neighbor slices. Bulk construction (FromEdges — the shape the spatial
// index's sharded build produces) lays every adjacency out in one shared
// arena; incremental mutation (AddEdge/RemoveEdge, the experiments' link
// cuts) edits the slices in place, falling back to a private copy when an
// arena-backed slice must grow. Compared to the previous map-of-maps
// representation this removes the per-node map allocations that dominated
// the per-tick graph rebuild at n=20000, makes neighbor iteration a
// cache-friendly slice scan in ascending order, and lets observers diff
// neighborhoods with a flat slice compare (NeighborsView).
package graph

import (
	"fmt"
	"slices"

	"repro/internal/ident"
)

// Infinity is the distance reported between unreachable node pairs
// (d(u,v) = +∞ in the paper).
const Infinity = int(^uint(0) >> 1)

// Edge is one undirected edge for bulk construction (FromEdges).
type Edge struct{ U, V ident.NodeID }

// G is an undirected graph over NodeIDs. The zero value is an empty graph.
// Directed (asymmetric) links are modeled at the radio layer; the
// specification predicates all use the symmetric graph.
type G struct {
	idx   map[ident.NodeID]int32 // node → slot
	nodes []ident.NodeID         // slot → node (insertion order)
	adj   [][]ident.NodeID       // slot → neighbors, ascending

	// sorted caches the ascending roster; rebuilt lazily after node
	// membership changes (edge mutations never invalidate it).
	sorted   []ident.NodeID
	sortedOK bool

	// sharedIdx marks idx/nodes as shared with another graph built over
	// the same roster (FromEdgesShared); any node mutation first takes a
	// private copy.
	sharedIdx bool

	// cowAdj marks the adjacency rows as shared with another graph
	// (ApplyDelta); any edge mutation first privatizes every row
	// (unshareAdj in delta.go).
	cowAdj bool

	edges int
	gen   uint64
}

// New returns an empty graph.
func New() *G {
	return &G{idx: make(map[ident.NodeID]int32)}
}

// FromEdges bulk-builds a graph over the given nodes and undirected
// edges in a single arena: degrees are counted, one flat neighbor array
// is allocated, and each node's segment is filled and sorted. Endpoints
// absent from nodes are added; self-loops and duplicate edges are
// ignored. This is the construction path of the spatial index's 64-shard
// fan-out — the result is identical for any permutation of edges.
func FromEdges(nodes []ident.NodeID, edges []Edge) *G {
	return FromEdgesShared(nil, nodes, edges)
}

// FromEdgesShared is FromEdges with one amortization: when prev is a
// graph whose slots were created over exactly this node sequence (the
// per-tick rebuild of a mobile world whose membership didn't change),
// the new graph shares prev's node index instead of rebuilding the map.
// Both graphs mark the roster shared and take a private copy before any
// later node mutation, so sharing is invisible to callers.
func FromEdgesShared(prev *G, nodes []ident.NodeID, edges []Edge) *G {
	g := &G{}
	if prev != nil && len(prev.nodes) == len(nodes) && slices.Equal(prev.nodes, nodes) {
		prev.sharedIdx = true
		g.idx = prev.idx
		g.nodes = prev.nodes
		g.adj = make([][]ident.NodeID, len(nodes))
		g.sharedIdx = true
	} else {
		g.idx = make(map[ident.NodeID]int32, len(nodes))
		for _, v := range nodes {
			g.ensure(v)
		}
	}
	for _, e := range edges {
		if e.U != e.V {
			g.ensure(e.U)
			g.ensure(e.V)
		}
	}
	deg := make([]int32, len(g.nodes))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[g.idx[e.U]]++
		deg[g.idx[e.V]]++
	}
	total := 0
	for _, d := range deg {
		total += int(d)
	}
	arena := make([]ident.NodeID, total)
	off := int32(0)
	for i, d := range deg {
		// Full slice expressions pin cap to the segment: a later AddEdge
		// that must grow this adjacency reallocates a private slice
		// instead of clobbering the next node's segment.
		g.adj[i] = arena[off : off : off+d]
		off += d
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		iu, iv := g.idx[e.U], g.idx[e.V]
		g.adj[iu] = append(g.adj[iu], e.V)
		g.adj[iv] = append(g.adj[iv], e.U)
	}
	for i := range g.adj {
		s := g.adj[i]
		slices.Sort(s)
		s = slices.Compact(s) // drop duplicate edges
		g.adj[i] = s
		g.edges += len(s)
	}
	g.edges /= 2
	return g
}

// ensure returns v's slot, creating it if needed (no generation bump —
// callers bump once per mutating API call).
func (g *G) ensure(v ident.NodeID) int32 {
	if i, ok := g.idx[v]; ok {
		return i
	}
	g.unshareIdx()
	if g.idx == nil {
		g.idx = make(map[ident.NodeID]int32)
	}
	i := int32(len(g.nodes))
	g.idx[v] = i
	g.nodes = append(g.nodes, v)
	g.adj = append(g.adj, nil)
	g.sortedOK = false
	return i
}

// unshareIdx takes a private copy of a roster shared via FromEdgesShared
// or ApplyDelta before the first node mutation. The sorted-roster cache
// may be shared too (ApplyDelta); it is detached rather than copied so the
// next roster() rebuild cannot scribble over the sibling's cache.
func (g *G) unshareIdx() {
	if !g.sharedIdx {
		return
	}
	idx := make(map[ident.NodeID]int32, len(g.idx))
	for v, i := range g.idx {
		idx[v] = i
	}
	g.idx = idx
	g.nodes = slices.Clone(g.nodes)
	g.sorted, g.sortedOK = nil, false
	g.sharedIdx = false
}

// Clone returns a deep copy of the graph.
func (g *G) Clone() *G {
	out := &G{
		idx:   make(map[ident.NodeID]int32, len(g.idx)),
		nodes: slices.Clone(g.nodes),
		adj:   make([][]ident.NodeID, len(g.adj)),
		edges: g.edges,
	}
	for v, i := range g.idx {
		out.idx[v] = i
	}
	for i, nb := range g.adj {
		if len(nb) > 0 {
			out.adj[i] = slices.Clone(nb)
		}
	}
	return out
}

// Generation returns a counter that increases on every mutation of the
// graph. Consumers that cache derived structures (e.g. the snapshot
// builder) key their caches on (pointer, generation) to detect in-place
// mutations such as the experiments' link cuts. Every mutating call
// (AddNode, RemoveNode, AddEdge, RemoveEdge) bumps it at least once,
// whether or not it changed the edge set; read-only calls never do.
func (g *G) Generation() uint64 { return g.gen }

// AddNode ensures v exists (possibly isolated).
func (g *G) AddNode(v ident.NodeID) {
	g.gen++
	g.ensure(v)
}

// RemoveNode deletes v and all its incident edges.
func (g *G) RemoveNode(v ident.NodeID) {
	g.gen++
	i, ok := g.idx[v]
	if !ok {
		return
	}
	g.unshareIdx()
	g.unshareAdj()
	for _, u := range g.adj[i] {
		g.dropHalf(g.idx[u], v)
		g.edges--
	}
	last := int32(len(g.nodes) - 1)
	if i != last {
		moved := g.nodes[last]
		g.nodes[i] = moved
		g.adj[i] = g.adj[last]
		g.idx[moved] = i
	}
	g.nodes = g.nodes[:last]
	g.adj[last] = nil
	g.adj = g.adj[:last]
	delete(g.idx, v)
	g.sortedOK = false
}

// dropHalf removes v from slot i's adjacency (which must contain it).
func (g *G) dropHalf(i int32, v ident.NodeID) {
	s := g.adj[i]
	k, _ := slices.BinarySearch(s, v)
	copy(s[k:], s[k+1:])
	g.adj[i] = s[:len(s)-1]
}

// AddEdge inserts the undirected edge (u,v), creating the nodes if needed.
// Self-loops are ignored.
func (g *G) AddEdge(u, v ident.NodeID) {
	if u == v {
		return
	}
	g.gen++
	g.unshareAdj()
	iu := g.ensure(u)
	iv := g.ensure(v)
	if !insertSorted(&g.adj[iu], v) {
		return
	}
	insertSorted(&g.adj[iv], u)
	g.edges++
}

// insertSorted inserts v into the ascending slice at *s, reporting
// whether it was absent.
func insertSorted(s *[]ident.NodeID, v ident.NodeID) bool {
	k, found := slices.BinarySearch(*s, v)
	if found {
		return false
	}
	*s = slices.Insert(*s, k, v)
	return true
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *G) RemoveEdge(u, v ident.NodeID) {
	g.gen++
	iu, ok := g.idx[u]
	if !ok {
		return
	}
	iv, ok := g.idx[v]
	if !ok {
		return
	}
	if _, found := slices.BinarySearch(g.adj[iu], v); !found {
		return
	}
	g.unshareAdj()
	g.dropHalf(iu, v)
	g.dropHalf(iv, u)
	g.edges--
}

// HasNode reports whether v is in the graph.
func (g *G) HasNode(v ident.NodeID) bool { _, ok := g.idx[v]; return ok }

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *G) HasEdge(u, v ident.NodeID) bool {
	i, ok := g.idx[u]
	if !ok {
		return false
	}
	_, found := slices.BinarySearch(g.adj[i], v)
	return found
}

// roster returns the cached ascending node slice (read-only).
func (g *G) roster() []ident.NodeID {
	if !g.sortedOK {
		g.sorted = append(g.sorted[:0], g.nodes...)
		slices.Sort(g.sorted)
		g.sortedOK = true
	}
	return g.sorted
}

// Nodes returns all nodes in ascending order (a fresh copy).
func (g *G) Nodes() []ident.NodeID {
	return slices.Clone(g.roster())
}

// AppendNodes appends all nodes in ascending order to buf and returns the
// extended slice — the allocation-free variant of Nodes for callers that
// iterate every round and can recycle a buffer (obs, metrics).
func (g *G) AppendNodes(buf []ident.NodeID) []ident.NodeID {
	return append(buf, g.roster()...)
}

// NumNodes returns the node count.
func (g *G) NumNodes() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *G) NumEdges() int { return g.edges }

// IndexOf returns v's dense internal index, in [0, NumNodes), or -1 when
// v is not in the graph. Indices are stable for the lifetime of one graph
// value (node removal recycles them, and a rebuilt graph renumbers), so
// callers may use them for graph-lifetime scratch arrays but must not
// carry them across a Generation change or to another graph.
func (g *G) IndexOf(v ident.NodeID) int32 {
	i, ok := g.idx[v]
	if !ok {
		return -1
	}
	return i
}

// NeighborsAt is NeighborsView by internal index (see IndexOf): the
// map-free adjacency access for index-based scans. i must be a valid
// index for this graph.
func (g *G) NeighborsAt(i int32) []ident.NodeID { return g.adj[i] }

// Neighbors returns v's neighbors in ascending order (a fresh copy).
func (g *G) Neighbors(v ident.NodeID) []ident.NodeID {
	i, ok := g.idx[v]
	if !ok {
		return nil
	}
	return slices.Clone(g.adj[i])
}

// NeighborsView returns v's neighbors in ascending order as a view of the
// graph's internal storage: zero-copy, read-only, valid until the next
// mutation of the graph. This is the flat-compare path incremental
// observers diff neighborhoods with.
func (g *G) NeighborsView(v ident.NodeID) []ident.NodeID {
	i, ok := g.idx[v]
	if !ok {
		return nil
	}
	return g.adj[i]
}

// AppendNeighbors appends v's neighbors in ascending order to buf and
// returns the extended slice — the allocation-free variant of Neighbors
// for per-round hot paths.
func (g *G) AppendNeighbors(v ident.NodeID, buf []ident.NodeID) []ident.NodeID {
	i, ok := g.idx[v]
	if !ok {
		return buf
	}
	return append(buf, g.adj[i]...)
}

// ForEachNeighbor calls fn for every neighbor of v, in ascending order —
// the zero-allocation iteration for hot paths (BFS frontiers, boundary
// scans).
func (g *G) ForEachNeighbor(v ident.NodeID, fn func(u ident.NodeID)) {
	i, ok := g.idx[v]
	if !ok {
		return
	}
	for _, u := range g.adj[i] {
		fn(u)
	}
}

// Degree returns the number of neighbors of v.
func (g *G) Degree(v ident.NodeID) int {
	i, ok := g.idx[v]
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// BFSFrom returns the distance from src to every reachable node, optionally
// restricted to the induced subgraph on `within` (nil means the whole
// graph). This realizes the paper's d_X(u,v) notion.
func (g *G) BFSFrom(src ident.NodeID, within map[ident.NodeID]bool) map[ident.NodeID]int {
	dist := make(map[ident.NodeID]int)
	if !g.HasNode(src) || (within != nil && !within[src]) {
		return dist
	}
	dist[src] = 0
	queue := []ident.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[g.idx[v]] {
			if within != nil && !within[u] {
				continue
			}
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Dist returns d(u,v) in the whole graph, or Infinity if unreachable.
func (g *G) Dist(u, v ident.NodeID) int {
	d := g.BFSFrom(u, nil)
	if dv, ok := d[v]; ok {
		return dv
	}
	return Infinity
}

// DistWithin returns d_X(u,v): the distance using only nodes of X as
// relays (u and v must be in X), or Infinity.
func (g *G) DistWithin(u, v ident.NodeID, x map[ident.NodeID]bool) int {
	d := g.BFSFrom(u, x)
	if dv, ok := d[v]; ok {
		return dv
	}
	return Infinity
}

// InducedDiameter returns the diameter of the subgraph induced by X
// (Infinity if the induced subgraph is disconnected; 0 for singletons or
// the empty set).
func (g *G) InducedDiameter(x map[ident.NodeID]bool) int {
	diam := 0
	for v := range x {
		d := g.BFSFrom(v, x)
		if len(d) != len(x) {
			return Infinity
		}
		for _, dv := range d {
			if dv > diam {
				diam = dv
			}
		}
	}
	return diam
}

// InducedConnected reports whether the subgraph induced by X is connected
// (true for the empty set and singletons).
func (g *G) InducedConnected(x map[ident.NodeID]bool) bool {
	for v := range x {
		return len(g.BFSFrom(v, x)) == len(x)
	}
	return true
}

// Connected reports whether the whole graph is connected.
func (g *G) Connected() bool {
	if len(g.nodes) <= 1 {
		return true
	}
	return len(g.BFSFrom(g.nodes[0], nil)) == len(g.nodes)
}

// Diameter returns the diameter of the whole graph (Infinity when
// disconnected).
func (g *G) Diameter() int {
	set := make(map[ident.NodeID]bool, len(g.nodes))
	for _, v := range g.nodes {
		set[v] = true
	}
	return g.InducedDiameter(set)
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *G) Equal(o *G) bool {
	if len(g.nodes) != len(o.nodes) || g.edges != o.edges {
		return false
	}
	for v, i := range g.idx {
		j, ok := o.idx[v]
		if !ok || !slices.Equal(g.adj[i], o.adj[j]) {
			return false
		}
	}
	return true
}

// String renders a compact description.
func (g *G) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}

// Restrict returns the subgraph induced by the nodes keep accepts, as a
// deep copy in one pass. The kept adjacencies are filtered into a single
// arena, so the restriction of a CSR graph is itself laid out flat.
func (g *G) Restrict(keep func(ident.NodeID) bool) *G {
	out := &G{idx: make(map[ident.NodeID]int32, len(g.nodes))}
	total := 0
	for i, v := range g.nodes {
		if keep(v) {
			out.ensure(v)
			total += len(g.adj[i])
		}
	}
	arena := make([]ident.NodeID, 0, total)
	for oi, v := range out.nodes {
		start := len(arena)
		for _, u := range g.adj[g.idx[v]] {
			if _, kept := out.idx[u]; kept {
				arena = append(arena, u)
			}
		}
		out.adj[oi] = arena[start:len(arena):len(arena)]
		out.edges += len(out.adj[oi])
	}
	out.edges /= 2
	return out
}

// NodeSet returns the nodes of g as a set, the shape the induced-subgraph
// helpers take.
func (g *G) NodeSet() map[ident.NodeID]bool {
	out := make(map[ident.NodeID]bool, len(g.nodes))
	for _, v := range g.nodes {
		out[v] = true
	}
	return out
}
