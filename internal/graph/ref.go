package graph

import (
	"slices"

	"repro/internal/ident"
)

// Ref is the build-internal reference implementation of the graph: the
// map-of-maps representation this package used before the CSR rewrite,
// retained verbatim as the differential oracle. The conformance and fuzz
// suites replay identical mutation sequences against a G and a Ref and
// assert every observable (nodes, neighbors, edges, BFS, induced
// diameters) agrees; it is not meant for production use.
type Ref struct {
	adj map[ident.NodeID]map[ident.NodeID]bool
}

// NewRef returns an empty reference graph.
func NewRef() *Ref {
	return &Ref{adj: make(map[ident.NodeID]map[ident.NodeID]bool)}
}

// AddNode ensures v exists.
func (g *Ref) AddNode(v ident.NodeID) {
	if g.adj[v] == nil {
		g.adj[v] = make(map[ident.NodeID]bool)
	}
}

// RemoveNode deletes v and all its incident edges.
func (g *Ref) RemoveNode(v ident.NodeID) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	delete(g.adj, v)
}

// AddEdge inserts the undirected edge (u,v); self-loops are ignored.
func (g *Ref) AddEdge(u, v ident.NodeID) {
	if u == v {
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *Ref) RemoveEdge(u, v ident.NodeID) {
	if g.adj[u] != nil {
		delete(g.adj[u], v)
	}
	if g.adj[v] != nil {
		delete(g.adj[v], u)
	}
}

// HasNode reports whether v is in the graph.
func (g *Ref) HasNode(v ident.NodeID) bool { _, ok := g.adj[v]; return ok }

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *Ref) HasEdge(u, v ident.NodeID) bool { return g.adj[u][v] }

// NumNodes returns the node count.
func (g *Ref) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Ref) NumEdges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// Nodes returns all nodes in ascending order.
func (g *Ref) Nodes() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Neighbors returns v's neighbors in ascending order.
func (g *Ref) Neighbors(v ident.NodeID) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// BFSFrom returns the distance from src to every reachable node,
// optionally restricted to the induced subgraph on within.
func (g *Ref) BFSFrom(src ident.NodeID, within map[ident.NodeID]bool) map[ident.NodeID]int {
	dist := make(map[ident.NodeID]int)
	if !g.HasNode(src) || (within != nil && !within[src]) {
		return dist
	}
	dist[src] = 0
	queue := []ident.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if within != nil && !within[u] {
				continue
			}
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// InducedDiameter returns the diameter of the subgraph induced by X
// (Infinity when disconnected, 0 for singletons and the empty set).
func (g *Ref) InducedDiameter(x map[ident.NodeID]bool) int {
	diam := 0
	for v := range x {
		d := g.BFSFrom(v, x)
		if len(d) != len(x) {
			return Infinity
		}
		for _, dv := range d {
			if dv > diam {
				diam = dv
			}
		}
	}
	return diam
}

// SameAs reports whether the reference graph and a CSR graph have
// identical node and edge sets — the oracle comparison.
func (g *Ref) SameAs(o *G) bool {
	if len(g.adj) != o.NumNodes() || g.NumEdges() != o.NumEdges() {
		return false
	}
	for v, nb := range g.adj {
		ov := o.NeighborsView(v)
		if !o.HasNode(v) || len(nb) != len(ov) {
			return false
		}
		for _, u := range ov {
			if !nb[u] {
				return false
			}
		}
	}
	return true
}
