package trace

import (
	"strings"
	"testing"
)

func sample() *Table {
	tb := NewTable("demo", "n", "Dmax", "rounds")
	tb.AddRow(10, 3, 42)
	tb.AddRow(100, 3, 123.4567)
	return tb
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "n", "Dmax", "rounds", "42", "123"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| n | Dmax | rounds |") || !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("markdown malformed:\n%s", out)
	}
}

func TestWriteTSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "n\tDmax") {
		t.Fatalf("tsv malformed:\n%s", b.String())
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(0.123456)
	if tb.Rows[0][0] != "0.123" {
		t.Fatalf("float format = %q", tb.Rows[0][0])
	}
}
