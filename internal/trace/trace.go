// Package trace provides the structured event log and table writers used
// by the experiment harness: experiments append typed rows; the writers
// emit aligned text tables (for the console and EXPERIMENTS.md) and TSV
// (for external plotting).
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTSV renders tab-separated values with a header row.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}
