// Package engine is the shared execution substrate under both drivers of
// the GRP reproduction: the deterministic phase-parallel scheduler that
// internal/sim wraps for every experiment, and the topology/membership
// abstractions the live goroutine runtime (internal/runtime) routes
// through.
//
// One Step is five phases:
//
//  1. advance   — the topology moves (mobility), on the global RNG stream;
//  2. build     — every node whose send timer fires assembles its
//     broadcast, fanned out over a worker pool;
//  3. arbitrate — the radio channel decides which receptions succeed, on
//     the global RNG stream;
//  4. deliver   — successful receptions are stored at the receivers,
//     fanned out over the worker pool;
//  5. compute   — every node whose compute timer fires runs the protocol
//     computation, fanned out over the worker pool.
//
// Parallelism is deterministic by construction (in the spirit of
// deterministic parallel frameworks such as Bobpp): node work is sharded
// by NodeID into a fixed number of shards (independent of the worker
// count), every shard is processed sequentially in a canonical order, and
// each shard owns a private RNG stream derived from the seed. Workers
// only ever race for *which* shard they process next, never for the order
// of effects inside a shard, and cross-shard effects (message delivery)
// are partitioned by receiver before the parallel phase starts. A fixed
// seed therefore yields bit-identical traces at any GOMAXPROCS and any
// Workers setting.
//
// Per-node bookkeeping is slot-indexed: the Roster assigns every member a
// stable dense slot for its lifetime (deterministically recycled on
// churn), the timer wheels carry (id, slot) entries, and the hot phases
// index the flat record table directly — the only ID→slot map probes left
// sit at the membership boundary and in delivery resolution, where the
// radio layer's ID-based contract meets the slot world.
//
// The compute phase is activity-driven: a node whose last executed round
// was provably a no-op (core.Node.RoundQuietness) and whose inbox since
// then is identical — tracked as per-sender (incarnation, message
// version) signatures maintained during delivery — replays the no-op in
// O(1) (core.Node.SkipQuietRound / SkipLonelyRound) instead of
// re-deriving it. Tick cost therefore tracks the active set, not the
// roster. Params.EagerCompute disables the skip; traces are bit-identical
// either way, which the conformance suite pins.
//
// Phases 2 and 5 read and write disjoint per-node state (core.Node is
// only ever touched by its own shard's worker; messages are immutable
// once built), so the fan-out needs no locks.
package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/metrics"
	"repro/internal/radio"
)

// NumShards is the fixed shard count node work is partitioned into. It is
// deliberately independent of Params.Workers and of GOMAXPROCS: per-shard
// state (RNG streams, canonical order) is what makes the parallel trace
// reproducible, so it must not change when the worker count does.
const NumShards = 64

// shardOf maps a node to its shard.
func shardOf(v ident.NodeID) int { return int(uint32(v) % NumShards) }

// ShardOf maps a node to its engine shard — exported for observers
// (internal/obs) that mirror the engine's deterministic fan-out.
func ShardOf(v ident.NodeID) int { return shardOf(v) }

// shardSeed derives shard s's private RNG seed from the run seed
// (splitmix64 finalizer, so neighboring shards get uncorrelated streams).
func shardSeed(seed int64, s int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(s+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Params configures a simulation run.
type Params struct {
	// Cfg is the protocol configuration (Dmax etc.).
	Cfg core.Config
	// Ts is the send period in ticks (τ2); default 1.
	Ts int
	// Tc is the compute period in ticks (τ1 ≥ τ2); default 2·Ts.
	Tc int
	// Channel is the radio model; default radio.Perfect.
	Channel radio.Channel
	// Jitter desynchronizes the nodes' timers with random phase offsets.
	Jitter bool
	// RandomizedSends redraws each node's next send instant after every
	// transmission (uniform in [1, Ts], so the mean period stays ≈ Ts/2
	// + 1): the CSMA-style backoff that makes the fair-channel hypothesis
	// hold on the collision channel — with fixed phases, two aligned
	// neighbors would collide deterministically forever.
	RandomizedSends bool
	// EagerCompute disables the activity-driven compute skip: every due
	// node runs its full Compute even when the round is provably a no-op.
	// The trace is bit-identical either way (the conformance suite pins
	// this); the flag exists for that differential proof and for
	// measuring the skip's effect.
	EagerCompute bool
	// DisableMemo disables only the content-aware second chance of the
	// skip predicate (the fixpoint memo, DESIGN.md §2i), leaving the
	// version-grained skip in place. Like EagerCompute the trace is
	// bit-identical either way — the flag exists for the differential
	// conformance proof of the memo and for measuring its effect.
	DisableMemo bool
	// Seed drives all randomness (mobility, channel, jitter, send
	// backoff). The same seed reproduces the same execution bit for bit
	// regardless of Workers.
	Seed int64
	// Workers sets the build/deliver/compute fan-out width; 0 or 1 runs
	// the phases inline (the sequential path), larger values use that
	// many goroutines. The trace is identical either way.
	Workers int
}

func (p *Params) normalize() {
	if p.Ts <= 0 {
		p.Ts = 1
	}
	if p.Tc <= 0 {
		p.Tc = 2 * p.Ts
	}
	if p.Tc < p.Ts {
		panic(fmt.Sprintf("engine: Tc (%d) must be ≥ Ts (%d)", p.Tc, p.Ts))
	}
	if p.Channel == nil {
		p.Channel = radio.Perfect{}
	}
}

// senderVer is one entry of a node's inbox signature: the identity of a
// delivered message without its content. A sender's broadcast is a pure
// function of its state version (core.Node.Version), and the incarnation
// generation disambiguates removed-and-readded nodes whose version
// counters restart — equal signatures therefore imply byte-identical
// buffered message sets. A signature mismatch is not the end of the
// skip decision: the fixpoint memo (DESIGN.md §2i) gives windows whose
// *content* the node has already proven harmless a second chance, keyed
// on digests of the buffered messages themselves rather than on these
// identity triples.
type senderVer struct {
	id  ident.NodeID
	gen uint64 // sender incarnation (engine membership generation at add)
	ver uint64 // sender state version the delivered broadcast was built at
}

// resolvedDelivery is one reception with the receiver record and message
// resolved on the coordinator, so the parallel deliver phase touches no
// shared maps.
type resolvedDelivery struct {
	to   *nodeRec
	msg  *core.Message
	from senderVer
}

// shardScratch is one shard's reusable per-tick buffers.
type shardScratch struct {
	txs     []radio.Tx
	bytes   int
	deliv   []resolvedDelivery
	ran     int                  // computes executed this tick
	skipped int                  // compute boundaries satisfied by the activity skip
	wakes   []introspect.WakeRec // per-shard wake ring segment (TraceWakes only)
}

// cachedMsg is one node's last built broadcast, valid while the node's
// state version is unchanged (a node's message is a pure function of its
// state, which only Compute and LoadState move — see core.Node.Version).
// At Tc = k·Ts this skips k−1 of every k message assemblies.
type cachedMsg struct {
	m    core.Message
	size int // EncodedSize, computed once per rebuild
	ver  uint64
}

// nodeRec consolidates the engine's per-node bookkeeping — the protocol
// node, its timer phase, the cached broadcast, the cached receiver set,
// the recycled fold arena and the activity-skip signature — into one
// slot-indexed record: the hot phases reach it by array index from the
// wheel entries, with no map probe at all. A record's mutable fields are
// only ever written by its own shard's worker (or by the coordinator
// between phases). Records are recycled in place when their slot is:
// identity-bearing fields reset on reuse, buffers keep their capacity.
type nodeRec struct {
	n   *core.Node
	id  ident.NodeID // ident.None marks a free slot
	gen uint64       // incarnation stamp (see senderVer)

	phase int

	cm cachedMsg

	recv      []ident.NodeID
	recvEpoch uint64

	// rowRef/rowMem validate recv against a RowTopology row: when the
	// topology serves the same row view (same backing array and length)
	// under an unchanged membership generation, recv is reused without
	// touching the topology's spatial index at all — the per-sender fast
	// path in a mostly-parked world, where delta graph rebuilds share
	// every untouched row. rowRef aliases read-only topology storage.
	rowRef []ident.NodeID
	rowMem uint64

	// bld is the node's recycled antlist fold arena: every Compute of this
	// record composes its ⊕ fold in here (core.Node.ComputeIn), so the
	// per-round list machinery allocates only when a list actually changes.
	bld antlist.Builder

	// Activity-skip state. pending is the inbox signature accumulated
	// since the last compute boundary (ascending by sender, last write
	// wins — mirroring core.Node.Receive); consumed is the signature the
	// last quiet round consumed. When the node's last round was quiet
	// (armed), its version unmoved since (fixVer), and pending equals
	// consumed, the next round provably reproduces itself and is skipped.
	// quiet caches that round's classification (it selects the replay
	// variant); holdExp is the boundary-memory horizon a QuietHeld replay
	// is licensed under — the skip stops one round short of the earliest
	// expiry, so the expiring round always runs in full.
	pending  []senderVer
	consumed []senderVer
	armed    bool
	quiet    core.Quietness
	holdExp  uint64
	fixVer   uint64

	// Fixpoint memo (DESIGN.md §2i): up to memoCap (state content digest,
	// read-masked inbox digest) pairs proven — by an executed Compute
	// that classified quiet — to reproduce the node's state. When the
	// exact signature check above fails, a memo hit on the *current*
	// content pair licenses the same O(1) replay, whether the node is
	// armed (its senders' versions moved but the content its compute can
	// read did not, or cycled back) or not (the node's own state content
	// cycled back to a proven configuration — the boundary re-probe
	// oscillation). A proof is a context-free mathematical fact about
	// (state content, readable inbox content) under this node's fixed
	// configuration, so the table survives state changes and is dropped
	// only on slot recycling; entries are kept most-recent-first, memoN
	// is the live count.
	//
	// stateDig caches StateDigest at version stateDigVer, refreshed after
	// every executed compute; the memo is consulted only while the
	// node's version still equals stateDigVer, which fences off every
	// external mutation path (LoadState, PoisonBoundary — both bump the
	// version) without the engine having to see it happen.
	memo        [memoCap]memoEnt
	memoN       int
	stateDig    uint64
	stateDigVer uint64

	// seeded marks that the node has computed at least once since this
	// slot incarnation — a compute on an unseeded record is attributed to
	// introspect.WakeFresh, every later one to the gate that broke the
	// skip check.
	seeded bool

	// Byzantine override (internal/fault). While lie is non-nil the node
	// broadcasts lie instead of its genuine message: the build phase
	// accounts lieSize bytes and the deliver phase resolves receptions to
	// (lie, lieVer). lieVer has the top bit set and comes from a global
	// monotone sequence, so it can never collide with a genuine state
	// version in a receiver's inbox signature — every installed lie is
	// treated as fresh traffic and wakes quiet receivers, exactly like a
	// real state change at the sender would. The node's own protocol state
	// keeps evolving honestly underneath.
	lie     *core.Message
	lieVer  uint64
	lieSize int
}

// memoCap bounds the per-node fixpoint memo. A settled boundary cycles
// through its whole hold/expiry/re-probe/re-reject loop — hold rounds,
// the debounce streak, and the quarantine countdown each contribute one
// distinct (state, inbox) content pair, and desynchronized neighbors
// (the expiry jitter staggers them on purpose) multiply the inbox
// variants — so the steady-state working set is the cycle length, not
// the two broadcast variants alone. Sixteen entries cover measured
// commuter-world cycles with slack at 256 bytes per node; LRU over a
// cyclic reference pattern degrades hard once the cycle exceeds the
// cap, so undersizing costs the whole hit rate, not a fraction of it.
const memoCap = 16

// memoEnt is one fixpoint proof: a node whose decision-relevant state
// content hashes to state provably reproduces that state when computing
// over an inbox whose content hashes to inbox.
type memoEnt struct {
	state uint64
	inbox uint64
}

// memoHit reports whether the memo holds a proof for (state, inbox) and
// refreshes its recency on a hit.
func (r *nodeRec) memoHit(state, inbox uint64) bool {
	for i := 0; i < r.memoN; i++ {
		if r.memo[i] == (memoEnt{state: state, inbox: inbox}) {
			ent := r.memo[i]
			copy(r.memo[1:i+1], r.memo[:i])
			r.memo[0] = ent
			return true
		}
	}
	return false
}

// memoStore records a fresh proof at the front, evicting the least
// recently used entry when the table is full.
func (r *nodeRec) memoStore(state, inbox uint64) {
	if r.memoHit(state, inbox) {
		return
	}
	if r.memoN < memoCap {
		r.memoN++
	}
	copy(r.memo[1:r.memoN], r.memo[:r.memoN-1])
	r.memo[0] = memoEnt{state: state, inbox: inbox}
}

// RemovedNode records one departure for the dirty report: the node's
// identity plus the slot it occupied. The slot may already be recycled by
// a later addition within the same window — consumers must treat it as
// "the slot this node held when it left", not as a live index.
type RemovedNode struct {
	ID   ident.NodeID
	Slot int32
}

// Engine is one running simulation.
type Engine struct {
	P     Params
	Topo  Topology
	Nodes map[ident.NodeID]*core.Node

	rng       *rand.Rand // global stream: topology + channel + jitter phases
	shardRNGs [NumShards]*rand.Rand
	tick      int

	// recs is the slot-indexed per-node bookkeeping (see nodeRec), indexed
	// by roster slot; Nodes remains the public protocol-node map,
	// maintained in lockstep.
	recs []nodeRec

	order     *Roster
	memberGen uint64

	sendWheel    *periodicWheel // fixed-phase sends (nil under RandomizedSends)
	sendOneshot  *oneshotWheel  // randomized sends (nil otherwise)
	computeWheel *periodicWheel

	scratch  [NumShards]shardScratch
	txsBuf   []radio.Tx
	delivBuf []radio.Delivery

	// Receiver-cache key: the per-record receiver sets are valid while
	// the topology graph (pointer + mutation generation) and the engine
	// membership stay put; any change bumps recvEpoch, invalidating every
	// record at once.
	recvG     *graph.G
	recvGen   uint64
	recvMem   uint64
	recvEpoch uint64

	snap metrics.SnapshotBuilder

	// Dirty-node reporting for incremental observers (obs.GroupTracker):
	// while enabled, the compute phase appends the slot of every node
	// whose Compute actually ran to its shard's list (shard-local, so the
	// parallel phase needs no locks; skipped no-op rounds are not
	// reported — they provably leave the view untouched), and membership
	// changes are recorded on the coordinator. DrainDirty hands the
	// accumulated report to the observer and resets it.
	dirtyOn       bool
	dirtyComputed [NumShards][]int32
	dirtyAdded    []ident.NodeID
	dirtyRemoved  []RemovedNode

	// lieSeq feeds the per-lie signature versions handed out by SetLie
	// (top bit set, strictly increasing — disjoint from genuine state
	// versions by construction).
	lieSeq uint64

	// reg is the flight recorder: deterministic per-phase counters (the
	// conformance suite pins them bit-identical at any worker count) plus
	// the separately-kept wall-clock phase timings. Always armed — the
	// steady-state cost is a handful of uncontended atomic adds per shard
	// per phase.
	reg *introspect.Registry

	// Wake tracing (TraceWakes): while enabled, the compute phase records
	// every attributed wake into its shard's ring segment and the
	// coordinator merges the segments shard-major into wakeRing — the same
	// recycled-report pattern as DrainDirty.
	traceWakes bool
	wakeRing   []introspect.WakeRec

	// lastDrops is the channel's cumulative drop count at the previous
	// sample, so the arbitrate phase can route per-tick deltas into the
	// registry (radio.DropCounter channels only).
	lastDrops uint64

	// phaseMark threads the wall-clock phase boundary across the split
	// tick (AdvancePhase → BuildPhase → FinishTick), so a distributed
	// caller interleaving transport work between the phases still gets
	// per-phase timings that cover only engine work.
	phaseMark time.Time

	// MessagesSent counts broadcasts; BytesSent their encoded sizes;
	// Deliveries successful receptions. ComputesRun counts protocol
	// computes executed; ComputesSkipped the compute boundaries satisfied
	// by the activity-driven skip instead.
	MessagesSent    int
	BytesSent       int
	Deliveries      int
	ComputesRun     int
	ComputesSkipped int
}

// New builds a simulation over the topology with one fresh GRP node per
// topology node.
func New(p Params, topo Topology) *Engine {
	p.normalize()
	e := &Engine{
		P:            p,
		Topo:         topo,
		Nodes:        make(map[ident.NodeID]*core.Node),
		rng:          rand.New(rand.NewSource(p.Seed)),
		order:        NewRoster(),
		computeWheel: newPeriodicWheel(p.Tc),
		recvEpoch:    1, // fresh records (epoch 0) start invalid
		reg:          introspect.NewRegistry(NumShards),
	}
	for s := range e.shardRNGs {
		e.shardRNGs[s] = rand.New(rand.NewSource(shardSeed(p.Seed, s)))
	}
	if p.RandomizedSends {
		e.sendOneshot = newOneshotWheel(p.Ts)
	} else {
		e.sendWheel = newPeriodicWheel(p.Ts)
	}
	// Spatial topologies rebuild their graph with the same worker width
	// as the engine's phases (the sharded build is deterministic at any
	// width, so this is purely a throughput knob).
	if st, ok := topo.(*SpatialTopology); ok && st.World.Workers == 0 {
		st.World.Workers = p.Workers
	}
	for _, v := range topo.Nodes() {
		e.addNode(v)
	}
	return e
}

// NewStatic is shorthand for a fixed-graph simulation.
func NewStatic(p Params, g *graph.G) *Engine {
	return New(p, &StaticTopology{G: g})
}

func (e *Engine) addNode(v ident.NodeID) {
	slot, _ := e.order.Add(v)
	e.memberGen++
	if int(slot) >= len(e.recs) {
		e.recs = append(e.recs, nodeRec{})
	}
	rec := &e.recs[slot]
	// Recycle the record in place: identity-bearing fields reset, buffers
	// (receiver cache, fold arena, signatures) keep their capacity.
	rec.n = core.NewNode(v, e.P.Cfg)
	rec.id = v
	rec.gen = e.memberGen
	rec.phase = 0
	rec.cm = cachedMsg{ver: ^uint64(0)} // no broadcast built yet
	rec.recv = rec.recv[:0]
	rec.recvEpoch = 0
	rec.rowRef = nil
	rec.rowMem = 0
	rec.pending = rec.pending[:0]
	rec.consumed = rec.consumed[:0]
	rec.armed, rec.quiet, rec.holdExp = false, core.QuietNone, 0
	rec.fixVer = 0
	rec.memoN = 0
	rec.stateDig, rec.stateDigVer = 0, 0
	rec.seeded = false
	rec.lie, rec.lieVer, rec.lieSize = nil, 0, 0
	e.Nodes[v] = rec.n
	if e.P.Jitter {
		rec.phase = e.rng.Intn(e.P.Tc)
	}
	ent := wheelEnt{id: v, slot: slot}
	if e.P.RandomizedSends {
		e.sendOneshot.schedule(ent, e.tick+e.shardRNGs[shardOf(v)].Intn(e.P.Ts))
	} else {
		e.sendWheel.add(ent, rec.phase)
	}
	e.computeWheel.add(ent, rec.phase)
	if e.dirtyOn {
		e.dirtyAdded = append(e.dirtyAdded, v)
	}
}

// AddNode introduces a fresh node mid-run (it must already be present in
// the topology, e.g. placed in the world or added to the static graph).
func (e *Engine) AddNode(v ident.NodeID) {
	if _, ok := e.Nodes[v]; ok {
		return
	}
	e.addNode(v)
}

// RemoveNode makes a node leave: it stops sending and computing, and its
// slot is freed for deterministic recycling. The caller removes it from
// the topology.
func (e *Engine) RemoveNode(v ident.NodeID) {
	slot, ok := e.order.Remove(v)
	if !ok {
		return
	}
	rec := &e.recs[slot]
	delete(e.Nodes, v)
	e.memberGen++
	if e.P.RandomizedSends {
		e.sendOneshot.removeEverywhere(v)
	} else {
		e.sendWheel.remove(v, rec.phase)
	}
	e.computeWheel.remove(v, rec.phase)
	rec.n = nil
	rec.id = ident.None
	rec.lie, rec.lieVer, rec.lieSize = nil, 0, 0
	if e.dirtyOn {
		e.dirtyRemoved = append(e.dirtyRemoved, RemovedNode{ID: v, Slot: slot})
	}
}

// SetLie arms a Byzantine override on member v: until ClearLie (or v's
// departure), every broadcast v's send timer emits carries m instead of
// v's genuine message, while v's own protocol state keeps evolving
// honestly from what it hears. m must be a well-formed Message with
// m.From == v (internal/fault forges them through a wire codec
// round-trip); the engine retains the pointer, so the caller must not
// mutate m afterwards — install a fresh message to change the lie.
//
// Like AddNode/RemoveNode, SetLie is a coordinator-side membership-layer
// mutation: it must be called between Steps (the fault injector applies
// it at round boundaries), never from inside a phase — that alignment is
// what keeps chaos traces bit-identical at any worker count. It reports
// whether v is currently a member.
func (e *Engine) SetLie(v ident.NodeID, m *core.Message) bool {
	slot := e.order.SlotOf(v)
	if slot < 0 {
		return false
	}
	if m.From != v {
		panic(fmt.Sprintf("engine: SetLie(%v) with message from %v", v, m.From))
	}
	e.lieSeq++
	rec := &e.recs[slot]
	rec.lie = m
	rec.lieVer = 1<<63 | e.lieSeq
	rec.lieSize = m.EncodedSize()
	return true
}

// ClearLie disarms v's Byzantine override; genuine broadcasts resume at
// v's next send. Like SetLie it must only be called between Steps.
func (e *Engine) ClearLie(v ident.NodeID) {
	if slot := e.order.SlotOf(v); slot >= 0 {
		rec := &e.recs[slot]
		rec.lie, rec.lieVer, rec.lieSize = nil, 0, 0
	}
}

// Lying reports whether v currently has a Byzantine override armed.
func (e *Engine) Lying(v ident.NodeID) bool {
	slot := e.order.SlotOf(v)
	return slot >= 0 && e.recs[slot].lie != nil
}

// TrackDirty enables dirty-node reporting. Observers call it once at
// attach time and then DrainDirty after every observation window; nodes
// that computed before tracking was enabled are not reported (a fresh
// observer must do one full sync on its first observation anyway).
func (e *Engine) TrackDirty() { e.dirtyOn = true }

// DrainDirty hands the dirty report accumulated since the previous drain
// to fn and resets it: computed holds, per engine shard, the slots of the
// nodes whose Compute actually ran (shard-major canonical order; a node
// computing k times appears k times; skipped no-op rounds are omitted —
// they leave the view untouched by construction), added the joining IDs
// and removed the departures with the slot each held, both in call order.
// The slices are only valid during fn.
func (e *Engine) DrainDirty(fn func(computed [NumShards][]int32, added []ident.NodeID, removed []RemovedNode)) {
	fn(e.dirtyComputed, e.dirtyAdded, e.dirtyRemoved)
	for s := range e.dirtyComputed {
		e.dirtyComputed[s] = e.dirtyComputed[s][:0]
	}
	e.dirtyAdded = e.dirtyAdded[:0]
	e.dirtyRemoved = e.dirtyRemoved[:0]
}

// Introspect returns the engine's flight recorder. It is always armed;
// every counter it serves is bit-identical at any worker count (the
// wall-clock phase timings, kept in the registry's separate section, are
// the one machine-dependent surface).
func (e *Engine) Introspect() *introspect.Registry { return e.reg }

// TraceWakes toggles per-node wake recording: while on, every executed
// compute appends a WakeRec (node, cause, offending sender) to a recycled
// ring drained with DrainWakes. The per-cause histogram counters are
// always on regardless; the ring exists for per-node traces
// (grpsoak -trace-wakes) and costs nothing while off.
func (e *Engine) TraceWakes(on bool) { e.traceWakes = on }

// DrainWakes hands the wake ring accumulated since the previous drain to
// fn and resets it (keeping capacity). Records are in shard-major
// canonical order per tick, ticks in order — bit-identical at any worker
// count. The slice is only valid during fn.
func (e *Engine) DrainWakes(fn func(wakes []introspect.WakeRec)) {
	fn(e.wakeRing)
	e.wakeRing = e.wakeRing[:0]
}

// Tick returns the current tick count.
func (e *Engine) Tick() int { return e.tick }

// Rand exposes the simulation's global RNG for workload builders that
// must stay in lockstep with the run's determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Order returns the current node population in ascending order (the
// roster's backing slice: read-only, valid until the next membership
// change).
func (e *Engine) Order() []ident.NodeID { return e.order.IDs() }

// SlotOf returns v's roster slot, or NoSlot when v is not a member —
// the ID→slot boundary for observers that mirror the engine's
// slot-indexed bookkeeping.
func (e *Engine) SlotOf(v ident.NodeID) int32 { return e.order.SlotOf(v) }

// IDAtSlot returns the member occupying slot s, or ident.None when the
// slot is free or out of range.
func (e *Engine) IDAtSlot(s int32) ident.NodeID {
	if s < 0 || int(s) >= len(e.recs) {
		return ident.None
	}
	return e.recs[s].id
}

// NodeAtSlot returns the protocol node at slot s, or nil when the slot is
// free or out of range.
func (e *Engine) NodeAtSlot(s int32) *core.Node {
	if s < 0 || int(s) >= len(e.recs) {
		return nil
	}
	return e.recs[s].n
}

// SlotCap returns the roster's slot table size: every live slot is below
// it, so slot-indexed observer arrays size themselves to it.
func (e *Engine) SlotCap() int { return e.order.SlotCap() }

// workers resolves the effective fan-out width.
func (e *Engine) workers() int {
	if e.P.Workers > NumShards {
		return NumShards
	}
	return e.P.Workers
}

// runShards applies fn to every shard: inline when Workers ≤ 1, else on a
// pool of Workers goroutines with a static shard-to-worker assignment.
// fn must only touch shard-local state (plus read-only shared state).
func (e *Engine) runShards(fn func(s int)) {
	w := e.workers()
	if w <= 1 {
		for s := 0; s < NumShards; s++ {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			for s := i; s < NumShards; s += w {
				fn(s)
			}
		}(i)
	}
	wg.Wait()
}

// pendingUpsert records one delivery in a record's inbox signature: one
// entry per sender, ascending by sender ID, last write wins — mirroring
// the last-wins semantics of core.Node.Receive, so two equal signatures
// imply byte-identical buffered message sets. The second result reports
// that the exact entry was already present, which by the same mirror
// property proves the inbox already buffers this very message as the
// sender's last — the caller can elide the store entirely (in a settled
// world, almost every delivery is such a repeat of an unchanged cached
// broadcast).
func pendingUpsert(p []senderVer, sv senderVer) ([]senderVer, bool) {
	i := sort.Search(len(p), func(i int) bool { return p[i].id >= sv.id })
	if i < len(p) && p[i].id == sv.id {
		if p[i] == sv {
			return p, true
		}
		p[i] = sv
		return p, false
	}
	p = append(p, senderVer{})
	copy(p[i+1:], p[i:])
	p[i] = sv
	return p, false
}

// ExternalDelivery is one reception injected by a distributed wrapper
// (internal/dist): a broadcast built by a remote engine, addressed to a
// local member. Gen and Ver identify the sender's incarnation and the
// state version the broadcast was built at — the same pair a local
// delivery carries in its inbox signature — so the activity skip and the
// repeat-elision work identically across the process boundary. Msg must
// be immutable for the duration of the tick (core.Node.ReceiveRef copies
// it into the inbox).
type ExternalDelivery struct {
	To   ident.NodeID
	From ident.NodeID
	Gen  uint64
	Ver  uint64
	Msg  *core.Message
}

// Step advances one tick through the five phases: advance topology, build
// due broadcasts, arbitrate the channel, deliver receptions, run due
// computes. It is exactly AdvancePhase + BuildPhase + FinishTick(nil);
// distributed callers invoke the three parts directly and exchange
// boundary traffic between BuildPhase and FinishTick.
func (e *Engine) Step() {
	e.AdvancePhase()
	e.BuildPhase()
	e.FinishTick(nil)
}

// AdvancePhase runs phase 1 of a tick: the topology moves on the global
// RNG stream. Distributed callers use the split form (AdvancePhase,
// BuildPhase, FinishTick); everyone else calls Step.
func (e *Engine) AdvancePhase() {
	// Phase 1: topology (global RNG stream). phaseMark threads the
	// wall-clock phase boundaries into the registry's non-deterministic
	// section — the deterministic counters below never see a clock.
	e.phaseMark = time.Now()
	e.Topo.Advance(e.rng)
	e.phaseMark = e.markPhase(introspect.PhaseAdvance, e.phaseMark)
}

// BuildPhase runs phase 2 of a tick: every member whose send timer fires
// assembles (or revalidates) its broadcast. It returns the merged
// transmission slate in canonical shard-major order — a read-only view
// of engine-owned storage, valid until the next BuildPhase. The slate is
// retained for FinishTick's arbitration; distributed callers read it to
// route boundary copies of due broadcasts to neighboring shards.
func (e *Engine) BuildPhase() []radio.Tx {
	now := e.phaseMark

	// Phase 2: build. The wheel hands each shard exactly its due senders
	// in canonical order; workers draw send backoffs from their shard's
	// private stream, so the draw sequence is independent of the worker
	// count. Broadcasts and receiver sets come from each node's
	// slot-indexed record: messages revalidate against the node's state
	// version, receiver sets against the epoch bumped below on any
	// (topology, membership) change.
	rower, _ := e.Topo.(RowTopology)
	g := e.Topo.Graph()
	if g != e.recvG || g.Generation() != e.recvGen || e.memberGen != e.recvMem {
		// Before invalidating every receiver cache, ask the topology which
		// rows the change could actually have touched: when the graph
		// advanced by exactly one delta step over an unchanged roster, only
		// the returned senders' records are demoted and the overwhelming
		// majority keeps its current epoch — the per-sender row check in
		// the shard loop below never even runs for them.
		dirty, ok := []ident.NodeID(nil), false
		if rower != nil && e.recvG != nil && e.memberGen == e.recvMem {
			dirty, ok = rower.RowsChanged(e.recvG)
		}
		if ok {
			demoted := uint64(0)
			for _, v := range dirty {
				if s := e.order.SlotOf(v); s >= 0 && e.recs[s].recvEpoch == e.recvEpoch {
					e.recs[s].recvEpoch--
					demoted++
				}
			}
			e.reg.Inc(introspect.CtrGraphDeltaRounds)
			e.reg.Add(introspect.CtrRecvRowDemotions, demoted)
		} else {
			e.recvEpoch++
			e.reg.Inc(introspect.CtrGraphFullRounds)
		}
		e.recvG, e.recvGen, e.recvMem = g, g.Generation(), e.memberGen
	}
	var due *shardBuckets
	if e.P.RandomizedSends {
		due = e.sendOneshot.take(e.tick)
	} else {
		due = e.sendWheel.due(e.tick)
	}
	e.runShards(func(s int) {
		sc := &e.scratch[s]
		sc.txs = sc.txs[:0]
		sc.bytes = 0
		// Shard-local accumulators, flushed to the shard's registry lane
		// once at the end: the hot loop pays plain integer adds only.
		var builds, cacheHits, recvHits, rowHits, rowRefills, rebuilds uint64
		for _, ent := range due[s] {
			rec := &e.recs[ent.slot]
			if rec.id != ent.id {
				continue // defensive: wheels are maintained on removal
			}
			if e.P.RandomizedSends {
				e.sendOneshot.schedule(ent, e.tick+1+e.shardRNGs[s].Intn(e.P.Ts))
			}
			if rec.recvEpoch == e.recvEpoch {
				recvHits++
			} else {
				// The receiver cache is stale on the coarse key (graph or
				// membership changed somewhere). Before re-deriving, try the
				// fine-grained row check: a RowTopology serving the very
				// same row under the same membership generation proves this
				// sender's receiver set is untouched.
				if row, ok := rowFor(rower, ent.id); ok {
					if rec.rowMem == e.memberGen && sameRow(rec.rowRef, row) {
						rowHits++
					} else {
						rowRefills++
						live := rec.recv[:0]
						for _, u := range row {
							if e.order.SlotOf(u) >= 0 {
								live = append(live, u)
							}
						}
						rec.recv = live
						rec.rowRef = row
						rec.rowMem = e.memberGen
					}
				} else {
					// Refill the record's recycled slice and drop dead nodes
					// in place. Reuse is safe: transmissions referencing the
					// old backing were consumed within their own tick.
					rebuilds++
					buf := e.Topo.AppendReceivers(ent.id, rec.recv[:0])
					live := buf[:0]
					for _, u := range buf {
						if e.order.SlotOf(u) >= 0 {
							live = append(live, u)
						}
					}
					rec.recv = live
					rec.rowRef = nil
				}
				rec.recvEpoch = e.recvEpoch
			}
			if rec.lie != nil {
				// A Byzantine liar transmits its forged frame instead of
				// assembling a genuine broadcast; the deliver phase below
				// resolves its receptions to the lie.
				sc.txs = append(sc.txs, radio.Tx{Sender: ent.id, Receivers: rec.recv})
				sc.bytes += rec.lieSize
				continue
			}
			if rec.cm.ver != rec.n.Version() {
				builds++
				m := rec.n.BuildMessage()
				rec.cm = cachedMsg{m: m, size: m.EncodedSize(), ver: rec.n.Version()}
			} else {
				cacheHits++
			}
			sc.txs = append(sc.txs, radio.Tx{Sender: ent.id, Receivers: rec.recv})
			sc.bytes += rec.cm.size
		}
		lane := e.reg.Shard(s)
		lane.Add(introspect.CtrMsgBuilds, builds)
		lane.Add(introspect.CtrMsgCacheHits, cacheHits)
		lane.Add(introspect.CtrRecvCacheHits, recvHits)
		lane.Add(introspect.CtrRecvRowHits, rowHits)
		lane.Add(introspect.CtrRecvRowRefills, rowRefills)
		lane.Add(introspect.CtrRecvRebuilds, rebuilds)
	})
	if e.P.RandomizedSends {
		e.sendOneshot.reset(e.tick)
	}

	// Merge the shard results in shard-major order — the canonical slot
	// order the channel sees, identical at any worker count.
	txs := e.txsBuf[:0]
	for s := range e.scratch {
		sc := &e.scratch[s]
		txs = append(txs, sc.txs...)
		e.MessagesSent += len(sc.txs)
		e.BytesSent += sc.bytes
		e.reg.Add(introspect.CtrMessagesSent, uint64(len(sc.txs)))
		e.reg.Add(introspect.CtrBytesSent, uint64(sc.bytes))
	}
	e.txsBuf = txs
	e.phaseMark = e.markPhase(introspect.PhaseBuild, now)
	return e.txsBuf
}

// BroadcastOf returns member v's current broadcast as the deliver phase
// would resolve it — the (version-validated) cached message, or the
// armed Byzantine lie — together with the (incarnation, version) pair
// its deliveries are signed with. ok is false when v is not a member or
// its send timer has not fired yet this run (no broadcast built). The
// message aliases engine-owned storage: it is valid until v's next
// rebuild and must not be mutated. Distributed wrappers call this after
// BuildPhase to encode boundary copies of due broadcasts.
func (e *Engine) BroadcastOf(v ident.NodeID) (m *core.Message, gen, ver uint64, ok bool) {
	slot := e.order.SlotOf(v)
	if slot < 0 {
		return nil, 0, 0, false
	}
	rec := &e.recs[slot]
	if rec.lie != nil {
		return rec.lie, rec.gen, rec.lieVer, true
	}
	if rec.cm.ver == ^uint64(0) {
		return nil, 0, 0, false
	}
	return &rec.cm.m, rec.gen, rec.cm.ver, true
}

// FinishTick runs phases 3–5 of a tick: arbitrate the channel over the
// slate BuildPhase produced, deliver the receptions (plus any externally
// injected ones), run due computes, and close the tick. ext carries
// cross-process receptions from a distributed wrapper; they join the
// local deliveries in the same partition-by-receiver-shard path,
// including the signature upkeep and the repeat-elision. Order between
// local and external deliveries is immaterial to the trace: receivers
// keep one last-write-wins buffer per sender and a sender transmits at
// most once per tick, so no receiver ever sees two deliveries from the
// same sender in one tick. Step is FinishTick(nil).
func (e *Engine) FinishTick(ext []ExternalDelivery) {
	now := e.phaseMark
	txs := e.txsBuf

	if len(txs) > 0 {
		// Phase 3: channel arbitration (global RNG stream, sequential),
		// through the recycled delivery buffer when the channel supports
		// it.
		if bc, ok := e.P.Channel.(radio.BufferedChannel); ok {
			e.delivBuf = bc.AppendDeliverSlot(txs, e.rng, e.delivBuf[:0])
		} else {
			e.delivBuf = append(e.delivBuf[:0], e.P.Channel.DeliverSlot(txs, e.rng)...)
		}
		// Route the channel's suppressed-delivery count into the registry
		// as a per-tick delta (drops only move inside DeliverSlot, so the
		// running total equals the channel's own cumulative counter).
		if dc, ok := e.P.Channel.(radio.DropCounter); ok {
			if d := dc.DroppedDeliveries(); d != e.lastDrops {
				e.reg.Add(introspect.CtrRadioDrops, d-e.lastDrops)
				e.lastDrops = d
			}
		}
		now = e.markPhase(introspect.PhaseArbitrate, now)
	} else {
		e.delivBuf = e.delivBuf[:0]
	}
	deliveries := e.delivBuf

	if len(txs) > 0 || len(ext) > 0 {
		// Phase 4: deliver. Receptions are partitioned by receiver shard
		// on the coordinator — with the receiver record and sender message
		// resolved up front (the two ID→slot probes here are the radio
		// contract's boundary) — then stored in parallel: each node's
		// inbox and signature are only ever touched by its own shard's
		// worker.
		for s := range e.scratch {
			e.scratch[s].deliv = e.scratch[s].deliv[:0]
		}
		delivs := uint64(0)
		for _, d := range deliveries {
			toSlot := e.order.SlotOf(d.To)
			if toSlot < 0 {
				continue
			}
			e.Deliveries++
			delivs++
			fromSlot := e.order.SlotOf(d.From)
			if fromSlot < 0 {
				// A channel implementation fabricated or replayed a
				// delivery from a sender that is no longer (or never was)
				// live: count it, deliver nothing — the pre-rewrite
				// message-cache lookup yielded a zero Message here, which
				// Receive dropped.
				continue
			}
			from := &e.recs[fromSlot]
			msg, ver := &from.cm.m, from.cm.ver
			if from.lie != nil {
				msg, ver = from.lie, from.lieVer
			}
			sc := &e.scratch[shardOf(d.To)]
			sc.deliv = append(sc.deliv, resolvedDelivery{
				to:   &e.recs[toSlot],
				msg:  msg,
				from: senderVer{id: d.From, gen: from.gen, ver: ver},
			})
		}
		// External receptions (distributed wrapper): the sender's record
		// lives in another process, so the (gen, ver) signature arrives
		// resolved; only the receiver is looked up locally. Appending
		// after the local partition keeps each scratch list single-writer;
		// within a shard the relative order is irrelevant (see above).
		for _, x := range ext {
			toSlot := e.order.SlotOf(x.To)
			if toSlot < 0 {
				continue
			}
			e.Deliveries++
			delivs++
			sc := &e.scratch[shardOf(x.To)]
			sc.deliv = append(sc.deliv, resolvedDelivery{
				to:   &e.recs[toSlot],
				msg:  x.Msg,
				from: senderVer{id: x.From, gen: x.Gen, ver: x.Ver},
			})
		}
		e.reg.Add(introspect.CtrDeliveries, delivs)
		e.runShards(func(s int) {
			var elided uint64
			for _, d := range e.scratch[s].deliv {
				if d.from.ver == ^uint64(0) {
					// An unbuilt broadcast (fabricated delivery) is a zero
					// Message that Receive drops; it never enters the
					// inbox, so it must not enter the signature either.
					d.to.n.ReceiveRef(d.msg)
					continue
				}
				var dup bool
				d.to.pending, dup = pendingUpsert(d.to.pending, d.from)
				if !dup {
					d.to.n.ReceiveRef(d.msg)
				} else {
					elided++
				}
			}
			e.reg.Shard(s).Add(introspect.CtrDeliveriesElided, elided)
		})
		now = e.markPhase(introspect.PhaseDeliver, now)
	}

	// Phase 5: compute, activity-driven. A node runs its full Compute
	// unless its last executed round was quiet (armed), its state version
	// is untouched since (fixVer — LoadState and any other external
	// mutation disarm via this), and the inbox signature of this window
	// equals the one the quiet round consumed — in which case the round
	// provably reproduces itself and is replayed in O(1). A signature that
	// differs in sender versions only gets a content-aware second chance
	// through the per-node fixpoint memo (DESIGN.md §2i).
	cdue := e.computeWheel.due(e.tick)
	e.runShards(func(s int) {
		sc := &e.scratch[s]
		sc.ran, sc.skipped = 0, 0
		sc.wakes = sc.wakes[:0]
		var skipFix, skipLonely, skipHeld, skipMemo uint64
		var wk [introspect.NumWakeCauses]uint64
		memoOn := !e.P.EagerCompute && !e.P.DisableMemo
		for _, ent := range cdue[s] {
			rec := &e.recs[ent.slot]
			if rec.id != ent.id {
				continue // defensive: wheels are maintained on removal
			}
			var preInbox uint64
			havePre := false
			if !e.P.EagerCompute {
				if rec.armed && rec.n.Version() == rec.fixVer &&
					(rec.quiet != core.QuietHeld || rec.n.Computes() < rec.holdExp) &&
					senderVersEqual(rec.pending, rec.consumed) {
					switch rec.quiet {
					case core.QuietLonely:
						rec.n.SkipLonelyRound()
						skipLonely++
					case core.QuietHeld:
						rec.n.SkipHeldRound()
						skipHeld++
					default:
						rec.n.SkipQuietRound()
						skipFix++
					}
					rec.fixVer = rec.n.Version()
					rec.pending = rec.pending[:0]
					sc.skipped++
					continue
				}
				// Content-aware second chance: the signature check failed —
				// sender versions moved, the sender set changed, or the
				// node's own last round was not quiet — but if the memo
				// holds a proof that this exact (state content, inbox
				// content) pair is a fixpoint, the round is a replay of a
				// round already executed: a re-probe cycle oscillating the
				// node (and its neighbors' broadcasts) through content it
				// has visited before. The version-stamp gate fences off
				// external state mutations (LoadState, PoisonBoundary bump
				// the version past stateDigVer), and the hold-horizon gate
				// keeps the replayed round's expiry filter a no-op — the
				// compute counter, which the replay advances exactly like a
				// real compute, can then never feed the expiry jitter: a
				// proven-quiet round rejects nobody, so the jitter hash is
				// unreachable (DESIGN.md §2i). The inbox digest is the
				// read-masked projection (core.Node.InboxReadDigest):
				// content only unread records carry — a double-marked
				// mover's ticking clock echoed through a border node's
				// broadcast — cannot break the match, and the equal state
				// digest pins the mask itself, because the tracked-ID set
				// it projects onto is part of the hashed state.
				if memoOn && rec.seeded && rec.n.Version() == rec.stateDigVer {
					if hh := rec.n.HoldHorizon(); hh == 0 || rec.n.Computes() < hh {
						preInbox, havePre = rec.n.InboxReadDigest(), true
						if rec.memoHit(rec.stateDig, preInbox) {
							if hh == 0 {
								rec.n.SkipQuietRound()
								rec.quiet = core.QuietFixpoint
							} else {
								rec.n.SkipHeldRound()
								rec.quiet = core.QuietHeld
								rec.holdExp = hh
							}
							// The replayed round consumed this window's
							// signature: swap it into consumed exactly as the
							// executed path does, and re-arm — follow-up
							// identical windows take the cheap path above.
							rec.armed = true
							rec.fixVer = rec.n.Version()
							rec.pending, rec.consumed = rec.consumed[:0], rec.pending
							skipMemo++
							sc.skipped++
							continue
						}
					}
				}
			}
			// Wake attribution: classify which gate of the skip check broke
			// before the compute disturbs the evidence. Every executed
			// compute gets exactly one cause, so the per-cause histogram
			// accounts for 100% of the computes run.
			cause, offender := classifyWake(rec)
			wk[cause]++
			if e.traceWakes {
				sc.wakes = append(sc.wakes, introspect.WakeRec{Node: ent.id, Cause: cause, Sender: offender})
			}
			// Non-probed rounds deliberately do not capture an inbox
			// digest for the memo: hashing the inbox of every executed
			// compute costs more than the memo returns (most runs are
			// self-active wakes that never produce a storable proof, and
			// the prover round that re-enters quiescence needs none — its
			// unchanged-window case is the signature skip's job). The memo
			// seeds itself on the first re-probe instead: that round's
			// probe above already paid for both digests, and when it
			// executes and proves quiet, the pair is stored below.
			rec.n.ComputeIn(&rec.bld)
			rec.seeded = true
			q := rec.n.RoundQuietness()
			if q != core.QuietNone {
				rec.pending, rec.consumed = rec.consumed[:0], rec.pending
				rec.armed = true
				rec.quiet = q
				if q == core.QuietHeld {
					rec.holdExp = rec.n.HoldHorizon()
				}
			} else {
				rec.armed = false
				rec.pending = rec.pending[:0]
			}
			rec.fixVer = rec.n.Version()
			// Fixpoint memo maintenance (skipped in the modes that never
			// read it): refresh the cached state digest — the compute may
			// have moved the state — and, when a *probed* round just proved
			// itself a fixpoint of the inbox whose digest the probe
			// captured, record the (state, inbox) content proof. Only
			// probed rounds store; the others hold no pre-compute inbox
			// digest and prove nothing worth one — lonely rounds move the
			// state (the isolation clock ticks), QuietNone rounds likewise,
			// and the first quiet round after real activity is the
			// signature skip's case until the window churns, at which point
			// the re-probe seeds the memo. A round that entered the too-far
			// contest read priorities the masked inbox digest does not
			// cover, so its proof would overclaim
			// (core.Node.RoundOverflowed). Stale proofs for content the
			// node has drifted away from stay in the table — they are
			// facts, not caches, and the boundary oscillation this memo
			// targets revisits them.
			if memoOn {
				rec.stateDig = rec.n.StateDigest()
				rec.stateDigVer = rec.n.Version()
				if havePre && (q == core.QuietFixpoint || q == core.QuietHeld) && !rec.n.RoundOverflowed() {
					rec.memoStore(rec.stateDig, preInbox)
				}
			}
			sc.ran++
			if e.dirtyOn {
				e.dirtyComputed[s] = append(e.dirtyComputed[s], ent.slot)
			}
		}
		lane := e.reg.Shard(s)
		lane.Add(introspect.CtrComputesRun, uint64(sc.ran))
		lane.Add(introspect.CtrComputesSkipped, uint64(sc.skipped))
		lane.Add(introspect.CtrSkipFixpoint, skipFix)
		lane.Add(introspect.CtrSkipLonely, skipLonely)
		lane.Add(introspect.CtrSkipHeld, skipHeld)
		lane.Add(introspect.CtrSkipMemo, skipMemo)
		for c, n := range wk {
			lane.Add(introspect.WakeCause(c).Counter(), n)
		}
	})
	for s := range e.scratch {
		e.ComputesRun += e.scratch[s].ran
		e.ComputesSkipped += e.scratch[s].skipped
		if e.traceWakes {
			e.wakeRing = append(e.wakeRing, e.scratch[s].wakes...)
		}
	}
	e.markPhase(introspect.PhaseCompute, now)
	e.reg.Inc(introspect.CtrTicks)

	e.tick++
}

// markPhase closes one wall-clock phase window: it accumulates the time
// since start into the registry's non-deterministic section and returns
// the new boundary instant.
func (e *Engine) markPhase(p introspect.Phase, start time.Time) time.Time {
	now := time.Now()
	e.reg.AddPhaseNs(p, now.Sub(start).Nanoseconds())
	return now
}

// classifyWake attributes an executed compute to the first skip-check
// gate that broke, in the predicate's own evaluation order. For the
// inbox-signature causes it also reports the first offending sender in
// signature (ascending ID) order: the node whose fresh traffic — or
// silence — woke this one. A compute with every gate intact (possible
// only under EagerCompute) is a quiet replay.
func classifyWake(rec *nodeRec) (introspect.WakeCause, ident.NodeID) {
	switch {
	case !rec.seeded:
		return introspect.WakeFresh, ident.None
	case !rec.armed:
		return introspect.WakeSelfActive, ident.None
	case rec.n.Version() != rec.fixVer:
		return introspect.WakeVersionBump, ident.None
	case rec.quiet == core.QuietHeld && rec.n.Computes() >= rec.holdExp:
		return introspect.WakeHoldExpiry, ident.None
	}
	// Version-only churn first: when the whole signature keeps the same
	// sender set (every id and incarnation pairwise equal) and only some
	// versions moved, the round is exactly the shape the fixpoint memo
	// covers — an executed compute here means the memo missed (or is
	// disabled; classification reads the signatures only, never the memo
	// table, so the histogram stays a pure deterministic function of the
	// trace in every mode). The whole signature must be checked before
	// the divergence walk below: stopping at the first differing version
	// would misread a later set change as version-only churn.
	p, c := rec.pending, rec.consumed
	if len(p) == len(c) {
		sameSet, firstVer := true, -1
		for i := range p {
			if p[i].id != c[i].id || p[i].gen != c[i].gen {
				sameSet = false
				break
			}
			if firstVer < 0 && p[i] != c[i] {
				firstVer = i
			}
		}
		if sameSet && firstVer >= 0 {
			return introspect.WakeMemoMiss, p[firstVer].id
		}
	}
	// Merge-walk the two sorted signatures for the first divergence: an
	// entry pending has that consumed lacks (or carries at a different
	// version) is fresh traffic; an entry only consumed has is a sender
	// gone silent (departure, movement, or a stopped broadcast).
	i, j := 0, 0
	for i < len(p) && j < len(c) {
		switch {
		case p[i].id == c[j].id:
			if p[i] != c[j] {
				return introspect.WakeInboxNew, p[i].id
			}
			i++
			j++
		case p[i].id < c[j].id:
			return introspect.WakeInboxNew, p[i].id
		default:
			return introspect.WakeInboxLost, c[j].id
		}
	}
	if i < len(p) {
		return introspect.WakeInboxNew, p[i].id
	}
	if j < len(c) {
		return introspect.WakeInboxLost, c[j].id
	}
	return introspect.WakeQuietReplay, ident.None
}

// rowFor fetches the receiver row view from a RowTopology, tolerating a
// topology that serves no rows (nil rower or a false return).
func rowFor(rower RowTopology, v ident.NodeID) ([]ident.NodeID, bool) {
	if rower == nil {
		return nil, false
	}
	return rower.ReceiverRow(v)
}

// sameRow reports whether two row views are the same storage: identical
// length and, when non-empty, identical backing. Rows are immutable once
// shared, so identity implies identical content.
func sameRow(a, b []ident.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// senderVersEqual reports whether two inbox signatures are identical.
func senderVersEqual(a, b []senderVer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StepTicks advances k ticks.
func (e *Engine) StepTicks(k int) {
	for i := 0; i < k; i++ {
		e.Step()
	}
}

// StepRound advances one full compute period (Tc ticks): every node sends
// at least Tc/Ts times and computes at least once — the fair-channel
// window τ1.
func (e *Engine) StepRound() { e.StepTicks(e.P.Tc) }

// Snapshot captures the current configuration for the metrics predicates.
// Only live protocol nodes contribute views. The view maps are fresh on
// every call (snapshots are routinely held across rounds); the restricted
// topology graph is served from the builder's cache and only re-derived
// when the topology or the membership actually changed — on a static
// topology this removes the per-round O(V+E) graph clone entirely.
func (e *Engine) Snapshot() metrics.Snapshot {
	views := make(map[ident.NodeID]map[ident.NodeID]bool, len(e.Nodes))
	for _, v := range e.order.IDs() {
		views[v] = e.Nodes[v].ViewSet()
	}
	return metrics.Snapshot{G: e.SnapshotGraph(), Views: views}
}

// SnapshotGraph returns the topology graph restricted to the live
// protocol nodes — the G half of Snapshot without materializing any view
// map. Incremental observers key their per-node neighborhood caches on
// its (pointer, generation) identity; like Snapshot's graph it is served
// from the builder's cache and replaced, never mutated, when the topology
// or the membership changes.
func (e *Engine) SnapshotGraph() *graph.G {
	return e.snap.Graph(e.Topo.Graph(), e.memberGen, func(v ident.NodeID) bool {
		_, ok := e.Nodes[v]
		return ok
	})
}

// RunUntilConverged steps whole rounds until the legitimacy predicate
// ΠA ∧ ΠS ∧ ΠM holds for `stable` consecutive rounds or maxRounds passes.
// It returns the number of rounds to first convergence and whether
// convergence was reached.
func (e *Engine) RunUntilConverged(maxRounds, stable int) (rounds int, ok bool) {
	if stable < 1 {
		stable = 1
	}
	streak := 0
	first := 0
	for r := 1; r <= maxRounds; r++ {
		e.StepRound()
		if e.Snapshot().Converged(e.P.Cfg.Dmax) {
			if streak == 0 {
				first = r
			}
			streak++
			if streak >= stable {
				return first, true
			}
		} else {
			streak = 0
		}
	}
	return maxRounds, false
}
