// Package engine is the shared execution substrate under both drivers of
// the GRP reproduction: the deterministic phase-parallel scheduler that
// internal/sim wraps for every experiment, and the topology/membership
// abstractions the live goroutine runtime (internal/runtime) routes
// through.
//
// One Step is five phases:
//
//  1. advance   — the topology moves (mobility), on the global RNG stream;
//  2. build     — every node whose send timer fires assembles its
//     broadcast, fanned out over a worker pool;
//  3. arbitrate — the radio channel decides which receptions succeed, on
//     the global RNG stream;
//  4. deliver   — successful receptions are stored at the receivers,
//     fanned out over the worker pool;
//  5. compute   — every node whose compute timer fires runs the protocol
//     computation, fanned out over the worker pool.
//
// Parallelism is deterministic by construction (in the spirit of
// deterministic parallel frameworks such as Bobpp): node work is sharded
// by NodeID into a fixed number of shards (independent of the worker
// count), every shard is processed sequentially in a canonical order, and
// each shard owns a private RNG stream derived from the seed. Workers
// only ever race for *which* shard they process next, never for the order
// of effects inside a shard, and cross-shard effects (message delivery)
// are partitioned by receiver before the parallel phase starts. A fixed
// seed therefore yields bit-identical traces at any GOMAXPROCS and any
// Workers setting.
//
// Phases 2 and 5 read and write disjoint per-node state (core.Node is
// only ever touched by its own shard's worker; messages are immutable
// once built), so the fan-out needs no locks.
package engine

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/radio"
)

// NumShards is the fixed shard count node work is partitioned into. It is
// deliberately independent of Params.Workers and of GOMAXPROCS: per-shard
// state (RNG streams, canonical order) is what makes the parallel trace
// reproducible, so it must not change when the worker count does.
const NumShards = 64

// shardOf maps a node to its shard.
func shardOf(v ident.NodeID) int { return int(uint32(v) % NumShards) }

// ShardOf maps a node to its engine shard — exported for observers
// (internal/obs) that mirror the engine's deterministic fan-out.
func ShardOf(v ident.NodeID) int { return shardOf(v) }

// shardSeed derives shard s's private RNG seed from the run seed
// (splitmix64 finalizer, so neighboring shards get uncorrelated streams).
func shardSeed(seed int64, s int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(s+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Params configures a simulation run.
type Params struct {
	// Cfg is the protocol configuration (Dmax etc.).
	Cfg core.Config
	// Ts is the send period in ticks (τ2); default 1.
	Ts int
	// Tc is the compute period in ticks (τ1 ≥ τ2); default 2·Ts.
	Tc int
	// Channel is the radio model; default radio.Perfect.
	Channel radio.Channel
	// Jitter desynchronizes the nodes' timers with random phase offsets.
	Jitter bool
	// RandomizedSends redraws each node's next send instant after every
	// transmission (uniform in [1, Ts], so the mean period stays ≈ Ts/2
	// + 1): the CSMA-style backoff that makes the fair-channel hypothesis
	// hold on the collision channel — with fixed phases, two aligned
	// neighbors would collide deterministically forever.
	RandomizedSends bool
	// Seed drives all randomness (mobility, channel, jitter, send
	// backoff). The same seed reproduces the same execution bit for bit
	// regardless of Workers.
	Seed int64
	// Workers sets the build/deliver/compute fan-out width; 0 or 1 runs
	// the phases inline (the sequential path), larger values use that
	// many goroutines. The trace is identical either way.
	Workers int
}

func (p *Params) normalize() {
	if p.Ts <= 0 {
		p.Ts = 1
	}
	if p.Tc <= 0 {
		p.Tc = 2 * p.Ts
	}
	if p.Tc < p.Ts {
		panic(fmt.Sprintf("engine: Tc (%d) must be ≥ Ts (%d)", p.Tc, p.Ts))
	}
	if p.Channel == nil {
		p.Channel = radio.Perfect{}
	}
}

// resolvedDelivery is one reception with the receiver and message
// resolved on the coordinator, so the parallel deliver phase touches no
// shared maps.
type resolvedDelivery struct {
	to  *core.Node
	msg *core.Message
}

// shardScratch is one shard's reusable per-tick buffers.
type shardScratch struct {
	txs   []radio.Tx
	bytes int
	deliv []resolvedDelivery
}

// cachedMsg is one node's last built broadcast, valid while the node's
// state version is unchanged (a node's message is a pure function of its
// state, which only Compute and LoadState move — see core.Node.Version).
// At Tc = k·Ts this skips k−1 of every k message assemblies.
type cachedMsg struct {
	m    core.Message
	size int // EncodedSize, computed once per rebuild
	ver  uint64
}

// nodeRec consolidates the engine's per-node bookkeeping — the protocol
// node, its timer phase, the cached broadcast, the cached receiver set and
// the recycled fold arena — into one record behind a single map lookup.
// The previous layout (separate phase / message-cache / receiver-cache
// maps) paid three map probes per sender per tick; the receiver cache is
// now invalidated in O(1) by an epoch stamp instead of clearing 64 shard
// maps. A record's mutable fields are only ever written by its own shard's
// worker (or by the coordinator between phases), exactly like the maps
// they replace — the builder in particular is only touched by the record's
// own Compute.
type nodeRec struct {
	n     *core.Node
	phase int

	cm cachedMsg

	recv      []ident.NodeID
	recvEpoch uint64

	// bld is the node's recycled antlist fold arena: every Compute of this
	// record composes its ⊕ fold in here (core.Node.ComputeIn), so the
	// per-round list machinery allocates only when a list actually changes.
	bld antlist.Builder
}

// Engine is one running simulation.
type Engine struct {
	P     Params
	Topo  Topology
	Nodes map[ident.NodeID]*core.Node

	rng       *rand.Rand // global stream: topology + channel + jitter phases
	shardRNGs [NumShards]*rand.Rand
	tick      int

	// recs is the consolidated per-node bookkeeping (see nodeRec); Nodes
	// remains the public protocol-node map, maintained in lockstep.
	recs map[ident.NodeID]*nodeRec

	order     *Roster
	memberGen uint64

	sendWheel    *periodicWheel // fixed-phase sends (nil under RandomizedSends)
	sendOneshot  *oneshotWheel  // randomized sends (nil otherwise)
	computeWheel *periodicWheel

	scratch  [NumShards]shardScratch
	txsBuf   []radio.Tx
	delivBuf []radio.Delivery

	// Receiver-cache key: the per-record receiver sets are valid while
	// the topology graph (pointer + mutation generation) and the engine
	// membership stay put; any change bumps recvEpoch, invalidating every
	// record at once.
	recvG     *graph.G
	recvGen   uint64
	recvMem   uint64
	recvEpoch uint64

	snap metrics.SnapshotBuilder

	// Dirty-node reporting for incremental observers (obs.GroupTracker):
	// while enabled, the compute phase appends every node that ran
	// Compute to its shard's list (shard-local, so the parallel phase
	// needs no locks), and membership changes are recorded on the
	// coordinator. DrainDirty hands the accumulated report to the
	// observer and resets it.
	dirtyOn       bool
	dirtyComputed [NumShards][]ident.NodeID
	dirtyAdded    []ident.NodeID
	dirtyRemoved  []ident.NodeID

	// MessagesSent counts broadcasts; BytesSent their encoded sizes;
	// Deliveries successful receptions.
	MessagesSent int
	BytesSent    int
	Deliveries   int
}

// New builds a simulation over the topology with one fresh GRP node per
// topology node.
func New(p Params, topo Topology) *Engine {
	p.normalize()
	e := &Engine{
		P:            p,
		Topo:         topo,
		Nodes:        make(map[ident.NodeID]*core.Node),
		recs:         make(map[ident.NodeID]*nodeRec),
		rng:          rand.New(rand.NewSource(p.Seed)),
		order:        NewRoster(),
		computeWheel: newPeriodicWheel(p.Tc),
		recvEpoch:    1, // fresh records (epoch 0) start invalid
	}
	for s := range e.shardRNGs {
		e.shardRNGs[s] = rand.New(rand.NewSource(shardSeed(p.Seed, s)))
	}
	if p.RandomizedSends {
		e.sendOneshot = newOneshotWheel(p.Ts)
	} else {
		e.sendWheel = newPeriodicWheel(p.Ts)
	}
	// Spatial topologies rebuild their graph with the same worker width
	// as the engine's phases (the sharded build is deterministic at any
	// width, so this is purely a throughput knob).
	if st, ok := topo.(*SpatialTopology); ok && st.World.Workers == 0 {
		st.World.Workers = p.Workers
	}
	for _, v := range topo.Nodes() {
		e.addNode(v)
	}
	return e
}

// NewStatic is shorthand for a fixed-graph simulation.
func NewStatic(p Params, g *graph.G) *Engine {
	return New(p, &StaticTopology{G: g})
}

func (e *Engine) addNode(v ident.NodeID) {
	rec := &nodeRec{n: core.NewNode(v, e.P.Cfg)}
	rec.cm.ver = ^uint64(0) // no broadcast built yet
	e.Nodes[v] = rec.n
	e.recs[v] = rec
	e.order.Add(v)
	e.memberGen++
	if e.P.Jitter {
		rec.phase = e.rng.Intn(e.P.Tc)
	}
	if e.P.RandomizedSends {
		e.sendOneshot.schedule(v, e.tick+e.shardRNGs[shardOf(v)].Intn(e.P.Ts))
	} else {
		e.sendWheel.add(v, rec.phase)
	}
	e.computeWheel.add(v, rec.phase)
	if e.dirtyOn {
		e.dirtyAdded = append(e.dirtyAdded, v)
	}
}

// AddNode introduces a fresh node mid-run (it must already be present in
// the topology, e.g. placed in the world or added to the static graph).
func (e *Engine) AddNode(v ident.NodeID) {
	if _, ok := e.Nodes[v]; ok {
		return
	}
	e.addNode(v)
}

// RemoveNode makes a node leave: it stops sending and computing. The
// caller removes it from the topology.
func (e *Engine) RemoveNode(v ident.NodeID) {
	rec, ok := e.recs[v]
	if !ok {
		return
	}
	delete(e.Nodes, v)
	delete(e.recs, v)
	e.order.Remove(v)
	e.memberGen++
	if e.P.RandomizedSends {
		e.sendOneshot.removeEverywhere(v)
	} else {
		e.sendWheel.remove(v, rec.phase)
	}
	e.computeWheel.remove(v, rec.phase)
	if e.dirtyOn {
		e.dirtyRemoved = append(e.dirtyRemoved, v)
	}
}

// TrackDirty enables dirty-node reporting. Observers call it once at
// attach time and then DrainDirty after every observation window; nodes
// that computed before tracking was enabled are not reported (a fresh
// observer must do one full sync on its first observation anyway).
func (e *Engine) TrackDirty() { e.dirtyOn = true }

// DrainDirty hands the dirty report accumulated since the previous drain
// to fn and resets it: computed holds, per engine shard, the nodes whose
// Compute ran (shard-major canonical order; a node computing k times
// appears k times), added and removed the membership changes in call
// order. The slices are only valid during fn.
func (e *Engine) DrainDirty(fn func(computed [NumShards][]ident.NodeID, added, removed []ident.NodeID)) {
	fn(e.dirtyComputed, e.dirtyAdded, e.dirtyRemoved)
	for s := range e.dirtyComputed {
		e.dirtyComputed[s] = e.dirtyComputed[s][:0]
	}
	e.dirtyAdded = e.dirtyAdded[:0]
	e.dirtyRemoved = e.dirtyRemoved[:0]
}

// Tick returns the current tick count.
func (e *Engine) Tick() int { return e.tick }

// Rand exposes the simulation's global RNG for workload builders that
// must stay in lockstep with the run's determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Order returns the current node population in ascending order (the
// roster's backing slice: read-only, valid until the next membership
// change).
func (e *Engine) Order() []ident.NodeID { return e.order.IDs() }

// workers resolves the effective fan-out width.
func (e *Engine) workers() int {
	if e.P.Workers > NumShards {
		return NumShards
	}
	return e.P.Workers
}

// runShards applies fn to every shard: inline when Workers ≤ 1, else on a
// pool of Workers goroutines with a static shard-to-worker assignment.
// fn must only touch shard-local state (plus read-only shared state).
func (e *Engine) runShards(fn func(s int)) {
	w := e.workers()
	if w <= 1 {
		for s := 0; s < NumShards; s++ {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			for s := i; s < NumShards; s += w {
				fn(s)
			}
		}(i)
	}
	wg.Wait()
}

// Step advances one tick through the five phases: advance topology, build
// due broadcasts, arbitrate the channel, deliver receptions, run due
// computes.
func (e *Engine) Step() {
	// Phase 1: topology (global RNG stream).
	e.Topo.Advance(e.rng)

	// Phase 2: build. The wheel hands each shard exactly its due senders
	// in canonical order; workers draw send backoffs from their shard's
	// private stream, so the draw sequence is independent of the worker
	// count. Broadcasts and receiver sets come from each node's record:
	// messages revalidate against the node's state version, receiver sets
	// against the epoch bumped below on any (topology, membership) change.
	g := e.Topo.Graph()
	if g != e.recvG || g.Generation() != e.recvGen || e.memberGen != e.recvMem {
		e.recvEpoch++
		e.recvG, e.recvGen, e.recvMem = g, g.Generation(), e.memberGen
	}
	var due *shardBuckets
	if e.P.RandomizedSends {
		due = e.sendOneshot.take(e.tick)
	} else {
		due = e.sendWheel.due(e.tick)
	}
	e.runShards(func(s int) {
		sc := &e.scratch[s]
		sc.txs = sc.txs[:0]
		sc.bytes = 0
		for _, v := range due[s] {
			rec, ok := e.recs[v]
			if !ok {
				continue
			}
			if e.P.RandomizedSends {
				e.sendOneshot.schedule(v, e.tick+1+e.shardRNGs[s].Intn(e.P.Ts))
			}
			if rec.recvEpoch != e.recvEpoch {
				// Refill the record's recycled slice and drop dead nodes
				// in place. Reuse is safe: transmissions referencing the
				// old backing were consumed within their own tick.
				buf := e.Topo.AppendReceivers(v, rec.recv[:0])
				live := buf[:0]
				for _, u := range buf {
					if _, alive := e.recs[u]; alive {
						live = append(live, u)
					}
				}
				rec.recv = live
				rec.recvEpoch = e.recvEpoch
			}
			if rec.cm.ver != rec.n.Version() {
				m := rec.n.BuildMessage()
				rec.cm = cachedMsg{m: m, size: m.EncodedSize(), ver: rec.n.Version()}
			}
			sc.txs = append(sc.txs, radio.Tx{Sender: v, Receivers: rec.recv})
			sc.bytes += rec.cm.size
		}
	})
	if e.P.RandomizedSends {
		e.sendOneshot.reset(e.tick)
	}

	// Merge the shard results in shard-major order — the canonical slot
	// order the channel sees, identical at any worker count.
	txs := e.txsBuf[:0]
	for s := range e.scratch {
		sc := &e.scratch[s]
		txs = append(txs, sc.txs...)
		e.MessagesSent += len(sc.txs)
		e.BytesSent += sc.bytes
	}
	e.txsBuf = txs

	if len(txs) > 0 {
		// Phase 3: channel arbitration (global RNG stream, sequential),
		// through the recycled delivery buffer when the channel supports
		// it.
		var deliveries []radio.Delivery
		if bc, ok := e.P.Channel.(radio.BufferedChannel); ok {
			e.delivBuf = bc.AppendDeliverSlot(txs, e.rng, e.delivBuf[:0])
			deliveries = e.delivBuf
		} else {
			deliveries = e.P.Channel.DeliverSlot(txs, e.rng)
		}

		// Phase 4: deliver. Receptions are partitioned by receiver shard
		// on the coordinator — with the receiver node and sender message
		// resolved up front — then stored in parallel: each node's inbox
		// is only ever touched by its own shard's worker, which no longer
		// probes any shared map.
		for s := range e.scratch {
			e.scratch[s].deliv = e.scratch[s].deliv[:0]
		}
		for _, d := range deliveries {
			to, ok := e.recs[d.To]
			if !ok {
				continue
			}
			e.Deliveries++
			from, ok := e.recs[d.From]
			if !ok {
				// A channel implementation fabricated or replayed a
				// delivery from a sender that is no longer (or never was)
				// live: count it, deliver nothing — the pre-rewrite
				// message-cache lookup yielded a zero Message here, which
				// Receive dropped.
				continue
			}
			sc := &e.scratch[shardOf(d.To)]
			sc.deliv = append(sc.deliv, resolvedDelivery{to: to.n, msg: &from.cm.m})
		}
		e.runShards(func(s int) {
			for _, d := range e.scratch[s].deliv {
				d.to.Receive(*d.msg)
			}
		})
	}

	// Phase 5: compute.
	cdue := e.computeWheel.due(e.tick)
	e.runShards(func(s int) {
		for _, v := range cdue[s] {
			if rec, ok := e.recs[v]; ok {
				rec.n.ComputeIn(&rec.bld)
				if e.dirtyOn {
					e.dirtyComputed[s] = append(e.dirtyComputed[s], v)
				}
			}
		}
	})

	e.tick++
}

// StepTicks advances k ticks.
func (e *Engine) StepTicks(k int) {
	for i := 0; i < k; i++ {
		e.Step()
	}
}

// StepRound advances one full compute period (Tc ticks): every node sends
// at least Tc/Ts times and computes at least once — the fair-channel
// window τ1.
func (e *Engine) StepRound() { e.StepTicks(e.P.Tc) }

// Snapshot captures the current configuration for the metrics predicates.
// Only live protocol nodes contribute views. The view maps are fresh on
// every call (snapshots are routinely held across rounds); the restricted
// topology graph is served from the builder's cache and only re-derived
// when the topology or the membership actually changed — on a static
// topology this removes the per-round O(V+E) graph clone entirely.
func (e *Engine) Snapshot() metrics.Snapshot {
	views := make(map[ident.NodeID]map[ident.NodeID]bool, len(e.Nodes))
	for _, v := range e.order.IDs() {
		views[v] = e.Nodes[v].ViewSet()
	}
	return metrics.Snapshot{G: e.SnapshotGraph(), Views: views}
}

// SnapshotGraph returns the topology graph restricted to the live
// protocol nodes — the G half of Snapshot without materializing any view
// map. Incremental observers key their per-node neighborhood caches on
// its (pointer, generation) identity; like Snapshot's graph it is served
// from the builder's cache and replaced, never mutated, when the topology
// or the membership changes.
func (e *Engine) SnapshotGraph() *graph.G {
	return e.snap.Graph(e.Topo.Graph(), e.memberGen, func(v ident.NodeID) bool {
		_, ok := e.Nodes[v]
		return ok
	})
}

// RunUntilConverged steps whole rounds until the legitimacy predicate
// ΠA ∧ ΠS ∧ ΠM holds for `stable` consecutive rounds or maxRounds passes.
// It returns the number of rounds to first convergence and whether
// convergence was reached.
func (e *Engine) RunUntilConverged(maxRounds, stable int) (rounds int, ok bool) {
	if stable < 1 {
		stable = 1
	}
	streak := 0
	first := 0
	for r := 1; r <= maxRounds; r++ {
		e.StepRound()
		if e.Snapshot().Converged(e.P.Cfg.Dmax) {
			if streak == 0 {
				first = r
			}
			streak++
			if streak >= stable {
				return first, true
			}
		} else {
			streak = 0
		}
	}
	return maxRounds, false
}
