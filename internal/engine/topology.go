package engine

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/space"
)

// Topology abstracts where messages can travel at the current instant.
// Both drivers share it: the deterministic engine advances it once per
// tick, the live runtime routes broadcasts through Receivers.
type Topology interface {
	// Advance moves the topology forward by one tick.
	Advance(rng *rand.Rand)
	// Graph returns the current symmetric communication graph.
	Graph() *graph.G
	// Receivers returns the nodes that can hear a broadcast from v. It
	// must be safe for concurrent read-only use (the build phase calls it
	// from several workers at once), and it must be coherent with Graph():
	// the receiver sets may only change together with the identity or
	// mutation generation of the graph Graph() returns. The engine caches
	// receiver sets on that key (a Receivers that drifted under an
	// unchanged graph could not be replayed deterministically anyway);
	// topologies whose vicinity changes every tick must, like
	// SpatialTopology, produce a fresh or generation-bumped graph in
	// Advance.
	Receivers(v ident.NodeID) []ident.NodeID
	// AppendReceivers appends the nodes that can hear a broadcast from v
	// to buf and returns the extended slice — the allocation-free variant
	// of Receivers the engine's build phase recycles its per-node
	// receiver buffers through. Same concurrency and coherence contract
	// as Receivers.
	AppendReceivers(v ident.NodeID, buf []ident.NodeID) []ident.NodeID
	// Nodes returns the current node population in ascending order.
	Nodes() []ident.NodeID
}

// RowTopology is an optional refinement of Topology: a topology whose
// receiver sets can be served as stable read-only slices ("rows") lets
// the engine skip the per-sender receiver re-derivation entirely when
// the row is identical — same backing array, same length — to the one
// the sender's cached receiver set was filtered from. Delta-incremental
// graph rebuilds share untouched rows between generations, so in a
// mostly-parked world almost every sender hits this cache even though
// the graph pointer changes every tick.
type RowTopology interface {
	// ReceiverRow returns the receiver set of v as a read-only view and
	// true, or (nil, false) when the topology cannot serve rows in its
	// current configuration (the caller must then fall back to
	// AppendReceivers). A (nil, true) return means v currently has no
	// receivers. The view must stay valid and immutable for as long as
	// the topology shares it, and must only be returned when row
	// identity implies receiver-set identity.
	ReceiverRow(v ident.NodeID) ([]ident.NodeID, bool)
	// RowsChanged returns (a superset of) the nodes whose receiver row
	// may differ between the graph since and the current Graph(), plus
	// true — or (nil, false) when no such delta record exists (full
	// rebuild, roster change, rows unservable). With a true return the
	// engine invalidates only the listed senders' receiver caches
	// instead of every record; correctness therefore requires that any
	// node absent from the slice has an identical row in both graphs.
	RowsChanged(since *graph.G) ([]ident.NodeID, bool)
}

// StaticTopology is a fixed graph (possibly mutated between ticks by the
// experiment itself, e.g. to inject a link cut).
type StaticTopology struct{ G *graph.G }

// Advance implements Topology (no motion).
func (t *StaticTopology) Advance(*rand.Rand) {}

// Graph implements Topology.
func (t *StaticTopology) Graph() *graph.G { return t.G }

// Receivers implements Topology: the graph's neighbors.
func (t *StaticTopology) Receivers(v ident.NodeID) []ident.NodeID { return t.G.Neighbors(v) }

// AppendReceivers implements Topology without allocating.
func (t *StaticTopology) AppendReceivers(v ident.NodeID, buf []ident.NodeID) []ident.NodeID {
	return t.G.AppendNeighbors(v, buf)
}

// Nodes implements Topology.
func (t *StaticTopology) Nodes() []ident.NodeID { return t.G.Nodes() }

// SpatialTopology animates a Euclidean world with a mobility model; the
// communication graph is recomputed from positions every tick — except
// when the mobility step moved nothing (stationary models, paused nodes,
// zero DT): the world's generation counter then doesn't advance, the
// cached graph is reused pointer-identical, and the engine's receiver
// cache (keyed on graph pointer + generation) stays hot.
type SpatialTopology struct {
	World *space.World
	Mob   mobility.Model
	// DT is the simulated time per tick fed to the mobility model.
	DT float64

	cached *graph.G
}

// NewSpatialTopology initializes the world with the mobility model's
// placement for the given nodes.
func NewSpatialTopology(w *space.World, mob mobility.Model, dt float64, nodes []ident.NodeID, rng *rand.Rand) *SpatialTopology {
	mob.Init(w, nodes, rng)
	t := &SpatialTopology{World: w, Mob: mob, DT: dt}
	t.cached = w.SymmetricGraph()
	return t
}

// Advance implements Topology. World.SymmetricGraph is cached on the
// world generation, so a step that moved no node costs O(1) and keeps
// the previous graph (and every cache keyed on it) intact.
func (t *SpatialTopology) Advance(rng *rand.Rand) {
	t.Mob.Step(t.World, t.DT, rng)
	t.cached = t.World.SymmetricGraph()
}

// Graph implements Topology.
func (t *SpatialTopology) Graph() *graph.G { return t.cached }

// Receivers implements Topology: the world's vicinity relation (which may
// be asymmetric; the protocol is in charge of symmetry detection).
func (t *SpatialTopology) Receivers(v ident.NodeID) []ident.NodeID { return t.World.Receivers(v) }

// AppendReceivers implements Topology without allocating.
func (t *SpatialTopology) AppendReceivers(v ident.NodeID, buf []ident.NodeID) []ident.NodeID {
	return t.World.AppendReceivers(v, buf)
}

// ReceiverRow implements RowTopology via the world's symmetric-graph row.
func (t *SpatialTopology) ReceiverRow(v ident.NodeID) ([]ident.NodeID, bool) {
	return t.World.ReceiverRow(v)
}

// RowsChanged implements RowTopology via the world's delta-rebuild record.
func (t *SpatialTopology) RowsChanged(since *graph.G) ([]ident.NodeID, bool) {
	return t.World.RowsChanged(since)
}

// Nodes implements Topology.
func (t *SpatialTopology) Nodes() []ident.NodeID { return t.World.Nodes() }
