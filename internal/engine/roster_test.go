package engine

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ident"
)

// TestRosterSlotLifecycle pins the slot discipline: dense hand-out,
// lowest-first recycling, stability for a member's lifetime.
func TestRosterSlotLifecycle(t *testing.T) {
	r := NewRoster()
	for i, v := range []ident.NodeID{10, 20, 30, 40} {
		s, fresh := r.Add(v)
		if !fresh || s != int32(i) {
			t.Fatalf("Add(%d) = (%d, %v), want (%d, true)", v, s, fresh, i)
		}
	}
	if s, fresh := r.Add(20); fresh || s != 1 {
		t.Fatalf("duplicate Add(20) = (%d, %v), want (1, false)", s, fresh)
	}
	// Free slots 2 and 0; the next adds must recycle 0 first, then 2.
	if s, ok := r.Remove(30); !ok || s != 2 {
		t.Fatalf("Remove(30) = (%d, %v)", s, ok)
	}
	if s, ok := r.Remove(10); !ok || s != 0 {
		t.Fatalf("Remove(10) = (%d, %v)", s, ok)
	}
	if s, _ := r.Add(50); s != 0 {
		t.Fatalf("first recycle got slot %d, want 0", s)
	}
	if s, _ := r.Add(60); s != 2 {
		t.Fatalf("second recycle got slot %d, want 2", s)
	}
	if s, _ := r.Add(70); s != 4 {
		t.Fatalf("exhausted free list should grow: got slot %d, want 4", s)
	}
	if r.SlotCap() != 5 {
		t.Fatalf("SlotCap = %d, want 5", r.SlotCap())
	}
	// Re-adding a removed member is a fresh lifetime: it need not get its
	// old slot back, only a valid one consistent with the lookups.
	if s, ok := r.Remove(50); !ok || s != 0 {
		t.Fatalf("Remove(50) = (%d, %v)", s, ok)
	}
	if s, fresh := r.Add(10); !fresh || s != 0 {
		t.Fatalf("re-Add(10) = (%d, %v), want recycled slot 0", s, fresh)
	}
	for _, v := range r.IDs() {
		if r.IDAt(r.SlotOf(v)) != v {
			t.Fatalf("slot table inconsistent for %d", v)
		}
	}
	if r.SlotOf(999) != NoSlot {
		t.Fatal("SlotOf on a non-member must be NoSlot")
	}
}

// TestRosterChurnStorm drives a large add/remove/re-add storm and checks
// the structural invariants after every operation: ids ascending, slot
// table dense (live slots + free slots = SlotCap), and both lookup
// directions consistent.
func TestRosterChurnStorm(t *testing.T) {
	r := NewRoster()
	rng := rand.New(rand.NewSource(42))
	live := map[ident.NodeID]bool{}
	check := func(op string) {
		ids := r.IDs()
		if len(ids) != len(live) || r.Len() != len(live) {
			t.Fatalf("%s: %d ids, want %d", op, len(ids), len(live))
		}
		for i, v := range ids {
			if i > 0 && ids[i-1] >= v {
				t.Fatalf("%s: ids not strictly ascending at %d", op, i)
			}
			if !live[v] {
				t.Fatalf("%s: %d in ids but not live", op, v)
			}
			s := r.SlotOf(v)
			if s < 0 || int(s) >= r.SlotCap() || r.IDAt(s) != v {
				t.Fatalf("%s: slot round-trip broken for %d (slot %d)", op, v, s)
			}
		}
		freeCnt := 0
		for s := int32(0); int(s) < r.SlotCap(); s++ {
			if r.IDAt(s) == ident.None {
				freeCnt++
			}
		}
		if freeCnt+len(live) != r.SlotCap() {
			t.Fatalf("%s: %d free + %d live != cap %d", op, freeCnt, len(live), r.SlotCap())
		}
	}
	for i := 0; i < 3000; i++ {
		v := ident.NodeID(rng.Intn(300) + 1)
		if live[v] && rng.Intn(2) == 0 {
			if _, ok := r.Remove(v); !ok {
				t.Fatalf("Remove(%d) claims absent", v)
			}
			delete(live, v)
			check("remove")
		} else {
			_, fresh := r.Add(v)
			if fresh == live[v] {
				t.Fatalf("Add(%d) fresh=%v but live=%v", v, fresh, live[v])
			}
			live[v] = true
			check("add")
		}
	}
}

// TestRosterRecyclingDeterministic replays one churn script against two
// independent rosters — mirroring how the sequential and the 4-worker
// engine drive membership from the coordinator — and asserts every slot
// assignment is identical: recycling is a deterministic function of the
// operation sequence alone.
func TestRosterRecyclingDeterministic(t *testing.T) {
	type op struct {
		add bool
		v   ident.NodeID
	}
	rng := rand.New(rand.NewSource(7))
	var script []op
	live := map[ident.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		v := ident.NodeID(rng.Intn(200) + 1)
		if live[v] && rng.Intn(2) == 0 {
			script = append(script, op{add: false, v: v})
			delete(live, v)
		} else {
			script = append(script, op{add: true, v: v})
			live[v] = true
		}
	}
	replay := func() []int32 {
		r := NewRoster()
		var slots []int32
		for _, o := range script {
			if o.add {
				s, _ := r.Add(o.v)
				slots = append(slots, s)
			} else {
				s, _ := r.Remove(o.v)
				slots = append(slots, s)
			}
		}
		return slots
	}
	a, b := replay(), replay()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: slot %d vs %d — recycling is not deterministic", i, a[i], b[i])
		}
	}
}

// FuzzRosterVsMapOracle pits the roster against a straightforward
// map-plus-sorted-free-list oracle on arbitrary op streams.
func FuzzRosterVsMapOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 130, 1, 2, 4})
	f.Add([]byte{5, 5, 133, 5, 133, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		r := NewRoster()
		oracle := map[ident.NodeID]int32{}
		var free []int32 // ascending
		next := int32(0)
		for _, b := range ops {
			v := ident.NodeID(b%128 + 1)
			if b >= 128 { // remove
				want, present := oracle[v]
				got, ok := r.Remove(v)
				if ok != present {
					t.Fatalf("Remove(%d): ok=%v oracle=%v", v, ok, present)
				}
				if !present {
					continue
				}
				if got != want {
					t.Fatalf("Remove(%d): slot %d, oracle %d", v, got, want)
				}
				delete(oracle, v)
				i := sort.Search(len(free), func(i int) bool { return free[i] >= want })
				free = append(free, 0)
				copy(free[i+1:], free[i:])
				free[i] = want
			} else { // add
				old, present := oracle[v]
				got, fresh := r.Add(v)
				if fresh == present {
					t.Fatalf("Add(%d): fresh=%v oracle present=%v", v, fresh, present)
				}
				if present {
					if got != old {
						t.Fatalf("duplicate Add(%d): slot %d, oracle %d", v, got, old)
					}
					continue
				}
				var want int32
				if len(free) > 0 {
					want, free = free[0], free[1:]
				} else {
					want = next
					next++
				}
				if got != want {
					t.Fatalf("Add(%d): slot %d, oracle %d", v, got, want)
				}
				oracle[v] = want
			}
		}
		// Final cross-check of both lookup directions and the order.
		ids := r.IDs()
		if len(ids) != len(oracle) {
			t.Fatalf("%d members, oracle %d", len(ids), len(oracle))
		}
		for i, v := range ids {
			if i > 0 && ids[i-1] >= v {
				t.Fatal("ids not strictly ascending")
			}
			if r.SlotOf(v) != oracle[v] || r.IDAt(oracle[v]) != v {
				t.Fatalf("lookup mismatch for %d", v)
			}
		}
	})
}
