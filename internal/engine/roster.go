package engine

import (
	"sort"

	"repro/internal/ident"
)

// Roster is an incrementally maintained, ascending-ordered node
// membership: the replacement for re-sorting the whole node set every
// time a canonical order is needed. Insertions and removals keep the
// slice sorted (O(n) memmove, but membership churn is rare next to the
// per-tick hot path, which only ever reads). It is not goroutine-safe;
// the engine mutates it only between phases and the live runtime guards
// it with the cluster lock.
type Roster struct {
	ids []ident.NodeID
	set map[ident.NodeID]bool
}

// NewRoster returns an empty roster.
func NewRoster() *Roster {
	return &Roster{set: make(map[ident.NodeID]bool)}
}

// Add inserts v keeping the order; it reports whether v was new.
func (r *Roster) Add(v ident.NodeID) bool {
	if r.set[v] {
		return false
	}
	r.set[v] = true
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= v })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = v
	return true
}

// Remove deletes v; it reports whether v was present.
func (r *Roster) Remove(v ident.NodeID) bool {
	if !r.set[v] {
		return false
	}
	delete(r.set, v)
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= v })
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return true
}

// Has reports membership.
func (r *Roster) Has(v ident.NodeID) bool { return r.set[v] }

// Len returns the member count.
func (r *Roster) Len() int { return len(r.ids) }

// IDs returns the members in ascending order. The slice is the roster's
// backing store: callers must not mutate it and must copy it if they keep
// it across an Add or Remove.
func (r *Roster) IDs() []ident.NodeID { return r.ids }
