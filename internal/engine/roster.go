package engine

import (
	"sort"

	"repro/internal/ident"
)

// NoSlot is the Roster's "not a member" slot value.
const NoSlot = int32(-1)

// Roster is the engine's membership structure: an incrementally
// maintained ascending node order fused with a stable dense slot
// allocator. Every member owns a small-int slot for its lifetime, so the
// per-tick hot paths (records, wheels, dirty reports, observer caches)
// index flat arrays instead of probing per-node maps; the only remaining
// ID→slot map probe sits at the membership boundary (SlotOf).
//
// Slot discipline: slots are handed out densely (0, 1, 2, …) and freed
// slots are recycled lowest-first. Membership only ever changes on the
// coordinator between phases, so the recycling order — and with it every
// slot assignment — is a deterministic function of the Add/Remove call
// sequence, independent of the worker count.
//
// It is not goroutine-safe; the engine mutates it only between phases and
// the live runtime guards it with the cluster lock.
type Roster struct {
	ids    []ident.NodeID         // ascending membership (canonical order)
	slots  map[ident.NodeID]int32 // membership + ID→slot, one invariant
	bySlot []ident.NodeID         // slot → ID; ident.None marks a free slot
	free   []int32                // min-heap of freed slots (lowest recycles first)
}

// NewRoster returns an empty roster.
func NewRoster() *Roster {
	return &Roster{slots: make(map[ident.NodeID]int32)}
}

// Add inserts v keeping the order and assigns it a slot (recycling the
// lowest freed one, else growing the table). It returns the slot and
// whether v was new; adding an existing member returns its current slot.
func (r *Roster) Add(v ident.NodeID) (int32, bool) {
	if s, ok := r.slots[v]; ok {
		return s, false
	}
	var s int32
	if len(r.free) > 0 {
		s = heapPop(&r.free)
	} else {
		s = int32(len(r.bySlot))
		r.bySlot = append(r.bySlot, ident.None)
	}
	r.bySlot[s] = v
	r.slots[v] = s
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= v })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = v
	return s, true
}

// Remove deletes v and frees its slot for recycling. It returns the freed
// slot and whether v was present.
func (r *Roster) Remove(v ident.NodeID) (int32, bool) {
	s, ok := r.slots[v]
	if !ok {
		return NoSlot, false
	}
	delete(r.slots, v)
	r.bySlot[s] = ident.None
	heapPush(&r.free, s)
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= v })
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return s, true
}

// Has reports membership.
func (r *Roster) Has(v ident.NodeID) bool { _, ok := r.slots[v]; return ok }

// SlotOf returns v's slot, or NoSlot when v is not a member.
func (r *Roster) SlotOf(v ident.NodeID) int32 {
	if s, ok := r.slots[v]; ok {
		return s
	}
	return NoSlot
}

// IDAt returns the member occupying slot s, or ident.None when the slot
// is free. s must be < SlotCap.
func (r *Roster) IDAt(s int32) ident.NodeID { return r.bySlot[s] }

// SlotCap returns the slot table size: every live slot is < SlotCap, so
// it is the length consumers size their slot-indexed arrays to.
func (r *Roster) SlotCap() int { return len(r.bySlot) }

// Len returns the member count.
func (r *Roster) Len() int { return len(r.ids) }

// IDs returns the members in ascending order. The slice is the roster's
// backing store: callers must not mutate it and must copy it if they keep
// it across an Add or Remove.
func (r *Roster) IDs() []ident.NodeID { return r.ids }

// heapPush / heapPop maintain the free list as a binary min-heap, so the
// lowest freed slot is always recycled first and the table stays dense
// under churn.
func heapPush(h *[]int32, x int32) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func heapPop(h *[]int32) int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l] < s[m] {
			m = l
		}
		if r < len(s) && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}
