package engine

import (
	"sort"

	"repro/internal/ident"
)

// The timer wheels replace the seed simulator's per-tick scan of every
// node ("is (tick+phase) mod T zero?") with O(1) bucket lookups: a tick
// reads exactly the nodes that are due, pre-partitioned by shard so the
// build and compute phases can hand each bucket list straight to its
// worker without sorting or re-slicing anything. Entries carry the node's
// roster slot alongside its ID, so the hot phases index the engine's
// slot-indexed record table directly instead of probing a map per due
// node.

// wheelEnt is one scheduled node: its identity plus its roster slot.
type wheelEnt struct {
	id   ident.NodeID
	slot int32
}

// shardBuckets holds one wheel slot's due nodes, split by shard.
type shardBuckets [NumShards][]wheelEnt

// periodicWheel schedules fixed-period, fixed-phase timers (the Ts send
// timer and the Tc compute timer): a node with phase p and period T is
// due at every tick t with (t+p) mod T == 0, i.e. it lives permanently in
// slot (T - p mod T) mod T and slot (t mod T) is exactly the due set of
// tick t. Within a shard, buckets are kept in ascending node order, which
// fixes the canonical processing order independently of the worker count.
type periodicWheel struct {
	period int
	slots  []shardBuckets
}

func newPeriodicWheel(period int) *periodicWheel {
	return &periodicWheel{period: period, slots: make([]shardBuckets, period)}
}

func (w *periodicWheel) slotOf(phase int) int {
	return (w.period - phase%w.period) % w.period
}

// add registers v with the given timer phase.
func (w *periodicWheel) add(v wheelEnt, phase int) {
	b := &w.slots[w.slotOf(phase)][shardOf(v.id)]
	i := sort.Search(len(*b), func(i int) bool { return (*b)[i].id >= v.id })
	*b = append(*b, wheelEnt{})
	copy((*b)[i+1:], (*b)[i:])
	(*b)[i] = v
}

// remove deregisters v (phase must match the phase it was added with).
func (w *periodicWheel) remove(v ident.NodeID, phase int) {
	b := &w.slots[w.slotOf(phase)][shardOf(v)]
	i := sort.Search(len(*b), func(i int) bool { return (*b)[i].id >= v })
	if i < len(*b) && (*b)[i].id == v {
		*b = append((*b)[:i], (*b)[i+1:]...)
	}
}

// due returns the bucket of nodes due at tick t. The caller must treat it
// as read-only: the same bucket fires again period ticks later.
func (w *periodicWheel) due(t int) *shardBuckets {
	return &w.slots[t%w.period]
}

// oneshotWheel schedules single-fire timers up to `horizon` ticks ahead
// (the randomized send timer redraws its next instant after every
// transmission, never more than Ts ticks away, so horizon = Ts and the
// wheel needs Ts+1 slots for collisions to be impossible). Entries keep
// their scheduling order, which is deterministic: within one shard all
// scheduling happens sequentially, on the coordinator between phases or
// on the shard's own worker during the build phase.
type oneshotWheel struct {
	slots []shardBuckets
}

func newOneshotWheel(horizon int) *oneshotWheel {
	return &oneshotWheel{slots: make([]shardBuckets, horizon+1)}
}

// schedule arms v to fire at tick `at`. Only v's shard's bucket is
// touched, so concurrent schedule calls for different shards are safe.
func (w *oneshotWheel) schedule(v wheelEnt, at int) {
	b := &w.slots[at%len(w.slots)][shardOf(v.id)]
	*b = append(*b, v)
}

// take returns the bucket firing at tick t. The caller processes it
// (rescheduling entries at strictly later ticks, which land in other
// slots because the horizon is smaller than the slot count) and then
// calls reset(t).
func (w *oneshotWheel) take(t int) *shardBuckets {
	return &w.slots[t%len(w.slots)]
}

// reset clears the slot of tick t, retaining capacity.
func (w *oneshotWheel) reset(t int) {
	s := &w.slots[t%len(w.slots)]
	for i := range s {
		s[i] = s[i][:0]
	}
}

// removeEverywhere drops every pending entry for v (node removal).
func (w *oneshotWheel) removeEverywhere(v ident.NodeID) {
	sh := shardOf(v)
	for si := range w.slots {
		b := w.slots[si][sh]
		out := b[:0]
		for _, u := range b {
			if u.id != v {
				out = append(out, u)
			}
		}
		w.slots[si][sh] = out
	}
}
