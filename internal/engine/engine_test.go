package engine

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

// fingerprint renders a snapshot bit-exactly: every node's view in
// ascending order plus the topology's edge set.
func fingerprint(s metrics.Snapshot) string {
	b := make([]byte, 0, 512)
	for _, v := range s.G.Nodes() {
		b = strconv.AppendUint(b, uint64(v), 10)
		b = append(b, '>')
		for _, u := range s.G.Neighbors(v) {
			b = strconv.AppendUint(b, uint64(u), 10)
			b = append(b, ',')
		}
		b = append(b, '|')
		vw := s.Views[v]
		for _, u := range setToSorted(vw) {
			b = strconv.AppendUint(b, uint64(u), 10)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

func setToSorted(m map[ident.NodeID]bool) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for v := ident.NodeID(0); len(out) < len(m); v++ {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}

// scenario builds one run of the given worker width: a mobile spatial
// topology, a lossy channel, jitter and randomized sends all at once, so
// every RNG consumer (global stream and per-shard streams) is exercised,
// plus mid-run churn to cover the wheels' add/remove paths.
func scenario(workers int) []string {
	w := space.NewWorld(6)
	ids := make([]ident.NodeID, 14)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	topo := NewSpatialTopology(w, &mobility.Waypoint{Side: 14, SpeedMin: 0.5, SpeedMax: 2, Pause: 1},
		0.2, ids, rand.New(rand.NewSource(99)))
	e := New(Params{
		Cfg:             core.Config{Dmax: 3},
		Ts:              2,
		Tc:              4,
		Channel:         radio.Lossy{P: 0.2},
		Jitter:          true,
		RandomizedSends: true,
		Seed:            7,
		Workers:         workers,
	}, topo)
	var out []string
	for r := 1; r <= 30; r++ {
		e.StepRound()
		switch r {
		case 10:
			e.RemoveNode(3)
			w.Remove(3)
		case 18:
			w.Place(20, space.Point{X: 7, Y: 7})
			e.AddNode(20)
		}
		out = append(out, fingerprint(e.Snapshot()))
	}
	return out
}

// TestDeterministicAcrossWorkersAndProcs is the engine's core contract:
// the sequential path (Workers ≤ 1) and the parallel engine produce
// bit-identical per-round snapshots for the same seed, at GOMAXPROCS 1
// and 4 alike.
func TestDeterministicAcrossWorkersAndProcs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	want := scenario(1) // the sequential path
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 4, NumShards + 5} {
			got := scenario(workers)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("GOMAXPROCS=%d workers=%d: round %d diverges:\n seq: %s\n par: %s",
						procs, workers, r+1, want[r], got[r])
				}
			}
		}
	}
}

// TestParallelMatchesSequentialStatic pins the same contract on the
// static-topology fast path (no mobility, perfect channel, fixed phases)
// where the RNG is barely consumed and the wheels do all the scheduling.
func TestParallelMatchesSequentialStatic(t *testing.T) {
	run := func(workers int) []string {
		e := NewStatic(Params{Cfg: core.Config{Dmax: 4}, Seed: 3, Workers: workers}, graph.Line(30))
		var out []string
		for r := 0; r < 40; r++ {
			e.StepRound()
			out = append(out, fingerprint(e.Snapshot()))
		}
		return out
	}
	seq, par := run(1), run(4)
	for r := range seq {
		if seq[r] != par[r] {
			t.Fatalf("round %d diverges", r+1)
		}
	}
}

// TestEngineConvergesParallel sanity-checks that a parallel run still
// satisfies the legitimacy predicate (the protocol semantics survived the
// phase split).
func TestEngineConvergesParallel(t *testing.T) {
	e := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: 1, Workers: 4}, graph.Line(10))
	if _, ok := e.RunUntilConverged(400, 3); !ok {
		t.Fatalf("no convergence: %v", e.Snapshot().Groups())
	}
	if !e.Snapshot().Converged(3) {
		t.Fatal("snapshot not legitimate")
	}
}

// TestSnapshotCacheTracksMutation guards the incremental snapshot
// builder: a link cut in the static graph must be visible in the next
// snapshot while snapshots taken before the cut keep the old topology.
func TestSnapshotCacheTracksMutation(t *testing.T) {
	g := graph.Line(6)
	e := NewStatic(Params{Cfg: core.Config{Dmax: 4}, Seed: 1}, g)
	e.StepRound()
	before := e.Snapshot()
	if !before.G.HasEdge(3, 4) {
		t.Fatal("edge missing before cut")
	}
	mid := e.Snapshot()
	if mid.G != before.G {
		t.Fatal("unchanged topology should reuse the cached graph")
	}
	g.RemoveEdge(3, 4)
	after := e.Snapshot()
	if after.G.HasEdge(3, 4) {
		t.Fatal("cut not reflected in fresh snapshot")
	}
	if !before.G.HasEdge(3, 4) {
		t.Fatal("held snapshot was mutated by the cache rebuild")
	}
	e.RemoveNode(6)
	if e.Snapshot().G.HasNode(6) {
		t.Fatal("removed node still in snapshot graph")
	}
}

// TestWheelsMatchModuloScan cross-checks the timer wheels against the
// seed's per-node modulo formula over every phase and tick.
func TestWheelsMatchModuloScan(t *testing.T) {
	const period = 5
	w := newPeriodicWheel(period)
	phases := map[ident.NodeID]int{1: 0, 2: 1, 3: 4, 4: 0, 70: 3, 130: 3}
	for v, p := range phases {
		w.add(wheelEnt{id: v, slot: int32(v)}, p)
	}
	for tick := 0; tick < 3*period; tick++ {
		want := map[ident.NodeID]bool{}
		for v, p := range phases {
			if (tick+p)%period == 0 {
				want[v] = true
			}
		}
		got := map[ident.NodeID]bool{}
		for _, b := range w.due(tick) {
			for _, v := range b {
				got[v.id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("tick %d: due=%v want=%v", tick, got, want)
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("tick %d: missing %v", tick, v)
			}
		}
	}
	w.remove(70, phases[70])
	for _, b := range w.due(2) { // slot of phase 3 at period 5
		for _, v := range b {
			if v.id == 70 {
				t.Fatal("removed node still scheduled")
			}
		}
	}
}

func TestRosterOrder(t *testing.T) {
	r := NewRoster()
	for _, v := range []ident.NodeID{5, 1, 9, 3, 7} {
		r.Add(v)
	}
	r.Add(3) // duplicate
	r.Remove(9)
	want := []ident.NodeID{1, 3, 5, 7}
	ids := r.IDs()
	if len(ids) != len(want) {
		t.Fatalf("ids=%v", ids)
	}
	for i, v := range want {
		if ids[i] != v {
			t.Fatalf("ids=%v want=%v", ids, want)
		}
	}
	if r.Has(9) || !r.Has(7) || r.Len() != 4 {
		t.Fatal("membership bookkeeping broken")
	}
}

// TestSpatialAdvanceReusesGraphWhenStationary pins the moved-nothing fast
// path: with a stationary mobility model the world generation does not
// advance, Advance keeps the graph pointer-identical, and the engine's
// receiver cache key (graph pointer + generation) therefore stays hot.
func TestSpatialAdvanceReusesGraphWhenStationary(t *testing.T) {
	w := space.NewWorld(5)
	ids := []ident.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	topo := NewSpatialTopology(w, &mobility.Static{Side: 10}, 0.1, ids, rand.New(rand.NewSource(1)))
	e := New(Params{Cfg: core.Config{Dmax: 3}, Seed: 1}, topo)
	g0 := topo.Graph()
	gen0 := w.Generation()
	e.StepTicks(20)
	if topo.Graph() != g0 {
		t.Fatal("stationary advance must keep the cached graph pointer")
	}
	if w.Generation() != gen0 {
		t.Fatal("stationary advance must not bump the world generation")
	}
	if topo.Graph().Generation() != g0.Generation() {
		t.Fatal("graph mutation generation moved on a stationary world")
	}

	// A zero-DT mobile model is just as stationary.
	w2 := space.NewWorld(5)
	topo2 := NewSpatialTopology(w2, &mobility.Waypoint{Side: 10, SpeedMin: 1, SpeedMax: 2},
		0, ids, rand.New(rand.NewSource(1)))
	e2 := New(Params{Cfg: core.Config{Dmax: 3}, Seed: 1}, topo2)
	g0 = topo2.Graph()
	e2.StepTicks(20)
	if topo2.Graph() != g0 {
		t.Fatal("zero-DT advance must keep the cached graph pointer")
	}
}

// TestSpatialDeterminismWallsAsymmetry extends the determinism contract
// to the full spatial index: a large mobile world with obstacle walls and
// asymmetric TxRange overrides must produce bit-identical traces at any
// worker count (the sharded SymmetricGraph build runs with the engine's
// own fan-out width via engine.New).
func TestSpatialDeterminismWallsAsymmetry(t *testing.T) {
	run := func(workers int) []string {
		w := space.NewWorld(3)
		w.Walls = []space.Segment{
			{A: space.Point{X: 10, Y: 0}, B: space.Point{X: 10, Y: 30}},
			{A: space.Point{X: 0, Y: 15}, B: space.Point{X: 30, Y: 15}},
		}
		ids := make([]ident.NodeID, 150)
		for i := range ids {
			ids[i] = ident.NodeID(i + 1)
			if i%5 == 0 {
				w.SetTxRange(ids[i], 1.5+float64(i%7))
			}
		}
		topo := NewSpatialTopology(w, &mobility.Waypoint{Side: 30, SpeedMin: 0.5, SpeedMax: 3, Pause: 0.5},
			0.2, ids, rand.New(rand.NewSource(5)))
		e := New(Params{Cfg: core.Config{Dmax: 3}, Seed: 11, Workers: workers}, topo)
		var out []string
		for r := 0; r < 12; r++ {
			e.StepRound()
			out = append(out, fingerprint(e.Snapshot()))
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("workers=%d: round %d diverges", workers, r+1)
			}
		}
	}
}
