package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/introspect"
)

// Unit-level pins for the inbox-signature primitives. The conformance
// suite proves these end to end through whole-trace equality; these
// tests nail the boundary semantics directly so a regression names the
// broken primitive instead of a diverging round 37.

func sv(id ident.NodeID, gen, ver uint64) senderVer {
	return senderVer{id: id, gen: gen, ver: ver}
}

func TestPendingUpsert(t *testing.T) {
	var p []senderVer

	// Inserts keep ascending sender order regardless of arrival order.
	for _, s := range []senderVer{sv(5, 1, 10), sv(2, 1, 20), sv(9, 1, 30), sv(7, 1, 40)} {
		var dup bool
		p, dup = pendingUpsert(p, s)
		if dup {
			t.Fatalf("insert of %v reported duplicate", s)
		}
	}
	want := []senderVer{sv(2, 1, 20), sv(5, 1, 10), sv(7, 1, 40), sv(9, 1, 30)}
	if !senderVersEqual(p, want) {
		t.Fatalf("after inserts: %v, want %v", p, want)
	}

	// A duplicate sender overwrites in place — last write wins, like
	// core.Node.Receive keeps only the sender's last message — and the
	// slice neither grows nor reorders.
	p, dup := pendingUpsert(p, sv(5, 1, 11))
	if dup {
		t.Fatal("changed version reported as duplicate")
	}
	want[1] = sv(5, 1, 11)
	if !senderVersEqual(p, want) {
		t.Fatalf("after overwrite: %v, want %v", p, want)
	}

	// An exact repeat reports dup — the caller elides the Receive.
	p, dup = pendingUpsert(p, sv(5, 1, 11))
	if !dup {
		t.Fatal("exact repeat not reported as duplicate")
	}
	if !senderVersEqual(p, want) {
		t.Fatalf("repeat mutated the signature: %v", p)
	}

	// A new incarnation of a known sender is a fresh entry value, not a
	// duplicate: same ID, same version counter value, different gen.
	p, dup = pendingUpsert(p, sv(5, 2, 11))
	if dup {
		t.Fatal("new incarnation reported as duplicate")
	}
	want[1] = sv(5, 2, 11)
	if !senderVersEqual(p, want) {
		t.Fatalf("after incarnation bump: %v, want %v", p, want)
	}
}

func TestSenderVersEqual(t *testing.T) {
	base := []senderVer{sv(2, 1, 20), sv(5, 1, 10)}
	cases := []struct {
		name string
		b    []senderVer
		want bool
	}{
		{"identical", []senderVer{sv(2, 1, 20), sv(5, 1, 10)}, true},
		{"both empty", nil, false}, // vs base; see below for empty-empty
		{"shorter", []senderVer{sv(2, 1, 20)}, false},
		{"version moved", []senderVer{sv(2, 1, 21), sv(5, 1, 10)}, false},
		{"incarnation moved", []senderVer{sv(2, 2, 20), sv(5, 1, 10)}, false},
		{"sender swapped", []senderVer{sv(3, 1, 20), sv(5, 1, 10)}, false},
	}
	for _, c := range cases {
		if got := senderVersEqual(base, c.b); got != c.want {
			t.Errorf("%s: senderVersEqual = %v, want %v", c.name, got, c.want)
		}
	}
	if !senderVersEqual(nil, []senderVer{}) {
		t.Error("nil and empty signatures must be equal")
	}
}

// wakeRec builds a nodeRec in the armed, version-stable state where
// classifyWake reaches the signature walk.
func wakeRec(pending, consumed []senderVer) *nodeRec {
	rec := &nodeRec{n: core.NewNode(1, core.Config{Dmax: 3})}
	rec.seeded = true
	rec.armed = true
	rec.quiet = core.QuietFixpoint
	rec.fixVer = rec.n.Version()
	rec.pending = pending
	rec.consumed = consumed
	return rec
}

func TestClassifyWakeOffenders(t *testing.T) {
	t.Run("gates before the signature", func(t *testing.T) {
		rec := wakeRec(nil, nil)
		rec.seeded = false
		if c, _ := classifyWake(rec); c != introspect.WakeFresh {
			t.Fatalf("unseeded: %v", c)
		}
		rec = wakeRec(nil, nil)
		rec.armed = false
		if c, _ := classifyWake(rec); c != introspect.WakeSelfActive {
			t.Fatalf("unarmed: %v", c)
		}
		rec = wakeRec(nil, nil)
		rec.fixVer++
		if c, _ := classifyWake(rec); c != introspect.WakeVersionBump {
			t.Fatalf("version moved: %v", c)
		}
		rec = wakeRec(nil, nil)
		rec.quiet = core.QuietHeld
		rec.holdExp = rec.n.Computes() // horizon reached
		if c, _ := classifyWake(rec); c != introspect.WakeHoldExpiry {
			t.Fatalf("hold expired: %v", c)
		}
	})

	t.Run("version-only churn names the first mover", func(t *testing.T) {
		rec := wakeRec(
			[]senderVer{sv(2, 1, 20), sv(5, 1, 11), sv(9, 1, 31)},
			[]senderVer{sv(2, 1, 20), sv(5, 1, 10), sv(9, 1, 30)},
		)
		c, who := classifyWake(rec)
		if c != introspect.WakeMemoMiss || who != 5 {
			t.Fatalf("got (%v, %v), want (memo_miss, 5)", c, who)
		}
	})

	t.Run("incarnation swap is fresh traffic, not version churn", func(t *testing.T) {
		// Same sender set, same version values, one gen differs: a node
		// left and came back with a restarted counter. This must never
		// read as the memo-coverable shape.
		rec := wakeRec(
			[]senderVer{sv(2, 1, 20), sv(5, 2, 10)},
			[]senderVer{sv(2, 1, 20), sv(5, 1, 10)},
		)
		c, who := classifyWake(rec)
		if c != introspect.WakeInboxNew || who != 5 {
			t.Fatalf("got (%v, %v), want (inbox_new, 5)", c, who)
		}
	})

	t.Run("lost sender names the first offender", func(t *testing.T) {
		rec := wakeRec(
			[]senderVer{sv(2, 1, 20), sv(9, 1, 30)},
			[]senderVer{sv(2, 1, 20), sv(5, 1, 10), sv(9, 1, 30)},
		)
		c, who := classifyWake(rec)
		if c != introspect.WakeInboxLost || who != 5 {
			t.Fatalf("got (%v, %v), want (inbox_lost, 5)", c, who)
		}
		// Trailing loss: consumed has a suffix pending lacks.
		rec = wakeRec(
			[]senderVer{sv(2, 1, 20)},
			[]senderVer{sv(2, 1, 20), sv(9, 1, 30)},
		)
		c, who = classifyWake(rec)
		if c != introspect.WakeInboxLost || who != 9 {
			t.Fatalf("got (%v, %v), want (inbox_lost, 9)", c, who)
		}
	})

	t.Run("new sender beats a later version move", func(t *testing.T) {
		// The set changed (3 is new) *and* 9's version moved. The walk
		// must report the set change, not misread the window as
		// version-only churn.
		rec := wakeRec(
			[]senderVer{sv(2, 1, 20), sv(3, 1, 40), sv(9, 1, 31)},
			[]senderVer{sv(2, 1, 20), sv(5, 1, 10), sv(9, 1, 30)},
		)
		c, who := classifyWake(rec)
		if c != introspect.WakeInboxNew || who != 3 {
			t.Fatalf("got (%v, %v), want (inbox_new, 3)", c, who)
		}
	})

	t.Run("intact signature is a quiet replay", func(t *testing.T) {
		rec := wakeRec(
			[]senderVer{sv(2, 1, 20)},
			[]senderVer{sv(2, 1, 20)},
		)
		c, who := classifyWake(rec)
		if c != introspect.WakeQuietReplay || who != ident.None {
			t.Fatalf("got (%v, %v), want (quiet_replay, none)", c, who)
		}
	})
}
