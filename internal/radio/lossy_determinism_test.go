package radio_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

// TestLossyDrawsWorkerIndependent pins the determinism contract in
// Lossy's doc comment: channel arbitration runs sequentially on the
// coordinator over the engine's single global RNG stream, so the loss
// draws — and therefore the delivered set, the drop counter, and every
// node's state — are bit-identical at any Params.Workers setting.
func TestLossyDrawsWorkerIndependent(t *testing.T) {
	run := func(workers int) []string {
		w := space.NewWorld(3)
		ids := make([]ident.NodeID, 36)
		for i := range ids {
			ids[i] = ident.NodeID(i + 1)
		}
		topo := engine.NewSpatialTopology(w,
			&mobility.Waypoint{Side: 14, SpeedMin: 0.5, SpeedMax: 2, Pause: 1},
			0.2, ids, rand.New(rand.NewSource(4)))
		var drops uint64
		e := engine.New(engine.Params{
			Cfg:     core.Config{Dmax: 3},
			Channel: radio.Lossy{P: 0.3, Drops: &drops},
			Seed:    6,
			Workers: workers,
		}, topo)
		out := make([]string, 0, 80)
		for r := 1; r <= 80; r++ {
			e.StepRound()
			s := fmt.Sprintf("r%d msgs%d deliv%d drops%d", r,
				e.MessagesSent, e.Deliveries, drops)
			for _, v := range e.Order() {
				s += fmt.Sprintf("|%d:%v", v, e.Nodes[v].View())
			}
			out = append(out, s)
		}
		if drops == 0 {
			t.Fatal("Lossy{P:0.3} dropped nothing in 80 rounds — the test is vacuous")
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("workers=%d: round %d diverges:\n seq: %s\n par: %s",
					workers, r+1, want[r], got[r])
			}
		}
	}
}
