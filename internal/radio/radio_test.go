package radio

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
)

func n(v uint32) ident.NodeID { return ident.NodeID(v) }

func TestPerfectDeliversAll(t *testing.T) {
	txs := []Tx{
		{Sender: n(1), Receivers: []ident.NodeID{2, 3}},
		{Sender: n(2), Receivers: []ident.NodeID{1}},
	}
	got := Perfect{}.DeliverSlot(txs, nil)
	if len(got) != 3 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestLossyExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	txs := []Tx{{Sender: n(1), Receivers: []ident.NodeID{2, 3, 4}}}
	if got := (Lossy{P: 0}).DeliverSlot(txs, rng); len(got) != 3 {
		t.Fatalf("P=0 lost messages: %v", got)
	}
	if got := (Lossy{P: 1}).DeliverSlot(txs, rng); len(got) != 0 {
		t.Fatalf("P=1 delivered: %v", got)
	}
}

func TestLossyRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	txs := []Tx{{Sender: n(1), Receivers: []ident.NodeID{2}}}
	ch := Lossy{P: 0.3}
	delivered := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		delivered += len(ch.DeliverSlot(txs, rng))
	}
	rate := float64(delivered) / trials
	if rate < 0.65 || rate > 0.75 {
		t.Fatalf("delivery rate %v, want ≈0.7", rate)
	}
}

func TestCollisionTwoSendersJam(t *testing.T) {
	// 1 and 2 both reach 3: collision, 3 hears nothing. 4 hears only 1.
	txs := []Tx{
		{Sender: n(1), Receivers: []ident.NodeID{3, 4}},
		{Sender: n(2), Receivers: []ident.NodeID{3}},
	}
	got := Collision{}.DeliverSlot(txs, nil)
	if len(got) != 1 || got[0] != (Delivery{From: 1, To: 4}) {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestCollisionSenderCannotReceive(t *testing.T) {
	txs := []Tx{
		{Sender: n(1), Receivers: []ident.NodeID{2}},
		{Sender: n(2), Receivers: []ident.NodeID{1}},
	}
	if got := (Collision{}).DeliverSlot(txs, nil); len(got) != 0 {
		t.Fatalf("senders received while sending: %v", got)
	}
}

func TestCollisionSingleSenderDelivers(t *testing.T) {
	txs := []Tx{{Sender: n(1), Receivers: []ident.NodeID{2, 3}}}
	if got := (Collision{}).DeliverSlot(txs, nil); len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestLossyOverCollision(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	txs := []Tx{
		{Sender: n(1), Receivers: []ident.NodeID{3}},
		{Sender: n(2), Receivers: []ident.NodeID{3}},
	}
	ch := Lossy{P: 0, Inner: Collision{}}
	if got := ch.DeliverSlot(txs, rng); len(got) != 0 {
		t.Fatalf("collision must survive composition: %v", got)
	}
}

func TestChannelsDoNotMutateInput(t *testing.T) {
	txs := []Tx{{Sender: n(1), Receivers: []ident.NodeID{2, 3}}}
	rng := rand.New(rand.NewSource(4))
	_ = Perfect{}.DeliverSlot(txs, rng)
	_ = (Lossy{P: 0.5}).DeliverSlot(txs, rng)
	_ = (Collision{}).DeliverSlot(txs, rng)
	if len(txs[0].Receivers) != 2 || txs[0].Receivers[0] != 2 {
		t.Fatal("input mutated")
	}
}
