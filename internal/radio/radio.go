// Package radio models the wireless channel between the vicinity relation
// and the protocol: which of a slot's broadcasts are actually received.
//
// The paper's system model (§2, close to IEEE 802.11) is: one-message
// channels, and a node v receives u's message only if v is not itself
// sending and no other node in v's vicinity is sending at the same time.
// The Collision channel implements exactly that; Perfect and Lossy bracket
// it from both sides for sensitivity studies (experiment E9).
package radio

import (
	"math/rand"

	"repro/internal/ident"
)

// Tx is one broadcast in a slot: the sender and the nodes its signal
// reaches (the vicinity, as computed by the space layer).
type Tx struct {
	Sender    ident.NodeID
	Receivers []ident.NodeID
}

// Delivery is a successful reception.
type Delivery struct {
	From, To ident.NodeID
}

// Channel decides which receptions succeed among a slot's broadcasts.
type Channel interface {
	// DeliverSlot returns the successful deliveries of a slot. txs lists
	// all simultaneous broadcasts; implementations must not mutate it.
	DeliverSlot(txs []Tx, rng *rand.Rand) []Delivery
}

// BufferedChannel is the allocation-free variant: AppendDeliverSlot
// appends the slot's deliveries to buf, letting a driver recycle one
// delivery buffer across ticks. All channels in this package implement
// it; the engine uses it when available.
type BufferedChannel interface {
	Channel
	AppendDeliverSlot(txs []Tx, rng *rand.Rand, buf []Delivery) []Delivery
}

// DropCounter is implemented by channels that count the deliveries they
// suppress, so observers (internal/obs) can surface radio-layer loss
// next to the violation predicates instead of losing it silently. The
// count is cumulative over the channel's lifetime and includes any
// counting inner channel's drops.
type DropCounter interface {
	DroppedDeliveries() uint64
}

// Perfect delivers every reachable (sender, receiver) pair: no loss, no
// collisions. The fair-channel hypothesis holds trivially.
type Perfect struct{}

// DeliverSlot implements Channel.
func (p Perfect) DeliverSlot(txs []Tx, rng *rand.Rand) []Delivery {
	return p.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements BufferedChannel.
func (Perfect) AppendDeliverSlot(txs []Tx, _ *rand.Rand, buf []Delivery) []Delivery {
	for _, tx := range txs {
		for _, r := range tx.Receivers {
			buf = append(buf, Delivery{From: tx.Sender, To: r})
		}
	}
	return buf
}

// Lossy drops each reception independently with probability P, on top of
// an inner channel (Perfect when Inner is nil).
//
// Determinism: channel arbitration is phase 3 of the engine's Step — it
// runs sequentially on the coordinator, on the engine's single global RNG
// stream, over the slot's transmissions in canonical shard-major order.
// Lossy draws exactly one rng.Float64() per inner delivery, in that
// order, so the draw sequence is a pure function of the seed and the
// slot's traffic: it is bit-identical at any Params.Workers setting and
// any GOMAXPROCS (TestLossyDrawsWorkerIndependent pins this — the
// conformance goldens and every chaos episode record ride on it).
type Lossy struct {
	P     float64
	Inner Channel

	// Drops, when non-nil, is incremented once per suppressed delivery —
	// the drop counter chaos observers surface through the obs sink (the
	// channel itself stays a copyable stateless value).
	Drops *uint64
}

// DroppedDeliveries implements DropCounter: Lossy's own suppressions
// (when counting is armed) plus any counting inner channel's.
func (l Lossy) DroppedDeliveries() uint64 {
	var n uint64
	if l.Drops != nil {
		n = *l.Drops
	}
	if dc, ok := l.Inner.(DropCounter); ok {
		n += dc.DroppedDeliveries()
	}
	return n
}

// DeliverSlot implements Channel.
func (l Lossy) DeliverSlot(txs []Tx, rng *rand.Rand) []Delivery {
	return l.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements BufferedChannel. The inner channel's
// deliveries land in buf's tail and are filtered in place, so an inner
// BufferedChannel keeps the whole path allocation-free.
func (l Lossy) AppendDeliverSlot(txs []Tx, rng *rand.Rand, buf []Delivery) []Delivery {
	inner := l.Inner
	if inner == nil {
		inner = Perfect{}
	}
	start := len(buf)
	if bc, ok := inner.(BufferedChannel); ok {
		buf = bc.AppendDeliverSlot(txs, rng, buf)
	} else {
		buf = append(buf, inner.DeliverSlot(txs, rng)...)
	}
	kept := buf[:start]
	for _, d := range buf[start:] {
		if rng.Float64() >= l.P {
			kept = append(kept, d)
		} else if l.Drops != nil {
			*l.Drops++
		}
	}
	return kept
}

// Collision implements the paper's interference model: a node receives
// nothing in a slot when it is itself sending, and nothing when two or
// more senders reach it simultaneously (the one-message channel is
// destroyed by the collision).
type Collision struct{}

// DeliverSlot implements Channel.
func (c Collision) DeliverSlot(txs []Tx, rng *rand.Rand) []Delivery {
	return c.AppendDeliverSlot(txs, rng, nil)
}

// AppendDeliverSlot implements BufferedChannel (the interference maps are
// still per-call: the channel itself is a stateless value).
func (Collision) AppendDeliverSlot(txs []Tx, _ *rand.Rand, buf []Delivery) []Delivery {
	sending := make(map[ident.NodeID]bool, len(txs))
	heard := make(map[ident.NodeID]int)
	for _, tx := range txs {
		sending[tx.Sender] = true
		for _, r := range tx.Receivers {
			heard[r]++
		}
	}
	for _, tx := range txs {
		for _, r := range tx.Receivers {
			if sending[r] || heard[r] > 1 {
				continue
			}
			buf = append(buf, Delivery{From: tx.Sender, To: r})
		}
	}
	return buf
}
