// Package metrics evaluates the Dynamic Group Service specification on
// configuration snapshots: the agreement (ΠA), safety (ΠS) and maximality
// (ΠM) predicates of the static specification, the topological (ΠT) and
// continuity (ΠC) predicates of the best-effort requirement, plus group
// statistics and churn accounting used by the experiment harness.
package metrics

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
)

// Snapshot is one configuration: the topology and every node's view.
type Snapshot struct {
	G     *graph.G
	Views map[ident.NodeID]map[ident.NodeID]bool
}

// Omega returns Ω_v: view_v when v belongs to it and every member agrees
// on exactly that view, else the singleton {v} (the paper's definition of
// the group of v).
func (s Snapshot) Omega(v ident.NodeID) map[ident.NodeID]bool {
	vw := s.Views[v]
	if vw == nil || !vw[v] {
		return map[ident.NodeID]bool{v: true}
	}
	for u := range vw {
		uw := s.Views[u]
		if !sameSet(vw, uw) {
			return map[ident.NodeID]bool{v: true}
		}
	}
	out := make(map[ident.NodeID]bool, len(vw))
	for u := range vw {
		out[u] = true
	}
	return out
}

// Groups returns the distinct groups {Ω_v : v ∈ V}, each sorted, the list
// sorted by first member. Every node belongs to exactly one returned
// group when ΠA holds; otherwise singleton Ωs fill the gaps.
//
// Distinct Ω sets are pairwise disjoint even when ΠA fails (a member u of
// a locally-agreeing group has view_u equal to that group, so u cannot
// simultaneously be the bad node of a singleton Ω or a member of a
// different agreeing view), so the minimum member is a unique
// representative — deduplicating on it replaces the per-node canonical
// string key the seed built (one allocation per node per call).
func (s Snapshot) Groups() [][]ident.NodeID {
	nodes := s.G.AppendNodes(make([]ident.NodeID, 0, s.G.NumNodes()))
	seen := make(map[ident.NodeID]bool, len(nodes))
	var out [][]ident.NodeID
	for _, v := range nodes {
		om := s.Omega(v)
		rep := representative(om)
		if !seen[rep] {
			seen[rep] = true
			out = append(out, setToSorted(om))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Agreement evaluates ΠA: the views must define a partition of the nodes
// into disjoint subgraphs — u and v are in the same part iff their views
// are equal to that part. The per-node local check (v in its own view,
// every member's view equal to it) implies the partition consistency the
// seed double-checked with a canonical-key assignment map: if u appeared
// in two different views A and B that both pass their local checks, then
// view_u = A and view_u = B, a contradiction — so the local checks alone
// decide ΠA, without a string key per group.
func (s Snapshot) Agreement() bool {
	for _, v := range s.G.AppendNodes(make([]ident.NodeID, 0, s.G.NumNodes())) {
		vw := s.Views[v]
		if vw == nil || !vw[v] {
			return false
		}
		for u := range vw {
			if !sameSet(vw, s.Views[u]) {
				return false
			}
		}
	}
	return true
}

// Safety evaluates ΠS: every group Ω_v is connected and has diameter at
// most dmax in its induced subgraph.
func (s Snapshot) Safety(dmax int) bool {
	checked := make(map[ident.NodeID]bool)
	for _, v := range s.G.AppendNodes(make([]ident.NodeID, 0, s.G.NumNodes())) {
		om := s.Omega(v)
		rep := representative(om)
		if checked[rep] {
			continue
		}
		checked[rep] = true
		if s.G.InducedDiameter(om) > dmax {
			return false
		}
	}
	return true
}

// SafetyRate returns the fraction of groups satisfying ΠS — connected
// with induced diameter at most dmax. The boolean Safety is an
// all-groups conjunction, which a single stretched group zeroes; at
// thousands of mobile groups that conjunction is almost never true, so
// the large-scale sweeps report this per-group freshness rate instead.
func (s Snapshot) SafetyRate(dmax int) float64 {
	groups := s.Groups()
	if len(groups) == 0 {
		return 1
	}
	ok := 0
	for _, g := range groups {
		set := make(map[ident.NodeID]bool, len(g))
		for _, v := range g {
			set[v] = true
		}
		if s.G.InducedDiameter(set) <= dmax {
			ok++
		}
	}
	return float64(ok) / float64(len(groups))
}

// Maximality evaluates ΠM: merging any two distinct groups must break the
// diameter bound (unreachable pairs count as infinite distance, so groups
// with no connecting path are trivially unmergeable).
func (s Snapshot) Maximality(dmax int) bool {
	groups := s.Groups()
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			union := make(map[ident.NodeID]bool, len(groups[i])+len(groups[j]))
			for _, v := range groups[i] {
				union[v] = true
			}
			for _, v := range groups[j] {
				union[v] = true
			}
			if s.G.InducedDiameter(union) <= dmax {
				return false
			}
		}
	}
	return true
}

// Converged reports ΠA ∧ ΠS ∧ ΠM: the legitimacy predicate of the static
// specification.
func (s Snapshot) Converged(dmax int) bool {
	return s.Agreement() && s.Safety(dmax) && s.Maximality(dmax)
}

// Topological evaluates ΠT(prev, next): for every node v, the members of
// v's previous group must remain within dmax of each other in the *new*
// topology, using only previous-group members as relays. Nodes that left
// the network make the distance infinite, falsifying ΠT.
func Topological(prev, next Snapshot, dmax int) bool {
	checked := make(map[ident.NodeID]bool)
	for _, v := range prev.G.Nodes() {
		om := prev.Omega(v)
		rep := representative(om)
		if checked[rep] {
			continue
		}
		checked[rep] = true
		if len(om) == 1 {
			continue // singletons are never stretched
		}
		for x := range om {
			d := next.G.BFSFrom(x, om)
			for y := range om {
				if dy, ok := d[y]; !ok || dy > dmax {
					return false
				}
			}
		}
	}
	return true
}

// Continuity evaluates ΠC(prev, next): no node disappears from any group,
// Ω_v(prev) ⊆ Ω_v(next) for every node still present.
func Continuity(prev, next Snapshot) bool {
	return len(ContinuityViolations(prev, next)) == 0
}

// ContinuityViolations returns the nodes v whose group lost at least one
// member between the two snapshots (Ω_v(prev) ⊄ Ω_v(next)).
func ContinuityViolations(prev, next Snapshot) []ident.NodeID {
	var out []ident.NodeID
	for _, v := range prev.G.Nodes() {
		if !next.G.HasNode(v) {
			continue // v itself left the network
		}
		om := prev.Omega(v)
		nm := next.Omega(v)
		for u := range om {
			if !nm[u] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// GroupCount returns the number of distinct groups.
func (s Snapshot) GroupCount() int { return len(s.Groups()) }

// SingletonCount returns how many groups are singletons.
func (s Snapshot) SingletonCount() int {
	n := 0
	for _, g := range s.Groups() {
		if len(g) == 1 {
			n++
		}
	}
	return n
}

// MeanGroupSize returns the average group size (0 for an empty snapshot).
func (s Snapshot) MeanGroupSize() float64 {
	groups := s.Groups()
	if len(groups) == 0 {
		return 0
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	return float64(total) / float64(len(groups))
}

func sameSet(a, b map[ident.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func setToSorted(m map[ident.NodeID]bool) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// representative returns the minimum member of a non-empty Ω set — its
// unique representative (distinct Ω sets are disjoint; see Groups).
func representative(m map[ident.NodeID]bool) ident.NodeID {
	first := true
	var rep ident.NodeID
	for v := range m {
		if first || v < rep {
			rep, first = v, false
		}
	}
	return rep
}

// key renders a sorted ID list as a canonical string. It survives only as
// the cross-round group identity of the Tracker's lifetime accounting —
// the per-snapshot predicates dedup by representative instead.
func key(ids []ident.NodeID) string {
	b := make([]byte, 0, len(ids)*5)
	for _, v := range ids {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// ExternalEdges returns nee(c), the number of edges whose endpoints lie in
// different groups — the potential function of the paper's maximality
// proof (Props. 9–11: once agreement holds, nee no longer increases, and
// it strictly decreases while ΠM is false, which bounds the number of
// merges left).
func (s Snapshot) ExternalEdges() int {
	n := 0
	var nbuf []ident.NodeID
	for _, v := range s.G.Nodes() {
		om := s.Omega(v)
		nbuf = s.G.AppendNeighbors(v, nbuf[:0])
		for _, u := range nbuf {
			if u > v && !om[u] {
				n++
			}
		}
	}
	return n
}
