package metrics

import (
	"repro/internal/ident"
)

// Tracker accumulates churn statistics over a sequence of snapshots: how
// long groups live, how often continuity is violated and whether each
// violation was "excused" by a topology change (ΠT false). It is the
// accounting behind the best-effort experiments (E6, E8, E9).
type Tracker struct {
	prev    *Snapshot
	hasPrev bool

	// Steps is the number of observed transitions.
	Steps int
	// ContinuityViolations counts transitions where ΠC failed.
	ContinuityViolations int
	// ExcusedViolations counts transitions where ΠC failed but ΠT was
	// false too (the violation is allowed by the best-effort contract).
	ExcusedViolations int
	// UnexcusedViolations counts transitions violating the contract:
	// ΠC false while ΠT held. A correct implementation keeps this at 0.
	UnexcusedViolations int
	// TopologyBreaks counts transitions where ΠT failed.
	TopologyBreaks int

	// groupAge tracks, per live group key, how many steps it existed.
	groupAge map[string]int
	// Lifetimes collects the ages of groups at the step they dissolved.
	Lifetimes []int
	// MembershipChanges counts nodes whose Ω changed between snapshots
	// (a proxy for application-visible churn).
	MembershipChanges int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{groupAge: make(map[string]int)}
}

// Observe feeds the next snapshot, updating every statistic against the
// previously observed one. dmax parameterizes ΠT.
func (t *Tracker) Observe(s Snapshot, dmax int) {
	cur := make(map[string]bool)
	groups := s.Groups()
	for _, g := range groups {
		cur[key(g)] = true
	}

	if t.hasPrev {
		t.Steps++
		piT := Topological(*t.prev, s, dmax)
		piC := Continuity(*t.prev, s)
		if !piT {
			t.TopologyBreaks++
		}
		if !piC {
			t.ContinuityViolations++
			if piT {
				t.UnexcusedViolations++
			} else {
				t.ExcusedViolations++
			}
		}
		for _, v := range t.prev.G.Nodes() {
			if !s.G.HasNode(v) {
				continue
			}
			if !sameSet(t.prev.Omega(v), s.Omega(v)) {
				t.MembershipChanges++
			}
		}
		// Age live groups; collect lifetimes of dissolved ones.
		for k, age := range t.groupAge {
			if cur[k] {
				t.groupAge[k] = age + 1
			} else {
				t.Lifetimes = append(t.Lifetimes, age)
				delete(t.groupAge, k)
			}
		}
	}
	for k := range cur {
		if _, ok := t.groupAge[k]; !ok {
			t.groupAge[k] = 1
		}
	}

	cp := s
	cp.Views = cloneViews(s.Views)
	cp.G = s.G.Clone()
	t.prev = &cp
	t.hasPrev = true
}

// MeanLifetime returns the average lifetime of groups, counting groups
// still alive at their current age (so short runs are not biased toward
// dissolved groups only).
func (t *Tracker) MeanLifetime() float64 {
	total, n := 0, 0
	for _, l := range t.Lifetimes {
		total += l
		n++
	}
	for _, age := range t.groupAge {
		total += age
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func cloneViews(v map[ident.NodeID]map[ident.NodeID]bool) map[ident.NodeID]map[ident.NodeID]bool {
	out := make(map[ident.NodeID]map[ident.NodeID]bool, len(v))
	for k, m := range v {
		mm := make(map[ident.NodeID]bool, len(m))
		for x := range m {
			mm[x] = true
		}
		out[k] = mm
	}
	return out
}
