package metrics

import (
	"repro/internal/graph"
	"repro/internal/ident"
)

// SnapshotBuilder incrementally maintains the topology half of a
// Snapshot. The seed engine cloned the whole communication graph and then
// deleted the dead nodes on *every* snapshot — O(V+E) maps per round even
// when nothing moved. The builder instead caches the restricted copy and
// re-derives it only when the source graph (pointer or generation — the
// latter catches in-place mutations like the experiments' link cuts) or
// the live membership changed. The cached graph is handed out shared:
// that is safe because snapshots are read-only for every predicate, and
// because the cache is replaced, never mutated, when the topology changes
// — snapshots held across rounds (Tracker, ΠT/ΠC) keep seeing the
// topology of their own round.
type SnapshotBuilder struct {
	src     *graph.G
	srcGen  uint64
	liveGen uint64
	cached  *graph.G
}

// Graph returns the subgraph of src induced by the live nodes, served
// from the cache when neither src nor the membership (keyed by liveGen, a
// counter the caller bumps on every add/remove) changed since the last
// call.
func (b *SnapshotBuilder) Graph(src *graph.G, liveGen uint64, live func(ident.NodeID) bool) *graph.G {
	if b.cached != nil && b.src == src && b.srcGen == src.Generation() && b.liveGen == liveGen {
		return b.cached
	}
	b.src = src
	b.srcGen = src.Generation()
	b.liveGen = liveGen
	b.cached = src.Restrict(live)
	return b.cached
}
