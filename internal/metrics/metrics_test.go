package metrics

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
)

func views(parts ...[]uint32) map[ident.NodeID]map[ident.NodeID]bool {
	out := make(map[ident.NodeID]map[ident.NodeID]bool)
	for _, part := range parts {
		set := make(map[ident.NodeID]bool, len(part))
		for _, v := range part {
			set[ident.NodeID(v)] = true
		}
		for _, v := range part {
			out[ident.NodeID(v)] = set
		}
	}
	return out
}

func snapLine(n int, parts ...[]uint32) Snapshot {
	return Snapshot{G: graph.Line(n), Views: views(parts...)}
}

func TestOmegaAgreedGroup(t *testing.T) {
	s := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	om := s.Omega(1)
	if len(om) != 2 || !om[1] || !om[2] {
		t.Fatalf("Omega(1) = %v", om)
	}
}

func TestOmegaDisagreementIsSingleton(t *testing.T) {
	s := snapLine(3)
	s.Views = map[ident.NodeID]map[ident.NodeID]bool{
		1: {1: true, 2: true},
		2: {2: true}, // 2 does not agree
		3: {3: true},
	}
	om := s.Omega(1)
	if len(om) != 1 || !om[1] {
		t.Fatalf("Omega(1) = %v, want singleton", om)
	}
}

func TestOmegaSelfMissingIsSingleton(t *testing.T) {
	s := snapLine(2)
	s.Views = map[ident.NodeID]map[ident.NodeID]bool{
		1: {2: true}, // v ∉ view_v
		2: {2: true},
	}
	if om := s.Omega(1); len(om) != 1 || !om[1] {
		t.Fatalf("Omega(1) = %v", om)
	}
}

func TestAgreementHoldsAndFails(t *testing.T) {
	good := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	if !good.Agreement() {
		t.Fatal("agreement should hold")
	}
	bad := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	bad.Views[2] = map[ident.NodeID]bool{2: true}
	if bad.Agreement() {
		t.Fatal("agreement should fail on divergent views")
	}
	overlap := snapLine(3)
	overlap.Views = map[ident.NodeID]map[ident.NodeID]bool{
		1: {1: true, 2: true},
		2: {1: true, 2: true},
		3: {2: true, 3: true}, // 2 claimed by two parts
	}
	if overlap.Agreement() {
		t.Fatal("agreement should fail on overlapping views")
	}
}

func TestSafety(t *testing.T) {
	s := snapLine(4, []uint32{1, 2, 3, 4})
	if !s.Safety(3) || s.Safety(2) {
		t.Fatal("safety thresholds wrong")
	}
	// Disconnected group: {1,3} in a line has no internal path.
	d := snapLine(3, []uint32{1, 3}, []uint32{2})
	if d.Safety(5) {
		t.Fatal("disconnected group must violate safety")
	}
}

func TestSafetyRate(t *testing.T) {
	// Line of 6: {1,2,3,4} has induced diameter 3, {5,6} diameter 1.
	s := snapLine(6, []uint32{1, 2, 3, 4}, []uint32{5, 6})
	if got := s.SafetyRate(3); got != 1 {
		t.Fatalf("rate = %v, want 1", got)
	}
	if got := s.SafetyRate(2); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5 (only the pair fits Dmax=2)", got)
	}
	if (Snapshot{G: graph.New()}).SafetyRate(2) != 1 {
		t.Fatal("empty snapshot must have rate 1")
	}
	// The boolean conjunction and the rate must agree at the extremes.
	if s.Safety(2) || !s.Safety(3) {
		t.Fatal("Safety inconsistent with SafetyRate")
	}
}

func TestMaximality(t *testing.T) {
	// Line of 4, Dmax=1: pairs {1,2},{3,4} are maximal.
	s := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	if !s.Maximality(1) {
		t.Fatal("pairs should be maximal at Dmax=1")
	}
	if s.Maximality(3) {
		t.Fatal("pairs are not maximal at Dmax=3 (they could merge)")
	}
	// Singletons next to each other are not maximal.
	u := snapLine(2, []uint32{1}, []uint32{2})
	if u.Maximality(1) {
		t.Fatal("adjacent singletons are not maximal")
	}
}

func TestConverged(t *testing.T) {
	s := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	if !s.Converged(1) {
		t.Fatal("should be converged at Dmax=1")
	}
	if s.Converged(3) {
		t.Fatal("not maximal at Dmax=3")
	}
}

func TestTopological(t *testing.T) {
	prev := snapLine(3, []uint32{1, 2, 3})
	// Same topology: ΠT holds for Dmax=2.
	if !Topological(prev, snapLine(3, []uint32{1, 2, 3}), 2) {
		t.Fatal("static topology must satisfy ΠT")
	}
	// Cut the 2-3 edge: group {1,2,3} gets stretched to ∞.
	next := snapLine(3, []uint32{1, 2, 3})
	next.G.RemoveEdge(2, 3)
	if Topological(prev, next, 2) {
		t.Fatal("cut edge must falsify ΠT")
	}
	// A node leaving falsifies ΠT too.
	gone := snapLine(3, []uint32{1, 2, 3})
	gone.G.RemoveNode(3)
	if Topological(prev, gone, 2) {
		t.Fatal("departed member must falsify ΠT")
	}
	// Singletons are never stretched.
	sing := snapLine(3, []uint32{1}, []uint32{2}, []uint32{3})
	cut := snapLine(3, []uint32{1}, []uint32{2}, []uint32{3})
	cut.G.RemoveEdge(1, 2)
	if !Topological(sing, cut, 2) {
		t.Fatal("singleton groups cannot violate ΠT")
	}
}

func TestContinuity(t *testing.T) {
	prev := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	// Growing is fine.
	grown := snapLine(4, []uint32{1, 2, 3, 4})
	if !Continuity(prev, grown) {
		t.Fatal("growth must not violate ΠC")
	}
	// Losing a member is a violation for the members that kept agreeing.
	shrunk := snapLine(4, []uint32{1}, []uint32{2}, []uint32{3, 4})
	viol := ContinuityViolations(prev, shrunk)
	if len(viol) == 0 {
		t.Fatal("shrink must violate ΠC")
	}
	// A departed node: its view entry disappears with it, so a survivor
	// still claiming it collapses to a singleton Ω — a raw ΠC violation,
	// excused because ΠT is false.
	gone := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	gone.G.RemoveNode(4)
	delete(gone.Views, 4)
	if Continuity(prev, gone) {
		t.Fatal("losing a departed member still violates raw ΠC (excused by ΠT)")
	}
	if Topological(prev, gone, 1) {
		t.Fatal("the departure must falsify ΠT, excusing the violation")
	}
}

func TestGroupsAndStats(t *testing.T) {
	s := snapLine(5, []uint32{1, 2}, []uint32{3, 4}, []uint32{5})
	groups := s.Groups()
	if len(groups) != 3 || s.GroupCount() != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if s.SingletonCount() != 1 {
		t.Fatalf("singletons = %d", s.SingletonCount())
	}
	if m := s.MeanGroupSize(); m < 1.66 || m > 1.67 {
		t.Fatalf("mean size = %v", m)
	}
}

func TestTrackerExcusedAndUnexcused(t *testing.T) {
	tr := NewTracker()
	a := snapLine(3, []uint32{1, 2, 3})
	tr.Observe(a, 2)
	// Unexcused: views shrink with no topology change.
	b := snapLine(3, []uint32{1}, []uint32{2}, []uint32{3})
	tr.Observe(b, 2)
	if tr.ContinuityViolations != 1 || tr.UnexcusedViolations != 1 || tr.ExcusedViolations != 0 {
		t.Fatalf("tracker = %+v", tr)
	}
	// Excused: a topology cut explains the next shrink.
	tr2 := NewTracker()
	tr2.Observe(a, 2)
	c := snapLine(3, []uint32{1, 2}, []uint32{3})
	c.G.RemoveEdge(2, 3)
	tr2.Observe(c, 2)
	if tr2.ContinuityViolations != 1 || tr2.ExcusedViolations != 1 || tr2.UnexcusedViolations != 0 {
		t.Fatalf("tracker2 = %+v", tr2)
	}
	if tr2.TopologyBreaks != 1 {
		t.Fatalf("topology breaks = %d", tr2.TopologyBreaks)
	}
}

func TestTrackerLifetimes(t *testing.T) {
	tr := NewTracker()
	a := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	for i := 0; i < 5; i++ {
		tr.Observe(a, 3)
	}
	// Dissolve {3,4}.
	b := snapLine(4, []uint32{1, 2}, []uint32{3}, []uint32{4})
	tr.Observe(b, 3)
	if len(tr.Lifetimes) == 0 {
		t.Fatal("dissolved group must record a lifetime")
	}
	if tr.Lifetimes[0] < 4 {
		t.Fatalf("lifetime = %d, want ≥ 4", tr.Lifetimes[0])
	}
	if tr.MeanLifetime() <= 0 {
		t.Fatal("mean lifetime must be positive")
	}
	if tr.MembershipChanges == 0 {
		t.Fatal("membership changes must be counted")
	}
}

func TestExternalEdges(t *testing.T) {
	s := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	if got := s.ExternalEdges(); got != 1 {
		t.Fatalf("nee = %d, want 1 (the 2-3 bridge)", got)
	}
	one := snapLine(4, []uint32{1, 2, 3, 4})
	if got := one.ExternalEdges(); got != 0 {
		t.Fatalf("nee = %d, want 0", got)
	}
	sing := snapLine(3, []uint32{1}, []uint32{2}, []uint32{3})
	if got := sing.ExternalEdges(); got != 2 {
		t.Fatalf("nee = %d, want 2", got)
	}
}

func TestTopologicalRelaysRestrictedToGroup(t *testing.T) {
	// Prev group {1,2,3} on a line 1-2-3. Next topology replaces the 2-3
	// edge with a detour through outsider 4 (2-4, 4-3): members stay
	// connected in the graph, but ΠT only allows prev-group members as
	// relays, so the group is stretched to ∞.
	prev := snapLine(3, []uint32{1, 2, 3})
	next := snapLine(3, []uint32{1, 2, 3})
	next.G.RemoveEdge(2, 3)
	next.G.AddEdge(2, 4)
	next.G.AddEdge(4, 3)
	if Topological(prev, next, 3) {
		t.Fatal("detour through a non-member must not satisfy ΠT")
	}
	// With the direct edge restored the group fits again.
	next.G.AddEdge(2, 3)
	if !Topological(prev, next, 2) {
		t.Fatal("restored edge must satisfy ΠT")
	}
}

func TestTopologicalDedupsByGroup(t *testing.T) {
	// Two groups sharing the dmax budget: only {3,4} is stretched.
	prev := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	next := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	next.G.RemoveEdge(3, 4)
	if Topological(prev, next, 1) {
		t.Fatal("cut inside {3,4} must falsify ΠT")
	}
	next2 := snapLine(4, []uint32{1, 2}, []uint32{3, 4})
	next2.G.RemoveEdge(2, 3) // only the inter-group bridge moved
	if !Topological(prev, next2, 1) {
		t.Fatal("bridge cut between groups must not falsify ΠT")
	}
}

func TestContinuityViolationsIdentifiesNodes(t *testing.T) {
	// {1,2,3} splits: 3 secedes. Nodes 1 and 2 keep agreeing on {1,2} —
	// each lost member 3 — and 3's own group shrank too.
	prev := snapLine(3, []uint32{1, 2, 3})
	next := snapLine(3, []uint32{1, 2}, []uint32{3})
	viol := ContinuityViolations(prev, next)
	want := map[ident.NodeID]bool{1: true, 2: true, 3: true}
	if len(viol) != len(want) {
		t.Fatalf("violations = %v, want nodes 1,2,3", viol)
	}
	for _, v := range viol {
		if !want[v] {
			t.Fatalf("unexpected violator %v in %v", v, viol)
		}
	}
	// A departed node is not a violator itself, but survivors that lose
	// it are.
	gone := snapLine(3, []uint32{1, 2}, []uint32{3})
	gone.G.RemoveNode(3)
	delete(gone.Views, 3)
	viol = ContinuityViolations(snapLine(3, []uint32{1, 2}, []uint32{3}), gone)
	if len(viol) != 0 {
		t.Fatalf("only node 3 left and it was a singleton: %v", viol)
	}
	// Growth is never a violation.
	if v := ContinuityViolations(next, prev); len(v) != 0 {
		t.Fatalf("merge reported violations: %v", v)
	}
}

func TestGroupsRepresentativeDedupOnDisagreement(t *testing.T) {
	// A disagreeing configuration: 2 claims {1,2}, 1 claims {1}. Ω sets
	// are {1} (for 1), {2} (for 2, disagreement singleton) — the
	// representative dedup must not conflate them with {1,2}.
	s := snapLine(2)
	s.Views = map[ident.NodeID]map[ident.NodeID]bool{
		1: {1: true},
		2: {1: true, 2: true},
	}
	groups := s.Groups()
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 1 {
		t.Fatalf("groups = %v, want [[1] [2]]", groups)
	}
	if s.Agreement() {
		t.Fatal("agreement must fail")
	}
}
