// Package ident defines node identities and the mark lattice used by the
// GRP protocol's ancestor lists.
//
// A node appears in an ancestor list as an Entry: its NodeID plus a Mark.
// Marks implement the paper's symmetric-link triple handshake and the
// group-boundary ("incompatible neighbor") mechanism:
//
//   - MarkPlain: an ordinary, confirmed member entry.
//   - MarkSingle: the sender kept the node's identity but could not use its
//     list (asymmetric or not-yet-confirmed link); written ū in the paper.
//   - MarkDouble: the node was rejected as incompatible (its list would
//     break the diameter bound, or it lost a too-far priority contest);
//     written u̿ in the paper. A double-marked edge is a group boundary.
//
// Marked entries are meaningful only between direct neighbors: receivers
// delete every marked entry that does not name themselves, so marks are
// never propagated more than one hop.
package ident

import "fmt"

// NodeID identifies a node. IDs are dense small integers in simulations but
// nothing in the protocol relies on density; only equality and total order
// (for deterministic iteration and priority tie-breaks) are used.
type NodeID uint32

// None is the zero NodeID, never assigned to a real node.
const None NodeID = 0

// String renders the ID as the paper does (n<id>).
func (id NodeID) String() string { return fmt.Sprintf("n%d", uint32(id)) }

// Mark is the per-entry mark level.
type Mark uint8

const (
	// MarkPlain marks a confirmed, usable entry.
	MarkPlain Mark = iota
	// MarkSingle marks a kept-but-unusable sender (asymmetric link leg of
	// the triple handshake).
	MarkSingle
	// MarkDouble marks an incompatible neighbor (group boundary).
	MarkDouble
)

// String implements fmt.Stringer.
func (m Mark) String() string {
	switch m {
	case MarkPlain:
		return "plain"
	case MarkSingle:
		return "single"
	case MarkDouble:
		return "double"
	default:
		return fmt.Sprintf("mark(%d)", uint8(m))
	}
}

// Marked reports whether the mark is anything other than plain.
func (m Mark) Marked() bool { return m != MarkPlain }

// Max returns the stronger of two marks. Used when the same node reaches a
// position from several sources: the strongest statement wins, so a
// boundary (double) mark is never silently downgraded within one compute.
func (m Mark) Max(o Mark) Mark {
	if o > m {
		return o
	}
	return m
}

// Entry is one element of an ancestor set: a node identity plus its mark.
type Entry struct {
	ID   NodeID
	Mark Mark
}

// String renders the entry with the paper's bar notation.
func (e Entry) String() string {
	switch e.Mark {
	case MarkSingle:
		return e.ID.String() + "'"
	case MarkDouble:
		return e.ID.String() + "''"
	default:
		return e.ID.String()
	}
}

// Plain returns an unmarked entry for id.
func Plain(id NodeID) Entry { return Entry{ID: id} }

// Single returns a single-marked entry for id.
func Single(id NodeID) Entry { return Entry{ID: id, Mark: MarkSingle} }

// Double returns a double-marked entry for id.
func Double(id NodeID) Entry { return Entry{ID: id, Mark: MarkDouble} }
