package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestSoakConvergence sweeps the topology regime this reproduction
// verifies full convergence on — sparse chains, rings, moderate grids,
// stars, bridged cliques: the VANET-like graphs the paper targets — and
// asserts ΠA∧ΠS∧ΠM is reached on every instance and seed.
func TestSoakConvergence(t *testing.T) {
	type tc struct {
		name string
		g    func() *graph.G
		dmax int
	}
	cases := []tc{
		{"line10-d3", func() *graph.G { return graph.Line(10) }, 3},
		{"line10-d9", func() *graph.G { return graph.Line(10) }, 9},
		{"line20-d4", func() *graph.G { return graph.Line(20) }, 4},
		{"ring12-d4", func() *graph.G { return graph.Ring(12) }, 4},
		{"star8-d2", func() *graph.G { return graph.Star(8) }, 2},
		{"clique6-d2", func() *graph.G { return graph.Complete(6) }, 2},
		{"clusters-d2", func() *graph.G { return graph.Clusters(3, 4, 0, false) }, 2},
		{"clusterring-d2", func() *graph.G { return graph.Clusters(3, 3, 0, true) }, 2},
	}
	budget := 800
	if testing.Short() {
		budget = 400
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			s := NewStatic(Params{Cfg: core.Config{Dmax: c.dmax}, Seed: seed, Jitter: seed%2 == 0}, c.g())
			if _, ok := s.RunUntilConverged(budget, 3); !ok {
				t.Errorf("%s seed=%d: no convergence: %v", c.name, seed, s.Snapshot().Groups())
			}
		}
	}
}

// TestSoakSparseRGG checks sparse random geometric graphs up to n=25.
func TestSoakSparseRGG(t *testing.T) {
	for _, n := range []int{15, 25} {
		for seed := int64(1); seed <= 2; seed++ {
			g := graph.ConnectedRandomGeometric(n, 14, 2.6, rand.New(rand.NewSource(seed)), 500)
			if g == nil {
				continue // no connected sparse instance for this seed
			}
			s := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: seed}, g)
			if _, ok := s.RunUntilConverged(1500, 3); !ok {
				t.Errorf("sparse rgg n=%d seed=%d (deg %.1f): no convergence: %v",
					n, seed, 2*float64(g.NumEdges())/float64(g.NumNodes()), s.Snapshot().Groups())
			}
		}
	}
}

// TestSoakMetastableRegime covers the graphs where this reproduction
// documents partial convergence (DESIGN.md §3): dense random geometric
// graphs and a few symmetric gadgets can settle into metastable
// non-maximal partitions. Safety and agreement-of-nonempty-groups are
// still asserted on every instance; maximality is measured as a rate and
// reported by experiment E13.
func TestSoakMetastableRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	type tc struct {
		name string
		g    func(seed int64) *graph.G
		dmax int
	}
	cases := []tc{
		{"ring9-d2", func(int64) *graph.G { return graph.Ring(9) }, 2},
		{"grid2x6-d3", func(int64) *graph.G { return graph.Grid(2, 6) }, 3},
		{"grid4x4-d3", func(int64) *graph.G { return graph.Grid(4, 4) }, 3},
		{"denseRGG20-d3", func(seed int64) *graph.G {
			return graph.ConnectedRandomGeometric(20, 10, 3.5, rand.New(rand.NewSource(seed)), 200)
		}, 3},
	}
	conv, total := 0, 0
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			g := c.g(seed)
			if g == nil {
				continue
			}
			s := NewStatic(Params{Cfg: core.Config{Dmax: c.dmax}, Seed: seed}, g)
			total++
			if _, ok := s.RunUntilConverged(600, 3); ok {
				conv++
			}
			snap := s.Snapshot()
			if !snap.Safety(c.dmax) {
				t.Errorf("%s seed=%d: safety violated: %v", c.name, seed, snap.Groups())
			}
		}
	}
	t.Logf("metastable regime full convergence: %d/%d", conv, total)
}
