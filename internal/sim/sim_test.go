package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

func TestStaticLineConverges(t *testing.T) {
	s := NewStatic(Params{Cfg: core.Config{Dmax: 4}, Seed: 1}, graph.Line(5))
	rounds, ok := s.RunUntilConverged(100, 3)
	if !ok {
		t.Fatalf("no convergence; snapshot=%v", s.Snapshot().Groups())
	}
	if rounds < 1 {
		t.Fatal("convergence cannot be instant")
	}
	snap := s.Snapshot()
	if snap.GroupCount() != 1 {
		t.Fatalf("groups = %v", snap.Groups())
	}
}

func TestStaticGridKeepsSafety(t *testing.T) {
	// Grids are in the metastable regime (DESIGN.md §3): full ΠM
	// convergence is not asserted, but safety must hold throughout and
	// groups must form.
	s := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: 2}, graph.Grid(3, 4))
	for i := 0; i < 100; i++ {
		s.StepRound()
		if !s.Snapshot().Safety(3) {
			t.Fatalf("safety violated at round %d: %v", i, s.Snapshot().Groups())
		}
	}
	if s.Snapshot().MeanGroupSize() < 1.5 {
		t.Fatalf("no groups formed: %v", s.Snapshot().Groups())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: 7, Jitter: true}, graph.Ring(8))
		s.StepTicks(50)
		var sizes []int
		for _, g := range s.Snapshot().Groups() {
			sizes = append(sizes, len(g))
		}
		return sizes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("%v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%v vs %v", a, b)
		}
	}
}

func TestJitteredTimersStillConverge(t *testing.T) {
	s := NewStatic(Params{Cfg: core.Config{Dmax: 4}, Seed: 3, Jitter: true, Ts: 1, Tc: 3}, graph.Line(6))
	if _, ok := s.RunUntilConverged(200, 3); !ok {
		t.Fatalf("no convergence with jitter; groups=%v", s.Snapshot().Groups())
	}
}

func TestTsTcValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Tc < Ts")
		}
	}()
	NewStatic(Params{Cfg: core.Config{Dmax: 2}, Ts: 4, Tc: 2}, graph.Line(2))
}

func TestLinkCutSplitsGroup(t *testing.T) {
	g := graph.Line(4)
	s := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: 4}, g)
	if _, ok := s.RunUntilConverged(100, 3); !ok {
		t.Fatal("precondition: converge first")
	}
	prev := s.Snapshot()
	g.RemoveEdge(2, 3)
	for i := 0; i < 30; i++ {
		s.StepRound()
	}
	snap := s.Snapshot()
	if snap.GroupCount() != 2 {
		t.Fatalf("after cut: %v", snap.Groups())
	}
	if !snap.Converged(3) {
		t.Fatalf("should re-converge after cut: %v", snap.Groups())
	}
	_ = prev
}

func TestNodeDepartureShrinksViews(t *testing.T) {
	g := graph.Line(3)
	s := NewStatic(Params{Cfg: core.Config{Dmax: 2}, Seed: 5}, g)
	if _, ok := s.RunUntilConverged(100, 3); !ok {
		t.Fatal("precondition")
	}
	s.RemoveNode(3)
	g.RemoveNode(3)
	for i := 0; i < 20; i++ {
		s.StepRound()
	}
	snap := s.Snapshot()
	if len(snap.Views) != 2 {
		t.Fatalf("views = %v", snap.Views)
	}
	if snap.Views[1][3] || snap.Views[2][3] {
		t.Fatalf("departed node still in views: %v", snap.Views)
	}
}

func TestNodeJoinMerges(t *testing.T) {
	g := graph.Line(2)
	s := NewStatic(Params{Cfg: core.Config{Dmax: 2}, Seed: 6}, g)
	if _, ok := s.RunUntilConverged(50, 3); !ok {
		t.Fatal("precondition")
	}
	g.AddEdge(2, 3)
	s.AddNode(3)
	if _, ok := s.RunUntilConverged(100, 3); !ok {
		t.Fatalf("no reconvergence: %v", s.Snapshot().Groups())
	}
	if s.Snapshot().GroupCount() != 1 {
		t.Fatalf("groups = %v", s.Snapshot().Groups())
	}
}

func TestSpatialTopologyConvoy(t *testing.T) {
	w := space.NewWorld(4)
	nodes := []ident.NodeID{1, 2, 3, 4}
	rngSeed := Params{Cfg: core.Config{Dmax: 3}, Seed: 8}
	topo := NewSpatialTopology(w, &mobility.Convoy{Spacing: 3, Speed: 5}, 0.1, nodes, nil)
	s := New(rngSeed, topo)
	if _, ok := s.RunUntilConverged(100, 3); !ok {
		t.Fatalf("convoy should converge: %v", s.Snapshot().Groups())
	}
	if s.Snapshot().GroupCount() != 1 {
		t.Fatalf("groups = %v", s.Snapshot().Groups())
	}
}

func TestLossyChannelStillConvergesSlowly(t *testing.T) {
	s := NewStatic(Params{
		Cfg: core.Config{Dmax: 3}, Seed: 9,
		Channel: radio.Lossy{P: 0.2}, Ts: 1, Tc: 4,
	}, graph.Line(4))
	if _, ok := s.RunUntilConverged(400, 3); !ok {
		t.Fatalf("no convergence under 20%% loss: %v", s.Snapshot().Groups())
	}
}

func TestAccounting(t *testing.T) {
	s := NewStatic(Params{Cfg: core.Config{Dmax: 2}, Seed: 10}, graph.Line(3))
	s.StepTicks(10)
	if s.MessagesSent == 0 || s.BytesSent == 0 || s.Deliveries == 0 {
		t.Fatalf("accounting: msgs=%d bytes=%d deliv=%d", s.MessagesSent, s.BytesSent, s.Deliveries)
	}
	if s.Tick() != 10 {
		t.Fatalf("tick = %d", s.Tick())
	}
}

func TestSnapshotExcludesDeadNodes(t *testing.T) {
	g := graph.Line(3)
	s := NewStatic(Params{Cfg: core.Config{Dmax: 2}, Seed: 11}, g)
	s.StepTicks(4)
	s.RemoveNode(2) // removed from sim but still in the graph
	snap := s.Snapshot()
	if _, ok := snap.Views[2]; ok {
		t.Fatal("dead node has a view")
	}
	if snap.G.HasNode(2) {
		t.Fatal("dead node still in snapshot graph")
	}
}
