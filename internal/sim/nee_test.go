package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestNeePotentialNonIncreasingAfterAgreement validates the maximality
// proof's potential function (Props. 9–11): once the run has converged,
// the number of external edges never increases again on a fixed topology.
func TestNeePotentialNonIncreasingAfterAgreement(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := NewStatic(Params{Cfg: core.Config{Dmax: 2}, Seed: seed}, graph.Clusters(3, 3, 0, false))
		if _, ok := s.RunUntilConverged(600, 3); !ok {
			t.Fatalf("seed %d: precondition convergence failed", seed)
		}
		prev := s.Snapshot().ExternalEdges()
		for r := 0; r < 40; r++ {
			s.StepRound()
			cur := s.Snapshot().ExternalEdges()
			if cur > prev {
				t.Fatalf("seed %d round %d: nee increased %d -> %d", seed, r, prev, cur)
			}
			prev = cur
		}
	}
}

// TestNeeDecreasesAcrossMerges: starting from singletons on a mergeable
// chain, nee must end strictly lower than it started (merges consumed
// external edges).
func TestNeeDecreasesAcrossMerges(t *testing.T) {
	s := NewStatic(Params{Cfg: core.Config{Dmax: 3}, Seed: 1}, graph.Line(8))
	start := s.Snapshot().ExternalEdges()
	if _, ok := s.RunUntilConverged(400, 3); !ok {
		t.Fatal("no convergence")
	}
	end := s.Snapshot().ExternalEdges()
	if end >= start {
		t.Fatalf("nee did not decrease: %d -> %d", start, end)
	}
}
