// Package sim is the deterministic discrete-event simulator: it drives a
// population of GRP nodes (internal/core) over a topology — either a fixed
// graph or a mobility-animated Euclidean world — through a radio channel
// model, on the paper's two timers (Ts ≤ Tc, the fair-channel constants τ2
// and τ1). Every experiment and benchmark runs on this engine; identical
// seeds reproduce identical executions bit for bit.
//
// Since the engine refactor the package is a thin veneer: the actual
// scheduler — the phase-structured, deterministically parallel stepper
// with timer wheels and sharded worker fan-out — lives in
// internal/engine, and the names here are aliases kept so that the
// experiment suite, the examples and the public facade read as before.
// Set Params.Workers > 1 to fan the build and compute phases out over a
// worker pool; the trace stays bit-identical to the sequential run.
package sim

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/space"
)

// Params configures a simulation (engine.Params: Cfg, Ts, Tc, Channel,
// Jitter, RandomizedSends, Seed, Workers).
type Params = engine.Params

// Sim is one running simulation (engine.Engine).
type Sim = engine.Engine

// Topology abstracts where messages can travel at the current instant.
type Topology = engine.Topology

// StaticTopology is a fixed graph (possibly mutated between ticks by the
// experiment itself, e.g. to inject a link cut).
type StaticTopology = engine.StaticTopology

// SpatialTopology animates a Euclidean world with a mobility model.
type SpatialTopology = engine.SpatialTopology

// NewSpatialTopology initializes the world with the mobility model's
// placement for the given nodes.
func NewSpatialTopology(w *space.World, mob mobility.Model, dt float64, nodes []ident.NodeID, rng *rand.Rand) *SpatialTopology {
	return engine.NewSpatialTopology(w, mob, dt, nodes, rng)
}

// New builds a simulation over the topology with one fresh GRP node per
// topology node.
func New(p Params, topo Topology) *Sim { return engine.New(p, topo) }

// NewStatic is shorthand for a fixed-graph simulation.
func NewStatic(p Params, g *graph.G) *Sim { return engine.NewStatic(p, g) }
