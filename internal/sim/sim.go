// Package sim is the deterministic discrete-event simulator: it drives a
// population of GRP nodes (internal/core) over a topology — either a fixed
// graph or a mobility-animated Euclidean world — through a radio channel
// model, on the paper's two timers (Ts ≤ Tc, the fair-channel constants τ2
// and τ1). Every experiment and benchmark runs on this engine; identical
// seeds reproduce identical executions bit for bit.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/space"
)

// Topology abstracts where messages can travel at the current instant.
type Topology interface {
	// Advance moves the topology forward by one tick.
	Advance(rng *rand.Rand)
	// Graph returns the current symmetric communication graph.
	Graph() *graph.G
	// Receivers returns the nodes that can hear a broadcast from v.
	Receivers(v ident.NodeID) []ident.NodeID
	// Nodes returns the current node population in ascending order.
	Nodes() []ident.NodeID
}

// StaticTopology is a fixed graph (possibly mutated between ticks by the
// experiment itself, e.g. to inject a link cut).
type StaticTopology struct{ G *graph.G }

// Advance implements Topology (no motion).
func (t *StaticTopology) Advance(*rand.Rand) {}

// Graph implements Topology.
func (t *StaticTopology) Graph() *graph.G { return t.G }

// Receivers implements Topology: the graph's neighbors.
func (t *StaticTopology) Receivers(v ident.NodeID) []ident.NodeID { return t.G.Neighbors(v) }

// Nodes implements Topology.
func (t *StaticTopology) Nodes() []ident.NodeID { return t.G.Nodes() }

// SpatialTopology animates a Euclidean world with a mobility model; the
// communication graph is recomputed from positions every tick.
type SpatialTopology struct {
	World *space.World
	Mob   mobility.Model
	// DT is the simulated time per tick fed to the mobility model.
	DT float64

	cached *graph.G
}

// NewSpatialTopology initializes the world with the mobility model's
// placement for the given nodes.
func NewSpatialTopology(w *space.World, mob mobility.Model, dt float64, nodes []ident.NodeID, rng *rand.Rand) *SpatialTopology {
	mob.Init(w, nodes, rng)
	t := &SpatialTopology{World: w, Mob: mob, DT: dt}
	t.cached = w.SymmetricGraph()
	return t
}

// Advance implements Topology.
func (t *SpatialTopology) Advance(rng *rand.Rand) {
	t.Mob.Step(t.World, t.DT, rng)
	t.cached = t.World.SymmetricGraph()
}

// Graph implements Topology.
func (t *SpatialTopology) Graph() *graph.G { return t.cached }

// Receivers implements Topology: the world's vicinity relation (which may
// be asymmetric; the protocol is in charge of symmetry detection).
func (t *SpatialTopology) Receivers(v ident.NodeID) []ident.NodeID { return t.World.Receivers(v) }

// Nodes implements Topology.
func (t *SpatialTopology) Nodes() []ident.NodeID { return t.World.Nodes() }

// Params configures a simulation.
type Params struct {
	// Cfg is the protocol configuration (Dmax etc.).
	Cfg core.Config
	// Ts is the send period in ticks (τ2); default 1.
	Ts int
	// Tc is the compute period in ticks (τ1 ≥ τ2); default 2·Ts.
	Tc int
	// Channel is the radio model; default radio.Perfect.
	Channel radio.Channel
	// Jitter desynchronizes the nodes' timers with random phase offsets.
	Jitter bool
	// RandomizedSends redraws each node's next send instant after every
	// transmission (uniform in [1, Ts], so the mean period stays ≈ Ts/2
	// + 1): the CSMA-style backoff that makes the fair-channel hypothesis
	// hold on the collision channel — with fixed phases, two aligned
	// neighbors would collide deterministically forever.
	RandomizedSends bool
	// Seed drives all randomness (mobility, channel, jitter).
	Seed int64
}

func (p *Params) normalize() {
	if p.Ts <= 0 {
		p.Ts = 1
	}
	if p.Tc <= 0 {
		p.Tc = 2 * p.Ts
	}
	if p.Tc < p.Ts {
		panic(fmt.Sprintf("sim: Tc (%d) must be ≥ Ts (%d)", p.Tc, p.Ts))
	}
	if p.Channel == nil {
		p.Channel = radio.Perfect{}
	}
}

// Sim is one running simulation.
type Sim struct {
	P     Params
	Topo  Topology
	Nodes map[ident.NodeID]*core.Node

	rng      *rand.Rand
	tick     int
	phase    map[ident.NodeID]int
	nextSend map[ident.NodeID]int

	// MessagesSent counts broadcasts; BytesSent their encoded sizes;
	// Deliveries successful receptions.
	MessagesSent int
	BytesSent    int
	Deliveries   int
}

// New builds a simulation over the topology with one fresh GRP node per
// topology node.
func New(p Params, topo Topology) *Sim {
	p.normalize()
	s := &Sim{
		P:        p,
		Topo:     topo,
		Nodes:    make(map[ident.NodeID]*core.Node),
		rng:      rand.New(rand.NewSource(p.Seed)),
		phase:    make(map[ident.NodeID]int),
		nextSend: make(map[ident.NodeID]int),
	}
	for _, v := range topo.Nodes() {
		s.addNode(v)
	}
	return s
}

// NewStatic is shorthand for a fixed-graph simulation.
func NewStatic(p Params, g *graph.G) *Sim {
	return New(p, &StaticTopology{G: g})
}

func (s *Sim) addNode(v ident.NodeID) {
	s.Nodes[v] = core.NewNode(v, s.P.Cfg)
	if s.P.Jitter {
		s.phase[v] = s.rng.Intn(s.P.Tc)
	}
	if s.P.RandomizedSends {
		s.nextSend[v] = s.tick + s.rng.Intn(s.P.Ts)
	}
}

// AddNode introduces a fresh node mid-run (it must already be present in
// the topology, e.g. placed in the world or added to the static graph).
func (s *Sim) AddNode(v ident.NodeID) {
	if _, ok := s.Nodes[v]; ok {
		return
	}
	s.addNode(v)
}

// RemoveNode makes a node leave: it stops sending and computing. The
// caller removes it from the topology.
func (s *Sim) RemoveNode(v ident.NodeID) {
	delete(s.Nodes, v)
	delete(s.phase, v)
}

// Tick returns the current tick count.
func (s *Sim) Tick() int { return s.tick }

// Rand exposes the simulation's RNG for workload builders that must stay
// in lockstep with the run's determinism.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Step advances one tick: mobility, sends (nodes whose send timer
// expires), channel arbitration, receptions, computes (nodes whose
// compute timer expires).
func (s *Sim) Step() {
	s.Topo.Advance(s.rng)

	var txs []radio.Tx
	for _, v := range s.sortedNodes() {
		due := (s.tick+s.phase[v])%s.P.Ts == 0
		if s.P.RandomizedSends {
			due = s.tick >= s.nextSend[v]
		}
		if due {
			if s.P.RandomizedSends {
				s.nextSend[v] = s.tick + 1 + s.rng.Intn(s.P.Ts)
			}
			rcv := s.Topo.Receivers(v)
			live := rcv[:0:0]
			for _, u := range rcv {
				if _, ok := s.Nodes[u]; ok {
					live = append(live, u)
				}
			}
			txs = append(txs, radio.Tx{Sender: v, Receivers: live})
		}
	}
	if len(txs) > 0 {
		built := make(map[ident.NodeID]core.Message, len(txs))
		for _, tx := range txs {
			m := s.Nodes[tx.Sender].BuildMessage()
			built[tx.Sender] = m
			s.MessagesSent++
			s.BytesSent += m.EncodedSize()
		}
		for _, d := range s.P.Channel.DeliverSlot(txs, s.rng) {
			if n, ok := s.Nodes[d.To]; ok {
				n.Receive(built[d.From])
				s.Deliveries++
			}
		}
	}

	for _, v := range s.sortedNodes() {
		if (s.tick+s.phase[v])%s.P.Tc == 0 {
			s.Nodes[v].Compute()
		}
	}
	s.tick++
}

// StepTicks advances k ticks.
func (s *Sim) StepTicks(k int) {
	for i := 0; i < k; i++ {
		s.Step()
	}
}

// StepRound advances one full compute period (Tc ticks): every node sends
// at least Tc/Ts times and computes at least once — the fair-channel
// window τ1.
func (s *Sim) StepRound() { s.StepTicks(s.P.Tc) }

// Snapshot captures the current configuration for the metrics predicates.
// Only live protocol nodes contribute views.
func (s *Sim) Snapshot() metrics.Snapshot {
	views := make(map[ident.NodeID]map[ident.NodeID]bool, len(s.Nodes))
	for v, n := range s.Nodes {
		views[v] = n.ViewSet()
	}
	g := s.Topo.Graph().Clone()
	for _, v := range g.Nodes() {
		if _, ok := s.Nodes[v]; !ok {
			g.RemoveNode(v)
		}
	}
	return metrics.Snapshot{G: g, Views: views}
}

// RunUntilConverged steps whole rounds until the legitimacy predicate
// ΠA ∧ ΠS ∧ ΠM holds for `stable` consecutive rounds or maxRounds passes.
// It returns the number of rounds to first convergence and whether
// convergence was reached.
func (s *Sim) RunUntilConverged(maxRounds, stable int) (rounds int, ok bool) {
	if stable < 1 {
		stable = 1
	}
	streak := 0
	first := 0
	for r := 1; r <= maxRounds; r++ {
		s.StepRound()
		if s.Snapshot().Converged(s.P.Cfg.Dmax) {
			if streak == 0 {
				first = r
			}
			streak++
			if streak >= stable {
				return first, true
			}
		} else {
			streak = 0
		}
	}
	return maxRounds, false
}

func (s *Sim) sortedNodes() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(s.Nodes))
	for v := range s.Nodes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
