package mobility

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/space"
)

func nodes(n int) []ident.NodeID {
	out := make([]ident.NodeID, n)
	for i := range out {
		out[i] = ident.NodeID(i + 1)
	}
	return out
}

func TestStaticNeverMoves(t *testing.T) {
	w := space.NewWorld(5)
	m := &Static{Side: 10}
	rng := rand.New(rand.NewSource(1))
	m.Init(w, nodes(5), rng)
	before := snapshot(w)
	for i := 0; i < 10; i++ {
		m.Step(w, 1, rng)
	}
	for v, p := range before {
		if got, _ := w.Pos(v); got != p {
			t.Fatalf("node %v moved", v)
		}
	}
}

func TestStaticJitterStaysInBounds(t *testing.T) {
	w := space.NewWorld(5)
	m := &Static{Side: 10, Jitter: 3}
	rng := rand.New(rand.NewSource(1))
	m.Init(w, nodes(8), rng)
	for i := 0; i < 50; i++ {
		m.Step(w, 1, rng)
	}
	checkBounds(t, w, 10)
}

func TestWaypointMovesTowardDestAtBoundedSpeed(t *testing.T) {
	w := space.NewWorld(5)
	m := &Waypoint{Side: 100, SpeedMin: 1, SpeedMax: 2}
	rng := rand.New(rand.NewSource(42))
	m.Init(w, nodes(6), rng)
	prev := snapshot(w)
	for i := 0; i < 200; i++ {
		m.Step(w, 1, rng)
		for v, pp := range prev {
			cur, _ := w.Pos(v)
			if d := pp.Dist(cur); d > 2.0001 {
				t.Fatalf("node %v moved %v > max speed", v, d)
			}
		}
		prev = snapshot(w)
		checkBounds(t, w, 100)
	}
}

func TestWaypointPause(t *testing.T) {
	w := space.NewWorld(5)
	m := &Waypoint{Side: 4, SpeedMin: 10, SpeedMax: 10, Pause: 5}
	rng := rand.New(rand.NewSource(3))
	m.Init(w, nodes(1), rng)
	// Speed 10 in a 4×4 box: the node reaches its destination on the first
	// step, then pauses; with pause 5 it must be stationary for ≥4 steps.
	m.Step(w, 1, rng)
	p1, _ := w.Pos(1)
	still := 0
	for i := 0; i < 5; i++ {
		m.Step(w, 1, rng)
		p2, _ := w.Pos(1)
		if p1 == p2 {
			still++
		}
		p1 = p2
	}
	if still < 4 {
		t.Fatalf("expected ≥4 stationary steps during pause, got %d", still)
	}
}

func TestWalkStaysInBoundsAndMoves(t *testing.T) {
	w := space.NewWorld(5)
	m := &Walk{Side: 10, Speed: 2, Turn: 0.2}
	rng := rand.New(rand.NewSource(7))
	m.Init(w, nodes(5), rng)
	before := snapshot(w)
	for i := 0; i < 100; i++ {
		m.Step(w, 1, rng)
		checkBounds(t, w, 10)
	}
	moved := false
	for v, p := range before {
		if got, _ := w.Pos(v); got != p {
			moved = true
		}
	}
	if !moved {
		t.Fatal("walk should move nodes")
	}
}

func TestHighwayWrapsAndKeepsLanes(t *testing.T) {
	w := space.NewWorld(5)
	m := &Highway{Length: 100, Lanes: 3, LaneGap: 5, SpeedMin: 10, SpeedMax: 30}
	rng := rand.New(rand.NewSource(1))
	m.Init(w, nodes(9), rng)
	lanes := map[ident.NodeID]float64{}
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		lanes[v] = p.Y
	}
	for i := 0; i < 50; i++ {
		m.Step(w, 1, rng)
		for _, v := range w.Nodes() {
			p, _ := w.Pos(v)
			if p.X < 0 || p.X >= 100 {
				t.Fatalf("x out of wrap range: %v", p.X)
			}
			if p.Y != lanes[v] {
				t.Fatal("lane changed")
			}
		}
	}
}

func TestConvoyRigidUntilStraggler(t *testing.T) {
	w := space.NewWorld(5)
	m := &Convoy{Spacing: 3, Speed: 10, StragglerEvery: 5, StragglerSlowdown: 4}
	rng := rand.New(rand.NewSource(1))
	m.Init(w, nodes(4), rng)
	gap := func() float64 {
		a, _ := w.Pos(1)
		b, _ := w.Pos(2)
		return a.Dist(b)
	}
	g0 := gap()
	for i := 0; i < 4; i++ {
		m.Step(w, 1, rng)
		if gap() != g0 {
			t.Fatal("convoy must be rigid before straggler brakes")
		}
	}
	for i := 0; i < 5; i++ {
		m.Step(w, 1, rng)
	}
	if gap() <= g0 {
		t.Fatal("straggler must fall behind")
	}
}

func TestGroupsKeepMembersNearCenters(t *testing.T) {
	w := space.NewWorld(5)
	m := &Groups{Side: 100, SpeedMin: 1, SpeedMax: 2, NumGroups: 3, Radius: 4}
	rng := rand.New(rand.NewSource(5))
	m.Init(w, nodes(12), rng)
	for i := 0; i < 30; i++ {
		m.Step(w, 1, rng)
	}
	// Members of the same group must be within 2*Radius of each other.
	for i, u := range w.Nodes() {
		for _, v := range w.Nodes()[i+1:] {
			if m.group[u] != m.group[v] {
				continue
			}
			pu, _ := w.Pos(u)
			pv, _ := w.Pos(v)
			if pu.Dist(pv) > 8.0001 {
				t.Fatalf("group members too far: %v", pu.Dist(pv))
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() map[ident.NodeID]space.Point {
		w := space.NewWorld(5)
		m := &Waypoint{Side: 50, SpeedMin: 1, SpeedMax: 3, Pause: 1}
		rng := rand.New(rand.NewSource(99))
		m.Init(w, nodes(10), rng)
		for i := 0; i < 50; i++ {
			m.Step(w, 0.5, rng)
		}
		return snapshot(w)
	}
	a, b := run(), run()
	for v, p := range a {
		if b[v] != p {
			t.Fatal("same seed must reproduce trajectories")
		}
	}
}

func snapshot(w *space.World) map[ident.NodeID]space.Point {
	out := make(map[ident.NodeID]space.Point)
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		out[v] = p
	}
	return out
}

func checkBounds(t *testing.T, w *space.World, side float64) {
	t.Helper()
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		if p.X < -0.0001 || p.X > side+0.0001 || p.Y < -0.0001 || p.Y > side+0.0001 {
			t.Fatalf("node %v out of bounds: %v", v, p)
		}
	}
}

func TestRingRoadContinuousDistances(t *testing.T) {
	w := space.NewWorld(5)
	m := &RingRoad{Length: 60, Lanes: 2, LaneGap: 2, SpeedMin: 10, SpeedMax: 12}
	rng := rand.New(rand.NewSource(4))
	m.Init(w, nodes(8), rng)
	// Per-step displacement must stay bounded by max speed (no wrap
	// teleports, the defect of the straight Highway model).
	prev := snapshot(w)
	for i := 0; i < 200; i++ {
		m.Step(w, 0.05, rng)
		for v, p := range prev {
			cur, _ := w.Pos(v)
			if d := p.Dist(cur); d > 12*0.05+1e-9 {
				t.Fatalf("node %v jumped %v in one step", v, d)
			}
		}
		prev = snapshot(w)
	}
}

func TestRingRoadLanesConcentric(t *testing.T) {
	w := space.NewWorld(5)
	m := &RingRoad{Length: 60, Lanes: 2, LaneGap: 2, SpeedMin: 10, SpeedMax: 10}
	m.Init(w, nodes(4), rand.New(rand.NewSource(1)))
	radius := 60.0 / (2 * 3.14159265358979)
	for i, v := range w.Nodes() {
		p, _ := w.Pos(v)
		dist := (space.Point{}).Dist(p)
		wantR := radius + float64(int(i)%2)*2
		if dist < wantR-0.01 || dist > wantR+0.01 {
			t.Fatalf("node %v radius %v, want %v", v, dist, wantR)
		}
	}
}
