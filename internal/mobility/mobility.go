// Package mobility provides the node movement models driving the dynamic
// topologies: static placement, random waypoint, random walk, a VANET-style
// highway convoy, and reference-point group mobility. All models are
// deterministic for a given rng and advance in discrete time steps.
//
// Step iterates the world's cached roster (space.World.Nodes is an
// incrementally maintained sorted slice, not a per-call sort), and a
// Place at an unchanged position is a no-op that leaves the world
// generation — and with it every downstream topology cache — untouched.
// Models therefore Step with dt == 0 as a pure no-op (no RNG draws
// either, so a zero-DT tick cannot perturb the trace).
package mobility

import (
	"math"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/space"
)

// Model places nodes and moves them step by step.
type Model interface {
	// Init sets initial positions for the given nodes.
	Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand)
	// Step advances every node by dt time units.
	Step(w *space.World, dt float64, rng *rand.Rand)
}

// Static scatters nodes uniformly in a Side×Side square and never moves
// them. With Jitter > 0, Step wobbles each node by at most Jitter per step
// (useful for "almost static" link-flap studies).
type Static struct {
	Side   float64
	Jitter float64
}

// Init implements Model.
func (s *Static) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	for _, v := range nodes {
		w.Place(v, space.Point{X: rng.Float64() * s.Side, Y: rng.Float64() * s.Side})
	}
}

// Step implements Model.
func (s *Static) Step(w *space.World, dt float64, rng *rand.Rand) {
	if s.Jitter == 0 || dt == 0 {
		return
	}
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		w.Place(v, clamp(p.Add((rng.Float64()*2-1)*s.Jitter, (rng.Float64()*2-1)*s.Jitter), s.Side))
	}
}

// Waypoint is the classic random-waypoint model in a Side×Side square:
// each node picks a uniform destination and speed in [SpeedMin, SpeedMax],
// travels there, pauses Pause time units, repeats.
type Waypoint struct {
	Side, SpeedMin, SpeedMax, Pause float64

	state map[ident.NodeID]*wpState
}

type wpState struct {
	dest    space.Point
	speed   float64
	pausing float64
}

// Init implements Model.
func (m *Waypoint) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	m.state = make(map[ident.NodeID]*wpState, len(nodes))
	for _, v := range nodes {
		w.Place(v, space.Point{X: rng.Float64() * m.Side, Y: rng.Float64() * m.Side})
		m.state[v] = m.newLeg(rng)
	}
}

func (m *Waypoint) newLeg(rng *rand.Rand) *wpState {
	return &wpState{
		dest:  space.Point{X: rng.Float64() * m.Side, Y: rng.Float64() * m.Side},
		speed: m.SpeedMin + rng.Float64()*(m.SpeedMax-m.SpeedMin),
	}
}

// Step implements Model.
func (m *Waypoint) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	for _, v := range w.Nodes() {
		m.stepNode(w, v, dt, rng)
	}
}

// stepNode advances one node by dt along its current leg (drawing a new
// leg on arrival) — the per-node body shared by Waypoint and the models
// that move only a subset (Commuter).
func (m *Waypoint) stepNode(w *space.World, v ident.NodeID, dt float64, rng *rand.Rand) {
	st := m.state[v]
	if st == nil {
		st = m.newLeg(rng)
		m.state[v] = st
	}
	if st.pausing > 0 {
		st.pausing -= dt
		return
	}
	p, _ := w.Pos(v)
	d := p.Dist(st.dest)
	travel := st.speed * dt
	if travel >= d {
		w.Place(v, st.dest)
		ns := m.newLeg(rng)
		ns.pausing = m.Pause
		m.state[v] = ns
		return
	}
	w.Place(v, p.Add((st.dest.X-p.X)/d*travel, (st.dest.Y-p.Y)/d*travel))
}

// Walk is a bounded random walk: each node keeps a heading, moves at Speed,
// and re-draws the heading with probability Turn per step; it reflects off
// the square's borders.
type Walk struct {
	Side, Speed, Turn float64

	heading map[ident.NodeID]float64
}

// Init implements Model.
func (m *Walk) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	m.heading = make(map[ident.NodeID]float64, len(nodes))
	for _, v := range nodes {
		w.Place(v, space.Point{X: rng.Float64() * m.Side, Y: rng.Float64() * m.Side})
		m.heading[v] = rng.Float64() * 2 * math.Pi
	}
}

// Step implements Model.
func (m *Walk) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	for _, v := range w.Nodes() {
		h, ok := m.heading[v]
		if !ok || rng.Float64() < m.Turn {
			h = rng.Float64() * 2 * math.Pi
		}
		p, _ := w.Pos(v)
		np := p.Add(math.Cos(h)*m.Speed*dt, math.Sin(h)*m.Speed*dt)
		if np.X < 0 || np.X > m.Side {
			h = math.Pi - h
			np.X = math.Min(math.Max(np.X, 0), m.Side)
		}
		if np.Y < 0 || np.Y > m.Side {
			h = -h
			np.Y = math.Min(math.Max(np.Y, 0), m.Side)
		}
		m.heading[v] = h
		w.Place(v, np)
	}
}

// Highway is a VANET-style multi-lane road of length Length. Vehicles keep
// a per-vehicle speed drawn from [SpeedMin, SpeedMax] (lane-dependent bias:
// higher lanes drive faster) and wrap around, so relative speeds — the
// source of topology change — stay bounded while absolute motion is
// continuous. Lane spacing is LaneGap.
type Highway struct {
	Length             float64
	Lanes              int
	LaneGap            float64
	SpeedMin, SpeedMax float64

	speed map[ident.NodeID]float64
}

// Init implements Model.
func (m *Highway) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	if m.Lanes <= 0 {
		m.Lanes = 1
	}
	m.speed = make(map[ident.NodeID]float64, len(nodes))
	for i, v := range nodes {
		lane := i % m.Lanes
		base := m.SpeedMin + (m.SpeedMax-m.SpeedMin)*float64(lane)/float64(m.Lanes)
		span := (m.SpeedMax - m.SpeedMin) / float64(m.Lanes)
		m.speed[v] = base + rng.Float64()*span
		w.Place(v, space.Point{X: rng.Float64() * m.Length, Y: float64(lane) * m.LaneGap})
	}
}

// Step implements Model.
func (m *Highway) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		x := math.Mod(p.X+m.speed[v]*dt, m.Length)
		if x < 0 {
			x += m.Length
		}
		w.Place(v, space.Point{X: x, Y: p.Y})
	}
}

// Convoy places nodes as a platoon of vehicles with identical speed and
// fixed spacing; the whole platoon translates rigidly, so the topology is
// invariant — the ideal ΠT-preserving mobility. With StragglerEvery > 0,
// every StragglerEvery time units the tail vehicle brakes by
// StragglerSlowdown, eventually stretching the platoon beyond radio range —
// the controlled ΠT violation used by the continuity experiments.
type Convoy struct {
	Spacing, Speed    float64
	StragglerEvery    float64
	StragglerSlowdown float64

	tail    ident.NodeID
	elapsed float64
	braked  bool
}

// Init implements Model.
func (m *Convoy) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	for i, v := range nodes {
		w.Place(v, space.Point{X: float64(i) * m.Spacing, Y: 0})
		m.tail = v
	}
	if len(nodes) > 0 {
		m.tail = nodes[0] // lowest-x vehicle trails the convoy
	}
}

// Step implements Model.
func (m *Convoy) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	m.elapsed += dt
	if m.StragglerEvery > 0 && m.elapsed >= m.StragglerEvery {
		m.braked = true
	}
	for _, v := range w.Nodes() {
		p, _ := w.Pos(v)
		sp := m.Speed
		if m.braked && v == m.tail {
			sp -= m.StragglerSlowdown
		}
		w.Place(v, p.Add(sp*dt, 0))
	}
}

// Groups is reference-point group mobility: group centers follow a
// Waypoint model; members stay within Radius of their center with a small
// independent jitter. Membership is by node order: node i belongs to group
// i % NumGroups.
type Groups struct {
	Side, SpeedMin, SpeedMax float64
	NumGroups                int
	Radius                   float64

	centers  *Waypoint
	centerID []ident.NodeID
	group    map[ident.NodeID]int
	cw       *space.World
}

// Init implements Model.
func (m *Groups) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	if m.NumGroups <= 0 {
		m.NumGroups = 1
	}
	m.centers = &Waypoint{Side: m.Side, SpeedMin: m.SpeedMin, SpeedMax: m.SpeedMax}
	m.cw = space.NewWorld(0)
	m.centerID = make([]ident.NodeID, m.NumGroups)
	for i := range m.centerID {
		m.centerID[i] = ident.NodeID(i + 1)
	}
	m.centers.Init(m.cw, m.centerID, rng)
	m.group = make(map[ident.NodeID]int, len(nodes))
	for i, v := range nodes {
		m.group[v] = i % m.NumGroups
		c, _ := m.cw.Pos(m.centerID[m.group[v]])
		w.Place(v, jitterAround(c, m.Radius, rng))
	}
}

// Step implements Model.
func (m *Groups) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	m.centers.Step(m.cw, dt, rng)
	for _, v := range w.Nodes() {
		c, _ := m.cw.Pos(m.centerID[m.group[v]])
		w.Place(v, jitterAround(c, m.Radius, rng))
	}
}

func jitterAround(c space.Point, radius float64, rng *rand.Rand) space.Point {
	ang := rng.Float64() * 2 * math.Pi
	r := rng.Float64() * radius
	return c.Add(math.Cos(ang)*r, math.Sin(ang)*r)
}

func clamp(p space.Point, side float64) space.Point {
	return space.Point{
		X: math.Min(math.Max(p.X, 0), side),
		Y: math.Min(math.Max(p.Y, 0), side),
	}
}

// RingRoad is a circular road: vehicles drive at per-vehicle speeds along
// a circle of circumference Length, with lanes as concentric circles
// LaneGap apart. Unlike Highway (a straight road with modular wrap, whose
// Euclidean wrap discontinuity breaks links artificially), distances on
// the ring are continuous — the clean model for long steady-state
// mobility studies like the group-lifetime experiment.
type RingRoad struct {
	Length             float64
	Lanes              int
	LaneGap            float64
	SpeedMin, SpeedMax float64
	// Opposing reverses the direction of odd lanes — oncoming traffic,
	// the classic VANET source of fleeting radio contacts.
	Opposing bool

	angSpeed map[ident.NodeID]float64 // angular speed (rad per time unit)
	angle    map[ident.NodeID]float64
	lane     map[ident.NodeID]int
}

// Init implements Model.
func (m *RingRoad) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	if m.Lanes <= 0 {
		m.Lanes = 1
	}
	radius := m.Length / (2 * math.Pi)
	m.angSpeed = make(map[ident.NodeID]float64, len(nodes))
	m.angle = make(map[ident.NodeID]float64, len(nodes))
	m.lane = make(map[ident.NodeID]int, len(nodes))
	for i, v := range nodes {
		lane := i % m.Lanes
		base := m.SpeedMin + (m.SpeedMax-m.SpeedMin)*float64(lane)/float64(m.Lanes)
		span := (m.SpeedMax - m.SpeedMin) / float64(m.Lanes)
		speed := base + rng.Float64()*span
		// Angular speed uses the vehicle's own lane radius, so the
		// linear speed equals the drawn speed regardless of lane.
		m.angSpeed[v] = speed / (radius + float64(lane)*m.LaneGap)
		if m.Opposing && lane%2 == 1 {
			m.angSpeed[v] = -m.angSpeed[v]
		}
		m.angle[v] = rng.Float64() * 2 * math.Pi
		m.lane[v] = lane
		m.place(w, v, radius)
	}
}

// Step implements Model.
func (m *RingRoad) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 {
		return
	}
	radius := m.Length / (2 * math.Pi)
	for _, v := range w.Nodes() {
		m.angle[v] = math.Mod(m.angle[v]+m.angSpeed[v]*dt, 2*math.Pi)
		m.place(w, v, radius)
	}
}

func (m *RingRoad) place(w *space.World, v ident.NodeID, radius float64) {
	r := radius + float64(m.lane[v])*m.LaneGap
	w.Place(v, space.Point{X: r * math.Cos(m.angle[v]), Y: r * math.Sin(m.angle[v])})
}

// Commuter models a mostly-parked population: a fixed ActiveFraction of
// the nodes drive random-waypoint journeys while the rest stay parked
// where they were placed (a sensor field with a few mobile collectors, a
// parking lot with a trickle of traffic). Because only the commuters ever
// move, the per-tick dirty set the spatial index tracks stays small and
// the delta-incremental SymmetricGraph rebuild applies every tick — this
// is the mobility regime the ApplyDelta path is built for, where the
// all-moving Waypoint regime always falls back to the full rebuild.
type Commuter struct {
	Side, SpeedMin, SpeedMax, Pause float64
	// ActiveFraction is the fraction of nodes that commute (clamped to
	// [0,1]); the default 0 parks everyone.
	ActiveFraction float64

	wp     Waypoint
	active map[ident.NodeID]bool
}

// Init implements Model: places everyone uniformly and draws the
// commuting subset deterministically from rng (every k-th node of a
// shuffled order, so the subset is unbiased across IDs).
func (m *Commuter) Init(w *space.World, nodes []ident.NodeID, rng *rand.Rand) {
	m.wp = Waypoint{Side: m.Side, SpeedMin: m.SpeedMin, SpeedMax: m.SpeedMax, Pause: m.Pause}
	f := m.ActiveFraction
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	k := int(f * float64(len(nodes)))
	perm := rng.Perm(len(nodes))
	m.active = make(map[ident.NodeID]bool, k)
	for _, i := range perm[:k] {
		m.active[nodes[i]] = true
	}
	// Waypoint.Init places every node and assigns legs; parked nodes
	// simply never execute theirs.
	m.wp.Init(w, nodes, rng)
}

// Step implements Model: advances only the commuting subset through the
// shared waypoint leg logic, drawing exactly one leg's worth of
// randomness per arriving commuter (parked nodes consume no RNG, so
// traces are independent of the parked count).
func (m *Commuter) Step(w *space.World, dt float64, rng *rand.Rand) {
	if dt == 0 || len(m.active) == 0 {
		return
	}
	for _, v := range w.Nodes() {
		if m.active[v] {
			m.wp.stepNode(w, v, dt, rng)
		}
	}
}
