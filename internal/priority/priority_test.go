package priority

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func TestLessClockThenID(t *testing.T) {
	a := P{Clock: 1, ID: 9}
	b := P{Clock: 2, ID: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("clock must dominate")
	}
	c := P{Clock: 1, ID: 2}
	if !c.Less(a) || a.Less(c) {
		t.Fatal("ID must break clock ties")
	}
	if a.Less(a) {
		t.Fatal("Less must be strict")
	}
}

func TestTickLowersPriorityRank(t *testing.T) {
	p := New(5)
	if !p.Less(p.Tick()) {
		t.Fatal("ticking must make priority strictly worse")
	}
}

func TestMinAndMinOf(t *testing.T) {
	a, b := P{Clock: 3, ID: 1}, P{Clock: 1, ID: 7}
	if a.Min(b) != b || b.Min(a) != b {
		t.Fatal("Min wrong")
	}
	if got := MinOf(); got != Infinite {
		t.Fatalf("MinOf() = %v", got)
	}
	if got := MinOf(a, b, Infinite); got != b {
		t.Fatalf("MinOf = %v", got)
	}
}

func TestInfiniteIsIdentity(t *testing.T) {
	a := P{Clock: 1 << 40, ID: 3}
	if !a.Less(Infinite) || Infinite.Less(a) {
		t.Fatal("Infinite must lose to everything")
	}
	if !Infinite.IsInfinite() || a.IsInfinite() {
		t.Fatal("IsInfinite wrong")
	}
}

func TestString(t *testing.T) {
	if s := New(3).String(); s != "pr(0@n3)" {
		t.Fatalf("String = %q", s)
	}
	if s := Infinite.String(); s != "pr(∞)" {
		t.Fatalf("Infinite.String = %q", s)
	}
}

func TestQuickTotalOrder(t *testing.T) {
	// Less must be a strict total order: trichotomy + transitivity via sort.
	f := func(clocks []uint16, ids []uint16) bool {
		n := len(clocks)
		if len(ids) < n {
			n = len(ids)
		}
		ps := make([]P, n)
		for i := 0; i < n; i++ {
			ps[i] = P{Clock: uint64(clocks[i]), ID: ident.NodeID(ids[i])}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
		for i := 1; i < len(ps); i++ {
			if ps[i].Less(ps[i-1]) {
				return false
			}
		}
		for i := range ps {
			for j := range ps {
				a, b := ps[i], ps[j]
				lt, gt, eq := a.Less(b), b.Less(a), a == b
				ones := 0
				for _, v := range []bool{lt, gt, eq} {
					if v {
						ones++
					}
				}
				if ones != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinCommutativeAssociative(t *testing.T) {
	f := func(c1, c2, c3 uint32, i1, i2, i3 uint16) bool {
		a := P{Clock: uint64(c1), ID: ident.NodeID(i1)}
		b := P{Clock: uint64(c2), ID: ident.NodeID(i2)}
		c := P{Clock: uint64(c3), ID: ident.NodeID(i3)}
		return a.Min(b) == b.Min(a) && a.Min(b).Min(c) == a.Min(b.Min(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
