// Package priority implements the totally ordered node priorities of the
// GRP protocol and their lift to group priorities.
//
// The paper's "powerful implementation" is oldness: a node's priority is a
// logical clock (Lamport) that ticks while the node is alone and freezes
// once it belongs to a group of more than one node. Smaller priority wins
// (pr(u) < pr(v) means u has the priority), so long-lived group members
// dominate newcomers, and the group priority — the minimum over members —
// lets whole groups be compared when a merge conflict must be resolved.
package priority

import (
	"fmt"

	"repro/internal/ident"
)

// P is a node priority: a logical clock with the node ID as tie-break, so
// the order is total as the protocol requires.
type P struct {
	Clock uint64
	ID    ident.NodeID
}

// Infinite is a priority larger than any real one; it is the identity for
// Min and the natural "unknown" value.
var Infinite = P{Clock: ^uint64(0), ID: ident.NodeID(^uint32(0))}

// New returns the initial priority of node id (clock 0).
func New(id ident.NodeID) P { return P{ID: id} }

// Less reports whether p wins over o (strictly smaller in the total order).
func (p P) Less(o P) bool {
	if p.Clock != o.Clock {
		return p.Clock < o.Clock
	}
	return p.ID < o.ID
}

// Min returns the winning (smaller) of two priorities.
func (p P) Min(o P) P {
	if o.Less(p) {
		return o
	}
	return p
}

// Tick returns the priority with the logical clock advanced by one. Called
// at each computation while the node is not in a group.
func (p P) Tick() P { return P{Clock: p.Clock + 1, ID: p.ID} }

// IsInfinite reports whether p is the Infinite sentinel.
func (p P) IsInfinite() bool { return p == Infinite }

// String implements fmt.Stringer.
func (p P) String() string {
	if p.IsInfinite() {
		return "pr(∞)"
	}
	return fmt.Sprintf("pr(%d@%s)", p.Clock, p.ID)
}

// MinOf returns the smallest priority among ps, or Infinite when empty.
// This is the paper's group priority when applied to a view's members.
func MinOf(ps ...P) P {
	out := Infinite
	for _, p := range ps {
		out = out.Min(p)
	}
	return out
}
