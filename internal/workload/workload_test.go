package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

func TestCorruptGhostsInjectsAndHeals(t *testing.T) {
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 3}, Seed: 1}, graph.Line(6))
	rng := rand.New(rand.NewSource(2))
	n := Corrupt(s, CorruptGhosts, 1.0, rng)
	if n != 6 {
		t.Fatalf("corrupted %d, want 6", n)
	}
	if !HasGhosts(s) {
		t.Fatal("ghosts not injected")
	}
	for i := 0; i < 40 && HasGhosts(s); i++ {
		s.StepRound()
	}
	if HasGhosts(s) {
		t.Fatal("ghosts survived (Prop. 2 violated)")
	}
}

func TestCorruptOversizedShrinks(t *testing.T) {
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 2}, Seed: 1}, graph.Line(5))
	Corrupt(s, CorruptOversized, 1.0, rand.New(rand.NewSource(3)))
	if MaxListLen(s) <= 3 {
		t.Fatal("oversized lists not injected")
	}
	s.StepRound()
	if MaxListLen(s) > 3 {
		t.Fatalf("lists still oversized after one compute: %d (Prop. 1 violated)", MaxListLen(s))
	}
}

func TestCorruptViewsAndPrioritiesRecover(t *testing.T) {
	for _, kind := range []CorruptionKind{CorruptViews, CorruptPriorities} {
		s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 4}, Seed: 1}, graph.Line(5))
		Corrupt(s, kind, 0.6, rand.New(rand.NewSource(4)))
		if _, ok := s.RunUntilConverged(200, 3); !ok {
			t.Fatalf("kind %d: no reconvergence: %v", kind, s.Snapshot().Groups())
		}
	}
}

func TestCorruptFractionZero(t *testing.T) {
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 2}, Seed: 1}, graph.Line(4))
	if n := Corrupt(s, CorruptGhosts, 0, rand.New(rand.NewSource(1))); n != 0 {
		t.Fatalf("corrupted %d nodes at fraction 0", n)
	}
}

func TestGentleDrift(t *testing.T) {
	d := &GentleDrift{N: 5, Dmax: 4, PreserveRounds: 10}
	g := d.Graph()
	if g.NumNodes() != 5 {
		t.Fatal("graph wrong")
	}
	for r := 0; r < 10; r++ {
		if d.Apply(g, r) {
			t.Fatalf("change before PreserveRounds at %d", r)
		}
	}
	if !d.Apply(g, 10) {
		t.Fatal("no change at PreserveRounds")
	}
	if g.HasEdge(4, 5) {
		t.Fatal("tail edge not cut")
	}
	if d.Apply(g, 11) {
		t.Fatal("change applied twice")
	}
}

func TestMergeGadgets(t *testing.T) {
	if g := MergeChain(3, 3); !g.Connected() || g.NumNodes() != 9 {
		t.Fatalf("merge chain wrong: %v", g)
	}
	ring := MergeRing(3, 3)
	chain := MergeChain(3, 3)
	if ring.NumEdges() != chain.NumEdges()+1 {
		t.Fatal("merge ring must close the loop")
	}
}

func TestDoubleJoin(t *testing.T) {
	g, l, r := DoubleJoin(4, 4)
	if !g.HasEdge(l, 1) || !g.HasEdge(4, r) {
		t.Fatal("joiners not attached")
	}
	if d := g.Dist(l, r); d != 5 {
		t.Fatalf("joiner distance = %d, want 5 (> Dmax=4)", d)
	}
}

func TestDoubleJoinQuarantineProtectsAgreement(t *testing.T) {
	// With quarantine the core group admits at most one joiner and views
	// stay consistent; the run must reconverge to a legal partition.
	g, _, _ := DoubleJoin(4, 4)
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 4}, Seed: 7}, g)
	if _, ok := s.RunUntilConverged(300, 3); !ok {
		t.Fatalf("double join did not converge: %v", s.Snapshot().Groups())
	}
	snap := s.Snapshot()
	if !snap.Safety(4) {
		t.Fatalf("safety violated: %v", snap.Groups())
	}
}
