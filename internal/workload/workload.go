// Package workload builds the experiment scenarios: corrupted initial
// configurations for the self-stabilization experiments, mobility traces
// that provably preserve or violate the topological predicate ΠT, and the
// structured merge gadgets (chains and rings of groups) from the paper's
// discussion.
package workload

import (
	"math/rand"

	"repro/internal/antlist"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/priority"
	"repro/internal/sim"
)

// CorruptionKind selects what kind of garbage to inject for the
// self-stabilization experiments (Propositions 1 and 2).
type CorruptionKind int

const (
	// CorruptGhosts injects non-existent node IDs into lists.
	CorruptGhosts CorruptionKind = iota
	// CorruptOversized injects lists longer than Dmax+1.
	CorruptOversized
	// CorruptViews injects bogus view memberships (agreement damage).
	CorruptViews
	// CorruptPriorities injects wildly diverging clocks.
	CorruptPriorities
)

// Corrupt injects garbage of the given kind into a fraction of the
// simulation's nodes, deterministically from rng. It returns the number
// of corrupted nodes.
func Corrupt(s *sim.Sim, kind CorruptionKind, fraction float64, rng *rand.Rand) int {
	corrupted := 0
	ghostBase := uint32(60000)
	for _, v := range s.Topo.Nodes() {
		n, ok := s.Nodes[v]
		if !ok || rng.Float64() >= fraction {
			continue
		}
		corrupted++
		switch kind {
		case CorruptGhosts:
			l := antlist.FromSets(
				antlist.NewSet(ident.Plain(v)),
				antlist.NewSet(ident.Plain(ident.NodeID(ghostBase+rng.Uint32()%1000))),
				antlist.NewSet(ident.Plain(ident.NodeID(ghostBase+1000+rng.Uint32()%1000))),
			)
			n.LoadState(l, nil, nil, priority.P{Clock: uint64(rng.Intn(10)), ID: v})
		case CorruptOversized:
			depth := s.P.Cfg.Dmax + 3 + rng.Intn(4)
			sets := make([]antlist.Set, depth)
			sets[0] = antlist.NewSet(ident.Plain(v))
			for i := 1; i < depth; i++ {
				sets[i] = antlist.NewSet(ident.Plain(ident.NodeID(ghostBase + uint32(i)*17 + rng.Uint32()%100)))
			}
			n.LoadState(antlist.FromSets(sets...), nil, nil, priority.P{Clock: uint64(rng.Intn(10)), ID: v})
		case CorruptViews:
			view := map[ident.NodeID]bool{v: true}
			for i := 0; i < 3; i++ {
				view[ident.NodeID(ghostBase+rng.Uint32()%50)] = true
			}
			n.LoadState(antlist.Singleton(ident.Plain(v)), view, nil, priority.New(v))
		case CorruptPriorities:
			n.LoadState(antlist.Singleton(ident.Plain(v)), nil, nil,
				priority.P{Clock: rng.Uint64() % (1 << 40), ID: v})
		}
	}
	return corrupted
}

// HasGhosts reports whether any node's list mentions an ID that is not a
// live node of the simulation.
func HasGhosts(s *sim.Sim) bool {
	for _, n := range s.Nodes {
		for _, u := range n.List().IDs() {
			if _, ok := s.Nodes[u]; !ok {
				return true
			}
		}
	}
	return false
}

// MaxListLen returns the longest list length across all nodes.
func MaxListLen(s *sim.Sim) int {
	out := 0
	for _, n := range s.Nodes {
		if l := n.List().Len(); l > out {
			out = l
		}
	}
	return out
}

// GentleDrift is a mobility scenario wrapper for the continuity
// experiments: a platoon on a line whose spacing grows so slowly that the
// diameter bound is preserved for preserveRounds rounds (ΠT holds), and
// is violated afterwards. It is realized as a static graph mutated by
// Apply at the right tick, which gives exact control over when ΠT breaks.
type GentleDrift struct {
	N              int
	Dmax           int
	PreserveRounds int

	applied bool
}

// Graph returns the initial topology: a line of N nodes.
func (d *GentleDrift) Graph() *graph.G { return graph.Line(d.N) }

// Apply mutates the topology at the given round: before PreserveRounds
// nothing changes (ΠT holds trivially); at PreserveRounds the tail edge is
// cut (stretching the tail beyond any bound — ΠT false). Returns true if
// a change happened this round.
func (d *GentleDrift) Apply(g *graph.G, round int) bool {
	if d.applied || round < d.PreserveRounds {
		return false
	}
	g.RemoveEdge(ident.NodeID(d.N-1), ident.NodeID(d.N))
	d.applied = true
	return true
}

// MergeChain returns a static scenario where k groups sit on a line with
// one-hop gaps, sized so that consecutive groups can merge under dmax —
// exercising repeated pairwise merging (the maximality property).
func MergeChain(k, groupSize int) *graph.G {
	return graph.Clusters(k, groupSize, 0, false)
}

// MergeRing is the paper's "loop of groups willing to merge": k groups in
// a cycle, every consecutive pair mergeable. Group priorities must break
// the symmetry.
func MergeRing(k, groupSize int) *graph.G {
	return graph.Clusters(k, groupSize, 0, true)
}

// DoubleJoin is the concurrent-admission gadget for the quarantine
// experiment: a core line of coreN nodes plus two fresh nodes attached at
// the opposite ends, sized so that each newcomer is individually
// admissible but admitting both violates the diameter bound. The two
// joiners are the highest IDs.
func DoubleJoin(coreN, dmax int) (*graph.G, ident.NodeID, ident.NodeID) {
	g := graph.Line(coreN)
	left := ident.NodeID(coreN + 1)
	right := ident.NodeID(coreN + 2)
	g.AddEdge(left, 1)
	g.AddEdge(ident.NodeID(coreN), right)
	return g, left, right
}
