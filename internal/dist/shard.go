package dist

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/space"
	"repro/internal/wire"
)

// Config describes one distributed soak run. Every shard process must be
// constructed from an identical Config — the world replication depends
// on it (same seed ⟹ same placement, same mobility stream, same graphs).
type Config struct {
	// Soak is the scenario, shared verbatim with the single-process
	// driver so a 1-vs-N comparison runs the identical world.
	Soak obs.SoakConfig
	// Shards is the number of slab owners (1..64, so a peer set fits a
	// bit mask).
	Shards int
}

// Validate rejects configurations the deterministic split cannot carry:
// the boundary protocol replays broadcasts from replicas, so anything
// that would consume the engines' RNG streams asymmetrically or change
// membership mid-run is out of scope for the distributed wrapper.
func (c *Config) Validate() error {
	if c.Shards < 1 || c.Shards > 64 {
		return fmt.Errorf("dist: %d shards outside [1,64]", c.Shards)
	}
	if c.Soak.JoinRate != 0 || c.Soak.LeaveRate != 0 {
		return fmt.Errorf("dist: membership churn is not distributed")
	}
	if c.Soak.Fault != nil {
		return fmt.Errorf("dist: fault injection is not distributed")
	}
	if c.Soak.Channel != nil {
		return fmt.Errorf("dist: only the Perfect channel is distributed (arbitration must not consume the RNG)")
	}
	if c.Soak.Duration != 0 {
		return fmt.Errorf("dist: wall-clock caps would desynchronize the shard barrier")
	}
	return nil
}

// ownedTopology restricts an engine's membership to the owned slab
// while every graph query still answers from the full replicated world
// — exactly what makes an owned sender's receiver row (and therefore
// its boundary fan-out) identical to the single-process engine's.
type ownedTopology struct {
	*engine.SpatialTopology
	owned []ident.NodeID
}

func (t *ownedTopology) Nodes() []ident.NodeID { return t.owned }

// genVer is a per-peer elision key: the (incarnation, state version)
// signature of the last frame shipped for a sender.
type genVer struct{ gen, ver uint64 }

// ghost is the cached replica of a foreign boundary sender's broadcast.
// An elided entry replays it; a framed entry refreshes it.
type ghost struct {
	gen, ver uint64
	msg      core.Message
}

// pendEntry is one boundary-crossing broadcast of the current tick,
// pointing into the per-tick frame arena.
type pendEntry struct {
	sender   ident.NodeID
	gen, ver uint64
	off, n   int
	mask     uint64 // peers owning ≥1 receiver (bit per shard)
}

// rowMask caches the peer mask derived from a receiver row, validated
// by row identity (same discipline as the engine's receiver cache:
// unchanged head pointer + length ⟹ unchanged content).
type rowMask struct {
	row  []ident.NodeID
	mask uint64
}

// Shard is one slab owner: a full world replica plus an engine over the
// owned population, speaking the ghost-boundary protocol with its peers.
type Shard struct {
	Index int
	N     int

	E     *engine.Engine
	World *space.World
	Topo  *engine.SpatialTopology
	Part  Partition
	Owned []ident.NodeID

	owners map[ident.NodeID]uint8

	tr  Transport
	seq uint64
	reg *introspect.Registry

	// Sender side.
	arena    []byte
	pend     []pendEntry
	batch    wire.BoundaryBatch
	outBufs  [][]byte
	out      [][]byte
	lastSent []map[ident.NodeID]genVer
	masks    []rowMask
	rowBuf   []ident.NodeID

	// Receiver side.
	ghosts map[ident.NodeID]*ghost
	ext    []engine.ExternalDelivery

	// Soak is the normalized scenario (NewShard's copy).
	Soak obs.SoakConfig
	// lastViewVer gates the per-round view sync to the lead (slot-indexed
	// on this shard's engine; see collectSync).
	lastViewVer []uint64
}

// NewShard replicates the scenario world and attaches shard index to
// the transport. cfg must be Validate-clean and identical across peers.
func NewShard(cfg Config, index int, tr Transport) (*Shard, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if index < 0 || index >= cfg.Shards {
		return nil, fmt.Errorf("dist: shard index %d outside %d shards", index, cfg.Shards)
	}
	soak := cfg.Soak
	w, mob, ids := obs.BuildSoakWorld(&soak)
	topo := engine.NewSpatialTopology(w, mob, soak.DT, ids, rand.New(rand.NewSource(soak.Seed)))

	xs := make([]float64, len(ids))
	for i, v := range ids {
		p, ok := w.Pos(v)
		if !ok {
			return nil, fmt.Errorf("dist: node %d not placed by mobility init", v)
		}
		xs[i] = p.X
	}
	part := MakePartition(xs, cfg.Shards)
	owners := make(map[ident.NodeID]uint8, len(ids))
	var owned []ident.NodeID
	for i, v := range ids {
		o := uint8(part.Owner(xs[i]))
		owners[v] = o
		if int(o) == index {
			owned = append(owned, v)
		}
	}

	// engine.New propagates Workers into a *SpatialTopology's world; the
	// owned wrapper hides the concrete type, so propagate by hand.
	if w.Workers == 0 {
		w.Workers = soak.Workers
	}
	e := engine.New(engine.Params{
		Cfg:     core.Config{Dmax: soak.Dmax},
		Seed:    soak.Seed,
		Workers: soak.Workers,
	}, &ownedTopology{SpatialTopology: topo, owned: owned})

	sh := &Shard{
		Index:    index,
		N:        cfg.Shards,
		E:        e,
		World:    w,
		Topo:     topo,
		Part:     part,
		Owned:    owned,
		owners:   owners,
		tr:       tr,
		reg:      e.Introspect(),
		outBufs:  make([][]byte, cfg.Shards),
		out:      make([][]byte, cfg.Shards),
		lastSent: make([]map[ident.NodeID]genVer, cfg.Shards),
		masks:    make([]rowMask, e.SlotCap()),
		ghosts:   make(map[ident.NodeID]*ghost),
		Soak:     soak,
	}
	for p := range sh.lastSent {
		if p != index {
			sh.lastSent[p] = make(map[ident.NodeID]genVer)
		}
	}
	// Every fresh node starts at view version 1 ({self}); the lead mirror
	// is seeded with the same, so nothing needs syncing until a view
	// actually moves.
	sh.lastViewVer = make([]uint64, e.SlotCap())
	for _, v := range owned {
		sh.lastViewVer[e.SlotOf(v)] = 1
	}
	return sh, nil
}

// Tick runs one engine tick with the boundary exchange between the
// build and deliver phases: build locally, ship the owned boundary
// broadcasts, ingest the peers', then finish the tick with the foreign
// receptions injected. The Exchange is the per-tick barrier.
func (sh *Shard) Tick() error {
	sh.E.AdvancePhase()
	txs := sh.E.BuildPhase()
	sh.routeBoundary(txs)
	in, err := sh.tr.Exchange(sh.seq, sh.out)
	if err != nil {
		return err
	}
	ext, err := sh.ingest(in)
	if err != nil {
		return err
	}
	sh.E.FinishTick(ext)
	sh.seq++
	return nil
}

// StepRound runs Tc ticks (one protocol round).
func (sh *Shard) StepRound() error {
	for i := 0; i < sh.E.P.Tc; i++ {
		if err := sh.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// receiverRow answers a sender's full receiver set from the replicated
// world, through the engine's exact decision procedure (the symmetric
// row when servable, the vicinity scan otherwise) so the boundary
// fan-out matches the single-process deliver phase bit for bit. stable
// reports whether the row may be identity-cached (scan results live in
// a reused buffer and may not).
func (sh *Shard) receiverRow(v ident.NodeID) (row []ident.NodeID, stable bool) {
	if row, ok := sh.Topo.ReceiverRow(v); ok {
		return row, true
	}
	sh.rowBuf = sh.Topo.AppendReceivers(v, sh.rowBuf[:0])
	return sh.rowBuf, false
}

func rowsAlias(a, b []ident.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// foreignMask returns the peers owning at least one receiver of v's
// broadcast, identity-cached per sender slot against the row.
func (sh *Shard) foreignMask(v ident.NodeID) uint64 {
	row, stable := sh.receiverRow(v)
	if slot := sh.E.SlotOf(v); stable && slot >= 0 && int(slot) < len(sh.masks) {
		rm := &sh.masks[slot]
		if rowsAlias(rm.row, row) {
			return rm.mask
		}
		rm.row, rm.mask = row, sh.maskOf(row)
		return rm.mask
	}
	return sh.maskOf(row)
}

func (sh *Shard) maskOf(row []ident.NodeID) uint64 {
	var mask uint64
	for _, u := range row {
		if o := sh.owners[u]; int(o) != sh.Index {
			mask |= 1 << o
		}
	}
	return mask
}

// routeBoundary builds the per-peer boundary batches for this tick's
// broadcasts. A sender appears in a peer's batch exactly when the peer
// owns one of its receivers; the frame is included only when the
// sender's (gen, ver) moved since the last frame shipped to that peer —
// otherwise the entry is elided and the peer replays its ghost.
func (sh *Shard) routeBoundary(txs []radio.Tx) {
	sh.arena = sh.arena[:0]
	sh.pend = sh.pend[:0]
	for _, tx := range txs {
		mask := sh.foreignMask(tx.Sender)
		if mask == 0 {
			continue
		}
		msg, gen, ver, ok := sh.E.BroadcastOf(tx.Sender)
		if !ok {
			continue
		}
		off := len(sh.arena)
		sh.arena = wire.AppendEncode(sh.arena, *msg)
		sh.pend = append(sh.pend, pendEntry{
			sender: tx.Sender, gen: gen, ver: ver,
			off: off, n: len(sh.arena) - off, mask: mask,
		})
	}
	var bytesOut, frames, elided uint64
	for p := 0; p < sh.N; p++ {
		if p == sh.Index {
			sh.out[p] = nil
			continue
		}
		b := &sh.batch
		b.Shard = sh.Index
		b.Seq = sh.seq
		b.Entries = b.Entries[:0]
		for i := range sh.pend {
			pe := &sh.pend[i]
			if pe.mask&(1<<uint(p)) == 0 {
				continue
			}
			ent := wire.BoundaryEntry{Sender: pe.sender, Gen: pe.gen, Ver: pe.ver}
			sig := genVer{pe.gen, pe.ver}
			if sh.lastSent[p][pe.sender] != sig {
				ent.Frame = sh.arena[pe.off : pe.off+pe.n]
				sh.lastSent[p][pe.sender] = sig
				frames++
			} else {
				elided++
			}
			b.Entries = append(b.Entries, ent)
		}
		if len(b.Entries) == 0 {
			// An empty batch is an empty payload: peers skip decoding and
			// interior-only ticks cost no header bytes.
			sh.out[p] = nil
			continue
		}
		sh.outBufs[p] = wire.AppendBoundaryBatch(sh.outBufs[p][:0], *b)
		sh.out[p] = sh.outBufs[p]
		bytesOut += uint64(len(sh.outBufs[p]))
	}
	sh.reg.Add(introspect.CtrBoundaryBytesSent, bytesOut)
	sh.reg.Add(introspect.CtrBoundaryFrames, frames)
	sh.reg.Add(introspect.CtrBoundaryFramesElided, elided)
}

// ingest decodes the peers' batches in fixed shard order and expands
// them into external deliveries: for each entry the receiver set is
// re-derived from the local world replica and intersected with the
// owned slab. Delivery order across senders is irrelevant to the engine
// (the inbox is per-sender last-write-wins and the compute fold sorts
// senders), but the fixed order keeps the trace canonical regardless.
func (sh *Shard) ingest(in [][]byte) ([]engine.ExternalDelivery, error) {
	sh.ext = sh.ext[:0]
	var bytesIn, ghostUpd uint64
	for p := 0; p < sh.N; p++ {
		if p == sh.Index || len(in[p]) == 0 {
			continue
		}
		bytesIn += uint64(len(in[p]))
		b, err := wire.DecodeBoundaryBatch(in[p])
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d: batch from %d: %w", sh.Index, p, err)
		}
		if b.Shard != p || b.Seq != sh.seq {
			return nil, fmt.Errorf("dist: shard %d: batch header (%d, %d) from peer %d at seq %d",
				sh.Index, b.Shard, b.Seq, p, sh.seq)
		}
		for _, ent := range b.Entries {
			g := sh.ghosts[ent.Sender]
			if ent.Frame != nil {
				m, err := wire.Decode(ent.Frame)
				if err != nil {
					return nil, fmt.Errorf("dist: shard %d: frame for %d from %d: %w", sh.Index, ent.Sender, p, err)
				}
				if g == nil {
					g = &ghost{}
					sh.ghosts[ent.Sender] = g
				}
				g.gen, g.ver, g.msg = ent.Gen, ent.Ver, m
				ghostUpd++
			} else if g == nil || g.gen != ent.Gen || g.ver != ent.Ver {
				return nil, fmt.Errorf("dist: shard %d: elided entry for %d from %d without a matching ghost",
					sh.Index, ent.Sender, p)
			}
			row, _ := sh.receiverRow(ent.Sender)
			for _, u := range row {
				if int(sh.owners[u]) == sh.Index {
					sh.ext = append(sh.ext, engine.ExternalDelivery{
						To: u, From: ent.Sender, Gen: ent.Gen, Ver: ent.Ver, Msg: &g.msg,
					})
				}
			}
		}
	}
	sh.reg.Add(introspect.CtrBoundaryBytesRecv, bytesIn)
	sh.reg.Add(introspect.CtrGhostUpdates, ghostUpd)
	sh.reg.Add(introspect.CtrExtDeliveries, uint64(len(sh.ext)))
	return sh.ext, nil
}
