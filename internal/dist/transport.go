package dist

import (
	"errors"
	"fmt"
	"sync"
)

// Transport is the lockstep all-to-all exchange among n shard
// processes: every shard calls Exchange with the same sequence number
// each round, ships out[p] to each peer p, and blocks until every
// peer's payload for that sequence has arrived — the round barrier the
// deterministic merge relies on.
//
// Contract: out[self] is ignored and in[self] is nil; returned payloads
// are freshly allocated and owned by the caller (they may be retained
// across rounds — the ghost cache aliases decoded frames).
type Transport interface {
	Exchange(seq uint64, out [][]byte) (in [][]byte, err error)
	Close() error
}

// ErrTransportClosed reports an Exchange cut short by Close (or by a
// peer failing and closing the shared fabric).
var ErrTransportClosed = errors.New("dist: transport closed")

// loopFabric is the shared in-memory fabric behind NewLoopback: a full
// mesh of buffered channels. Capacity 2 is sufficient for deadlock
// freedom — Exchange is a barrier, so no shard can run more than one
// round ahead of the slowest, bounding the frames in flight per edge.
type loopFabric struct {
	n     int
	chans [][]chan loopMsg // [from][to]
	dead  chan struct{}
	once  sync.Once
}

type loopMsg struct {
	seq     uint64
	payload []byte
}

type loopback struct {
	fab  *loopFabric
	self int
}

// NewLoopback builds an n-way in-memory transport and returns one
// endpoint per shard. Closing any endpoint releases every peer blocked
// in Exchange (so one failing shard cannot hang the rest).
func NewLoopback(n int) []Transport {
	fab := &loopFabric{n: n, dead: make(chan struct{})}
	fab.chans = make([][]chan loopMsg, n)
	for i := range fab.chans {
		fab.chans[i] = make([]chan loopMsg, n)
		for j := range fab.chans[i] {
			if i != j {
				fab.chans[i][j] = make(chan loopMsg, 2)
			}
		}
	}
	eps := make([]Transport, n)
	for i := range eps {
		eps[i] = &loopback{fab: fab, self: i}
	}
	return eps
}

func (l *loopback) Exchange(seq uint64, out [][]byte) ([][]byte, error) {
	fab := l.fab
	if len(out) != fab.n {
		return nil, fmt.Errorf("dist: loopback: %d payloads for %d shards", len(out), fab.n)
	}
	for p := 0; p < fab.n; p++ {
		if p == l.self {
			continue
		}
		msg := loopMsg{seq: seq, payload: append([]byte(nil), out[p]...)}
		select {
		case fab.chans[l.self][p] <- msg:
		case <-fab.dead:
			return nil, ErrTransportClosed
		}
	}
	in := make([][]byte, fab.n)
	for p := 0; p < fab.n; p++ {
		if p == l.self {
			continue
		}
		select {
		case m := <-fab.chans[p][l.self]:
			if m.seq != seq {
				return nil, fmt.Errorf("dist: loopback: shard %d sent seq %d, want %d", p, m.seq, seq)
			}
			in[p] = m.payload
		case <-fab.dead:
			return nil, ErrTransportClosed
		}
	}
	return in, nil
}

func (l *loopback) Close() error {
	l.fab.once.Do(func() { close(l.fab.dead) })
	return nil
}
