package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/obs"
)

// runShard drives one shard through the whole run: Tc boundary-exchange
// ticks per round, one sync exchange per round (shards report to the
// lead, which observes the merged state through the tracker), and one
// final exchange carrying the per-node state hashes and the flight
// recorder. Only the lead (shard 0) returns a result; it is field-for-
// field comparable with obs.RunSoak's on the same scenario — the stats
// stream, final report and fingerprint are bit-identical, while the
// Flight counters are per-shard sums (deliberately not conformance
// surface: replicated work like ticks counts once per shard).
//
// Sink-adjacent extras of SoakConfig that RunSoak serves in-process
// (FlightEvery, WakeTrace, IntrospectAddr, Episodes) are not distributed
// and are ignored here.
func runShard(cfg Config, index int, tr Transport) (*obs.SoakResult, error) {
	sh, err := NewShard(cfg, index, tr)
	if err != nil {
		return nil, err
	}
	sh.E.TrackDirty()
	soak := sh.Soak
	lead := index == 0
	var ls *leadSource
	var tracker *obs.GroupTracker
	if lead {
		ls = newLeadSource(sh, &soak)
		tracker = obs.NewGroupTrackerSource(ls)
	}

	var rs roundSync
	var syncBuf []byte
	out := make([][]byte, cfg.Shards)
	res := &obs.SoakResult{}
	safetySum, groupSum := 0.0, 0.0
	start := time.Now()
	var st obs.RoundStats

	for r := 1; r <= soak.MaxRounds; r++ {
		if err := sh.StepRound(); err != nil {
			return nil, err
		}
		sh.collectSync(&rs)
		for p := range out {
			out[p] = nil
		}
		if !lead {
			syncBuf = appendSync(syncBuf[:0], &rs)
			out[0] = syncBuf
		}
		in, err := sh.tr.Exchange(sh.seq, out)
		sh.seq++
		if err != nil {
			return nil, err
		}
		if !lead {
			continue
		}
		ls.apply(0, &rs)
		for p := 1; p < cfg.Shards; p++ {
			prs, err := decodeSync(in[p])
			if err != nil {
				return nil, fmt.Errorf("dist: sync from shard %d: %w", p, err)
			}
			ls.apply(p, prs)
		}
		st = tracker.Observe()
		if soak.Sink != nil {
			if err := soak.Sink.Write(st); err != nil {
				return nil, fmt.Errorf("dist: sink: %w", err)
			}
		}
		res.Rounds++
		if st.Converged {
			res.ConvergedRounds++
		}
		if st.Agreement {
			res.AgreementRounds++
		}
		if !st.Continuity {
			res.ContinuityBreaks++
			if st.Topological {
				res.UnexcusedBreaks++
			}
		}
		if !st.Topological {
			res.TopologyBreaks++
		}
		res.ViolatingNodes += st.ContinuityViolations
		safetySum += st.SafetyRate
		groupSum += float64(st.Groups)
		if soak.Progress != nil && r%soak.ProgressEvery == 0 {
			soak.Progress(r, st)
		}
	}

	// Final exchange: every shard ships its node hashes and flight
	// recorder; the lead folds the fingerprint in ID order and merges the
	// registries in shard order.
	pairs := obs.AppendEngineHashes(nil, sh.E)
	for p := range out {
		out[p] = nil
	}
	var finalBuf []byte
	if !lead {
		finalBuf = appendFinal(finalBuf, pairs, sh.reg)
		out[0] = finalBuf
	}
	in, err := sh.tr.Exchange(sh.seq, out)
	sh.seq++
	if err != nil {
		return nil, err
	}
	if !lead {
		return nil, nil
	}
	for p := 1; p < cfg.Shards; p++ {
		ppairs, counters, phases, err := decodeFinal(in[p])
		if err != nil {
			return nil, fmt.Errorf("dist: final from shard %d: %w", p, err)
		}
		pairs = append(pairs, ppairs...)
		for id, v := range counters {
			sh.reg.Add(introspect.CounterID(id), v)
		}
		for ph, ns := range phases {
			sh.reg.AddPhaseNs(introspect.Phase(ph), ns)
		}
	}
	if len(pairs) != soak.N {
		return nil, fmt.Errorf("dist: fingerprint covers %d of %d nodes", len(pairs), soak.N)
	}
	res.Final = st
	res.Ticks = sh.E.Tick()
	res.Fingerprint = obs.FoldFingerprint(pairs)
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.TicksPerSec = float64(res.Ticks) / s
	}
	if res.Rounds > 0 {
		res.MeanSafetyRate = safetySum / float64(res.Rounds)
		res.MeanGroups = groupSum / float64(res.Rounds)
	}
	res.Flight = sh.reg.Snapshot()
	return res, nil
}

const finalMagic = 0x4746 // "GF"

func appendFinal(dst []byte, pairs []obs.NodeHashPair, reg *introspect.Registry) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, finalMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.ID))
		dst = binary.LittleEndian.AppendUint64(dst, p.Hash)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(introspect.NumCounters))
	for id := introspect.CounterID(0); id < introspect.NumCounters; id++ {
		dst = binary.LittleEndian.AppendUint64(dst, reg.Get(id))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(introspect.NumPhases))
	for p := introspect.Phase(0); p < introspect.NumPhases; p++ {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(reg.PhaseNs(p)))
	}
	return dst
}

func decodeFinal(buf []byte) (pairs []obs.NodeHashPair, counters []uint64, phases []int64, err error) {
	fail := func() ([]obs.NodeHashPair, []uint64, []int64, error) {
		return nil, nil, nil, fmt.Errorf("dist: final report truncated or malformed")
	}
	if len(buf) < 6 || binary.LittleEndian.Uint16(buf) != finalMagic {
		return fail()
	}
	n := binary.LittleEndian.Uint32(buf[2:])
	buf = buf[6:]
	if uint64(n)*12 > uint64(len(buf)) {
		return fail()
	}
	pairs = make([]obs.NodeHashPair, n)
	for i := range pairs {
		pairs[i].ID = ident.NodeID(binary.LittleEndian.Uint32(buf))
		pairs[i].Hash = binary.LittleEndian.Uint64(buf[4:])
		buf = buf[12:]
	}
	if len(buf) < 4 {
		return fail()
	}
	nc := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if nc != uint32(introspect.NumCounters) || uint64(nc)*8 > uint64(len(buf)) {
		return fail()
	}
	counters = make([]uint64, nc)
	for i := range counters {
		counters[i] = binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
	}
	if len(buf) < 4 {
		return fail()
	}
	np := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if np != uint32(introspect.NumPhases) || uint64(np)*8 != uint64(len(buf)) {
		return fail()
	}
	phases = make([]int64, np)
	for i := range phases {
		phases[i] = int64(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	return pairs, counters, phases, nil
}

// RunLoopback runs all shards of cfg in one process over the in-memory
// transport and returns the lead's result.
func RunLoopback(cfg Config) (*obs.SoakResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trs := NewLoopback(cfg.Shards)
	results := make([]*obs.SoakResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runShard(cfg, i, trs[i])
			if errs[i] != nil {
				// Release peers blocked on the barrier.
				trs[i].Close()
			}
		}(i)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}
	// Prefer the root cause over the ErrTransportClosed it cascades into.
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrTransportClosed) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// RunTCP runs this process's shard over a TCP mesh (one process per
// shard, index-aligned listen addresses). The lead process (index 0)
// returns the merged result; peers return (nil, nil) on success.
func RunTCP(cfg Config, index int, addrs []string) (*obs.SoakResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(addrs) != cfg.Shards {
		return nil, fmt.Errorf("dist: %d addrs for %d shards", len(addrs), cfg.Shards)
	}
	tr, err := DialTCP(index, addrs)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return runShard(cfg, index, tr)
}
