// Package dist is the multi-process wrapper around the deterministic
// engine: each process ("shard") replicates the full spatial world and
// mobility stream from the shared seed, but runs the protocol engine
// only over a contiguous slab of the population, exchanging per-tick
// boundary deltas with its peers over a lockstep Transport. Because the
// world replicas are bit-identical and the protocol is carried entirely
// by the broadcast messages, the merged execution is bit-identical to
// the single-process engine at any shard count — pinned by the
// conformance suite and a CI smoke over both transports.
//
// See DESIGN.md §2j for the ghost-boundary protocol and the determinism
// argument.
package dist

import "sort"

// Partition is a static slab partition of the world's X axis: shard i
// owns the nodes whose *initial* x position falls in [Cuts[i-1],
// Cuts[i]). Ownership never migrates — a mover that crosses a cut keeps
// its original owner, which is correct because the engine's semantics
// are position-independent (positions only shape the graph, which every
// shard replicates in full); the cuts exist purely to balance load and
// keep the boundary set small.
type Partition struct {
	Cuts []float64 // ascending slab boundaries; len = Shards-1
}

// MakePartition places the cuts at the population quantiles of xs (the
// initial x positions), so the initial load is balanced to within one
// node. Duplicate positions may skew a cut; correctness is unaffected.
func MakePartition(xs []float64, shards int) Partition {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cuts := make([]float64, 0, shards-1)
	for i := 1; i < shards; i++ {
		if len(sorted) == 0 {
			cuts = append(cuts, 0)
			continue
		}
		cuts = append(cuts, sorted[i*len(sorted)/shards])
	}
	return Partition{Cuts: cuts}
}

// Owner maps an x position to its owning shard: the number of cuts ≤ x,
// so a node exactly on a cut belongs to the higher shard (ties go
// right). With no cuts everything belongs to shard 0.
func (p Partition) Owner(x float64) int {
	return sort.Search(len(p.Cuts), func(i int) bool { return p.Cuts[i] > x })
}

// Shards is the number of slabs the partition describes.
func (p Partition) Shards() int { return len(p.Cuts) + 1 }
