package dist

import (
	"fmt"
	"math"
	"net"
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/obs"
)

// captureSink records the per-round stats stream for comparison.
type captureSink struct {
	recs []obs.RoundStats
}

func (c *captureSink) Write(r obs.RoundStats) error {
	c.recs = append(c.recs, r)
	return nil
}
func (c *captureSink) Close() error { return nil }

// commuterSoak is the conformance scenario: the mostly-parked commuter
// regime (delta graph path) over a dense-enough world that the slabs
// actually interact across their boundaries every round.
func commuterSoak(rounds int) obs.SoakConfig {
	return obs.SoakConfig{
		N:              150,
		Side:           33,
		ActiveFraction: 0.08,
		Seed:           19,
		Dmax:           3,
		MaxRounds:      rounds,
		Fingerprint:    true,
	}
}

// runBoth runs the scenario single-process and sharded and returns both
// results plus the two captured stats streams.
func runBoth(t *testing.T, soak obs.SoakConfig, shards int) (ref, got *obs.SoakResult, refRecs, gotRecs []obs.RoundStats) {
	t.Helper()
	refSink := &captureSink{}
	refCfg := soak
	refCfg.Sink = refSink
	ref, err := obs.RunSoak(refCfg)
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	gotSink := &captureSink{}
	distSoak := soak
	distSoak.Sink = gotSink
	got, err = RunLoopback(Config{Soak: distSoak, Shards: shards})
	if err != nil {
		t.Fatalf("RunLoopback(%d): %v", shards, err)
	}
	return ref, got, refSink.recs, gotSink.recs
}

// assertIdentical pins the conformance surface: the full per-round stats
// stream, the final stats record, and the end-of-run state fingerprint
// must be bit-identical between one process and N.
func assertIdentical(t *testing.T, shards int, ref, got *obs.SoakResult, refRecs, gotRecs []obs.RoundStats) {
	t.Helper()
	if len(refRecs) != len(gotRecs) {
		t.Fatalf("%d shards: %d records vs %d", shards, len(gotRecs), len(refRecs))
	}
	for i := range refRecs {
		if !reflect.DeepEqual(refRecs[i], gotRecs[i]) {
			t.Fatalf("%d shards: round %d diverged:\n 1p: %+v\n %dp: %+v",
				shards, i+1, refRecs[i], shards, gotRecs[i])
		}
	}
	if ref.Fingerprint != got.Fingerprint {
		t.Fatalf("%d shards: fingerprint %016x vs %016x", shards, got.Fingerprint, ref.Fingerprint)
	}
	if !reflect.DeepEqual(ref.Final, got.Final) {
		t.Fatalf("%d shards: final stats diverged:\n 1p: %+v\n Np: %+v", shards, ref.Final, got.Final)
	}
	if ref.Ticks != got.Ticks || ref.Rounds != got.Rounds {
		t.Fatalf("%d shards: %d rounds %d ticks vs %d rounds %d ticks",
			shards, got.Rounds, got.Ticks, ref.Rounds, ref.Ticks)
	}
}

// TestLoopbackConformance is the tentpole pin: the commuter scenario is
// bit-identical between the single-process engine and 2- and 4-shard
// distributed runs over the loopback transport.
func TestLoopbackConformance(t *testing.T) {
	soak := commuterSoak(40)
	for _, shards := range []int{2, 4} {
		ref, got, refRecs, gotRecs := runBoth(t, soak, shards)
		assertIdentical(t, shards, ref, got, refRecs, gotRecs)
		// The split must actually exercise the boundary protocol, or the
		// pin proves nothing.
		if got.Flight.Counters["ext_deliveries"] == 0 {
			t.Fatalf("%d shards: no external deliveries — slabs never interacted", shards)
		}
		if got.Flight.Counters["ghost_updates"] == 0 {
			t.Fatalf("%d shards: no ghost updates", shards)
		}
	}
}

// TestLoopbackConformanceWaypoint covers the all-moving regime (full
// graph rebuilds every tick, so receiver rows churn constantly and
// movers keep crossing the slab cuts mid-run — the hand-off case).
func TestLoopbackConformanceWaypoint(t *testing.T) {
	soak := obs.SoakConfig{N: 80, Side: 18, Seed: 7, Dmax: 3, MaxRounds: 30, Fingerprint: true}
	ref, got, refRecs, gotRecs := runBoth(t, soak, 3)
	assertIdentical(t, 3, ref, got, refRecs, gotRecs)
	if got.Flight.Counters["ext_deliveries"] == 0 {
		t.Fatal("no external deliveries in the all-moving regime")
	}
}

// TestCrossShardMoverHandoff pins the ownership rule under migration:
// with every node moving, nodes provably end up on the far side of
// their slab cut, yet ownership stays with the original shard and the
// trace stays identical (the partition is load-balancing only).
func TestCrossShardMoverHandoff(t *testing.T) {
	soak := obs.SoakConfig{N: 60, Side: 14, Seed: 3, Dmax: 3, MaxRounds: 25, Fingerprint: true}
	trs := NewLoopback(2)
	cfg := Config{Soak: soak, Shards: 2}
	shards := make([]*Shard, 2)
	for i := range shards {
		var err error
		if shards[i], err = NewShard(cfg, i, trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		for r := 0; r < soak.MaxRounds; r++ {
			if err := shards[1].StepRound(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for r := 0; r < soak.MaxRounds; r++ {
		if err := shards[0].StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Ownership never migrates even when a node's position crossed the
	// cut; and with waypoint mobility over 25 rounds someone always has.
	crossed := 0
	for i, sh := range shards {
		for _, v := range sh.Owned {
			if got := sh.owners[v]; int(got) != i {
				t.Fatalf("owned node %d of shard %d mapped to %d", v, i, got)
			}
			p, ok := sh.World.Pos(v)
			if !ok {
				t.Fatalf("node %d lost its position", v)
			}
			if sh.Part.Owner(p.X) != i {
				crossed++
			}
		}
	}
	if crossed == 0 {
		t.Fatal("no mover crossed a slab cut — the hand-off case was not exercised")
	}
	// Both replicas agree on every final node state (the replicated-world
	// invariant), checked through the per-node hashes of a merged run.
	ref, err := obs.RunSoak(obs.SoakConfig{N: 60, Side: 14, Seed: 3, Dmax: 3, MaxRounds: 25, Fingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs := obs.AppendEngineHashes(nil, shards[0].E)
	pairs = obs.AppendEngineHashes(pairs, shards[1].E)
	if got := obs.FoldFingerprint(pairs); got != ref.Fingerprint {
		t.Fatalf("merged fingerprint %016x vs single-process %016x", got, ref.Fingerprint)
	}
}

// TestPartitionEdges covers the ownership function's corner cases.
func TestPartitionEdges(t *testing.T) {
	// A node exactly on a cut belongs to the higher shard.
	p := Partition{Cuts: []float64{1, 2}}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {3, 2}, {-1, 0}, {math.Inf(1), 2}} {
		if got := p.Owner(tc.x); got != tc.want {
			t.Errorf("Owner(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if p.Shards() != 3 {
		t.Errorf("Shards() = %d", p.Shards())
	}
	// One shard: no cuts, everything owned by 0.
	if q := MakePartition([]float64{5, 1, 9}, 1); len(q.Cuts) != 0 || q.Owner(1e9) != 0 {
		t.Errorf("single-shard partition: %+v", q)
	}
	// Quantile balance on distinct positions.
	xs := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 0}
	q := MakePartition(xs, 2)
	lo := 0
	for _, x := range xs {
		if q.Owner(x) == 0 {
			lo++
		}
	}
	if lo != 5 {
		t.Errorf("2-way split of 10 distinct xs put %d in shard 0", lo)
	}
	// All nodes at one position: everything collapses into one shard —
	// legal (empty shards are allowed), ownership still total.
	same := []float64{4, 4, 4, 4}
	q = MakePartition(same, 3)
	for _, x := range same {
		if o := q.Owner(x); o < 0 || o > 2 {
			t.Errorf("degenerate partition Owner(%v) = %d", x, o)
		}
	}
}

// TestEmptyShard pins that a shard owning nothing still participates in
// the protocol (barrier, sync, final report) without perturbing the
// trace: with more shards than distinct x positions, some slabs are
// guaranteed empty.
func TestEmptyShard(t *testing.T) {
	soak := obs.SoakConfig{N: 20, Side: 10, Seed: 11, Dmax: 3, MaxRounds: 10, Static: true, Fingerprint: true}
	ref, got, refRecs, gotRecs := runBoth(t, soak, 8)
	assertIdentical(t, 8, ref, got, refRecs, gotRecs)
}

// TestAllNodesOneShard pins the degenerate split where one shard owns
// the whole population: a 1-shard "distributed" run has no peers, no
// boundary traffic, and an identical trace; and in any split, every
// boundary byte sent is a boundary byte received.
func TestAllNodesOneShard(t *testing.T) {
	soak := obs.SoakConfig{N: 24, Side: 10, Seed: 5, Dmax: 3, MaxRounds: 8, Fingerprint: true}
	ref, got, refRecs, gotRecs := runBoth(t, soak, 1)
	assertIdentical(t, 1, ref, got, refRecs, gotRecs)
	for _, ctr := range []string{"boundary_bytes_sent", "boundary_bytes_recv", "ext_deliveries", "ghost_updates"} {
		if n := got.Flight.Counters[ctr]; n != 0 {
			t.Errorf("1-shard run has %s = %d", ctr, n)
		}
	}
	// Accounting identity on a real split: sent ≡ received globally.
	res, err := RunLoopback(Config{Soak: soak, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sent := res.Flight.Counters["boundary_bytes_sent"]
	recv := res.Flight.Counters["boundary_bytes_recv"]
	if sent != recv {
		t.Fatalf("boundary bytes sent %d != received %d", sent, recv)
	}
}

// TestValidateRejects pins the gate on configurations the split cannot
// carry deterministically.
func TestValidateRejects(t *testing.T) {
	base := Config{Soak: obs.SoakConfig{N: 10}, Shards: 2}
	bad := []Config{
		{Soak: obs.SoakConfig{N: 10}, Shards: 0},
		{Soak: obs.SoakConfig{N: 10}, Shards: 65},
		{Soak: obs.SoakConfig{N: 10, JoinRate: 0.1}, Shards: 2},
		{Soak: obs.SoakConfig{N: 10, LeaveRate: 0.1}, Shards: 2},
		{Soak: obs.SoakConfig{N: 10, Duration: 1}, Shards: 2},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestLoopbackTransport pins the barrier semantics of the in-memory
// transport: payload integrity, self-slot handling, and close release.
func TestLoopbackTransport(t *testing.T) {
	const n = 3
	trs := NewLoopback(n)
	var results [n][][]byte
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			out := make([][]byte, n)
			for p := 0; p < n; p++ {
				if p != i {
					out[p] = []byte(fmt.Sprintf("%d->%d", i, p))
				}
			}
			in, err := trs[i].Exchange(7, out)
			results[i] = in
			errc <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if results[i][i] != nil {
			t.Fatalf("shard %d received from itself", i)
		}
		for p := 0; p < n; p++ {
			if p == i {
				continue
			}
			if got, want := string(results[i][p]), fmt.Sprintf("%d->%d", p, i); got != want {
				t.Fatalf("shard %d from %d: %q want %q", i, p, got, want)
			}
		}
	}
	// Close releases a blocked Exchange.
	done := make(chan error, 1)
	go func() {
		_, err := trs[0].Exchange(8, make([][]byte, n))
		done <- err
	}()
	trs[1].Close()
	if err := <-done; err == nil {
		t.Fatal("Exchange survived Close")
	}
}

// TestTCPTransport runs the same conformance scenario over localhost
// TCP, one goroutine per "process", and checks a 2-shard run matches
// the single-process fingerprint — the in-CI stand-in for the
// two-OS-process smoke (which scripts/dist_smoke.sh runs end to end).
func TestTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh in -short")
	}
	soak := obs.SoakConfig{N: 60, Side: 14, Seed: 3, Dmax: 3, MaxRounds: 12, Fingerprint: true}
	refCfg := soak
	ref, err := obs.RunSoak(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{freeAddr(t), freeAddr(t)}
	cfg := Config{Soak: soak, Shards: 2}
	type res struct {
		r   *obs.SoakResult
		err error
	}
	ch := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			r, err := RunTCP(cfg, i, addrs)
			ch <- res{r, err}
		}(i)
	}
	var lead *obs.SoakResult
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.r != nil {
			lead = r.r
		}
	}
	if lead == nil {
		t.Fatal("no lead result")
	}
	if lead.Fingerprint != ref.Fingerprint {
		t.Fatalf("tcp fingerprint %016x vs %016x", lead.Fingerprint, ref.Fingerprint)
	}
	if !reflect.DeepEqual(lead.Final, ref.Final) {
		t.Fatalf("tcp final stats diverged:\n 1p: %+v\n 2p: %+v", ref.Final, lead.Final)
	}
}

// freeAddr reserves a localhost port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBoundaryTrafficIsDelta pins the elision: on a mostly-parked world
// the per-round boundary frames must be far fewer than the boundary
// entries (unchanged senders ship bare version headers).
func TestBoundaryTrafficIsDelta(t *testing.T) {
	soak := commuterSoak(30)
	res, err := RunLoopback(Config{Soak: soak, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.Flight.Counters["boundary_frames"]
	elided := res.Flight.Counters["boundary_frames_elided"]
	if frames == 0 || elided == 0 {
		t.Fatalf("boundary delta path unexercised: %d frames, %d elided", frames, elided)
	}
	if elided < frames {
		t.Fatalf("mostly-parked world elided %d < framed %d — delta encoding not engaging", elided, frames)
	}
}

// TestBoundaryTrafficSublinear pins the scaling claim behind the design:
// boundary traffic follows the slab border population (O(√n) at constant
// density), not the world population. Quadrupling n must grow the
// per-tick boundary bytes by well under 4× — ~2× is the geometric
// expectation, and 3× is the failure threshold with slack for the
// discretization of who lands in the border band.
func TestBoundaryTrafficSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-thousand-node soaks")
	}
	perTick := func(n int) float64 {
		soak := obs.SoakConfig{
			N: n, Seed: 19, Dmax: 3, ActiveFraction: 0.08, MaxRounds: 12,
		}
		res, err := RunLoopback(Config{Soak: soak, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Flight.Counters["boundary_bytes_sent"]) / float64(res.Ticks)
	}
	small, large := perTick(2000), perTick(8000)
	t.Logf("boundary bytes/tick: n=2000 %.0f, n=8000 %.0f (ratio %.2f)", small, large, large/small)
	if large >= 3*small {
		t.Fatalf("boundary traffic scaled %.2f× for 4× nodes — not sublinear (%.0f vs %.0f bytes/tick)",
			large/small, small, large)
	}
}

// TestNodeIDU32Bound documents the wire assumption that NodeIDs fit u32
// (the boundary and sync codecs truncate otherwise).
func TestNodeIDU32Bound(t *testing.T) {
	var v ident.NodeID = 1<<31 + 5
	if back := ident.NodeID(uint32(v)); back != v {
		t.Fatalf("round-trip lost bits: %d vs %d", back, v)
	}
}
