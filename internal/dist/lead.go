package dist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// roundSync is one shard's per-round report to the lead: cumulative
// traffic counters plus the round's computed set and the view contents
// that actually changed — exactly what the lead needs to drive a
// GroupTracker whose record stream is bit-identical to a single-process
// run's. View updates are deltas (a view ships only when its version
// moved past the last shipped one), so sync traffic follows protocol
// activity, not the population.
type roundSync struct {
	msgs, bytes, delivs uint64
	computed            []ident.NodeID
	views               []viewUpd
}

type viewUpd struct {
	id   ident.NodeID
	ver  uint64
	view []ident.NodeID
}

const syncMagic = 0x4753 // "GS"

func appendSync(dst []byte, rs *roundSync) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, syncMagic)
	dst = binary.LittleEndian.AppendUint64(dst, rs.msgs)
	dst = binary.LittleEndian.AppendUint64(dst, rs.bytes)
	dst = binary.LittleEndian.AppendUint64(dst, rs.delivs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rs.computed)))
	for _, v := range rs.computed {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rs.views)))
	for _, u := range rs.views {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(u.id))
		dst = binary.LittleEndian.AppendUint64(dst, u.ver)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(u.view)))
		for _, w := range u.view {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(w))
		}
	}
	return dst
}

func decodeSync(buf []byte) (*roundSync, error) {
	rs := &roundSync{}
	if len(buf) < 2+24+4 {
		return nil, fmt.Errorf("dist: sync truncated")
	}
	if binary.LittleEndian.Uint16(buf) != syncMagic {
		return nil, fmt.Errorf("dist: bad sync magic")
	}
	rs.msgs = binary.LittleEndian.Uint64(buf[2:])
	rs.bytes = binary.LittleEndian.Uint64(buf[10:])
	rs.delivs = binary.LittleEndian.Uint64(buf[18:])
	buf = buf[26:]
	ids, buf, err := readIDList(buf)
	if err != nil {
		return nil, err
	}
	rs.computed = ids
	if len(buf) < 4 {
		return nil, fmt.Errorf("dist: sync truncated")
	}
	nview := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(nview) > uint64(len(buf)/16)+1 {
		return nil, fmt.Errorf("dist: sync truncated")
	}
	rs.views = make([]viewUpd, 0, nview)
	for i := uint32(0); i < nview; i++ {
		if len(buf) < 12 {
			return nil, fmt.Errorf("dist: sync truncated")
		}
		u := viewUpd{
			id:  ident.NodeID(binary.LittleEndian.Uint32(buf)),
			ver: binary.LittleEndian.Uint64(buf[4:]),
		}
		u.view, buf, err = readIDList(buf[12:])
		if err != nil {
			return nil, err
		}
		rs.views = append(rs.views, u)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("dist: %d trailing sync bytes", len(buf))
	}
	return rs, nil
}

func readIDList(buf []byte) ([]ident.NodeID, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("dist: sync truncated")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(n)*4 > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("dist: sync truncated")
	}
	ids := make([]ident.NodeID, n)
	for i := range ids {
		ids[i] = ident.NodeID(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return ids, buf[4*n:], nil
}

// collectSync gathers this shard's round report: the engine's dirty
// report yields the computed set; a view ships only when its version
// moved since the last sync (initialized to the fresh node's version 1,
// which the lead mirror also starts from — so the skip semantics match
// the single-process tracker's own version-gated extraction exactly).
func (sh *Shard) collectSync(rs *roundSync) {
	rs.msgs = uint64(sh.E.MessagesSent)
	rs.bytes = uint64(sh.E.BytesSent)
	rs.delivs = uint64(sh.E.Deliveries)
	rs.computed = rs.computed[:0]
	rs.views = rs.views[:0]
	sh.E.DrainDirty(func(computed [engine.NumShards][]int32, added []ident.NodeID, removed []engine.RemovedNode) {
		for s := range computed {
			for _, slot := range computed[s] {
				v := sh.E.IDAtSlot(slot)
				if v == ident.None {
					continue
				}
				rs.computed = append(rs.computed, v)
				n := sh.E.NodeAtSlot(slot)
				if ver := n.ViewVersion(); ver != sh.lastViewVer[slot] {
					sh.lastViewVer[slot] = ver
					rs.views = append(rs.views, viewUpd{id: v, ver: ver, view: n.AppendView(nil)})
				}
			}
		}
	})
}

// mirrorView is the lead's replica of one node's extraction surface.
type mirrorView struct {
	id   ident.NodeID
	ver  uint64
	view []ident.NodeID
}

func (m *mirrorView) ViewVersion() uint64 { return m.ver }
func (m *mirrorView) AppendView(dst []ident.NodeID) []ident.NodeID {
	return append(dst, m.view...)
}

// leadSource implements obs.Source on shard 0 by merging the per-shard
// round reports in fixed shard order over a full-population roster that
// assigns slots in the same ascending order a single-process engine
// would — which is what keeps every slot- and shard-bucketed decision
// inside the tracker identical between one process and many.
type leadSource struct {
	sh      *Shard
	workers int
	dmax    int

	roster *engine.Roster
	views  []mirrorView

	computed [engine.NumShards][]int32
	msgs     [64]uint64 // cumulative per contributing shard
	bytes    [64]uint64
	delivs   [64]uint64

	snap metrics.SnapshotBuilder
}

func newLeadSource(sh *Shard, soak *obs.SoakConfig) *leadSource {
	ls := &leadSource{sh: sh, workers: soak.Workers, dmax: soak.Dmax, roster: engine.NewRoster()}
	for v := ident.NodeID(1); int(v) <= soak.N; v++ {
		slot, _ := ls.roster.Add(v)
		for int(slot) >= len(ls.views) {
			ls.views = append(ls.views, mirrorView{})
		}
		// A fresh node's view is {self} at version 1 (core.NewNode); the
		// mirror must serve it so the tracker's first full sync sees the
		// same initial configuration as a single-process attach.
		ls.views[slot] = mirrorView{id: v, ver: 1, view: []ident.NodeID{v}}
	}
	return ls
}

// apply folds one shard's round report in. Callers fold shard 0 (the
// lead's own) first, then peers in ascending index order.
func (ls *leadSource) apply(shard int, rs *roundSync) {
	ls.msgs[shard] = rs.msgs
	ls.bytes[shard] = rs.bytes
	ls.delivs[shard] = rs.delivs
	for _, v := range rs.computed {
		slot := ls.roster.SlotOf(v)
		if slot < 0 {
			continue
		}
		s := engine.ShardOf(v)
		ls.computed[s] = append(ls.computed[s], slot)
	}
	for _, u := range rs.views {
		slot := ls.roster.SlotOf(u.id)
		if slot < 0 {
			continue
		}
		ls.views[slot].ver = u.ver
		ls.views[slot].view = u.view
	}
}

func (ls *leadSource) Workers() int                { return ls.workers }
func (ls *leadSource) Dmax() int                   { return ls.dmax }
func (ls *leadSource) TrackDirty()                 {} // shards track their own engines
func (ls *leadSource) SlotCap() int                { return ls.roster.SlotCap() }
func (ls *leadSource) Order() []ident.NodeID       { return ls.roster.IDs() }
func (ls *leadSource) SlotOf(v ident.NodeID) int32 { return ls.roster.SlotOf(v) }
func (ls *leadSource) Tick() int                   { return ls.sh.E.Tick() }

func (ls *leadSource) ViewerAtSlot(s int32) obs.Viewer {
	if int(s) >= len(ls.views) || ls.views[s].id == ident.None {
		return nil
	}
	return &ls.views[s]
}

func (ls *leadSource) DrainDirty(fn func([engine.NumShards][]int32, []ident.NodeID, []engine.RemovedNode)) {
	fn(ls.computed, nil, nil)
	for s := range ls.computed {
		ls.computed[s] = ls.computed[s][:0]
	}
}

// SnapshotGraph restricts the lead's replicated full-world graph to the
// (fixed) global membership — the same restriction the single-process
// engine serves. The liveGen is constant because membership never
// changes in a distributed run.
func (ls *leadSource) SnapshotGraph() *graph.G {
	return ls.snap.Graph(ls.sh.Topo.Graph(), 1, func(v ident.NodeID) bool {
		return ls.roster.SlotOf(v) >= 0
	})
}

func (ls *leadSource) TrafficTotals() (msgs, delivs int) {
	var m, d uint64
	for s := 0; s < ls.sh.N; s++ {
		m += ls.msgs[s]
		d += ls.delivs[s]
	}
	return int(m), int(d)
}

func (ls *leadSource) Introspect() *introspect.Registry { return ls.sh.E.Introspect() }

// globalBytes sums the cumulative per-shard broadcast byte counters.
func (ls *leadSource) globalBytes() uint64 {
	var b uint64
	for s := 0; s < ls.sh.N; s++ {
		b += ls.bytes[s]
	}
	return b
}
