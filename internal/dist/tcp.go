package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport is the cross-process Transport: a full mesh of TCP
// connections, one per shard pair. Connection setup is deterministic —
// the lower-indexed shard listens, the higher-indexed shard dials (with
// retry, so start order doesn't matter) and identifies itself with a
// hello frame. Each frame on the wire is [seq u64][len u32][payload];
// a reader goroutine per peer decouples reads from writes so two shards
// writing to each other simultaneously cannot deadlock.
type TCPTransport struct {
	self  int
	n     int
	conns []net.Conn
	wbufs []*bufio.Writer
	recv  []chan tcpFrame

	ln       net.Listener
	closeOne sync.Once
	closeErr error
}

type tcpFrame struct {
	seq     uint64
	payload []byte
	err     error
}

// tcpDialTimeout bounds the whole mesh setup: peers are expected to
// start within this window of each other.
const tcpDialTimeout = 30 * time.Second

// maxTCPFrame bounds a frame length header before allocating (a corrupt
// or hostile peer must not drive an arbitrary allocation).
const maxTCPFrame = 1 << 28

// DialTCP connects shard self into the mesh described by addrs (one
// listen address per shard, index-aligned). It returns once every pair
// connection is up.
func DialTCP(self int, addrs []string) (*TCPTransport, error) {
	n := len(addrs)
	if self < 0 || self >= n {
		return nil, fmt.Errorf("dist: tcp: shard %d outside %d addrs", self, n)
	}
	t := &TCPTransport{
		self:  self,
		n:     n,
		conns: make([]net.Conn, n),
		wbufs: make([]*bufio.Writer, n),
		recv:  make([]chan tcpFrame, n),
	}
	// Accept from every higher-indexed peer.
	if self < n-1 {
		ln, err := net.Listen("tcp", addrs[self])
		if err != nil {
			return nil, fmt.Errorf("dist: tcp: listen %s: %w", addrs[self], err)
		}
		t.ln = ln
		for need := n - 1 - self; need > 0; need-- {
			conn, err := ln.Accept()
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("dist: tcp: accept: %w", err)
			}
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				t.Close()
				return nil, fmt.Errorf("dist: tcp: hello: %w", err)
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= self || peer >= n || t.conns[peer] != nil {
				t.Close()
				return nil, fmt.Errorf("dist: tcp: bad hello from shard %d", peer)
			}
			t.conns[peer] = conn
		}
	}
	// Dial every lower-indexed peer (they may not be listening yet).
	deadline := time.Now().Add(tcpDialTimeout)
	for peer := 0; peer < self; peer++ {
		for {
			conn, err := net.DialTimeout("tcp", addrs[peer], time.Second)
			if err == nil {
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(self))
				if _, err = conn.Write(hello[:]); err == nil {
					t.conns[peer] = conn
					break
				}
				conn.Close()
			}
			if time.Now().After(deadline) {
				t.Close()
				return nil, fmt.Errorf("dist: tcp: dial shard %d at %s: %w", peer, addrs[peer], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.wbufs[p] = bufio.NewWriter(conn)
		// Capacity 2 matches the barrier's in-flight bound (see
		// loopFabric); the reader parks on the channel, never drops.
		t.recv[p] = make(chan tcpFrame, 2)
		go t.readLoop(p, conn)
	}
	return t, nil
}

func (t *TCPTransport) readLoop(peer int, conn net.Conn) {
	br := bufio.NewReader(conn)
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.recv[peer] <- tcpFrame{err: fmt.Errorf("dist: tcp: read from shard %d: %w", peer, err)}
			return
		}
		seq := binary.LittleEndian.Uint64(hdr[:])
		size := binary.LittleEndian.Uint32(hdr[8:])
		if size > maxTCPFrame {
			t.recv[peer] <- tcpFrame{err: fmt.Errorf("dist: tcp: shard %d frame of %d bytes", peer, size)}
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.recv[peer] <- tcpFrame{err: fmt.Errorf("dist: tcp: read from shard %d: %w", peer, err)}
			return
		}
		t.recv[peer] <- tcpFrame{seq: seq, payload: payload}
	}
}

// Exchange implements Transport.
func (t *TCPTransport) Exchange(seq uint64, out [][]byte) ([][]byte, error) {
	if len(out) != t.n {
		return nil, fmt.Errorf("dist: tcp: %d payloads for %d shards", len(out), t.n)
	}
	var hdr [12]byte
	for p := 0; p < t.n; p++ {
		if p == t.self {
			continue
		}
		binary.LittleEndian.PutUint64(hdr[:], seq)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(out[p])))
		w := t.wbufs[p]
		if _, err := w.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("dist: tcp: write to shard %d: %w", p, err)
		}
		if _, err := w.Write(out[p]); err != nil {
			return nil, fmt.Errorf("dist: tcp: write to shard %d: %w", p, err)
		}
		if err := w.Flush(); err != nil {
			return nil, fmt.Errorf("dist: tcp: flush to shard %d: %w", p, err)
		}
	}
	in := make([][]byte, t.n)
	for p := 0; p < t.n; p++ {
		if p == t.self {
			continue
		}
		f := <-t.recv[p]
		if f.err != nil {
			return nil, f.err
		}
		if f.seq != seq {
			return nil, fmt.Errorf("dist: tcp: shard %d sent seq %d, want %d", p, f.seq, seq)
		}
		in[p] = f.payload
	}
	return in, nil
}

// Close tears the mesh down; blocked reader goroutines unwind on the
// connection errors.
func (t *TCPTransport) Close() error {
	t.closeOne.Do(func() {
		if t.ln != nil {
			t.ln.Close()
		}
		for _, c := range t.conns {
			if c != nil {
				if err := c.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
	})
	return t.closeErr
}
