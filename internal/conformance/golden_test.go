package conformance

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/radio"
)

var update = flag.Bool("update", false, "regenerate golden trace fixtures")

// goldenTrace is the checked-in fixture: one state hash and one message
// hash per round of a fixed small scenario. Any future hot-path change
// that perturbs protocol behavior — even a single bit in one node's list,
// view, priority or broadcast in one round — fails this test loudly.
// Regenerate deliberately with:
//
//	go test ./internal/conformance -run Golden -update
type goldenTrace struct {
	Scenario string   `json:"scenario"`
	Rounds   []string `json:"rounds"` // "statehash:msghash" per round, hex
}

// goldenScenarios are small, fast, and cover the protocol's moving
// parts: a static merge-heavy topology, and a jittered lossy line.
func goldenScenarios() map[string]*engine.Engine {
	return map[string]*engine.Engine{
		"clusters-static": engine.NewStatic(
			engine.Params{Cfg: core.Config{Dmax: 4}, Seed: 5},
			graph.Clusters(3, 4, 1, true)),
		"line-lossy-jitter": engine.NewStatic(
			engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 8, Jitter: true, Channel: radio.Lossy{P: 0.15}},
			graph.Line(12)),
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".json")
}

func traceOf(e *engine.Engine, rounds int) []string {
	out := make([]string, 0, rounds)
	for r := 0; r < rounds; r++ {
		e.StepRound()
		sh, mh := hashRound(e)
		out = append(out, hex16(sh)+":"+hex16(mh))
	}
	return out
}

func hex16(x uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

func TestGoldenTraces(t *testing.T) {
	for name, e := range goldenScenarios() {
		got := goldenTrace{Scenario: name, Rounds: traceOf(e, 40)}
		path := goldenPath(name)
		if *update {
			buf, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		var want goldenTrace
		if err := json.Unmarshal(buf, &want); err != nil {
			t.Fatal(err)
		}
		if len(want.Rounds) != len(got.Rounds) {
			t.Fatalf("%s: %d rounds vs golden %d", name, len(got.Rounds), len(want.Rounds))
		}
		for r := range want.Rounds {
			if got.Rounds[r] != want.Rounds[r] {
				t.Fatalf("%s: behavior diverged from golden trace at round %d:\n got %s\nwant %s\n"+
					"(a deliberate protocol change must regenerate via `go test ./internal/conformance -run Golden -update`)",
					name, r+1, got.Rounds[r], want.Rounds[r])
			}
		}
		if !reflect.DeepEqual(got.Scenario, want.Scenario) {
			t.Fatalf("%s: scenario name mismatch", name)
		}
	}
}
