package conformance

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// These tests pin the activity-driven compute skip (engine phase 5) to
// the eager execution: Params.EagerCompute disables the skip, and the
// full per-round record stream — protocol state, broadcast contents,
// Ω-partition statistics, traffic counters — must be bit-identical with
// it on and off, sequentially and at 4 workers, on both the churning
// walled world and the mostly-parked commuter world. They also assert the
// skip actually engages (a conformance pass that silently never skips
// proves nothing).

// computeMode selects which layers of the skip predicate a differential
// run leaves enabled.
type computeMode struct{ eager, disableMemo bool }

var (
	modeEager   = computeMode{eager: true}       // every compute executed
	modeNoMemo  = computeMode{disableMemo: true} // version-grained skip only
	modeDefault = computeMode{}                  // skip + fixpoint memo
)

// runMode is run() with the oracle off and the compute mode explicit; it
// also returns the engine's compute counters and the memoized-replay
// count.
func runMode(t *testing.T, workers, rounds int, m computeMode) (recs []roundRec, ran, skipped int, memo uint64) {
	t.Helper()
	s := newScenario(workers, false)
	s.e.P.EagerCompute = m.eager
	s.e.P.DisableMemo = m.disableMemo
	tr := obs.NewGroupTracker(s.e)
	for r := 0; r < rounds; r++ {
		s.step(r, false)
		st := tr.Observe()
		sh, mh := hashRound(s.e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: s.e.MessagesSent, Bytes: s.e.BytesSent, Delivs: s.e.Deliveries,
		})
	}
	memo = s.e.Introspect().Snapshot().Counters["skips_memo"]
	return recs, s.e.ComputesRun, s.e.ComputesSkipped, memo
}

// runCommuterMode is the same over the commuter scenario (fixed
// membership, 92% parked — the regime the skip is built for).
func runCommuterMode(t *testing.T, workers, rounds int, m computeMode) (recs []roundRec, ran, skipped int, memo uint64) {
	t.Helper()
	e := commuterScenario(workers, false)
	e.P.EagerCompute = m.eager
	e.P.DisableMemo = m.disableMemo
	tr := obs.NewGroupTracker(e)
	for r := 0; r < rounds; r++ {
		e.StepRound()
		st := tr.Observe()
		sh, mh := hashRound(e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: e.MessagesSent, Bytes: e.BytesSent, Delivs: e.Deliveries,
		})
	}
	memo = e.Introspect().Snapshot().Counters["skips_memo"]
	return recs, e.ComputesRun, e.ComputesSkipped, memo
}

func assertSameStream(t *testing.T, name string, a, b []roundRec) {
	t.Helper()
	for r := range a {
		if !reflect.DeepEqual(a[r], b[r]) {
			t.Fatalf("%s: round %d diverged:\na: %+v\nb: %+v", name, r+1, a[r], b[r])
		}
	}
}

// TestSkipMatchesEagerCompute pins the skip on the churning walled world:
// eager and default executions produce bit-identical record streams, the
// eager run never skips, and the default run does.
func TestSkipMatchesEagerCompute(t *testing.T) {
	eager, _, eSkipped, _ := runMode(t, 1, 60, modeEager)
	def, dRan, dSkipped, _ := runMode(t, 1, 60, modeDefault)
	assertSameStream(t, "eager vs default", eager, def)
	if eSkipped != 0 {
		t.Fatalf("eager run skipped %d computes", eSkipped)
	}
	if dSkipped == 0 {
		t.Fatal("default run never skipped — the fast path is dead and this test proves nothing")
	}
	t.Logf("churning world: ran %d, skipped %d (%.1f%%)", dRan, dSkipped,
		100*float64(dSkipped)/float64(dRan+dSkipped))
}

// TestSkipMatchesEagerComputeParallel crosses the modes with the worker
// count: eager-sequential, default-sequential and default-4-workers must
// agree record for record.
func TestSkipMatchesEagerComputeParallel(t *testing.T) {
	eagerSeq, _, _, _ := runMode(t, 1, 40, modeEager)
	defSeq, _, _, _ := runMode(t, 1, 40, modeDefault)
	defPar, _, skipped, _ := runMode(t, 4, 40, modeDefault)
	assertSameStream(t, "eager-seq vs default-seq", eagerSeq, defSeq)
	assertSameStream(t, "default-seq vs default-par", defSeq, defPar)
	if skipped == 0 {
		t.Fatal("parallel default run never skipped")
	}
}

// TestCommuterSkipMatchesEagerCompute pins the skip in its target regime:
// the mostly-parked commuter world, where after convergence the parked
// majority must be carried by skips while the commuters keep computing —
// and the trace must still be bit-identical to the eager execution at
// any worker count.
func TestCommuterSkipMatchesEagerCompute(t *testing.T) {
	eager, eRan, _, _ := runCommuterMode(t, 1, 40, modeEager)
	def, dRan, dSkipped, _ := runCommuterMode(t, 1, 40, modeDefault)
	defPar, _, _, _ := runCommuterMode(t, 4, 40, modeDefault)
	assertSameStream(t, "eager vs default", eager, def)
	assertSameStream(t, "default-seq vs default-par", def, defPar)
	if dSkipped == 0 {
		t.Fatal("commuter run never skipped")
	}
	if dRan+dSkipped != eRan {
		t.Fatalf("compute boundaries diverged: eager ran %d, default ran %d + skipped %d",
			eRan, dRan, dSkipped)
	}
	frac := float64(dSkipped) / float64(dRan+dSkipped)
	t.Logf("commuter world: ran %d, skipped %d (%.1f%%)", dRan, dSkipped, 100*frac)
	if frac < 0.2 {
		t.Fatalf("skip fraction %.1f%% — the parked majority is not being skipped", 100*frac)
	}
}

// TestMemoMatchesDisabled is the differential proof the tentpole hangs
// on (ISSUE 9, DESIGN.md §2i): with the fixpoint memo force-disabled vs
// enabled, the full per-round record stream — protocol state, broadcast
// contents, Ω-partition statistics, traffic counters — must be
// bit-identical on the churning walled world. A memoized replay advances
// the compute counter that feeds boundary-memory expiry jitter, so any
// drift in counter bookkeeping shows up here as a diverging trace the
// round a hold expires early or late. The memo run must actually replay
// through the memo, or the test proves nothing.
func TestMemoMatchesDisabled(t *testing.T) {
	off, oRan, oSkipped, oMemo := runMode(t, 1, 60, modeNoMemo)
	on, nRan, nSkipped, nMemo := runMode(t, 1, 60, modeDefault)
	assertSameStream(t, "memo-off vs memo-on", off, on)
	if oMemo != 0 {
		t.Fatalf("DisableMemo run recorded %d memoized replays", oMemo)
	}
	if nMemo == 0 {
		t.Fatal("memo run never replayed through the memo — the new class is dead and this test proves nothing")
	}
	if oRan+oSkipped != nRan+nSkipped {
		t.Fatalf("compute boundaries diverged: off %d+%d, on %d+%d", oRan, oSkipped, nRan, nSkipped)
	}
	t.Logf("churning world: memo replays %d (runs %d → %d)", nMemo, oRan, nRan)
}

// TestCommuterMemoMatchesDisabled crosses the memo with the worker count
// in its target regime: memo-off-sequential, memo-on-sequential and
// memo-on-4-workers must agree record for record, and the memo must
// carry a visible share of the replays (the re-probe wakes it was built
// to absorb).
func TestCommuterMemoMatchesDisabled(t *testing.T) {
	off, oRan, _, _ := runCommuterMode(t, 1, 40, modeNoMemo)
	on, nRan, _, nMemo := runCommuterMode(t, 1, 40, modeDefault)
	onPar, pRan, _, pMemo := runCommuterMode(t, 4, 40, modeDefault)
	assertSameStream(t, "memo-off vs memo-on", off, on)
	assertSameStream(t, "memo-on-seq vs memo-on-par", on, onPar)
	if nMemo == 0 {
		t.Fatal("commuter memo run never replayed through the memo")
	}
	if pRan != nRan || pMemo != nMemo {
		t.Fatalf("worker count changed the memo outcome: seq ran %d memo %d, par ran %d memo %d",
			nRan, nMemo, pRan, pMemo)
	}
	t.Logf("commuter world: memo replays %d (runs %d → %d)", nMemo, oRan, nRan)
}
