package conformance

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// These tests pin the activity-driven compute skip (engine phase 5) to
// the eager execution: Params.EagerCompute disables the skip, and the
// full per-round record stream — protocol state, broadcast contents,
// Ω-partition statistics, traffic counters — must be bit-identical with
// it on and off, sequentially and at 4 workers, on both the churning
// walled world and the mostly-parked commuter world. They also assert the
// skip actually engages (a conformance pass that silently never skips
// proves nothing).

// runMode is run() with the oracle off and the compute mode explicit; it
// also returns the engine's compute counters.
func runMode(t *testing.T, workers, rounds int, eager bool) (recs []roundRec, ran, skipped int) {
	t.Helper()
	s := newScenario(workers, false)
	s.e.P.EagerCompute = eager
	tr := obs.NewGroupTracker(s.e)
	for r := 0; r < rounds; r++ {
		s.step(r, false)
		st := tr.Observe()
		sh, mh := hashRound(s.e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: s.e.MessagesSent, Bytes: s.e.BytesSent, Delivs: s.e.Deliveries,
		})
	}
	return recs, s.e.ComputesRun, s.e.ComputesSkipped
}

// runCommuterMode is the same over the commuter scenario (fixed
// membership, 92% parked — the regime the skip is built for).
func runCommuterMode(t *testing.T, workers, rounds int, eager bool) (recs []roundRec, ran, skipped int) {
	t.Helper()
	e := commuterScenario(workers, false)
	e.P.EagerCompute = eager
	tr := obs.NewGroupTracker(e)
	for r := 0; r < rounds; r++ {
		e.StepRound()
		st := tr.Observe()
		sh, mh := hashRound(e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: e.MessagesSent, Bytes: e.BytesSent, Delivs: e.Deliveries,
		})
	}
	return recs, e.ComputesRun, e.ComputesSkipped
}

func assertSameStream(t *testing.T, name string, a, b []roundRec) {
	t.Helper()
	for r := range a {
		if !reflect.DeepEqual(a[r], b[r]) {
			t.Fatalf("%s: round %d diverged:\na: %+v\nb: %+v", name, r+1, a[r], b[r])
		}
	}
}

// TestSkipMatchesEagerCompute pins the skip on the churning walled world:
// eager and default executions produce bit-identical record streams, the
// eager run never skips, and the default run does.
func TestSkipMatchesEagerCompute(t *testing.T) {
	eager, _, eSkipped := runMode(t, 1, 60, true)
	def, dRan, dSkipped := runMode(t, 1, 60, false)
	assertSameStream(t, "eager vs default", eager, def)
	if eSkipped != 0 {
		t.Fatalf("eager run skipped %d computes", eSkipped)
	}
	if dSkipped == 0 {
		t.Fatal("default run never skipped — the fast path is dead and this test proves nothing")
	}
	t.Logf("churning world: ran %d, skipped %d (%.1f%%)", dRan, dSkipped,
		100*float64(dSkipped)/float64(dRan+dSkipped))
}

// TestSkipMatchesEagerComputeParallel crosses the modes with the worker
// count: eager-sequential, default-sequential and default-4-workers must
// agree record for record.
func TestSkipMatchesEagerComputeParallel(t *testing.T) {
	eagerSeq, _, _ := runMode(t, 1, 40, true)
	defSeq, _, _ := runMode(t, 1, 40, false)
	defPar, _, skipped := runMode(t, 4, 40, false)
	assertSameStream(t, "eager-seq vs default-seq", eagerSeq, defSeq)
	assertSameStream(t, "default-seq vs default-par", defSeq, defPar)
	if skipped == 0 {
		t.Fatal("parallel default run never skipped")
	}
}

// TestCommuterSkipMatchesEagerCompute pins the skip in its target regime:
// the mostly-parked commuter world, where after convergence the parked
// majority must be carried by skips while the commuters keep computing —
// and the trace must still be bit-identical to the eager execution at
// any worker count.
func TestCommuterSkipMatchesEagerCompute(t *testing.T) {
	eager, eRan, _ := runCommuterMode(t, 1, 40, true)
	def, dRan, dSkipped := runCommuterMode(t, 1, 40, false)
	defPar, _, _ := runCommuterMode(t, 4, 40, false)
	assertSameStream(t, "eager vs default", eager, def)
	assertSameStream(t, "default-seq vs default-par", def, defPar)
	if dSkipped == 0 {
		t.Fatal("commuter run never skipped")
	}
	if dRan+dSkipped != eRan {
		t.Fatalf("compute boundaries diverged: eager ran %d, default ran %d + skipped %d",
			eRan, dRan, dSkipped)
	}
	frac := float64(dSkipped) / float64(dRan+dSkipped)
	t.Logf("commuter world: ran %d, skipped %d (%.1f%%)", dRan, dSkipped, 100*frac)
	if frac < 0.2 {
		t.Fatalf("skip fraction %.1f%% — the parked majority is not being skipped", 100*frac)
	}
}
