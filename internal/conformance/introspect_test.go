package conformance

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/introspect"
	"repro/internal/mobility"
	"repro/internal/space"
)

// registryCounters runs the churning walled scenario and returns the
// flight recorder's deterministic counter block.
func registryCounters(workers, rounds int) map[string]uint64 {
	s := newScenario(workers, false)
	for r := 0; r < rounds; r++ {
		s.step(r, false)
	}
	return s.e.Introspect().Snapshot().Counters
}

// TestRegistryBitIdenticalAcrossWorkers pins the flight recorder's
// deterministic section to the engine's worker-count invariance
// guarantee: every counter — computes, per-class skips, the wake-cause
// histogram, the message/receiver cache hits, deliveries and elisions —
// must be bit-identical between the sequential and 4-worker executions
// of the same churning scenario. (The wall-clock phase timings live in a
// separate registry section precisely because they cannot satisfy this.)
func TestRegistryBitIdenticalAcrossWorkers(t *testing.T) {
	seq := registryCounters(1, 60)
	par := registryCounters(4, 60)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("registry diverged across workers:\nseq: %v\npar: %v", seq, par)
	}
}

// TestRegistryBitIdenticalOnDeltaPath repeats the invariance check on the
// mostly-parked commuter scenario — the regime where the skip predicate
// elides most computes and the graph is patched through ApplyDelta — so
// the skip-class and wake-cause counters are exercised, not just the
// always-compute ones.
func TestRegistryBitIdenticalOnDeltaPath(t *testing.T) {
	run := func(workers int) map[string]uint64 {
		e := commuterScenario(workers, false)
		for r := 0; r < 50; r++ {
			e.StepRound()
		}
		return e.Introspect().Snapshot().Counters
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("registry diverged across workers on the delta path:\nseq: %v\npar: %v", seq, par)
	}
	if seq["computes_skipped"] == 0 {
		t.Fatal("commuter scenario skipped nothing — the skip-counter check is vacuous")
	}
	if seq["graph_delta_rounds"] == 0 {
		t.Fatal("commuter scenario never took the delta path — wrong regime")
	}
}

// TestRegistryMatchesLegacyCounters asserts the registry agrees exactly
// with the engine's original plain-field counters over a churning run —
// the two accounting systems observe the same events at the same sites.
func TestRegistryMatchesLegacyCounters(t *testing.T) {
	s := newScenario(4, false)
	for r := 0; r < 60; r++ {
		s.step(r, false)
	}
	c := s.e.Introspect().Snapshot().Counters
	for name, want := range map[string]int{
		"messages_sent":    s.e.MessagesSent,
		"bytes_sent":       s.e.BytesSent,
		"deliveries":       s.e.Deliveries,
		"computes_run":     s.e.ComputesRun,
		"computes_skipped": s.e.ComputesSkipped,
		"ticks":            s.e.Tick(),
	} {
		if c[name] != uint64(want) {
			t.Errorf("registry %s = %d, legacy counter = %d", name, c[name], want)
		}
	}
}

// wakeScenario is the commuter world with EagerCompute selectable: the
// wake-attribution accounting must close in both modes (under eager
// compute the skip-eligible boundaries execute as quiet replays).
func wakeScenario(eager bool) *engine.Engine {
	w := space.NewWorld(2.5)
	ids := make([]ident.NodeID, 150)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Commuter{Side: 33, SpeedMin: 0.5, SpeedMax: 2, Pause: 1, ActiveFraction: 0.08}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(19)))
	return engine.New(engine.Params{
		Cfg: core.Config{Dmax: 3}, Seed: 19, Workers: 4, EagerCompute: eager,
	}, topo)
}

// TestWakeHistogramAccountsAllComputes asserts every executed compute is
// attributed to exactly one wake cause: the per-cause histogram sums to
// computes_run, with and without the activity skip. It also cross-checks
// the traced wake stream (the -trace-wakes records) against the
// histogram counters.
func TestWakeHistogramAccountsAllComputes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		eager bool
	}{{"skip", false}, {"eager", true}} {
		t.Run(tc.name, func(t *testing.T) {
			e := wakeScenario(tc.eager)
			e.TraceWakes(true)
			traced := make(map[introspect.WakeCause]uint64)
			for r := 0; r < 50; r++ {
				e.StepRound()
				e.DrainWakes(func(wakes []introspect.WakeRec) {
					for _, w := range wakes {
						traced[w.Cause]++
					}
				})
			}
			c := e.Introspect().Snapshot().Counters
			var sum uint64
			for cause := introspect.WakeCause(0); cause < introspect.NumWakeCauses; cause++ {
				n := c[cause.Counter().String()]
				sum += n
				if traced[cause] != n {
					t.Errorf("wake trace %s = %d records, histogram = %d", cause, traced[cause], n)
				}
			}
			if run := c["computes_run"]; sum != run {
				t.Errorf("wake causes sum to %d, computes_run = %d — attribution leaks", sum, run)
			}
			if tc.eager {
				if c["wakes_quiet_replay"] == 0 {
					t.Error("eager mode produced no quiet replays — the mode check is vacuous")
				}
			} else {
				if c["wakes_quiet_replay"] != 0 {
					t.Errorf("skip mode attributed %d quiet replays — those boundaries should have been skipped", c["wakes_quiet_replay"])
				}
				// The fixpoint memo must engage (and the accounting still
				// close): memoized replays land in skips_memo, and the
				// signature-failed-but-content-proven computes that seed
				// them show up as memo_miss wakes.
				if c["skips_memo"] == 0 {
					t.Error("skip mode never replayed through the fixpoint memo — the memo accounting check is vacuous")
				}
				if c["wakes_memo_miss"] == 0 {
					t.Error("skip mode attributed no memo-miss wakes — version-churn re-probes are not being classified")
				}
			}
		})
	}
}
