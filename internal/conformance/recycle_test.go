package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/space"
)

// These tests pin the inbox-signature incarnation stamping (senderVer.gen)
// across roster slot recycling. The eager execution never reads a
// signature, so it is the oracle: if a removed-and-readded node — whose
// state version counter restarts from scratch — or a different node
// recycling the departed one's slot could ever produce an inbox signature
// equal to the old occupant's, the skip (or the memo) would replay a
// round whose inbox actually changed, and the record stream would diverge
// from the eager run within a round or two.

// recycleScenario is a walled world whose churn deliberately aims at the
// aliasing hazards: the same victim is removed and re-added a few rounds
// later (same ID, restarted version counter, well inside a boundary-hold
// window), and a brand-new node is inserted in between so the freed slot
// is recycled by a *different* ID first.
type recycleScenario struct {
	w       *space.World
	e       *engine.Engine
	rng     *rand.Rand
	next    ident.NodeID
	victim  ident.NodeID
	parked  space.Point
	pending bool
}

func newRecycleScenario(workers int) *recycleScenario {
	w := space.NewWorld(2.5)
	w.SetWalls([]space.Segment{
		{A: space.Point{X: 10, Y: 0}, B: space.Point{X: 10, Y: 14}},
		{A: space.Point{X: 10, Y: 16}, B: space.Point{X: 10, Y: 30}},
	})
	ids := make([]ident.NodeID, 40)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Waypoint{Side: 24, SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(23)))
	e := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 23, Workers: workers}, topo)
	return &recycleScenario{w: w, e: e, rng: rand.New(rand.NewSource(29)), next: 900}
}

func (s *recycleScenario) step(r int) {
	switch r % 5 {
	case 1:
		order := s.e.Order()
		s.victim = order[s.rng.Intn(len(order))]
		s.parked = space.Point{X: s.rng.Float64() * 24, Y: s.rng.Float64() * 24}
		s.e.RemoveNode(s.victim)
		s.w.Remove(s.victim)
		s.pending = true
	case 2:
		// A fresh ID claims the freed slot before the victim returns, so
		// the re-add below lands on a different slot than it held.
		v := s.next
		s.next++
		s.w.Place(v, space.Point{X: s.rng.Float64() * 24, Y: s.rng.Float64() * 24})
		s.e.AddNode(v)
	case 3:
		if s.pending {
			// Same ID back, version counter restarted, two rounds after
			// departure — deep inside any hold its neighbors armed.
			s.w.Place(s.victim, s.parked)
			s.e.AddNode(s.victim)
			s.pending = false
		}
	}
	s.e.StepRound()
}

func runRecycleMode(t *testing.T, workers, rounds int, m computeMode) (recs []roundRec, skipped int, memo uint64) {
	t.Helper()
	s := newRecycleScenario(workers)
	s.e.P.EagerCompute = m.eager
	s.e.P.DisableMemo = m.disableMemo
	tr := obs.NewGroupTracker(s.e)
	for r := 0; r < rounds; r++ {
		s.step(r)
		st := tr.Observe()
		sh, mh := hashRound(s.e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: s.e.MessagesSent, Bytes: s.e.BytesSent, Delivs: s.e.Deliveries,
		})
	}
	return recs, s.e.ComputesSkipped, s.e.Introspect().Snapshot().Counters["skips_memo"]
}

// TestSlotRecycleSignatures runs the recycling churn in every compute
// mode and worker count and demands bit-identical record streams, with
// both fast paths demonstrably engaged.
func TestSlotRecycleSignatures(t *testing.T) {
	const rounds = 60
	eager, eSkipped, _ := runRecycleMode(t, 1, rounds, modeEager)
	noMemo, _, _ := runRecycleMode(t, 1, rounds, modeNoMemo)
	def, dSkipped, dMemo := runRecycleMode(t, 1, rounds, modeDefault)
	defPar, _, pMemo := runRecycleMode(t, 4, rounds, modeDefault)
	assertSameStream(t, "eager vs no-memo", eager, noMemo)
	assertSameStream(t, "eager vs default", eager, def)
	assertSameStream(t, "default-seq vs default-par", def, defPar)
	if eSkipped != 0 {
		t.Fatalf("eager run skipped %d computes", eSkipped)
	}
	if dSkipped == 0 {
		t.Fatal("recycling run never skipped — the hazard path was not exercised")
	}
	if dMemo == 0 {
		t.Fatal("recycling run never memoized — the hazard path was not exercised")
	}
	if pMemo != dMemo {
		t.Fatalf("worker count changed memo replays: seq %d, par %d", dMemo, pMemo)
	}
	t.Logf("recycling churn: skipped %d, memo replays %d", dSkipped, dMemo)
}
