// Package conformance is the differential test suite pinning the hot-path
// rewrites (the CSR graph and the allocation-light compute phase) to the
// retained reference implementations. It drives whole engines over
// churning walled mobile worlds with every node's SelfCheck oracle armed
// — each Compute cross-validates the flat-record priority learning and
// each BuildMessage the record assembly against the verbatim map-based
// originals (core/reference.go) — while the topology every round is
// compared against a brute-force rebuild on the map-of-maps reference
// graph (graph.Ref). Round-by-round records (messages, views,
// Ω-partitions via obs, metric records via the brute-force snapshot
// path) are asserted bit-identical between the sequential and the
// 4-worker executions.
package conformance

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/space"
)

// scenario is the shared churning walled mobile world: random-waypoint
// motion, a wall splitting the arena, nodes joining and leaving.
type scenario struct {
	w     *space.World
	e     *engine.Engine
	churn *rand.Rand
	next  ident.NodeID
}

func newScenario(workers int, selfCheck bool) *scenario {
	w := space.NewWorld(2.5)
	w.SetWalls([]space.Segment{
		{A: space.Point{X: 10, Y: 0}, B: space.Point{X: 10, Y: 14}},
		{A: space.Point{X: 10, Y: 16}, B: space.Point{X: 10, Y: 30}},
	})
	ids := make([]ident.NodeID, 80)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Waypoint{Side: 24, SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(11)))
	e := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 11, Workers: workers}, topo)
	s := &scenario{w: w, e: e, churn: rand.New(rand.NewSource(13)), next: 500}
	if selfCheck {
		for _, n := range e.Nodes {
			n.SelfCheck = true
		}
	}
	return s
}

// step applies one round of churn and advances one full round.
func (s *scenario) step(r int, selfCheck bool) {
	if r%6 == 2 {
		order := s.e.Order()
		v := order[s.churn.Intn(len(order))]
		s.e.RemoveNode(v)
		s.w.Remove(v)
	}
	if r%4 == 1 {
		v := s.next
		s.next++
		s.w.Place(v, space.Point{X: s.churn.Float64() * 24, Y: s.churn.Float64() * 24})
		s.e.AddNode(v)
		if selfCheck {
			s.e.Nodes[v].SelfCheck = true
		}
	}
	s.e.StepRound()
}

// roundRec is everything one observed round must agree on across
// executions: per-node protocol state and broadcasts (hashed), the
// Ω-partition statistics, and the traffic counters.
type roundRec struct {
	StateHash uint64
	MsgHash   uint64
	Stats     obs.RoundStats
	Msgs      int
	Bytes     int
	Delivs    int
}

func hashRound(e *engine.Engine) (state, msgs uint64) {
	hs, hm := fnv.New64a(), fnv.New64a()
	for _, v := range e.Order() {
		n := e.Nodes[v]
		fmt.Fprintf(hs, "%d|%s|%v|%s|%s|%d\n", v, n.List(), n.View(), n.Priority(), n.GroupPriority(), n.QuarantineOf(v))
		m := n.BuildMessage()
		p, g, q := m.PrioMaps()
		fmt.Fprintf(hm, "%d|%s|%s|%d\n", m.From, m.List, m.GroupPrio, m.EncodedSize())
		for _, id := range sortedKeys(p) {
			fmt.Fprintf(hm, "p%d=%s g%s q%d\n", id, p[id], g[id], q[id])
		}
	}
	return hs.Sum64(), hm.Sum64()
}

func sortedKeys[V any](m map[ident.NodeID]V) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// run executes the scenario for the given number of rounds and returns
// the per-round records.
func run(t *testing.T, workers, rounds int, selfCheck bool) []roundRec {
	t.Helper()
	s := newScenario(workers, selfCheck)
	tr := obs.NewGroupTracker(s.e)
	recs := make([]roundRec, 0, rounds)
	for r := 0; r < rounds; r++ {
		s.step(r, selfCheck)
		st := tr.Observe()
		sh, mh := hashRound(s.e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: s.e.MessagesSent, Bytes: s.e.BytesSent, Delivs: s.e.Deliveries,
		})
	}
	return recs
}

// TestNewPathMatchesReferenceOracle runs the churning scenario with every
// node's SelfCheck armed: any divergence between the allocation-light
// compute/broadcast paths and the retained map-based reference
// implementations panics inside the run. The records double as the
// sequential baseline for the parallel test below.
func TestNewPathMatchesReferenceOracle(t *testing.T) {
	recs := run(t, 1, 60, true)
	if len(recs) != 60 {
		t.Fatalf("got %d records", len(recs))
	}
}

// TestSeqAndParallelBitIdentical asserts the full per-round record stream
// — protocol state, broadcast contents, Ω-partition statistics, traffic
// counters — is bit-identical between the sequential execution and the
// 4-worker execution, with the reference oracle armed on both.
func TestSeqAndParallelBitIdentical(t *testing.T) {
	seq := run(t, 1, 60, true)
	par := run(t, 4, 60, true)
	for r := range seq {
		if !reflect.DeepEqual(seq[r], par[r]) {
			t.Fatalf("round %d diverged:\nseq: %+v\npar: %+v", r+1, seq[r], par[r])
		}
	}
}

// TestSelfCheckIsPureObserver asserts the oracle cross-checks do not
// perturb the execution: records with and without SelfCheck are equal.
func TestSelfCheckIsPureObserver(t *testing.T) {
	plain := run(t, 4, 40, false)
	checked := run(t, 4, 40, true)
	if !reflect.DeepEqual(plain, checked) {
		t.Fatal("SelfCheck changed the execution")
	}
}

// TestGraphMatchesBruteForceReference rebuilds, every round, the
// symmetric communication graph by brute force on the retained
// map-of-maps reference implementation (all-pairs CanReach in both
// directions, the seed's definition) and asserts the engine's CSR
// snapshot graph — nodes, edges, and every neighbor slice — matches it.
func TestGraphMatchesBruteForceReference(t *testing.T) {
	s := newScenario(1, false)
	for r := 0; r < 40; r++ {
		s.step(r, false)
		g := s.e.SnapshotGraph()
		ref := graph.NewRef()
		ids := s.w.Nodes()
		for _, v := range ids {
			if _, live := s.e.Nodes[v]; live {
				ref.AddNode(v)
			}
		}
		for i, u := range ids {
			if _, live := s.e.Nodes[u]; !live {
				continue
			}
			for _, v := range ids[i+1:] {
				if _, live := s.e.Nodes[v]; !live {
					continue
				}
				if s.w.CanReach(u, v) && s.w.CanReach(v, u) {
					ref.AddEdge(u, v)
				}
			}
		}
		if !ref.SameAs(g) {
			t.Fatalf("round %d: CSR graph diverged from brute-force reference: %s vs n=%d m=%d",
				r+1, g, ref.NumNodes(), ref.NumEdges())
		}
		for _, v := range ref.Nodes() {
			want := ref.Neighbors(v)
			got := g.NeighborsView(v)
			if len(want) != len(got) {
				t.Fatalf("round %d: neighbor count of %v: %v vs %v", r+1, v, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("round %d: neighbors of %v diverged: %v vs %v", r+1, v, got, want)
				}
			}
		}
	}
}

// commuterScenario is the mostly-parked regime: 8% of the population
// commutes (random waypoint), the rest stay parked, membership is fixed —
// exactly the conditions under which space.SymmetricGraph patches the
// previous CSR through graph.ApplyDelta on every round instead of
// rebuilding. It pins the delta-incremental graph inside a whole engine.
func commuterScenario(workers int, selfCheck bool) *engine.Engine {
	w := space.NewWorld(2.5)
	ids := make([]ident.NodeID, 150)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Commuter{Side: 33, SpeedMin: 0.5, SpeedMax: 2, Pause: 1, ActiveFraction: 0.08}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(19)))
	e := engine.New(engine.Params{Cfg: core.Config{Dmax: 3}, Seed: 19, Workers: workers}, topo)
	if selfCheck {
		for _, n := range e.Nodes {
			n.SelfCheck = true
		}
	}
	return e
}

// TestDeltaGraphMatchesBruteForceReference rebuilds the symmetric graph by
// brute force on the map-of-maps reference every round of the commuter
// scenario and asserts the engine's patched CSR matches — nodes, edges,
// and every neighbor row.
func TestDeltaGraphMatchesBruteForceReference(t *testing.T) {
	e := commuterScenario(1, false)
	w := e.Topo.(*engine.SpatialTopology).World
	for r := 0; r < 50; r++ {
		e.StepRound()
		g := e.SnapshotGraph()
		ref := graph.NewRef()
		ids := w.Nodes()
		for _, v := range ids {
			ref.AddNode(v)
		}
		for i, u := range ids {
			for _, v := range ids[i+1:] {
				if w.CanReach(u, v) && w.CanReach(v, u) {
					ref.AddEdge(u, v)
				}
			}
		}
		if !ref.SameAs(g) {
			t.Fatalf("round %d: patched CSR diverged from brute-force reference: %s vs n=%d m=%d",
				r+1, g, ref.NumNodes(), ref.NumEdges())
		}
		for _, v := range ref.Nodes() {
			want := ref.Neighbors(v)
			got := g.NeighborsView(v)
			if len(want) != len(got) {
				t.Fatalf("round %d: neighbor count of %v: %v vs %v", r+1, v, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("round %d: neighbors of %v diverged: %v vs %v", r+1, v, got, want)
				}
			}
		}
	}
}

// chaosRun drives the walled churning scenario with the deterministic
// fault injector armed on top — crash-recovery with corrupted reloads,
// Byzantine liars, a burst-lossy channel, flapping neighborhoods — and
// every node's SelfCheck oracle on. It pins the acceptance criterion
// that phase-aligned injection preserves the seq-vs-parallel equality.
func chaosRun(t *testing.T, workers, rounds int) []roundRec {
	t.Helper()
	w := space.NewWorld(2.5)
	ids := make([]ident.NodeID, 60)
	for i := range ids {
		ids[i] = ident.NodeID(i + 1)
	}
	m := &mobility.Waypoint{Side: 20, SpeedMin: 0.5, SpeedMax: 2, Pause: 1}
	topo := engine.NewSpatialTopology(w, m, 0.2, ids, rand.New(rand.NewSource(29)))
	prof, err := fault.Preset("mixed", 1)
	if err != nil {
		t.Fatal(err)
	}
	prof.Seed = 31
	prof.Flap = fault.FlapConfig{Rate: 0.04, DownRounds: 5, MaxStorm: 3}
	e := engine.New(engine.Params{
		Cfg:     core.Config{Dmax: 3},
		Channel: prof.NewChannel(nil),
		Seed:    29,
		Workers: workers,
	}, topo)
	for _, n := range e.Nodes {
		n.SelfCheck = true
	}
	positions := map[ident.NodeID]space.Point{}
	inj := fault.NewInjector(prof, e, fault.Hooks{
		Leave: func(v ident.NodeID) {
			if p, ok := w.Pos(v); ok {
				positions[v] = p
			}
			w.Remove(v)
		},
		Rejoin: func(v ident.NodeID) {
			w.Place(v, positions[v])
		},
	})
	tr := obs.NewGroupTracker(e)
	recs := make([]roundRec, 0, rounds)
	for r := 1; r <= rounds; r++ {
		inj.Apply(r)
		for _, n := range e.Nodes {
			n.SelfCheck = true // rejoined nodes come back with fresh cores
		}
		e.StepRound()
		st := tr.Observe()
		sh, mh := hashRound(e)
		recs = append(recs, roundRec{
			StateHash: sh, MsgHash: mh, Stats: st,
			Msgs: e.MessagesSent, Bytes: e.BytesSent, Delivs: e.Deliveries,
		})
	}
	if inj.FaultsInjected == 0 {
		t.Fatal("chaos conformance run injected no faults — the comparison is vacuous")
	}
	return recs
}

// TestChaosSeqAndParallelBitIdentical asserts the full record stream is
// bit-identical between the sequential and the 4-worker execution with
// the fault injector armed and the reference oracles on — fault
// injection is phase-aligned and coordinator-side, so it must not
// perturb the determinism contract.
func TestChaosSeqAndParallelBitIdentical(t *testing.T) {
	seq := chaosRun(t, 1, 80)
	par := chaosRun(t, 4, 80)
	for r := range seq {
		if !reflect.DeepEqual(seq[r], par[r]) {
			t.Fatalf("round %d diverged:\nseq: %+v\npar: %+v", r+1, seq[r], par[r])
		}
	}
}

// TestDeltaGraphSeqAndParallelBitIdentical asserts the commuter scenario's
// full record stream is bit-identical between the sequential and 4-worker
// executions with the reference oracles armed — the delta patch path under
// the same determinism contract as everything else.
func TestDeltaGraphSeqAndParallelBitIdentical(t *testing.T) {
	runC := func(workers int) []roundRec {
		e := commuterScenario(workers, true)
		tr := obs.NewGroupTracker(e)
		recs := make([]roundRec, 0, 40)
		for r := 0; r < 40; r++ {
			e.StepRound()
			st := tr.Observe()
			sh, mh := hashRound(e)
			recs = append(recs, roundRec{
				StateHash: sh, MsgHash: mh, Stats: st,
				Msgs: e.MessagesSent, Bytes: e.BytesSent, Delivs: e.Deliveries,
			})
		}
		return recs
	}
	seq := runC(1)
	par := runC(4)
	for r := range seq {
		if !reflect.DeepEqual(seq[r], par[r]) {
			t.Fatalf("round %d diverged:\nseq: %+v\npar: %+v", r+1, seq[r], par[r])
		}
	}
}
