// Package baseline implements the comparison algorithms for the
// experiments: the Max-Min d-cluster formation heuristic of Amis, Prakash,
// Vuong and Huynh (INFOCOM 2000) — the clusterhead-based family the paper
// positions GRP against — and a centralized greedy diameter-bounded
// partitioner used as a partition-quality reference. Both are *oracle*
// algorithms: they see the whole graph and recompute from scratch, which
// is exactly the behavior whose membership churn GRP's continuity is
// designed to avoid (experiment E8).
package baseline

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
)

// MaxMin computes the Max-Min d-cluster heuristic on g: clusterheads are
// elected by d rounds of flood-max followed by d rounds of flood-min on
// node IDs, and every node joins the cluster of its elected head. Cluster
// radius is at most d, so cluster diameter is at most 2d. Setting
// d = ⌊Dmax/2⌋ makes it satisfy the paper's safety property.
//
// The returned map assigns every node its cluster head; Clusters groups
// them. The simulation here is synchronous and centralized (the original
// is a distributed 2d-round protocol whose outcome this reproduces
// exactly), because the experiments only need its *output* per epoch.
func MaxMin(g *graph.G, d int) map[ident.NodeID]ident.NodeID {
	if d < 1 {
		d = 1
	}
	nodes := g.Nodes()
	// Floodmax: d rounds of taking the max over the closed neighborhood.
	winner := make(map[ident.NodeID]ident.NodeID, len(nodes))
	for _, v := range nodes {
		winner[v] = v
	}
	floodRounds := func(cmpMax bool, init map[ident.NodeID]ident.NodeID) []map[ident.NodeID]ident.NodeID {
		hist := []map[ident.NodeID]ident.NodeID{clone(init)}
		cur := clone(init)
		for r := 0; r < d; r++ {
			next := make(map[ident.NodeID]ident.NodeID, len(nodes))
			for _, v := range nodes {
				best := cur[v]
				for _, u := range g.Neighbors(v) {
					if cmpMax == (cur[u] > best) {
						best = cur[u]
					}
				}
				next[v] = best
			}
			hist = append(hist, next)
			cur = next
		}
		return hist
	}
	maxHist := floodRounds(true, winner)
	afterMax := maxHist[len(maxHist)-1]
	minHist := floodRounds(false, afterMax)
	afterMin := minHist[len(minHist)-1]

	// Clusterhead selection per the paper's rules:
	//  1. a node that received its own ID back in the min phase is a head
	//     (rule 1);
	//  2. else if some node appears in both its max and min phase values,
	//     the smallest such "node pair" is its head (rule 2);
	//  3. else the max-phase winner is its head (rule 3).
	head := make(map[ident.NodeID]ident.NodeID, len(nodes))
	for _, v := range nodes {
		if afterMin[v] == v {
			head[v] = v
			continue
		}
		maxSeen := make(map[ident.NodeID]bool, d)
		for _, h := range maxHist[1:] {
			maxSeen[h[v]] = true
		}
		var pairs []ident.NodeID
		for _, h := range minHist[1:] {
			if maxSeen[h[v]] {
				pairs = append(pairs, h[v])
			}
		}
		if len(pairs) > 0 {
			sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
			head[v] = pairs[0]
		} else {
			head[v] = afterMax[v]
		}
	}

	// Convergecast repair: a node's head must be reachable within d hops
	// through members of the same cluster; nodes whose head is
	// unreachable re-home to the nearest head (or themselves). This
	// realizes the paper's "joining" phase conservatively so the output
	// always satisfies the radius bound.
	for _, v := range nodes {
		if !reachableViaCluster(g, v, head, d) {
			// Re-home: nearest node that is its own head within d hops,
			// else become a head.
			dist := g.BFSFrom(v, nil)
			bestHead := v
			bestDist := d + 1
			for u, du := range dist {
				if du <= d && du < bestDist && head[u] == u {
					bestHead, bestDist = u, du
				}
			}
			head[v] = bestHead
		}
	}
	// Second pass: heads chosen above might still be in foreign clusters;
	// promote every referenced head to be its own head.
	for _, v := range nodes {
		head[head[v]] = head[v]
	}
	return head
}

// reachableViaCluster reports whether head[v] is within d hops of v using
// only nodes assigned to the same head as relays.
func reachableViaCluster(g *graph.G, v ident.NodeID, head map[ident.NodeID]ident.NodeID, d int) bool {
	target := head[v]
	if target == v {
		return true
	}
	within := make(map[ident.NodeID]bool)
	for u, h := range head {
		if h == target {
			within[u] = true
		}
	}
	within[v] = true
	dist := g.BFSFrom(v, within)
	dt, ok := dist[target]
	return ok && dt <= d
}

// Clusters converts a head assignment into the member sets, keyed by head.
func Clusters(head map[ident.NodeID]ident.NodeID) map[ident.NodeID][]ident.NodeID {
	out := make(map[ident.NodeID][]ident.NodeID)
	for v, h := range head {
		out[h] = append(out[h], v)
	}
	for h := range out {
		sort.Slice(out[h], func(i, j int) bool { return out[h][i] < out[h][j] })
	}
	return out
}

// Views converts a head assignment into per-node views (every member sees
// the full member list), the shape the metrics package consumes.
func Views(head map[ident.NodeID]ident.NodeID) map[ident.NodeID]map[ident.NodeID]bool {
	clusters := Clusters(head)
	out := make(map[ident.NodeID]map[ident.NodeID]bool, len(head))
	for _, members := range clusters {
		set := make(map[ident.NodeID]bool, len(members))
		for _, v := range members {
			set[v] = true
		}
		for _, v := range members {
			out[v] = set
		}
	}
	return out
}

func clone(m map[ident.NodeID]ident.NodeID) map[ident.NodeID]ident.NodeID {
	out := make(map[ident.NodeID]ident.NodeID, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
