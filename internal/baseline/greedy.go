package baseline

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
)

// GreedyPartition is the centralized quality reference: it grows groups
// greedily — repeatedly take the smallest unassigned node, BFS outward,
// and absorb nodes while the group's induced diameter stays within dmax.
// It is neither optimal nor distributed, but it gives a stable
// "reasonable partition" yardstick for group counts and sizes.
func GreedyPartition(g *graph.G, dmax int) map[ident.NodeID]map[ident.NodeID]bool {
	assigned := make(map[ident.NodeID]bool)
	views := make(map[ident.NodeID]map[ident.NodeID]bool)
	for _, seed := range g.Nodes() {
		if assigned[seed] {
			continue
		}
		group := map[ident.NodeID]bool{seed: true}
		assigned[seed] = true
		frontier := []ident.NodeID{seed}
		for len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			nbrs := g.Neighbors(v)
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			for _, u := range nbrs {
				if assigned[u] {
					continue
				}
				group[u] = true
				if g.InducedDiameter(group) > dmax {
					delete(group, u)
					continue
				}
				assigned[u] = true
				frontier = append(frontier, u)
			}
		}
		for v := range group {
			views[v] = group
		}
	}
	return views
}

// PartitionGroups lists the distinct groups of a view assignment, sorted.
func PartitionGroups(views map[ident.NodeID]map[ident.NodeID]bool) [][]ident.NodeID {
	seen := make(map[ident.NodeID]bool)
	var out [][]ident.NodeID
	keys := make([]ident.NodeID, 0, len(views))
	for v := range views {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		if seen[v] {
			continue
		}
		var members []ident.NodeID
		for u := range views[v] {
			members = append(members, u)
			seen[u] = true
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	return out
}
