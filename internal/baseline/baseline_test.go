package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
)

func TestMaxMinLineRadiusBound(t *testing.T) {
	g := graph.Line(10)
	d := 2
	head := MaxMin(g, d)
	for v, h := range head {
		if head[h] != h {
			t.Fatalf("head of %v is %v which is not a head itself", v, h)
		}
	}
	for h, members := range Clusters(head) {
		set := make(map[ident.NodeID]bool)
		for _, m := range members {
			set[m] = true
		}
		dist := g.BFSFrom(h, set)
		for _, m := range members {
			if dm, ok := dist[m]; !ok || dm > d {
				t.Fatalf("member %v beyond radius %d of head %v (cluster %v)", m, d, h, members)
			}
		}
	}
}

func TestMaxMinDiameterSafety(t *testing.T) {
	// With d = Dmax/2 the clusters satisfy the paper's ΠS.
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.ConnectedRandomGeometric(30, 10, 4, rand.New(rand.NewSource(seed)), 100)
		if g == nil {
			t.Skip("no connected instance")
		}
		dmax := 4
		head := MaxMin(g, dmax/2)
		snap := metrics.Snapshot{G: g, Views: Views(head)}
		if !snap.Safety(dmax) {
			t.Fatalf("seed %d: MaxMin clusters violate ΠS: %v", seed, snap.Groups())
		}
		if !snap.Agreement() {
			t.Fatalf("seed %d: MaxMin views must agree by construction", seed)
		}
	}
}

func TestMaxMinSingletonAndPair(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	head := MaxMin(g, 2)
	if head[1] != 1 {
		t.Fatalf("lone node must head itself: %v", head)
	}
	g2 := graph.Line(2)
	c := Clusters(MaxMin(g2, 1))
	if len(c) != 1 {
		t.Fatalf("pair should form one cluster: %v", c)
	}
}

func TestMaxMinDeterministic(t *testing.T) {
	g := graph.Grid(4, 5)
	a := MaxMin(g, 2)
	b := MaxMin(g, 2)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("MaxMin must be deterministic")
		}
	}
}

func TestMaxMinRecomputationChurn(t *testing.T) {
	// The motivating defect of re-clustering baselines: removing one edge
	// can reassign many nodes. Here we only check the mechanism runs and
	// produces a valid clustering after the change.
	g := graph.Grid(3, 5)
	before := MaxMin(g, 2)
	g.RemoveEdge(7, 8)
	after := MaxMin(g, 2)
	if len(before) != len(after) {
		t.Fatal("node count changed")
	}
}

func TestGreedyPartitionCoversAndRespectsDiameter(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.ConnectedRandomGeometric(25, 10, 4, rand.New(rand.NewSource(seed)), 100)
		if g == nil {
			t.Skip("no connected instance")
		}
		views := GreedyPartition(g, 3)
		snap := metrics.Snapshot{G: g, Views: views}
		if !snap.Agreement() || !snap.Safety(3) {
			t.Fatalf("seed %d: greedy partition invalid: %v", seed, snap.Groups())
		}
		if len(views) != g.NumNodes() {
			t.Fatalf("seed %d: not all nodes assigned", seed)
		}
	}
}

func TestGreedyPartitionLine(t *testing.T) {
	views := GreedyPartition(graph.Line(9), 2)
	groups := PartitionGroups(views)
	if len(groups) != 3 {
		t.Fatalf("9-line at Dmax=2 should give 3 triples: %v", groups)
	}
}

func TestViewsShape(t *testing.T) {
	head := MaxMin(graph.Line(4), 1)
	views := Views(head)
	for v, vw := range views {
		if !vw[v] {
			t.Fatalf("node %v missing from its own view", v)
		}
	}
}
