package antlist

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ident"
)

// Wire format (little endian):
//
//	u16 number of positions
//	per position: u16 number of entries, then per entry u32 id, u8 mark
//
// The codec exists so the overhead experiments (E11) measure realistic
// message sizes rather than in-memory struct sizes, and so the goroutine
// runtime can exchange byte frames like a real radio would.

var errTruncated = errors.New("antlist: truncated frame")

// AppendBinary appends the wire encoding of the list to dst.
func (l List) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(l)))
	for _, s := range l {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		for _, e := range s {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.ID))
			dst = append(dst, byte(e.Mark))
		}
	}
	return dst
}

// MarshalBinary encodes the list in the wire format.
func (l List) MarshalBinary() ([]byte, error) {
	return l.AppendBinary(nil), nil
}

// EncodedSize returns the wire size in bytes without encoding.
func (l List) EncodedSize() int {
	n := 2
	for _, s := range l {
		n += 2 + 5*len(s)
	}
	return n
}

// DecodeList decodes a list from the front of buf, returning the list and
// the remaining bytes. Sets are re-sorted defensively so a hostile frame
// cannot violate Set invariants.
func DecodeList(buf []byte) (List, []byte, error) {
	if len(buf) < 2 {
		return nil, buf, errTruncated
	}
	np := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if np > 1<<12 {
		return nil, buf, fmt.Errorf("antlist: implausible position count %d", np)
	}
	out := make(List, 0, np)
	for p := 0; p < np; p++ {
		if len(buf) < 2 {
			return nil, buf, errTruncated
		}
		ne := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < 5*ne {
			return nil, buf, errTruncated
		}
		s := make(Set, 0, ne)
		for e := 0; e < ne; e++ {
			id := ident.NodeID(binary.LittleEndian.Uint32(buf))
			mark := ident.Mark(buf[4])
			if mark > ident.MarkDouble {
				return nil, buf, fmt.Errorf("antlist: bad mark %d", mark)
			}
			buf = buf[5:]
			s = s.Add(ident.Entry{ID: id, Mark: mark})
		}
		out = append(out, s)
	}
	return out, buf, nil
}
