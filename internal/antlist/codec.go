package antlist

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ident"
)

// Wire format (little endian):
//
//	u16 number of positions
//	per position: u16 number of entries, then per entry u32 id, u8 mark
//
// The codec exists so the overhead experiments (E11) measure realistic
// message sizes rather than in-memory struct sizes, and so the goroutine
// runtime can exchange byte frames like a real radio would. The frame
// layout is unchanged from the nested representation; the encoder walks
// the flat arena once, and the decoder assembles the arena directly.

var errTruncated = errors.New("antlist: truncated frame")

// AppendBinary appends the wire encoding of the list to dst.
func (l List) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(l.Len()))
	for i := 1; i < len(l.offs); i++ {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(l.offs[i]-l.offs[i-1]))
		for _, e := range l.ents[l.offs[i-1]:l.offs[i]] {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.ID))
			dst = append(dst, byte(e.Mark))
		}
	}
	return dst
}

// MarshalBinary encodes the list in the wire format.
func (l List) MarshalBinary() ([]byte, error) {
	return l.AppendBinary(nil), nil
}

// EncodedSize returns the wire size in bytes without encoding — O(1) on
// the flat form.
func (l List) EncodedSize() int {
	return 2 + 2*l.Len() + 5*len(l.ents)
}

// DecodeList decodes a list from the front of buf, returning the list and
// the remaining bytes. Each position is re-sorted and deduplicated
// defensively (strongest mark wins, matching Set.Add) so a hostile frame
// cannot violate Set invariants.
func DecodeList(buf []byte) (List, []byte, error) {
	if len(buf) < 2 {
		return List{}, buf, errTruncated
	}
	np := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if np > 1<<12 {
		return List{}, buf, fmt.Errorf("antlist: implausible position count %d", np)
	}
	out := List{offs: make([]int32, 1, np+1)}
	for p := 0; p < np; p++ {
		if len(buf) < 2 {
			return List{}, buf, errTruncated
		}
		ne := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < 5*ne {
			return List{}, buf, errTruncated
		}
		start := len(out.ents)
		for e := 0; e < ne; e++ {
			id := ident.NodeID(binary.LittleEndian.Uint32(buf))
			mark := ident.Mark(buf[4])
			if mark > ident.MarkDouble {
				return List{}, buf, fmt.Errorf("antlist: bad mark %d", mark)
			}
			buf = buf[5:]
			out.ents = insertEntry(out.ents, start, ident.Entry{ID: id, Mark: mark})
		}
		out.offs = append(out.offs, int32(len(out.ents)))
	}
	return out, buf, nil
}

// insertEntry inserts e into the position subrange ents[start:], keeping
// it ascending by ID; a duplicate ID keeps the strongest mark (the Set.Add
// semantics the nested decoder applied entry by entry).
func insertEntry(ents []ident.Entry, start int, e ident.Entry) []ident.Entry {
	i := start
	for ; i < len(ents); i++ {
		if ents[i].ID >= e.ID {
			break
		}
	}
	if i < len(ents) && ents[i].ID == e.ID {
		ents[i].Mark = ents[i].Mark.Max(e.Mark)
		return ents
	}
	ents = append(ents, ident.Entry{})
	copy(ents[i+1:], ents[i:])
	ents[i] = e
	return ents
}
