package antlist

import "repro/internal/ident"

// The pre-arena nested representation and its copy-on-write operators,
// retained verbatim as the differential oracle for the flat arena List and
// the Builder. FuzzAntBuilder and the conformance suite replay every fold
// step on a RefList and assert the arena result is identical; nothing here
// is reachable from production paths.

// RefList is the nested slice-of-sets ancestor list the package used
// before the arena rewrite: position i is its own Set slice.
type RefList []Set

// Ref converts the flat list into the nested reference shape (deep copy).
func (l List) Ref() RefList {
	if l.Len() == 0 {
		return nil
	}
	out := make(RefList, l.Len())
	for i := range out {
		out[i] = l.At(i).Clone()
	}
	return out
}

// List converts the nested reference back into the flat arena shape.
func (r RefList) List() List { return FromSets(r...) }

// At returns the set at position i, or nil if out of range.
func (r RefList) At(i int) Set {
	if i < 0 || i >= len(r) {
		return nil
	}
	return r[i]
}

// NodeCount returns the total number of entries across all positions.
func (r RefList) NodeCount() int {
	n := 0
	for _, s := range r {
		n += len(s)
	}
	return n
}

// Normalize is the verbatim pre-arena normalization: each node kept only
// at its smallest position, trailing empty sets trimmed, interior empty
// sets preserved.
func (r RefList) Normalize() RefList {
	if r.NodeCount() <= 32 {
		dirty := false
	scan:
		for i, s := range r {
			for _, e := range s {
				for _, prev := range r[:i] {
					if prev.Has(e.ID) {
						dirty = true
						break scan
					}
				}
			}
		}
		if !dirty {
			return refTrimTail(r)
		}
		out := make(RefList, 0, len(r))
		for _, s := range r {
			kept := out
			out = append(out, s.Filter(func(e ident.Entry) bool {
				for _, prev := range kept {
					if prev.Has(e.ID) {
						return false
					}
				}
				return true
			}))
		}
		return refTrimTail(out)
	}
	out := make(RefList, 0, len(r))
	seen := make(map[ident.NodeID]bool, r.NodeCount())
	for _, s := range r {
		out = append(out, s.Filter(func(e ident.Entry) bool {
			if seen[e.ID] {
				return false
			}
			seen[e.ID] = true
			return true
		}))
	}
	return refTrimTail(out)
}

// refTrimTail drops trailing empty sets, mapping the all-empty list to nil.
func refTrimTail(r RefList) RefList {
	for len(r) > 0 && len(r[len(r)-1]) == 0 {
		r = r[:len(r)-1]
	}
	if len(r) == 0 {
		return nil
	}
	return r
}

// Merge is the verbatim pre-arena ⊕: position-wise union, then Normalize.
func (r RefList) Merge(o RefList) RefList {
	n := len(r)
	if len(o) > n {
		n = len(o)
	}
	out := make(RefList, n)
	for i := 0; i < n; i++ {
		out[i] = r.At(i).Union(o.At(i))
	}
	return out.Normalize()
}

// Ant is the verbatim pre-arena r-operator fold: ant(r, o) = r ⊕ r(o),
// merging with the shift as an index offset.
func (r RefList) Ant(o RefList) RefList {
	n := len(r)
	if len(o)+1 > n {
		n = len(o) + 1
	}
	out := make(RefList, n)
	out[0] = r.At(0)
	for i := 1; i < n; i++ {
		out[i] = r.At(i).Union(o.At(i - 1))
	}
	return out.Normalize()
}

// Truncate is the verbatim pre-arena cut to at most n positions.
func (r RefList) Truncate(n int) RefList {
	if len(r) <= n {
		return r
	}
	out := make(RefList, n)
	copy(out, r[:n])
	return out.Normalize()
}

// Equal reports whether two reference lists are identical.
func (r RefList) Equal(o RefList) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}
