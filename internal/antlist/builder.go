package antlist

import "repro/internal/ident"

// Builder composes ancestor lists inside a recycled arena: the per-compute
// fold (Reset, then one Ant per checked sender) runs entirely in two
// double-buffered entry arenas with no per-operation allocation, and a
// single commit-time copy (List.Publish on the final View) produces the
// immutable list a node stores and broadcasts — which itself degenerates to
// zero copies when the round left the list unchanged. Drivers recycle one
// Builder per node (the engine keeps it on the node's record); a Builder
// must not be used from two goroutines at once.
//
// The merge semantics replicate the nested reference operators (RefList in
// reference.go) bit for bit: position-wise union with the strongest mark
// winning inside a position, every node kept only at its smallest position
// with the mark it has there, interior empty sets preserved, trailing empty
// sets trimmed. FuzzAntBuilder pins the equivalence.
type Builder struct {
	ents []ident.Entry
	offs []int32 // always offs[0] == 0; len == positions+1
	// spare arena the next merge writes into before the buffers swap.
	spareEnts []ident.Entry
	spareOffs []int32
	// round arena for Filter results: cleaned received lists live here for
	// the duration of one fold round; Reset recycles it.
	filtEnts []ident.Entry
	filtOffs []int32
	// seen is the large-merge dedup set (reused across merges): group-sized
	// lists dedup with an allocation-free prefix scan, but a merge past 32
	// entries — dense sweeps, hostile wide frames — switches to the map so
	// the fold stays linear, mirroring Normalize's small/large split.
	seen map[ident.NodeID]bool
}

// Reset makes the builder hold the singleton list (owner) — listv ← (v),
// line 24 of compute(). The round arena (Filter results) is untouched: a
// re-fold within one round may Reset while cleaned lists are still live.
func (b *Builder) Reset(owner ident.Entry) {
	b.ents = append(b.ents[:0], owner)
	b.offs = append(b.offs[:0], 0, 1)
}

// BeginRound is Reset plus recycling of the round arena: every List a
// prior Filter returned is invalidated. Call it exactly once per compute,
// before the round's first Filter.
func (b *Builder) BeginRound(owner ident.Entry) {
	b.Reset(owner)
	b.filtEnts = b.filtEnts[:0]
	b.filtOffs = b.filtOffs[:0]
}

// Filter returns l with only the entries keep accepts, every position kept
// in place (possibly emptied), like List.FilterEntries — but a rejecting
// pass writes into the builder's round arena instead of allocating: the
// result is valid until the builder's next BeginRound, which is exactly
// the lifetime of a cleaned received list inside one compute. When nothing
// is rejected l itself is returned.
func (b *Builder) Filter(l List, keep func(ident.Entry) bool) List {
	if !l.rejectsAny(keep) {
		return l
	}
	se, so := len(b.filtEnts), len(b.filtOffs)
	b.filtOffs = append(b.filtOffs, int32(se))
	b.filtEnts, b.filtOffs = appendFiltered(b.filtEnts, b.filtOffs, l, keep)
	out := List{ents: b.filtEnts[se:len(b.filtEnts):len(b.filtEnts)], offs: b.filtOffs[so:]}
	for i := range out.offs {
		out.offs[i] -= int32(se)
	}
	return out
}

// Load makes the builder hold a copy of l. The argument may be any list;
// builder operations never touch its storage.
func (b *Builder) Load(l List) {
	b.ents = append(b.ents[:0], l.ents...)
	b.offs = append(b.offs[:0], 0)
	for i := 1; i < len(l.offs); i++ {
		b.offs = append(b.offs, l.offs[i])
	}
}

// Ant folds o into the builder at one hop more: b ← b ⊕ r(o), the
// r-operator applied once per (node, checked sender) per compute. o must
// not alias the builder's own storage (a View of this builder).
func (b *Builder) Ant(o List) { b.merge(o, 1) }

// Merge folds o into the builder position-wise: b ← b ⊕ o. Same aliasing
// rule as Ant.
func (b *Builder) Merge(o List) { b.merge(o, 0) }

// merge computes b ⊕ (o shifted by shift positions) into the spare arena
// and swaps the buffers: position i of the result is the union of b's
// position i and o's position i-shift, with each ID kept only at its
// smallest result position (the union's strongest mark at that position),
// and the empty tail trimmed — exactly Union-then-Normalize of the nested
// reference.
func (b *Builder) merge(o List, shift int) {
	bn := len(b.offs) - 1
	if bn < 0 {
		bn = 0
	}
	n := bn
	if o.Len()+shift > n {
		n = o.Len() + shift
	}
	// Dedup strategy: the prefix scan is allocation-free and fastest at
	// group sizes; past 32 total entries the reusable seen-map keeps the
	// merge linear (the IDs of one position walk out strictly ascending,
	// so marking at emission is equivalent to testing earlier positions).
	large := len(b.ents)+o.NodeCount() > 32
	if large {
		if b.seen == nil {
			b.seen = make(map[ident.NodeID]bool, len(b.ents)+o.NodeCount())
		} else {
			clear(b.seen)
		}
	}
	de := b.spareEnts[:0]
	do := append(b.spareOffs[:0], 0)
	for i := 0; i < n; i++ {
		var x, y Set
		if i < bn {
			x = Set(b.ents[b.offs[i]:b.offs[i+1]])
		}
		if j := i - shift; j >= 0 && j < o.Len() {
			y = o.At(j)
		}
		prev := len(de) // entries at strictly earlier result positions
		xi, yi := 0, 0
		for xi < len(x) || yi < len(y) {
			var e ident.Entry
			switch {
			case yi >= len(y) || (xi < len(x) && x[xi].ID < y[yi].ID):
				e = x[xi]
				xi++
			case xi >= len(x) || y[yi].ID < x[xi].ID:
				e = y[yi]
				yi++
			default: // same ID on both sides: strongest mark wins
				e = ident.Entry{ID: x[xi].ID, Mark: x[xi].Mark.Max(y[yi].Mark)}
				xi, yi = xi+1, yi+1
			}
			if large {
				if !b.seen[e.ID] {
					b.seen[e.ID] = true
					de = append(de, e)
				}
			} else if !entriesHave(de[:prev], e.ID) {
				de = append(de, e)
			}
		}
		do = append(do, int32(len(de)))
	}
	for n > 0 && do[n] == do[n-1] {
		n--
	}
	de, do = de[:do[n]], do[:n+1]
	b.ents, b.spareEnts = de, b.ents
	b.offs, b.spareOffs = do, b.offs
}

// entriesHave reports whether id appears among ents.
func entriesHave(ents []ident.Entry, id ident.NodeID) bool {
	for _, e := range ents {
		if e.ID == id {
			return true
		}
	}
	return false
}

// View returns the builder's current content as a zero-copy List view.
// The view shares the builder's arena: it is valid only until the next
// builder operation and must be detached with Publish (or Clone) before
// being stored anywhere that outlives the round.
func (b *Builder) View() List {
	if len(b.offs) <= 1 {
		return List{}
	}
	return List{ents: b.ents, offs: b.offs}
}
