package antlist

import (
	"strings"

	"repro/internal/ident"
)

// List is an ordered list of ancestor sets (a0, a1, ..., ap). Position i
// holds the nodes believed to be at distance i from the owner; a0 is the
// owner singleton. The zero value is the empty list (malformed; real lists
// always have at least a0).
type List []Set

// Singleton returns the one-element list (id), i.e. a freshly reset owner
// list, with the given mark on the entry. The paper writes (u) for a
// single-marked kept sender and (u̿) for a double-marked incompatible one.
func Singleton(e ident.Entry) List { return List{Set{e}} }

// Len returns the number of ancestor sets (s(list) in the paper's footnote:
// number of elements). The last index — the paper's alternative reading of
// s(), used by Prop. 13 — is Len()-1; see Ecc.
func (l List) Len() int { return len(l) }

// Ecc returns the eccentricity encoded by the list: the index of the last
// ancestor set (p for a list (a0..ap)), or -1 for an empty list.
func (l List) Ecc() int { return len(l) - 1 }

// At returns the set at position i (list.i in the paper), or nil if out of
// range.
func (l List) At(i int) Set {
	if i < 0 || i >= len(l) {
		return nil
	}
	return l[i]
}

// Owner returns the node at position 0, or ident.None for malformed lists.
func (l List) Owner() ident.NodeID {
	if len(l) == 0 || len(l[0]) == 0 {
		return ident.None
	}
	return l[0][0].ID
}

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	for i, s := range l {
		out[i] = s.Clone()
	}
	return out
}

// Position returns the smallest position at which id appears and the entry
// there, or (-1, zero) if absent.
func (l List) Position(id ident.NodeID) (int, ident.Entry) {
	for i, s := range l {
		if e, ok := s.Get(id); ok {
			return i, e
		}
	}
	return -1, ident.Entry{}
}

// Has reports whether id appears anywhere in the list, with any mark.
func (l List) Has(id ident.NodeID) bool {
	p, _ := l.Position(id)
	return p >= 0
}

// IDs returns all node IDs in the list, position by position, ascending
// within a position.
func (l List) IDs() []ident.NodeID {
	var out []ident.NodeID
	for _, s := range l {
		out = append(out, s.IDs()...)
	}
	return out
}

// NodeCount returns the total number of entries across all positions.
func (l List) NodeCount() int {
	n := 0
	for _, s := range l {
		n += len(s)
	}
	return n
}

// HasEmptySet reports whether any position holds an empty set (a malformed
// list per the goodList test).
func (l List) HasEmptySet() bool {
	for _, s := range l {
		if len(s) == 0 {
			return true
		}
	}
	return false
}

// DeleteMarkedExcept returns the list with every marked entry removed,
// except marked entries naming keep (the receiver applies this on
// reception: marks are only meaningful between direct neighbors, but a mark
// on the receiver itself is the handshake signal). Positions left empty are
// resolved by Normalize.
func (l List) DeleteMarkedExcept(keep ident.NodeID) List {
	out := make(List, 0, len(l))
	for _, s := range l {
		out = append(out, s.Filter(func(e ident.Entry) bool {
			return !e.Mark.Marked() || e.ID == keep
		}))
	}
	return out.Normalize()
}

// Truncate returns the list cut to at most n positions (keeping a0..a(n-1)),
// then normalized. Used by compute() line 28 to drop too-far ancestors.
func (l List) Truncate(n int) List {
	if len(l) <= n {
		return l
	}
	out := make(List, n)
	copy(out, l[:n])
	return out.Normalize()
}

// Normalize enforces the List invariants:
//   - each node appears only at its smallest position (strongest mark wins
//     at that position, resolved by Set.Union during merges);
//   - trailing empty sets are trimmed.
//
// Intermediate empty sets are kept in place: they can arise from corrupted
// initial states or mark deletion, and removing or truncating them would
// break the associativity of ⊕ (positions are distances; they must not
// shift). The protocol handles them at reception instead — goodList rejects
// any list containing an empty set, exactly as the paper specifies.
func (l List) Normalize() List {
	if l.NodeCount() <= 32 {
		// Small lists — the overwhelmingly common case (a list holds at
		// most one group's worth of nodes) — dedup by scanning the kept
		// prefix positions: quadratic in principle, but allocation-free,
		// where the map-based path pays a map per ⊕. Clean lists (every
		// steady-state fold) return the receiver itself, merely resliced
		// past any empty tail.
		dirty := false
	scan:
		for i, s := range l {
			for _, e := range s {
				for _, prev := range l[:i] {
					if prev.Has(e.ID) {
						dirty = true
						break scan
					}
				}
			}
		}
		if !dirty {
			return trimTail(l)
		}
		out := make(List, 0, len(l))
		for _, s := range l {
			kept := out
			out = append(out, s.Filter(func(e ident.Entry) bool {
				for _, prev := range kept {
					if prev.Has(e.ID) {
						return false
					}
				}
				return true
			}))
		}
		return trimTail(out)
	}
	out := make(List, 0, len(l))
	seen := make(map[ident.NodeID]bool, l.NodeCount())
	for _, s := range l {
		out = append(out, s.Filter(func(e ident.Entry) bool {
			if seen[e.ID] {
				return false
			}
			seen[e.ID] = true
			return true
		}))
	}
	return trimTail(out)
}

// trimTail drops trailing empty sets (by reslicing — the backing array is
// shared, which is safe for immutable lists), mapping the all-empty list
// to nil.
func trimTail(l List) List {
	for len(l) > 0 && len(l[len(l)-1]) == 0 {
		l = l[:len(l)-1]
	}
	if len(l) == 0 {
		return nil
	}
	return l
}

// Merge is the ⊕ operator: position-wise union followed by normalization
// (each node kept only at its smallest position, empty tail trimmed).
func (l List) Merge(o List) List {
	n := len(l)
	if len(o) > n {
		n = len(o)
	}
	out := make(List, n)
	for i := 0; i < n; i++ {
		out[i] = l.At(i).Union(o.At(i))
	}
	return out.Normalize()
}

// Shift is the r endomorphism: prepend an empty set, pushing every ancestor
// one hop farther.
func (l List) Shift() List {
	out := make(List, 0, len(l)+1)
	out = append(out, Set{})
	out = append(out, l...)
	return out
}

// Ant is the r-operator ant(l, o) = l ⊕ r(o): fold a neighbor's list into
// the local one, at one hop more. Equivalent to l.Merge(o.Shift()), but
// merging with the shift as an index offset instead of materializing the
// shifted copy — this runs once per (node, neighbor) per compute.
func (l List) Ant(o List) List {
	n := len(l)
	if len(o)+1 > n {
		n = len(o) + 1
	}
	out := make(List, n)
	out[0] = l.At(0)
	for i := 1; i < n; i++ {
		out[i] = l.At(i).Union(o.At(i - 1))
	}
	return out.Normalize()
}

// Equal reports whether two lists are identical (positions, IDs and marks).
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if !l[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the list as ({n1},{n2,n3'},...).
func (l List) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, s := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	b.WriteByte(')')
	return b.String()
}
