package antlist

import (
	"strings"

	"repro/internal/ident"
)

// List is an ordered list of ancestor sets (a0, a1, ..., ap). Position i
// holds the nodes believed to be at distance i from the owner; a0 is the
// owner singleton. The zero value is the empty list (malformed; real lists
// always have at least a0).
//
// The representation is flat: one contiguous entry arena in position-major
// order plus a set-offset slice (position i is ents[offs[i]:offs[i+1]]).
// Compared to the previous slice-of-sets form this makes every whole-list
// walk one linear scan, lets Truncate and tail-trimming reslice instead of
// copy, and lets the fold run entirely inside a recycled Builder arena with
// a single commit-time copy (see Builder). Lists are immutable once built;
// At returns zero-copy views into the arena. The pre-arena nested form and
// its operators are retained verbatim in reference.go (RefList) as the
// differential oracle the Builder is fuzzed against.
type List struct {
	ents []ident.Entry
	offs []int32 // len 0 (empty list) or Len()+1; offs[0] == 0 always
}

// singletonOffs is the shared offset slice of every one-position list.
// Offset slices are never mutated, so all singletons alias it.
var singletonOffs = []int32{0, 1}

// Singleton returns the one-element list (id), i.e. a freshly reset owner
// list, with the given mark on the entry. The paper writes (u) for a
// single-marked kept sender and (u̿) for a double-marked incompatible one.
func Singleton(e ident.Entry) List {
	return List{ents: []ident.Entry{e}, offs: singletonOffs}
}

// FromSets builds a list from nested position sets (the construction shape
// of tests and workload corruption; sets are copied into a fresh arena).
// No invariant is enforced beyond each Set's own (sorted, unique IDs).
func FromSets(sets ...Set) List {
	if len(sets) == 0 {
		return List{}
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	l := List{
		ents: make([]ident.Entry, 0, total),
		offs: make([]int32, 1, len(sets)+1),
	}
	for _, s := range sets {
		l.ents = append(l.ents, s...)
		l.offs = append(l.offs, int32(len(l.ents)))
	}
	return l
}

// Len returns the number of ancestor sets (s(list) in the paper's footnote:
// number of elements). The last index — the paper's alternative reading of
// s(), used by Prop. 13 — is Len()-1; see Ecc.
func (l List) Len() int {
	if len(l.offs) == 0 {
		return 0
	}
	return len(l.offs) - 1
}

// Ecc returns the eccentricity encoded by the list: the index of the last
// ancestor set (p for a list (a0..ap)), or -1 for an empty list.
func (l List) Ecc() int { return l.Len() - 1 }

// At returns the set at position i (list.i in the paper) as a zero-copy
// read-only view of the arena, or nil if out of range.
func (l List) At(i int) Set {
	if i < 0 || i >= l.Len() {
		return nil
	}
	return Set(l.ents[l.offs[i]:l.offs[i+1]])
}

// Entries returns the whole arena — every entry in position-major order,
// ascending by ID within a position — as a read-only view. Whole-list
// consumers (view extraction, quarantine rebuild, the codec) iterate it
// flat instead of walking positions.
func (l List) Entries() []ident.Entry { return l.ents }

// Owner returns the node at position 0, or ident.None for malformed lists.
func (l List) Owner() ident.NodeID {
	if l.Len() == 0 || l.offs[1] == 0 {
		return ident.None
	}
	return l.ents[0].ID
}

// Clone returns a deep copy of the list, detached from any shared arena.
func (l List) Clone() List {
	if l.Len() == 0 {
		return List{}
	}
	out := List{
		ents: make([]ident.Entry, len(l.ents)),
		offs: make([]int32, len(l.offs)),
	}
	copy(out.ents, l.ents)
	copy(out.offs, l.offs)
	return out
}

// Publish returns an immutable list with the receiver's content: prev
// itself when the content is identical (so unchanged rounds keep sharing
// one allocation), else a fresh deep copy. This is the commit-time copy
// detaching a Builder-backed view before it is stored or broadcast.
func (l List) Publish(prev List) List {
	if l.Equal(prev) {
		return prev
	}
	return l.Clone()
}

// Position returns the smallest position at which id appears and the entry
// there, or (-1, zero) if absent.
func (l List) Position(id ident.NodeID) (int, ident.Entry) {
	for i := 0; i < l.Len(); i++ {
		for _, e := range l.ents[l.offs[i]:l.offs[i+1]] {
			if e.ID == id {
				return i, e
			}
		}
	}
	return -1, ident.Entry{}
}

// Has reports whether id appears anywhere in the list, with any mark.
func (l List) Has(id ident.NodeID) bool {
	for _, e := range l.ents {
		if e.ID == id {
			return true
		}
	}
	return false
}

// IDs returns all node IDs in the list, position by position, ascending
// within a position.
func (l List) IDs() []ident.NodeID {
	if len(l.ents) == 0 {
		return nil
	}
	out := make([]ident.NodeID, len(l.ents))
	for i, e := range l.ents {
		out[i] = e.ID
	}
	return out
}

// NodeCount returns the total number of entries across all positions.
func (l List) NodeCount() int { return len(l.ents) }

// HasEmptySet reports whether any position holds an empty set (a malformed
// list per the goodList test).
func (l List) HasEmptySet() bool {
	for i := 1; i < len(l.offs); i++ {
		if l.offs[i] == l.offs[i-1] {
			return true
		}
	}
	return false
}

// rejectsAny reports whether keep rejects any entry of l — the shared
// fast-path test of the filtering variants.
func (l List) rejectsAny(keep func(ident.Entry) bool) bool {
	for _, e := range l.ents {
		if !keep(e) {
			return true
		}
	}
	return false
}

// appendFiltered appends l's kept entries to ents, positions in place
// (possibly emptied), recording each position's end as an absolute index
// into ents — the one filtering loop behind FilterEntries and
// Builder.Filter.
func appendFiltered(ents []ident.Entry, offs []int32, l List, keep func(ident.Entry) bool) ([]ident.Entry, []int32) {
	for i := 0; i < l.Len(); i++ {
		for _, e := range l.ents[l.offs[i]:l.offs[i+1]] {
			if keep(e) {
				ents = append(ents, e)
			}
		}
		offs = append(offs, int32(len(ents)))
	}
	return ents, offs
}

// FilterEntries returns the list with only the entries keep accepts, every
// position kept in place (possibly emptied). When nothing is rejected the
// receiver itself is returned — the steady state of every per-compute
// cleaning pass is allocation-free. The result is not normalized.
func (l List) FilterEntries(keep func(ident.Entry) bool) List {
	if !l.rejectsAny(keep) {
		return l
	}
	out := List{
		ents: make([]ident.Entry, 0, len(l.ents)-1),
		offs: make([]int32, 1, len(l.offs)),
	}
	out.ents, out.offs = appendFiltered(out.ents, out.offs, l, keep)
	return out
}

// DeleteMarkedExcept returns the list with every marked entry removed,
// except marked entries naming keep (the receiver applies this on
// reception: marks are only meaningful between direct neighbors, but a mark
// on the receiver itself is the handshake signal). Positions left empty are
// resolved by Normalize.
func (l List) DeleteMarkedExcept(keep ident.NodeID) List {
	return l.FilterEntries(func(e ident.Entry) bool {
		return !e.Mark.Marked() || e.ID == keep
	}).Normalize()
}

// Truncate returns the list cut to at most n positions (keeping a0..a(n-1)),
// then normalized. Used by compute() line 28 to drop too-far ancestors.
// The cut is a reslice of the (immutable) arena, not a copy.
func (l List) Truncate(n int) List {
	if l.Len() <= n {
		return l
	}
	if n <= 0 {
		return List{}
	}
	return List{ents: l.ents[:l.offs[n]], offs: l.offs[:n+1]}.Normalize()
}

// prefixHas reports whether id appears before arena offset end.
func (l List) prefixHas(id ident.NodeID, end int32) bool {
	for _, e := range l.ents[:end] {
		if e.ID == id {
			return true
		}
	}
	return false
}

// Normalize enforces the List invariants:
//   - each node appears only at its smallest position (strongest mark wins
//     at that position, resolved by Set.Union during merges);
//   - trailing empty sets are trimmed.
//
// Intermediate empty sets are kept in place: they can arise from corrupted
// initial states or mark deletion, and removing or truncating them would
// break the associativity of ⊕ (positions are distances; they must not
// shift). The protocol handles them at reception instead — goodList rejects
// any list containing an empty set, exactly as the paper specifies.
//
// Clean lists — every steady-state cleaning pass — return the receiver
// itself, merely resliced past any empty tail. Small lists (one group's
// worth of nodes, the overwhelmingly common case) use an allocation-free
// quadratic prefix scan over the flat arena; past 32 entries — decoded
// hostile frames, corrupted initial states — a seen-map pass keeps the
// cost linear, exactly like the pre-arena implementation (RefList).
func (l List) Normalize() List {
	if len(l.ents) > 32 {
		return l.normalizeLarge()
	}
	for i := 1; i < l.Len(); i++ {
		for _, e := range l.ents[l.offs[i]:l.offs[i+1]] {
			if l.prefixHas(e.ID, l.offs[i]) {
				return l.normalizeSlow()
			}
		}
	}
	return trimTail(l)
}

// normalizeSlow rebuilds the list with cross-position duplicates dropped
// (first occurrence kept, with the mark it has there) — the small-list
// path, quadratic but allocation-bounded.
func (l List) normalizeSlow() List {
	out := List{
		ents: make([]ident.Entry, 0, len(l.ents)),
		offs: make([]int32, 1, len(l.offs)),
	}
	for i := 0; i < l.Len(); i++ {
		for _, e := range l.ents[l.offs[i]:l.offs[i+1]] {
			if !out.Has(e.ID) {
				out.ents = append(out.ents, e)
			}
		}
		out.offs = append(out.offs, int32(len(out.ents)))
	}
	return trimTail(out)
}

// normalizeLarge is Normalize for lists past the small-list bound: one
// map pass detects duplicates, a second rebuilds if needed — O(n) where
// the prefix scan would be O(n²) on a hostile 10⁴-entry frame.
func (l List) normalizeLarge() List {
	seen := make(map[ident.NodeID]bool, len(l.ents))
	dirty := false
	for _, e := range l.ents {
		if seen[e.ID] {
			dirty = true
			break
		}
		seen[e.ID] = true
	}
	if !dirty {
		return trimTail(l)
	}
	clear(seen)
	out := List{
		ents: make([]ident.Entry, 0, len(l.ents)),
		offs: make([]int32, 1, len(l.offs)),
	}
	for i := 0; i < l.Len(); i++ {
		for _, e := range l.ents[l.offs[i]:l.offs[i+1]] {
			if !seen[e.ID] {
				seen[e.ID] = true
				out.ents = append(out.ents, e)
			}
		}
		out.offs = append(out.offs, int32(len(out.ents)))
	}
	return trimTail(out)
}

// trimTail drops trailing empty sets (by reslicing — the backing array is
// shared, which is safe for immutable lists), mapping the all-empty list
// to the zero List.
func trimTail(l List) List {
	n := l.Len()
	for n > 0 && l.offs[n] == l.offs[n-1] {
		n--
	}
	if n == 0 {
		return List{}
	}
	return List{ents: l.ents[:l.offs[n]], offs: l.offs[:n+1]}
}

// Merge is the ⊕ operator: position-wise union followed by normalization
// (each node kept only at its smallest position, empty tail trimmed).
// Cold-path convenience over the Builder; the fold uses a recycled Builder
// directly.
func (l List) Merge(o List) List {
	var b Builder
	b.Load(l)
	b.Merge(o)
	return b.View().Clone()
}

// Shift is the r endomorphism: prepend an empty set, pushing every ancestor
// one hop farther. The arena is shared; only the offsets are rebuilt.
func (l List) Shift() List {
	offs := make([]int32, 0, len(l.offs)+1)
	offs = append(offs, 0, 0)
	if l.Len() > 0 {
		offs = append(offs, l.offs[1:]...)
	}
	return List{ents: l.ents, offs: offs}
}

// Ant is the r-operator ant(l, o) = l ⊕ r(o): fold a neighbor's list into
// the local one, at one hop more. Equivalent to l.Merge(o.Shift()), but
// merging with the shift as an index offset instead of materializing the
// shifted copy. Cold-path convenience; the per-compute fold runs on a
// recycled Builder (see Builder.Ant).
func (l List) Ant(o List) List {
	var b Builder
	b.Load(l)
	b.Ant(o)
	return b.View().Clone()
}

// Equal reports whether two lists are identical (positions, IDs and marks).
// Only positions 1..Len are compared — a zero-position list may carry
// offs of length 0 or 1 (the zero List vs a decoded empty frame), and the
// two must compare equal both ways.
func (l List) Equal(o List) bool {
	if l.Len() != o.Len() || len(l.ents) != len(o.ents) {
		return false
	}
	for i := 1; i <= l.Len(); i++ {
		if l.offs[i] != o.offs[i] {
			return false
		}
	}
	for i := range l.ents {
		if l.ents[i] != o.ents[i] {
			return false
		}
	}
	return true
}

// String renders the list as ({n1},{n2,n3'},...).
func (l List) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < l.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.At(i).String())
	}
	b.WriteByte(')')
	return b.String()
}
