package antlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

// mk builds a list from groups of plain IDs: mk([]uint32{4}, []uint32{2,1})
// = ({n4},{n1,n2}).
func mk(layers ...[]uint32) List {
	sets := make([]Set, len(layers))
	for i, layer := range layers {
		s := Set{}
		for _, v := range layer {
			s = s.Add(ident.Plain(ident.NodeID(v)))
		}
		sets[i] = s
	}
	return FromSets(sets...)
}

func TestPaperMergeExample(t *testing.T) {
	// ({d},{b},{a,c}) ⊕ ({c},{a,e},{b}) = ({d,c},{b,a,e}) with
	// a=1 b=2 c=3 d=4 e=5.
	l1 := mk([]uint32{4}, []uint32{2}, []uint32{1, 3})
	l2 := mk([]uint32{3}, []uint32{1, 5}, []uint32{2})
	got := l1.Merge(l2)
	want := mk([]uint32{3, 4}, []uint32{1, 2, 5})
	if !got.Equal(want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
}

func TestPaperShiftExample(t *testing.T) {
	// r({d},{b},{a,c}) = (∅,{d},{b},{a,c})
	l := mk([]uint32{4}, []uint32{2}, []uint32{1, 3})
	got := l.Shift()
	if got.Len() != 4 || len(got.At(0)) != 0 || !got.At(1).Has(4) {
		t.Fatalf("Shift = %v", got)
	}
}

func TestAntBasic(t *testing.T) {
	// v=1 folds neighbor u=2's list ({2},{3}): gets ({1},{2},{3}).
	v := Singleton(ident.Plain(1))
	u := mk([]uint32{2}, []uint32{3})
	got := v.Ant(u)
	want := mk([]uint32{1}, []uint32{2}, []uint32{3})
	if !got.Equal(want) {
		t.Fatalf("Ant = %v, want %v", got, want)
	}
}

func TestAntDedupKeepsSmallestPosition(t *testing.T) {
	// v=1 already knows 3 at distance 1; neighbor 2 reports 3 at distance 1
	// (would land at 2). 3 must stay at position 1 only.
	v := mk([]uint32{1}, []uint32{3})
	u := mk([]uint32{2}, []uint32{3})
	got := v.Ant(u)
	want := mk([]uint32{1}, []uint32{2, 3})
	if !got.Equal(want) {
		t.Fatalf("Ant = %v, want %v", got, want)
	}
}

func TestAntSelfDedup(t *testing.T) {
	// Neighbor reports v itself at distance 1; v stays at position 0.
	v := Singleton(ident.Plain(1))
	u := mk([]uint32{2}, []uint32{1})
	got := v.Ant(u)
	want := mk([]uint32{1}, []uint32{2})
	if !got.Equal(want) {
		t.Fatalf("Ant = %v, want %v", got, want)
	}
}

func TestNormalizeTrimsTrailingEmpty(t *testing.T) {
	l := FromSets(NewSet(ident.Plain(1)), NewSet(ident.Plain(2)), Set{})
	got := l.Normalize()
	if got.Len() != 2 {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestNormalizeKeepsIntermediateEmpty(t *testing.T) {
	// An empty middle layer is kept in place (positions are distances);
	// goodList rejects such lists at reception instead.
	l := FromSets(NewSet(ident.Plain(1)), Set{}, NewSet(ident.Plain(2)))
	got := l.Normalize()
	if got.Len() != 3 || len(got.At(1)) != 0 || !got.At(2).Has(2) {
		t.Fatalf("Normalize = %v", got)
	}
	if !got.HasEmptySet() {
		t.Fatal("empty layer should survive for goodList to reject")
	}
}

func TestNormalizeDedupEmptiesLayerInPlace(t *testing.T) {
	// Layer 1 contains only a node already at layer 0: it empties but stays.
	l := FromSets(NewSet(ident.Plain(1), ident.Plain(2)), NewSet(ident.Plain(2)), NewSet(ident.Plain(3)))
	got := l.Normalize()
	if got.Len() != 3 || len(got.At(1)) != 0 || !got.At(2).Has(3) {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestDeleteMarkedExcept(t *testing.T) {
	l := FromSets(
		NewSet(ident.Plain(9)),
		NewSet(ident.Single(1), ident.Plain(2), ident.Double(3)),
	)
	got := l.DeleteMarkedExcept(1)
	if !got.At(1).Has(1) || !got.At(1).Has(2) || got.At(1).Has(3) {
		t.Fatalf("DeleteMarkedExcept = %v", got)
	}
	got2 := l.DeleteMarkedExcept(7)
	if got2.At(1).Has(1) || got2.At(1).Has(3) || !got2.At(1).Has(2) {
		t.Fatalf("DeleteMarkedExcept(7) = %v", got2)
	}
}

func TestTruncate(t *testing.T) {
	l := mk([]uint32{1}, []uint32{2}, []uint32{3}, []uint32{4})
	got := l.Truncate(2)
	if got.Len() != 2 || got.Has(3) || got.Has(4) {
		t.Fatalf("Truncate = %v", got)
	}
	if got2 := l.Truncate(10); !got2.Equal(l) {
		t.Fatalf("Truncate beyond len changed list: %v", got2)
	}
}

func TestPositionAndOwner(t *testing.T) {
	l := mk([]uint32{7}, []uint32{2, 5}, []uint32{9})
	if l.Owner() != 7 {
		t.Fatalf("Owner = %v", l.Owner())
	}
	if p, _ := l.Position(5); p != 1 {
		t.Fatalf("Position(5) = %d", p)
	}
	if p, _ := l.Position(42); p != -1 {
		t.Fatalf("Position(42) = %d", p)
	}
	if (List{}).Owner() != ident.None {
		t.Fatal("empty list owner should be None")
	}
}

func TestHasEmptySet(t *testing.T) {
	l := FromSets(NewSet(ident.Plain(1)), Set{})
	if !l.HasEmptySet() {
		t.Fatal("HasEmptySet should be true")
	}
	if mk([]uint32{1}).HasEmptySet() {
		t.Fatal("HasEmptySet should be false")
	}
}

func TestNodeCountAndIDs(t *testing.T) {
	l := mk([]uint32{1}, []uint32{2, 3})
	if l.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", l.NodeCount())
	}
	ids := l.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestPublishSharesUnchanged(t *testing.T) {
	var b Builder
	b.Reset(ident.Plain(1))
	b.Ant(mk([]uint32{2}, []uint32{3}))
	prev := b.View().Publish(List{})
	// Same fold again: Publish must hand back prev itself, not a copy.
	b.Reset(ident.Plain(1))
	b.Ant(mk([]uint32{2}, []uint32{3}))
	got := b.View().Publish(prev)
	if &got.ents[0] != &prev.ents[0] {
		t.Fatal("Publish of unchanged content should return prev's storage")
	}
	// Changed fold: fresh storage, detached from the builder arena.
	b.Reset(ident.Plain(1))
	b.Ant(mk([]uint32{4}))
	got2 := b.View().Publish(prev)
	if got2.Equal(prev) {
		t.Fatal("changed fold compared equal")
	}
	b.Reset(ident.Plain(9)) // clobber the arena
	if !got2.Equal(mk([]uint32{1}, []uint32{4})) {
		t.Fatalf("published list aliased the builder arena: %v", got2)
	}
}

func randomSets(r *rand.Rand) []Set {
	depth := 1 + r.Intn(4)
	sets := make([]Set, 0, depth)
	next := uint32(1)
	for i := 0; i < depth; i++ {
		n := 1 + r.Intn(3)
		s := Set{}
		for j := 0; j < n; j++ {
			s = s.Add(ident.Entry{ID: ident.NodeID(next), Mark: ident.Mark(r.Intn(3))})
			next++
		}
		sets = append(sets, s)
	}
	return sets
}

func randomList(r *rand.Rand) List { return FromSets(randomSets(r)...) }

func TestQuickMergeIdempotentCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomList(rr), randomList(rr)
		if !a.Merge(a).Equal(a) {
			return false
		}
		return a.Merge(b).Equal(b.Merge(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomList(rr), randomList(rr), randomList(rr)
		return a.Merge(b).Merge(c).Equal(a.Merge(b.Merge(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAntStrictIdempotency(t *testing.T) {
	// Strict idempotency of the r-operator: ant(l, x) absorbed again is a
	// no-op — ant(ant(l,x), x) == ant(l,x).
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		l, x := randomList(rr), randomList(rr)
		once := l.Ant(x)
		return once.Ant(x).Equal(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		l := randomList(rr).Merge(randomList(rr))
		// No duplicate IDs anywhere; no trailing empty layer.
		seen := map[ident.NodeID]bool{}
		for _, e := range l.Entries() {
			if seen[e.ID] {
				return false
			}
			seen[e.ID] = true
		}
		return l.Len() == 0 || len(l.At(l.Len()-1)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArenaMatchesNestedReference replays random op sequences on the
// Builder and on the retained nested reference and requires identical
// results — the deterministic sibling of FuzzAntBuilder.
func TestQuickArenaMatchesNestedReference(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		var b Builder
		owner := ident.Plain(ident.NodeID(1 + rr.Intn(5)))
		b.Reset(owner)
		ref := RefList{Set{owner}}
		for k := 0; k < 4; k++ {
			o := randomList(rr)
			if rr.Intn(2) == 0 {
				b.Ant(o)
				ref = ref.Ant(o.Ref())
			} else {
				b.Merge(o)
				ref = ref.Merge(o.Ref())
			}
			if !b.View().Equal(ref.List()) {
				return false
			}
		}
		n := rr.Intn(5)
		return b.View().Truncate(n).Equal(ref.Truncate(n).List())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	l := FromSets(
		NewSet(ident.Plain(1)),
		NewSet(ident.Single(2), ident.Plain(3)),
		NewSet(ident.Double(4)),
	)
	buf, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != l.EncodedSize() {
		t.Fatalf("EncodedSize = %d, len = %d", l.EncodedSize(), len(buf))
	}
	got, rest, err := DecodeList(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeList err=%v rest=%d", err, len(rest))
	}
	if !got.Equal(l) {
		t.Fatalf("round trip = %v, want %v", got, l)
	}
}

func TestCodecRejectsTruncatedAndBadMark(t *testing.T) {
	l := mk([]uint32{1}, []uint32{2})
	buf, _ := l.MarshalBinary()
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeList(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] = 7 // mark byte of last entry
	if _, _, err := DecodeList(bad); err == nil {
		t.Fatal("bad mark accepted")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		l := randomList(rr)
		buf, _ := l.MarshalBinary()
		got, rest, err := DecodeList(buf)
		return err == nil && len(rest) == 0 && got.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualZeroPositionForms(t *testing.T) {
	// A decoded zero-position frame carries offs=[0]; the zero List has no
	// offs at all. The two must compare equal in both directions (the
	// receiver-side iteration must not index the other's missing slot).
	decoded, rest, err := DecodeList([]byte{0, 0})
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if decoded.Len() != 0 {
		t.Fatalf("decoded = %v", decoded)
	}
	if !decoded.Equal(List{}) {
		t.Fatal("decoded empty != zero List")
	}
	if !(List{}).Equal(decoded) {
		t.Fatal("zero List != decoded empty")
	}
	if decoded.Equal(Singleton(ident.Plain(1))) || Singleton(ident.Plain(1)).Equal(decoded) {
		t.Fatal("empty compared equal to a singleton")
	}
}

func TestNormalizeLargeMatchesReference(t *testing.T) {
	// Past the 32-entry small-list bound Normalize takes the seen-map
	// path; it must match the nested reference bit for bit, clean and
	// dirty, and the clean case must return the receiver's storage.
	var sets []Set
	next := uint32(1)
	for p := 0; p < 12; p++ {
		s := Set{}
		for j := 0; j < 5; j++ {
			s = s.Add(ident.Entry{ID: ident.NodeID(next), Mark: ident.Mark(next % 3)})
			next++
		}
		sets = append(sets, s)
	}
	clean := FromSets(sets...)
	if got := clean.Normalize(); !got.Equal(clean.Ref().Normalize().List()) {
		t.Fatalf("clean large list: %v", got)
	}
	if got := clean.Normalize(); &got.ents[0] != &clean.ents[0] {
		t.Fatal("clean large Normalize copied the arena")
	}
	// Duplicate a swath of early IDs into late positions.
	dirtySets := append([]Set(nil), sets...)
	dirtySets = append(dirtySets, sets[0], sets[3])
	dirty := FromSets(dirtySets...)
	if got, want := dirty.Normalize(), dirty.Ref().Normalize().List(); !got.Equal(want) {
		t.Fatalf("dirty large list: %v vs %v", got, want)
	}
}
