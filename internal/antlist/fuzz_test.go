package antlist

import (
	"testing"

	"repro/internal/ident"
)

// FuzzAntBuilder drives the arena Builder and the retained nested
// reference (RefList) through the same byte-derived op sequence — Reset,
// Ant, Merge, Load, Truncate, Normalize on adversarial lists with marks,
// duplicate IDs across positions and empty interior sets — and requires
// the flat result to match the nested one after every step. This is the
// oracle pinning the fold rewrite: any divergence in dedup order, mark
// resolution or tail trimming fails here before it can perturb a protocol
// trace.
func FuzzAntBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0x11, 2, 0x22, 0x31, 0xFF, 3, 0x11})
	f.Add([]byte{7, 0x41, 0x42, 0x43, 0, 0x81, 0x82, 5, 0x91})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// decodeList consumes bytes as (id, mark) pairs grouped into
		// positions: the low nibble is the ID (0 ends the position, two
		// zero bytes end the list), the high crumbs pick the mark. IDs may
		// repeat across positions; positions may be empty.
		decodeList := func() List {
			var sets []Set
			for len(sets) < 6 {
				s := Set{}
				for {
					b := next()
					if b&0x0f == 0 {
						break
					}
					s = s.Add(ident.Entry{
						ID:   ident.NodeID(b & 0x0f),
						Mark: ident.Mark((b >> 4) % 3),
					})
				}
				sets = append(sets, s)
				if len(data) == 0 || data[0] == 0 {
					next()
					break
				}
			}
			return FromSets(sets...)
		}

		var b Builder
		owner := ident.Plain(ident.NodeID(1 + next()%9))
		b.Reset(owner)
		ref := RefList{Set{owner}}
		check := func(op string) {
			got, want := b.View(), ref.List()
			if !got.Equal(want) {
				t.Fatalf("%s diverged:\narena %v\nref   %v", op, got, want)
			}
			// The committed copy must be detached and identical.
			pub := got.Publish(List{})
			if !pub.Equal(want) {
				t.Fatalf("%s publish diverged: %v vs %v", op, pub, want)
			}
		}
		check("reset")
		for steps := 0; steps < 8 && len(data) > 0; steps++ {
			op := next() % 5
			switch op {
			case 0, 1:
				o := decodeList()
				b.Ant(o)
				ref = ref.Ant(o.Ref())
				check("ant")
			case 2:
				o := decodeList()
				b.Merge(o)
				ref = ref.Merge(o.Ref())
				check("merge")
			case 3:
				n := int(next() % 7)
				trunc := b.View().Truncate(n)
				refTrunc := ref.Truncate(n)
				if !trunc.Equal(refTrunc.List()) {
					t.Fatalf("truncate(%d) diverged: %v vs %v", n, trunc, refTrunc.List())
				}
				b.Load(trunc)
				ref = refTrunc
				check("load")
			case 4:
				o := decodeList()
				if !o.Normalize().Equal(o.Ref().Normalize().List()) {
					t.Fatalf("normalize diverged for %v", o)
				}
			}
		}
		// Structural invariants of the final arena list.
		v := b.View()
		for i := 0; i < v.Len(); i++ {
			s := v.At(i)
			for j := 1; j < len(s); j++ {
				if s[j-1].ID >= s[j].ID {
					t.Fatalf("position %d not strictly ascending: %v", i, v)
				}
			}
		}
		if v.Len() > 0 && len(v.At(v.Len()-1)) == 0 {
			t.Fatalf("trailing empty set survived: %v", v)
		}
	})
}
