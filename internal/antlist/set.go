// Package antlist implements ordered lists of ancestor sets and the
// strictly idempotent r-operator "ant" of Ducourthial et al.
//
// A List is (a0, a1, ..., ap) where ai is the set of nodes at distance i
// from the list's owner (a0 = {owner}) and p is the distance of the
// farthest known ancestor. Lists are combined with
//
//	ant(l1, l2) = l1 ⊕ r(l2)
//
// where r prepends an empty set (shifting every ancestor one hop farther)
// and ⊕ merges position-wise while keeping each node only at its smallest
// position. Iterated from the neighbors' lists, ant computes exact BFS
// layers, which is the self-stabilizing static task the protocol builds on.
package antlist

import (
	"sort"

	"repro/internal/ident"
)

// Set is one ancestor set: entries sorted by NodeID, each ID at most once.
// The zero value is an empty set.
type Set []ident.Entry

// NewSet builds a set from entries, deduplicating IDs (strongest mark wins)
// and sorting by ID.
func NewSet(entries ...ident.Entry) Set {
	var s Set
	for _, e := range entries {
		s = s.Add(e)
	}
	return s
}

// Add returns the set with e inserted. If e.ID is already present the
// strongest mark wins. The receiver is not modified.
func (s Set) Add(e ident.Entry) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= e.ID })
	if i < len(s) && s[i].ID == e.ID {
		out := make(Set, len(s))
		copy(out, s)
		out[i].Mark = out[i].Mark.Max(e.Mark)
		return out
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, e)
	out = append(out, s[i:]...)
	return out
}

// Has reports whether id is present (with any mark).
func (s Set) Has(id ident.NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= id })
	return i < len(s) && s[i].ID == id
}

// Get returns the entry for id and whether it is present.
func (s Set) Get(id ident.NodeID) (ident.Entry, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= id })
	if i < len(s) && s[i].ID == id {
		return s[i], true
	}
	return ident.Entry{}, false
}

// Remove returns the set without id. The receiver is not modified.
func (s Set) Remove(id ident.NodeID) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= id })
	if i >= len(s) || s[i].ID != id {
		return s
	}
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Union merges two sets; when both contain an ID the strongest mark wins.
// One-sided unions return the non-empty side unchanged — sets are
// immutable, so the sharing is safe, and it keeps the ⊕ fold from cloning
// the longer list's every level on each merge.
func (s Set) Union(o Set) Set {
	if len(s) == 0 {
		return o
	}
	if len(o) == 0 {
		return s
	}
	out := make(Set, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i].ID < o[j].ID:
			out = append(out, s[i])
			i++
		case s[i].ID > o[j].ID:
			out = append(out, o[j])
			j++
		default:
			out = append(out, ident.Entry{ID: s[i].ID, Mark: s[i].Mark.Max(o[j].Mark)})
			i, j = i+1, j+1
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// SubsetIDs reports whether every ID in s appears in o (marks ignored).
func (s Set) SubsetIDs(o Set) bool {
	i, j := 0, 0
	for i < len(s) {
		for j < len(o) && o[j].ID < s[i].ID {
			j++
		}
		if j >= len(o) || o[j].ID != s[i].ID {
			return false
		}
		i++
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// IDs returns the node IDs of the set in ascending order.
func (s Set) IDs() []ident.NodeID {
	out := make([]ident.NodeID, len(s))
	for i, e := range s {
		out[i] = e.ID
	}
	return out
}

// Filter returns the entries satisfying keep, preserving order. When
// nothing is rejected the receiver itself is returned (sets are
// immutable, so sharing is safe); this makes the no-op case — the steady
// state of every per-compute cleaning pass — allocation-free.
func (s Set) Filter(keep func(ident.Entry) bool) Set {
	i := 0
	for ; i < len(s); i++ {
		if !keep(s[i]) {
			break
		}
	}
	if i == len(s) {
		return s
	}
	out := make(Set, i, len(s)-1)
	copy(out, s[:i])
	for i++; i < len(s); i++ {
		if keep(s[i]) {
			out = append(out, s[i])
		}
	}
	return out
}

// Equal reports whether two sets hold the same entries (IDs and marks).
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the set as {n1, n2', n3”}.
func (s Set) String() string {
	out := "{"
	for i, e := range s {
		if i > 0 {
			out += ","
		}
		out += e.String()
	}
	return out + "}"
}
