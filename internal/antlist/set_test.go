package antlist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func id(n uint32) ident.NodeID { return ident.NodeID(n) }

func TestSetAddKeepsSortedUnique(t *testing.T) {
	s := NewSet(ident.Plain(3), ident.Plain(1), ident.Plain(2), ident.Plain(1))
	got := s.IDs()
	want := []ident.NodeID{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
}

func TestSetAddStrongestMarkWins(t *testing.T) {
	s := NewSet(ident.Plain(1))
	s = s.Add(ident.Double(1))
	s = s.Add(ident.Single(1))
	e, ok := s.Get(1)
	if !ok || e.Mark != ident.MarkDouble {
		t.Fatalf("Get(1) = %v, %v; want double mark", e, ok)
	}
}

func TestSetAddDoesNotMutateReceiver(t *testing.T) {
	s := NewSet(ident.Plain(1), ident.Plain(3))
	before := s.String()
	_ = s.Add(ident.Plain(2))
	_ = s.Remove(1)
	if s.String() != before {
		t.Fatalf("receiver mutated: %s -> %s", before, s.String())
	}
}

func TestSetHasGetRemove(t *testing.T) {
	s := NewSet(ident.Plain(5), ident.Single(7))
	if !s.Has(5) || !s.Has(7) || s.Has(6) {
		t.Fatalf("Has wrong: %v", s)
	}
	if e, ok := s.Get(7); !ok || e.Mark != ident.MarkSingle {
		t.Fatalf("Get(7) = %v, %v", e, ok)
	}
	s2 := s.Remove(5)
	if s2.Has(5) || !s2.Has(7) {
		t.Fatalf("Remove(5) wrong: %v", s2)
	}
	if got := s.Remove(99); !got.Equal(s) {
		t.Fatalf("Remove of absent id changed set: %v", got)
	}
}

func TestSetUnionMergesMarks(t *testing.T) {
	a := NewSet(ident.Plain(1), ident.Single(2))
	b := NewSet(ident.Double(2), ident.Plain(3))
	u := a.Union(b)
	want := NewSet(ident.Plain(1), ident.Double(2), ident.Plain(3))
	if !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}
}

func TestSetUnionEmpty(t *testing.T) {
	a := NewSet(ident.Plain(1))
	if !a.Union(nil).Equal(a) || !Set(nil).Union(a).Equal(a) {
		t.Fatal("union with empty should be identity")
	}
	if got := Set(nil).Union(nil); len(got) != 0 {
		t.Fatalf("empty union empty = %v", got)
	}
}

func TestSetSubsetIDs(t *testing.T) {
	a := NewSet(ident.Plain(1), ident.Plain(3))
	b := NewSet(ident.Single(1), ident.Plain(2), ident.Double(3))
	if !a.SubsetIDs(b) {
		t.Fatal("a should be subset of b (marks ignored)")
	}
	if b.SubsetIDs(a) {
		t.Fatal("b is not a subset of a")
	}
	if !Set(nil).SubsetIDs(a) {
		t.Fatal("empty set is subset of anything")
	}
}

func TestSetFilter(t *testing.T) {
	s := NewSet(ident.Plain(1), ident.Single(2), ident.Double(3))
	got := s.Filter(func(e ident.Entry) bool { return !e.Mark.Marked() })
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(ident.Plain(1), ident.Single(2), ident.Double(3))
	if got := s.String(); got != "{n1,n2',n3''}" {
		t.Fatalf("String = %q", got)
	}
}

func randomSet(r *rand.Rand, maxID uint32) Set {
	n := r.Intn(6)
	s := Set{}
	for i := 0; i < n; i++ {
		s = s.Add(ident.Entry{ID: id(1 + r.Uint32()%maxID), Mark: ident.Mark(r.Intn(3))})
	}
	return s
}

func TestQuickSetUnionCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 8), randomSet(rr, 8)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetUnionAssociativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(rr, 8), randomSet(rr, 8), randomSet(rr, 8)
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSortedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := randomSet(rr, 20).Union(randomSet(rr, 20))
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
