// Package core implements the GRP distributed protocol of Ducourthial,
// Khalfallah and Petit: the per-node state machine that maintains the
// ordered list of ancestor sets with the ant r-operator, detects symmetric
// links with the mark triple handshake, bounds group diameters by Dmax with
// the compatibility test of Proposition 13, resolves merge overshoots with
// priorities, and delays view admission with the quarantine.
//
// The package is pure protocol logic: it has no clocks, no radio and no
// goroutines. A driver (internal/sim for deterministic experiments,
// internal/runtime for a live goroutine deployment) calls
//
//	Receive(msg)    upon message reception,
//	Compute()       at every Tc timer expiration (also resets the message
//	                buffer, which is how neighbor departures are detected),
//	BuildMessage()  at every Ts timer expiration (Ts ≤ Tc).
//
// The output used by applications is View: the composition of the node's
// group.
//
// The compute phase is allocation-light: the round's checked senders live
// in slice-backed scratch reused across computes (never maps rebuilt per
// round), priority learning reads the flat Message.Recs records instead
// of per-message maps, the view/quarantine maps are double-buffered, and
// the ancestor-list fold composes inside a recycled antlist.Builder arena
// — a single commit-time copy publishes the immutable list, and a round
// that leaves the list unchanged publishes nothing at all (see ComputeIn).
// What may be retained across rounds is exactly the state whose content
// the protocol defines (list, view, quarantine, priority caches) plus
// scratch that is fully overwritten before use; everything reachable from
// an emitted Message is immutable. The pre-rewrite map-based paths are
// retained in reference.go as a differential oracle (see SelfCheck).
package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/antlist"
	"repro/internal/ident"
	"repro/internal/priority"
)

// CompatMode selects the variant of the compatibility test (experiment
// E10 ablates the optimized test against the naive one).
type CompatMode int

const (
	// CompatFull is Proposition 13's test with the ∃i shortcut
	// optimization (and the AND-corrected bound; see DESIGN.md §3).
	CompatFull CompatMode = iota
	// CompatNaiveSum accepts a merge only when the plain length sum fits:
	// s(listv) + s(listu) ≤ Dmax + 1 (the i = 0 case only).
	CompatNaiveSum
)

// Config carries the protocol parameters, fixed for a whole execution.
type Config struct {
	// Dmax is the application-chosen bound on group diameters.
	Dmax int
	// Compat selects the compatibility test variant. Default CompatFull.
	Compat CompatMode
	// DisableQuarantine turns the quarantine mechanism off (ablation E12);
	// newcomers then enter views immediately.
	DisableQuarantine bool
	// BoundaryHold is how many computes a double-mark rejection of a
	// neighbor is remembered (the boundary memory): during the hold the
	// neighbor's lists are auto-rejected, which lets views consolidate
	// behind a freshly cut boundary instead of re-flooding and re-cutting
	// every other round. 0 selects the default Dmax+2; negative disables
	// the memory entirely (ablation).
	BoundaryHold int
	// RejectDebounce is how many consecutive computes a neighbor must be
	// found incompatible (by the compatibility test or a lost too-far
	// contest) before the hard double-mark cut: transient detour-inflated
	// positions during convergence would otherwise fire false contests
	// whose cuts create more detours. During the debounce the sender's
	// content is ignored gently (single mark). 0 selects the default 2;
	// negative cuts immediately (ablation).
	RejectDebounce int
}

// rejectDebounce resolves the configured debounce threshold.
func (c Config) rejectDebounce() int {
	switch {
	case c.RejectDebounce < 0:
		return 1
	case c.RejectDebounce == 0:
		return 2
	default:
		return c.RejectDebounce
	}
}

// boundaryHold resolves the configured hold duration.
func (c Config) boundaryHold() uint64 {
	switch {
	case c.BoundaryHold < 0:
		return 0
	case c.BoundaryHold == 0:
		return uint64(c.Dmax) + 2
	default:
		return uint64(c.BoundaryHold)
	}
}

// heardRec is one quarantine value heard this round (slice-backed scratch
// replacing the per-round `heard` map).
type heardRec struct {
	id ident.NodeID
	q  int32
}

// quarEntry is one tracked quarantine (the slice-backed replacement for
// the quarantine map; ascending by id).
type quarEntry struct {
	id ident.NodeID
	q  int32
}

// prec is one cached priority (the slice-backed replacement for the
// node/group priority cache maps; ascending by id).
type prec struct {
	id ident.NodeID
	p  priority.P
}

// precGet looks id up in an ascending prec slice.
func precGet(s []prec, id ident.NodeID) (priority.P, bool) {
	for i := range s {
		switch {
		case s[i].id == id:
			return s[i].p, true
		case s[i].id > id:
			return priority.P{}, false
		}
	}
	return priority.P{}, false
}

// rejEntry is one boundary-memory record (sender → expiry compute).
type rejEntry struct {
	id  ident.NodeID
	exp uint64
}

// streakEntry is one incompatibility-observation counter. A zero count is
// equivalent to an absent entry.
type streakEntry struct {
	id ident.NodeID
	c  int32
}

// quarGet looks id up in an ascending quarEntry slice.
func quarGet(quar []quarEntry, id ident.NodeID) (int, bool) {
	for i := range quar {
		switch {
		case quar[i].id == id:
			return int(quar[i].q), true
		case quar[i].id > id:
			return 0, false
		}
	}
	return 0, false
}

// containsID reports membership in an ascending ID slice.
func containsID(ids []ident.NodeID, id ident.NodeID) bool {
	for _, v := range ids {
		switch {
		case v == id:
			return true
		case v > id:
			return false
		}
	}
	return false
}

// Node is the GRP state of one network node.
type Node struct {
	cfg Config
	id  ident.NodeID

	// Tracer, when non-nil, receives a line per protocol decision
	// (list checks, rejections, contests). Intended for debugging and
	// the simulator's verbose mode; nil costs nothing (call sites are
	// guarded, so the variadic arguments are never even boxed).
	Tracer func(format string, args ...interface{})

	// SelfCheck, when true, cross-validates every Compute and
	// BuildMessage against the retained pre-rewrite reference
	// implementations (reference.go) and panics on any divergence. The
	// conformance suite runs whole engines with it on; production paths
	// pay a single branch.
	SelfCheck bool

	list antlist.List
	// view and quar are group-sized and consulted constantly, so they are
	// sorted slices, not maps: a linear probe with early exit beats a map
	// at these sizes, and the per-compute rebuild is an append-and-sort
	// into a recycled buffer instead of a map churn.
	view     []ident.NodeID // ascending
	quar     []quarEntry    // ascending by id
	prios    []prec         // node-priority cache, ascending by id
	gprs     []prec         // group-priority cache, ascending by id
	self     priority.P
	group    priority.P
	msgSet   []Message     // one buffered message per sender (last wins)
	rejected []rejEntry    // boundary memory
	streak   []streakEntry // consecutive incompatibility observations
	synced   bool          // one-time clock sync at first contact done

	computes uint64
	version  uint64 // bumped on every observable-state change (Compute, LoadState)
	viewVer  uint64 // bumped only when the view *content* changes

	// Round-quietness bookkeeping for activity-driven drivers (see
	// RoundQuietness): quiet classifies the last executed Compute,
	// streakMoved records whether that round changed any incompatibility
	// streak, rejectedMoved whether it dropped (expiry) or added/refreshed
	// (rejection) a boundary-memory entry — the two pieces of
	// decision-relevant state the version deliberately does not cover.
	quiet         Quietness
	streakMoved   bool
	rejectedMoved bool
	// overflowed records whether the last executed Compute entered the
	// too-far contest (the fold exceeded Dmax+1 positions). The contest
	// reads priorities of nodes the receiver does not track, which the
	// masked inbox digest deliberately leaves unhashed — so fixpoint
	// proofs must never be taken from such a round (see InboxReadDigest).
	overflowed bool

	// Per-node scratch reused across computes (never escapes): the view
	// and quarantine double-buffers swap with the live slices each round;
	// incsBuf holds the round's checked senders in preference order (the
	// former workBuf map, now slice-backed: the map rebuild and the
	// per-sender box were the protocol's top allocation sites at scale);
	// heardBuf collects the round's inherited quarantines; bld is the
	// fallback fold arena for drivers that call Compute instead of
	// handing in their own recycled builder via ComputeIn.
	viewSpare  []ident.NodeID
	quarSpare  []quarEntry
	priosSpare []prec
	gprsSpare  []prec
	incsBuf    []incoming
	heardBuf   []heardRec
	readSetBuf []ident.NodeID // InboxReadDigest's sorted tracked-ID scratch
	orderBuf   []int32        // InboxReadDigest's preference-sort scratch
	bld        antlist.Builder
}

// prioOf looks u up in the node-priority cache.
func (n *Node) prioOf(u ident.NodeID) (priority.P, bool) { return precGet(n.prios, u) }

// gprOf looks u up in the group-priority cache.
func (n *Node) gprOf(u ident.NodeID) (priority.P, bool) { return precGet(n.gprs, u) }

// rejectedUntil returns the boundary-memory expiry for u (0 = none).
func (n *Node) rejectedUntil(u ident.NodeID) uint64 {
	for i := range n.rejected {
		if n.rejected[i].id == u {
			return n.rejected[i].exp
		}
	}
	return 0
}

// streakOf returns u's incompatibility streak.
func (n *Node) streakOf(u ident.NodeID) int {
	for i := range n.streak {
		if n.streak[i].id == u {
			return int(n.streak[i].c)
		}
	}
	return 0
}

// setStreak records u's streak (0 clears; an absent entry counts as 0).
func (n *Node) setStreak(u ident.NodeID, c int) {
	for i := range n.streak {
		if n.streak[i].id == u {
			if n.streak[i].c != int32(c) {
				n.streak[i].c = int32(c)
				n.streakMoved = true
			}
			return
		}
	}
	if c != 0 {
		n.streak = append(n.streak, streakEntry{id: u, c: int32(c)})
		n.streakMoved = true
	}
}

// inView reports whether u is in the node's current view.
func (n *Node) inView(u ident.NodeID) bool { return containsID(n.view, u) }

// NewNode returns a freshly booted node: alone in its list and view, clock
// zero.
func NewNode(id ident.NodeID, cfg Config) *Node {
	if cfg.Dmax < 1 {
		panic(fmt.Sprintf("core: Dmax must be ≥ 1, got %d", cfg.Dmax))
	}
	n := &Node{
		cfg:   cfg,
		id:    id,
		list:  antlist.Singleton(ident.Plain(id)),
		view:  []ident.NodeID{id},
		quar:  []quarEntry{{id: id}},
		prios: []prec{{id: id, p: priority.New(id)}},
		gprs:  []prec{{id: id, p: priority.New(id)}},
		self:  priority.New(id),

		viewVer: 1,
	}
	n.group = n.self
	return n
}

// ID returns the node's identity.
func (n *Node) ID() ident.NodeID { return n.id }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// List returns the current ordered list of ancestor sets (a copy).
func (n *Node) List() antlist.List { return n.list.Clone() }

// View returns the group composition as seen by this node, ascending.
// This is the protocol's output, the view_v the applications use.
func (n *Node) View() []ident.NodeID {
	return slices.Clone(n.view)
}

// ViewSet returns the view as a set (a copy).
func (n *Node) ViewSet() map[ident.NodeID]bool {
	out := make(map[ident.NodeID]bool, len(n.view))
	for _, v := range n.view {
		out[v] = true
	}
	return out
}

// InView reports whether u is currently in the node's view.
func (n *Node) InView(u ident.NodeID) bool { return n.inView(u) }

// Priority returns the node's own priority.
func (n *Node) Priority() priority.P { return n.self }

// GroupPriority returns the node's group priority (min over its view).
func (n *Node) GroupPriority() priority.P { return n.group }

// Computes returns the number of Compute calls so far (the protocol's
// logical time on this node).
func (n *Node) Computes() uint64 { return n.computes }

// Version returns a counter that increases whenever the node's observable
// protocol state changed (a Compute that moved any of list, view,
// quarantine, priority caches, self or group priority; every LoadState).
// A Compute that reproduced the state exactly — the steady state of a
// settled group — leaves it untouched. The outputs of BuildMessage, View
// and List are pure functions of the state at a given version, which is
// what lets a driver cache the broadcast across computes instead of
// re-assembling it on every send timer.
func (n *Node) Version() uint64 { return n.version }

// ViewVersion returns a counter that increases only when the view's
// *content* changes (a Compute that leaves the view identical does not
// move it, unlike Version). Incremental observers (obs.GroupTracker) key
// their per-node view caches on it: at steady state every compute is a
// single counter comparison instead of a view re-extraction.
func (n *Node) ViewVersion() uint64 { return n.viewVer }

// Quietness classifies an executed Compute round for activity-driven
// drivers: whether feeding the node the exact same inbox again would
// provably reproduce the round without running it.
type Quietness uint8

const (
	// QuietNone: the round moved decision-relevant state; the next round
	// must run in full.
	QuietNone Quietness = iota

	// QuietFixpoint: the round reproduced the node's state bit for bit
	// (version unmoved), changed no incompatibility streak, and left the
	// boundary memory empty. Compute is then a pure deterministic function
	// of (state, inbox): an identical inbox yields the identical no-op,
	// which a driver may replay with SkipQuietRound.
	QuietFixpoint

	// QuietLonely: an isolated singleton's steady state — empty inbox,
	// and the only moving state is the self-clock tick chain (self, its
	// priority-cache entry, and the group priority trailing it). The next
	// empty-inbox round is the same closed-form step, which a driver may
	// replay with SkipLonelyRound.
	QuietLonely

	// QuietHeld: a stable group boundary — the round reproduced the state
	// bit for bit (version unmoved, streaks untouched) *except* that the
	// boundary memory is non-empty: one or more neighbors are being
	// auto-rejected under an active hold. Such a round consults the round
	// counter only through the hold-expiry filter, so with an identical
	// inbox it replays itself verbatim until the first hold expires: a
	// driver may replay it with SkipHeldRound while
	// Computes() < HoldHorizon(). The classification additionally
	// requires that the round neither dropped nor added/refreshed any
	// boundary-memory entry (an expiry or a fresh rejection makes the
	// next round re-probe, which is not a replay).
	QuietHeld
)

// RoundQuietness reports the classification of the last executed Compute
// (QuietNone until the first Compute, and after LoadState). It is the
// engine-facing "round would be a no-op" predicate: together with an
// unchanged Version and an inbox identical to the one that round
// consumed, it licenses skipping the next Compute entirely.
func (n *Node) RoundQuietness() Quietness { return n.quiet }

// SkipQuietRound applies the exact effect a Compute would have on a
// QuietFixpoint state receiving the same inbox as the round that
// classified it: the logical round counter advances and the buffered
// messages are consumed; nothing observable moves (Version included).
// The caller owns the precondition — RoundQuietness() == QuietFixpoint,
// no intervening LoadState, and a buffered message set identical (same
// senders, same message contents) to the classified round's. The engine
// establishes it by tracking per-sender message versions between compute
// boundaries.
func (n *Node) SkipQuietRound() {
	n.computes++
	clear(n.msgSet)
	n.msgSet = n.msgSet[:0]
}

// SkipLonelyRound applies the exact effect a Compute would have on a
// QuietLonely state with an empty inbox: the round counter advances, the
// isolation clock ticks (self, its pinned priority-cache entry, and the
// group priority that equals it), and Version moves — the tick is
// observable in the node's broadcast. Everything else (list, view,
// quarantine, group-priority cache, ViewVersion) provably reproduces
// itself and stays untouched. The caller owns the precondition, exactly
// as for SkipQuietRound.
func (n *Node) SkipLonelyRound() {
	n.computes++
	clear(n.msgSet)
	n.msgSet = n.msgSet[:0]
	n.self = n.self.Tick()
	n.storeSelfPrio()
	n.group = n.self
	n.version++
}

// StateDigest returns a 64-bit content hash of every decision-relevant
// input Compute consults, with exactly two deliberate exclusions that
// the fixpoint-memo machinery (the caller, DESIGN.md §2i) accounts for
// by other means:
//
//   - the compute counter, which enters Compute only through the
//     boundary-memory expiry filter (a no-op while
//     Computes() < HoldHorizon(), the gate the caller must hold) and
//     through reject's hold jitter (unreachable in a round that rejects
//     nothing — and a round proven quiet rejected nothing);
//   - the boundary-memory expiry *values*, which by the same two
//     arguments are never read by such a round; the rejected *set* (the
//     ids) is hashed, since it selects the auto-reject branch per sender.
//
// Everything else is folded in: the list (entries, marks, and position
// structure), the view, the quarantine table, both priority caches, the
// node's own and group priority, the incompatibility streaks, and the
// one-time clock-sync flag. Two states with equal digests at the same
// configuration therefore drive Compute through identical branches for
// an identical inbox — even when their version counters differ, which is
// what lets a driver recognize a state that *cycled back* to content it
// has already proven a fixpoint of. Streaks and boundary entries are
// hashed in their stored order; a content-equal state reached through a
// different observation order may hash differently, which costs a memo
// hit but never soundness. The digest is recomputed from scratch on each
// call (O(state)); callers cache it per version.
func (n *Node) StateDigest() uint64 {
	h := digSeed
	mix := func(v uint64) { h = digMix(h, v) }
	mix(uint64(n.list.Len()))
	for i := 0; i < n.list.Len(); i++ {
		set := n.list.At(i)
		mix(uint64(len(set)))
		for _, e := range set {
			mix(uint64(e.ID))
			mix(uint64(e.Mark))
		}
	}
	mix(uint64(len(n.view)))
	for _, v := range n.view {
		mix(uint64(v))
	}
	mix(uint64(len(n.quar)))
	for i := range n.quar {
		mix(uint64(n.quar[i].id))
		mix(uint64(uint32(n.quar[i].q)))
	}
	mix(uint64(len(n.prios)))
	for i := range n.prios {
		mix(uint64(n.prios[i].id))
		mix(n.prios[i].p.Clock)
		mix(uint64(n.prios[i].p.ID))
	}
	mix(uint64(len(n.gprs)))
	for i := range n.gprs {
		mix(uint64(n.gprs[i].id))
		mix(n.gprs[i].p.Clock)
		mix(uint64(n.gprs[i].p.ID))
	}
	mix(n.self.Clock)
	mix(uint64(n.self.ID))
	mix(n.group.Clock)
	mix(uint64(n.group.ID))
	mix(uint64(len(n.streak)))
	for i := range n.streak {
		mix(uint64(n.streak[i].id))
		mix(uint64(uint32(n.streak[i].c)))
	}
	mix(uint64(len(n.rejected)))
	for i := range n.rejected {
		mix(uint64(n.rejected[i].id))
	}
	if n.synced {
		mix(1)
	} else {
		mix(0)
	}
	return h
}

// RoundOverflowed reports whether the last executed Compute entered the
// too-far contest (its fold exceeded Dmax+1 positions). Such a round
// read priorities of nodes outside the receiver's tracked set, which
// InboxReadDigest does not hash — fixpoint proofs must not be taken
// from it.
func (n *Node) RoundOverflowed() bool { return n.overflowed }

// InboxReadDigest returns a 64-bit content hash of the buffered message
// set restricted to what the next Compute can read given this node's
// current state: each message's MaskedDigest under the node's
// tracked-ID set (its own list's nodes, marks included, plus itself —
// the exact set learnPriorities resolves records for), folded in
// Compute's own deterministic preference order. Folding in that order
// is what pins the one message-level field the projection leaves
// unhashed — the advertised group priority, whose only reader is the
// preference sort itself: two inboxes that sort identically and match
// record for record under the mask drive Compute through identical
// branches, no matter how the unread priority values differ.
//
// Messages from senders held in the boundary memory are digested with
// their list dropped (MaskedDigest's dropList): the rejected-until
// branch discards a held sender's list unread, so its content cannot
// influence the round. Membership in n.rejected is the right predicate
// on both memo paths — a proof round kept every entry live (an eviction
// sets rejectedMoved, killing quietness) and a replay runs under the
// HoldHorizon gate, which keeps them live again.
//
// Together with StateDigest this is the fixpoint-memo key (DESIGN.md
// §2i). The masking is sound because equal state digests pin the list
// and the boundary-memory IDs, and therefore pin the mask itself: a
// proof stored as (StateDigest, InboxReadDigest) can only be consulted
// from a state whose tracked set and held-sender set — and hence whose
// read projection and sort keys — are identical, and two inboxes with
// equal projections drive that Compute through identical branches to an
// identical result, except when the round enters the too-far contest,
// which RoundOverflowed exposes so callers refuse the proof.
func (n *Node) InboxReadDigest() uint64 {
	ids := n.readSetBuf[:0]
	for _, e := range n.list.Entries() {
		ids = append(ids, e.ID)
	}
	ids = append(ids, n.id)
	slices.Sort(ids)
	n.readSetBuf = ids
	inRead := func(u ident.NodeID) bool {
		_, ok := slices.BinarySearch(ids, u)
		return ok
	}
	ord := n.orderBuf[:0]
	for i := range n.msgSet {
		ord = append(ord, int32(i))
	}
	slices.SortFunc(ord, func(x, y int32) int {
		return n.prefCmp(&n.msgSet[x], &n.msgSet[y])
	})
	n.orderBuf = ord
	h := digMix(digSeed, uint64(len(n.msgSet)))
	for _, i := range ord {
		m := &n.msgSet[i]
		h = digMix(h, m.MaskedDigest(n.id, inRead, n.rejectedUntil(m.From) != 0))
	}
	return h
}

// HoldHorizon returns the earliest boundary-memory expiry (0 when the
// memory is empty): the last round counter value for which a QuietHeld
// round still replays itself. A driver may call SkipHeldRound while
// Computes() < HoldHorizon(); the round that would reach the horizon
// drops the expired hold and must run in full.
func (n *Node) HoldHorizon() uint64 {
	var min uint64
	for i := range n.rejected {
		if min == 0 || n.rejected[i].exp < min {
			min = n.rejected[i].exp
		}
	}
	return min
}

// SkipHeldRound applies the exact effect a Compute would have on a
// QuietHeld state receiving the same inbox as the round that classified
// it: the round counter advances and the buffered messages are consumed;
// the boundary memory, every streak, and the whole versioned state
// provably reproduce themselves. The caller owns the precondition —
// RoundQuietness() == QuietHeld, an identical inbox, no intervening
// LoadState, and Computes() < HoldHorizon() so the replayed round's
// expiry filter keeps the memory untouched.
func (n *Node) SkipHeldRound() {
	n.computes++
	clear(n.msgSet)
	n.msgSet = n.msgSet[:0]
}

// AppendView appends the view members in ascending order to buf and
// returns the extended slice — the allocation-free variant of View.
func (n *Node) AppendView(buf []ident.NodeID) []ident.NodeID {
	return append(buf, n.view...)
}

// QuarantineOf returns the remaining quarantine of u, or -1 when u is not
// tracked (absent or marked in the list).
func (n *Node) QuarantineOf(u ident.NodeID) int {
	if q, ok := quarGet(n.quar, u); ok {
		return q
	}
	return -1
}

// LoadState overwrites the node's protocol state. It exists for the
// self-stabilization experiments, which must start executions from
// arbitrary (corrupted) configurations; the protocol never calls it.
// Nil maps leave the corresponding field at a consistent default derived
// from the list.
func (n *Node) LoadState(list antlist.List, view map[ident.NodeID]bool, quar map[ident.NodeID]int, self priority.P) {
	n.list = list.Clone()
	n.view = n.view[:0]
	if view != nil {
		for k, in := range view {
			if in {
				n.view = append(n.view, k)
			}
		}
		slices.Sort(n.view)
	} else {
		n.view = append(n.view, n.id)
	}
	n.quar = n.quar[:0]
	if quar != nil {
		for k, v := range quar {
			n.quar = append(n.quar, quarEntry{id: k, q: int32(v)})
		}
	} else {
		n.quar = append(n.quar, quarEntry{id: n.id})
		for _, u := range list.IDs() {
			if u != n.id {
				n.quar = append(n.quar, quarEntry{id: u})
			}
		}
	}
	slices.SortFunc(n.quar, func(a, b quarEntry) int { return cmp.Compare(a.id, b.id) })
	n.quar = slices.CompactFunc(n.quar, func(a, b quarEntry) bool { return a.id == b.id })
	n.self = self
	n.prios = append(n.prios[:0], prec{id: n.id, p: self})
	n.gprs = append(n.gprs[:0], prec{id: n.id, p: self})
	n.group = self
	n.rejected = n.rejected[:0]
	n.streak = n.streak[:0]
	n.synced = true
	n.version++
	n.viewVer++
	n.quiet = QuietNone // an injected state invalidates any skip license
	n.streakMoved = false
	n.rejectedMoved = false
}

// PoisonBoundary force-installs a boundary-memory entry against u, as if
// the node had double-marked u, holding for the next holdComputes compute
// rounds. Like LoadState it exists only for the self-stabilization fault
// experiments (the "arbitrary initial state" premise extends to the
// boundary memory, which LoadState clears): a poisoned entry makes the
// node auto-reject a genuine neighbor until the hold expires, the exact
// corruption the expiry filter must recover from. The state version moves
// and any quiet-skip license is revoked, so drivers re-run the node in
// full.
func (n *Node) PoisonBoundary(u ident.NodeID, holdComputes uint64) {
	if u == n.id || holdComputes == 0 {
		return
	}
	exp := n.computes + holdComputes
	found := false
	for i := range n.rejected {
		if n.rejected[i].id == u {
			n.rejected[i].exp = exp
			found = true
			break
		}
	}
	if !found {
		n.rejected = append(n.rejected, rejEntry{id: u, exp: exp})
	}
	n.version++
	n.quiet = QuietNone
}

// BoundaryHolds returns the number of live boundary-memory entries —
// observability for the fault experiments that poison them.
func (n *Node) BoundaryHolds() int { return len(n.rejected) }

// viewEqual reports whether two ascending view slices have identical
// membership.
func viewEqual(a, b []ident.NodeID) bool { return slices.Equal(a, b) }

// Receive stores a neighbor's message. Only the last message per sender is
// kept (one-message channel); self-messages are ignored. The buffer is a
// small slice scanned linearly — sender counts are node degrees, where
// the scan beats the map the seed used.
func (n *Node) Receive(m Message) { n.ReceiveRef(&m) }

// ReceiveRef is Receive without the by-value argument copy: the message
// is only copied into the buffer on store. Hot delivery paths (the
// engine delivers a few hundred thousand receptions per tick, each from
// a long-lived cached broadcast) call this directly.
func (n *Node) ReceiveRef(m *Message) {
	if m.From == n.id || m.From == ident.None {
		return
	}
	for i := range n.msgSet {
		if n.msgSet[i].From == m.From {
			n.msgSet[i] = *m
			return
		}
	}
	n.msgSet = append(n.msgSet, *m)
}

// PendingMessages returns how many distinct senders are buffered (used by
// drivers and tests).
func (n *Node) PendingMessages() int { return len(n.msgSet) }

// BuildMessage assembles the broadcast for the Ts timer: the current list
// with the priorities of every node in it and the group priority. The
// result is immutable and a pure function of the node's state (see
// Version), so drivers may cache and share it between computes. The list
// is shared, not cloned: the node never mutates a list in place (every
// Compute rebuilds it), so the broadcast stays valid for as long as any
// receiver holds it.
func (n *Node) BuildMessage() Message {
	recs := make([]PrioRec, 0, n.list.NodeCount()+1)
	selfSeen := false
	for i := 0; i < n.list.Len(); i++ {
		for _, e := range n.list.At(i) {
			u := e.ID
			r := PrioRec{
				ID: u, Mark: e.Mark, Pos: int16(i), Quar: -1,
				HasPrio: true, HasGroupPrio: true,
			}
			if u == n.id {
				selfSeen = true
				r.Prio, r.GroupPrio = n.self, n.group
			} else {
				if p, ok := n.prioOf(u); ok {
					r.Prio = p
				} else {
					r.Prio = priority.Infinite
				}
				switch {
				case n.inView(u):
					r.GroupPrio = n.group
				default:
					if g, ok := n.gprOf(u); ok {
						r.GroupPrio = g
					} else {
						r.GroupPrio = r.Prio
					}
				}
			}
			if q, ok := quarGet(n.quar, u); ok && q > 0 {
				r.Quar = int16(q)
			}
			recs = append(recs, r)
		}
	}
	if !selfSeen {
		recs = append(recs, PrioRec{
			ID: n.id, Pos: -1, Quar: -1,
			HasPrio: true, HasGroupPrio: true,
			Prio: n.self, GroupPrio: n.group,
		})
	}
	sortRecs(recs)
	m := Message{
		From:      n.id,
		List:      n.list,
		Recs:      recs,
		GroupPrio: n.group,
	}
	if n.SelfCheck {
		n.checkRefMessage(m)
	}
	return m
}

// incoming is one checked entry of the message set during a computation.
type incoming struct {
	list antlist.List
	msg  Message
}

// prefCmp is Compute's stable preference order over received messages:
// view members first (their lists are never subject to the compatibility
// test), then senders by their advertised group priority (oldest first),
// then by ID. InboxReadDigest folds the buffer in exactly this order —
// that shared comparator is what lets the masked digest leave the
// message-level group priority unhashed (see Message.MaskedDigest), so
// the two must never diverge.
func (n *Node) prefCmp(x, y *Message) int {
	a, b := x.From, y.From
	av, bv := n.inView(a), n.inView(b)
	if av != bv {
		if av {
			return -1
		}
		return 1
	}
	if x.GroupPrio != y.GroupPrio {
		if x.GroupPrio.Less(y.GroupPrio) {
			return -1
		}
		return 1
	}
	if a < b {
		return -1
	}
	return 1
}

// Compute runs procedure compute() of §4.3 and then resets the message
// buffer (line 5 of the main algorithm), folding in the node's own arena
// builder. Drivers that recycle a builder per node record (the engine)
// call ComputeIn instead.
func (n *Node) Compute() { n.ComputeIn(nil) }

// ComputeIn is Compute with the fold arena supplied by the caller: the
// whole ⊕ fold composes inside b (reset here; its previous content is
// irrelevant), and only the commit at the end copies the result out — a
// round that reproduces the current list byte for byte keeps the existing
// allocation and, when nothing else observable moved either, leaves the
// node's Version untouched so drivers keep their cached broadcast. A nil
// builder uses the node's own.
func (n *Node) ComputeIn(b *antlist.Builder) {
	if b == nil {
		b = &n.bld
	}
	n.computes++
	dmax := n.cfg.Dmax
	oldSelf, oldGroup := n.self, n.group
	emptyInbox := len(n.msgSet) == 0
	n.streakMoved = false
	n.rejectedMoved = false
	n.overflowed = false

	// Check order is a stable preference order, not plain ID order: view
	// members first (their lists are never subject to the compatibility
	// test), then senders by their advertised group priority (oldest
	// first), then by ID. The first compatible content a node folds is
	// what it commits to for the round, so this order makes every
	// uncommitted node side with the *oldest* adjacent group — the same
	// greedy accretion the maximality proof (Prop. 11) reasons about —
	// instead of an arbitrary choice that can flip between rounds and
	// keep the network in metastable partitions. The fold itself (⊕) is
	// order-independent.
	incs := n.incsBuf[:0]
	for i := range n.msgSet {
		incs = append(incs, incoming{msg: n.msgSet[i]})
	}
	slices.SortFunc(incs, func(x, y incoming) int {
		return n.prefCmp(&x.msg, &y.msg)
	})
	// Expire boundary memory (in-place filter; empty at steady state of an
	// interior node, stable under an active hold at a group boundary).
	if len(n.rejected) > 0 {
		was := len(n.rejected)
		kept := n.rejected[:0]
		for _, r := range n.rejected {
			if n.computes <= r.exp {
				kept = append(kept, r)
			}
		}
		n.rejected = kept
		if len(kept) != was {
			n.rejectedMoved = true
		}
	}

	// Lines 1–9 fused with 10–13: check the received lists in
	// deterministic sender order while building the fold incrementally.
	// Each compatibility test sees the partial fold, so content already
	// committed from earlier senders is protected against later
	// incompatible senders — this is what lets a lone node bridging two
	// far-apart groups side with one of them instead of absorbing both
	// and being punished by each in turn. The partial fold lives in the
	// recycled builder arena; b.View() is a zero-copy read of it.
	b.BeginRound(ident.Plain(n.id))
	for i := range incs {
		msg := &incs[i].msg
		u := msg.From
		lu := n.cleanReceived(b, msg.List)
		switch {
		case n.rejectedUntil(u) != 0:
			// Boundary memory: the sender was recently rejected as
			// incompatible; hold the boundary while views consolidate.
			lu = antlist.Singleton(ident.Double(u))
			if n.Tracer != nil {
				n.trace("hold %v until c%d", u, n.rejectedUntil(u))
			}
		case !n.goodList(u, lu):
			// Line 4: the list is ignored but the sender is kept
			// (single mark: asymmetric / unconfirmed link). Not evidence
			// of incompatibility: the streak is left alone.
			lu = antlist.Singleton(ident.Single(u))
			if n.Tracer != nil {
				n.trace("notgood %v: %v", u, msg.List)
			}
		case !n.inView(u):
			qsafe, ok := n.safePrefix(u, b.View(), lu)
			if !ok || qsafe < foreignDepth(n, lu) {
				// Line 7: u is denoted as an incompatible neighbor
				// (after the debounce; see escalate).
				if n.Tracer != nil {
					n.trace("incompat %v: cleaned=%v partial=%v list=%v", u, lu, b.View(), n.list)
				}
				lu = n.escalate(u)
			} else {
				n.setStreak(u, 0)
			}
		default:
			n.setStreak(u, 0)
		}
		incs[i].list = lu
		b.Ant(lu)
	}

	// Lines 10–13: the fold of the checked lists (built above). newList
	// stays a view of the builder arena until the commit below.
	newList := holeTruncate(b.View())

	// Lines 14–29: removal of incoming lists containing too-far nodes.
	if newList.Len() > dmax+1 {
		n.overflowed = true
		for _, w := range newList.At(dmax + 1) {
			if w.Mark.Marked() {
				continue // marks never travel that far; defensive
			}
			if n.farNodeHasPriority(w.ID, incs) {
				for i := range incs {
					if pos, _ := incs[i].list.Position(w.ID); pos == dmax {
						// Line 19: the neighbor that provided w is
						// ignored (after the debounce; see escalate).
						u := incs[i].msg.From
						incs[i].list = n.escalate(u)
						if n.Tracer != nil {
							n.trace("contest lost to %v: drop provider %v (streak %d)", w.ID, u, n.streakOf(u))
						}
					}
				}
			} else if n.Tracer != nil {
				n.trace("contest won against %v: truncate", w.ID)
			}
		}
		newList = n.fold(b, incs)
		// Line 28: remaining too-far nodes did not have the priority.
		newList = newList.Truncate(dmax + 1)
	}

	// Learn priorities for the nodes we now track.
	var refPrios, refGprs map[ident.NodeID]priority.P
	if n.SelfCheck {
		refPrios, refGprs = precMap(n.prios), precMap(n.gprs)
	}
	n.learnPriorities(newList, incs)
	if n.SelfCheck {
		n.checkRefLearnPriorities(newList, incs, refPrios, refGprs)
	}

	// Line 30: update quarantines. The quarantine clock of a node starts
	// when it first appears *plain* (marked entries are not propagated, so
	// the group learns about the newcomer only from then on).
	if !n.cfg.DisableQuarantine {
		// The smallest remaining quarantine heard per node this round
		// (inheritance; see the Quar record), plus the reverse direction:
		// when a sender's message says *our* remaining quarantine is k,
		// the join completes in k rounds — so our own countdown for the
		// sender's already-admitted members (entries it lists without a
		// quarantine) syncs to the same k, and both sides' views flip in
		// the same round. The fold is a min, so the slice-backed scratch
		// (empty at steady state) replays the former map bit for bit.
		heard := n.heardBuf[:0]
		for i := range incs {
			msg := &incs[i].msg
			selfQ := int32(-1)
			for _, r := range msg.Recs {
				if r.Quar >= 0 {
					heard = heardMin(heard, r.ID, int32(r.Quar))
					if r.ID == n.id && selfQ < 0 {
						selfQ = int32(r.Quar)
					}
				}
			}
			if selfQ >= 0 {
				for _, r := range msg.Recs {
					if r.Pos < 0 || r.Mark.Marked() || r.ID == n.id || r.Quar >= 0 {
						continue
					}
					heard = heardMin(heard, r.ID, selfQ)
				}
			}
		}
		n.heardBuf = heard
		// The new quarantine slice is appended in list order (each node
		// appears once in a normalized fold), the self entry forced to 0,
		// then sorted — same content the former map rebuild produced.
		nq := n.quarSpare[:0]
		selfAt := -1
		for _, e := range newList.Entries() {
			if e.Mark.Marked() {
				continue
			}
			q, known := quarGet(n.quar, e.ID)
			if !known {
				q = dmax
			} else if q > 0 {
				q--
			}
			// The heard value was sampled before the peer's own
			// decrement this round; inherit h-1 so both countdowns
			// hit zero in the same round.
			if h, ok := heardGet(heard, e.ID); ok && int(h)-1 < q {
				q = int(h) - 1
				if q < 0 {
					q = 0
				}
			}
			if e.ID == n.id {
				selfAt = len(nq)
			}
			nq = append(nq, quarEntry{id: e.ID, q: int32(q)})
		}
		if selfAt >= 0 {
			nq[selfAt].q = 0
		} else {
			nq = append(nq, quarEntry{id: n.id})
		}
		slices.SortFunc(nq, func(a, b quarEntry) int { return cmp.Compare(a.id, b.id) })
		n.quarSpare = n.quar
		n.quar = nq
	} else {
		nq := n.quarSpare[:0]
		self := false
		for _, e := range newList.Entries() {
			if e.ID == n.id {
				self = true
			}
			nq = append(nq, quarEntry{id: e.ID})
		}
		if !self {
			nq = append(nq, quarEntry{id: n.id})
		}
		slices.SortFunc(nq, func(a, b quarEntry) int { return cmp.Compare(a.id, b.id) })
		nq = slices.CompactFunc(nq, func(a, b quarEntry) bool { return a.id == b.id })
		n.quarSpare = n.quar
		n.quar = nq
	}

	// Line 31: the view is the plain-marked nodes with null quarantine.
	nv := n.viewSpare[:0]
	for _, e := range newList.Entries() {
		if !e.Mark.Marked() && e.ID != n.id {
			if q, _ := quarGet(n.quar, e.ID); q == 0 {
				nv = append(nv, e.ID)
			}
		}
	}
	nv = append(nv, n.id)
	slices.Sort(nv)

	// Line 32: priorities increase only while the node is not in a group.
	// "Not in a group" is read as *hearing nobody*: the clock ages while
	// the node is truly isolated and freezes from its first contact with
	// other nodes (with a one-time Lamport jump past every clock heard, so
	// a late arrival ranks below the nodes already there). The paper
	// freezes only on view membership; freezing already on contact is
	// required for the contests to terminate — a clock that keeps growing
	// during merge negotiation is seen by the far endpoint lagged by up to
	// Dmax relay hops, so two negotiating lone nodes each observe the
	// other as older, both retreat, and the race re-runs forever. Frozen
	// clocks relay without skew and keep every contest's outcome
	// consistent at both ends. The join-order property the paper wants
	// ("the last entered nodes have less priority") is preserved: a
	// member's frozen clock records when it arrived.
	if len(nv) <= 1 {
		switch {
		case len(incs) == 0:
			n.self = n.self.Tick()
		case !n.synced:
			base := n.self.Clock
			for i := range incs {
				for _, r := range incs[i].msg.Recs {
					if r.HasPrio && !r.Prio.IsInfinite() && r.Prio.Clock > base {
						base = r.Prio.Clock
					}
				}
			}
			n.self = priority.P{Clock: base + 1, ID: n.id}
			n.synced = true
		}
	}
	n.storeSelfPrio()

	// Commit: publish the fold out of the builder arena. A round that
	// reproduced the current list keeps the existing allocation (the
	// steady state of every settled group — the commit-time copy happens
	// only when the list actually moved).
	listChanged := !newList.Equal(n.list)
	if listChanged {
		n.list = newList.Clone()
	}
	viewChanged := !viewEqual(nv, n.view)
	if viewChanged {
		n.viewVer++
	}
	n.viewSpare = n.view
	n.view = nv

	// Group priority: the smallest priority of the view's members.
	gp := n.self
	for _, u := range nv {
		if p, ok := n.prioOf(u); ok {
			gp = gp.Min(p)
		}
	}
	n.group = gp

	// Line 5 of the main algorithm: reset msgSet to detect departures.
	// The buffers are truncated with their elements zeroed, so retired
	// broadcasts become collectable while the capacity is kept.
	clear(n.msgSet)
	n.msgSet = n.msgSet[:0]
	clear(incs)
	n.incsBuf = incs[:0]

	// Version moves only when the observable state did: every output of
	// BuildMessage, View and List is a pure function of (list, view,
	// quarantine, priority caches, self, group), so an unchanged round —
	// the steady state — leaves the version alone and drivers keep serving
	// their cached broadcast without re-assembling it. The double-buffer
	// spares still hold the pre-round content, which makes the change
	// checks plain slice compares.
	quarSame := slices.Equal(n.quar, n.quarSpare)
	gprsSame := slices.Equal(n.gprs, n.gprsSpare)
	versionMoved := listChanged || viewChanged || n.self != oldSelf || n.group != oldGroup ||
		!quarSame || !slices.Equal(n.prios, n.priosSpare) || !gprsSame
	if versionMoved {
		n.version++
	}

	// Round-quietness classification, the engine-facing "this round would
	// be a no-op" predicate. A fixpoint round left every input Compute
	// consults untouched — version-covered state, the incompatibility
	// streaks, and the boundary memory (whose emptiness also keeps the
	// round counter out of play: expiry and rejection jitter are its only
	// consumers) — so with an identical inbox the whole function replays
	// itself. A lonely round is the isolated-singleton variant: the inbox
	// was empty and the only motion is the closed-form isolation-clock
	// chain self → prios[self] → group, which SkipLonelyRound reproduces.
	// A held round is the stable-boundary variant: the memory is non-empty
	// but this round neither expired nor renewed any entry, so the counter
	// enters only through the expiry comparisons — the replay stays exact
	// until the earliest expiry (HoldHorizon), which the driver enforces.
	n.quiet = QuietNone
	if !n.streakMoved {
		switch {
		case len(n.rejected) > 0:
			if !versionMoved && !n.rejectedMoved {
				n.quiet = QuietHeld
			}
		case !versionMoved:
			n.quiet = QuietFixpoint
		case emptyInbox && !listChanged && !viewChanged && quarSame && gprsSame &&
			n.self == oldSelf.Tick() && n.group == n.self:
			n.quiet = QuietLonely
		}
	}
}

// storeSelfPrio pins the node's own entry in the priority cache.
func (n *Node) storeSelfPrio() {
	for i := range n.prios {
		if n.prios[i].id == n.id {
			n.prios[i].p = n.self
			return
		}
	}
	n.prios = append(n.prios, prec{id: n.id, p: n.self})
	slices.SortFunc(n.prios, func(a, b prec) int { return cmp.Compare(a.id, b.id) })
}

// heardMin folds (id → min q) into the heard scratch.
func heardMin(heard []heardRec, id ident.NodeID, q int32) []heardRec {
	for i := range heard {
		if heard[i].id == id {
			if q < heard[i].q {
				heard[i].q = q
			}
			return heard
		}
	}
	return append(heard, heardRec{id: id, q: q})
}

// heardGet looks id up in the heard scratch.
func heardGet(heard []heardRec, id ident.NodeID) (int32, bool) {
	for i := range heard {
		if heard[i].id == id {
			return heard[i].q, true
		}
	}
	return 0, false
}

// precMap explodes a priority-cache slice into map shape (SelfCheck
// pre-state snapshots and the reference oracle).
func precMap(s []prec) map[ident.NodeID]priority.P {
	out := make(map[ident.NodeID]priority.P, len(s))
	for _, e := range s {
		out[e.id] = e.p
	}
	return out
}

// escalate records one incompatibility observation against sender u and
// returns the replacement for its list: a gentle single-mark singleton
// while the observation streak is below the debounce threshold (transient
// detour-inflated positions during convergence fire false contests; a
// soft ignore does not reset the neighbor's handshake), and the hard
// double-mark cut once the incompatibility persists.
func (n *Node) escalate(u ident.NodeID) antlist.List {
	c := n.streakOf(u) + 1
	if c < n.cfg.rejectDebounce() {
		n.setStreak(u, c)
		return antlist.Singleton(ident.Single(u))
	}
	n.setStreak(u, 0)
	n.reject(u)
	return antlist.Singleton(ident.Double(u))
}

// foreignDepth returns the deepest position in lu holding a plain entry
// that is neither this node nor one of its view members — the q of the
// compatibility bound.
func foreignDepth(n *Node, lu antlist.List) int {
	q := 0
	for i := 0; i < lu.Len(); i++ {
		for _, e := range lu.At(i) {
			if !e.Mark.Marked() && e.ID != n.id && !n.inView(e.ID) {
				q = i
				break
			}
		}
	}
	return q
}

// trace emits a debugging line when a Tracer is installed. Hot-path call
// sites guard on Tracer != nil themselves so the variadic arguments are
// not boxed on the (overwhelmingly common) disabled path.
func (n *Node) trace(format string, args ...interface{}) {
	if n.Tracer != nil {
		n.Tracer(format, args...)
	}
}

// reject records a double-mark decision against sender u in the boundary
// memory. The hold duration is the configured base plus a deterministic
// jitter derived from (node, neighbor, episode): with a uniform hold,
// every boundary in a symmetric region expires in lockstep, all frontier
// nodes re-probe in the same round, their lists bloat with content from
// several sides at once, everyone re-rejects, and the network cycles
// periodically without ever converging. Staggered expiries let one merge
// consolidate before the next probe arrives.
func (n *Node) reject(u ident.NodeID) {
	hold := n.cfg.boundaryHold()
	if hold == 0 {
		return
	}
	n.rejectedMoved = true
	h := uint64(14695981039346656037)
	for _, x := range [...]uint64{uint64(n.id), uint64(u), n.computes} {
		h = (h ^ x) * 1099511628211
	}
	exp := n.computes + hold + h%(hold+1)
	for i := range n.rejected {
		if n.rejected[i].id == u {
			n.rejected[i].exp = exp
			return
		}
	}
	n.rejected = append(n.rejected, rejEntry{id: u, exp: exp})
}

// cleanReceived applies line 2: delete marked nodes, except a
// *single-marked* self entry — that is the handshake signal ("v or v̄ in
// list.1" makes the list good). A double-marked self entry is a rejection
// by the sender and is deleted too, so that the good-list test fails and
// the rejection is symmetric (Proposition 3's reading: after line 2 the
// double-marked node no longer appears in the list it received).
func (n *Node) cleanReceived(b *antlist.Builder, l antlist.List) antlist.List {
	// Fast path inside Filter: interior nodes of a settled group receive
	// all-plain lists, where the deletion pass keeps everything — and a
	// sender's list is already normalized, so the whole call is the
	// identity. A rejecting pass writes into the builder's round arena
	// (the cleaned list lives exactly one compute), so even boundary
	// traffic cleans without allocating.
	id := n.id
	return b.Filter(l, func(e ident.Entry) bool {
		return !e.Mark.Marked() || (e.ID == id && e.Mark == ident.MarkSingle)
	}).Normalize()
}

// goodList is the test of §4.3: the receiver (plain or single-marked)
// appears among the sender's distance-1 ancestors, the list is not longer
// than Dmax+1, contains no empty set, and is owned by the sender.
func (n *Node) goodList(from ident.NodeID, l antlist.List) bool {
	if l.Len() < 2 || l.Len() > n.cfg.Dmax+1 {
		return false
	}
	if l.Owner() != from || len(l.At(0)) != 1 {
		return false
	}
	if l.HasEmptySet() {
		return false
	}
	return l.At(1).Has(n.id)
}

// safePrefix evaluates the compatibleList test of Proposition 13 and
// returns the deepest prefix of the sender's list that can be folded
// without endangering the content this node must protect. It returns
// (qsafe, true) when at least the sender itself fits (fold positions
// 0..qsafe of its list), and (0, false) when even that would break the
// bound — the genuine incompatibility that cuts a boundary.
//
// Returning a prefix instead of a boolean is how the test stays both
// safe and optimistic (see DESIGN.md §3): the paper's own Function is
// deliberately loose (an OR of two bounds), which admits merges that
// overshoot and must be repaired by contests; a strict bound alone
// instead vetoes legal merges whose members are pairwise close through
// edges the list representation cannot see (a clique under small Dmax
// stalls forever). Folding the provably safe prefix takes the safe part
// now; genuinely close tail nodes arrive later through closer paths.
//
// The protected content p combines two scans:
//   - the deepest current view member in our previous list (the
//     established group);
//   - the deepest plain entry of this computation's partial fold that is
//     absent from the sender's own list (candidates committed from other
//     sides this round — without protecting those, a lone node bridging
//     two far groups absorbs both and is punished by each in turn).
//
// Marked entries and the sender's own echoed content are not ours to
// protect. Only content at depth k ≥ 1 is protected: an overshoot landing
// at the evaluating node itself resolves locally through the too-far
// contest (winner truncates, loser double-marks the cross-border sender),
// which is how concurrent merge races are arbitrated by priorities.
//
// For protected content at depth k, a foreign node at depth l is
// reachable via the border edge (k+1+l hops) or via a witness level i all
// of whose plain entries neighbor the sender (|k-i|+1+l hops), so level i
// supports foreign depth q_i = Dmax - 1 - max_{k in [1..p]} min(k,|k-i|).
func (n *Node) safePrefix(from ident.NodeID, partial antlist.List, lu antlist.List) (int, bool) {
	dmax := n.cfg.Dmax
	p := 0 // deepest protected content
	for i := 0; i < n.list.Len(); i++ {
		for _, e := range n.list.At(i) {
			if !e.Mark.Marked() && n.inView(e.ID) {
				p = i
				break
			}
		}
	}
	for i := p + 1; i < partial.Len(); i++ {
		for _, e := range partial.At(i) {
			if !e.Mark.Marked() && e.ID != n.id && !lu.Has(e.ID) {
				p = i
				break
			}
		}
	}
	if p == 0 {
		// Nothing committed behind us: any contest lands at us and is
		// locally resolvable.
		return lu.Ecc(), true
	}
	b1 := lu.At(1) // the sender's direct neighbors
	maxI := p
	if n.cfg.Compat == CompatNaiveSum {
		maxI = 0
	}
	best := -1
	for i := 0; i <= maxI; i++ {
		// The witness layer keeps plain entries only: the BFS path of a
		// plain member necessarily crosses plain relays (marked entries
		// are never propagated, so nothing sits behind them), and a
		// marked boundary neighbor in our layer must not veto the subset
		// test. The sender itself is excluded too — mid-merge it already
		// appears in our layer 1, and it cannot be required to be its
		// own neighbor. The union of the two layers is streamed in merge
		// order (both are ascending) against b1 instead of being
		// materialized: same entries, same strongest-mark resolution on
		// ID collisions, no per-level set allocation.
		x, y := n.list.At(i), partial.At(i)
		nonEmpty, witness := false, true
		xi, yi, bj := 0, 0, 0
		for xi < len(x) || yi < len(y) {
			var e ident.Entry
			switch {
			case yi >= len(y) || (xi < len(x) && x[xi].ID < y[yi].ID):
				e = x[xi]
				xi++
			case xi >= len(x) || y[yi].ID < x[xi].ID:
				e = y[yi]
				yi++
			default:
				e = ident.Entry{ID: x[xi].ID, Mark: x[xi].Mark.Max(y[yi].Mark)}
				xi, yi = xi+1, yi+1
			}
			if e.Mark.Marked() || e.ID == from {
				continue
			}
			nonEmpty = true
			for bj < len(b1) && b1[bj].ID < e.ID {
				bj++
			}
			if bj >= len(b1) || b1[bj].ID != e.ID {
				witness = false
				break
			}
		}
		if i > 0 && (!nonEmpty || !witness) {
			continue // no witness v' for the shortcut at this level
		}
		worst := 0
		for k := 1; k <= p; k++ {
			d := k
			if abs(k-i) < d {
				d = abs(k - i)
			}
			if d > worst {
				worst = d
			}
		}
		if qi := dmax - 1 - worst; qi > best {
			best = qi
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// farNodeHasPriority decides line 16: does the too-far node w win against
// this node? Inside the same group, node priorities are compared; across
// groups this is a merge conflict and the *groups of the two contested
// endpoints* are compared (that is what breaks loops of groups willing to
// merge consistently at both ends — intermediary nodes' priorities never
// enter), falling back to node priorities when the group priorities tie.
func (n *Node) farNodeHasPriority(w ident.NodeID, incs []incoming) bool {
	wNode := n.lookupPriority(w, incs)
	if n.inView(w) {
		return wNode.Less(n.self)
	}
	wGroup := n.lookupGroupPriority(w, incs).Min(wNode)
	switch {
	case wGroup.Less(n.group):
		return true
	case n.group.Less(wGroup):
		return false
	default:
		return wNode.Less(n.self)
	}
}

// lookupPriority finds the freshest priority known for u. Clocks are
// monotone, so the freshest advertisement is the largest; the local cache
// fills in when no message mentions u this round. The fold is a max, so
// the iteration order over the round's messages is immaterial.
func (n *Node) lookupPriority(u ident.NodeID, incs []incoming) priority.P {
	best, found := priority.Infinite, false
	for i := range incs {
		if r, ok := incs[i].msg.Rec(u); ok && r.HasPrio {
			if !found || best.Less(r.Prio) {
				best, found = r.Prio, true
			}
		}
	}
	if !found {
		if p, ok := n.prioOf(u); ok {
			return p
		}
	}
	return best
}

// lookupGroupPriority finds the freshest known priority of u's group: the
// value relayed by the provider knowing u at the smallest position (the
// shortest witness chain), else the local cache, else Infinite (the caller
// caps it with u's own node priority, which upper-bounds its group's).
// Ties on the position break toward the smallest sender ID — the order
// the former ascending-ID iteration produced implicitly.
func (n *Node) lookupGroupPriority(u ident.NodeID, incs []incoming) priority.P {
	best, bestPos := priority.Infinite, -1
	var bestSid ident.NodeID
	for i := range incs {
		r, ok := incs[i].msg.Rec(u)
		if !ok || !r.HasGroupPrio || r.Pos < 0 {
			continue
		}
		sid := incs[i].msg.From
		if bestPos < 0 || int(r.Pos) < bestPos || (int(r.Pos) == bestPos && sid < bestSid) {
			best, bestPos, bestSid = r.GroupPrio, int(r.Pos), sid
		}
	}
	if bestPos < 0 {
		if p, ok := n.gprOf(u); ok {
			return p
		}
	}
	return best
}

// fold runs lines 24–27: listv ← (v), then ant over the checked incoming
// lists in deterministic order, with hole truncation. The fold composes in
// the builder arena; the result is a view of it.
func (n *Node) fold(b *antlist.Builder, incs []incoming) antlist.List {
	b.Reset(ident.Plain(n.id))
	for i := range incs {
		b.Ant(incs[i].list)
	}
	return holeTruncate(b.View())
}

// holeTruncate cuts a fold at its first empty layer: a hole means no
// witnessed relay exists at that distance (the entries there were all
// marked or deduplicated away), so anything beyond it is unreachable
// garbage, and a list containing an empty set would be rejected wholesale
// by every receiver's goodList anyway. The cut happens once, on final
// folds — inside ⊕ it would break the operator's associativity.
func holeTruncate(l antlist.List) antlist.List {
	for i := 0; i < l.Len(); i++ {
		if len(l.At(i)) == 0 {
			return l.Truncate(i)
		}
	}
	return l
}

// learnPriorities refreshes the local node- and group-priority caches for
// every node of the new list from this round's messages, and prunes
// entries for nodes no longer tracked. Freshness rules matter:
//
//   - A node's clock is monotone non-decreasing (it ticks while alone and
//     freezes in a group), so the freshest advertised node priority is the
//     *largest* one. Taking a minimum would resurrect stale small clocks
//     forever.
//   - Group priorities are not monotone (merges lower them, splits raise
//     them), so "largest" is meaningless; instead the value is taken from
//     the provider that knows the node at the smallest list position — the
//     shortest witness chain back to the node's own authoritative
//     advertisement — with the smallest provider ID as deterministic
//     tie-break. This re-propagates the source's current value along BFS
//     paths every round, so stale values wash out in O(Dmax) computes
//     instead of circulating as poison.
//
// The lookups are flat scans over each sender's record slice, with the
// advertised position carried in the record — the map-based original
// (retained in reference.go as the oracle) probed three maps and
// re-scanned the sender's list for the position on every lookup. The
// caches are rebuilt into recycled spare buffers keyed by the new list's
// node set, which replaces the old update-then-prune map walk with
// appends and one small sort.
func (n *Node) learnPriorities(newList antlist.List, incs []incoming) {
	np := n.priosSpare[:0]
	ng := n.gprsSpare[:0]
	selfSeen := false
	for i := 0; i < newList.Len(); i++ {
		for _, e := range newList.At(i) {
			u := e.ID
			// One record lookup per (node, sender) feeds both folds: the
			// node-priority max and the group-priority pick are each
			// order-independent, so fusing the two passes (the former code
			// scanned every sender's records twice per node) changes
			// nothing but the scan count.
			//
			// Node priority: clocks are monotone, the freshest
			// advertisement is the largest; fall back to the previous
			// cache entry when nobody mentioned u this round.
			// Group priority: the provider knowing u at the smallest list
			// position wins (shortest witness chain), smallest sender ID
			// breaking ties.
			best, found := priority.Infinite, false
			bestPos := -1
			var bestSid ident.NodeID
			var gbest priority.P
			for i := range incs {
				r, ok := incs[i].msg.Rec(u)
				if !ok {
					continue
				}
				if r.HasPrio && (!found || best.Less(r.Prio)) {
					best, found = r.Prio, true
				}
				if r.HasGroupPrio && r.Pos >= 0 {
					sid := incs[i].msg.From
					if bestPos < 0 || int(r.Pos) < bestPos || (int(r.Pos) == bestPos && sid < bestSid) {
						bestPos, bestSid, gbest = int(r.Pos), sid, r.GroupPrio
					}
				}
			}
			if u == n.id {
				selfSeen = true
				best, found = n.self, true // the self entry is pinned
			} else if !found {
				best, found = precGet(n.prios, u)
			}
			if found {
				np = append(np, prec{id: u, p: best})
			}
			if bestPos < 0 {
				if g, ok := precGet(n.gprs, u); ok {
					gbest, bestPos = g, 0
				}
			}
			if bestPos >= 0 {
				ng = append(ng, prec{id: u, p: gbest})
			}
		}
	}
	if !selfSeen {
		np = append(np, prec{id: n.id, p: n.self})
		if g, ok := precGet(n.gprs, n.id); ok {
			ng = append(ng, prec{id: n.id, p: g})
		}
	}
	byID := func(a, b prec) int { return cmp.Compare(a.id, b.id) }
	slices.SortFunc(np, byID)
	slices.SortFunc(ng, byID)
	n.priosSpare = n.prios
	n.gprsSpare = n.gprs
	n.prios = np
	n.gprs = ng
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%s list=%s view=%v pr=%s gpr=%s", n.id, n.list, n.View(), n.self, n.group)
}

// Compatible evaluates, without side effects, the first-contact
// compatibility decision this node would take for the list lu: the safe
// prefix depth (how deep lu's content may be folded) and whether the
// sender is acceptable at all. It exposes the compatibleList test of
// Proposition 13 for analysis and experiments; Compute applies the same
// logic internally with the round's partial fold.
func (n *Node) Compatible(lu antlist.List) (int, bool) {
	return n.safePrefix(lu.Owner(), antlist.Singleton(ident.Plain(n.id)), lu)
}
