// Package core implements the GRP distributed protocol of Ducourthial,
// Khalfallah and Petit: the per-node state machine that maintains the
// ordered list of ancestor sets with the ant r-operator, detects symmetric
// links with the mark triple handshake, bounds group diameters by Dmax with
// the compatibility test of Proposition 13, resolves merge overshoots with
// priorities, and delays view admission with the quarantine.
//
// The package is pure protocol logic: it has no clocks, no radio and no
// goroutines. A driver (internal/sim for deterministic experiments,
// internal/runtime for a live goroutine deployment) calls
//
//	Receive(msg)    upon message reception,
//	Compute()       at every Tc timer expiration (also resets the message
//	                buffer, which is how neighbor departures are detected),
//	BuildMessage()  at every Ts timer expiration (Ts ≤ Tc).
//
// The output used by applications is View: the composition of the node's
// group.
package core

import (
	"fmt"
	"sort"

	"repro/internal/antlist"
	"repro/internal/ident"
	"repro/internal/priority"
)

// CompatMode selects the variant of the compatibility test (experiment
// E10 ablates the optimized test against the naive one).
type CompatMode int

const (
	// CompatFull is Proposition 13's test with the ∃i shortcut
	// optimization (and the AND-corrected bound; see DESIGN.md §3).
	CompatFull CompatMode = iota
	// CompatNaiveSum accepts a merge only when the plain length sum fits:
	// s(listv) + s(listu) ≤ Dmax + 1 (the i = 0 case only).
	CompatNaiveSum
)

// Config carries the protocol parameters, fixed for a whole execution.
type Config struct {
	// Dmax is the application-chosen bound on group diameters.
	Dmax int
	// Compat selects the compatibility test variant. Default CompatFull.
	Compat CompatMode
	// DisableQuarantine turns the quarantine mechanism off (ablation E12);
	// newcomers then enter views immediately.
	DisableQuarantine bool
	// BoundaryHold is how many computes a double-mark rejection of a
	// neighbor is remembered (the boundary memory): during the hold the
	// neighbor's lists are auto-rejected, which lets views consolidate
	// behind a freshly cut boundary instead of re-flooding and re-cutting
	// every other round. 0 selects the default Dmax+2; negative disables
	// the memory entirely (ablation).
	BoundaryHold int
	// RejectDebounce is how many consecutive computes a neighbor must be
	// found incompatible (by the compatibility test or a lost too-far
	// contest) before the hard double-mark cut: transient detour-inflated
	// positions during convergence would otherwise fire false contests
	// whose cuts create more detours. During the debounce the sender's
	// content is ignored gently (single mark). 0 selects the default 2;
	// negative cuts immediately (ablation).
	RejectDebounce int
}

// rejectDebounce resolves the configured debounce threshold.
func (c Config) rejectDebounce() int {
	switch {
	case c.RejectDebounce < 0:
		return 1
	case c.RejectDebounce == 0:
		return 2
	default:
		return c.RejectDebounce
	}
}

// boundaryHold resolves the configured hold duration.
func (c Config) boundaryHold() uint64 {
	switch {
	case c.BoundaryHold < 0:
		return 0
	case c.BoundaryHold == 0:
		return uint64(c.Dmax) + 2
	default:
		return uint64(c.BoundaryHold)
	}
}

// Message is one GRP broadcast: the sender's ordered list of ancestor
// sets with, for every node appearing in it, that node's priority and the
// priority of its group as known by the sender (the paper sends "listv
// with priorities"; per-entry group priorities are how "group priorities
// are compared" across several hops — see DESIGN.md §3).
type Message struct {
	From       ident.NodeID
	List       antlist.List
	Prios      map[ident.NodeID]priority.P
	GroupPrios map[ident.NodeID]priority.P
	GroupPrio  priority.P
	// Quars carries the remaining quarantine of the sender's not-yet
	// admitted entries. Receivers inherit the smallest value they hear,
	// so a newcomer's countdown finishes at (nearly) the same round on
	// every member — the paper's "the new node progresses in the group"
	// — and the whole group admits it into views simultaneously. Without
	// inheritance each member would start its own Dmax countdown one hop
	// later than the previous one, views would grow at staggered rounds,
	// and every merge would transiently break agreement (a raw ΠC
	// violation the best-effort contract does not allow).
	Quars map[ident.NodeID]int
}

// EncodedSize returns the wire size of the message in bytes (frame header
// + list + two priority records per listed node + group priority), used by
// the overhead experiment.
func (m Message) EncodedSize() int {
	// from(4) + groupPrio(12) + list + 12 bytes per priority record +
	// 5 bytes per quarantine record.
	return 4 + 12 + m.List.EncodedSize() + 12*len(m.Prios) + 12*len(m.GroupPrios) + 5*len(m.Quars)
}

// Node is the GRP state of one network node.
type Node struct {
	cfg Config
	id  ident.NodeID

	// Tracer, when non-nil, receives a line per protocol decision
	// (list checks, rejections, contests). Intended for debugging and
	// the simulator's verbose mode; nil costs nothing.
	Tracer func(format string, args ...interface{})

	list     antlist.List
	view     map[ident.NodeID]bool
	quar     map[ident.NodeID]int
	prios    map[ident.NodeID]priority.P
	gprs     map[ident.NodeID]priority.P
	self     priority.P
	group    priority.P
	msgSet   map[ident.NodeID]Message
	rejected map[ident.NodeID]uint64 // boundary memory: sender → expiry compute
	streak   map[ident.NodeID]int    // consecutive incompatibility observations
	synced   bool                    // one-time clock sync at first contact done

	computes uint64
	version  uint64 // bumped on every observable-state change (Compute, LoadState)
	viewVer  uint64 // bumped only when the view *content* changes

	// Per-node scratch reused across computes (never escapes): the view
	// and quarantine double-buffers swap with the live maps each round,
	// and workBuf holds the round's checked senders. Rebuilding these
	// maps every compute was the protocol's top allocation site at scale.
	viewSpare map[ident.NodeID]bool
	quarSpare map[ident.NodeID]int
	workBuf   map[ident.NodeID]*incoming
}

// NewNode returns a freshly booted node: alone in its list and view, clock
// zero.
func NewNode(id ident.NodeID, cfg Config) *Node {
	if cfg.Dmax < 1 {
		panic(fmt.Sprintf("core: Dmax must be ≥ 1, got %d", cfg.Dmax))
	}
	n := &Node{
		cfg:      cfg,
		id:       id,
		list:     antlist.Singleton(ident.Plain(id)),
		view:     map[ident.NodeID]bool{id: true},
		quar:     map[ident.NodeID]int{id: 0},
		prios:    map[ident.NodeID]priority.P{id: priority.New(id)},
		gprs:     map[ident.NodeID]priority.P{id: priority.New(id)},
		self:     priority.New(id),
		msgSet:   make(map[ident.NodeID]Message),
		rejected: make(map[ident.NodeID]uint64),
		streak:   make(map[ident.NodeID]int),

		viewSpare: make(map[ident.NodeID]bool),
		quarSpare: make(map[ident.NodeID]int),
		workBuf:   make(map[ident.NodeID]*incoming),

		viewVer: 1,
	}
	n.group = n.self
	return n
}

// ID returns the node's identity.
func (n *Node) ID() ident.NodeID { return n.id }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// List returns the current ordered list of ancestor sets (a copy).
func (n *Node) List() antlist.List { return n.list.Clone() }

// View returns the group composition as seen by this node, ascending.
// This is the protocol's output, the view_v the applications use.
func (n *Node) View() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(n.view))
	for v := range n.view {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ViewSet returns the view as a set (a copy).
func (n *Node) ViewSet() map[ident.NodeID]bool {
	out := make(map[ident.NodeID]bool, len(n.view))
	for v := range n.view {
		out[v] = true
	}
	return out
}

// InView reports whether u is currently in the node's view.
func (n *Node) InView(u ident.NodeID) bool { return n.view[u] }

// Priority returns the node's own priority.
func (n *Node) Priority() priority.P { return n.self }

// GroupPriority returns the node's group priority (min over its view).
func (n *Node) GroupPriority() priority.P { return n.group }

// Computes returns the number of Compute calls so far (the protocol's
// logical time on this node).
func (n *Node) Computes() uint64 { return n.computes }

// Version returns a counter that increases whenever the node's observable
// protocol state may have changed (every Compute and LoadState). The
// outputs of BuildMessage, View and List are pure functions of the state
// at a given version, which is what lets a driver cache the broadcast
// between computes instead of re-assembling it on every send timer.
func (n *Node) Version() uint64 { return n.version }

// ViewVersion returns a counter that increases only when the view's
// *content* changes (a Compute that leaves the view identical does not
// move it, unlike Version). Incremental observers (obs.GroupTracker) key
// their per-node view caches on it: at steady state every compute is a
// single counter comparison instead of a view re-extraction.
func (n *Node) ViewVersion() uint64 { return n.viewVer }

// AppendView appends the view members in ascending order to buf and
// returns the extended slice — the allocation-free variant of View.
func (n *Node) AppendView(buf []ident.NodeID) []ident.NodeID {
	start := len(buf)
	for v := range n.view {
		buf = append(buf, v)
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}

// QuarantineOf returns the remaining quarantine of u, or -1 when u is not
// tracked (absent or marked in the list).
func (n *Node) QuarantineOf(u ident.NodeID) int {
	if q, ok := n.quar[u]; ok {
		return q
	}
	return -1
}

// LoadState overwrites the node's protocol state. It exists for the
// self-stabilization experiments, which must start executions from
// arbitrary (corrupted) configurations; the protocol never calls it.
// Nil maps leave the corresponding field at a consistent default derived
// from the list.
func (n *Node) LoadState(list antlist.List, view map[ident.NodeID]bool, quar map[ident.NodeID]int, self priority.P) {
	n.list = list.Clone()
	if view != nil {
		// Copy: the node recycles its view/quarantine maps as scratch
		// buffers across computes, so it must own them outright.
		n.view = make(map[ident.NodeID]bool, len(view))
		for k, v := range view {
			n.view[k] = v
		}
	} else {
		n.view = map[ident.NodeID]bool{n.id: true}
	}
	if quar != nil {
		n.quar = make(map[ident.NodeID]int, len(quar))
		for k, v := range quar {
			n.quar[k] = v
		}
	} else {
		n.quar = map[ident.NodeID]int{n.id: 0}
		for _, u := range list.IDs() {
			n.quar[u] = 0
		}
	}
	n.self = self
	n.prios = map[ident.NodeID]priority.P{n.id: self}
	n.gprs = map[ident.NodeID]priority.P{n.id: self}
	n.group = self
	n.rejected = make(map[ident.NodeID]uint64)
	n.streak = make(map[ident.NodeID]int)
	n.synced = true
	n.version++
	n.viewVer++
}

// viewEqual reports whether two view sets have identical membership.
func viewEqual(a, b map[ident.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Receive stores a neighbor's message. Only the last message per sender is
// kept (one-message channel); self-messages are ignored.
func (n *Node) Receive(m Message) {
	if m.From == n.id || m.From == ident.None {
		return
	}
	n.msgSet[m.From] = m
}

// PendingMessages returns how many distinct senders are buffered (used by
// drivers and tests).
func (n *Node) PendingMessages() int { return len(n.msgSet) }

// BuildMessage assembles the broadcast for the Ts timer: the current list
// with the priorities of every node in it and the group priority. The
// result is immutable and a pure function of the node's state (see
// Version), so drivers may cache and share it between computes.
func (n *Node) BuildMessage() Message {
	count := n.list.NodeCount() + 1
	prios := make(map[ident.NodeID]priority.P, count)
	gprios := make(map[ident.NodeID]priority.P, count)
	for _, s := range n.list {
		for _, e := range s {
			u := e.ID
			if p, ok := n.prios[u]; ok {
				prios[u] = p
			} else {
				prios[u] = priority.Infinite
			}
			switch {
			case n.view[u]:
				gprios[u] = n.group
			default:
				if g, ok := n.gprs[u]; ok {
					gprios[u] = g
				} else {
					gprios[u] = prios[u]
				}
			}
		}
	}
	prios[n.id] = n.self
	gprios[n.id] = n.group
	var quars map[ident.NodeID]int
	for u, q := range n.quar {
		if q > 0 {
			if quars == nil {
				quars = make(map[ident.NodeID]int)
			}
			quars[u] = q
		}
	}
	return Message{
		From:       n.id,
		List:       n.list.Clone(),
		Prios:      prios,
		GroupPrios: gprios,
		GroupPrio:  n.group,
		Quars:      quars,
	}
}

// incoming is one checked entry of the message set during a computation.
type incoming struct {
	list antlist.List
	msg  Message
}

// Compute runs procedure compute() of §4.3 and then resets the message
// buffer (line 5 of the main algorithm).
func (n *Node) Compute() {
	n.computes++
	dmax := n.cfg.Dmax

	// Check order is a stable preference order, not plain ID order: view
	// members first (their lists are never subject to the compatibility
	// test), then senders by their advertised group priority (oldest
	// first), then by ID. The first compatible content a node folds is
	// what it commits to for the round, so this order makes every
	// uncommitted node side with the *oldest* adjacent group — the same
	// greedy accretion the maximality proof (Prop. 11) reasons about —
	// instead of an arbitrary choice that can flip between rounds and
	// keep the network in metastable partitions. The fold itself (⊕) is
	// order-independent.
	senders := make([]ident.NodeID, 0, len(n.msgSet))
	for u := range n.msgSet {
		senders = append(senders, u)
	}
	sort.Slice(senders, func(i, j int) bool {
		a, b := senders[i], senders[j]
		av, bv := n.view[a], n.view[b]
		if av != bv {
			return av
		}
		ag, bg := n.msgSet[a].GroupPrio, n.msgSet[b].GroupPrio
		if ag != bg {
			return ag.Less(bg)
		}
		return a < b
	})

	// Expire boundary memory.
	for u, exp := range n.rejected {
		if n.computes > exp {
			delete(n.rejected, u)
		}
	}

	// Lines 1–9 fused with 10–13: check the received lists in
	// deterministic sender order while building the fold incrementally.
	// Each compatibility test sees the partial fold, so content already
	// committed from earlier senders is protected against later
	// incompatible senders — this is what lets a lone node bridging two
	// far-apart groups side with one of them instead of absorbing both
	// and being punished by each in turn.
	work := n.workBuf
	clear(work)
	partial := antlist.Singleton(ident.Plain(n.id))
	for _, u := range senders {
		msg := n.msgSet[u]
		lu := n.cleanReceived(msg.List)
		switch {
		case n.rejected[u] != 0:
			// Boundary memory: the sender was recently rejected as
			// incompatible; hold the boundary while views consolidate.
			lu = antlist.Singleton(ident.Double(u))
			n.trace("hold %v until c%d", u, n.rejected[u])
		case !n.goodList(u, lu):
			// Line 4: the list is ignored but the sender is kept
			// (single mark: asymmetric / unconfirmed link). Not evidence
			// of incompatibility: the streak is left alone.
			lu = antlist.Singleton(ident.Single(u))
			n.trace("notgood %v: %v", u, msg.List)
		case !n.view[u]:
			qsafe, ok := n.safePrefix(u, partial, lu)
			if !ok || qsafe < foreignDepth(n, lu) {
				// Line 7: u is denoted as an incompatible neighbor
				// (after the debounce; see escalate).
				n.trace("incompat %v: cleaned=%v partial=%v list=%v", u, lu, partial, n.list)
				lu = n.escalate(u)
			} else {
				n.streak[u] = 0
			}
		default:
			n.streak[u] = 0
		}
		work[u] = &incoming{list: lu, msg: msg}
		partial = partial.Ant(lu)
	}

	// Lines 10–13: the fold of the checked lists (built above).
	newList := holeTruncate(partial)

	// Lines 14–29: removal of incoming lists containing too-far nodes.
	if newList.Len() > dmax+1 {
		for _, w := range newList.At(dmax + 1) {
			if w.Mark.Marked() {
				continue // marks never travel that far; defensive
			}
			if n.farNodeHasPriority(w.ID, work) {
				for _, u := range senders {
					inc := work[u]
					if pos, _ := inc.list.Position(w.ID); pos == dmax {
						// Line 19: the neighbor that provided w is
						// ignored (after the debounce; see escalate).
						work[u] = &incoming{list: n.escalate(u), msg: inc.msg}
						n.trace("contest lost to %v: drop provider %v (streak %d)", w.ID, u, n.streak[u])
					}
				}
			} else {
				n.trace("contest won against %v: truncate", w.ID)
			}
		}
		newList = n.fold(senders, work)
		// Line 28: remaining too-far nodes did not have the priority.
		newList = newList.Truncate(dmax + 1)
	}

	// Learn priorities for the nodes we now track.
	n.learnPriorities(newList, work)

	// Line 30: update quarantines. The quarantine clock of a node starts
	// when it first appears *plain* (marked entries are not propagated, so
	// the group learns about the newcomer only from then on).
	if !n.cfg.DisableQuarantine {
		// The smallest remaining quarantine heard per node this round
		// (inheritance; see Message.Quars), plus the reverse direction:
		// when a sender's message says *our* remaining quarantine is k,
		// the join completes in k rounds — so our own countdown for the
		// sender's already-admitted members (entries it lists without a
		// quarantine) syncs to the same k, and both sides' views flip in
		// the same round.
		var heard map[ident.NodeID]int // lazily allocated: empty at steady state
		for _, u := range senders {
			msg := work[u].msg
			if len(msg.Quars) > 0 && heard == nil {
				heard = make(map[ident.NodeID]int)
			}
			for id, q := range msg.Quars {
				if cur, ok := heard[id]; !ok || q < cur {
					heard[id] = q
				}
			}
			if k, ok := msg.Quars[n.id]; ok {
				for _, s := range msg.List {
					for _, e := range s {
						if e.Mark.Marked() || e.ID == n.id {
							continue
						}
						if _, quarantined := msg.Quars[e.ID]; quarantined {
							continue
						}
						if cur, known := heard[e.ID]; !known || k < cur {
							heard[e.ID] = k
						}
					}
				}
			}
		}
		nq := n.quarSpare
		clear(nq)
		for _, s := range newList {
			for _, e := range s {
				if e.Mark.Marked() {
					continue
				}
				q, known := n.quar[e.ID]
				if !known {
					q = dmax
				} else if q > 0 {
					q--
				}
				// The heard value was sampled before the peer's own
				// decrement this round; inherit h-1 so both countdowns
				// hit zero in the same round.
				if h, ok := heard[e.ID]; ok && h-1 < q {
					q = h - 1
					if q < 0 {
						q = 0
					}
				}
				nq[e.ID] = q
			}
		}
		nq[n.id] = 0
		n.quarSpare = n.quar
		n.quar = nq
	} else {
		n.quar = map[ident.NodeID]int{n.id: 0}
		for _, u := range newList.IDs() {
			n.quar[u] = 0
		}
	}

	// Line 31: the view is the plain-marked nodes with null quarantine.
	nv := n.viewSpare
	clear(nv)
	for _, s := range newList {
		for _, e := range s {
			if !e.Mark.Marked() && n.quar[e.ID] == 0 {
				nv[e.ID] = true
			}
		}
	}
	nv[n.id] = true

	// Line 32: priorities increase only while the node is not in a group.
	// "Not in a group" is read as *hearing nobody*: the clock ages while
	// the node is truly isolated and freezes from its first contact with
	// other nodes (with a one-time Lamport jump past every clock heard, so
	// a late arrival ranks below the nodes already there). The paper
	// freezes only on view membership; freezing already on contact is
	// required for the contests to terminate — a clock that keeps growing
	// during merge negotiation is seen by the far endpoint lagged by up to
	// Dmax relay hops, so two negotiating lone nodes each observe the
	// other as older, both retreat, and the race re-runs forever. Frozen
	// clocks relay without skew and keep every contest's outcome
	// consistent at both ends. The join-order property the paper wants
	// ("the last entered nodes have less priority") is preserved: a
	// member's frozen clock records when it arrived.
	if len(nv) <= 1 {
		switch {
		case len(senders) == 0:
			n.self = n.self.Tick()
		case !n.synced:
			base := n.self.Clock
			for _, u := range senders {
				for _, p := range work[u].msg.Prios {
					if !p.IsInfinite() && p.Clock > base {
						base = p.Clock
					}
				}
			}
			n.self = priority.P{Clock: base + 1, ID: n.id}
			n.synced = true
		}
	}
	n.prios[n.id] = n.self

	n.list = newList
	if !viewEqual(nv, n.view) {
		n.viewVer++
	}
	n.viewSpare = n.view
	n.view = nv

	// Group priority: the smallest priority of the view's members.
	gp := n.self
	for u := range nv {
		if p, ok := n.prios[u]; ok {
			gp = gp.Min(p)
		}
	}
	n.group = gp

	// Line 5 of the main algorithm: reset msgSet to detect departures
	// (clearing in place: the map is node-private and reallocating it
	// every compute was a top allocation site at scale).
	clear(n.msgSet)
	n.version++
}

// escalate records one incompatibility observation against sender u and
// returns the replacement for its list: a gentle single-mark singleton
// while the observation streak is below the debounce threshold (transient
// detour-inflated positions during convergence fire false contests; a
// soft ignore does not reset the neighbor's handshake), and the hard
// double-mark cut once the incompatibility persists.
func (n *Node) escalate(u ident.NodeID) antlist.List {
	n.streak[u]++
	if n.streak[u] < n.cfg.rejectDebounce() {
		return antlist.Singleton(ident.Single(u))
	}
	n.streak[u] = 0
	n.reject(u)
	return antlist.Singleton(ident.Double(u))
}

// foreignDepth returns the deepest position in lu holding a plain entry
// that is neither this node nor one of its view members — the q of the
// compatibility bound.
func foreignDepth(n *Node, lu antlist.List) int {
	q := 0
	for i, s := range lu {
		for _, e := range s {
			if !e.Mark.Marked() && e.ID != n.id && !n.view[e.ID] {
				q = i
				break
			}
		}
	}
	return q
}

// trace emits a debugging line when a Tracer is installed.
func (n *Node) trace(format string, args ...interface{}) {
	if n.Tracer != nil {
		n.Tracer(format, args...)
	}
}

// reject records a double-mark decision against sender u in the boundary
// memory. The hold duration is the configured base plus a deterministic
// jitter derived from (node, neighbor, episode): with a uniform hold,
// every boundary in a symmetric region expires in lockstep, all frontier
// nodes re-probe in the same round, their lists bloat with content from
// several sides at once, everyone re-rejects, and the network cycles
// periodically without ever converging. Staggered expiries let one merge
// consolidate before the next probe arrives.
func (n *Node) reject(u ident.NodeID) {
	hold := n.cfg.boundaryHold()
	if hold == 0 {
		return
	}
	h := uint64(14695981039346656037)
	for _, x := range [...]uint64{uint64(n.id), uint64(u), n.computes} {
		h = (h ^ x) * 1099511628211
	}
	n.rejected[u] = n.computes + hold + h%(hold+1)
}

// cleanReceived applies line 2: delete marked nodes, except a
// *single-marked* self entry — that is the handshake signal ("v or v̄ in
// list.1" makes the list good). A double-marked self entry is a rejection
// by the sender and is deleted too, so that the good-list test fails and
// the rejection is symmetric (Proposition 3's reading: after line 2 the
// double-marked node no longer appears in the list it received).
func (n *Node) cleanReceived(l antlist.List) antlist.List {
	keep := func(e ident.Entry) bool {
		return !e.Mark.Marked() || (e.ID == n.id && e.Mark == ident.MarkSingle)
	}
	// Fast path: interior nodes of a settled group receive all-plain
	// lists, where the deletion pass keeps everything — and a sender's
	// list is already normalized, so the whole call is the identity.
	clean := true
	for _, s := range l {
		for _, e := range s {
			if !keep(e) {
				clean = false
				break
			}
		}
	}
	if clean {
		return l.Normalize()
	}
	out := make(antlist.List, 0, len(l))
	for _, s := range l {
		out = append(out, s.Filter(keep))
	}
	return out.Normalize()
}

// goodList is the test of §4.3: the receiver (plain or single-marked)
// appears among the sender's distance-1 ancestors, the list is not longer
// than Dmax+1, contains no empty set, and is owned by the sender.
func (n *Node) goodList(from ident.NodeID, l antlist.List) bool {
	if l.Len() < 2 || l.Len() > n.cfg.Dmax+1 {
		return false
	}
	if l.Owner() != from || len(l.At(0)) != 1 {
		return false
	}
	if l.HasEmptySet() {
		return false
	}
	return l.At(1).Has(n.id)
}

// safePrefix evaluates the compatibleList test of Proposition 13 and
// returns the deepest prefix of the sender's list that can be folded
// without endangering the content this node must protect. It returns
// (qsafe, true) when at least the sender itself fits (fold positions
// 0..qsafe of its list), and (0, false) when even that would break the
// bound — the genuine incompatibility that cuts a boundary.
//
// Returning a prefix instead of a boolean is how the test stays both
// safe and optimistic (see DESIGN.md §3): the paper's own Function is
// deliberately loose (an OR of two bounds), which admits merges that
// overshoot and must be repaired by contests; a strict bound alone
// instead vetoes legal merges whose members are pairwise close through
// edges the list representation cannot see (a clique under small Dmax
// stalls forever). Folding the provably safe prefix takes the safe part
// now; genuinely close tail nodes arrive later through closer paths.
//
// The protected content p combines two scans:
//   - the deepest current view member in our previous list (the
//     established group);
//   - the deepest plain entry of this computation's partial fold that is
//     absent from the sender's own list (candidates committed from other
//     sides this round — without protecting those, a lone node bridging
//     two far groups absorbs both and is punished by each in turn).
//
// Marked entries and the sender's own echoed content are not ours to
// protect. Only content at depth k ≥ 1 is protected: an overshoot landing
// at the evaluating node itself resolves locally through the too-far
// contest (winner truncates, loser double-marks the cross-border sender),
// which is how concurrent merge races are arbitrated by priorities.
//
// For protected content at depth k, a foreign node at depth l is
// reachable via the border edge (k+1+l hops) or via a witness level i all
// of whose plain entries neighbor the sender (|k-i|+1+l hops), so level i
// supports foreign depth q_i = Dmax - 1 - max_{k in [1..p]} min(k,|k-i|).
func (n *Node) safePrefix(from ident.NodeID, partial antlist.List, lu antlist.List) (int, bool) {
	dmax := n.cfg.Dmax
	p := 0 // deepest protected content
	for i, s := range n.list {
		for _, e := range s {
			if !e.Mark.Marked() && n.view[e.ID] {
				p = i
				break
			}
		}
	}
	for i, s := range partial {
		if i <= p {
			continue
		}
		for _, e := range s {
			if !e.Mark.Marked() && e.ID != n.id && !lu.Has(e.ID) {
				p = i
				break
			}
		}
	}
	if p == 0 {
		// Nothing committed behind us: any contest lands at us and is
		// locally resolvable.
		return lu.Ecc(), true
	}
	b1 := lu.At(1) // the sender's direct neighbors
	maxI := p
	if n.cfg.Compat == CompatNaiveSum {
		maxI = 0
	}
	best := -1
	for i := 0; i <= maxI; i++ {
		// The witness layer keeps plain entries only: the BFS path of a
		// plain member necessarily crosses plain relays (marked entries
		// are never propagated, so nothing sits behind them), and a
		// marked boundary neighbor in our layer must not veto the subset
		// test. The sender itself is excluded too — mid-merge it already
		// appears in our layer 1, and it cannot be required to be its
		// own neighbor.
		ai := n.list.At(i).Union(partial.At(i)).Filter(func(e ident.Entry) bool {
			return !e.Mark.Marked() && e.ID != from
		})
		if i > 0 && (len(ai) == 0 || !ai.SubsetIDs(b1)) {
			continue // no witness v' for the shortcut at this level
		}
		worst := 0
		for k := 1; k <= p; k++ {
			d := k
			if abs(k-i) < d {
				d = abs(k - i)
			}
			if d > worst {
				worst = d
			}
		}
		if qi := dmax - 1 - worst; qi > best {
			best = qi
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// farNodeHasPriority decides line 16: does the too-far node w win against
// this node? Inside the same group, node priorities are compared; across
// groups this is a merge conflict and the *groups of the two contested
// endpoints* are compared (that is what breaks loops of groups willing to
// merge consistently at both ends — intermediary nodes' priorities never
// enter), falling back to node priorities when the group priorities tie.
func (n *Node) farNodeHasPriority(w ident.NodeID, work map[ident.NodeID]*incoming) bool {
	wNode := n.lookupPriority(w, work)
	if n.view[w] {
		return wNode.Less(n.self)
	}
	wGroup := n.lookupGroupPriority(w, work).Min(wNode)
	switch {
	case wGroup.Less(n.group):
		return true
	case n.group.Less(wGroup):
		return false
	default:
		return wNode.Less(n.self)
	}
}

// lookupPriority finds the freshest priority known for u. Clocks are
// monotone, so the freshest advertisement is the largest; the local cache
// fills in when no message mentions u this round.
func (n *Node) lookupPriority(u ident.NodeID, work map[ident.NodeID]*incoming) priority.P {
	best, found := priority.Infinite, false
	for _, inc := range work {
		if p, ok := inc.msg.Prios[u]; ok {
			if !found || best.Less(p) {
				best, found = p, true
			}
		}
	}
	if !found {
		if p, ok := n.prios[u]; ok {
			return p
		}
	}
	return best
}

// lookupGroupPriority finds the freshest known priority of u's group: the
// value relayed by the provider knowing u at the smallest position (the
// shortest witness chain), else the local cache, else Infinite (the caller
// caps it with u's own node priority, which upper-bounds its group's).
func (n *Node) lookupGroupPriority(u ident.NodeID, work map[ident.NodeID]*incoming) priority.P {
	best, bestPos := priority.Infinite, -1
	ids := make([]ident.NodeID, 0, len(work))
	for s := range work {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, s := range ids {
		inc := work[s]
		p, ok := inc.msg.GroupPrios[u]
		if !ok {
			continue
		}
		pos, _ := inc.msg.List.Position(u)
		if pos < 0 {
			continue
		}
		if bestPos < 0 || pos < bestPos {
			best, bestPos = p, pos
		}
	}
	if bestPos < 0 {
		if p, ok := n.gprs[u]; ok {
			return p
		}
	}
	return best
}

// fold runs lines 24–27: listv ← (v), then ant over the checked incoming
// lists in deterministic order, with hole truncation.
func (n *Node) fold(senders []ident.NodeID, work map[ident.NodeID]*incoming) antlist.List {
	out := antlist.Singleton(ident.Plain(n.id))
	for _, u := range senders {
		out = out.Ant(work[u].list)
	}
	return holeTruncate(out)
}

// holeTruncate cuts a fold at its first empty layer: a hole means no
// witnessed relay exists at that distance (the entries there were all
// marked or deduplicated away), so anything beyond it is unreachable
// garbage, and a list containing an empty set would be rejected wholesale
// by every receiver's goodList anyway. The cut happens once, on final
// folds — inside ⊕ it would break the operator's associativity.
func holeTruncate(l antlist.List) antlist.List {
	for i, s := range l {
		if len(s) == 0 {
			return l.Truncate(i)
		}
	}
	return l
}

// learnPriorities refreshes the local node- and group-priority caches for
// every node of the new list from this round's messages, and prunes
// entries for nodes no longer tracked. Freshness rules matter:
//
//   - A node's clock is monotone non-decreasing (it ticks while alone and
//     freezes in a group), so the freshest advertised node priority is the
//     *largest* one. Taking a minimum would resurrect stale small clocks
//     forever.
//   - Group priorities are not monotone (merges lower them, splits raise
//     them), so "largest" is meaningless; instead the value is taken from
//     the provider that knows the node at the smallest list position — the
//     shortest witness chain back to the node's own authoritative
//     advertisement — with the provider ID as deterministic tie-break.
//     This re-propagates the source's current value along BFS paths every
//     round, so stale values wash out in O(Dmax) computes instead of
//     circulating as poison.
//
// The lookups run per tracked node over the (few) senders rather than
// materializing intermediate freshest-advertisement maps over every ID
// any sender mentioned — same result, two maps built instead of five.
func (n *Node) learnPriorities(newList antlist.List, work map[ident.NodeID]*incoming) {
	senders := make([]ident.NodeID, 0, len(work))
	for u := range work {
		senders = append(senders, u)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })

	// The caches are updated in place: each tracked node's entry is read
	// (fallback) before it is written, and stale entries are pruned after
	// the pass — same result as rebuilding both maps, without the two
	// allocations per compute.
	for _, s := range newList {
		for _, e := range s {
			u := e.ID
			// Node priority: clocks are monotone, the freshest
			// advertisement is the largest.
			best, found := priority.Infinite, false
			for _, sid := range senders {
				if p, ok := work[sid].msg.Prios[u]; ok && (!found || best.Less(p)) {
					best, found = p, true
				}
			}
			if found {
				n.prios[u] = best
			}
			// Group priority: the provider knowing u at the smallest list
			// position wins (shortest witness chain), smallest sender ID
			// breaking ties via the ascending iteration.
			bestPos := -1
			var gbest priority.P
			for _, sid := range senders {
				msg := &work[sid].msg
				p, ok := msg.GroupPrios[u]
				if !ok {
					continue
				}
				pos, _ := msg.List.Position(u)
				if pos < 0 {
					continue
				}
				if bestPos < 0 || pos < bestPos {
					bestPos, gbest = pos, p
				}
			}
			if bestPos >= 0 {
				n.gprs[u] = gbest
			}
		}
	}
	n.prios[n.id] = n.self
	for k := range n.prios {
		if k != n.id && !newList.Has(k) {
			delete(n.prios, k)
		}
	}
	for k := range n.gprs {
		if k != n.id && !newList.Has(k) {
			delete(n.gprs, k)
		}
	}
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%s list=%s view=%v pr=%s gpr=%s", n.id, n.list, n.View(), n.self, n.group)
}

// Compatible evaluates, without side effects, the first-contact
// compatibility decision this node would take for the list lu: the safe
// prefix depth (how deep lu's content may be folded) and whether the
// sender is acceptable at all. It exposes the compatibleList test of
// Proposition 13 for analysis and experiments; Compute applies the same
// logic internally with the round's partial fold.
func (n *Node) Compatible(lu antlist.List) (int, bool) {
	return n.safePrefix(lu.Owner(), antlist.Singleton(ident.Plain(n.id)), lu)
}
