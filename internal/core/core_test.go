package core

import (
	"reflect"
	"testing"

	"repro/internal/antlist"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/priority"
)

// ring is a tiny synchronous driver for unit tests: every round each node
// broadcasts to its neighbors in g, then every node computes. The real
// drivers live in internal/sim and internal/runtime.
type ring struct {
	g     *graph.G
	nodes map[ident.NodeID]*Node
}

func newRing(g *graph.G, cfg Config) *ring {
	r := &ring{g: g, nodes: make(map[ident.NodeID]*Node)}
	for _, v := range g.Nodes() {
		r.nodes[v] = NewNode(v, cfg)
	}
	return r
}

func (r *ring) round() {
	msgs := make(map[ident.NodeID]Message, len(r.nodes))
	for v, n := range r.nodes {
		msgs[v] = n.BuildMessage()
	}
	for v, n := range r.nodes {
		for _, u := range r.g.Neighbors(v) {
			n.Receive(msgs[u])
		}
	}
	for _, n := range r.nodes {
		n.Compute()
	}
}

func (r *ring) rounds(k int) {
	for i := 0; i < k; i++ {
		r.round()
	}
}

func (r *ring) view(v ident.NodeID) []ident.NodeID { return r.nodes[v].View() }

func viewEq(got []ident.NodeID, want ...ident.NodeID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// compatibleAll reports whether the full foreign depth of lu is foldable
// (the old boolean reading of the test): safePrefix covers everything.
func compatibleAll(n *Node, partial, lu antlist.List) bool {
	q := 0
	for i := 0; i < lu.Len(); i++ {
		for _, e := range lu.At(i) {
			if !e.Mark.Marked() && e.ID != n.id && !n.InView(e.ID) {
				q = i
				break
			}
		}
	}
	qsafe, ok := n.safePrefix(lu.Owner(), partial, lu)
	return ok && qsafe >= q
}

func TestNewNodeInitialState(t *testing.T) {
	n := NewNode(7, Config{Dmax: 3})
	if !viewEq(n.View(), 7) {
		t.Fatalf("initial view = %v", n.View())
	}
	if n.List().Owner() != 7 || n.List().Len() != 1 {
		t.Fatalf("initial list = %v", n.List())
	}
	if n.Priority() != priority.New(7) || n.GroupPriority() != priority.New(7) {
		t.Fatal("initial priority wrong")
	}
	if n.QuarantineOf(7) != 0 || n.QuarantineOf(9) != -1 {
		t.Fatal("initial quarantine wrong")
	}
}

func TestNewNodePanicsOnBadDmax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode(1, Config{Dmax: 0})
}

func TestReceiveIgnoresSelfAndKeepsLast(t *testing.T) {
	n := NewNode(1, Config{Dmax: 3})
	n.Receive(Message{From: 1, List: antlist.Singleton(ident.Plain(1))})
	if n.PendingMessages() != 0 {
		t.Fatal("self message buffered")
	}
	n.Receive(Message{From: 2, List: antlist.Singleton(ident.Plain(2))})
	n.Receive(Message{From: 2, List: antlist.Singleton(ident.Plain(2))})
	if n.PendingMessages() != 1 {
		t.Fatal("one-message channel violated")
	}
}

func TestTripleHandshakeTwoNodes(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 3})
	// Round 1: each sees the other's bare singleton → single mark.
	r.round()
	if viewEq(r.view(1), 1, 2) {
		t.Fatal("view must not include unconfirmed neighbor")
	}
	// The handshake completes and the quarantine (Dmax=3) runs out.
	r.rounds(1 + 3)
	if !viewEq(r.view(1), 1, 2) || !viewEq(r.view(2), 1, 2) {
		t.Fatalf("views after handshake: %v %v", r.view(1), r.view(2))
	}
}

func TestPairConvergesWithDmax1(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 1})
	r.rounds(10)
	if !viewEq(r.view(1), 1, 2) || !viewEq(r.view(2), 1, 2) {
		t.Fatalf("Dmax=1 pair: %v %v", r.view(1), r.view(2))
	}
}

func TestLineOfThreeDmax1RespectsSafety(t *testing.T) {
	// A 3-line with Dmax=1 cannot be one group (diameter 2). One pair
	// forms; the remaining node stays out of at least one view.
	r := newRing(graph.Line(3), Config{Dmax: 1})
	r.rounds(20)
	for v, n := range r.nodes {
		vw := n.ViewSet()
		if len(vw) > 2 {
			t.Fatalf("node %v view too large: %v", v, n.View())
		}
		if r.g.InducedDiameter(vw) > 1 {
			t.Fatalf("node %v view diameter > 1: %v", v, n.View())
		}
	}
}

func TestTwoPairsMergeAtDmax3(t *testing.T) {
	// 1-2-3-4 line, Dmax=3: the whole line is one legal group and the
	// protocol must converge to it (maximality).
	r := newRing(graph.Line(4), Config{Dmax: 3})
	r.rounds(30)
	for v := range r.nodes {
		if !viewEq(r.view(v), 1, 2, 3, 4) {
			t.Fatalf("node %v view = %v, want full line", v, r.view(v))
		}
	}
}

func TestTwoPairsStaySplitAtDmax2(t *testing.T) {
	// 1-2-3-4 line, Dmax=2: a single group would have diameter 3. Safety
	// must hold; groups must be maximal (two pairs or a triple+single).
	r := newRing(graph.Line(4), Config{Dmax: 2})
	r.rounds(40)
	for v, n := range r.nodes {
		vw := n.ViewSet()
		if d := r.g.InducedDiameter(vw); d > 2 {
			t.Fatalf("node %v group diameter %d: %v", v, d, n.View())
		}
	}
	// Agreement: views of members must match.
	for v, n := range r.nodes {
		for u := range n.ViewSet() {
			if !reflect.DeepEqual(r.nodes[u].View(), n.View()) {
				t.Fatalf("views disagree: %v=%v %v=%v", v, n.View(), u, r.nodes[u].View())
			}
		}
	}
}

func TestLineConvergesAtExactDiameter(t *testing.T) {
	// 5-line with Dmax=4: exactly one group.
	r := newRing(graph.Line(5), Config{Dmax: 4})
	r.rounds(40)
	if !viewEq(r.view(3), 1, 2, 3, 4, 5) {
		t.Fatalf("center view = %v", r.view(3))
	}
}

func TestQuarantineDelaysViewAdmission(t *testing.T) {
	cfg := Config{Dmax: 4}
	r := newRing(graph.Line(2), cfg)
	// After round 2 the handshake is complete (plain entries both sides).
	r.rounds(2)
	if viewEq(r.view(1), 1, 2) {
		t.Fatal("neighbor admitted before quarantine expiry")
	}
	q := r.nodes[1].QuarantineOf(2)
	if q <= 0 || q > 4 {
		t.Fatalf("quarantine of newcomer = %d", q)
	}
	r.rounds(4)
	if !viewEq(r.view(1), 1, 2) {
		t.Fatalf("neighbor still quarantined: %v", r.view(1))
	}
}

func TestDisableQuarantineAdmitsImmediately(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 4, DisableQuarantine: true})
	r.rounds(2)
	if !viewEq(r.view(1), 1, 2) {
		t.Fatalf("view = %v, want immediate admission", r.view(1))
	}
}

func TestDepartureDetection(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 2})
	r.rounds(10)
	if !viewEq(r.view(1), 1, 2) {
		t.Fatalf("precondition: %v", r.view(1))
	}
	// Node 2 goes silent: one compute with no message from it and it is
	// gone from node 1's list and view.
	r.nodes[1].Compute()
	if !viewEq(r.view(1), 1) {
		t.Fatalf("departed neighbor still in view: %v", r.view(1))
	}
}

func TestPriorityTicksOnlyWhenAlone(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 2})
	n1 := r.nodes[1]
	c0 := n1.Priority().Clock
	r.round()
	if n1.Priority().Clock <= c0 {
		t.Fatal("lone node's clock must tick")
	}
	r.rounds(10) // now grouped
	c1 := n1.Priority().Clock
	r.rounds(5)
	if n1.Priority().Clock != c1 {
		t.Fatal("grouped node's clock must freeze")
	}
	if got := n1.GroupPriority(); !got.Less(priority.Infinite) {
		t.Fatalf("group priority = %v", got)
	}
}

func TestLamportJumpOnJoin(t *testing.T) {
	// A node that boots late next to an old, still-lonely node must end up
	// with a *worse* (larger) clock than what it heard.
	old := NewNode(1, Config{Dmax: 2})
	for i := 0; i < 20; i++ {
		old.Compute() // ticks alone: clock grows
	}
	fresh := NewNode(2, Config{Dmax: 2})
	fresh.Receive(old.BuildMessage())
	fresh.Compute()
	if fresh.Priority().Clock <= old.Priority().Clock-1 {
		t.Fatalf("fresh clock %d did not jump past heard clock %d",
			fresh.Priority().Clock, old.Priority().Clock)
	}
}

func TestGoodListRejects(t *testing.T) {
	n := NewNode(1, Config{Dmax: 2})
	mk := func(l antlist.List) bool { return n.goodList(2, l) }
	// Bare singleton: no position 1.
	if mk(antlist.Singleton(ident.Plain(2))) {
		t.Fatal("singleton must not be good")
	}
	// Good: receiver plain at position 1.
	good := antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(1)))
	if !mk(good) {
		t.Fatal("good list rejected")
	}
	// Good: receiver single-marked at position 1 (handshake signal).
	goodMarked := antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Single(1)))
	if !mk(goodMarked) {
		t.Fatal("single-marked self must count")
	}
	// Receiver absent from position 1.
	bad := antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(3)))
	if mk(bad) {
		t.Fatal("list without receiver accepted")
	}
	// Too long: Dmax+2 positions.
	long := antlist.FromSets(
		antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(1)),
		antlist.NewSet(ident.Plain(3)), antlist.NewSet(ident.Plain(4)),
	)
	if mk(long) {
		t.Fatal("too-long list accepted")
	}
	// Empty set inside.
	holed := antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(1)), antlist.Set{}, antlist.NewSet(ident.Plain(4)))
	if mk(holed) {
		t.Fatal("list with empty set accepted")
	}
	// Wrong owner.
	wrongOwner := antlist.FromSets(antlist.NewSet(ident.Plain(9)), antlist.NewSet(ident.Plain(1)))
	if mk(wrongOwner) {
		t.Fatal("list owned by someone else accepted")
	}
}

func TestDoubleMarkedSelfIsRejectedOnReception(t *testing.T) {
	// Sender 2 double-marked us (incompatible): after line 2 deletion we
	// must not find ourselves in the list → not good → symmetric
	// ignorance (Proposition 3).
	n := NewNode(1, Config{Dmax: 3})
	l := antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Double(1), ident.Plain(3)))
	cleaned := n.cleanReceived(&n.bld, l)
	if cleaned.Has(1) {
		t.Fatal("double-marked self must be deleted")
	}
	if n.goodList(2, cleaned) {
		t.Fatal("list from a rejecting sender must not be good")
	}
}

func TestCompatibleMarkedEntriesDoNotInflate(t *testing.T) {
	// Two fresh singletons with mutual single marks, Dmax=1: marked
	// handshake entries must not count toward p/q, so the pair merges.
	n := NewNode(2, Config{Dmax: 1})
	n.LoadState(
		antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Single(1))),
		nil, nil, priority.New(2))
	lu := antlist.FromSets(antlist.NewSet(ident.Plain(1)), antlist.NewSet(ident.Single(2)))
	if !compatibleAll(n, antlist.Singleton(ident.Plain(n.ID())), lu) {
		t.Fatal("handshake marks must not block a Dmax=1 pair")
	}
}

func TestCompatibleOwnMembersEchoedBackDoNotInflate(t *testing.T) {
	// Node 2 in group {1,2} (Dmax=3) hears node 3 of group {3,4} whose
	// list echoes 1 and 2 back: the echo must not count toward q.
	n := NewNode(2, Config{Dmax: 3})
	n.LoadState(
		antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(1))),
		map[ident.NodeID]bool{1: true, 2: true}, nil, priority.New(2))
	lu := antlist.FromSets(
		antlist.NewSet(ident.Plain(3)),
		antlist.NewSet(ident.Plain(2), ident.Plain(4)),
		antlist.NewSet(ident.Plain(1)),
	)
	if !compatibleAll(n, antlist.Singleton(ident.Plain(n.ID())), lu) {
		t.Fatal("echoed own members must not block the 2+2 merge at Dmax=3")
	}
}

func TestCompatibleRejectsOversizedMerge(t *testing.T) {
	// Group {1,2} hearing group {3,4,5} (a 3-deep list) at Dmax=3:
	// merged line diameter would be 4 → incompatible.
	n := NewNode(2, Config{Dmax: 3})
	n.LoadState(
		antlist.FromSets(antlist.NewSet(ident.Plain(2)), antlist.NewSet(ident.Plain(1))),
		map[ident.NodeID]bool{1: true, 2: true}, nil, priority.New(2))
	lu := antlist.FromSets(
		antlist.NewSet(ident.Plain(3)),
		antlist.NewSet(ident.Plain(2), ident.Plain(4)),
		antlist.NewSet(ident.Plain(5)),
	)
	if compatibleAll(n, antlist.Singleton(ident.Plain(n.ID())), lu) {
		t.Fatal("oversized merge accepted")
	}
}

func TestCompatibleShortcutAcceptsViaLevelI(t *testing.T) {
	// Own group 3 deep (view members at positions 1..3), sender's foreign
	// content 2 deep (q=2), Dmax=4. Naive i=0: worst member distance
	// p+1+q = 6 > 4 → reject. With every node of a_v^2 a neighbor of the
	// sender (i=2): worst = max_k min(k,|k-2|) = 1, 1+1+2 = 4 ≤ 4 →
	// compatible.
	own := antlist.FromSets(
		antlist.NewSet(ident.Plain(1)),
		antlist.NewSet(ident.Plain(2)),
		antlist.NewSet(ident.Plain(3)),
		antlist.NewSet(ident.Plain(4)),
	)
	view := map[ident.NodeID]bool{1: true, 2: true, 3: true, 4: true}
	lu := antlist.FromSets(
		antlist.NewSet(ident.Plain(9)),
		antlist.NewSet(ident.Plain(1), ident.Plain(3)), // neighbor of v and of a_v^2={3}
		antlist.NewSet(ident.Plain(8)),
	)
	full := NewNode(1, Config{Dmax: 4})
	full.LoadState(own, view, nil, priority.New(1))
	if !compatibleAll(full, antlist.Singleton(ident.Plain(full.ID())), lu) {
		t.Fatal("shortcut case must be compatible in CompatFull")
	}
	naive := NewNode(1, Config{Dmax: 4, Compat: CompatNaiveSum})
	naive.LoadState(own, view, nil, priority.New(1))
	if compatibleAll(naive, antlist.Singleton(ident.Plain(naive.ID())), lu) {
		t.Fatal("naive mode must reject what only the shortcut allows")
	}
}

func TestCompatibleLoneNodeAcceptsAnything(t *testing.T) {
	// A node with no members behind it accepts any good list: overshoots
	// land at the node itself and the too-far contest resolves them.
	n := NewNode(1, Config{Dmax: 1})
	lu := antlist.FromSets(
		antlist.NewSet(ident.Plain(2)),
		antlist.NewSet(ident.Plain(1), ident.Plain(3)),
	)
	if !compatibleAll(n, antlist.Singleton(ident.Plain(n.ID())), lu) {
		t.Fatal("lone node must accept and let the contest arbitrate")
	}
}

func TestBuildMessageCarriesPriorities(t *testing.T) {
	r := newRing(graph.Line(2), Config{Dmax: 2})
	r.rounds(6)
	m := r.nodes[1].BuildMessage()
	if m.From != 1 || !m.List.Has(2) {
		t.Fatalf("message = %+v", m)
	}
	if r, ok := m.Rec(1); !ok || !r.HasPrio {
		t.Fatal("message must carry own priority")
	}
	if r, ok := m.Rec(2); !ok || !r.HasPrio {
		t.Fatal("message must carry neighbor priority")
	}
	if m.GroupPrio.IsInfinite() {
		t.Fatal("group priority missing")
	}
	if m.EncodedSize() <= 0 {
		t.Fatal("encoded size must be positive")
	}
}

func TestLoadStateDefaults(t *testing.T) {
	n := NewNode(1, Config{Dmax: 2})
	l := antlist.FromSets(antlist.NewSet(ident.Plain(1)), antlist.NewSet(ident.Plain(9)))
	n.LoadState(l, nil, nil, priority.P{Clock: 5, ID: 1})
	if !n.List().Equal(l) || !n.InView(1) || n.QuarantineOf(9) != 0 {
		t.Fatalf("LoadState defaults wrong: %v", n)
	}
	if n.Priority().Clock != 5 {
		t.Fatal("priority not loaded")
	}
}

func TestSelfAlwaysPlainAtPositionZero(t *testing.T) {
	r := newRing(graph.Ring(6), Config{Dmax: 3})
	for i := 0; i < 25; i++ {
		r.round()
		for v, n := range r.nodes {
			l := n.List()
			if l.Owner() != v {
				t.Fatalf("node %v list owner %v", v, l.Owner())
			}
			if e, ok := l.At(0).Get(v); !ok || e.Mark.Marked() {
				t.Fatalf("node %v not plain at position 0: %v", v, l)
			}
			if l.Len() > 3+1 {
				t.Fatalf("node %v list too long: %v", v, l)
			}
		}
	}
}

func TestViewSubsetOfPlainList(t *testing.T) {
	r := newRing(graph.Grid(3, 3), Config{Dmax: 4})
	for i := 0; i < 25; i++ {
		r.round()
		for v, n := range r.nodes {
			l := n.List()
			for u := range n.ViewSet() {
				pos, e := l.Position(u)
				if pos < 0 || e.Mark.Marked() {
					t.Fatalf("node %v: view member %v not plain in list %v", v, u, l)
				}
			}
		}
	}
}

func TestGhostNodeVanishes(t *testing.T) {
	// Corrupt node 1 with a list naming a node that does not exist; the
	// ghost must disappear (Proposition 2).
	r := newRing(graph.Line(3), Config{Dmax: 3})
	ghost := antlist.FromSets(
		antlist.NewSet(ident.Plain(1)),
		antlist.NewSet(ident.Plain(99)),
		antlist.NewSet(ident.Plain(98)),
	)
	r.nodes[1].LoadState(ghost, nil, nil, priority.New(1))
	r.rounds(25)
	for v, n := range r.nodes {
		if n.List().Has(99) || n.List().Has(98) {
			t.Fatalf("ghost survived on %v: %v", v, n.List())
		}
	}
	if !viewEq(r.view(2), 1, 2, 3) {
		t.Fatalf("line did not converge after corruption: %v", r.view(2))
	}
}

func TestOversizedCorruptListShrinks(t *testing.T) {
	// Proposition 1: lists longer than Dmax+1 disappear after one compute.
	n := NewNode(1, Config{Dmax: 2})
	sets := make([]antlist.Set, 8)
	sets[0] = antlist.NewSet(ident.Plain(1))
	for i := 1; i < 8; i++ {
		sets[i] = antlist.NewSet(ident.Plain(ident.NodeID(10 + i)))
	}
	n.LoadState(antlist.FromSets(sets...), nil, nil, priority.New(1))
	n.Compute()
	if n.List().Len() > 3 {
		t.Fatalf("list still oversized: %v", n.List())
	}
}

func TestStarTopologyAgreement(t *testing.T) {
	r := newRing(graph.Star(6), Config{Dmax: 2})
	r.rounds(30)
	want := r.view(1)
	if len(want) != 6 {
		t.Fatalf("star should be one group (diameter 2): %v", want)
	}
	for v := range r.nodes {
		if !reflect.DeepEqual(r.view(v), want) {
			t.Fatalf("disagreement on %v: %v vs %v", v, r.view(v), want)
		}
	}
}

func TestComputesCounter(t *testing.T) {
	n := NewNode(1, Config{Dmax: 2})
	n.Compute()
	n.Compute()
	if n.Computes() != 2 {
		t.Fatalf("Computes = %d", n.Computes())
	}
}
