package core

// The build-internal reference implementations: the map-based
// BuildMessage and learnPriorities paths this package used before the
// allocation-light rewrite, retained verbatim as a differential oracle.
// When Node.SelfCheck is set, every BuildMessage and every Compute
// cross-validates the new flat-record path against these and panics on
// the first divergence — the conformance suite (internal/conformance)
// runs whole churning engines in this mode. Nothing here is reachable
// from production paths.

import (
	"fmt"
	"sort"

	"repro/internal/antlist"
	"repro/internal/ident"
	"repro/internal/priority"
)

// refMessage is the pre-rewrite message shape: per-ID maps instead of the
// flat record slice.
type refMessage struct {
	From       ident.NodeID
	List       antlist.List
	Prios      map[ident.NodeID]priority.P
	GroupPrios map[ident.NodeID]priority.P
	GroupPrio  priority.P
	Quars      map[ident.NodeID]int
}

// refBuildMessage is the map-based broadcast assembly, verbatim (modulo
// reading the view/quarantine through the map views of the slice state).
func (n *Node) refBuildMessage() refMessage {
	view := n.ViewSet()
	count := n.list.NodeCount() + 1
	prios := make(map[ident.NodeID]priority.P, count)
	gprios := make(map[ident.NodeID]priority.P, count)
	for i := 0; i < n.list.Len(); i++ {
		for _, e := range n.list.At(i) {
			u := e.ID
			if p, ok := precGet(n.prios, u); ok {
				prios[u] = p
			} else {
				prios[u] = priority.Infinite
			}
			switch {
			case view[u]:
				gprios[u] = n.group
			default:
				if g, ok := precGet(n.gprs, u); ok {
					gprios[u] = g
				} else {
					gprios[u] = prios[u]
				}
			}
		}
	}
	prios[n.id] = n.self
	gprios[n.id] = n.group
	var quars map[ident.NodeID]int
	for _, qe := range n.quar {
		if qe.q > 0 {
			if quars == nil {
				quars = make(map[ident.NodeID]int)
			}
			quars[qe.id] = int(qe.q)
		}
	}
	return refMessage{
		From:       n.id,
		List:       n.list.Clone(),
		Prios:      prios,
		GroupPrios: gprios,
		GroupPrio:  n.group,
		Quars:      quars,
	}
}

// checkRefMessage asserts that the flat-record message m carries exactly
// the content the map-based path would have sent.
func (n *Node) checkRefMessage(m Message) {
	ref := n.refBuildMessage()
	prios, gprios, quars := m.PrioMaps()
	if m.From != ref.From || !m.List.Equal(ref.List) || m.GroupPrio != ref.GroupPrio {
		panic(fmt.Sprintf("core: SelfCheck BuildMessage header diverged: %v vs ref %v", m, ref))
	}
	if !prioMapsEqual(prios, ref.Prios) {
		panic(fmt.Sprintf("core: SelfCheck BuildMessage prios diverged at %v: %v vs ref %v", n.id, prios, ref.Prios))
	}
	if !prioMapsEqual(gprios, ref.GroupPrios) {
		panic(fmt.Sprintf("core: SelfCheck BuildMessage group prios diverged at %v: %v vs ref %v", n.id, gprios, ref.GroupPrios))
	}
	if !quarMapsEqual(quars, ref.Quars) {
		panic(fmt.Sprintf("core: SelfCheck BuildMessage quars diverged at %v: %v vs ref %v", n.id, quars, ref.Quars))
	}
	if got, want := m.EncodedSize(), 4+12+ref.List.EncodedSize()+12*len(ref.Prios)+12*len(ref.GroupPrios)+5*len(ref.Quars); got != want {
		panic(fmt.Sprintf("core: SelfCheck EncodedSize diverged at %v: %d vs ref %d", n.id, got, want))
	}
}

// checkRefLearnPriorities replays the map-based learnPriorities over the
// pre-round cache snapshots and asserts the node's live caches match.
func (n *Node) checkRefLearnPriorities(newList antlist.List, incs []incoming, prevPrios, prevGprs map[ident.NodeID]priority.P) {
	msgs := make(map[ident.NodeID]refMessage, len(incs))
	for i := range incs {
		m := incs[i].msg
		p, g, q := m.PrioMaps()
		msgs[m.From] = refMessage{
			From: m.From, List: m.List,
			Prios: p, GroupPrios: g, GroupPrio: m.GroupPrio, Quars: q,
		}
	}
	refLearnPriorities(n.id, n.self, newList, msgs, prevPrios, prevGprs)
	if !prioMapsEqual(precMap(n.prios), prevPrios) {
		panic(fmt.Sprintf("core: SelfCheck learnPriorities prios diverged at %v (c%d): %v vs ref %v", n.id, n.computes, n.prios, prevPrios))
	}
	if !prioMapsEqual(precMap(n.gprs), prevGprs) {
		panic(fmt.Sprintf("core: SelfCheck learnPriorities gprs diverged at %v (c%d): %v vs ref %v", n.id, n.computes, n.gprs, prevGprs))
	}
}

// refLearnPriorities is the map-based priority learning, verbatim: it
// mutates prios/gprs (the pre-round snapshots) exactly as the pre-rewrite
// code mutated the node's live caches — ascending sender iteration, map
// probes, and List.Position re-scans included.
func refLearnPriorities(id ident.NodeID, self priority.P, newList antlist.List, msgs map[ident.NodeID]refMessage, prios, gprs map[ident.NodeID]priority.P) {
	senders := make([]ident.NodeID, 0, len(msgs))
	for u := range msgs {
		senders = append(senders, u)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })

	for li := 0; li < newList.Len(); li++ {
		for _, e := range newList.At(li) {
			u := e.ID
			best, found := priority.Infinite, false
			for _, sid := range senders {
				if p, ok := msgs[sid].Prios[u]; ok && (!found || best.Less(p)) {
					best, found = p, true
				}
			}
			if found {
				prios[u] = best
			}
			bestPos := -1
			var gbest priority.P
			for _, sid := range senders {
				msg := msgs[sid]
				p, ok := msg.GroupPrios[u]
				if !ok {
					continue
				}
				pos, _ := msg.List.Position(u)
				if pos < 0 {
					continue
				}
				if bestPos < 0 || pos < bestPos {
					bestPos, gbest = pos, p
				}
			}
			if bestPos >= 0 {
				gprs[u] = gbest
			}
		}
	}
	prios[id] = self
	for k := range prios {
		if k != id && !newList.Has(k) {
			delete(prios, k)
		}
	}
	for k := range gprs {
		if k != id && !newList.Has(k) {
			delete(gprs, k)
		}
	}
}

func prioMapsEqual(a, b map[ident.NodeID]priority.P) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func quarMapsEqual(a, b map[ident.NodeID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

