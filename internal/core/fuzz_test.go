package core_test

// Fuzz target for the protocol node's message path: arbitrary bytes are
// decoded as a wire frame (the codec rejects malformed frames — frames
// that parse are the protocol's actual attack surface), fed through
// Receive and Compute with the SelfCheck reference oracle armed, and the
// node's own broadcast is round-tripped through the codec. The node must
// never panic, never break its structural invariants, and its broadcast
// must survive encode/decode semantically intact.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fuzzSeeds collects realistic frames from a short live run plus a few
// pathological hand-built ones.
func fuzzSeeds(f *testing.F) {
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 3}, Seed: 4}, graph.Line(5))
	s.StepTicks(12)
	for _, n := range s.Nodes {
		f.Add(wire.Encode(n.BuildMessage()))
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x47, 0x01})
}

func FuzzReceiveComputeBuildRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.Decode(data)
		if err != nil {
			return // malformed frame: rejected before the protocol sees it
		}
		n := core.NewNode(1, core.Config{Dmax: 3})
		n.SelfCheck = true // cross-validate against the reference oracle
		n.Receive(m)
		n.Compute()

		// Structural invariants must hold whatever the frame contained.
		if !n.InView(1) {
			t.Fatal("self missing from view")
		}
		l := n.List()
		if l.Owner() != 1 {
			t.Fatalf("list owner %v: %v", l.Owner(), l)
		}
		if l.Len() > 3+1 {
			t.Fatalf("list too long: %v", l)
		}
		view := n.View()
		for i := 1; i < len(view); i++ {
			if view[i-1] >= view[i] {
				t.Fatalf("view not strictly ascending: %v", view)
			}
		}

		// The node's own broadcast round-trips through the codec.
		out := n.BuildMessage()
		if out.EncodedSize() <= 0 {
			t.Fatal("non-positive encoded size")
		}
		dec, err := wire.Decode(wire.Encode(out))
		if err != nil {
			t.Fatalf("own broadcast rejected: %v", err)
		}
		if dec.From != out.From || !dec.List.Equal(out.List) || dec.GroupPrio != out.GroupPrio {
			t.Fatalf("round trip header mismatch: %+v vs %+v", dec, out)
		}
		dp, dg, dq := dec.PrioMaps()
		op, og, oq := out.PrioMaps()
		if !reflect.DeepEqual(dp, op) || !reflect.DeepEqual(dg, og) {
			t.Fatalf("round trip priorities mismatch")
		}
		if len(dq) != len(oq) {
			t.Fatalf("round trip quars mismatch: %v vs %v", dq, oq)
		}

		// A second compute with no traffic detects the departure and
		// shrinks back to a singleton — and must keep the oracle happy.
		n.Compute()
		if got := n.View(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("silent round must shrink to singleton, got %v", got)
		}

		// Feeding the node its own broadcast (spoofed sender) and a copy
		// under a different sender must also hold up.
		spoof := out
		spoof.From = ident.NodeID(2)
		n.Receive(spoof)
		n.Compute()
	})
}
