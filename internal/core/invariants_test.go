package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/antlist"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/priority"
)

// checkInvariants asserts the structural invariants every node must keep
// at every reachable state, whatever the message schedule:
//
//	I1: the list's position 0 is exactly the plain self entry;
//	I2: the list never exceeds Dmax+1 positions;
//	I3: no node appears twice in the list;
//	I4: the view contains the node itself;
//	I5: every view member is a plain entry of the list with quarantine 0;
//	I6: the group priority never beats the best member priority.
func checkInvariants(t *testing.T, n *Node) {
	t.Helper()
	l := n.List()
	if l.Owner() != n.ID() {
		t.Fatalf("I1: owner %v on node %v (list %v)", l.Owner(), n.ID(), l)
	}
	if e, ok := l.At(0).Get(n.ID()); !ok || e.Mark.Marked() || len(l.At(0)) != 1 {
		t.Fatalf("I1: position 0 wrong on %v: %v", n.ID(), l)
	}
	if l.Len() > n.Config().Dmax+1 {
		t.Fatalf("I2: list too long on %v: %v", n.ID(), l)
	}
	seen := map[ident.NodeID]bool{}
	for _, u := range l.IDs() {
		if seen[u] {
			t.Fatalf("I3: duplicate %v in %v", u, l)
		}
		seen[u] = true
	}
	if !n.InView(n.ID()) {
		t.Fatalf("I4: self missing from view on %v", n.ID())
	}
	best := priority.Infinite
	for u := range n.ViewSet() {
		pos, e := l.Position(u)
		if u != n.ID() && (pos < 0 || e.Mark.Marked()) {
			t.Fatalf("I5: view member %v not plain in list on %v: %v", u, n.ID(), l)
		}
		if q := n.QuarantineOf(u); q != 0 {
			t.Fatalf("I5: view member %v has quarantine %d on %v", u, q, n.ID())
		}
		_ = best
	}
	if n.GroupPriority().IsInfinite() {
		t.Fatalf("I6: infinite group priority on %v", n.ID())
	}
	if n.Priority().Less(n.GroupPriority()) {
		t.Fatalf("I6: group priority %v worse than own %v on %v",
			n.GroupPriority(), n.Priority(), n.ID())
	}
}

// TestQuickInvariantsUnderRandomSchedules runs random topologies under
// random lossy asynchronous schedules and checks the invariants at every
// compute of every node.
func TestQuickInvariantsUnderRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random small topology.
		var g *graph.G
		switch rng.Intn(4) {
		case 0:
			g = graph.Line(3 + rng.Intn(6))
		case 1:
			g = graph.Ring(4 + rng.Intn(6))
		case 2:
			g = graph.Clusters(2, 3, rng.Intn(2), false)
		default:
			g = graph.RandomGeometric(8, 10, 4, rng)
		}
		cfg := Config{Dmax: 1 + rng.Intn(4)}
		nodes := map[ident.NodeID]*Node{}
		for _, v := range g.Nodes() {
			nodes[v] = NewNode(v, cfg)
		}
		// Random asynchronous schedule with loss: at every step each node
		// broadcasts with probability 0.7 (each delivery dropped with
		// probability 0.2) and computes with probability 0.5.
		for step := 0; step < 60; step++ {
			msgs := map[ident.NodeID]Message{}
			for v, n := range nodes {
				if rng.Float64() < 0.7 {
					msgs[v] = n.BuildMessage()
				}
			}
			for v, m := range msgs {
				for _, u := range g.Neighbors(v) {
					if rng.Float64() < 0.2 {
						continue
					}
					nodes[u].Receive(m)
				}
			}
			for _, v := range g.Nodes() {
				if rng.Float64() < 0.5 {
					nodes[v].Compute()
					checkInvariants(t, nodes[v])
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvariantsFromCorruptedStates starts nodes in adversarial
// states and checks the first computes repair all invariants.
func TestQuickInvariantsFromCorruptedStates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Dmax: 2 + rng.Intn(3)}
		g := graph.Line(4)
		nodes := map[ident.NodeID]*Node{}
		for _, v := range g.Nodes() {
			n := NewNode(v, cfg)
			// Random garbage list (may violate every invariant).
			depth := 1 + rng.Intn(cfg.Dmax+4)
			sets := make([]antlist.Set, depth)
			sets[0] = antlist.NewSet(ident.Plain(v))
			for i := 1; i < depth; i++ {
				s := antlist.Set{}
				for j := 0; j <= rng.Intn(3); j++ {
					s = s.Add(ident.Entry{
						ID:   ident.NodeID(1 + rng.Uint32()%300),
						Mark: ident.Mark(rng.Intn(3)),
					})
				}
				sets[i] = s
			}
			n.LoadState(antlist.FromSets(sets...), nil, nil, priority.P{Clock: rng.Uint64() % 1000, ID: v})
			nodes[v] = n
		}
		for step := 0; step < 12; step++ {
			msgs := map[ident.NodeID]Message{}
			for v, n := range nodes {
				msgs[v] = n.BuildMessage()
			}
			for v := range nodes {
				for _, u := range g.Neighbors(v) {
					nodes[v].Receive(msgs[u])
				}
			}
			for _, n := range nodes {
				n.Compute()
				checkInvariants(t, n)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeNeverPanicsOnHostileMessages feeds adversarial message
// contents (malformed lists, alien marks, absurd priorities) directly.
func TestComputeNeverPanicsOnHostileMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := NewNode(1, Config{Dmax: 3})
	for i := 0; i < 3000; i++ {
		depth := rng.Intn(8)
		sets := make([]antlist.Set, depth)
		for p := 0; p < depth; p++ {
			s := antlist.Set{}
			for j := 0; j < rng.Intn(4); j++ {
				s = s.Add(ident.Entry{
					ID:   ident.NodeID(rng.Uint32() % 16),
					Mark: ident.Mark(rng.Intn(3)),
				})
			}
			sets[p] = s
		}
		l := antlist.FromSets(sets...)
		m := Message{
			From: ident.NodeID(2 + rng.Uint32()%4),
			List: l,
			Recs: RecsFromMaps(l,
				map[ident.NodeID]priority.P{ident.NodeID(rng.Uint32() % 8): {Clock: rng.Uint64()}},
				nil,
				map[ident.NodeID]int{ident.NodeID(rng.Uint32() % 8): rng.Intn(10) - 3}),
			GroupPrio: priority.P{Clock: rng.Uint64(), ID: ident.NodeID(rng.Uint32())},
		}
		n.Receive(m)
		if i%3 == 0 {
			n.Compute()
			checkInvariants(t, n)
		}
	}
}
