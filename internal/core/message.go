package core

import (
	"slices"

	"repro/internal/antlist"
	"repro/internal/ident"
	"repro/internal/priority"
)

// Message is one GRP broadcast: the sender's ordered list of ancestor
// sets with, for every node appearing in it, that node's priority and the
// priority of its group as known by the sender (the paper sends "listv
// with priorities"; per-entry group priorities are how "group priorities
// are compared" across several hops — see DESIGN.md §3).
//
// The metadata rides in Recs, one flat record per list entry (plus the
// sender itself when a corrupted list omits it), sorted by (ID, Pos).
// This replaced the three per-message maps (node priorities, group
// priorities, quarantines) of the previous representation: one slice
// allocation instead of three map builds per broadcast, binary-search
// lookups instead of map probes on the receive path, and the entry's
// list position carried inline so receivers never re-scan the list for
// it. Both the message and everything it references are immutable once
// built — BuildMessage shares the sender's own list rather than cloning
// it, and drivers cache and share messages between computes (see
// Node.Version).
type Message struct {
	From      ident.NodeID
	List      antlist.List
	Recs      []PrioRec
	GroupPrio priority.P
}

// PrioRec is the per-node metadata record of a Message.
type PrioRec struct {
	ID   ident.NodeID
	Mark ident.Mark
	// HasPrio/HasGroupPrio report whether the sender advertised the
	// corresponding priority. BuildMessage always sets both; decoded
	// frames may carry either half.
	HasPrio      bool
	HasGroupPrio bool
	// Pos is the smallest position at which ID appears in List, or -1
	// when the record's ID is not in the list (the sender's own record on
	// a corrupted list, or map-only records of a decoded frame).
	Pos int16
	// Quar is the remaining quarantine of a not-yet admitted entry, or -1
	// when the sender holds no quarantine record for it.
	Quar      int16
	Prio      priority.P
	GroupPrio priority.P
}

// Rec returns the first record for id (the one with the smallest list
// position) and whether one exists. A linear scan over the ascending
// slice beats a binary search at protocol record counts (a handful of
// entries — one group's worth of nodes); the early exit keeps misses
// cheap too.
func (m Message) Rec(id ident.NodeID) (PrioRec, bool) {
	for i := range m.Recs {
		switch {
		case m.Recs[i].ID == id:
			return m.Recs[i], true
		case m.Recs[i].ID > id:
			return PrioRec{}, false
		}
	}
	return PrioRec{}, false
}

// sortRecs orders records by (ID, Pos) — the invariant Rec relies on.
func sortRecs(recs []PrioRec) {
	slices.SortFunc(recs, func(a, b PrioRec) int {
		switch {
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		case a.Pos != b.Pos:
			if a.Pos < b.Pos {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
}

// EncodedSize returns the wire size of the message in bytes (frame header
// + list + two priority records per advertised node + group priority +
// quarantine records), used by the overhead experiment. Duplicate IDs (a
// corrupted list can repeat a node) count once, matching the wire codec's
// map-shaped frame sections.
func (m Message) EncodedSize() int {
	nPrio, nGPrio, nQuar := 0, 0, 0
	prev := ident.None
	first := true
	for _, r := range m.Recs {
		if !first && r.ID == prev {
			continue
		}
		first, prev = false, r.ID
		if r.HasPrio {
			nPrio++
		}
		if r.HasGroupPrio {
			nGPrio++
		}
		if r.Quar >= 0 {
			nQuar++
		}
	}
	// from(4) + groupPrio(12) + list + 12 bytes per priority record +
	// 5 bytes per quarantine record.
	return 4 + 12 + m.List.EncodedSize() + 12*nPrio + 12*nGPrio + 5*nQuar
}

// PrioMaps explodes the records into the map shape of the previous
// message representation: node priorities, group priorities, and the
// positive quarantines. The wire codec's frame sections, the reference
// oracle, and tests consume this; the hot path never does.
func (m Message) PrioMaps() (prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) {
	prios = make(map[ident.NodeID]priority.P)
	gprios = make(map[ident.NodeID]priority.P)
	for _, r := range m.Recs {
		if r.HasPrio {
			if _, dup := prios[r.ID]; !dup {
				prios[r.ID] = r.Prio
			}
		}
		if r.HasGroupPrio {
			if _, dup := gprios[r.ID]; !dup {
				gprios[r.ID] = r.GroupPrio
			}
		}
		if r.Quar >= 0 {
			if _, dup := quars[r.ID]; !dup {
				if quars == nil {
					quars = make(map[ident.NodeID]int)
				}
				quars[r.ID] = int(r.Quar)
			}
		}
	}
	return prios, gprios, quars
}

// RecsFromMaps builds the record slice for a message assembled from the
// map shape (the wire codec's decode path and tests): one record per list
// entry plus one per map-only ID, sorted by (ID, Pos). Quarantine values
// are clamped to the record range.
func RecsFromMaps(list antlist.List, prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) []PrioRec {
	recs := make([]PrioRec, 0, list.NodeCount()+len(prios))
	inList := make(map[ident.NodeID]bool, list.NodeCount())
	for i := 0; i < list.Len(); i++ {
		for _, e := range list.At(i) {
			inList[e.ID] = true
			r := PrioRec{ID: e.ID, Mark: e.Mark, Pos: int16(i), Quar: -1}
			fillFromMaps(&r, prios, gprios, quars)
			recs = append(recs, r)
		}
	}
	addOnly := func(id ident.NodeID) {
		if inList[id] {
			return
		}
		inList[id] = true
		r := PrioRec{ID: id, Pos: -1, Quar: -1}
		fillFromMaps(&r, prios, gprios, quars)
		recs = append(recs, r)
	}
	for _, id := range sortedKeysP(prios) {
		addOnly(id)
	}
	for _, id := range sortedKeysP(gprios) {
		addOnly(id)
	}
	for _, id := range sortedKeysQ(quars) {
		addOnly(id)
	}
	sortRecs(recs)
	// Records for a duplicated ID must agree on the smallest position the
	// maps-era code observed via List.Position: they already do, because
	// Rec returns the first (smallest-Pos) record.
	return recs
}

func fillFromMaps(r *PrioRec, prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) {
	if p, ok := prios[r.ID]; ok {
		r.HasPrio, r.Prio = true, p
	}
	if g, ok := gprios[r.ID]; ok {
		r.HasGroupPrio, r.GroupPrio = true, g
	}
	if q, ok := quars[r.ID]; ok {
		if q < 0 {
			q = 0
		}
		if q > 32767 {
			q = 32767
		}
		r.Quar = int16(q)
	}
}

func sortedKeysP(m map[ident.NodeID]priority.P) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

func sortedKeysQ(m map[ident.NodeID]int) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
