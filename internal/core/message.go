package core

import (
	"slices"

	"repro/internal/antlist"
	"repro/internal/ident"
	"repro/internal/priority"
)

// Message is one GRP broadcast: the sender's ordered list of ancestor
// sets with, for every node appearing in it, that node's priority and the
// priority of its group as known by the sender (the paper sends "listv
// with priorities"; per-entry group priorities are how "group priorities
// are compared" across several hops — see DESIGN.md §3).
//
// The metadata rides in Recs, one flat record per list entry (plus the
// sender itself when a corrupted list omits it), sorted by (ID, Pos).
// This replaced the three per-message maps (node priorities, group
// priorities, quarantines) of the previous representation: one slice
// allocation instead of three map builds per broadcast, binary-search
// lookups instead of map probes on the receive path, and the entry's
// list position carried inline so receivers never re-scan the list for
// it. Both the message and everything it references are immutable once
// built — BuildMessage shares the sender's own list rather than cloning
// it, and drivers cache and share messages between computes (see
// Node.Version).
type Message struct {
	From      ident.NodeID
	List      antlist.List
	Recs      []PrioRec
	GroupPrio priority.P
}

// PrioRec is the per-node metadata record of a Message.
type PrioRec struct {
	ID   ident.NodeID
	Mark ident.Mark
	// HasPrio/HasGroupPrio report whether the sender advertised the
	// corresponding priority. BuildMessage always sets both; decoded
	// frames may carry either half.
	HasPrio      bool
	HasGroupPrio bool
	// Pos is the smallest position at which ID appears in List, or -1
	// when the record's ID is not in the list (the sender's own record on
	// a corrupted list, or map-only records of a decoded frame).
	Pos int16
	// Quar is the remaining quarantine of a not-yet admitted entry, or -1
	// when the sender holds no quarantine record for it.
	Quar      int16
	Prio      priority.P
	GroupPrio priority.P
}

// Digest returns a 64-bit content hash of everything the wire codec
// would carry for this message: sender, group priority, the full list
// (entries with marks, position structure included), and every record
// field — the Has* flags too, since an absent priority changes receiver
// behavior just like a different one. Two messages with equal digests
// are indistinguishable to any receiver, whether they were built by
// BuildMessage or forged by a fault injector, so any field added to
// the codec must be folded in here as well.
func (m Message) Digest() uint64 {
	return m.MaskedDigest(ident.None, nil, false)
}

// MaskedDigest is Digest restricted to the fields a receiver's ComputeIn
// can actually read when inRead reports which node IDs the receiver
// resolves priority records for (nil means all — the full Digest, which
// ignores dropList).
//
// The engine's fixpoint memo (DESIGN.md §2i) keys inbox content on this
// projection rather than the raw bytes, because a broadcast routinely
// carries content its receiver provably ignores: a border node re-
// advertises the ticking isolation clock of a commuter it double-marked,
// and every receiver that strips marked entries on arrival
// (cleanReceived) never reads that record's priorities — hashing them
// would make the inbox digest change every round and starve the memo for
// the entire second ring around every mover. The unmasked base must
// cover every field ComputeIn reads regardless of the read set:
//
//   - From is always hashed. The message-level GroupPrio is not: its
//     only reader is Compute's preference sort, and InboxReadDigest
//     pins that sort's *outcome* instead by folding the buffered
//     messages in sorted order — hashing the value itself would let a
//     held lonely neighbor's ticking clock (group priority = own
//     priority when alone) churn the digest every round without ever
//     changing the sort. (The full Digest, inRead == nil, hashes it.)
//   - the list feeds cleanReceived/goodList/safePrefix and the fold
//     itself, but only ever *through* cleanReceived's deletion pass —
//     nothing reads the raw bytes — so the mask hashes its cleaned
//     projection: marked entries are dropped (except a single-marked
//     receiver entry, the handshake signal; a double-marked receiver
//     entry is a rejection and cleans away like any other mark), while
//     the per-set structure survives so that a set emptied by the
//     deletions still reads as the hole goodList rejects. Hashing raw
//     marks would defeat the memo around every mover: a border node's
//     bookkeeping marks on a commuter it is aging out flap every round
//     with no receiver able to observe the difference. The projection
//     is skipped entirely when dropList is set, which the
//     receiver asserts for senders held in its boundary memory: the
//     rejected-until branch replaces the cleaned list with
//     Singleton(Double(u)) before anything reads it, so the entire list
//     of a held neighbor is dead content (cleanReceived does run on it
//     first, but it is pure and its result is overwritten). The
//     assertion is safe on both memo paths: a stored proof comes from a
//     quiet round, where the expiry filter kept every memory entry (an
//     eviction sets rejectedMoved and the round is not quiet), and a
//     replay runs under Computes() < HoldHorizon(), where the filter
//     keeps them again. Dropping it is what lets a node hold a boundary
//     against a neighbor whose own neighborhood keeps evolving: the
//     neighbor's broadcast churns every round, but none of that churn is
//     readable through an auto-rejected message;
//   - records of untracked nodes are dropped whole under the mask. Their
//     only readers are the two quarantine inheritance passes, and those
//     key the heard-min scratch by the record's own ID — an untracked
//     record can only produce heard entries under an untracked key,
//     which the quarantine rebuild (iterating the fold result, equal to
//     the receiver's own list in any quiet round) never looks up. Every
//     sender is tracked in a proof round (the fold keeps each sender at
//     least marked, and a quiet round reproduces the list), so the
//     sender's own record is never dropped by this rule;
//   - tracked records keep ID, Mark and Pos, which feed the record-
//     lookup scans and the group-priority provider election (smallest
//     Pos wins). Quar is excluded even for them: its only consumer
//     is the inheritance min, which can move a receiver countdown only
//     when that countdown is positive or the entry is fresh — and either
//     one changes the quarantine slice, so the round is not quiet and no
//     memo proof is ever stored for (or keyed to) such a state. In any
//     proof-holding state every tracked quarantine is zero and already
//     known, where max(heard-1, 0) < 0 never fires, whatever was heard —
//     while hashing the raw countdowns would churn the digest for Dmax
//     rounds around every admission;
//   - a record's priority values and Has* flags are only ever read
//     through Rec(u) lookups for nodes u the receiver tracks — its own
//     list plus itself — which is exactly the inRead projection. (The
//     too-far contest reads priorities of untracked nodes, so proofs are
//     never taken from rounds that entered it: Node.RoundOverflowed.)
//
// Record marks of nodes other than the receiver are likewise hashed as
// a marked/plain bit, not as their three-way grade: every read of a
// record mark goes through Mark.Marked() (the quarantine passes and
// safePrefix's Mark.Max merge, which feeds a Marked() filter on the
// very next line), so the grade of a non-self record is unobservable.
//
// Lies and genuine frames hash identically by construction: the digest
// sees only message content, never its provenance.
func (m Message) MaskedDigest(self ident.NodeID, inRead func(ident.NodeID) bool, dropList bool) uint64 {
	h := digSeed
	mix := func(v uint64) { h = digMix(h, v) }
	markOf := func(id ident.NodeID, mk ident.Mark) uint64 {
		if inRead == nil || id == self {
			return uint64(mk)
		}
		if mk.Marked() {
			return 1
		}
		return 0
	}
	mix(uint64(m.From))
	if inRead == nil {
		mix(m.GroupPrio.Clock)
		mix(uint64(m.GroupPrio.ID))
	}
	if inRead == nil {
		mix(uint64(m.List.Len()))
		for i := 0; i < m.List.Len(); i++ {
			set := m.List.At(i)
			mix(uint64(len(set)))
			for _, e := range set {
				mix(uint64(e.ID))
				mix(uint64(e.Mark))
			}
		}
	} else if !dropList {
		// Hash the list as cleanReceived's deletion pass would leave it:
		// marked entries dropped except a single-marked receiver, per-set
		// structure kept (an emptied set is the hole goodList rejects).
		// Normalize is a pure function of this projection, and the raw
		// list has no other reader.
		keepEnt := func(e ident.Entry) bool {
			return !e.Mark.Marked() || (e.ID == self && e.Mark == ident.MarkSingle)
		}
		mix(uint64(m.List.Len()))
		for i := 0; i < m.List.Len(); i++ {
			set := m.List.At(i)
			kept := uint64(0)
			for _, e := range set {
				if keepEnt(e) {
					kept++
				}
			}
			mix(kept)
			for _, e := range set {
				if keepEnt(e) {
					mix(uint64(e.ID))
					mix(uint64(e.Mark))
				}
			}
		}
	}
	if inRead == nil {
		mix(uint64(len(m.Recs)))
	}
	for _, r := range m.Recs {
		if inRead != nil && !inRead(r.ID) {
			continue
		}
		mix(uint64(r.ID))
		mix(markOf(r.ID, r.Mark))
		if inRead == nil {
			mix(uint64(uint16(r.Pos))<<16 | uint64(uint16(r.Quar)))
		} else {
			mix(uint64(uint16(r.Pos)))
		}
		f := uint64(0)
		if r.HasPrio {
			f |= 1
		}
		if r.HasGroupPrio {
			f |= 2
		}
		mix(f)
		mix(r.Prio.Clock)
		mix(uint64(r.Prio.ID))
		mix(r.GroupPrio.Clock)
		mix(uint64(r.GroupPrio.ID))
	}
	return h
}

// digSeed/digMix are the mixing core shared by the content digests
// (Message.Digest, Node.StateDigest, Node.InboxReadDigest): one 64-bit
// word folded in per call with two multiply–xorshift rounds (the
// splitmix64 finalizer's structure). The digests sit on the engine's
// per-round skip path, so the fold must be cheap and inlinable — the
// byte-wise FNV-1a loop this replaces cost eight multiplies per word
// and, containing a loop, was never inlined into the fold sites.
// Digests are identity helpers for memoization, never security
// boundaries.
const digSeed = uint64(14695981039346656037)

func digMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Rec returns the first record for id (the one with the smallest list
// position) and whether one exists. A linear scan over the ascending
// slice beats a binary search at protocol record counts (a handful of
// entries — one group's worth of nodes); the early exit keeps misses
// cheap too.
func (m Message) Rec(id ident.NodeID) (PrioRec, bool) {
	for i := range m.Recs {
		switch {
		case m.Recs[i].ID == id:
			return m.Recs[i], true
		case m.Recs[i].ID > id:
			return PrioRec{}, false
		}
	}
	return PrioRec{}, false
}

// sortRecs orders records by (ID, Pos) — the invariant Rec relies on.
func sortRecs(recs []PrioRec) {
	slices.SortFunc(recs, func(a, b PrioRec) int {
		switch {
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		case a.Pos != b.Pos:
			if a.Pos < b.Pos {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
}

// EncodedSize returns the wire size of the message in bytes (frame header
// + list + two priority records per advertised node + group priority +
// quarantine records), used by the overhead experiment. Duplicate IDs (a
// corrupted list can repeat a node) count once, matching the wire codec's
// map-shaped frame sections.
func (m Message) EncodedSize() int {
	nPrio, nGPrio, nQuar := 0, 0, 0
	prev := ident.None
	first := true
	for _, r := range m.Recs {
		if !first && r.ID == prev {
			continue
		}
		first, prev = false, r.ID
		if r.HasPrio {
			nPrio++
		}
		if r.HasGroupPrio {
			nGPrio++
		}
		if r.Quar >= 0 {
			nQuar++
		}
	}
	// from(4) + groupPrio(12) + list + 12 bytes per priority record +
	// 5 bytes per quarantine record.
	return 4 + 12 + m.List.EncodedSize() + 12*nPrio + 12*nGPrio + 5*nQuar
}

// PrioMaps explodes the records into the map shape of the previous
// message representation: node priorities, group priorities, and the
// positive quarantines. The wire codec's frame sections, the reference
// oracle, and tests consume this; the hot path never does.
func (m Message) PrioMaps() (prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) {
	prios = make(map[ident.NodeID]priority.P)
	gprios = make(map[ident.NodeID]priority.P)
	for _, r := range m.Recs {
		if r.HasPrio {
			if _, dup := prios[r.ID]; !dup {
				prios[r.ID] = r.Prio
			}
		}
		if r.HasGroupPrio {
			if _, dup := gprios[r.ID]; !dup {
				gprios[r.ID] = r.GroupPrio
			}
		}
		if r.Quar >= 0 {
			if _, dup := quars[r.ID]; !dup {
				if quars == nil {
					quars = make(map[ident.NodeID]int)
				}
				quars[r.ID] = int(r.Quar)
			}
		}
	}
	return prios, gprios, quars
}

// RecsFromMaps builds the record slice for a message assembled from the
// map shape (the wire codec's decode path and tests): one record per list
// entry plus one per map-only ID, sorted by (ID, Pos). Quarantine values
// are clamped to the record range.
func RecsFromMaps(list antlist.List, prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) []PrioRec {
	recs := make([]PrioRec, 0, list.NodeCount()+len(prios))
	inList := make(map[ident.NodeID]bool, list.NodeCount())
	for i := 0; i < list.Len(); i++ {
		for _, e := range list.At(i) {
			inList[e.ID] = true
			r := PrioRec{ID: e.ID, Mark: e.Mark, Pos: int16(i), Quar: -1}
			fillFromMaps(&r, prios, gprios, quars)
			recs = append(recs, r)
		}
	}
	addOnly := func(id ident.NodeID) {
		if inList[id] {
			return
		}
		inList[id] = true
		r := PrioRec{ID: id, Pos: -1, Quar: -1}
		fillFromMaps(&r, prios, gprios, quars)
		recs = append(recs, r)
	}
	for _, id := range sortedKeysP(prios) {
		addOnly(id)
	}
	for _, id := range sortedKeysP(gprios) {
		addOnly(id)
	}
	for _, id := range sortedKeysQ(quars) {
		addOnly(id)
	}
	sortRecs(recs)
	// Records for a duplicated ID must agree on the smallest position the
	// maps-era code observed via List.Position: they already do, because
	// Rec returns the first (smallest-Pos) record.
	return recs
}

func fillFromMaps(r *PrioRec, prios, gprios map[ident.NodeID]priority.P, quars map[ident.NodeID]int) {
	if p, ok := prios[r.ID]; ok {
		r.HasPrio, r.Prio = true, p
	}
	if g, ok := gprios[r.ID]; ok {
		r.HasGroupPrio, r.GroupPrio = true, g
	}
	if q, ok := quars[r.ID]; ok {
		if q < 0 {
			q = 0
		}
		if q > 32767 {
			q = 32767
		}
		r.Quar = int16(q)
	}
}

func sortedKeysP(m map[ident.NodeID]priority.P) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

func sortedKeysQ(m map[ident.NodeID]int) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
