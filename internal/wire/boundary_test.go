package wire

import (
	"bytes"
	"testing"

	"repro/internal/ident"
)

func sampleBatch() BoundaryBatch {
	return BoundaryBatch{
		Shard: 3,
		Seq:   4242,
		Entries: []BoundaryEntry{
			{Sender: 7, Gen: 7, Ver: 19, Frame: Encode(sampleMessage())},
			{Sender: 9, Gen: 2, Ver: 5}, // elided
			{Sender: 11, Gen: 11, Ver: 1<<63 | 3, Frame: Encode(sampleMessage())},
		},
	}
}

func TestBoundaryBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	buf := AppendBoundaryBatch(nil, b)
	got, err := DecodeBoundaryBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != b.Shard || got.Seq != b.Seq || len(got.Entries) != len(b.Entries) {
		t.Fatalf("header diverged: %+v vs %+v", got, b)
	}
	for i, e := range b.Entries {
		g := got.Entries[i]
		if g.Sender != e.Sender || g.Gen != e.Gen || g.Ver != e.Ver || !bytes.Equal(g.Frame, e.Frame) {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, g, e)
		}
		if e.Frame != nil {
			if _, err := Decode(g.Frame); err != nil {
				t.Fatalf("entry %d frame does not decode: %v", i, err)
			}
		}
	}
	// Re-encoding the decoded batch is the identity.
	if re := AppendBoundaryBatch(nil, got); !bytes.Equal(re, buf) {
		t.Fatalf("re-encode not identical:\n 1st %x\n 2nd %x", buf, re)
	}
}

func TestBoundaryBatchEmpty(t *testing.T) {
	buf := AppendBoundaryBatch(nil, BoundaryBatch{Shard: 1, Seq: 9})
	got, err := DecodeBoundaryBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 1 || got.Seq != 9 || len(got.Entries) != 0 {
		t.Fatalf("empty batch diverged: %+v", got)
	}
}

func TestBoundaryBatchRejectsTruncationEverywhere(t *testing.T) {
	buf := AppendBoundaryBatch(nil, sampleBatch())
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeBoundaryBatch(buf[:i]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(buf))
		}
	}
}

func TestBoundaryBatchRejectsTrailingGarbage(t *testing.T) {
	buf := AppendBoundaryBatch(nil, sampleBatch())
	if _, err := DecodeBoundaryBatch(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestBoundaryBatchRejectsBadMagic(t *testing.T) {
	buf := AppendBoundaryBatch(nil, sampleBatch())
	for _, i := range []int{0, 1, 2} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xff
		if _, err := DecodeBoundaryBatch(bad); err == nil {
			t.Fatalf("corrupted header byte %d accepted", i)
		}
	}
}

// FuzzDecodeBoundaryFrame models a hostile or failing transport on the
// distributed boundary path, mirroring FuzzDecodeHostile for the GRP
// frame codec: starting from a valid boundary batch it applies
// truncation at an arbitrary byte plus a single bit flip, and requires
// the decoder to either reject or return a batch whose structure is
// self-consistent — every accepted batch must re-encode, and every
// carried frame must itself survive the GRP decoder's own validation or
// be rejected there (never a panic at either layer).
func FuzzDecodeBoundaryFrame(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(17), uint16(3))
	f.Add(uint16(1<<15), uint16(1<<15))
	base := AppendBoundaryBatch(nil, sampleBatch())
	f.Fuzz(func(t *testing.T, cut uint16, flip uint16) {
		data := append([]byte(nil), base...)
		data = data[:int(cut)%(len(data)+1)]
		if len(data) > 0 {
			bit := int(flip) % (8 * len(data))
			data[bit/8] ^= 1 << (bit % 8)
		}
		b, err := DecodeBoundaryBatch(data)
		if err != nil {
			return
		}
		for _, e := range b.Entries {
			if e.Sender == ident.None && e.Frame == nil {
				continue
			}
			if e.Frame != nil {
				// The embedded frame may be corrupt; the GRP decoder must
				// reject it cleanly, and anything it accepts must satisfy
				// its own invariants (pinned by FuzzDecodeHostile).
				if m, err := Decode(e.Frame); err == nil && m.From == ident.None {
					// Tolerated: a flipped sender field can zero From; the
					// engine's deliver path drops From == None on receive.
					continue
				}
			}
		}
		re := AppendBoundaryBatch(nil, b)
		if _, err := DecodeBoundaryBatch(re); err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeBoundaryRaw throws fully arbitrary bytes at the batch
// decoder: it must never panic, and any accepted batch must re-encode to
// a decodable batch.
func FuzzDecodeBoundaryRaw(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBoundaryBatch(nil, sampleBatch()))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBoundaryBatch(data)
		if err != nil {
			return
		}
		re := AppendBoundaryBatch(nil, b)
		if _, err := DecodeBoundaryBatch(re); err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
	})
}
