package wire

import (
	"testing"

	"repro/internal/antlist"
)

// FuzzDecode throws arbitrary bytes at the frame decoder: it must never
// panic, and decoding is a normalization — re-encoding an accepted frame
// and decoding again must be a fixpoint (the decoder defensively sorts
// and deduplicates hostile input, so byte-level identity only holds for
// canonical frames; see TestRoundTrip for that case).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(sampleMessage()))
	buf := Encode(sampleMessage())
	f.Add(buf[:len(buf)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if string(Encode(m2)) != string(re) {
			t.Fatalf("normalization not idempotent:\n 1st %x\n 2nd %x", re, Encode(m2))
		}
	})
}

// FuzzDecodeHostile models an in-band attacker: it starts from a valid
// frame and applies the two corruptions a hostile or failing radio
// produces — truncation at an arbitrary byte and a single bit flip — and
// requires the decoder to either return an error or produce a message
// whose antlist still satisfies every structural invariant (sorted,
// deduplicated sets; re-encode/decode fixpoint). Never a panic, never a
// malformed arena handed to the protocol core.
func FuzzDecodeHostile(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(4), uint16(17))
	f.Add(uint16(1<<15), uint16(1<<15))
	base := Encode(sampleMessage())
	f.Fuzz(func(t *testing.T, cut uint16, flip uint16) {
		data := append([]byte(nil), base...)
		data = data[:int(cut)%(len(data)+1)]
		if len(data) > 0 {
			bit := int(flip) % (8 * len(data))
			data[bit/8] ^= 1 << (bit % 8)
		}
		m, err := Decode(data)
		if err != nil {
			return
		}
		for p := 0; p < m.List.Len(); p++ {
			s := m.List.At(p)
			for i := 1; i < len(s); i++ {
				if s[i].ID <= s[i-1].ID {
					t.Fatalf("corrupted frame decoded to unsorted set: %v", s)
				}
			}
		}
		re := Encode(m)
		if _, err := Decode(re); err != nil {
			t.Fatalf("accepted corrupted frame does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeList drives the antlist codec with raw bytes: no panics, and
// accepted lists must satisfy the Set ordering invariant.
func FuzzDecodeList(f *testing.F) {
	l := antlist.FromSets(antlist.NewSet())
	b, _ := l.MarshalBinary()
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := antlist.DecodeList(data)
		if err != nil {
			return
		}
		for p := 0; p < got.Len(); p++ {
			s := got.At(p)
			for i := 1; i < len(s); i++ {
				if s[i].ID <= s[i-1].ID {
					t.Fatalf("unsorted set decoded: %v", s)
				}
			}
		}
	})
}
