// Package wire is the frame codec for GRP messages: the byte format a
// real radio or UDP deployment would broadcast. The paper's Airplug
// implementation exchanged text frames between processes; this codec
// plays that role for the Go runtime, and doubles as the authoritative
// definition of the protocol's control-message overhead (experiment E11
// reports EncodedSize, which this package keeps honest: encoding then
// decoding any message is the identity).
//
// Frame layout (little endian):
//
//	magic  u16 = 0x4752 ("GR")
//	ver    u8  = 1
//	from   u32
//	gprio  u64 clock + u32 id
//	list   (see antlist codec)
//	nprio  u16 count, then per record: u32 id, u64 clock, u32 owner
//	gprios u16 count, same record shape
//	quars  u16 count, then per record: u32 id, u8 remaining
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/priority"
)

const (
	magic   = 0x4752
	version = 1
)

var (
	// ErrTruncated reports a frame shorter than its own structure.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadMagic reports a frame that is not a GRP frame.
	ErrBadMagic = errors.New("wire: bad magic or version")
)

// Encode serializes a protocol message into a fresh frame.
func Encode(m core.Message) []byte {
	return AppendEncode(nil, m)
}

// AppendEncode serializes m, appending to dst. The frame layout is
// unchanged from the map-era message representation: the flat records are
// exploded back into the two priority sections and the quarantine
// section, so frames interoperate across the representations and the E11
// overhead numbers stay comparable.
func AppendEncode(dst []byte, m core.Message) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, magic)
	dst = append(dst, version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = appendPrio(dst, m.GroupPrio)
	dst = m.List.AppendBinary(dst)
	prios, gprios, quars := m.PrioMaps()
	dst = appendPrioMap(dst, prios)
	dst = appendPrioMap(dst, gprios)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(quars)))
	for _, id := range sortedIDs(quars) {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
		q := quars[id]
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		dst = append(dst, byte(q))
	}
	return dst
}

// Decode parses a frame back into a protocol message, rebuilding the
// flat record slice (with each entry's list position) from the frame's
// map-shaped sections.
func Decode(buf []byte) (core.Message, error) {
	var m core.Message
	if len(buf) < 2+1+4 {
		return m, ErrTruncated
	}
	if binary.LittleEndian.Uint16(buf) != magic || buf[2] != version {
		return m, ErrBadMagic
	}
	m.From = ident.NodeID(binary.LittleEndian.Uint32(buf[3:]))
	buf = buf[7:]
	var err error
	if m.GroupPrio, buf, err = readPrio(buf); err != nil {
		return m, err
	}
	if m.List, buf, err = antlist.DecodeList(buf); err != nil {
		return m, fmt.Errorf("wire: list: %w", err)
	}
	var prios, gprios map[ident.NodeID]priority.P
	if prios, buf, err = readPrioMap(buf); err != nil {
		return m, err
	}
	if gprios, buf, err = readPrioMap(buf); err != nil {
		return m, err
	}
	if len(buf) < 2 {
		return m, ErrTruncated
	}
	nq := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < nq*5 {
		return m, ErrTruncated
	}
	quars := make(map[ident.NodeID]int, nq)
	for i := 0; i < nq; i++ {
		id := ident.NodeID(binary.LittleEndian.Uint32(buf))
		quars[id] = int(buf[4])
		buf = buf[5:]
	}
	if len(buf) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes", len(buf))
	}
	m.Recs = core.RecsFromMaps(m.List, prios, gprios, quars)
	return m, nil
}

func appendPrio(dst []byte, p priority.P) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, p.Clock)
	return binary.LittleEndian.AppendUint32(dst, uint32(p.ID))
}

func readPrio(buf []byte) (priority.P, []byte, error) {
	if len(buf) < 12 {
		return priority.P{}, buf, ErrTruncated
	}
	p := priority.P{
		Clock: binary.LittleEndian.Uint64(buf),
		ID:    ident.NodeID(binary.LittleEndian.Uint32(buf[8:])),
	}
	return p, buf[12:], nil
}

func appendPrioMap(dst []byte, m map[ident.NodeID]priority.P) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m)))
	for _, id := range sortedPrioIDs(m) {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
		dst = appendPrio(dst, m[id])
	}
	return dst
}

func readPrioMap(buf []byte) (map[ident.NodeID]priority.P, []byte, error) {
	if len(buf) < 2 {
		return nil, buf, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n*16 {
		return nil, buf, ErrTruncated
	}
	out := make(map[ident.NodeID]priority.P, n)
	for i := 0; i < n; i++ {
		id := ident.NodeID(binary.LittleEndian.Uint32(buf))
		p, rest, err := readPrio(buf[4:])
		if err != nil {
			return nil, buf, err
		}
		out[id] = p
		buf = rest
	}
	return out, buf, nil
}

func sortedIDs(m map[ident.NodeID]int) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortedPrioIDs(m map[ident.NodeID]priority.P) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []ident.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
