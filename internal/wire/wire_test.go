package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/antlist"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/priority"
	"repro/internal/sim"
)

func sampleMessage() core.Message {
	list := antlist.FromSets(
		antlist.NewSet(ident.Plain(3)),
		antlist.NewSet(ident.Plain(1), ident.Single(2)),
		antlist.NewSet(ident.Double(9)),
	)
	return core.Message{
		From: 3,
		List: list,
		Recs: core.RecsFromMaps(list,
			map[ident.NodeID]priority.P{
				1: {Clock: 7, ID: 1}, 2: {Clock: 9, ID: 2}, 3: {Clock: 2, ID: 3},
			},
			map[ident.NodeID]priority.P{
				1: {Clock: 2, ID: 3}, 3: {Clock: 2, ID: 3},
			},
			map[ident.NodeID]int{1: 2}),
		GroupPrio: priority.P{Clock: 2, ID: 3},
	}
}

func TestRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestRejectsTruncationEverywhere(t *testing.T) {
	buf := Encode(sampleMessage())
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
}

func TestRejectsTrailingGarbage(t *testing.T) {
	buf := append(Encode(sampleMessage()), 0xFF)
	if _, err := Decode(buf); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestRejectsBadMagicAndVersion(t *testing.T) {
	buf := Encode(sampleMessage())
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[2] = 99
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Fatalf("bad version: %v", err)
	}
}

func TestQuarClamping(t *testing.T) {
	m := sampleMessage()
	prios, gprios, _ := m.PrioMaps()
	m.Recs = core.RecsFromMaps(m.List, prios, gprios, map[ident.NodeID]int{1: 1000, 2: -3})
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	_, _, quars := got.PrioMaps()
	if quars[1] != 255 || quars[2] != 0 {
		t.Fatalf("clamping wrong: %v", quars)
	}
}

// TestQuickLiveMessagesRoundTrip drives a real simulation and round-trips
// every message a node would actually broadcast.
func TestQuickLiveMessagesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 3}, Seed: seed}, graph.Line(6))
		s.StepTicks(20 + int(uint64(seed)%17))
		for _, n := range s.Nodes {
			m := n.BuildMessage()
			got, err := Decode(Encode(m))
			if err != nil {
				return false
			}
			if !got.List.Equal(m.List) || got.From != m.From || got.GroupPrio != m.GroupPrio {
				return false
			}
			gp, gg, _ := got.PrioMaps()
			mp, mg, _ := m.PrioMaps()
			if !reflect.DeepEqual(normalize(gp), normalize(mp)) {
				return false
			}
			if !reflect.DeepEqual(normalize(gg), normalize(mg)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps empty to nil so DeepEqual ignores the distinction.
func normalize(m map[ident.NodeID]priority.P) map[ident.NodeID]priority.P {
	if len(m) == 0 {
		return nil
	}
	return m
}

func TestEncodedSizeMatchesEstimate(t *testing.T) {
	// core.Message.EncodedSize is the overhead experiments' estimate; the
	// real frame must stay within a small constant of it.
	s := sim.NewStatic(sim.Params{Cfg: core.Config{Dmax: 4}, Seed: 2}, graph.Line(8))
	s.StepTicks(40)
	for _, n := range s.Nodes {
		m := n.BuildMessage()
		real := len(Encode(m))
		est := m.EncodedSize()
		diff := real - est
		if diff < 0 {
			diff = -diff
		}
		mp, mg, _ := m.PrioMaps()
		if diff > 16+len(mp)*4+len(mg)*4 {
			t.Fatalf("estimate %d vs frame %d too far apart", est, real)
		}
	}
}
