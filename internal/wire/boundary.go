// Boundary batch codec: the framing internal/dist ships between shard
// processes once per tick. One batch carries every boundary-relevant
// broadcast of the sending shard as delta entries — a full GRP frame
// (the standard codec above) when the sender's state version moved since
// the peer last saw it, or a bare version header when it did not, in
// which case the peer replays its cached ghost replica. The receiver
// re-derives the receiver sets from its own replica of the world, so
// entries never carry receiver lists: boundary traffic scales with the
// number of state-changed border senders, not with the population.
//
// Batch layout (little endian):
//
//	magic   u16 = 0x4742 ("GB")
//	ver     u8  = 1
//	shard   u16          sending shard index
//	seq     u64          tick sequence number (lockstep check)
//	count   u32          entry count
//	entries repeated:
//	  sender u32
//	  gen    u64         sender incarnation (engine membership generation)
//	  sver   u64         sender state version the broadcast was built at
//	  flag   u8          0: elided (replay the ghost), 1: frame follows
//	  [flen  u32, frame] only when flag = 1: a standard GRP frame
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ident"
)

const (
	boundaryMagic   = 0x4742
	boundaryVersion = 1
)

// BoundaryEntry is one sender's slot in a boundary batch. A nil Frame
// means the entry was elided: the sender's broadcast is unchanged since
// the peer's ghost replica was last refreshed at (Gen, Ver).
type BoundaryEntry struct {
	Sender ident.NodeID
	Gen    uint64
	Ver    uint64
	Frame  []byte // encoded GRP frame, nil when elided
}

// BoundaryBatch is one shard's per-tick boundary shipment to one peer.
type BoundaryBatch struct {
	Shard   int
	Seq     uint64
	Entries []BoundaryEntry
}

// AppendBoundaryBatch serializes the batch, appending to dst.
func AppendBoundaryBatch(dst []byte, b BoundaryBatch) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, boundaryMagic)
	dst = append(dst, boundaryVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(b.Shard))
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Entries)))
	for _, e := range b.Entries {
		dst = appendBoundaryEntry(dst, e)
	}
	return dst
}

// appendBoundaryEntry serializes one entry (see the batch layout).
func appendBoundaryEntry(dst []byte, e BoundaryEntry) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Sender))
	dst = binary.LittleEndian.AppendUint64(dst, e.Gen)
	dst = binary.LittleEndian.AppendUint64(dst, e.Ver)
	if e.Frame == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Frame)))
	return append(dst, e.Frame...)
}

// DecodeBoundaryBatch parses a boundary batch. Entry frames alias buf
// (no copy); callers that retain a frame past buf's lifetime must copy
// it. The embedded GRP frames are not decoded here — the consumer
// decodes only the frames it needs (wire.Decode validates them).
func DecodeBoundaryBatch(buf []byte) (BoundaryBatch, error) {
	var b BoundaryBatch
	if len(buf) < 2+1+2+8+4 {
		return b, ErrTruncated
	}
	if binary.LittleEndian.Uint16(buf) != boundaryMagic || buf[2] != boundaryVersion {
		return b, ErrBadMagic
	}
	b.Shard = int(binary.LittleEndian.Uint16(buf[3:]))
	b.Seq = binary.LittleEndian.Uint64(buf[5:])
	n := binary.LittleEndian.Uint32(buf[13:])
	buf = buf[17:]
	// A count header can claim anything; bound the allocation by what the
	// remaining bytes could possibly hold (21 bytes per entry minimum).
	if uint64(n) > uint64(len(buf)/21)+1 {
		return b, ErrTruncated
	}
	b.Entries = make([]BoundaryEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 21 {
			return b, ErrTruncated
		}
		e := BoundaryEntry{
			Sender: ident.NodeID(binary.LittleEndian.Uint32(buf)),
			Gen:    binary.LittleEndian.Uint64(buf[4:]),
			Ver:    binary.LittleEndian.Uint64(buf[12:]),
		}
		flag := buf[20]
		buf = buf[21:]
		switch flag {
		case 0:
		case 1:
			if len(buf) < 4 {
				return b, ErrTruncated
			}
			flen := binary.LittleEndian.Uint32(buf)
			buf = buf[4:]
			if uint64(flen) > uint64(len(buf)) {
				return b, ErrTruncated
			}
			e.Frame = buf[:flen:flen]
			buf = buf[flen:]
		default:
			return b, fmt.Errorf("wire: boundary entry flag %d", flag)
		}
		b.Entries = append(b.Entries, e)
	}
	if len(buf) != 0 {
		return b, fmt.Errorf("wire: %d trailing bytes after boundary batch", len(buf))
	}
	return b, nil
}
