// Spatial-hash vicinity index: a uniform grid over the plane keyed by
// cell coordinates, maintained incrementally by Place/Remove, plus a
// segment-to-cell index for the obstacle walls and the deterministic
// shard-parallel SymmetricGraph build on top of both.
//
// The cell size is the maximum TX range over the world (the default
// Range and every TxRange override), so any link — symmetric or not —
// fits inside one cell diagonal step: all candidate receivers of a node
// lie in the 3×3 cell block around it, and every wall that can cross a
// link is registered in one of the (at most 2×2) cells the link's
// bounding box overlaps. CanReach candidate sets and wall tests are
// therefore O(local density) instead of O(n) and O(walls).
package space

import (
	"math"
	"reflect"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/ident"
)

// numShards mirrors engine.NumShards: the parallel SymmetricGraph build
// fans node work out into the same fixed NodeID shards the engine uses,
// so the edge set — and with it every downstream trace — is independent
// of the worker count by construction.
const numShards = 64

// shardOf maps a node to its build shard (same formula as the engine's).
func shardOf(v ident.NodeID) int { return int(uint32(v) % numShards) }

// cellKey addresses one grid cell.
type cellKey struct{ cx, cy int }

// cellNode is one grid occupant with its position inlined: the vicinity
// scans read candidate positions from the cell list itself instead of
// probing the position map per candidate.
type cellNode struct {
	id ident.NodeID
	pt Point
}

// cellAt returns the cell containing p (floor division, so negative
// coordinates hash consistently).
func (w *World) cellAt(p Point) cellKey {
	return cellKey{int(math.Floor(p.X / w.cellSize)), int(math.Floor(p.Y / w.cellSize))}
}

// validate makes the derived structures (grid, wall index, cell size)
// consistent with the public configuration fields. The clean-path check
// is read-only and O(1): a rebuild is triggered by the first use, an
// explicit Invalidate, a reassignment of the TxRange map (identity +
// size fingerprint) or of the Walls slice (length + backing pointer).
// Mutating an existing TxRange entry or a wall in place is invisible to
// these heuristics — callers doing that must call Invalidate (or use
// SetTxRange/SetWalls, which do).
func (w *World) validate() {
	if w.cells != nil && !w.dirty && len(w.TxRange) == w.txLen &&
		reflect.ValueOf(w.TxRange).Pointer() == w.txPtr &&
		len(w.Walls) == w.wallsLen && (len(w.Walls) == 0 || &w.Walls[0] == w.wallsPtr) {
		return
	}
	w.rebuildIndex()
}

// rebuildIndex rederives the cell size from the current ranges and
// re-inserts every node and wall. O(n + walls·cells_per_wall); runs only
// on structural changes, never on mere motion.
func (w *World) rebuildIndex() {
	maxR := w.Range
	for _, r := range w.TxRange {
		if r > maxR {
			maxR = r
		}
	}
	w.maxRange = maxR
	w.cellSize = maxR
	if !(w.cellSize > 0) {
		// A world with no positive range has no links; any cell size
		// keeps the grid well defined.
		w.cellSize = 1
	}
	w.cells = make(map[cellKey][]cellNode, len(w.pos))
	w.cellOf = make(map[ident.NodeID]cellKey, len(w.pos))
	for v, p := range w.pos {
		k := w.cellAt(p)
		w.cellOf[v] = k
		w.cells[k] = append(w.cells[k], cellNode{id: v, pt: p})
	}
	w.wallCells = make(map[cellKey][]int, len(w.Walls))
	for i, s := range w.Walls {
		lo := w.cellAt(Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)})
		hi := w.cellAt(Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)})
		for cx := lo.cx; cx <= hi.cx; cx++ {
			for cy := lo.cy; cy <= hi.cy; cy++ {
				k := cellKey{cx, cy}
				w.wallCells[k] = append(w.wallCells[k], i)
			}
		}
	}
	w.txLen = len(w.TxRange)
	w.txPtr = reflect.ValueOf(w.TxRange).Pointer()
	w.wallsLen = len(w.Walls)
	w.wallsPtr = nil
	if len(w.Walls) > 0 {
		w.wallsPtr = &w.Walls[0]
	}
	w.dirty = false
	w.deltaFull = true // ranges or walls changed: every link is suspect
	w.gen++
}

// deltaFraction bounds how large the moved set may grow, relative to the
// population, before the delta rebuild stops paying: past roughly a
// quarter of the nodes, re-scanning the movers plus patching their
// neighbors' rows costs about as much as the full sharded rebuild (which
// also lays the whole CSR out in one arena), so the builder falls back.
const deltaFraction = 4

// markMoved records a changed position for the delta rebuild. The slice
// may hold the same node several times (a mover Placed on every tick
// between two rebuilds); the poisoning decision therefore counts *unique*
// movers — once raw appends cross the threshold, the slice is compacted
// and tracking gives up only if the distinct count is past it too. The
// doubling guard (compact again only after the raw length doubles the
// known-distinct count) keeps the compaction cost amortized O(1) per
// Place; the all-moving random-waypoint regime still pays only a branch
// and an append until the first compaction poisons it for the cycle.
func (w *World) markMoved(v ident.NodeID) {
	if w.deltaFull {
		return
	}
	if limit := len(w.pos) / deltaFraction; len(w.movedDirty) >= limit &&
		len(w.movedDirty) >= 2*w.movedUnique {
		sortIDs(w.movedDirty)
		w.movedDirty = compactIDs(w.movedDirty)
		w.movedUnique = len(w.movedDirty)
		if w.movedUnique >= limit {
			w.deltaFull = true
			w.movedDirty = w.movedDirty[:0]
			w.movedUnique = 0
			return
		}
	}
	w.movedDirty = append(w.movedDirty, v)
}

// deltaViable reports whether the next rebuild may take the delta path:
// a previous graph exists over the identical roster and configuration,
// the *distinct* moved set stayed under the worthwhile fraction, and the
// path is not disabled. The moved slice is compacted here (the delta
// build needs it sorted and unique anyway). An empty moved set with a
// stale generation can only follow an Invalidate — deltaFull covers it.
func (w *World) deltaViable(n int) bool {
	if w.DisableDelta || w.deltaFull || w.symGraph == nil || len(w.movedDirty) == 0 {
		return false
	}
	sortIDs(w.movedDirty)
	w.movedDirty = compactIDs(w.movedDirty)
	w.movedUnique = len(w.movedDirty)
	return len(w.movedDirty) <= n/deltaFraction
}

// buildSymmetricGraphDelta re-scans only the moved nodes' vicinities —
// an edge can appear or disappear only if at least one endpoint moved, so
// the movers' full replacement rows describe every change — and patches
// prev through graph.ApplyDelta. The scan fans out over the same 64
// NodeID shards as the full build (shard-major merge order, canonical at
// any worker count); the patched result is bit-identical to a full
// rebuild from the same positions.
func (w *World) buildSymmetricGraphDelta(prev *graph.G) *graph.G {
	// deltaViable — the only production gate, evaluated immediately before
	// this — already sorted and deduplicated the moved set.
	dirty := w.movedDirty
	for s := range w.shardNodes {
		w.shardNodes[s] = w.shardNodes[s][:0]
	}
	for _, v := range dirty {
		s := shardOf(v)
		w.shardNodes[s] = append(w.shardNodes[s], v)
	}
	w.runShards(func(s int) {
		adjs := w.shardAdjs[s][:0]
		nbrs := w.shardNbrs[s][:0]
		for _, u := range w.shardNodes[s] {
			pu := w.pos[u]
			ru := w.rangeOf(u)
			k := w.cellOf[u]
			start := len(nbrs)
			for cx := k.cx - 1; cx <= k.cx+1; cx++ {
				for cy := k.cy - 1; cy <= k.cy+1; cy++ {
					for _, c := range w.cells[cellKey{cx, cy}] {
						if c.id == u {
							continue
						}
						r := ru
						if rv := w.rangeOf(c.id); rv < r {
							r = rv
						}
						if pu.Dist(c.pt) > r {
							continue
						}
						if w.wallBlocked(pu, c.pt) {
							continue
						}
						nbrs = append(nbrs, c.id)
					}
				}
			}
			sortIDs(nbrs[start:])
			adjs = append(adjs, graph.NodeAdj{Node: u, Adj: nbrs[start:len(nbrs):len(nbrs)]})
		}
		w.shardAdjs[s], w.shardNbrs[s] = adjs, nbrs
	})
	updates := w.updBuf[:0]
	for s := range w.shardAdjs {
		updates = append(updates, w.shardAdjs[s]...)
	}
	w.updBuf = updates
	return graph.ApplyDelta(prev, updates)
}

// sortIDs sorts a NodeID slice ascending.
func sortIDs(ids []ident.NodeID) {
	slices.Sort(ids)
}

// compactIDs dedups an ascending NodeID slice in place.
func compactIDs(ids []ident.NodeID) []ident.NodeID {
	return slices.Compact(ids)
}

// gridInsert adds v (already in pos) to its cell.
func (w *World) gridInsert(v ident.NodeID, p Point) {
	k := w.cellAt(p)
	w.cellOf[v] = k
	w.cells[k] = append(w.cells[k], cellNode{id: v, pt: p})
}

// gridRemove deletes v from cell k (swap-delete; cell lists are
// unordered, every consumer either sorts its output or builds a set).
func (w *World) gridRemove(v ident.NodeID, k cellKey) {
	lst := w.cells[k]
	for i := range lst {
		if lst[i].id == v {
			lst[i] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(w.cells, k)
	} else {
		w.cells[k] = lst
	}
}

// wallBlocked reports whether a wall crosses the link pu–pv. It only
// tests walls registered in the cells the link's bounding box overlaps;
// the caller guarantees the link is no longer than the cell size (every
// in-range link is, by the cell-size invariant), so that box spans at
// most 2×2 cells. A wall spanning two of those cells is tested twice —
// harmless for a pure predicate, and cheaper than deduplication, which
// would need mutable scratch and break the lock-free parallel build.
func (w *World) wallBlocked(pu, pv Point) bool {
	if len(w.Walls) == 0 {
		return false
	}
	k1, k2 := w.cellAt(pu), w.cellAt(pv)
	if k2.cx < k1.cx {
		k1.cx, k2.cx = k2.cx, k1.cx
	}
	if k2.cy < k1.cy {
		k1.cy, k2.cy = k2.cy, k1.cy
	}
	for cx := k1.cx; cx <= k2.cx; cx++ {
		for cy := k1.cy; cy <= k2.cy; cy++ {
			for _, i := range w.wallCells[cellKey{cx, cy}] {
				s := &w.Walls[i]
				if segmentsCross(pu, pv, s.A, s.B) {
					return true
				}
			}
		}
	}
	return false
}

// gridEdge is one undirected link found by the sharded build (the bulk
// construction shape graph.FromEdges consumes).
type gridEdge = graph.Edge

// runShards applies fn to every shard: inline when Workers ≤ 1, else on
// a pool of Workers goroutines with a static shard-to-worker assignment
// (the engine's fan-out shape). fn must only write shard-local state.
func (w *World) runShards(fn func(s int)) {
	n := w.Workers
	if n > numShards {
		n = numShards
	}
	if n <= 1 {
		for s := 0; s < numShards; s++ {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			for s := i; s < numShards; s += n {
				fn(s)
			}
		}(i)
	}
	wg.Wait()
}

// buildSymmetricGraph computes the bidirectional-link graph from the
// grid: each shard scans its own nodes in canonical (ascending) order,
// collects the edges (u,v), u < v, whose distance is within both
// endpoints' TX ranges and that no wall crosses, and the shard edge
// lists are merged in shard order. Workers only read shared state (pos,
// cells, ranges, walls) and write their own shard's edge buffer, so the
// result is identical at any worker count.
func (w *World) buildSymmetricGraph(nodes []ident.NodeID) *graph.G {
	for s := range w.shardNodes {
		w.shardNodes[s] = w.shardNodes[s][:0]
	}
	for _, v := range nodes {
		s := shardOf(v)
		w.shardNodes[s] = append(w.shardNodes[s], v)
	}
	w.runShards(func(s int) {
		edges := w.shardEdges[s][:0]
		for _, u := range w.shardNodes[s] {
			pu := w.pos[u]
			ru := w.rangeOf(u)
			k := w.cellOf[u]
			for cx := k.cx - 1; cx <= k.cx+1; cx++ {
				for cy := k.cy - 1; cy <= k.cy+1; cy++ {
					for _, c := range w.cells[cellKey{cx, cy}] {
						if c.id <= u {
							continue
						}
						r := ru
						if rv := w.rangeOf(c.id); rv < r {
							r = rv
						}
						if pu.Dist(c.pt) > r {
							continue
						}
						if w.wallBlocked(pu, c.pt) {
							continue
						}
						edges = append(edges, gridEdge{U: u, V: c.id})
					}
				}
			}
		}
		w.shardEdges[s] = edges
	})
	// Merge the shard edge lists in shard order (canonical at any worker
	// count) and bulk-build the CSR graph: one arena instead of a map of
	// maps assembled edge by edge. The previous graph's node index is
	// reused when only positions moved (the common mobile tick).
	all := w.edgeBuf[:0]
	for s := range w.shardEdges {
		all = append(all, w.shardEdges[s]...)
	}
	w.edgeBuf = all
	return graph.FromEdgesShared(w.symGraph, nodes, all)
}
