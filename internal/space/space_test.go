package space

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
)

func TestCanReachUnitDisk(t *testing.T) {
	w := NewWorld(5)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{3, 4}) // dist 5
	w.Place(3, Point{6, 8}) // dist 10
	if !w.CanReach(1, 2) || !w.CanReach(2, 1) {
		t.Fatal("nodes at exactly range must reach")
	}
	if w.CanReach(1, 3) || w.CanReach(3, 1) {
		t.Fatal("out of range must not reach")
	}
	if w.CanReach(1, 1) {
		t.Fatal("self reach must be false")
	}
	if w.CanReach(1, 99) || w.CanReach(99, 1) {
		t.Fatal("absent node must not reach")
	}
}

func TestAsymmetricRanges(t *testing.T) {
	w := NewWorld(5)
	w.TxRange = map[ident.NodeID]float64{2: 1}
	w.Place(1, Point{0, 0})
	w.Place(2, Point{3, 0})
	if !w.CanReach(1, 2) {
		t.Fatal("1→2 should reach (range 5)")
	}
	if w.CanReach(2, 1) {
		t.Fatal("2→1 should not reach (range 1)")
	}
	g := w.SymmetricGraph()
	if g.HasEdge(1, 2) {
		t.Fatal("asymmetric link must not appear in the symmetric graph")
	}
	if g.NumNodes() != 2 {
		t.Fatal("isolated nodes must still appear")
	}
}

func TestWallBlocksLink(t *testing.T) {
	w := NewWorld(10)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{4, 0})
	w.Walls = []Segment{{Point{2, -1}, Point{2, 1}}}
	if w.CanReach(1, 2) {
		t.Fatal("wall must block the link")
	}
	w.Walls = []Segment{{Point{2, 1}, Point{2, 3}}}
	if !w.CanReach(1, 2) {
		t.Fatal("wall off the line must not block")
	}
}

func TestWallTouchingEndpointBlocks(t *testing.T) {
	w := NewWorld(10)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{4, 0})
	w.Walls = []Segment{{Point{4, 0}, Point{4, 5}}}
	if w.CanReach(1, 2) {
		t.Fatal("wall touching receiver blocks (conservative)")
	}
}

func TestSymmetricGraphLine(t *testing.T) {
	w := NewWorld(1.5)
	for i := 1; i <= 4; i++ {
		w.Place(ident.NodeID(i), Point{float64(i), 0})
	}
	g := w.SymmetricGraph()
	if g.NumEdges() != 3 || !g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Fatalf("line graph wrong: %v", g)
	}
}

func TestReceiversAndRemove(t *testing.T) {
	w := NewWorld(2)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{1, 0})
	w.Place(3, Point{2, 0})
	got := w.Receivers(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Receivers = %v", got)
	}
	w.Remove(3)
	if got := w.Receivers(1); len(got) != 1 {
		t.Fatalf("after remove: %v", got)
	}
	if _, ok := w.Pos(3); ok {
		t.Fatal("removed node still present")
	}
}

func TestPointHelpers(t *testing.T) {
	p := Point{1, 2}.Add(3, 4)
	if p != (Point{4, 6}) {
		t.Fatalf("Add = %v", p)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v", d)
	}
}

// --- spatial-hash index vs brute-force oracle -------------------------

// bruteCanReach replicates the pre-index vicinity relation: distance
// against the sender's range and a linear scan over every wall. It is the
// oracle the grid is property-tested against.
func bruteCanReach(w *World, u, v ident.NodeID) bool {
	if u == v {
		return false
	}
	pu, ok := w.pos[u]
	if !ok {
		return false
	}
	pv, ok := w.pos[v]
	if !ok {
		return false
	}
	if pu.Dist(pv) > w.rangeOf(u) {
		return false
	}
	for _, wall := range w.Walls {
		if segmentsCross(pu, pv, wall.A, wall.B) {
			return false
		}
	}
	return true
}

// bruteSymmetricGraph is the old all-pairs O(n²) build.
func bruteSymmetricGraph(w *World) *graph.G {
	g := graph.New()
	nodes := w.Nodes()
	for _, v := range nodes {
		g.AddNode(v)
	}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if bruteCanReach(w, u, v) && bruteCanReach(w, v, u) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// bruteReceivers is the old roster-scan receiver set.
func bruteReceivers(w *World, u ident.NodeID) []ident.NodeID {
	var out []ident.NodeID
	for _, v := range w.Nodes() {
		if v != u && bruteCanReach(w, u, v) {
			out = append(out, v)
		}
	}
	return out
}

// checkAgainstOracle compares the grid-served SymmetricGraph, Receivers
// and CanReach with the brute-force oracle on the world's current state.
func checkAgainstOracle(t *testing.T, w *World, label string) {
	t.Helper()
	got, want := w.SymmetricGraph(), bruteSymmetricGraph(w)
	if !got.Equal(want) {
		t.Fatalf("%s: SymmetricGraph mismatch: grid %v, brute %v", label, got, want)
	}
	nodes := append([]ident.NodeID(nil), w.Nodes()...)
	for _, u := range nodes {
		gr, br := w.Receivers(u), bruteReceivers(w, u)
		if len(gr) != len(br) {
			t.Fatalf("%s: Receivers(%d) = %v, want %v", label, u, gr, br)
		}
		for i := range gr {
			if gr[i] != br[i] {
				t.Fatalf("%s: Receivers(%d) = %v, want %v", label, u, gr, br)
			}
		}
		for _, v := range nodes {
			if w.CanReach(u, v) != bruteCanReach(w, u, v) {
				t.Fatalf("%s: CanReach(%d,%d) disagrees with oracle", label, u, v)
			}
		}
	}
}

// TestGridMatchesBruteForce property-tests the spatial index against the
// brute-force oracle on random worlds: random positions (including
// negative coordinates), random walls, asymmetric TxRange overrides both
// above and below the default range, then incremental churn — moves,
// removals, joins, and structural reconfiguration.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		n := 5 + rng.Intn(70)
		side := 4 + rng.Float64()*30
		w := NewWorld(0.5 + rng.Float64()*5)

		// Asymmetric ranges: some overrides shrink, some exceed the
		// default (the cell size must follow the maximum).
		if rng.Intn(2) == 0 {
			w.TxRange = map[ident.NodeID]float64{}
			for v := 1; v <= n; v++ {
				if rng.Intn(4) == 0 {
					w.TxRange[ident.NodeID(v)] = rng.Float64() * 2 * w.Range
				}
			}
		}
		for i := 0; i < rng.Intn(6); i++ {
			a := Point{rng.Float64()*side - side/2, rng.Float64()*side - side/2}
			w.Walls = append(w.Walls, Segment{a, a.Add(rng.Float64()*side/2, rng.Float64()*side/2)})
		}
		for v := 1; v <= n; v++ {
			w.Place(ident.NodeID(v), Point{rng.Float64()*side - side/2, rng.Float64()*side - side/2})
		}
		checkAgainstOracle(t, w, "fresh")

		// Incremental churn: move a third, remove a few, add a few.
		for v := 1; v <= n; v++ {
			switch rng.Intn(3) {
			case 0:
				w.Place(ident.NodeID(v), Point{rng.Float64()*side - side/2, rng.Float64()*side - side/2})
			case 1:
				if rng.Intn(4) == 0 {
					w.Remove(ident.NodeID(v))
				}
			}
		}
		for v := n + 1; v <= n+3; v++ {
			w.Place(ident.NodeID(v), Point{rng.Float64()*side - side/2, rng.Float64()*side - side/2})
		}
		checkAgainstOracle(t, w, "churned")

		// Structural change mid-life: new walls (reassignment), a range
		// override through the invalidating setter, and a wholesale
		// TxRange reassignment with the same override count (caught by
		// the map-identity fingerprint, not the length).
		w.Walls = append(w.Walls[:0:0], Segment{Point{-side, 0}, Point{side, 0}})
		w.SetTxRange(ident.NodeID(1+rng.Intn(n)), rng.Float64()*3*w.Range)
		checkAgainstOracle(t, w, "reconfigured")
		fresh := make(map[ident.NodeID]float64, len(w.TxRange))
		for v := range w.TxRange {
			fresh[v] = rng.Float64() * 4 * w.Range
		}
		w.TxRange = fresh
		checkAgainstOracle(t, w, "txrange-swapped")
	}
}

// TestGridParallelBuildMatchesSequential pins the determinism of the
// sharded SymmetricGraph build: identical edge sets at any worker width.
func TestGridParallelBuildMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWorld(2)
	for v := 1; v <= 400; v++ {
		w.Place(ident.NodeID(v), Point{rng.Float64() * 40, rng.Float64() * 40})
	}
	w.Walls = []Segment{{Point{10, 0}, Point{10, 40}}, {Point{0, 20}, Point{40, 20}}}
	for _, workers := range []int{1, 2, 4, 7, 64, 200} {
		w.Workers = workers
		w.Place(1, Point{rng.Float64() * 40, rng.Float64() * 40}) // bust the graph cache
		seq := bruteSymmetricGraph(w)
		if g := w.SymmetricGraph(); !g.Equal(seq) {
			t.Fatalf("workers=%d: %v != brute %v", workers, g, seq)
		}
	}
}

// TestGenerationAndGraphCache pins the dirty-tracking contract: motion
// bumps the generation and invalidates the cached graph; a same-position
// Place does not, and the cached graph is returned pointer-identical.
func TestGenerationAndGraphCache(t *testing.T) {
	w := NewWorld(2)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{1, 0})
	g1 := w.SymmetricGraph()
	gen := w.Generation()

	w.Place(1, Point{0, 0}) // same position: no-op
	if w.Generation() != gen {
		t.Fatal("same-position Place must not bump the generation")
	}
	if g2 := w.SymmetricGraph(); g2 != g1 {
		t.Fatal("unchanged world must reuse the cached graph pointer")
	}

	w.Place(1, Point{0, 0.5}) // actual motion
	if w.Generation() == gen {
		t.Fatal("motion must bump the generation")
	}
	if g3 := w.SymmetricGraph(); g3 == g1 {
		t.Fatal("motion must rebuild the graph")
	}

	// Structural reconfiguration through the fields is detected too.
	gen = w.Generation()
	w.Walls = []Segment{{Point{0.5, -1}, Point{0.5, 1}}}
	if w.SymmetricGraph().HasEdge(1, 2) {
		t.Fatal("wall assignment not picked up")
	}
	if w.Generation() == gen {
		t.Fatal("structural rebuild must bump the generation")
	}
}

// TestNodesCachedRoster pins that Nodes is served from the cached sorted
// roster: motion does not reallocate it, membership churn refreshes it.
func TestNodesCachedRoster(t *testing.T) {
	w := NewWorld(2)
	for v := 5; v >= 1; v-- {
		w.Place(ident.NodeID(v), Point{float64(v), 0})
	}
	a := w.Nodes()
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("roster not ascending: %v", a)
		}
	}
	w.Place(3, Point{9, 9})
	b := w.Nodes()
	if &a[0] != &b[0] {
		t.Fatal("motion must not rebuild the roster")
	}
	w.Remove(3)
	c := w.Nodes()
	if len(c) != 4 || c[2] != 4 {
		t.Fatalf("roster after remove: %v", c)
	}
	// The previously returned slice must stay intact for holders.
	if len(a) != 5 || a[2] != 3 {
		t.Fatalf("held roster slice was clobbered: %v", a)
	}
}

// TestDeltaRebuildMatchesBruteForce drives the delta-incremental rebuild:
// a mostly parked population where only a few nodes move between builds,
// so SymmetricGraph takes the ApplyDelta path round after round. Every
// round is checked against the all-pairs oracle, interleaved with the
// events that must poison the delta (joins, leaves, wall and range
// reconfiguration) and with stationary rounds that must keep serving the
// cached pointer.
func TestDeltaRebuildMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewWorld(2.0)
	const n = 120
	for i := 1; i <= n; i++ {
		w.Place(ident.NodeID(i), Point{X: rng.Float64() * 25, Y: rng.Float64() * 25})
	}
	checkAgainstOracle(t, w, "initial full build")
	deltaRounds := 0
	for round := 0; round < 40; round++ {
		// Move a handful of nodes (some across cells, some within, some
		// onto their current position — the no-op must not dirty them).
		for j := 0; j < 1+rng.Intn(4); j++ {
			v := ident.NodeID(1 + rng.Intn(n))
			p, _ := w.Pos(v)
			switch rng.Intn(3) {
			case 0:
				w.Place(v, Point{X: rng.Float64() * 25, Y: rng.Float64() * 25})
			case 1:
				w.Place(v, p.Add(rng.Float64()*0.8-0.4, rng.Float64()*0.8-0.4))
			default:
				w.Place(v, p)
			}
		}
		if w.deltaViable(len(w.Nodes())) {
			deltaRounds++
		}
		checkAgainstOracle(t, w, "delta round")
		switch round {
		case 12:
			w.Remove(ident.NodeID(1 + rng.Intn(n)))
			checkAgainstOracle(t, w, "after leave")
		case 20:
			w.Place(ident.NodeID(n + 1), Point{X: 5, Y: 5})
			checkAgainstOracle(t, w, "after join")
		case 28:
			w.SetWalls([]Segment{{A: Point{X: 12, Y: 0}, B: Point{X: 12, Y: 25}}})
			checkAgainstOracle(t, w, "after walls")
		case 34:
			w.SetTxRange(ident.NodeID(3), 4.0)
			checkAgainstOracle(t, w, "after txrange")
		}
		// Stationary round: the cached graph pointer must survive.
		g1 := w.SymmetricGraph()
		if g2 := w.SymmetricGraph(); g1 != g2 {
			t.Fatal("stationary round rebuilt the graph")
		}
	}
	if deltaRounds < 20 {
		t.Fatalf("delta path exercised only %d/40 rounds", deltaRounds)
	}
	// The disabled path must produce the identical graph.
	v := ident.NodeID(2)
	p, _ := w.Pos(v)
	w.Place(v, p.Add(0.3, -0.2))
	delta := w.SymmetricGraph()
	w.DisableDelta = true
	w.Invalidate()
	full := w.SymmetricGraph()
	if !delta.Equal(full) {
		t.Fatal("delta graph differs from full rebuild")
	}
}

// TestDeltaFallsBackWhenMostMove asserts the worthwhile-fraction fallback:
// when more than a quarter of the population moves, the next rebuild must
// not take the delta path (the full rebuild is cheaper) — and the result
// still matches the oracle.
func TestDeltaFallsBackWhenMostMove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWorld(2.0)
	const n = 60
	for i := 1; i <= n; i++ {
		w.Place(ident.NodeID(i), Point{X: rng.Float64() * 15, Y: rng.Float64() * 15})
	}
	w.SymmetricGraph()
	for i := 1; i <= n/2; i++ {
		w.Place(ident.NodeID(i), Point{X: rng.Float64() * 15, Y: rng.Float64() * 15})
	}
	if w.deltaViable(n) {
		t.Fatal("delta path viable with half the population moved")
	}
	checkAgainstOracle(t, w, "bulk move")
}

// TestDeltaParallelMatchesSequential pins the worker-count independence of
// the delta path: the patched graph at Workers=4 equals the sequential one.
func TestDeltaParallelMatchesSequential(t *testing.T) {
	build := func(workers int) *graph.G {
		rng := rand.New(rand.NewSource(23))
		w := NewWorld(2.0)
		w.Workers = workers
		for i := 1; i <= 100; i++ {
			w.Place(ident.NodeID(i), Point{X: rng.Float64() * 20, Y: rng.Float64() * 20})
		}
		w.SymmetricGraph()
		for j := 0; j < 10; j++ {
			v := ident.NodeID(1 + rng.Intn(100))
			w.Place(v, Point{X: rng.Float64() * 20, Y: rng.Float64() * 20})
		}
		if !w.deltaViable(100) {
			t.Fatal("expected the delta path")
		}
		return w.SymmetricGraph()
	}
	if !build(1).Equal(build(4)) {
		t.Fatal("delta graph depends on worker count")
	}
}

// TestDeltaSurvivesRepeatedMovers pins the unique-mover threshold: a tiny
// set of nodes each moving many times between two rebuilds must not
// poison the delta path (the raw append count crosses the fraction, the
// distinct count does not).
func TestDeltaSurvivesRepeatedMovers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWorld(2.0)
	const n = 80
	for i := 1; i <= n; i++ {
		w.Place(ident.NodeID(i), Point{X: rng.Float64() * 20, Y: rng.Float64() * 20})
	}
	w.SymmetricGraph()
	for step := 0; step < 30*n; step++ { // 2400 Places, 3 distinct movers
		v := ident.NodeID(1 + step%3)
		p, _ := w.Pos(v)
		w.Place(v, p.Add(0.01, 0.005))
	}
	if !w.deltaViable(n) {
		t.Fatal("repeated movers poisoned the delta path")
	}
	checkAgainstOracle(t, w, "repeated movers")
}
