package space

import (
	"testing"

	"repro/internal/ident"
)

func TestCanReachUnitDisk(t *testing.T) {
	w := NewWorld(5)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{3, 4}) // dist 5
	w.Place(3, Point{6, 8}) // dist 10
	if !w.CanReach(1, 2) || !w.CanReach(2, 1) {
		t.Fatal("nodes at exactly range must reach")
	}
	if w.CanReach(1, 3) || w.CanReach(3, 1) {
		t.Fatal("out of range must not reach")
	}
	if w.CanReach(1, 1) {
		t.Fatal("self reach must be false")
	}
	if w.CanReach(1, 99) || w.CanReach(99, 1) {
		t.Fatal("absent node must not reach")
	}
}

func TestAsymmetricRanges(t *testing.T) {
	w := NewWorld(5)
	w.TxRange = map[ident.NodeID]float64{2: 1}
	w.Place(1, Point{0, 0})
	w.Place(2, Point{3, 0})
	if !w.CanReach(1, 2) {
		t.Fatal("1→2 should reach (range 5)")
	}
	if w.CanReach(2, 1) {
		t.Fatal("2→1 should not reach (range 1)")
	}
	g := w.SymmetricGraph()
	if g.HasEdge(1, 2) {
		t.Fatal("asymmetric link must not appear in the symmetric graph")
	}
	if g.NumNodes() != 2 {
		t.Fatal("isolated nodes must still appear")
	}
}

func TestWallBlocksLink(t *testing.T) {
	w := NewWorld(10)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{4, 0})
	w.Walls = []Segment{{Point{2, -1}, Point{2, 1}}}
	if w.CanReach(1, 2) {
		t.Fatal("wall must block the link")
	}
	w.Walls = []Segment{{Point{2, 1}, Point{2, 3}}}
	if !w.CanReach(1, 2) {
		t.Fatal("wall off the line must not block")
	}
}

func TestWallTouchingEndpointBlocks(t *testing.T) {
	w := NewWorld(10)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{4, 0})
	w.Walls = []Segment{{Point{4, 0}, Point{4, 5}}}
	if w.CanReach(1, 2) {
		t.Fatal("wall touching receiver blocks (conservative)")
	}
}

func TestSymmetricGraphLine(t *testing.T) {
	w := NewWorld(1.5)
	for i := 1; i <= 4; i++ {
		w.Place(ident.NodeID(i), Point{float64(i), 0})
	}
	g := w.SymmetricGraph()
	if g.NumEdges() != 3 || !g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Fatalf("line graph wrong: %v", g)
	}
}

func TestReceiversAndRemove(t *testing.T) {
	w := NewWorld(2)
	w.Place(1, Point{0, 0})
	w.Place(2, Point{1, 0})
	w.Place(3, Point{2, 0})
	got := w.Receivers(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Receivers = %v", got)
	}
	w.Remove(3)
	if got := w.Receivers(1); len(got) != 1 {
		t.Fatalf("after remove: %v", got)
	}
	if _, ok := w.Pos(3); ok {
		t.Fatal("removed node still present")
	}
}

func TestPointHelpers(t *testing.T) {
	p := Point{1, 2}.Add(3, 4)
	if p != (Point{4, 6}) {
		t.Fatalf("Add = %v", p)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v", d)
	}
}
