// Package space models the Euclidean plane the nodes move in and the
// vicinity relation of the paper's system model: a link u→v exists when u
// is in the vicinity of v, which depends on positions, per-node radio
// ranges (asymmetric links) and obstacles.
package space

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
)

// Point is a position in the plane.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance to o.
func (p Point) Dist(o Point) float64 { return math.Hypot(p.X-o.X, p.Y-o.Y) }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Segment is an obstacle wall blocking radio line of sight.
type Segment struct{ A, B Point }

// World holds node positions and the vicinity parameters.
type World struct {
	// Range is the default transmission range.
	Range float64
	// TxRange optionally overrides the transmission range per node,
	// producing asymmetric links (u→v exists iff dist ≤ TX range of u).
	TxRange map[ident.NodeID]float64
	// Walls block links whose straight line crosses them.
	Walls []Segment

	pos map[ident.NodeID]Point
}

// NewWorld returns an empty world with the given default range.
func NewWorld(txRange float64) *World {
	return &World{Range: txRange, pos: make(map[ident.NodeID]Point)}
}

// Place sets v's position (adding v if unknown).
func (w *World) Place(v ident.NodeID, p Point) { w.pos[v] = p }

// Remove deletes v from the world (node became inactive / left).
func (w *World) Remove(v ident.NodeID) { delete(w.pos, v) }

// Pos returns v's position and whether v is present.
func (w *World) Pos(v ident.NodeID) (Point, bool) { p, ok := w.pos[v]; return p, ok }

// Nodes returns all present nodes in ascending order.
func (w *World) Nodes() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(w.pos))
	for v := range w.pos {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rangeOf returns the TX range of v.
func (w *World) rangeOf(v ident.NodeID) float64 {
	if r, ok := w.TxRange[v]; ok {
		return r
	}
	return w.Range
}

// CanReach reports whether a transmission by u is receivable by v (u is in
// the vicinity of v): both present, within u's TX range, and no wall
// between them.
func (w *World) CanReach(u, v ident.NodeID) bool {
	if u == v {
		return false
	}
	pu, ok := w.pos[u]
	if !ok {
		return false
	}
	pv, ok := w.pos[v]
	if !ok {
		return false
	}
	if pu.Dist(pv) > w.rangeOf(u) {
		return false
	}
	for _, wall := range w.Walls {
		if segmentsCross(pu, pv, wall.A, wall.B) {
			return false
		}
	}
	return true
}

// SymmetricGraph returns the undirected graph of bidirectional links — the
// topology G_c the specification predicates are evaluated on. Nodes present
// in the world always appear, even isolated.
func (w *World) SymmetricGraph() *graph.G {
	g := graph.New()
	nodes := w.Nodes()
	for _, v := range nodes {
		g.AddNode(v)
	}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if w.CanReach(u, v) && w.CanReach(v, u) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Receivers returns the nodes able to receive a transmission from u, in
// ascending order.
func (w *World) Receivers(u ident.NodeID) []ident.NodeID {
	var out []ident.NodeID
	for _, v := range w.Nodes() {
		if v != u && w.CanReach(u, v) {
			out = append(out, v)
		}
	}
	return out
}

// segmentsCross reports proper intersection between segments pq and ab
// (shared endpoints count as crossing — a wall touching the link blocks it,
// the conservative choice for an obstacle model).
func segmentsCross(p, q, a, b Point) bool {
	d1 := orient(a, b, p)
	d2 := orient(a, b, q)
	d3 := orient(p, q, a)
	d4 := orient(p, q, b)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return onSegment(a, b, p) || onSegment(a, b, q) || onSegment(p, q, a) || onSegment(p, q, b)
}

func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func onSegment(a, b, p Point) bool {
	if orient(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}
