// Package space models the Euclidean plane the nodes move in and the
// vicinity relation of the paper's system model: a link u→v exists when u
// is in the vicinity of v, which depends on positions, per-node radio
// ranges (asymmetric links) and obstacles.
//
// The vicinity queries are served by an incremental spatial-hash index
// (see grid.go): candidate receivers come from a 3×3 cell neighborhood
// instead of the full population, walls are tested from a segment-to-cell
// index, and SymmetricGraph is a deterministic shard-parallel build that
// is cached on the world's generation — recomputed only when something
// actually moved or the configuration changed.
package space

import (
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
)

// Point is a position in the plane.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance to o.
func (p Point) Dist(o Point) float64 { return math.Hypot(p.X-o.X, p.Y-o.Y) }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Segment is an obstacle wall blocking radio line of sight.
type Segment struct{ A, B Point }

// World holds node positions and the vicinity parameters.
//
// The configuration fields are public for construction-time convenience.
// Reassigning TxRange or Walls wholesale is detected automatically; for
// in-place mutation after the world has been queried, use SetTxRange /
// SetWalls or call Invalidate so the spatial index rebuilds. Structural
// mutation must not race with queries: the engine only mutates the world
// in its sequential phases.
type World struct {
	// Range is the default transmission range.
	Range float64
	// TxRange optionally overrides the transmission range per node,
	// producing asymmetric links (u→v exists iff dist ≤ TX range of u).
	TxRange map[ident.NodeID]float64
	// Walls block links whose straight line crosses them.
	Walls []Segment
	// Workers sets the fan-out width of the parallel SymmetricGraph
	// build; 0 or 1 builds inline. The graph content is identical at any
	// width (engine.New propagates its own Workers here for spatial
	// topologies).
	Workers int
	// DisableDelta forces every SymmetricGraph rebuild down the full
	// FromEdgesShared path even when the delta-incremental patch would
	// apply. For A/B benchmarks and ablations; the graphs are identical
	// either way.
	DisableDelta bool

	pos map[ident.NodeID]Point

	// ids is the cached ascending roster, rebuilt lazily after
	// membership churn (idsDirty) — motion alone never invalidates it.
	ids      []ident.NodeID
	idsDirty bool

	// gen counts observable changes to the vicinity inputs: node
	// placement/removal, actual motion, and structural rebuilds.
	// Place with an unchanged position does not bump it, which is what
	// lets stationary ticks reuse every downstream cache.
	gen uint64

	// Spatial-hash index (grid.go). cells is nil until the first query
	// builds it; dirty plus the txLen/walls fingerprints trigger
	// structural rebuilds. Cell entries carry the node's position inline
	// so the vicinity scans touch no per-candidate map.
	cellSize  float64
	maxRange  float64
	cells     map[cellKey][]cellNode
	cellOf    map[ident.NodeID]cellKey
	wallCells map[cellKey][]int
	dirty     bool
	txLen     int
	txPtr     uintptr
	wallsLen  int
	wallsPtr  *Segment

	// Sharded-build scratch and the generation-keyed graph cache.
	shardNodes [numShards][]ident.NodeID
	shardEdges [numShards][]gridEdge
	edgeBuf    []gridEdge
	symGraph   *graph.G
	symGen     uint64

	// Delta-rebuild bookkeeping (grid.go): movedDirty accumulates, since
	// the last committed graph build, the nodes whose position actually
	// changed; deltaFull poisons the delta path until the next full
	// rebuild (membership churn, structural reindex, or a dirty set past
	// the worthwhile fraction). The per-shard scratch carries each dirty
	// node's re-scanned adjacency into graph.ApplyDelta.
	movedDirty  []ident.NodeID
	movedUnique int // distinct movers at the last compaction
	deltaFull   bool
	shardAdjs   [numShards][]graph.NodeAdj
	shardNbrs   [numShards][]ident.NodeID
	updBuf      []graph.NodeAdj

	// Row-delta record for RowsChanged: when the cached graph was produced
	// by one delta step from rowDirtyFrom, rowDirty holds (a superset of)
	// the nodes whose receiver row differs between the two. A full rebuild
	// clears the record.
	rowDirty     []ident.NodeID
	rowDirtyFrom *graph.G
	rowDirtyTo   *graph.G
}

// NewWorld returns an empty world with the given default range.
func NewWorld(txRange float64) *World {
	return &World{Range: txRange, pos: make(map[ident.NodeID]Point)}
}

// Generation returns a counter that increases whenever the world's
// observable vicinity inputs change: a node moved, joined or left, or
// the range/wall configuration was (detectably) altered. Consumers that
// cache topology derived from the world key their caches on it.
func (w *World) Generation() uint64 { return w.gen }

// Invalidate forces the spatial index to rebuild on the next query. Call
// it after mutating TxRange entries or wall endpoints in place; wholesale
// reassignment of those fields is detected without it.
func (w *World) Invalidate() {
	w.dirty = true
	w.gen++
}

// SetTxRange sets v's TX range override and keeps the index consistent.
func (w *World) SetTxRange(v ident.NodeID, r float64) {
	if w.TxRange == nil {
		w.TxRange = make(map[ident.NodeID]float64)
	}
	w.TxRange[v] = r
	w.Invalidate()
}

// SetWalls replaces the obstacle set and keeps the index consistent.
func (w *World) SetWalls(walls []Segment) {
	w.Walls = walls
	w.Invalidate()
}

// Place sets v's position (adding v if unknown). Placing a node at its
// current position is a no-op: the generation does not move, so cached
// topology stays valid across stationary ticks.
func (w *World) Place(v ident.NodeID, p Point) {
	old, existed := w.pos[v]
	if existed && old == p {
		return
	}
	w.pos[v] = p
	w.gen++
	if existed {
		w.markMoved(v)
	} else {
		w.idsDirty = true
		w.deltaFull = true // membership grew: the next rebuild is full
	}
	if w.cells == nil {
		return // index not built yet; the first query inserts everyone
	}
	if existed {
		k := w.cellOf[v]
		if k == w.cellAt(p) {
			// Same cell: refresh the inline position.
			lst := w.cells[k]
			for i := range lst {
				if lst[i].id == v {
					lst[i].pt = p
					break
				}
			}
			return
		}
		w.gridRemove(v, k)
	}
	w.gridInsert(v, p)
}

// Remove deletes v from the world (node became inactive / left).
func (w *World) Remove(v ident.NodeID) {
	if _, ok := w.pos[v]; !ok {
		return
	}
	delete(w.pos, v)
	w.gen++
	w.idsDirty = true
	w.deltaFull = true // membership shrank: the next rebuild is full
	if w.cells != nil {
		w.gridRemove(v, w.cellOf[v])
		delete(w.cellOf, v)
	}
}

// Pos returns v's position and whether v is present.
func (w *World) Pos(v ident.NodeID) (Point, bool) { p, ok := w.pos[v]; return p, ok }

// Nodes returns all present nodes in ascending order. The slice is the
// world's cached roster: callers must not mutate it, and must copy it if
// they hold it across a Place of a new node or a Remove (mere motion
// never invalidates it).
func (w *World) Nodes() []ident.NodeID {
	if w.idsDirty {
		ids := make([]ident.NodeID, 0, len(w.pos))
		for v := range w.pos {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.ids = ids
		w.idsDirty = false
	}
	return w.ids
}

// rangeOf returns the TX range of v.
func (w *World) rangeOf(v ident.NodeID) float64 {
	if r, ok := w.TxRange[v]; ok {
		return r
	}
	return w.Range
}

// CanReach reports whether a transmission by u is receivable by v (u is
// in the vicinity of v): both present, within u's TX range, and no wall
// between them. Wall tests go through the segment-to-cell index, so the
// cost is O(walls near the link), not O(all walls).
func (w *World) CanReach(u, v ident.NodeID) bool {
	if u == v {
		return false
	}
	pu, ok := w.pos[u]
	if !ok {
		return false
	}
	pv, ok := w.pos[v]
	if !ok {
		return false
	}
	w.validate()
	if pu.Dist(pv) > w.rangeOf(u) {
		return false
	}
	return !w.wallBlocked(pu, pv)
}

// SymmetricGraph returns the undirected graph of bidirectional links —
// the topology G_c the specification predicates are evaluated on. Nodes
// present in the world always appear, even isolated. The result is
// cached on the world generation: when nothing moved since the last
// call, the same graph (same pointer, same mutation generation) is
// returned, so downstream receiver caches stay hot. Callers must treat
// the returned graph as read-only.
// Rebuilds go down one of two paths with identical results: when only a
// small fraction of nodes moved since the last build (and the membership
// and radio configuration stayed put), the delta path re-scans just the
// movers' vicinities and patches the previous CSR through
// graph.ApplyDelta; otherwise the full 64-shard fan-out rebuild runs.
func (w *World) SymmetricGraph() *graph.G {
	w.validate()
	if w.symGraph != nil && w.symGen == w.gen {
		return w.symGraph
	}
	nodes := w.Nodes()
	var g *graph.G
	if w.deltaViable(len(nodes)) {
		prev := w.symGraph
		g = w.buildSymmetricGraphDelta(prev)
		w.recordRowDelta(prev, g)
	} else {
		g = w.buildSymmetricGraph(nodes)
		w.rowDirtyFrom, w.rowDirtyTo = nil, nil
	}
	w.symGraph, w.symGen = g, w.gen
	w.movedDirty = w.movedDirty[:0]
	w.movedUnique = 0
	w.deltaFull = false
	return g
}

// Receivers returns the nodes able to receive a transmission from u, in
// ascending order. Candidates come from the 3×3 cell neighborhood of u
// (sufficient because no TX range exceeds the cell size), so the cost is
// O(local density · log), not O(n log n).
func (w *World) Receivers(u ident.NodeID) []ident.NodeID {
	return w.AppendReceivers(u, nil)
}

// AppendReceivers appends the receivers of u in ascending order to buf
// and returns the extended slice — the allocation-free variant the
// engine's build phase recycles its receiver buffers through. Safe for
// concurrent use once the index is built (the engine calls it from
// several workers; each passes its own buffer).
// ReceiverRow returns u's receiver set as a zero-copy view of its row in
// the cached symmetric graph, plus true — or (nil, false) when rows
// cannot be served (per-node range overrides make reachability
// asymmetric, or the graph cache is stale). The view aliases the graph's
// CSR storage and must be treated as read-only; because delta rebuilds
// share every untouched row between generations, an identical view
// (same backing, same length) across ticks means an identical receiver
// set — rows are never mutated in place once shared (graph.ApplyDelta
// privatizes before writing). A (nil, true) return means u is absent or
// isolated.
func (w *World) ReceiverRow(u ident.NodeID) ([]ident.NodeID, bool) {
	if len(w.TxRange) != 0 {
		return nil, false
	}
	w.validate()
	if w.symGraph == nil || w.symGen != w.gen {
		return nil, false
	}
	// The current graph carries every world node (isolated included), so
	// the index probe doubles as the membership check.
	i := w.symGraph.IndexOf(u)
	if i < 0 {
		return nil, true
	}
	return w.symGraph.NeighborsAt(i), true
}

// RowsChanged returns (a superset of) the nodes whose ReceiverRow may
// differ between the graph since and the currently cached graph, plus
// true — or (nil, false) when the current graph is not one delta step
// from since (full rebuild, membership churn, stale cache, or per-node
// range overrides). With a true return, every node absent from the
// slice is guaranteed an identical receiver row in both graphs, so a
// driver can invalidate its receiver caches per-node instead of
// wholesale. The slice aliases internal storage: read-only, valid until
// the next rebuild.
func (w *World) RowsChanged(since *graph.G) ([]ident.NodeID, bool) {
	if len(w.TxRange) != 0 {
		return nil, false
	}
	w.validate()
	if w.symGraph == nil || w.symGen != w.gen {
		return nil, false
	}
	if w.rowDirtyFrom == nil || w.rowDirtyFrom != since || w.rowDirtyTo != w.symGraph {
		return nil, false
	}
	return w.rowDirty, true
}

// recordRowDelta derives the RowsChanged set of a delta rebuild from the
// update rows the build just scanned (still in updBuf): an edge can only
// have appeared or disappeared between a mover and a member of its old or
// new row, so movers plus both rows cover every changed row. The set
// overapproximates — a neighbor that kept its edge to a mover is listed
// though its row is unchanged — which only costs the driver a cheap
// revalidation, never a stale cache.
func (w *World) recordRowDelta(prev, g *graph.G) {
	d := w.rowDirty[:0]
	for _, upd := range w.updBuf {
		d = append(d, upd.Node)
		d = append(d, upd.Adj...)
		if i := prev.IndexOf(upd.Node); i >= 0 {
			d = append(d, prev.NeighborsAt(i)...)
		}
	}
	sortIDs(d)
	w.rowDirty = compactIDs(d)
	w.rowDirtyFrom, w.rowDirtyTo = prev, g
}

func (w *World) AppendReceivers(u ident.NodeID, buf []ident.NodeID) []ident.NodeID {
	w.validate()
	// With no per-node range overrides, reachability is symmetric (same
	// range both ways, walls block both directions alike), so the receiver
	// set of u is exactly its row in the cached symmetric graph. When that
	// cache is current — the engine always rebuilds the graph before the
	// build phase queries receivers — the 3×3 vicinity scan and its sort
	// collapse into one CSR row copy.
	if len(w.TxRange) == 0 && w.symGraph != nil && w.symGen == w.gen {
		if _, ok := w.pos[u]; !ok {
			return buf
		}
		return w.symGraph.AppendNeighbors(u, buf)
	}
	pu, ok := w.pos[u]
	if !ok {
		return buf
	}
	r := w.rangeOf(u)
	k := w.cellOf[u]
	start := len(buf)
	for cx := k.cx - 1; cx <= k.cx+1; cx++ {
		for cy := k.cy - 1; cy <= k.cy+1; cy++ {
			for _, c := range w.cells[cellKey{cx, cy}] {
				if c.id == u {
					continue
				}
				if pu.Dist(c.pt) > r {
					continue
				}
				if w.wallBlocked(pu, c.pt) {
					continue
				}
				buf = append(buf, c.id)
			}
		}
	}
	slices.Sort(buf[start:])
	return buf
}

// segmentsCross reports proper intersection between segments pq and ab
// (shared endpoints count as crossing — a wall touching the link blocks it,
// the conservative choice for an obstacle model).
func segmentsCross(p, q, a, b Point) bool {
	d1 := orient(a, b, p)
	d2 := orient(a, b, q)
	d3 := orient(p, q, a)
	d4 := orient(p, q, b)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return onSegment(a, b, p) || onSegment(a, b, q) || onSegment(p, q, a) || onSegment(p, q, b)
}

func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func onSegment(a, b, p Point) bool {
	if orient(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}
