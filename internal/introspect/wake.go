package introspect

import "repro/internal/ident"

// WakeRec is one attributed wake: a node that failed its quiet-round
// check, the gate that broke it, and — for the inbox causes — the first
// offending sender slot in signature order (ident.None otherwise). The
// engine accumulates these per shard and merges them in shard-major
// canonical order, so a wake trace is bit-identical at any worker count,
// like every other deterministic artifact.
type WakeRec struct {
	Node   ident.NodeID
	Cause  WakeCause
	Sender ident.NodeID
}
