// Package introspect is the engine's flight recorder: a zero-alloc,
// deterministic metrics registry plus live profiling surfaces.
//
// The registry splits into two strictly separated sections:
//
//   - The deterministic core: monotonic event counters (CounterID). Every
//     counter is incremented either on the coordinator between phases or
//     in per-shard lanes written only by the owning shard's worker — the
//     same discipline the engine's phase fan-out uses — and totals are
//     folded in shard order. Counts are therefore bit-identical at any
//     worker count and any GOMAXPROCS: instrumentation is a correctness
//     artifact the conformance suite pins, not a sampled dashboard.
//   - The wall-clock section: per-phase nanosecond accumulators
//     (PhaseNs). Timings are machine- and load-dependent by nature, so
//     they live outside the counter block and never participate in any
//     determinism comparison — a snapshot carries them separately.
//
// All cells are updated with atomic operations, so a live HTTP observer
// (Serve) can read a consistent-enough snapshot while the engine runs
// without perturbing the phases with locks. The per-shard lanes make the
// hot-path cost one uncontended atomic add per counter flush: engine
// phases accumulate in locals and flush once per shard per phase.
package introspect

import "sync/atomic"

// CounterID names one deterministic counter. The wake-cause block
// (CtrWakeFresh..CtrWakeQuietReplay) is contiguous and mirrors WakeCause,
// which WakeCause.Counter relies on.
type CounterID uint8

const (
	// CtrTicks counts engine steps.
	CtrTicks CounterID = iota

	// Build phase.
	CtrMessagesSent   // broadcasts handed to the channel
	CtrBytesSent      // their encoded sizes
	CtrMsgBuilds      // broadcasts actually assembled (BuildMessage ran)
	CtrMsgCacheHits   // sends served from the version-validated message cache
	CtrRecvCacheHits  // receiver sets served on a current epoch (no check at all)
	CtrRecvRowHits    // stale epoch revalidated by row identity (pointer compare)
	CtrRecvRowRefills // stale epoch refilled from a changed topology row
	CtrRecvRebuilds   // stale epoch re-derived via AppendReceivers (no row served)

	// Topology/receiver-cache invalidation (coordinator side).
	CtrGraphDeltaRounds // graph changes absorbed as per-sender dirty-row demotions
	CtrGraphFullRounds  // graph/membership changes that bumped the global epoch
	CtrRecvRowDemotions // individual sender records demoted by a delta step

	// Arbitrate phase.
	CtrRadioDrops // deliveries the channel suppressed (radio.DropCounter delta)

	// Deliver phase.
	CtrDeliveries       // successful receptions resolved to a receiver
	CtrDeliveriesElided // repeats of an unchanged broadcast elided via the signature

	// Compute phase.
	CtrComputesRun     // full protocol computes executed
	CtrComputesSkipped // compute boundaries satisfied by the activity skip
	CtrSkipFixpoint    // …as O(1) fixpoint replays
	CtrSkipLonely      // …as O(1) lonely replays
	CtrSkipHeld        // …as O(1) held replays (boundary memory in flight)
	CtrSkipMemo        // …as O(1) memoized replays (content digest re-proved the fixpoint)

	// Wake attribution: why a full compute ran (one cause per compute;
	// the block mirrors WakeCause — see classify in internal/engine).
	CtrWakeFresh       // node never computed since (re)joining
	CtrWakeSelfActive  // its own previous round was not a no-op (not armed)
	CtrWakeVersionBump // state version moved outside compute (LoadState, crash reload)
	CtrWakeHoldExpiry  // boundary-memory hold horizon reached
	CtrWakeMemoMiss    // signature churned in versions only, but no memo proof covered it
	CtrWakeInboxNew    // inbox signature gained or changed a sender entry
	CtrWakeInboxLost   // inbox signature lost a sender entry (silence, departure)
	CtrWakeQuietReplay // skip-eligible round computed anyway (EagerCompute)

	// Fault injection (internal/fault routes emit through the registry).
	CtrFaultsInjected     // fault events emitted
	CtrFaultNodesAffected // nodes those events touched

	// Observation (obs.GroupTracker).
	CtrObsRounds           // tracker observations
	CtrObsContinuityBreaks // observations with ΠC false
	CtrObsTopologyBreaks   // observations with ΠT false
	CtrObsUnexcusedBreaks  // ΠC false while ΠT held
	CtrObsViolatingNodes   // total nodes that lost a group member

	// Distributed boundary exchange (internal/dist).
	CtrBoundaryBytesSent    // encoded boundary-batch bytes shipped to peers
	CtrBoundaryBytesRecv    // encoded boundary-batch bytes received from peers
	CtrBoundaryFrames       // full broadcast frames shipped (ghost updates sent)
	CtrBoundaryFramesElided // boundary entries elided to a version header (peer replays its ghost)
	CtrGhostUpdates         // ghost replicas refreshed from a received full frame
	CtrExtDeliveries        // receptions injected across the process boundary

	// NumCounters sizes every lane.
	NumCounters
)

// counterNames maps CounterID to the stable snake_case names snapshots,
// JSONL flight records and the HTTP endpoint use.
var counterNames = [NumCounters]string{
	CtrTicks:               "ticks",
	CtrMessagesSent:        "messages_sent",
	CtrBytesSent:           "bytes_sent",
	CtrMsgBuilds:           "msg_builds",
	CtrMsgCacheHits:        "msg_cache_hits",
	CtrRecvCacheHits:       "recv_cache_hits",
	CtrRecvRowHits:         "recv_row_hits",
	CtrRecvRowRefills:      "recv_row_refills",
	CtrRecvRebuilds:        "recv_rebuilds",
	CtrGraphDeltaRounds:    "graph_delta_rounds",
	CtrGraphFullRounds:     "graph_full_rounds",
	CtrRecvRowDemotions:    "recv_row_demotions",
	CtrRadioDrops:          "radio_drops",
	CtrDeliveries:          "deliveries",
	CtrDeliveriesElided:    "deliveries_elided",
	CtrComputesRun:         "computes_run",
	CtrComputesSkipped:     "computes_skipped",
	CtrSkipFixpoint:        "skips_fixpoint",
	CtrSkipLonely:          "skips_lonely",
	CtrSkipHeld:            "skips_held",
	CtrSkipMemo:            "skips_memo",
	CtrWakeFresh:           "wakes_fresh",
	CtrWakeSelfActive:      "wakes_self_active",
	CtrWakeVersionBump:     "wakes_version_bump",
	CtrWakeHoldExpiry:      "wakes_hold_expiry",
	CtrWakeMemoMiss:        "wakes_memo_miss",
	CtrWakeInboxNew:        "wakes_inbox_new",
	CtrWakeInboxLost:       "wakes_inbox_lost",
	CtrWakeQuietReplay:     "wakes_quiet_replay",
	CtrFaultsInjected:      "faults_injected",
	CtrFaultNodesAffected:  "fault_nodes_affected",
	CtrObsRounds:           "obs_rounds",
	CtrObsContinuityBreaks: "obs_continuity_breaks",
	CtrObsTopologyBreaks:   "obs_topology_breaks",
	CtrObsUnexcusedBreaks:  "obs_unexcused_breaks",
	CtrObsViolatingNodes:   "obs_violating_nodes",

	CtrBoundaryBytesSent:    "boundary_bytes_sent",
	CtrBoundaryBytesRecv:    "boundary_bytes_recv",
	CtrBoundaryFrames:       "boundary_frames",
	CtrBoundaryFramesElided: "boundary_frames_elided",
	CtrGhostUpdates:         "ghost_updates",
	CtrExtDeliveries:        "ext_deliveries",
}

// String returns the counter's stable snake_case name.
func (id CounterID) String() string {
	if id < NumCounters {
		return counterNames[id]
	}
	return "counter(?)"
}

// WakeCause says which gate of the activity-skip check broke, forcing a
// full compute. Exactly one cause is attributed per executed compute, so
// the per-cause histogram always accounts for 100% of CtrComputesRun.
// The order mirrors the skip predicate's evaluation order (and the
// contiguous CtrWake* counter block).
type WakeCause uint8

const (
	// WakeFresh: the node has never computed since (re)joining — there is
	// no quiet round to replay yet.
	WakeFresh WakeCause = iota
	// WakeSelfActive: the node's own previous round changed its state
	// (not armed) — it is genuinely active.
	WakeSelfActive
	// WakeVersionBump: the state version moved since the quiet round
	// outside the compute path (LoadState — crash recovery, corruption).
	WakeVersionBump
	// WakeHoldExpiry: a held replay reached its boundary-memory horizon;
	// the expiring round must run in full.
	WakeHoldExpiry
	// WakeMemoMiss: the inbox signature kept the same sender set (every
	// id and incarnation matched) but some versions moved — exactly the
	// shape the fixpoint memo covers — yet no stored proof matched the
	// inbox content, so the round computed in full. Classification is a
	// pure function of the two signatures (the memo table is never read),
	// so the histogram stays bit-identical across modes and worker counts.
	WakeMemoMiss
	// WakeInboxNew: the inbox signature gained or changed a sender entry
	// — fresh traffic, including a neighbor arriving through a topology
	// or membership change (the dirty-row wakes of a mobile world).
	WakeInboxNew
	// WakeInboxLost: the signature lost a sender entry — a neighbor went
	// silent, departed, or moved out of range.
	WakeInboxLost
	// WakeQuietReplay: every gate held — the round was skip-eligible but
	// computed anyway (EagerCompute). Zero on the default path.
	WakeQuietReplay

	// NumWakeCauses sizes per-cause accumulators.
	NumWakeCauses
)

var wakeNames = [NumWakeCauses]string{
	WakeFresh:       "fresh",
	WakeSelfActive:  "self_active",
	WakeVersionBump: "version_bump",
	WakeHoldExpiry:  "hold_expiry",
	WakeMemoMiss:    "memo_miss",
	WakeInboxNew:    "inbox_new",
	WakeInboxLost:   "inbox_lost",
	WakeQuietReplay: "quiet_replay",
}

// String returns the cause's stable snake_case name.
func (c WakeCause) String() string {
	if c < NumWakeCauses {
		return wakeNames[c]
	}
	return "cause(?)"
}

// Counter returns the registry counter accumulating this cause.
func (c WakeCause) Counter() CounterID { return CtrWakeFresh + CounterID(c) }

// Phase names one engine phase for the wall-clock section.
type Phase uint8

const (
	PhaseAdvance Phase = iota
	PhaseBuild
	PhaseArbitrate
	PhaseDeliver
	PhaseCompute

	// NumPhases sizes the timing accumulators.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseAdvance:   "advance",
	PhaseBuild:     "build",
	PhaseArbitrate: "arbitrate",
	PhaseDeliver:   "deliver",
	PhaseCompute:   "compute",
}

// String returns the phase's name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Lane is one write-isolated block of counters: either a shard's lane
// (written only by the worker owning that shard) or the coordinator's.
// Writes are atomic so a live HTTP reader never races them.
type Lane [NumCounters]uint64

// Add adds d to the counter. Zero deltas are skipped, so hot loops can
// flush whole local blocks unconditionally.
func (l *Lane) Add(id CounterID, d uint64) {
	if d != 0 {
		atomic.AddUint64(&l[id], d)
	}
}

// Inc adds one.
func (l *Lane) Inc(id CounterID) { atomic.AddUint64(&l[id], 1) }

// Registry is one engine's flight recorder. The zero value is not usable;
// call NewRegistry. All methods are safe for the engine's phase
// concurrency discipline plus any number of concurrent readers.
type Registry struct {
	shards  []Lane           // per-shard lanes, owned by the shard's worker
	coord   Lane             // coordinator-side events
	phaseNs [NumPhases]int64 // wall-clock section (atomic)
}

// NewRegistry builds a registry for an engine with the given shard count.
func NewRegistry(shards int) *Registry {
	return &Registry{shards: make([]Lane, shards)}
}

// Shard returns shard s's lane. Only shard s's worker may write it.
func (r *Registry) Shard(s int) *Lane { return &r.shards[s] }

// Inc increments a coordinator-side counter.
func (r *Registry) Inc(id CounterID) { r.coord.Inc(id) }

// Add adds to a coordinator-side counter.
func (r *Registry) Add(id CounterID, d uint64) { r.coord.Add(id, d) }

// Get folds one counter's total: the coordinator cell plus every shard
// lane, in shard order. Addition is commutative, so the total cannot
// depend on the worker count — the property the conformance suite pins.
func (r *Registry) Get(id CounterID) uint64 {
	t := atomic.LoadUint64(&r.coord[id])
	for s := range r.shards {
		t += atomic.LoadUint64(&r.shards[s][id])
	}
	return t
}

// AddPhaseNs accumulates wall-clock nanoseconds for one phase. This is
// the only mutator of the non-deterministic section.
func (r *Registry) AddPhaseNs(p Phase, ns int64) {
	atomic.AddInt64(&r.phaseNs[p], ns)
}

// PhaseNs returns one phase's accumulated wall-clock nanoseconds.
func (r *Registry) PhaseNs(p Phase) int64 {
	return atomic.LoadInt64(&r.phaseNs[p])
}

// Counters folds every counter into a name→total map (a fresh map per
// call — snapshots are handed to sinks that retain them).
func (r *Registry) Counters() map[string]uint64 {
	out := make(map[string]uint64, NumCounters)
	for id := CounterID(0); id < NumCounters; id++ {
		out[counterNames[id]] = r.Get(id)
	}
	return out
}

// Snapshot is one point-in-time view of the registry: the deterministic
// counter section and the wall-clock section, kept in separate maps so
// consumers can never conflate them.
type Snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	PhaseNs  map[string]int64  `json:"phase_ns"`
}

// Snapshot captures the registry. Counters are exact under the engine's
// between-steps quiescence; read live they are monotonic but may span a
// phase boundary.
func (r *Registry) Snapshot() Snapshot {
	ph := make(map[string]int64, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		ph[phaseNames[p]] = r.PhaseNs(p)
	}
	return Snapshot{Counters: r.Counters(), PhaseNs: ph}
}
