package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live introspection endpoint: net/http/pprof for CPU, heap
// and execution-trace profiling of a running engine, plus the registry's
// flight-recorder snapshot as expvar-style JSON. It rides its own mux on
// its own listener, so arming it never touches any default global state.
//
// Endpoints:
//
//	/debug/pprof/...   the standard pprof index, profiles and trace
//	/debug/registry    Snapshot (counters + phase_ns) as JSON
//	/                  a one-page index
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewMux builds the introspection handler tree. reg may be nil (a
// profiling-only surface, e.g. a driver running many engines): the
// registry endpoint then serves an empty snapshot.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/registry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := Snapshot{Counters: map[string]uint64{}, PhaseNs: map[string]int64{}}
		if reg != nil {
			snap = reg.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "flight recorder\n\n/debug/registry\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the introspection server on addr (e.g. "localhost:6060";
// a ":0" port picks a free one — read it back with Addr). It returns as
// soon as the listener is bound; the caller owns the Server and must
// Close it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 10 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and drops in-flight connections (the
// surface is diagnostic; a soak run must never block on a slow scraper).
func (s *Server) Close() error { return s.srv.Close() }
