package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestCounterNamesComplete pins that every counter and every wake cause
// has a distinct stable name — the JSONL flight-record schema.
func TestCounterNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for id := CounterID(0); id < NumCounters; id++ {
		name := id.String()
		if name == "" || name == "counter(?)" {
			t.Fatalf("counter %d has no name", id)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	for c := WakeCause(0); c < NumWakeCauses; c++ {
		if c.String() == "cause(?)" {
			t.Fatalf("wake cause %d has no name", c)
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "phase(?)" {
			t.Fatalf("phase %d has no name", p)
		}
	}
}

// TestWakeCauseCounterAlignment pins the contiguous-block contract
// WakeCause.Counter relies on: cause names and counter names must agree.
func TestWakeCauseCounterAlignment(t *testing.T) {
	for c := WakeCause(0); c < NumWakeCauses; c++ {
		want := "wakes_" + c.String()
		if got := c.Counter().String(); got != want {
			t.Fatalf("cause %v maps to counter %q, want %q", c, got, want)
		}
	}
	if CtrWakeQuietReplay != WakeQuietReplay.Counter() {
		t.Fatal("wake block is not contiguous")
	}
}

// TestFoldAcrossLanes checks that Get folds the coordinator cell and
// every shard lane, and that the fold is independent of which lane was
// written (the commutativity behind worker-count invariance).
func TestFoldAcrossLanes(t *testing.T) {
	a := NewRegistry(8)
	b := NewRegistry(8)
	// Same events, different lane placement.
	a.Inc(CtrDeliveries)
	a.Shard(3).Add(CtrDeliveries, 4)
	a.Shard(7).Inc(CtrDeliveries)
	b.Shard(0).Add(CtrDeliveries, 6)
	if ga, gb := a.Get(CtrDeliveries), b.Get(CtrDeliveries); ga != 6 || gb != 6 {
		t.Fatalf("fold mismatch: %d vs %d, want 6", ga, gb)
	}
	if a.Counters()["deliveries"] != 6 {
		t.Fatal("Counters() disagrees with Get()")
	}
}

// TestConcurrentLaneWrites exercises the atomic discipline under the race
// detector: one goroutine per lane plus a concurrent reader.
func TestConcurrentLaneWrites(t *testing.T) {
	r := NewRegistry(8)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lane := r.Shard(s)
			for i := 0; i < 1000; i++ {
				lane.Inc(CtrComputesRun)
				lane.Add(CtrBytesSent, 3)
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Get(CtrComputesRun)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Get(CtrComputesRun); got != 8000 {
		t.Fatalf("lost updates: %d, want 8000", got)
	}
	if got := r.Get(CtrBytesSent); got != 24000 {
		t.Fatalf("lost updates: %d, want 24000", got)
	}
}

// TestPhaseNsSeparation pins that wall-clock timings never leak into the
// deterministic counter section of a snapshot.
func TestPhaseNsSeparation(t *testing.T) {
	r := NewRegistry(4)
	r.AddPhaseNs(PhaseCompute, 1234)
	r.Inc(CtrTicks)
	snap := r.Snapshot()
	if snap.PhaseNs["compute"] != 1234 {
		t.Fatalf("phase_ns: %v", snap.PhaseNs)
	}
	for name := range snap.Counters {
		for p := Phase(0); p < NumPhases; p++ {
			if name == p.String() {
				t.Fatalf("phase name %q leaked into the counter section", name)
			}
		}
	}
	if len(snap.Counters) != int(NumCounters) {
		t.Fatalf("snapshot has %d counters, want %d", len(snap.Counters), NumCounters)
	}
}

// TestServe drives the HTTP surface end to end: registry JSON, the pprof
// index, and a nil-registry (profiling-only) mux.
func TestServe(t *testing.T) {
	reg := NewRegistry(4)
	reg.Inc(CtrTicks)
	reg.Shard(1).Add(CtrDeliveries, 7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/registry"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["ticks"] != 1 || snap.Counters["deliveries"] != 7 {
		t.Fatalf("registry endpoint: %v", snap.Counters)
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("empty pprof index")
	}

	bare, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/registry", bare.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var empty Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Counters) != 0 {
		t.Fatalf("nil-registry endpoint served counters: %v", empty.Counters)
	}
}
