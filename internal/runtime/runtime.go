// Package runtime is the live deployment substrate: every GRP node runs
// as its own goroutine with real send/compute timers, exchanging messages
// over channels through a router goroutine that models the radio
// topology. Where internal/sim is the deterministic instrument for
// experiments, this package is how the protocol actually deploys — nodes
// and message passing map one-to-one onto goroutines and channels.
//
// The cluster is built on the shared driver layer of internal/engine: the
// radio relation is an engine.Topology (so a live cluster can route over
// a fixed graph or any other vicinity relation, exactly like the
// deterministic engine does), and membership is an engine.Roster, the
// incrementally ordered node table both drivers share. Tests and
// applications mutate the topology with SetGraph (e.g. as vehicles move).
// All interaction with a node's protocol state goes through its
// goroutine, so there is no shared-memory access to core.Node.
package runtime

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/introspect"
)

// Config parameterizes a live cluster.
type Config struct {
	// Protocol is the GRP configuration shared by all nodes.
	Protocol core.Config
	// SendEvery is the Ts timer (τ2); default 20ms.
	SendEvery time.Duration
	// ComputeEvery is the Tc timer (τ1 ≥ τ2); default 2·SendEvery.
	ComputeEvery time.Duration
	// Buffer is the per-node inbox size; default 64. A full inbox drops
	// the incoming message (radio loss), never blocks the router.
	Buffer int
}

func (c *Config) normalize() error {
	if c.SendEvery <= 0 {
		c.SendEvery = 20 * time.Millisecond
	}
	if c.ComputeEvery <= 0 {
		c.ComputeEvery = 2 * c.SendEvery
	}
	if c.ComputeEvery < c.SendEvery {
		return errors.New("runtime: ComputeEvery must be ≥ SendEvery")
	}
	if c.Buffer <= 0 {
		c.Buffer = 64
	}
	return nil
}

// Cluster is a set of live protocol nodes plus the router.
type Cluster struct {
	cfg Config

	mu      sync.RWMutex
	topo    engine.Topology
	ownTopo bool // topology built by the cluster (New/SetGraph), safe to mutate
	roster  *engine.Roster
	procs   map[ident.NodeID]*proc

	broadcasts chan core.Message
	done       chan struct{}
	wg         sync.WaitGroup

	// reg is the cluster's flight-recorder registry (coordinator lane
	// only — the live cluster has no shard structure and no determinism
	// contract; the counters are exact, not reproducible). The router
	// goroutine writes through atomic cells, so observers — including a
	// live introspect HTTP scraper — read without synchronizing.
	reg *introspect.Registry
}

// proc is one node goroutine's handle.
type proc struct {
	id    ident.NodeID
	inbox chan core.Message
	query chan chan state
	stop  chan struct{}
}

// state is a consistent snapshot of one node's observable outputs.
type state struct {
	view []ident.NodeID
	list int // list length, for diagnostics
}

// New creates a cluster over the given graph (which may be mutated later
// via SetGraph) and starts one goroutine per node plus the router.
func New(cfg Config, g *graph.G) (*Cluster, error) {
	c, err := NewWithTopology(cfg, &engine.StaticTopology{G: g.Clone()})
	if err == nil {
		c.ownTopo = true
	}
	return c, err
}

// NewWithTopology creates a cluster routing over an arbitrary vicinity
// relation — the same Topology abstraction the deterministic engine
// drives. The topology stays caller-owned: as with the deterministic
// engine's RemoveNode, Remove stops a node's goroutine but the caller is
// responsible for taking the node out of its own topology.
func NewWithTopology(cfg Config, topo engine.Topology) (*Cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		topo:       topo,
		roster:     engine.NewRoster(),
		procs:      make(map[ident.NodeID]*proc),
		broadcasts: make(chan core.Message, 256),
		done:       make(chan struct{}),
		reg:        introspect.NewRegistry(0),
	}
	c.wg.Add(1)
	go c.route()
	for _, v := range topo.Nodes() {
		c.startNode(v)
	}
	return c, nil
}

// startNode spawns the goroutine for node v.
func (c *Cluster) startNode(v ident.NodeID) {
	p := &proc{
		id:    v,
		inbox: make(chan core.Message, c.cfg.Buffer),
		query: make(chan chan state),
		stop:  make(chan struct{}),
	}
	c.mu.Lock()
	c.procs[v] = p
	c.roster.Add(v)
	c.mu.Unlock()
	c.wg.Add(1)
	go c.run(p)
}

// run is the node goroutine: the paper's main algorithm verbatim — receive
// into the message set, send on Ts, compute on Tc.
func (c *Cluster) run(p *proc) {
	defer c.wg.Done()
	n := core.NewNode(p.id, c.cfg.Protocol)
	sendT := time.NewTicker(c.cfg.SendEvery)
	computeT := time.NewTicker(c.cfg.ComputeEvery)
	defer sendT.Stop()
	defer computeT.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-c.done:
			return
		case m := <-p.inbox:
			n.Receive(m)
		case <-sendT.C:
			m := n.BuildMessage()
			select {
			case c.broadcasts <- m:
			case <-c.done:
				return
			}
		case <-computeT.C:
			n.Compute()
		case reply := <-p.query:
			reply <- state{view: n.View(), list: n.List().Len()}
		}
	}
}

// route is the radio goroutine: it fans each broadcast out to the nodes
// the topology says can hear the sender. A full inbox counts as radio
// loss.
func (c *Cluster) route() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case m := <-c.broadcasts:
			c.mu.RLock()
			c.reg.Inc(introspect.CtrMessagesSent)
			for _, u := range c.topo.Receivers(m.From) {
				if p, ok := c.procs[u]; ok {
					select {
					case p.inbox <- m:
						c.reg.Inc(introspect.CtrDeliveries)
					default:
						// Inbox full: drop, like a busy radio — but never
						// silently; chaos runs correlate this counter with
						// the violation predicates.
						c.reg.Inc(introspect.CtrRadioDrops)
					}
				}
			}
			c.mu.RUnlock()
		}
	}
}

// SetGraph atomically replaces the communication topology (mobility).
// Nodes present in the new graph but not yet running are started; nodes
// no longer present keep running but become unreachable (use Remove to
// stop them).
func (c *Cluster) SetGraph(g *graph.G) {
	c.mu.Lock()
	c.topo = &engine.StaticTopology{G: g.Clone()}
	c.ownTopo = true
	missing := []ident.NodeID{}
	for _, v := range g.Nodes() {
		if _, ok := c.procs[v]; !ok {
			missing = append(missing, v)
		}
	}
	c.mu.Unlock()
	for _, v := range missing {
		c.startNode(v)
	}
}

// Graph returns a copy of the current topology.
func (c *Cluster) Graph() *graph.G {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.topo.Graph().Clone()
}

// Remove stops node v's goroutine (the node leaves the network). When
// the cluster owns its topology (New, SetGraph) the node is also removed
// from it; a caller-provided topology (NewWithTopology) stays untouched —
// the caller removes the node from its own vicinity relation, exactly as
// with the deterministic engine.
func (c *Cluster) Remove(v ident.NodeID) {
	c.mu.Lock()
	p, ok := c.procs[v]
	if ok {
		delete(c.procs, v)
		c.roster.Remove(v)
		if st, isStatic := c.topo.(*engine.StaticTopology); isStatic && c.ownTopo {
			st.G.RemoveNode(v)
		}
	}
	c.mu.Unlock()
	if ok {
		close(p.stop)
	}
}

// View queries node v's current view; nil if v is not running.
func (c *Cluster) View(v ident.NodeID) []ident.NodeID {
	c.mu.RLock()
	p, ok := c.procs[v]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	reply := make(chan state, 1)
	select {
	case p.query <- reply:
		st := <-reply
		return st.view
	case <-c.done:
		return nil
	case <-p.stop:
		return nil
	}
}

// Views snapshots every running node's view, in the roster's ascending
// order. The snapshot is not a consistent global cut (nodes answer at
// slightly different instants), which is faithful to how a distributed
// observer would see the system.
func (c *Cluster) Views() map[ident.NodeID][]ident.NodeID {
	return c.viewsOf(c.memberIDs())
}

// memberIDs copies the roster's current ascending membership.
func (c *Cluster) memberIDs() []ident.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]ident.NodeID(nil), c.roster.IDs()...)
}

// viewsOf queries exactly the given nodes' views.
func (c *Cluster) viewsOf(ids []ident.NodeID) map[ident.NodeID][]ident.NodeID {
	out := make(map[ident.NodeID][]ident.NodeID, len(ids))
	for _, v := range ids {
		if vw := c.View(v); vw != nil {
			out[v] = vw
		}
	}
	return out
}

// AwaitStableViews polls until every running node's view has been
// identical for `stable` consecutive polls or the timeout elapses.
// Returns true on stability. Polling starts after a warmup of several
// compute periods so the initial all-singleton stillness (before the
// handshakes complete) does not count as stability.
func (c *Cluster) AwaitStableViews(timeout time.Duration, stable int) bool {
	if stable < 2 {
		stable = 2
	}
	warmup := time.Duration(c.cfg.Protocol.Dmax+4) * c.cfg.ComputeEvery
	select {
	case <-time.After(warmup):
	case <-c.done:
		return false
	}
	deadline := time.Now().Add(timeout)
	var prev string
	streak := 0
	for time.Now().Before(deadline) {
		// One membership snapshot feeds both the query and the
		// fingerprint, so a node started mid-poll cannot appear in the
		// views while being skipped by the fingerprint (which would let
		// an unsettled newcomer slip past the stability check).
		ids := c.memberIDs()
		cur := fingerprint(ids, c.viewsOf(ids))
		if cur == prev {
			streak++
			if streak >= stable {
				return true
			}
		} else {
			streak = 0
			prev = cur
		}
		time.Sleep(c.cfg.ComputeEvery)
	}
	return false
}

// Introspect returns the cluster's flight-recorder registry (routed
// broadcasts, deliveries, inbox-overflow drops) — servable live via
// introspect.Serve, like the deterministic engine's.
func (c *Cluster) Introspect() *introspect.Registry { return c.reg }

// DroppedMessages returns the cumulative count of messages the router
// dropped on full inboxes. It implements radio.DropCounter, so obs-side
// consumers can treat the live cluster's loss like any counting channel.
func (c *Cluster) DroppedMessages() uint64 { return c.reg.Get(introspect.CtrRadioDrops) }

// DroppedDeliveries implements radio.DropCounter.
func (c *Cluster) DroppedDeliveries() uint64 { return c.reg.Get(introspect.CtrRadioDrops) }

// Close stops every goroutine and waits for them.
func (c *Cluster) Close() {
	close(c.done)
	c.wg.Wait()
}

// fingerprint renders the views in the given (ascending) id order. Full
// decimal IDs, unlike the seed's byte(v) truncation, so clusters with
// node IDs ≥ 256 cannot alias two distinct view states.
func fingerprint(ids []ident.NodeID, views map[ident.NodeID][]ident.NodeID) string {
	b := make([]byte, 0, 16*len(ids))
	for _, v := range ids {
		vw, ok := views[v]
		if !ok {
			continue
		}
		b = strconv.AppendUint(b, uint64(v), 10)
		b = append(b, ':')
		for _, u := range vw {
			b = strconv.AppendUint(b, uint64(u), 10)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}
