package runtime

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
)

func fastCfg(dmax int) Config {
	return Config{
		Protocol:     core.Config{Dmax: dmax},
		SendEvery:    2 * time.Millisecond,
		ComputeEvery: 5 * time.Millisecond,
	}
}

func TestLiveLineConverges(t *testing.T) {
	c, err := New(fastCfg(4), graph.Line(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []ident.NodeID{1, 2, 3, 4, 5}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		good := true
		for v := ident.NodeID(1); v <= 5; v++ {
			if !reflect.DeepEqual(c.View(v), want) {
				good = false
				break
			}
		}
		if good {
			if !c.AwaitStableViews(2*time.Second, 3) {
				t.Fatalf("views converged but did not stay stable: %v", c.Views())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no convergence: %v", c.Views())
}

func TestLiveLinkCutSplits(t *testing.T) {
	g := graph.Line(4)
	c, err := New(fastCfg(3), g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.AwaitStableViews(5*time.Second, 5) {
		t.Fatalf("no initial stability: %v", c.Views())
	}
	g.RemoveEdge(2, 3)
	c.SetGraph(g)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		v2, v3 := c.View(2), c.View(3)
		if reflect.DeepEqual(v2, []ident.NodeID{1, 2}) && reflect.DeepEqual(v3, []ident.NodeID{3, 4}) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("views did not split: %v", c.Views())
}

func TestLiveNodeJoin(t *testing.T) {
	g := graph.Line(3)
	c, err := New(fastCfg(3), g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.AwaitStableViews(5*time.Second, 5) {
		t.Fatal("no initial stability")
	}
	g.AddEdge(3, 4)
	c.SetGraph(g)
	deadline := time.Now().Add(5 * time.Second)
	want := []ident.NodeID{1, 2, 3, 4}
	for time.Now().Before(deadline) {
		if reflect.DeepEqual(c.View(1), want) && reflect.DeepEqual(c.View(4), want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("joiner not admitted: %v", c.Views())
}

func TestLiveRemoveNode(t *testing.T) {
	c, err := New(fastCfg(2), graph.Line(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.AwaitStableViews(5*time.Second, 5) {
		t.Fatal("no initial stability")
	}
	c.Remove(3)
	if c.View(3) != nil {
		t.Fatal("removed node still answers")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reflect.DeepEqual(c.View(2), []ident.NodeID{1, 2}) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("departure not detected: %v", c.Views())
}

// TestDroppedMessagesCounted forces inbox overflow — a dense clique,
// one-slot inboxes, aggressive send timers — and checks the router's
// drop counter surfaces the loss instead of discarding it silently.
func TestDroppedMessagesCounted(t *testing.T) {
	g := graph.New()
	const n = 8
	for u := ident.NodeID(1); u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			g.AddEdge(u, v)
		}
	}
	c, err := New(Config{
		Protocol:     core.Config{Dmax: 3},
		SendEvery:    200 * time.Microsecond,
		ComputeEvery: 400 * time.Microsecond,
		Buffer:       1,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.DroppedMessages() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("one-slot inboxes on a clique never overflowed — drop counter dead")
}

func TestConfigValidation(t *testing.T) {
	_, err := New(Config{Protocol: core.Config{Dmax: 2}, SendEvery: 10 * time.Millisecond, ComputeEvery: 5 * time.Millisecond}, graph.Line(2))
	if err == nil {
		t.Fatal("expected Tc < Ts to be rejected")
	}
}

func TestCloseIsIdempotentForQueries(t *testing.T) {
	c, err := New(fastCfg(2), graph.Line(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if v := c.View(1); v != nil {
		t.Fatalf("view after close = %v", v)
	}
}
