// Convoy management: a rigid platoon drives as one group; when the tail
// vehicle brakes and falls behind, the diameter bound forces exactly the
// stretched group to shed it — the controlled demonstration of the
// best-effort contract ΠT ⇒ ΠC on live mobility.
package main

import (
	"fmt"

	grp "repro"
)

func main() {
	const dmax = 3
	world := grp.NewWorld(4) // 4-unit radio range
	vehicles := []grp.NodeID{1, 2, 3, 4, 5}

	// Spacing 3 < range 4: a chain. The tail (vehicle 1) brakes after 6
	// time units and drops 2 speed units — it will drift out of range.
	topo := grp.NewSpatialTopology(world, &grp.Convoy{
		Spacing: 3, Speed: 12,
		StragglerEvery: 6, StragglerSlowdown: 2,
	}, 0.1, vehicles, nil)
	s := grp.NewSim(grp.SimParams{Cfg: grp.Config{Dmax: dmax}, Seed: 3}, topo)

	tr := grp.NewTracker()
	last := ""
	for round := 1; round <= 90; round++ {
		s.StepRound()
		snap := s.Snapshot()
		tr.Observe(snap, dmax)
		cur := fmt.Sprintf("%v", snap.Groups())
		if cur != last {
			fmt.Printf("round %3d: %s\n", round, cur)
			last = cur
		}
	}

	fmt.Printf("\ntopology stretches (ΠT breaks): %d\n", tr.TopologyBreaks)
	fmt.Printf("membership losses: %d, of which excused by a stretch: %d\n",
		tr.ContinuityViolations, tr.ExcusedViolations)
	fmt.Printf("unexcused losses (the best-effort contract): %d\n", tr.UnexcusedViolations)
}
