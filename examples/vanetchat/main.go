// VANET chat: the paper's infotainment motivation. Vehicles run live GRP
// nodes (one goroutine each, messages over channels); a chat application
// on every vehicle sends messages to exactly the members of its current
// view. Because of the agreement property, chat rooms are consistent;
// because of the diameter bound, they stay responsive (≤ Dmax hops);
// because of continuity, a room never silently loses a member while the
// vehicles stay in range.
package main

import (
	"fmt"
	"time"

	grp "repro"
)

// chatRoom is the trivial application layer: it addresses messages to the
// current view, which GRP keeps consistent across members.
type chatRoom struct {
	cluster *grp.LiveCluster
	me      grp.NodeID
}

func (c chatRoom) say(text string) {
	members := c.cluster.View(c.me)
	fmt.Printf("  %v → %v: %q\n", c.me, members, text)
}

func main() {
	cfg := grp.LiveConfig{
		Protocol:     grp.Config{Dmax: 2},
		SendEvery:    2 * time.Millisecond,
		ComputeEvery: 5 * time.Millisecond,
	}

	// Five vehicles in radio range of their neighbors: a platoon.
	road := grp.Line(5)
	cluster, err := grp.NewLiveCluster(cfg, road)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	fmt.Println("== waiting for the platoon's chat rooms to form ==")
	time.Sleep(time.Second) // let the merge negotiations settle
	cluster.AwaitStableViews(5*time.Second, 6)
	for v, view := range cluster.Views() {
		fmt.Printf("  vehicle %v is in room %v\n", v, view)
	}

	fmt.Println("\n== chatting ==")
	chatRoom{cluster, 2}.say("anyone up ahead?")
	chatRoom{cluster, 4}.say("traffic jam at the bridge")

	// Vehicle 5 exits the highway: its room must shed it (excused by the
	// topology change), the remaining members keep chatting.
	fmt.Println("\n== vehicle 5 takes the exit ==")
	cluster.Remove(5)
	road.RemoveNode(5)
	cluster.SetGraph(road)
	time.Sleep(500 * time.Millisecond)
	cluster.AwaitStableViews(5*time.Second, 6)
	for v, view := range cluster.Views() {
		fmt.Printf("  vehicle %v is in room %v\n", v, view)
	}
	chatRoom{cluster, 4}.say("looks like n5 left")
}
