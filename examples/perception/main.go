// Collaborative perception: the paper's second motivating application.
// Vehicles on a highway fuse their sensor readings with the other members
// of their group; the diameter bound Dmax keeps fused data spatially
// relevant (no far-away readings), the agreement property makes every
// member fuse over the same set, and continuity guarantees a vehicle's
// fusion set only shrinks when the topology genuinely stretched.
package main

import (
	"fmt"
	"math/rand"

	grp "repro"
)

// reading is one vehicle's sensed hazard estimate (say, friction).
type reading struct {
	vehicle grp.NodeID
	value   float64
}

// fuse averages the readings of the group members — a stand-in for any
// real fusion pipeline.
func fuse(view []grp.NodeID, all map[grp.NodeID]float64) (float64, int) {
	sum, n := 0.0, 0
	for _, v := range view {
		if x, ok := all[v]; ok {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func main() {
	const dmax = 4
	rng := rand.New(rand.NewSource(7))

	// Twelve vehicles on a two-lane highway with varied speeds.
	world := grp.NewWorld(8)
	var vehicles []grp.NodeID
	for i := 1; i <= 12; i++ {
		vehicles = append(vehicles, grp.NodeID(i))
	}
	topo := grp.NewSpatialTopology(world, &grp.Highway{
		Length: 80, Lanes: 2, LaneGap: 2, SpeedMin: 10, SpeedMax: 11,
	}, 0.05, vehicles, rng)
	s := grp.NewSim(grp.SimParams{Cfg: grp.Config{Dmax: dmax}, Seed: 7}, topo)

	// Let the groups form while traffic flows.
	for i := 0; i < 60; i++ {
		s.StepRound()
	}

	// Each vehicle senses the road.
	sensed := make(map[grp.NodeID]float64, len(vehicles))
	for _, v := range vehicles {
		sensed[v] = 0.4 + 0.2*rng.Float64()
	}
	// A local hazard at the front of the pack.
	sensed[1] = 0.05

	fmt.Println("== per-group fused perception ==")
	snap := s.Snapshot()
	for _, group := range snap.Groups() {
		leader := group[0]
		view := s.Nodes[leader].View()
		fused, n := fuse(view, sensed)
		fmt.Printf("  group %v: fused friction %.2f over %d sensors\n", group, fused, n)
	}

	// Keep driving: groups persist while distances allow, so the fusion
	// sets are stable input for downstream control loops.
	tr := grp.NewTracker()
	tr.Observe(snap, dmax)
	for i := 0; i < 40; i++ {
		s.StepRound()
		tr.Observe(s.Snapshot(), dmax)
	}
	fmt.Printf("\nover 40 more rounds: %d topology stretches, %d membership losses (%d excused by a stretch)\n",
		tr.TopologyBreaks, tr.ContinuityViolations, tr.ExcusedViolations)
	fmt.Printf("losses during ongoing merge negotiations: %d\n", tr.UnexcusedViolations)
}
