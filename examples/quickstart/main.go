// Quickstart: simulate eight nodes on a line, watch the groups form,
// split the line and watch the service re-partition — the minimal tour of
// the public API.
package main

import (
	"fmt"

	grp "repro"
)

func main() {
	// A GRP deployment is parameterized by one application constant: the
	// maximal group diameter Dmax.
	cfg := grp.Config{Dmax: 3}

	// Eight nodes in a row, e.g. vehicles on a road.
	g := grp.Line(8)
	s := grp.NewStaticSim(grp.SimParams{Cfg: cfg, Seed: 42}, g)

	fmt.Println("== converging from boot ==")
	rounds, ok := s.RunUntilConverged(200, 3)
	fmt.Printf("converged=%v after %d rounds\n", ok, rounds)
	for _, group := range s.Snapshot().Groups() {
		fmt.Println("  group:", group)
	}

	// Every member of a group holds the same view — that is the agreement
	// property the applications build on.
	view := s.Nodes[2].View()
	fmt.Println("node n2's view:", view)

	// Break the road inside the first group: that group is stretched
	// beyond Dmax (ΠT is false), so it — and only it — may shed members.
	fmt.Println("\n== cutting the 2-3 link (inside a group) ==")
	before := s.Snapshot()
	g.RemoveEdge(2, 3)
	for i := 0; i < 30; i++ {
		s.StepRound()
	}
	after := s.Snapshot()
	fmt.Printf("ΠT held: %v (false: the cut stretched a group, excusing the split)\n",
		grp.Topological(before, after, cfg.Dmax))
	for _, group := range after.Groups() {
		fmt.Println("  group:", group)
	}
	fmt.Printf("re-converged: %v\n", after.Converged(cfg.Dmax))
}
