// Urban intersection: two streets cross; buildings at the corners block
// radio across the diagonal, so vehicles hear each other only along their
// own street (plus everyone near the open intersection). The obstacle
// model shapes the topology, and the group service partitions the
// intersection into street-wise groups bounded by Dmax.
package main

import (
	"fmt"

	grp "repro"
	"repro/internal/space"
)

func main() {
	const dmax = 3
	world := grp.NewWorld(7)

	// Four building corners around the intersection at (0,0): walls along
	// their inner edges block the diagonals.
	world.Walls = []space.Segment{
		{A: grp.Point{X: 2, Y: 2}, B: grp.Point{X: 12, Y: 2}},
		{A: grp.Point{X: 2, Y: 2}, B: grp.Point{X: 2, Y: 12}},
		{A: grp.Point{X: -2, Y: 2}, B: grp.Point{X: -12, Y: 2}},
		{A: grp.Point{X: -2, Y: 2}, B: grp.Point{X: -2, Y: 12}},
		{A: grp.Point{X: 2, Y: -2}, B: grp.Point{X: 12, Y: -2}},
		{A: grp.Point{X: 2, Y: -2}, B: grp.Point{X: 2, Y: -12}},
		{A: grp.Point{X: -2, Y: -2}, B: grp.Point{X: -12, Y: -2}},
		{A: grp.Point{X: -2, Y: -2}, B: grp.Point{X: -2, Y: -12}},
	}

	// Vehicles 1-4 on the east-west street, 5-8 on the north-south one.
	positions := map[grp.NodeID]grp.Point{
		1: {X: -9, Y: 0}, 2: {X: -4, Y: 0}, 3: {X: 4, Y: 0}, 4: {X: 9, Y: 0},
		5: {X: 0, Y: -9}, 6: {X: 0, Y: -4}, 7: {X: 0, Y: 4}, 8: {X: 0, Y: 9},
	}
	var ids []grp.NodeID
	for v := grp.NodeID(1); v <= 8; v++ {
		world.Place(v, positions[v])
		ids = append(ids, v)
	}

	g := world.SymmetricGraph()
	fmt.Println("== link map shaped by the buildings ==")
	for _, v := range ids {
		fmt.Printf("  %v hears %v\n", v, g.Neighbors(v))
	}

	// Run the group service over the static urban topology.
	s := grp.NewStaticSim(grp.SimParams{Cfg: grp.Config{Dmax: dmax}, Seed: 1}, g)
	rounds, ok := s.RunUntilConverged(400, 3)
	fmt.Printf("\nconverged=%v after %d rounds\n", ok, rounds)
	for _, group := range s.Snapshot().Groups() {
		fmt.Println("  group:", group)
	}
	fmt.Println("\nvehicles group along streets; the buildings keep diagonal")
	fmt.Println("neighbors apart even though they are geometrically close.")
}
