// Package grp is the public face of this reproduction of "Best-effort
// Group Service in Dynamic Networks" (Ducourthial, Khalfallah, Petit,
// SPAA 2010): the GRP self-stabilizing group membership protocol with the
// best-effort continuity property, plus the simulation, live-runtime and
// measurement substrates built for it.
//
// The important entry points:
//
//   - NewNode / Config — the pure protocol state machine (drive it with
//     your own transport by calling Receive, Compute and BuildMessage).
//   - NewSim / NewStaticSim — the deterministic discrete-event simulator
//     used by every experiment, backed by the phase-parallel engine of
//     internal/engine: set SimParams.Workers > 1 to fan node work out
//     over a worker pool with a bit-identical trace.
//   - NewLiveCluster — the goroutine-per-node live runtime: nodes exchange
//     messages over channels through a router, as a deployment would.
//   - Snapshot — the specification predicates ΠA, ΠS, ΠM, ΠT, ΠC.
//
// See DESIGN.md for the system inventory and the faithfulness notes, and
// EXPERIMENTS.md for the reproduced results.
package grp

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/priority"
	"repro/internal/radio"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/space"
)

// Protocol core.
type (
	// NodeID identifies a protocol node.
	NodeID = ident.NodeID
	// Config is the protocol configuration (Dmax and variants).
	Config = core.Config
	// Node is one GRP protocol endpoint.
	Node = core.Node
	// Message is a GRP broadcast.
	Message = core.Message
	// Priority is the totally ordered node/group priority.
	Priority = priority.P
)

// NewNode returns a freshly booted protocol node.
func NewNode(id NodeID, cfg Config) *Node { return core.NewNode(id, cfg) }

// Graph substrate.
type (
	// Graph is an undirected communication topology.
	Graph = graph.G
)

// NewGraph returns an empty topology.
func NewGraph() *Graph { return graph.New() }

// Topology generators re-exported for examples and quick starts.
var (
	Line            = graph.Line
	Ring            = graph.Ring
	Grid            = graph.Grid
	Star            = graph.Star
	Complete        = graph.Complete
	Clusters        = graph.Clusters
	RandomGeometric = graph.RandomGeometric
)

// Simulation.
type (
	// Sim is the deterministic discrete-event simulator.
	Sim = sim.Sim
	// SimParams configures a simulation.
	SimParams = sim.Params
	// SpatialTopology animates nodes in the plane with a mobility model.
	SpatialTopology = sim.SpatialTopology
	// StaticTopology wraps a fixed graph.
	StaticTopology = sim.StaticTopology
)

// NewSim builds a simulation over an arbitrary topology.
func NewSim(p SimParams, topo sim.Topology) *Sim { return sim.New(p, topo) }

// NewStaticSim builds a simulation over a fixed graph.
func NewStaticSim(p SimParams, g *Graph) *Sim { return sim.NewStatic(p, g) }

// NewSpatialTopology places nodes with the mobility model and returns the
// animated topology.
var NewSpatialTopology = sim.NewSpatialTopology

// Live runtime.
type (
	// LiveConfig configures the goroutine-per-node runtime.
	LiveConfig = runtime.Config
	// LiveCluster is a running set of protocol goroutines.
	LiveCluster = runtime.Cluster
)

// NewLiveCluster starts one goroutine per node of g plus the router.
func NewLiveCluster(cfg LiveConfig, g *Graph) (*LiveCluster, error) { return runtime.New(cfg, g) }

// Specification predicates.
type (
	// Snapshot is one configuration: topology plus every node's view.
	Snapshot = metrics.Snapshot
	// Tracker accumulates churn and continuity statistics over a run.
	Tracker = metrics.Tracker
)

// Best-effort predicates over consecutive snapshots.
var (
	// Topological is ΠT: group members stayed within Dmax.
	Topological = metrics.Topological
	// Continuity is ΠC: no node disappeared from any group.
	Continuity = metrics.Continuity
)

// NewTracker returns an empty churn tracker.
func NewTracker() *Tracker { return metrics.NewTracker() }

// Mobility and space, for spatial simulations.
type (
	// World is the Euclidean plane with the vicinity relation.
	World = space.World
	// Point is a position.
	Point = space.Point
	// MobilityModel moves nodes step by step.
	MobilityModel = mobility.Model
	// Waypoint is the random-waypoint mobility model.
	Waypoint = mobility.Waypoint
	// Highway is the VANET-style wrap-around highway model.
	Highway = mobility.Highway
	// Convoy is the rigid platoon with an optional straggler.
	Convoy = mobility.Convoy
	// GroupMobility is reference-point group mobility.
	GroupMobility = mobility.Groups
)

// NewWorld returns an empty world with the given radio range.
func NewWorld(txRange float64) *World { return space.NewWorld(txRange) }

// Radio channel models.
type (
	// Channel arbitrates which receptions succeed in a slot.
	Channel = radio.Channel
	// PerfectRadio delivers everything in range.
	PerfectRadio = radio.Perfect
	// LossyRadio drops receptions i.i.d. with probability P.
	LossyRadio = radio.Lossy
	// CollisionRadio implements the paper's interference model.
	CollisionRadio = radio.Collision
)
