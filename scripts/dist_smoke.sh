#!/usr/bin/env bash
# dist_smoke.sh — two-process conformance smoke for internal/dist.
#
# Runs the same seeded commuter scenario three ways and requires the
# outputs to be bit-identical:
#
#   1. -shards 1                   (the single-process reference)
#   2. -shards 2 -transport loopback  (two shards, one process)
#   3. -shards 2 -transport tcp       (two OS processes over localhost)
#
# Compared surfaces: the end-of-run state fingerprint (fold of every
# node's state hash), the full per-round stats JSONL stream (byte
# equality — RoundStats carries no wall-clock fields), and the final
# report text minus its timing lines. Any drift is a determinism bug in
# the ghost-boundary protocol, the shard-order merge, or the lead's
# tracker mirror.
#
# Usage: scripts/dist_smoke.sh [rounds]   (default 30)
set -euo pipefail
cd "$(dirname "$0")/.."

rounds="${1:-30}"
work=".dist-smoke.$$"
trap 'rm -rf "$work"; kill %% 2>/dev/null || true' EXIT
mkdir -p "$work"

go build -o "$work/grpsoak" ./cmd/grpsoak

# The commuter conformance scenario the dist test suite pins: parked
# majority, active border traffic across the slab cut, fixed membership
# (-join 0 -leave 0 — dist.Config.Validate rejects churn).
common=(-n 150 -side 33 -active 0.08 -seed 19 -dmax 3 -workers 4
  -rounds "$rounds" -join 0 -leave 0 -progress 0 -fingerprint)

echo "== 1 process =="
"$work/grpsoak" "${common[@]}" -stats "$work/base.jsonl" | tee "$work/base.out"

echo "== 2 shards, loopback =="
"$work/grpsoak" "${common[@]}" -shards 2 -transport loopback \
  -stats "$work/loop.jsonl" | tee "$work/loop.out"

echo "== 2 shards, 2 OS processes over TCP localhost =="
port0=$((20000 + $$ % 20000))
peers="127.0.0.1:${port0},127.0.0.1:$((port0 + 1))"
"$work/grpsoak" "${common[@]}" -shards 2 -transport tcp -peers "$peers" \
  -shard-index 1 &
"$work/grpsoak" "${common[@]}" -shards 2 -transport tcp -peers "$peers" \
  -shard-index 0 -stats "$work/tcp.jsonl" | tee "$work/tcp.out"
wait %%

fp() { grep '^fingerprint:' "$1"; }
base_fp="$(fp "$work/base.out")"
for run in loop tcp; do
  run_fp="$(fp "$work/$run.out")"
  if [ "$run_fp" != "$base_fp" ]; then
    echo "FAIL: $run $run_fp != 1-proc $base_fp" >&2
    exit 1
  fi
  if ! cmp -s "$work/base.jsonl" "$work/$run.jsonl"; then
    echo "FAIL: $run stats stream diverges from the 1-proc stream:" >&2
    diff <(head -c 4000 "$work/base.jsonl") <(head -c 4000 "$work/$run.jsonl") >&2 || true
    exit 1
  fi
  # The report is identical except wall-clock throughput.
  if ! diff <(grep -v 'ticks/s\|elapsed' "$work/base.out") \
            <(grep -v 'ticks/s\|elapsed' "$work/$run.out"); then
    echo "FAIL: $run final report diverges from 1-proc" >&2
    exit 1
  fi
done

echo "OK: $base_fp identical across 1-proc, loopback, and TCP (${rounds} rounds)"
