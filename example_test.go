package grp_test

import (
	"fmt"

	grp "repro"
)

// ExampleNewStaticSim shows the minimal simulation loop: build, converge,
// inspect the resulting partition.
func ExampleNewStaticSim() {
	s := grp.NewStaticSim(grp.SimParams{Cfg: grp.Config{Dmax: 3}, Seed: 1}, grp.Line(8))
	_, ok := s.RunUntilConverged(200, 3)
	fmt.Println("converged:", ok)
	for _, group := range s.Snapshot().Groups() {
		fmt.Println(group)
	}
	// Output:
	// converged: true
	// [n1 n2 n3 n4]
	// [n5 n6 n7 n8]
}

// ExampleNewNode drives two protocol endpoints by hand — the integration
// path for a custom transport.
func ExampleNewNode() {
	a := grp.NewNode(1, grp.Config{Dmax: 2})
	b := grp.NewNode(2, grp.Config{Dmax: 2})
	for i := 0; i < 8; i++ {
		ma, mb := a.BuildMessage(), b.BuildMessage()
		a.Receive(mb)
		b.Receive(ma)
		a.Compute()
		b.Compute()
	}
	fmt.Println(a.View())
	fmt.Println(b.View())
	// Output:
	// [n1 n2]
	// [n1 n2]
}

// ExampleSnapshot_Converged checks the specification predicates on a
// hand-built configuration.
func ExampleSnapshot_Converged() {
	s := grp.NewStaticSim(grp.SimParams{Cfg: grp.Config{Dmax: 4}, Seed: 1}, grp.Line(5))
	s.RunUntilConverged(200, 3)
	snap := s.Snapshot()
	fmt.Println("agreement:", snap.Agreement())
	fmt.Println("safety:", snap.Safety(4))
	fmt.Println("maximality:", snap.Maximality(4))
	// Output:
	// agreement: true
	// safety: true
	// maximality: true
}
